#include "apps/association_rules.hpp"

#include <gtest/gtest.h>

namespace ivt::apps {
namespace {

using dataflow::Schema;
using dataflow::Table;
using dataflow::TableBuilder;
using dataflow::Value;
using dataflow::ValueType;

/// State table where wiper errors co-occur with cold temperature.
Table wiper_error_state() {
  Schema schema{{{"t", ValueType::Int64},
                 {"temp", ValueType::String},
                 {"wiper", ValueType::String},
                 {"error", ValueType::String}}};
  TableBuilder b(schema, 0);
  std::int64_t t = 0;
  auto add = [&](const char* temp, const char* wiper, const char* error,
                 int copies) {
    for (int i = 0; i < copies; ++i) {
      b.append_row({Value{t++}, Value{temp}, Value{wiper}, Value{error}});
    }
  };
  add("cold", "active", "blocked", 10);   // the pattern to find
  add("cold", "inactive", "none", 10);
  add("warm", "active", "none", 30);
  add("warm", "inactive", "none", 50);
  return b.build();
}

TEST(AssociationTest, FindsColdWiperRule) {
  MinerConfig config;
  config.min_support = 0.05;
  config.min_confidence = 0.9;
  config.consequent_columns = {"error"};
  const auto rules = mine_rules(wiper_error_state(), config);
  ASSERT_FALSE(rules.empty());
  // The strongest rule must be IF temp=cold AND wiper=active THEN blocked.
  bool found = false;
  for (const auto& rule : rules) {
    if (rule.consequent.value != "blocked") continue;
    if (rule.antecedents.size() == 2 && rule.confidence >= 0.99) {
      found = true;
      EXPECT_NEAR(rule.support, 0.1, 1e-9);
      EXPECT_GT(rule.lift, 5.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(AssociationTest, MinSupportPrunes) {
  MinerConfig config;
  config.min_support = 0.5;  // nothing except warm/inactive combos frequent
  const auto rules = mine_rules(wiper_error_state(), config);
  for (const auto& rule : rules) {
    EXPECT_GE(rule.support, 0.5);
  }
}

TEST(AssociationTest, MinConfidenceFilters) {
  MinerConfig config;
  config.min_support = 0.01;
  config.min_confidence = 1.0;
  const auto rules = mine_rules(wiper_error_state(), config);
  for (const auto& rule : rules) {
    EXPECT_DOUBLE_EQ(rule.confidence, 1.0);
  }
}

TEST(AssociationTest, ConsequentColumnFilterRespected) {
  MinerConfig config;
  config.min_support = 0.05;
  config.min_confidence = 0.8;
  config.consequent_columns = {"error"};
  for (const auto& rule : mine_rules(wiper_error_state(), config)) {
    EXPECT_EQ(rule.consequent.column, "error");
  }
}

TEST(AssociationTest, TimeColumnIgnored) {
  MinerConfig config;
  config.min_support = 0.001;
  for (const auto& rule : mine_rules(wiper_error_state(), config)) {
    EXPECT_NE(rule.consequent.column, "t");
    for (const auto& a : rule.antecedents) EXPECT_NE(a.column, "t");
  }
}

TEST(AssociationTest, RulesSortedByLift) {
  MinerConfig config;
  config.min_support = 0.05;
  config.min_confidence = 0.5;
  const auto rules = mine_rules(wiper_error_state(), config);
  for (std::size_t i = 1; i < rules.size(); ++i) {
    EXPECT_GE(rules[i - 1].lift, rules[i].lift);
  }
}

TEST(AssociationTest, EmptyTableYieldsNoRules) {
  Schema schema{{{"t", ValueType::Int64}, {"a", ValueType::String}}};
  TableBuilder b(schema, 0);
  EXPECT_TRUE(mine_rules(b.build(), {}).empty());
}

TEST(AssociationTest, DisplayStringFormat) {
  AssociationRule rule;
  rule.antecedents = {{"temp", "cold"}, {"wiper", "active"}};
  rule.consequent = {"error", "blocked"};
  rule.support = 0.1;
  rule.confidence = 1.0;
  rule.lift = 10.0;
  const std::string s = rule.to_display_string();
  EXPECT_NE(s.find("IF temp=cold AND wiper=active THEN error=blocked"),
            std::string::npos);
  EXPECT_NE(s.find("lift=10.00"), std::string::npos);
}

TEST(AssociationTest, NullCellsSkipped) {
  Schema schema{{{"t", ValueType::Int64},
                 {"a", ValueType::String},
                 {"b", ValueType::String}}};
  TableBuilder builder(schema, 0);
  for (int i = 0; i < 10; ++i) {
    builder.append_row({Value{static_cast<std::int64_t>(i)}, Value{"x"},
                        i < 5 ? Value{"y"} : Value{}});
  }
  MinerConfig config;
  config.min_support = 0.3;
  config.min_confidence = 0.4;
  const auto rules = mine_rules(builder.build(), config);
  // Rule a=x -> b=y has confidence 0.5 (5 of 10), support 0.5.
  bool found = false;
  for (const auto& rule : rules) {
    if (rule.consequent.column == "b") {
      EXPECT_NEAR(rule.confidence, 0.5, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ivt::apps
