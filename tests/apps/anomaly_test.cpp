#include "apps/anomaly.hpp"

#include <gtest/gtest.h>

#include "core/schemas.hpp"

namespace ivt::apps {
namespace {

using dataflow::Schema;
using dataflow::Table;
using dataflow::TableBuilder;
using dataflow::Value;
using dataflow::ValueType;

Table state_with_rare_row() {
  Schema schema{{{"t", ValueType::Int64},
                 {"a", ValueType::String},
                 {"b", ValueType::String}}};
  TableBuilder builder(schema, 0);
  std::int64_t t = 0;
  for (int i = 0; i < 2000; ++i) {
    builder.append_row({Value{t++}, Value{"normal"}, Value{"on"}});
  }
  builder.append_row({Value{t++}, Value{"weird"}, Value{"off"}});
  return builder.build();
}

TEST(StateAnomalyTest, RareJointStateDetected) {
  const auto anomalies = detect_state_anomalies(state_with_rare_row());
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].description, "weird|off");
  EXPECT_GT(anomalies[0].severity, 10.0);  // -log2(1/2001) ≈ 11
  EXPECT_EQ(anomalies[0].occurrences, 1u);
}

TEST(StateAnomalyTest, ThresholdControlsDetection) {
  AnomalyConfig config;
  config.max_state_frequency = 1e-9;
  EXPECT_TRUE(detect_state_anomalies(state_with_rare_row(), config).empty());
}

TEST(StateAnomalyTest, TopKLimits) {
  Schema schema{{{"t", ValueType::Int64}, {"a", ValueType::String}}};
  TableBuilder builder(schema, 0);
  std::int64_t t = 0;
  for (int i = 0; i < 1000; ++i) {
    builder.append_row({Value{t++}, Value{"base"}});
  }
  for (int i = 0; i < 10; ++i) {
    builder.append_row({Value{t++}, Value{"odd" + std::to_string(i)}});
  }
  AnomalyConfig config;
  config.max_state_frequency = 0.01;
  config.top_k = 3;
  EXPECT_EQ(detect_state_anomalies(builder.build(), config).size(), 3u);
}

Table krep_with_elements() {
  TableBuilder builder(ivt::core::krep_schema(), 0);
  auto add = [&](std::int64_t t, const char* sid, const char* value,
                 double num, const char* kind) {
    dataflow::Partition& dst = builder.current_partition();
    dst.columns[0].append_int64(t);
    dst.columns[1].append_string(sid);
    dst.columns[2].append_string(value);
    dst.columns[3].append_float64(num);
    dst.columns[4].append_string(kind);
    dst.columns[5].append_string("FC");
    builder.commit_row();
  };
  add(0, "speed", "(high,steady)", 120.0, ivt::core::kElementState);
  add(10, "speed", "outlier v=800", 800.0, ivt::core::kElementOutlier);
  add(20, "heat", "snv", 0.0, ivt::core::kElementValidity);
  add(30, "speed.cycle_violation", "violation gap=0.5s expected=0.1s", 0.5,
      ivt::core::kElementExtension);
  add(40, "speed.gap", "0.1", 0.1, ivt::core::kElementExtension);
  return builder.build();
}

TEST(ElementAnomalyTest, RanksOutlierFirst) {
  const auto anomalies = detect_element_anomalies(krep_with_elements());
  ASSERT_EQ(anomalies.size(), 3u);  // outlier, violation, validity
  EXPECT_EQ(anomalies[0].signal, "speed");
  EXPECT_NE(anomalies[0].description.find("outlier"), std::string::npos);
  EXPECT_GT(anomalies[0].severity, anomalies[1].severity);
}

TEST(ElementAnomalyTest, RegularStatesAndPlainExtensionsIgnored) {
  const auto anomalies = detect_element_anomalies(krep_with_elements());
  for (const auto& a : anomalies) {
    EXPECT_NE(a.description, "(high,steady)");
    EXPECT_NE(a.description, "0.1");
  }
}

TEST(ElementAnomalyTest, ViolationRankedAboveValidity) {
  const auto anomalies = detect_element_anomalies(krep_with_elements());
  EXPECT_NE(anomalies[1].description.find("violation"), std::string::npos);
  EXPECT_EQ(anomalies[2].description, "snv");
}

TEST(ToExtensionRuleTest, MarksSimilarDeviations) {
  Anomaly anomaly;
  anomaly.signal = "speed";
  const auto rule = to_extension_rule(anomaly, 100.0, 50.0);
  EXPECT_EQ(rule.signal_pattern, "speed");

  ivt::core::SequenceData d;
  d.s_id = "speed";
  d.bus = "FC";
  d.t = {0, 1, 2};
  d.v_num = {100.0, 300.0, 120.0};
  d.has_num = {1, 1, 1};
  d.v_str = {"", "", ""};
  d.has_str = {0, 0, 0};
  const ivt::core::ConstraintContext ctx{d, nullptr};
  const auto tables = ivt::core::apply_extensions({rule}, ctx);
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].num_rows(), 1u);  // only the 300 deviates >= 50
}

}  // namespace
}  // namespace ivt::apps
