#include "apps/transition_graph.hpp"

#include <gtest/gtest.h>

namespace ivt::apps {
namespace {

using dataflow::Schema;
using dataflow::Table;
using dataflow::TableBuilder;
using dataflow::Value;
using dataflow::ValueType;

Table state_column(const std::vector<std::string>& states) {
  Schema schema{{{"t", ValueType::Int64}, {"mode", ValueType::String}}};
  TableBuilder b(schema, 0);
  std::int64_t t = 0;
  for (const std::string& s : states) {
    b.append_row({Value{t++}, Value{s}});
  }
  return b.build();
}

TEST(TransitionGraphTest, CountsTransitions) {
  const auto graph = TransitionGraph::from_column(
      state_column({"a", "b", "a", "b", "c"}), "mode");
  EXPECT_EQ(graph.num_nodes(), 3u);
  EXPECT_EQ(graph.num_transitions(), 4u);
  const auto edges = graph.edges();
  ASSERT_EQ(edges.size(), 3u);  // a->b (x2), b->a, b->c
}

TEST(TransitionGraphTest, SelfLoopsCollapsed) {
  const auto graph = TransitionGraph::from_column(
      state_column({"a", "a", "a", "b"}), "mode");
  EXPECT_EQ(graph.num_transitions(), 1u);  // only a->b
}

TEST(TransitionGraphTest, ProbabilitiesNormalizePerSource) {
  const auto graph = TransitionGraph::from_column(
      state_column({"a", "b", "a", "b", "a", "c"}), "mode");
  for (const auto& edge : graph.edges()) {
    if (edge.from == "a") {
      // a -> b twice, a -> c once.
      if (edge.to == "b") EXPECT_NEAR(edge.probability, 2.0 / 3.0, 1e-9);
      if (edge.to == "c") EXPECT_NEAR(edge.probability, 1.0 / 3.0, 1e-9);
    }
  }
}

TEST(TransitionGraphTest, RareTransitionsSortedAscending) {
  std::vector<std::string> states;
  for (int i = 0; i < 50; ++i) {
    states.push_back("ok");
    states.push_back("busy");
  }
  states.push_back("error");  // rare: busy -> error once
  const auto graph =
      TransitionGraph::from_column(state_column(states), "mode");
  const auto rare = graph.rare_transitions(0.05);
  ASSERT_EQ(rare.size(), 1u);
  EXPECT_EQ(rare[0].to, "error");
  EXPECT_LE(rare[0].probability, 0.05);
}

TEST(TransitionGraphTest, MinCountFilter) {
  const auto graph = TransitionGraph::from_column(
      state_column({"a", "b", "c"}), "mode");
  EXPECT_TRUE(graph.rare_transitions(1.0, 5).empty());
  EXPECT_EQ(graph.rare_transitions(1.0, 1).size(), 2u);
}

TEST(TransitionGraphTest, FrequentPathTo) {
  // Chain: start -> middle -> error dominates.
  std::vector<std::string> states;
  for (int i = 0; i < 10; ++i) {
    states.push_back("start");
    states.push_back("middle");
    states.push_back("error");
  }
  const auto graph =
      TransitionGraph::from_column(state_column(states), "mode");
  const auto path = graph.frequent_path_to("error", 3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], "start");
  EXPECT_EQ(path[1], "middle");
  EXPECT_EQ(path[2], "error");
}

TEST(TransitionGraphTest, PathStopsAtUnknownTarget) {
  const auto graph = TransitionGraph::from_column(
      state_column({"a", "b"}), "mode");
  const auto path = graph.frequent_path_to("zz", 5);
  EXPECT_EQ(path, (std::vector<std::string>{"zz"}));
}

TEST(TransitionGraphTest, PathAvoidsCycles) {
  const auto graph = TransitionGraph::from_column(
      state_column({"a", "b", "a", "b", "a", "b"}), "mode");
  const auto path = graph.frequent_path_to("b", 10);
  EXPECT_LE(path.size(), 2u);  // a -> b, no infinite a-b-a-b
}

TEST(TransitionGraphTest, JointStatesFromColumns) {
  Schema schema{{{"t", ValueType::Int64},
                 {"x", ValueType::String},
                 {"y", ValueType::String}}};
  TableBuilder b(schema, 0);
  b.append_row({Value{std::int64_t{0}}, Value{"1"}, Value{"a"}});
  b.append_row({Value{std::int64_t{1}}, Value{"1"}, Value{"b"}});
  b.append_row({Value{std::int64_t{2}}, Value{"2"}, Value{"b"}});
  const auto graph = TransitionGraph::from_columns(b.build(), {"x", "y"});
  EXPECT_EQ(graph.num_transitions(), 2u);
  const auto edges = graph.edges();
  EXPECT_EQ(edges[0].from, "1|a");
}

TEST(TransitionGraphTest, NullCellsRenderAsDash) {
  Schema schema{{{"t", ValueType::Int64}, {"x", ValueType::String}}};
  TableBuilder b(schema, 0);
  b.append_row({Value{std::int64_t{0}}, Value{}});
  b.append_row({Value{std::int64_t{1}}, Value{"v"}});
  const auto graph = TransitionGraph::from_columns(b.build(), {"x"});
  EXPECT_EQ(graph.edges()[0].from, "-");
}

TEST(TransitionGraphTest, DotOutputContainsEdges) {
  const auto graph = TransitionGraph::from_column(
      state_column({"a", "b"}), "mode");
  const std::string dot = graph.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"a\" -> \"b\""), std::string::npos);
}

TEST(TransitionGraphTest, EmptyTable) {
  const auto graph =
      TransitionGraph::from_column(state_column({}), "mode");
  EXPECT_EQ(graph.num_nodes(), 0u);
  EXPECT_EQ(graph.num_transitions(), 0u);
}

}  // namespace
}  // namespace ivt::apps
