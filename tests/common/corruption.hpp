// Shared corruption harness for robustness tests: deterministic byte-level
// vandalism of in-memory container images (.ivc / .ivt). Tests assert the
// readers quarantine or throw typed errors instead of crashing or
// misreading — never that a particular garbage value comes back.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "colstore/columnar_reader.hpp"
#include "colstore/format.hpp"

namespace ivt::testcorrupt {

/// Flip a single bit (bit index counts from byte 0, LSB first).
inline void flip_bit(std::string& data, std::size_t bit) {
  data[bit / 8] = static_cast<char>(
      static_cast<std::uint8_t>(data[bit / 8]) ^ (1U << (bit % 8)));
}

/// Overwrite `len` bytes starting at `begin` with 0xFF.
inline void stomp(std::string& data, std::size_t begin, std::size_t len) {
  for (std::size_t i = begin; i < begin + len && i < data.size(); ++i) {
    data[i] = '\xFF';
  }
}

/// Drop everything after the first `keep` bytes.
inline void truncate(std::string& data, std::size_t keep) {
  if (keep < data.size()) data.resize(keep);
}

/// Write an (optionally corrupted) image to a temp file and return the path.
inline std::string write_file(const std::string& path,
                              const std::string& data) {
  std::ofstream out(path, std::ios::binary);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return path;
}

/// Targeted corruption of a good .ivc image. Chunk extents come from the
/// image's own footer directory (indexed before vandalising), so the
/// harness stays valid when the writer's layout evolves.
class IvcCorruptor {
 public:
  explicit IvcCorruptor(std::string good) : good_(std::move(good)) {
    const colstore::ColumnarReader reader =
        colstore::ColumnarReader::from_buffer(good_);
    for (const colstore::ChunkInfo& c : reader.chunks()) {
      chunks_.push_back({c.offset, c.encoded_bytes, c.row_count});
    }
  }

  [[nodiscard]] const std::string& good() const { return good_; }
  [[nodiscard]] std::size_t num_chunks() const { return chunks_.size(); }
  [[nodiscard]] std::uint32_t chunk_rows(std::size_t i) const {
    return chunks_[i].rows;
  }
  [[nodiscard]] std::size_t chunk_offset(std::size_t i) const {
    return static_cast<std::size_t>(chunks_[i].offset);
  }

  /// Flip one bit in the middle of chunk i's encoded body. Skips the
  /// 4-byte row-count prefix so the damage lands in column data.
  [[nodiscard]] std::string with_corrupt_chunk(std::size_t i,
                                               std::size_t bit = 0) const {
    std::string bad = good_;
    const std::size_t body = static_cast<std::size_t>(chunks_[i].offset) + 4;
    flip_bit(bad, body * 8 + bit);
    return bad;
  }

  /// Stomp chunk i's whole body (structural damage, not a subtle flip).
  [[nodiscard]] std::string with_stomped_chunk(std::size_t i) const {
    std::string bad = good_;
    stomp(bad, static_cast<std::size_t>(chunks_[i].offset) + 4,
          static_cast<std::size_t>(chunks_[i].bytes) - 4);
    return bad;
  }

  /// Corrupt the file header (magic bytes).
  [[nodiscard]] std::string with_corrupt_header() const {
    std::string bad = good_;
    bad[0] = 'X';
    return bad;
  }

  /// Corrupt the footer / zone-map region: everything between the end of
  /// the last chunk and the 12-byte tail (u64 footer offset + magic).
  [[nodiscard]] std::string with_corrupt_zone_maps() const {
    std::string bad = good_;
    std::size_t footer_begin = 0;
    for (const ChunkExtent& c : chunks_) {
      footer_begin = static_cast<std::size_t>(c.offset + c.bytes);
    }
    stomp(bad, footer_begin, bad.size() - 12 - footer_begin);
    return bad;
  }

  /// Truncate mid-file (loses the footer and part of the chunk data).
  [[nodiscard]] std::string with_truncation() const {
    std::string bad = good_;
    truncate(bad, bad.size() / 2);
    return bad;
  }

 private:
  struct ChunkExtent {
    std::uint64_t offset;
    std::uint64_t bytes;
    std::uint32_t rows;
  };
  std::string good_;
  std::vector<ChunkExtent> chunks_;
};

}  // namespace ivt::testcorrupt
