// Differential batch-vs-streaming harness: run Algorithm 1 over the same
// columnar trace in both execution modes and assert that every observable
// outcome is identical — tables byte-for-byte (K_s, K_rep, state), the
// processing report, per-site failure counters and the CLI-equivalent exit
// code. The streaming executor's entire correctness claim is "same output,
// bounded memory"; this harness is how that claim is checked.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "colstore/columnar_reader.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "dataflow/engine.hpp"
#include "errors/error.hpp"
#include "errors/failure_log.hpp"
#include "signaldb/catalog.hpp"

namespace ivt::testdiff {

/// One mode's run, capturing either the result or the thrown error, plus
/// the exit code the CLI would have returned (0 clean, 4 partial success,
/// 3 input format error, 1 other failure).
struct RunOutcome {
  bool threw = false;
  std::string error;
  int exit_code = 0;
  core::PipelineResult result;
  colstore::ScanStats scan_stats;
};

/// Run the pipeline over `reader` in the given mode. The pipeline is
/// constructed fresh per call so both modes see identical configuration.
inline RunOutcome run_mode(const signaldb::Catalog& catalog,
                           const colstore::ColumnarReader& reader,
                           core::PipelineConfig config, core::ExecMode mode,
                           dataflow::EngineConfig engine_config = {}) {
  config.exec_mode = mode;
  RunOutcome out;
  dataflow::Engine engine(engine_config);
  const core::Pipeline pipeline(catalog, std::move(config));
  try {
    out.result = pipeline.run(engine, reader, &out.scan_stats);
    out.exit_code = out.result.failures.empty() ? 0 : 4;
  } catch (const errors::Error& e) {
    out.threw = true;
    out.error = e.describe();
    switch (e.category()) {
      case errors::Category::Format:
      case errors::Category::Decode:
      case errors::Category::Spec:
        out.exit_code = 3;
        break;
      default:
        out.exit_code = 1;
    }
  }
  return out;
}

/// Cell-exact table comparison (schema, row count, every value including
/// nulls). Row order matters: the equivalence guarantee is byte-identity,
/// not set-identity.
inline ::testing::AssertionResult tables_identical(const dataflow::Table& a,
                                                   const dataflow::Table& b,
                                                   const char* what) {
  if (a.schema().size() != b.schema().size()) {
    return ::testing::AssertionFailure()
           << what << ": schema width " << a.schema().size() << " vs "
           << b.schema().size();
  }
  for (std::size_t c = 0; c < a.schema().size(); ++c) {
    if (a.schema().field(c).name != b.schema().field(c).name) {
      return ::testing::AssertionFailure()
             << what << ": column " << c << " named '"
             << a.schema().field(c).name << "' vs '"
             << b.schema().field(c).name << "'";
    }
  }
  const auto rows_a = a.collect_rows();
  const auto rows_b = b.collect_rows();
  if (rows_a.size() != rows_b.size()) {
    return ::testing::AssertionFailure() << what << ": " << rows_a.size()
                                         << " rows vs " << rows_b.size();
  }
  for (std::size_t r = 0; r < rows_a.size(); ++r) {
    for (std::size_t c = 0; c < rows_a[r].size(); ++c) {
      if (!(rows_a[r][c] == rows_b[r][c])) {
        return ::testing::AssertionFailure()
               << what << ": first difference at row " << r << ", column '"
               << a.schema().field(c).name << "': "
               << rows_a[r][c].to_display_string() << " vs "
               << rows_b[r][c].to_display_string();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Failure records keyed by site: order across sites is scheduling-
/// dependent in both modes, so equivalence is asserted on the counters,
/// exactly like the report JSON renders them.
inline std::map<std::string, std::size_t> failure_counts(
    const std::vector<errors::FailureRecord>& failures) {
  std::map<std::string, std::size_t> counts;
  for (const errors::FailureRecord& f : failures) ++counts[f.site];
  return counts;
}

inline std::string render_counts(
    const std::map<std::string, std::size_t>& counts) {
  std::ostringstream os;
  for (const auto& [site, n] : counts) os << site << "=" << n << " ";
  return os.str();
}

/// Full equivalence check between a batch and a streaming outcome. Probes
/// everything a user can observe: exit code, error text (when thrown),
/// row counters, sequence reports, correspondences, failure counters and
/// the result tables.
inline ::testing::AssertionResult outcomes_equivalent(
    const RunOutcome& batch, const RunOutcome& streaming) {
  if (batch.threw != streaming.threw) {
    return ::testing::AssertionFailure()
           << "batch " << (batch.threw ? "threw: " + batch.error : "returned")
           << " but streaming "
           << (streaming.threw ? "threw: " + streaming.error : "returned");
  }
  if (batch.exit_code != streaming.exit_code) {
    return ::testing::AssertionFailure() << "exit code " << batch.exit_code
                                         << " vs " << streaming.exit_code;
  }
  if (batch.threw) return ::testing::AssertionSuccess();

  const core::PipelineResult& rb = batch.result;
  const core::PipelineResult& rs = streaming.result;
  if (rb.kb_rows != rs.kb_rows || rb.kpre_rows != rs.kpre_rows ||
      rb.ks_rows != rs.ks_rows || rb.reduced_rows != rs.reduced_rows ||
      rb.krep_rows != rs.krep_rows) {
    return ::testing::AssertionFailure()
           << "row counters differ: kb " << rb.kb_rows << "/" << rs.kb_rows
           << " kpre " << rb.kpre_rows << "/" << rs.kpre_rows << " ks "
           << rb.ks_rows << "/" << rs.ks_rows << " reduced "
           << rb.reduced_rows << "/" << rs.reduced_rows << " krep "
           << rb.krep_rows << "/" << rs.krep_rows;
  }
  const auto fb = failure_counts(rb.failures);
  const auto fs = failure_counts(rs.failures);
  if (fb != fs) {
    return ::testing::AssertionFailure()
           << "failure counters differ: batch [" << render_counts(fb)
           << "] vs streaming [" << render_counts(fs) << "]";
  }
  if (rb.sequences.size() != rs.sequences.size()) {
    return ::testing::AssertionFailure()
           << "sequence report count " << rb.sequences.size() << " vs "
           << rs.sequences.size();
  }
  for (std::size_t i = 0; i < rb.sequences.size(); ++i) {
    const core::SequenceReport& sb = rb.sequences[i];
    const core::SequenceReport& ss = rs.sequences[i];
    if (sb.s_id != ss.s_id || sb.bus != ss.bus ||
        sb.input_rows != ss.input_rows ||
        sb.reduced_rows != ss.reduced_rows ||
        sb.output_rows != ss.output_rows ||
        sb.extension_rows != ss.extension_rows ||
        sb.dropped != ss.dropped ||
        sb.classification.branch != ss.classification.branch) {
      return ::testing::AssertionFailure()
             << "sequence report " << i << " differs: batch (" << sb.s_id
             << "," << sb.bus << "," << sb.input_rows << "->"
             << sb.output_rows << (sb.dropped ? ",dropped" : "")
             << ") vs streaming (" << ss.s_id << "," << ss.bus << ","
             << ss.input_rows << "->" << ss.output_rows
             << (ss.dropped ? ",dropped" : "") << ")";
    }
  }
  if (rb.correspondences.size() != rs.correspondences.size()) {
    return ::testing::AssertionFailure()
           << "correspondence count " << rb.correspondences.size() << " vs "
           << rs.correspondences.size();
  }
  for (std::size_t i = 0; i < rb.correspondences.size(); ++i) {
    const core::ChannelCorrespondence& cb = rb.correspondences[i];
    const core::ChannelCorrespondence& cs = rs.correspondences[i];
    if (cb.s_id != cs.s_id ||
        cb.representative_bus != cs.representative_bus ||
        cb.corresponding_buses != cs.corresponding_buses) {
      return ::testing::AssertionFailure()
             << "correspondence " << i << " differs (" << cb.s_id << " vs "
             << cs.s_id << ")";
    }
  }
  if (auto t = tables_identical(rb.ks, rs.ks, "K_s"); !t) return t;
  if (auto t = tables_identical(rb.krep, rs.krep, "K_rep"); !t) return t;
  if (auto t = tables_identical(rb.state, rs.state, "state"); !t) return t;
  return ::testing::AssertionSuccess();
}

/// Run both modes over the same reader and assert equivalence. Returns the
/// batch outcome so tests can make additional mode-independent assertions.
inline RunOutcome expect_modes_equivalent(
    const signaldb::Catalog& catalog, const colstore::ColumnarReader& reader,
    const core::PipelineConfig& config,
    dataflow::EngineConfig engine_config = {}) {
  RunOutcome batch = run_mode(catalog, reader, config,
                              core::ExecMode::Batch, engine_config);
  const RunOutcome streaming = run_mode(
      catalog, reader, config, core::ExecMode::Streaming, engine_config);
  EXPECT_TRUE(outcomes_equivalent(batch, streaming));
  return batch;
}

}  // namespace ivt::testdiff
