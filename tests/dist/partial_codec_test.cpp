// dist.result payload codec: lossless (bit-exact doubles, embedded NULs,
// empty arrays) and defensive — every truncation or trailing byte throws
// a typed Decode error instead of misreading a zombie's garbage.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/partials.hpp"
#include "core/sequence.hpp"
#include "dist/partial_codec.hpp"
#include "errors/error.hpp"

namespace ivt::dist {
namespace {

core::SequenceData make_data(std::size_t n, std::uint64_t salt) {
  core::SequenceData d;
  d.s_id = "sig" + std::to_string(salt);
  d.bus = "CAN" + std::to_string(salt % 3);
  for (std::size_t i = 0; i < n; ++i) {
    d.t.push_back(static_cast<std::int64_t>(1'000'000 * i + salt));
    d.v_num.push_back(0.1 * static_cast<double>(i) + 0.2);
    d.has_num.push_back(i % 2 == 0 ? 1 : 0);
    d.v_str.push_back(i % 2 == 0 ? std::string()
                                 : std::string("st\0ate", 6) +
                                       std::to_string(i));
    d.has_str.push_back(i % 2 == 0 ? 0 : 1);
  }
  return d;
}

std::vector<core::MorselPartial> make_partials() {
  std::vector<core::MorselPartial> partials;
  core::MorselPartial a;
  a.morsel = 3;
  a.kpre_rows = 7;
  a.ks_rows = 5;
  a.segments.push_back({"k1\x1F" "CAN0", 0, make_data(4, 1)});
  a.segments.push_back({"k2\x1F" "CAN1", 2, make_data(0, 2)});
  core::MorselPartial b;
  b.morsel = 9;
  b.segments.push_back({"k1\x1F" "CAN0", 1, make_data(3, 3)});
  partials.push_back(std::move(a));
  partials.push_back(std::move(b));
  return partials;
}

TEST(PartialCodecTest, RoundTripIsLossless) {
  const std::vector<core::MorselPartial> partials = make_partials();
  const std::vector<WireSegment> decoded =
      decode_partials(encode_partials(partials));
  ASSERT_EQ(decoded.size(), 3u);

  // Flattened in partial order, morsel tag carried onto every segment.
  EXPECT_EQ(decoded[0].morsel, 3u);
  EXPECT_EQ(decoded[1].morsel, 3u);
  EXPECT_EQ(decoded[2].morsel, 9u);
  EXPECT_EQ(decoded[0].first_row, 0u);
  EXPECT_EQ(decoded[1].first_row, 2u);
  EXPECT_EQ(decoded[2].first_row, 1u);
  EXPECT_EQ(decoded[0].key, partials[0].segments[0].key);
  EXPECT_EQ(decoded[1].key, partials[0].segments[1].key);

  const core::SequenceData& in = partials[0].segments[0].data;
  const core::SequenceData& out = decoded[0].data;
  EXPECT_EQ(out.s_id, in.s_id);
  EXPECT_EQ(out.bus, in.bus);
  EXPECT_EQ(out.t, in.t);
  EXPECT_EQ(out.v_num, in.v_num);
  EXPECT_EQ(out.has_num, in.has_num);
  EXPECT_EQ(out.v_str, in.v_str) << "embedded NULs must survive";
  EXPECT_EQ(out.has_str, in.has_str);

  // The empty segment keeps its identity with zero-length arrays.
  EXPECT_TRUE(decoded[1].data.empty());
  EXPECT_EQ(decoded[1].data.s_id, "sig2");
}

TEST(PartialCodecTest, DoublesSurviveBitForBit) {
  // Values that would NOT survive a text round-trip at default precision.
  const std::vector<double> nasty = {
      0.1 + 0.2,
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      std::nextafter(1.0, 2.0),
      std::numeric_limits<double>::quiet_NaN(),
  };
  core::MorselPartial p;
  p.morsel = 0;
  core::SequenceData d;
  d.s_id = "s";
  d.bus = "b";
  for (std::size_t i = 0; i < nasty.size(); ++i) {
    d.t.push_back(static_cast<std::int64_t>(i));
    d.v_num.push_back(nasty[i]);
    d.has_num.push_back(1);
    d.v_str.emplace_back();
    d.has_str.push_back(0);
  }
  p.segments.push_back({"k", 0, std::move(d)});
  const std::vector<WireSegment> decoded =
      decode_partials(encode_partials({p}));
  ASSERT_EQ(decoded.size(), 1u);
  ASSERT_EQ(decoded[0].data.v_num.size(), nasty.size());
  for (std::size_t i = 0; i < nasty.size(); ++i) {
    std::uint64_t want = 0;
    std::uint64_t got = 0;
    std::memcpy(&want, &nasty[i], sizeof want);
    std::memcpy(&got, &decoded[0].data.v_num[i], sizeof got);
    EXPECT_EQ(got, want) << "double " << i << " not bit-exact";
  }
}

TEST(PartialCodecTest, EmptyPayloadRoundTrips) {
  const std::vector<WireSegment> decoded = decode_partials(
      encode_partials(std::vector<core::MorselPartial>{}));
  EXPECT_TRUE(decoded.empty());
}

TEST(PartialCodecTest, EveryTruncationThrowsDecode) {
  const std::string good = encode_partials(make_partials());
  // Chop at a spread of offsets including all the interesting boundaries
  // near the front; every prefix must throw, never crash or misread.
  for (std::size_t keep = 0; keep < good.size();
       keep += (keep < 64 ? 1 : 37)) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    const std::string bad = good.substr(0, keep);
    try {
      decode_partials(bad);
      FAIL() << "truncated payload decoded";
    } catch (const errors::Error& e) {
      EXPECT_EQ(e.category(), errors::Category::Decode);
    }
  }
}

TEST(PartialCodecTest, TrailingBytesThrowDecode) {
  std::string bad = encode_partials(make_partials());
  bad.push_back('\x00');
  try {
    decode_partials(bad);
    FAIL() << "trailing byte accepted";
  } catch (const errors::Error& e) {
    EXPECT_EQ(e.category(), errors::Category::Decode);
  }
}

TEST(PartialCodecTest, RangePayloadCarriesKsBlocksLosslessly) {
  // The full dist.result payload: segments plus per-morsel K_s row
  // blocks (nullable v_num / v_str, embedded NULs in strings).
  WireKsBlock blk;
  blk.morsel = 4;
  blk.t = {10, 20, 30};
  blk.s_id = {"a", "b", std::string("c\0d", 3)};
  blk.v_num = {0.1 + 0.2, 0.0, -0.0};
  blk.has_num = {1, 0, 1};
  blk.v_str = {"", "on", ""};
  blk.has_str = {0, 1, 0};
  blk.b_id = {"CAN0", "CAN1", "CAN0"};
  WireKsBlock empty;
  empty.morsel = 7;

  const RangePayload decoded = decode_range_payload(
      encode_range_payload(make_partials(), {blk, empty}));
  EXPECT_EQ(decoded.segments.size(), 3u);
  ASSERT_EQ(decoded.ks_blocks.size(), 2u);
  const WireKsBlock& out = decoded.ks_blocks[0];
  EXPECT_EQ(out.morsel, 4u);
  EXPECT_EQ(out.t, blk.t);
  EXPECT_EQ(out.s_id, blk.s_id) << "embedded NULs must survive";
  EXPECT_EQ(out.v_num, blk.v_num);
  EXPECT_EQ(out.has_num, blk.has_num);
  EXPECT_EQ(out.v_str, blk.v_str);
  EXPECT_EQ(out.has_str, blk.has_str);
  EXPECT_EQ(out.b_id, blk.b_id);
  EXPECT_EQ(decoded.ks_blocks[1].morsel, 7u);
  EXPECT_TRUE(decoded.ks_blocks[1].t.empty());
}

TEST(PartialCodecTest, RangePayloadTruncationsThrowDecode) {
  WireKsBlock blk;
  blk.morsel = 1;
  blk.t = {1};
  blk.s_id = {"s"};
  blk.v_num = {1.0};
  blk.has_num = {1};
  blk.v_str = {""};
  blk.has_str = {0};
  blk.b_id = {"CAN0"};
  const std::string good = encode_range_payload(make_partials(), {blk});
  for (std::size_t keep = 0; keep < good.size();
       keep += (keep < 64 ? 1 : 37)) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    try {
      (void)decode_range_payload(good.substr(0, keep));
      FAIL() << "truncated payload decoded";
    } catch (const errors::Error& e) {
      EXPECT_EQ(e.category(), errors::Category::Decode);
    }
  }
  std::string trailing = good;
  trailing.push_back('\x00');
  EXPECT_THROW((void)decode_range_payload(trailing), errors::Error);
}

TEST(PartialCodecTest, OverflowingLengthThrowsDecode) {
  // A hostile segment count far beyond the payload must be rejected by
  // bounds-checking, not by attempting a giant allocation.
  std::string bad(4, '\0');
  bad[0] = '\xFF';
  bad[1] = '\xFF';
  bad[2] = '\xFF';
  bad[3] = '\x7F';
  try {
    decode_partials(bad);
    FAIL() << "hostile count accepted";
  } catch (const errors::Error& e) {
    EXPECT_EQ(e.category(), errors::Category::Decode);
  }
}

}  // namespace
}  // namespace ivt::dist
