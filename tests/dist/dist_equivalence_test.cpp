// Differential batch-vs-distributed equivalence: the sharded
// coordinator/worker executor must be observationally indistinguishable
// from the batch pipeline — byte-identical K_s / K_rep / state, identical
// reports, failure counters and exit codes — across node counts, seeded
// failure rates and every --on-error policy, on clean and on corrupted
// input. Recovered runs (node deaths, re-assignments, speculative races)
// must be indistinguishable from clean ones except in the DistStats
// accounting, which the report JSON must carry. The whole suite is swept
// across both scan modes (--scan decoded|compressed); JobSpec carries the
// mode to every worker, so the compressed sweep also proves the wire
// plumbing.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "colstore/columnar_writer.hpp"
#include "colstore/format.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "dist/sim.hpp"
#include "signaldb/catalog.hpp"
#include "simnet/datasets.hpp"

#include "../common/corruption.hpp"
#include "../common/differ.hpp"

namespace ivt {
namespace {

class DistEquivalenceTest
    : public ::testing::TestWithParam<colstore::ScanMode> {
 protected:
  static void SetUpTestSuite() {
    simnet::DatasetConfig config;
    config.scale = 2e-4;  // ~14 s of the 20 h recording
    config.seed = 42;
    dataset_ = new simnet::Dataset(simnet::make_syn_dataset(config));
    catalog_path_ = new std::string(::testing::TempDir() + "/disteq.ivsdb");
    signaldb::save_catalog(dataset_->catalog, *catalog_path_);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
    delete catalog_path_;
    catalog_path_ = nullptr;
  }

  /// Workers open the trace by path, so unlike the streaming harness the
  /// .ivc must exist on disk — the same file backs the coordinator's
  /// reader and every node.
  static std::string pack(std::size_t chunk_rows) {
    const std::string path = ::testing::TempDir() + "/disteq_" +
                             std::to_string(chunk_rows) + ".ivc";
    colstore::ColumnarWriterOptions options;
    options.chunk_rows = chunk_rows;
    colstore::save_trace_columnar(dataset_->trace, path, options);
    return path;
  }

  /// Batch reference and dist run share the suite's scan-mode parameter,
  /// and JobSpec ships it to every worker — equivalence under the
  /// compressed path proves the wire plumbing too.
  [[nodiscard]] core::PipelineConfig base_config() const {
    core::PipelineConfig config;
    config.keep_ks = true;  // compare the K_s table too
    config.scan_mode = GetParam();
    return config;
  }

  static dist::DistRunConfig dist_config(const std::string& trace_path) {
    dist::DistRunConfig dcfg;
    dcfg.trace_path = trace_path;
    dcfg.catalog_path = *catalog_path_;
    return dcfg;
  }

  /// run_dist with the same outcome capture as testdiff::run_mode, so the
  /// existing batch-vs-X equivalence machinery applies unchanged.
  static testdiff::RunOutcome run_dist_outcome(
      const colstore::ColumnarReader& reader, core::PipelineConfig config,
      const dist::DistRunConfig& dcfg) {
    config.exec_mode = core::ExecMode::Dist;
    testdiff::RunOutcome out;
    dataflow::Engine engine({.workers = 2});
    try {
      out.result = dist::run_dist(dataset_->catalog, std::move(config),
                                  reader, dcfg, engine, &out.scan_stats);
      out.exit_code = out.result.failures.empty() ? 0 : 4;
    } catch (const errors::Error& e) {
      out.threw = true;
      out.error = e.describe();
      switch (e.category()) {
        case errors::Category::Format:
        case errors::Category::Decode:
        case errors::Category::Spec:
          out.exit_code = 3;
          break;
        default:
          out.exit_code = 1;
      }
    }
    return out;
  }

  static simnet::Dataset* dataset_;
  static std::string* catalog_path_;
};

simnet::Dataset* DistEquivalenceTest::dataset_ = nullptr;
std::string* DistEquivalenceTest::catalog_path_ = nullptr;

TEST_P(DistEquivalenceTest, CleanRunsIdenticalAcrossNodeCounts) {
  const std::string trace = pack(256);
  const colstore::ColumnarReader reader(trace);
  const testdiff::RunOutcome batch = testdiff::run_mode(
      dataset_->catalog, reader, base_config(), core::ExecMode::Batch);
  ASSERT_FALSE(batch.threw) << batch.error;
  for (const std::size_t nodes : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}}) {
    SCOPED_TRACE("nodes=" + std::to_string(nodes));
    dist::DistRunConfig dcfg = dist_config(trace);
    dcfg.nodes = nodes;
    const testdiff::RunOutcome dist =
        run_dist_outcome(reader, base_config(), dcfg);
    EXPECT_TRUE(testdiff::outcomes_equivalent(batch, dist));
    EXPECT_TRUE(dist.result.dist.enabled);
    EXPECT_EQ(dist.result.dist.worker_deaths, 0u);
    EXPECT_GT(dist.result.dist.ranges_total, 0u);
  }
}

TEST_P(DistEquivalenceTest, IdenticalAcrossChunkingsAndRangeCuts) {
  for (const std::size_t chunk_rows : {std::size_t{256}, std::size_t{2048},
                                       std::size_t{1u << 20}}) {
    SCOPED_TRACE("chunk_rows=" + std::to_string(chunk_rows));
    const std::string trace = pack(chunk_rows);
    const colstore::ColumnarReader reader(trace);
    const testdiff::RunOutcome batch = testdiff::run_mode(
        dataset_->catalog, reader, base_config(), core::ExecMode::Batch);
    ASSERT_FALSE(batch.threw) << batch.error;
    for (const std::uint64_t target : {std::uint64_t{0}, std::uint64_t{1},
                                       std::uint64_t{3}}) {
      SCOPED_TRACE("target_ranges=" + std::to_string(target));
      dist::DistRunConfig dcfg = dist_config(trace);
      dcfg.nodes = 2;
      dcfg.target_ranges = target;
      const testdiff::RunOutcome dist =
          run_dist_outcome(reader, base_config(), dcfg);
      EXPECT_TRUE(testdiff::outcomes_equivalent(batch, dist));
    }
  }
}

// The acceptance sweep: seeded failure schedules at the issue's nominal
// rate. EVERY probed seed must produce byte-identical output with exit 0;
// at least one must actually exercise the recovery path (deaths AND a
// re-queued range), and that run's report JSON must account for it.
TEST_P(DistEquivalenceTest, SeededFailuresRecoverByteIdentical) {
  const std::string trace = pack(256);
  const colstore::ColumnarReader reader(trace);
  const testdiff::RunOutcome batch = testdiff::run_mode(
      dataset_->catalog, reader, base_config(), core::ExecMode::Batch);
  ASSERT_FALSE(batch.threw) << batch.error;

  bool recovery_proven = false;
  for (std::uint64_t seed = 1; seed <= 12 && !recovery_proven; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    dist::DistRunConfig dcfg = dist_config(trace);
    dcfg.nodes = 4;
    dcfg.failure_rate = 0.05;
    dcfg.seed = seed;
    const testdiff::RunOutcome dist =
        run_dist_outcome(reader, base_config(), dcfg);
    ASSERT_TRUE(testdiff::outcomes_equivalent(batch, dist));
    ASSERT_EQ(dist.exit_code, 0) << "a recovered run must look clean";
    const core::DistStats& stats = dist.result.dist;
    if (stats.worker_deaths >= 1 && stats.ranges_reassigned >= 1) {
      recovery_proven = true;
      // The accounting must be auditable from the report JSON.
      const std::string json = core::report_to_json(dist.result);
      EXPECT_NE(json.find("\"dist\": {"), std::string::npos);
      EXPECT_NE(json.find("\"worker_deaths\": "), std::string::npos);
      EXPECT_NE(
          json.find("\"ranges_reassigned\": " +
                    std::to_string(stats.ranges_reassigned)),
          std::string::npos);
    }
  }
  EXPECT_TRUE(recovery_proven)
      << "no probed seed produced a death plus a re-assigned range — the "
         "recovery path went untested";
}

TEST_P(DistEquivalenceTest, HostileFailureRateStillTerminatesIdentical) {
  const std::string trace = pack(256);
  const colstore::ColumnarReader reader(trace);
  const testdiff::RunOutcome batch = testdiff::run_mode(
      dataset_->catalog, reader, base_config(), core::ExecMode::Batch);
  dist::DistRunConfig dcfg = dist_config(trace);
  dcfg.nodes = 4;
  dcfg.failure_rate = 0.5;  // way past anything realistic
  dcfg.seed = 7;
  const testdiff::RunOutcome dist =
      run_dist_outcome(reader, base_config(), dcfg);
  // The respawn budget guarantees termination no matter the rate.
  EXPECT_TRUE(testdiff::outcomes_equivalent(batch, dist));
  EXPECT_GE(dist.result.dist.worker_deaths, 1u);
}

TEST_P(DistEquivalenceTest, IdenticalAcrossErrorPoliciesOnCleanInput) {
  const std::string trace = pack(512);
  const colstore::ColumnarReader reader(trace);
  for (const errors::ErrorPolicy policy :
       {errors::ErrorPolicy::Fail, errors::ErrorPolicy::Skip,
        errors::ErrorPolicy::Quarantine}) {
    SCOPED_TRACE("policy=" + std::to_string(static_cast<int>(policy)));
    core::PipelineConfig config = base_config();
    config.on_error = policy;
    const testdiff::RunOutcome batch = testdiff::run_mode(
        dataset_->catalog, reader, config, core::ExecMode::Batch);
    dist::DistRunConfig dcfg = dist_config(trace);
    dcfg.nodes = 3;
    dcfg.failure_rate = 0.2;
    dcfg.seed = 5;
    const testdiff::RunOutcome dist = run_dist_outcome(reader, config, dcfg);
    EXPECT_TRUE(testdiff::outcomes_equivalent(batch, dist));
  }
}

class DistCorruptionTest : public DistEquivalenceTest {};

TEST_P(DistCorruptionTest, CorruptChunkEquivalentUnderSkipAndQuarantine) {
  const std::string good_path = pack(256);
  std::ifstream in(good_path, std::ios::binary);
  const std::string good((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const testcorrupt::IvcCorruptor corruptor(good);
  ASSERT_GT(corruptor.num_chunks(), 2u);
  const std::string bad_path = testcorrupt::write_file(
      ::testing::TempDir() + "/disteq_bad.ivc",
      corruptor.with_stomped_chunk(1));
  const colstore::ColumnarReader reader(bad_path);

  for (const errors::ErrorPolicy policy :
       {errors::ErrorPolicy::Skip, errors::ErrorPolicy::Quarantine}) {
    SCOPED_TRACE("policy=" + std::to_string(static_cast<int>(policy)));
    core::PipelineConfig config = base_config();
    config.on_error = policy;
    const testdiff::RunOutcome batch = testdiff::run_mode(
        dataset_->catalog, reader, config, core::ExecMode::Batch);
    ASSERT_FALSE(batch.threw) << batch.error;
    ASSERT_EQ(batch.exit_code, 4) << "partial success expected";
    dist::DistRunConfig dcfg = dist_config(bad_path);
    dcfg.nodes = 3;
    const testdiff::RunOutcome dist = run_dist_outcome(reader, config, dcfg);
    // Identical recovered-failure records too: the corrupt chunk is
    // reported exactly once however many nodes scanned around it.
    EXPECT_TRUE(testdiff::outcomes_equivalent(batch, dist));
    EXPECT_EQ(
        testdiff::failure_counts(dist.result.failures)["colstore.decode_chunk"],
        1u);
  }
}

TEST_P(DistCorruptionTest, CorruptChunkUnderFailAbortsLikeBatch) {
  const std::string good_path = pack(256);
  std::ifstream in(good_path, std::ios::binary);
  const std::string good((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const testcorrupt::IvcCorruptor corruptor(good);
  const std::string bad_path = testcorrupt::write_file(
      ::testing::TempDir() + "/disteq_badfail.ivc",
      corruptor.with_stomped_chunk(1));
  const colstore::ColumnarReader reader(bad_path);

  core::PipelineConfig config = base_config();
  config.on_error = errors::ErrorPolicy::Fail;
  const testdiff::RunOutcome batch = testdiff::run_mode(
      dataset_->catalog, reader, config, core::ExecMode::Batch);
  ASSERT_TRUE(batch.threw);
  ASSERT_EQ(batch.exit_code, 3);

  dist::DistRunConfig dcfg = dist_config(bad_path);
  dcfg.nodes = 2;
  const testdiff::RunOutcome dist = run_dist_outcome(reader, config, dcfg);
  // The worker's typed error must surface through the cluster teardown:
  // same thrown/exit-code observables as the batch abort, not a generic
  // "all slots died" internal error.
  EXPECT_TRUE(dist.threw);
  EXPECT_EQ(dist.exit_code, batch.exit_code)
      << "dist error: " << dist.error;
}

inline std::string scan_mode_name(
    const ::testing::TestParamInfo<colstore::ScanMode>& info) {
  return std::string(colstore::to_string(info.param));
}

INSTANTIATE_TEST_SUITE_P(ScanModes, DistEquivalenceTest,
                         ::testing::Values(colstore::ScanMode::Decoded,
                                           colstore::ScanMode::Compressed),
                         scan_mode_name);
INSTANTIATE_TEST_SUITE_P(ScanModes, DistCorruptionTest,
                         ::testing::Values(colstore::ScanMode::Decoded,
                                           colstore::ScanMode::Compressed),
                         scan_mode_name);

}  // namespace
}  // namespace ivt
