// Fault injection against the coordinator's three dist.* sites, armed
// programmatically with the same recipes IVT_FAULTS would carry:
//
//   dist.register  — dropped registrations are retried under backoff
//   dist.heartbeat — starved beats kill the worker; its ranges are
//                    re-assigned and the merge stays byte-identical
//   dist.result    — dropped results are re-sent, not lost; the
//                    (range, epoch) dedup makes retries safe
//
// Every scenario must end in a completed job whose output is equivalent
// to batch — recovery is only recovery if the answer does not change.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "colstore/columnar_writer.hpp"
#include "core/pipeline.hpp"
#include "dist/sim.hpp"
#include "faultfx/faultfx.hpp"
#include "signaldb/catalog.hpp"
#include "simnet/datasets.hpp"

#include "../common/differ.hpp"

namespace ivt {
namespace {

class DistFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    simnet::DatasetConfig config;
    config.scale = 2e-4;
    config.seed = 42;
    dataset_ = new simnet::Dataset(simnet::make_syn_dataset(config));
    catalog_path_ = new std::string(::testing::TempDir() + "/distfx.ivsdb");
    signaldb::save_catalog(dataset_->catalog, *catalog_path_);
    trace_path_ = new std::string(::testing::TempDir() + "/distfx.ivc");
    colstore::ColumnarWriterOptions options;
    options.chunk_rows = 256;
    colstore::save_trace_columnar(dataset_->trace, *trace_path_, options);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
    delete catalog_path_;
    catalog_path_ = nullptr;
    delete trace_path_;
    trace_path_ = nullptr;
  }

  void TearDown() override { faultfx::disarm_all(); }

  static core::PipelineConfig base_config() {
    core::PipelineConfig config;
    config.keep_ks = true;
    return config;
  }

  static dist::DistRunConfig dist_config() {
    dist::DistRunConfig dcfg;
    dcfg.trace_path = *trace_path_;
    dcfg.catalog_path = *catalog_path_;
    return dcfg;
  }

  testdiff::RunOutcome batch_outcome() {
    const colstore::ColumnarReader reader(*trace_path_);
    return testdiff::run_mode(dataset_->catalog, reader, base_config(),
                              core::ExecMode::Batch);
  }

  testdiff::RunOutcome dist_outcome(const dist::DistRunConfig& dcfg) {
    core::PipelineConfig config = base_config();
    config.exec_mode = core::ExecMode::Dist;
    const colstore::ColumnarReader reader(*trace_path_);
    testdiff::RunOutcome out;
    dataflow::Engine engine({.workers = 2});
    try {
      out.result = dist::run_dist(dataset_->catalog, std::move(config),
                                  reader, dcfg, engine, &out.scan_stats);
      out.exit_code = out.result.failures.empty() ? 0 : 4;
    } catch (const errors::Error& e) {
      out.threw = true;
      out.error = e.describe();
      out.exit_code = 1;
    }
    return out;
  }

  static simnet::Dataset* dataset_;
  static std::string* catalog_path_;
  static std::string* trace_path_;
};

simnet::Dataset* DistFaultTest::dataset_ = nullptr;
std::string* DistFaultTest::catalog_path_ = nullptr;
std::string* DistFaultTest::trace_path_ = nullptr;

TEST_F(DistFaultTest, DroppedRegistrationsAreRetriedUntilAccepted) {
  // Every other registration attempt dies coordinator-side. Workers must
  // absorb it with jittered backoff and the run must not lose a node.
  ASSERT_GT(faultfx::arm("dist.register:error:0.5:seed=5"), 0u)
      << "faultfx compiled out — the fault lane cannot run";
  dist::DistRunConfig dcfg = dist_config();
  dcfg.nodes = 3;
  const testdiff::RunOutcome dist = dist_outcome(dcfg);
  faultfx::disarm_all();

  EXPECT_GE(faultfx::triggered("dist.register"), 1u)
      << "recipe never fired; the test proves nothing";
  ASSERT_FALSE(dist.threw) << dist.error;
  EXPECT_EQ(dist.exit_code, 0);
  EXPECT_GE(dist.result.dist.registrations_retried, 1u)
      << "coordinator must account for every dropped registration";
  EXPECT_TRUE(testdiff::outcomes_equivalent(batch_outcome(), dist));
}

TEST_F(DistFaultTest, StarvedHeartbeatsKillReassignAndMergeCorrectly) {
  // Most beats vanish; workers are slowed so a range outlives the
  // missed-beat deadline whenever the drops line up. Workers get declared
  // dead mid-range, their ranges re-queue, their ghost results arrive
  // fenced (Stale) — and the merged output must not care. Speculation is
  // parked (min_age huge) so every recovery here is a death re-queue,
  // making ranges_reassigned >= 1 a hard guarantee given a death.
  // Calibration: the 60 ms deadline (3 x 20 ms beats) dies on 3 straight
  // drops — p^3 ~= 0.51 per window, so a multi-window range attempt dies
  // more often than not, yet survives often enough (~25-40 %) that the
  // job finishes in seconds instead of relying on a rare lucky streak.
  ASSERT_GT(faultfx::arm("dist.heartbeat:error:0.8:seed=3"), 0u);
  dist::DistRunConfig dcfg = dist_config();
  dcfg.nodes = 3;
  dcfg.heartbeat_ms = 20;
  dcfg.dead_after_missed = 3;
  dcfg.slow_factor = 40.0;  // ~38 ms per morsel: 2-morsel ranges > deadline
  dcfg.target_ranges = 4;
  dcfg.speculate_min_age = 1'000'000;
  const testdiff::RunOutcome dist = dist_outcome(dcfg);
  faultfx::disarm_all();

  EXPECT_GE(faultfx::triggered("dist.heartbeat"), 1u);
  ASSERT_FALSE(dist.threw) << dist.error;
  EXPECT_EQ(dist.exit_code, 0);
  EXPECT_GE(dist.result.dist.worker_deaths, 1u)
      << "no worker was ever declared dead — deadline math is off";
  EXPECT_GE(dist.result.dist.ranges_reassigned, 1u)
      << "a death with in-flight work must re-queue it";
  EXPECT_TRUE(testdiff::outcomes_equivalent(batch_outcome(), dist));
}

TEST_F(DistFaultTest, DroppedResultsAreResentNotLost) {
  // Results die between transport and merge with cat=overloaded (a
  // retryable category): the worker re-sends the identical frame. No
  // double-merge may occur — equivalence against batch is exactly the
  // proof, since a twice-merged range would double its rows.
  ASSERT_GT(
      faultfx::arm("dist.result:error:0.3:seed=9:cat=overloaded"), 0u);
  dist::DistRunConfig dcfg = dist_config();
  dcfg.nodes = 2;
  const testdiff::RunOutcome dist = dist_outcome(dcfg);
  faultfx::disarm_all();

  EXPECT_GE(faultfx::triggered("dist.result"), 1u);
  ASSERT_FALSE(dist.threw) << dist.error;
  EXPECT_EQ(dist.exit_code, 0);
  EXPECT_TRUE(testdiff::outcomes_equivalent(batch_outcome(), dist));
}

}  // namespace
}  // namespace ivt
