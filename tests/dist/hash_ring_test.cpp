// Consistent hash ring: deterministic placement, insertion-order
// independence, bounded movement on membership change, and a sane load
// spread for small clusters — the properties the coordinator's preferred-
// owner assignment leans on.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dist/hash_ring.hpp"

namespace ivt::dist {
namespace {

TEST(HashRingTest, EmptyRingOwnsNothing) {
  const HashRing ring;
  EXPECT_EQ(ring.num_nodes(), 0u);
  EXPECT_EQ(ring.owner(42), "");
  EXPECT_EQ(ring.owner_of_range(0), "");
}

TEST(HashRingTest, AddRemoveContains) {
  HashRing ring;
  ring.add_node("a");
  ring.add_node("b");
  EXPECT_TRUE(ring.contains("a"));
  EXPECT_TRUE(ring.contains("b"));
  EXPECT_FALSE(ring.contains("c"));
  EXPECT_EQ(ring.num_nodes(), 2u);
  ring.remove_node("a");
  EXPECT_FALSE(ring.contains("a"));
  EXPECT_EQ(ring.num_nodes(), 1u);
  // Every key lands on the sole survivor.
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(ring.owner(splitmix64(k)), "b");
  }
}

TEST(HashRingTest, AddIsIdempotent) {
  HashRing ring;
  ring.add_node("a");
  ring.add_node("a");
  EXPECT_EQ(ring.num_nodes(), 1u);
  ring.remove_node("a");
  EXPECT_EQ(ring.num_nodes(), 0u);
  EXPECT_EQ(ring.owner(7), "");
}

TEST(HashRingTest, OwnershipIndependentOfInsertionOrder) {
  HashRing forward;
  HashRing backward;
  const std::vector<std::string> nodes = {"node1", "node2", "node3",
                                          "node4"};
  for (const std::string& n : nodes) forward.add_node(n);
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
    backward.add_node(*it);
  }
  for (std::uint64_t k = 0; k < 512; ++k) {
    EXPECT_EQ(forward.owner(splitmix64(k)), backward.owner(splitmix64(k)))
        << "key " << k;
  }
}

TEST(HashRingTest, RemovalMovesOnlyTheRemovedNodesKeys) {
  HashRing ring;
  for (const char* n : {"node1", "node2", "node3", "node4"}) {
    ring.add_node(n);
  }
  std::map<std::uint64_t, std::string> before;
  for (std::uint64_t k = 0; k < 512; ++k) {
    before[k] = ring.owner_of_range(k);
  }
  ring.remove_node("node3");
  for (std::uint64_t k = 0; k < 512; ++k) {
    if (before[k] == "node3") continue;  // must move somewhere
    EXPECT_EQ(ring.owner_of_range(k), before[k])
        << "key " << k << " moved although its owner survived";
  }
}

TEST(HashRingTest, SpreadIsReasonablyEven) {
  HashRing ring;
  const std::vector<std::string> nodes = {"node1", "node2", "node3",
                                          "node4"};
  for (const std::string& n : nodes) ring.add_node(n);
  std::map<std::string, std::size_t> owned;
  const std::size_t kKeys = 4096;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ++owned[ring.owner_of_range(k)];
  }
  // 40 virtual points per node keep the spread within a loose 2x band of
  // the fair share — the claim is "no starved node", not perfection.
  for (const std::string& n : nodes) {
    EXPECT_GT(owned[n], kKeys / nodes.size() / 2) << n << " starved";
    EXPECT_LT(owned[n], kKeys * 2 / nodes.size()) << n << " overloaded";
  }
}

TEST(HashRingTest, StableHashIsStable) {
  // Pinned values: cross-process agreement is the whole point (std::hash
  // would be free to differ between the coordinator and a worker build).
  EXPECT_EQ(stable_hash(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(stable_hash("node1"), stable_hash(std::string("node1")));
  EXPECT_NE(stable_hash("node1"), stable_hash("node2"));
}

}  // namespace
}  // namespace ivt::dist
