// Range planning and the RangeTracker state machine: exactly-once
// acceptance per range, re-queue on revoke, speculative duplication, and
// the epoch fencing that turns zombie results into harmless Stale /
// Duplicate outcomes.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "dist/assignment.hpp"
#include "dist/hash_ring.hpp"

namespace ivt::dist {
namespace {

HashRing two_node_ring() {
  HashRing ring;
  ring.add_node("a");
  ring.add_node("b");
  return ring;
}

TEST(PlanRangesTest, CoversEveryMorselContiguously) {
  for (const std::uint64_t morsels : {1u, 2u, 9u, 16u, 100u}) {
    for (const std::uint64_t target : {0u, 1u, 3u, 8u, 1000u}) {
      SCOPED_TRACE("morsels=" + std::to_string(morsels) +
                   " target=" + std::to_string(target));
      const std::vector<ChunkRange> ranges = plan_ranges(morsels, target);
      ASSERT_FALSE(ranges.empty());
      // Never more ranges than morsels, never empty ranges.
      EXPECT_LE(ranges.size(), morsels);
      std::uint64_t expect_begin = 0;
      std::uint64_t max_len = 0;
      std::uint64_t min_len = morsels + 1;
      for (std::size_t i = 0; i < ranges.size(); ++i) {
        EXPECT_EQ(ranges[i].id, i);
        EXPECT_EQ(ranges[i].begin, expect_begin);
        EXPECT_GT(ranges[i].end, ranges[i].begin);
        const std::uint64_t len = ranges[i].end - ranges[i].begin;
        max_len = std::max(max_len, len);
        min_len = std::min(min_len, len);
        expect_begin = ranges[i].end;
      }
      EXPECT_EQ(expect_begin, morsels);  // exact cover, no gap, no overlap
      EXPECT_LE(max_len - min_len, 1u);  // near-equal cuts
    }
  }
}

TEST(PlanRangesTest, ZeroMorselsPlansNothing) {
  EXPECT_TRUE(plan_ranges(0, 8).empty());
}

TEST(RangeTrackerTest, AssignsEachRangeExactlyOnceThenDrains) {
  const HashRing ring = two_node_ring();
  RangeTracker tracker(plan_ranges(8, 4));
  ASSERT_EQ(tracker.num_ranges(), 4u);
  std::set<std::uint64_t> ids;
  std::set<std::uint64_t> epochs;
  ChunkRange range;
  std::uint64_t epoch = 0;
  for (int i = 0; i < 4; ++i) {
    const std::string worker = (i % 2 == 0) ? "a" : "b";
    ASSERT_TRUE(tracker.next(worker, ring, range, epoch));
    EXPECT_TRUE(ids.insert(range.id).second) << "range issued twice";
    EXPECT_TRUE(epochs.insert(epoch).second) << "epoch reused";
    EXPECT_NE(epoch, 0u) << "0 must never be a valid epoch";
  }
  EXPECT_EQ(tracker.pending(), 0u);
  EXPECT_FALSE(tracker.next("a", ring, range, epoch))
      << "nothing pending, nothing to hand out";
  EXPECT_FALSE(tracker.all_done());
}

TEST(RangeTrackerTest, CompletionIsExactlyOncePerRange) {
  const HashRing ring = two_node_ring();
  RangeTracker tracker(plan_ranges(4, 4));
  ChunkRange range;
  std::uint64_t epoch = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(tracker.next("a", ring, range, epoch));
    EXPECT_EQ(tracker.complete(range.id, epoch), CompletionFate::Accepted);
    // A zombie re-send of the identical (range, epoch) reads Duplicate.
    EXPECT_EQ(tracker.complete(range.id, epoch),
              CompletionFate::Duplicate);
  }
  EXPECT_TRUE(tracker.all_done());
  // Out-of-range ids from a corrupted frame are Stale, never a crash.
  EXPECT_EQ(tracker.complete(99, 1), CompletionFate::Stale);
}

TEST(RangeTrackerTest, RevokeRequeuesAndFencesTheOldEpoch) {
  const HashRing ring = two_node_ring();
  RangeTracker tracker(plan_ranges(2, 2));
  ChunkRange first;
  std::uint64_t dead_epoch = 0;
  ASSERT_TRUE(tracker.next("a", ring, first, dead_epoch));
  EXPECT_EQ(tracker.in_flight_on("a"), 1u);

  EXPECT_EQ(tracker.revoke("a"), 1u);
  EXPECT_EQ(tracker.in_flight_on("a"), 0u);
  EXPECT_EQ(tracker.pending(), 2u) << "revoked range back in the queue";

  // The replacement execution gets a fresh epoch on the same range.
  ChunkRange reissued;
  std::uint64_t new_epoch = 0;
  bool found = false;
  for (int i = 0; i < 2; ++i) {
    ChunkRange r;
    std::uint64_t e = 0;
    ASSERT_TRUE(tracker.next("b", ring, r, e));
    if (r.id == first.id) {
      reissued = r;
      new_epoch = e;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_GT(new_epoch, dead_epoch);

  // The dead worker's ghost result is fenced; the live one is accepted.
  EXPECT_EQ(tracker.complete(first.id, dead_epoch), CompletionFate::Stale);
  EXPECT_EQ(tracker.complete(reissued.id, new_epoch),
            CompletionFate::Accepted);
}

TEST(RangeTrackerTest, RevokeOfUnknownWorkerIsANoop) {
  const HashRing ring = two_node_ring();
  RangeTracker tracker(plan_ranges(2, 2));
  ChunkRange range;
  std::uint64_t epoch = 0;
  ASSERT_TRUE(tracker.next("a", ring, range, epoch));
  EXPECT_EQ(tracker.revoke("nobody"), 0u);
  EXPECT_EQ(tracker.in_flight_on("a"), 1u);
}

TEST(RangeTrackerTest, SpeculationDuplicatesTheOldestStraggler) {
  const HashRing ring = two_node_ring();
  // A single range held by "a": the only speculation candidate, so the
  // self-duplication and min-age refusals below are unambiguous.
  RangeTracker tracker(plan_ranges(2, 1));
  ChunkRange straggling;
  std::uint64_t slow_epoch = 0;
  ASSERT_TRUE(tracker.next("a", ring, straggling, slow_epoch));

  // Too young at min_age above the elapsed grant count.
  ChunkRange dup;
  std::uint64_t dup_epoch = 0;
  EXPECT_FALSE(tracker.speculate("b", /*min_age=*/100, dup, dup_epoch));
  // The straggler's own worker never duplicates onto itself.
  EXPECT_FALSE(tracker.speculate("a", /*min_age=*/1, dup, dup_epoch));

  ASSERT_TRUE(tracker.speculate("b", /*min_age=*/1, dup, dup_epoch));
  EXPECT_EQ(dup.id, straggling.id);
  EXPECT_NE(dup_epoch, slow_epoch);

  // The duplicate finishing first reads AcceptedSpeculative; the loser's
  // late result reads Duplicate — merged exactly once either way.
  EXPECT_EQ(tracker.complete(dup.id, dup_epoch),
            CompletionFate::AcceptedSpeculative);
  EXPECT_EQ(tracker.complete(straggling.id, slow_epoch),
            CompletionFate::Duplicate);
}

TEST(RangeTrackerTest, RevokeSparesRangesWithALiveSpeculativeCopy) {
  const HashRing ring = two_node_ring();
  RangeTracker tracker(plan_ranges(2, 2));
  ChunkRange range;
  std::uint64_t epoch = 0;
  ASSERT_TRUE(tracker.next("a", ring, range, epoch));
  ChunkRange other;
  std::uint64_t e = 0;
  ASSERT_TRUE(tracker.next("b", ring, other, e));
  ChunkRange dup;
  std::uint64_t dup_epoch = 0;
  ASSERT_TRUE(tracker.speculate("b", /*min_age=*/1, dup, dup_epoch));
  ASSERT_EQ(dup.id, range.id);

  // "a" dies: its copy is removed, but the range is NOT re-queued — the
  // speculative copy on "b" is still running it.
  EXPECT_EQ(tracker.revoke("a"), 0u);
  EXPECT_EQ(tracker.pending(), 0u);
  EXPECT_EQ(tracker.complete(dup.id, dup_epoch),
            CompletionFate::AcceptedSpeculative);
}

TEST(RangeTrackerTest, PrefersTheRingOwnerBeforeStealing) {
  HashRing ring;
  ring.add_node("a");
  ring.add_node("b");
  RangeTracker tracker(plan_ranges(16, 16));
  // First pull for "a" must be a range "a" owns whenever one is pending
  // (with 16 ranges over 2 nodes, both own several with overwhelming
  // probability under any hash).
  ChunkRange range;
  std::uint64_t epoch = 0;
  ASSERT_TRUE(tracker.next("a", ring, range, epoch));
  bool a_owns_any = false;
  for (std::uint64_t begin = 0; begin < 16; ++begin) {
    if (ring.owner_of_range(begin) == "a") a_owns_any = true;
  }
  if (a_owns_any) {
    EXPECT_EQ(ring.owner_of_range(range.begin), "a")
        << "stole although a preferred range was pending";
  }
}

}  // namespace
}  // namespace ivt::dist
