// Fuzz wall around the .ivc decoders: every mutated image, fed to the
// reader and scanned under both scan modes and every error policy, must
// either produce a result or throw a typed errors::Error — never any
// other exception type, never UB (the ASan CI lane runs this harness to
// catch the latter). The corpus is bounded and deterministic: each
// (base image, iteration) pair is an exact repro recipe.
//
// No cross-mode output comparison happens on mutated bytes on purpose:
// both paths validate, but a mutation can push an image into a state
// where one path legitimately rejects earlier than the other. Output
// equality on *valid* images is the property suite's job.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "colstore/columnar_reader.hpp"
#include "colstore/columnar_writer.hpp"
#include "errors/error.hpp"
#include "tracefile/trace.hpp"

#include "fuzz_mutator.hpp"

// GCC 12 emits a spurious -Wrestrict on inlined std::string copies of
// the mutated images (PR105329); the harness performs no overlapping
// copies.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

namespace ivt {
namespace {

using colstore::ScanMode;
using colstore::ScanOptions;
using colstore::ScanPredicate;

tracefile::Trace small_trace(std::uint64_t seed, std::size_t n) {
  testfuzz::SplitMix64 rng(seed);
  tracefile::Trace trace;
  trace.vehicle = "V";
  trace.journey = "J";
  std::int64_t t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tracefile::TraceRecord rec;
    t += static_cast<std::int64_t>(rng.below(5000));
    rec.t_ns = t;
    rec.bus = "BUS" + std::to_string(rng.below(3));
    rec.message_id = static_cast<std::int64_t>(rng.below(32));
    rec.protocol = static_cast<protocol::Protocol>(rng.below(5));
    rec.flags = static_cast<std::uint32_t>(rng.below(4));
    rec.payload.resize(rng.below(12));
    for (auto& b : rec.payload) b = static_cast<std::uint8_t>(rng.below(256));
    trace.records.push_back(std::move(rec));
  }
  return trace;
}

std::string pack(const tracefile::Trace& trace, std::size_t chunk_rows) {
  std::ostringstream out(std::ios::binary);
  colstore::ColumnarWriter writer(out, trace.vehicle, trace.journey, 0,
                                  {.chunk_rows = chunk_rows});
  for (const auto& rec : trace.records) writer.write(rec);
  writer.finish();
  return out.str();
}

/// The whole decoder surface one image can reach. Returns false (with a
/// recorded failure) when anything other than errors::Error escapes.
bool exercise(std::string image, const std::string& repro) {
  std::vector<ScanPredicate> preds(2);
  preds[1].message_ids = {3, 7};
  preds[1].buses = {"BUS1"};
  try {
    const colstore::ColumnarReader reader =
        colstore::ColumnarReader::from_buffer(std::move(image));
    for (const ScanPredicate& pred : preds) {
      for (const ScanMode mode : {ScanMode::Decoded, ScanMode::Compressed}) {
        for (const errors::ErrorPolicy policy :
             {errors::ErrorPolicy::Fail, errors::ErrorPolicy::Skip,
              errors::ErrorPolicy::Quarantine}) {
          try {
            ScanOptions options;
            options.on_error = policy;
            options.mode = mode;
            (void)reader.scan(pred, options, nullptr).num_rows();
          } catch (const errors::Error&) {
            // Typed rejection is a correct outcome.
          }
        }
      }
    }
  } catch (const errors::Error&) {
    // Typed rejection at parse time is a correct outcome.
  } catch (const std::exception& e) {
    ADD_FAILURE() << repro << ": untyped exception escaped: " << e.what();
    return false;
  }
  return true;
}

TEST(FuzzIvcTest, MutatedImagesNeverEscapeTypedErrors) {
  const std::vector<std::string> bases = {
      pack(small_trace(1, 120), 16),  // multi-chunk, busy
      pack(small_trace(2, 33), 1),    // single-row chunks
      pack(small_trace(3, 0), 8),     // empty trace (footer-heavy image)
  };
  constexpr std::uint64_t kIterations = 400;
  for (std::size_t b = 0; b < bases.size(); ++b) {
    for (std::uint64_t i = 0; i < kIterations; ++i) {
      const std::string repro =
          "base=" + std::to_string(b) + " iter=" + std::to_string(i);
      if (!exercise(testfuzz::mutate(bases[b], i), repro)) return;
    }
  }
}

// The serve chunk-cache path: a cached chunk extent whose bytes rot (or
// arrive damaged) must be rejected typed, whichever scan mode evaluates
// it — the directory entry it is checked against is still good.
TEST(FuzzIvcTest, MutatedChunkExtentsNeverEscapeTypedErrors) {
  const std::string image = pack(small_trace(7, 150), 32);
  const colstore::ColumnarReader reader =
      colstore::ColumnarReader::from_buffer(std::string(image));
  ASSERT_GE(reader.num_chunks(), 2u);
  constexpr std::uint64_t kIterations = 400;
  for (std::size_t c = 0; c < reader.num_chunks(); ++c) {
    const colstore::ChunkInfo& info = reader.chunk(c);
    const std::string good = image.substr(
        static_cast<std::size_t>(info.offset),
        static_cast<std::size_t>(info.encoded_bytes));
    // The cache stores extents standalone: rebase the directory entry.
    colstore::ChunkInfo rebased = info;
    rebased.offset = 0;
    for (std::uint64_t i = 0; i < kIterations; ++i) {
      const std::string bad = testfuzz::mutate(good, i ^ (c << 32));
      for (const ScanMode mode : {ScanMode::Decoded, ScanMode::Compressed}) {
        try {
          (void)colstore::scan_chunk_from_bytes(
              bad, rebased, ScanPredicate{}, reader.bus_names(),
              reader.version(), reader.key_dict(), mode, nullptr);
        } catch (const errors::Error&) {
        } catch (const std::exception& e) {
          ADD_FAILURE() << "chunk=" << c << " iter=" << i
                        << " mode=" << colstore::to_string(mode)
                        << ": untyped exception escaped: " << e.what();
          return;
        }
      }
    }
  }
}

// Sanity: the harness passes unmutated images through untouched, so a
// regression that rejects valid data cannot hide behind "typed error is
// an accepted outcome".
TEST(FuzzIvcTest, UnmutatedImagesDecodeCleanly) {
  const std::string image = pack(small_trace(11, 90), 16);
  const colstore::ColumnarReader reader =
      colstore::ColumnarReader::from_buffer(std::string(image));
  for (const ScanMode mode : {ScanMode::Decoded, ScanMode::Compressed}) {
    EXPECT_EQ(reader.scan({}, ScanOptions{.mode = mode}, nullptr).num_rows(),
              90u);
  }
}

}  // namespace
}  // namespace ivt
