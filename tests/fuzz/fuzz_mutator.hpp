// Dependency-free deterministic mutation engine for the fuzz wall: no
// libFuzzer, no coverage feedback — just a seeded SplitMix64 stream
// driving byte-level vandalism of known-good container images. Every
// iteration is reproducible from (base image, seed), so a failure report
// of "seed N on image M" is a complete repro recipe. The operation mix
// (bit flips, byte stomps, truncations, splices, insertions, zero runs)
// is chosen to hit both subtle value corruption (varint payload bits,
// RLE run lengths) and structural damage (lost footers, shifted block
// boundaries).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ivt::testfuzz {

/// SplitMix64: tiny, fast, full-period; the reference constants.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform-ish value in [0, n); n must be nonzero.
  std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  std::uint64_t state_;
};

/// One mutated copy of `base`: 1-4 randomly chosen operations. The result
/// may be shorter, longer or empty — decoders must survive all of it.
inline std::string mutate(const std::string& base, std::uint64_t seed) {
  SplitMix64 rng(seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
  std::string data = base;
  const std::uint64_t n_ops = 1 + rng.below(4);
  for (std::uint64_t op = 0; op < n_ops; ++op) {
    if (data.empty()) break;
    switch (rng.below(6)) {
      case 0: {  // single bit flip
        const std::size_t i = rng.below(data.size());
        data[i] = static_cast<char>(
            static_cast<std::uint8_t>(data[i]) ^ (1u << rng.below(8)));
        break;
      }
      case 1: {  // byte stomp
        data[rng.below(data.size())] = static_cast<char>(rng.below(256));
        break;
      }
      case 2: {  // truncate
        data.resize(rng.below(data.size() + 1));
        break;
      }
      case 3: {  // splice: copy a random range over a random destination
        const std::size_t len = 1 + rng.below(16);
        const std::size_t src = rng.below(data.size());
        const std::size_t dst = rng.below(data.size());
        for (std::size_t i = 0; i < len; ++i) {
          if (src + i >= data.size() || dst + i >= data.size()) break;
          data[dst + i] = data[src + i];
        }
        break;
      }
      case 4: {  // insert random bytes
        std::string noise(1 + rng.below(8), '\0');
        for (char& c : noise) c = static_cast<char>(rng.below(256));
        const std::size_t pos = rng.below(data.size() + 1);
        std::string grown;
        grown.reserve(data.size() + noise.size());
        grown.append(data, 0, pos);
        grown.append(noise);
        grown.append(data, pos, data.size() - pos);
        data = std::move(grown);
        break;
      }
      default: {  // zero a short run
        const std::size_t begin = rng.below(data.size());
        const std::size_t len = 1 + rng.below(12);
        for (std::size_t i = begin; i < begin + len && i < data.size();
             ++i) {
          data[i] = '\0';
        }
        break;
      }
    }
  }
  return data;
}

}  // namespace ivt::testfuzz
