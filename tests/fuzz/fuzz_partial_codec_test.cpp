// Fuzz wall around the dist partial codec: dist.result payloads cross a
// (simulated) network, and the coordinator's decoder is the last line
// between a zombie worker's garbage and the merge. Every mutated payload
// must decode to a result or throw errors::Error(Decode) — no other
// exception type, no UB. Deterministic bounded corpus, same contract as
// the .ivc harness.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dist/partial_codec.hpp"
#include "errors/error.hpp"

#include "fuzz_mutator.hpp"

// GCC 12 emits a spurious -Wrestrict on inlined std::string copies of
// the mutated payloads (PR105329); the harness performs no overlapping
// copies.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

namespace ivt {
namespace {

std::vector<core::MorselPartial> sample_partials(std::uint64_t seed) {
  testfuzz::SplitMix64 rng(seed);
  std::vector<core::MorselPartial> partials;
  const std::size_t n_morsels = 1 + rng.below(4);
  for (std::size_t m = 0; m < n_morsels; ++m) {
    core::MorselPartial partial;
    partial.morsel = m;
    const std::size_t n_segments = rng.below(4);
    for (std::size_t s = 0; s < n_segments; ++s) {
      core::KeySegment segment;
      segment.key = "S" + std::to_string(rng.below(5)) + "\x1F" + "BUS" +
                    std::to_string(rng.below(3));
      segment.first_row = rng.below(100);
      segment.data.s_id = "S" + std::to_string(rng.below(5));
      segment.data.bus = "BUS" + std::to_string(rng.below(3));
      const std::size_t n = rng.below(12);
      for (std::size_t i = 0; i < n; ++i) {
        segment.data.t.push_back(static_cast<std::int64_t>(rng.next()));
        segment.data.v_num.push_back(
            static_cast<double>(rng.below(1000)) / 7.0);
        segment.data.has_num.push_back(rng.below(2));
        segment.data.v_str.push_back(rng.below(2) != 0u ? "on" : "");
        segment.data.has_str.push_back(
            segment.data.v_str.back().empty() ? 0 : 1);
      }
      partial.kpre_rows += n;
      partial.ks_rows += n;
      partial.segments.push_back(std::move(segment));
    }
    partials.push_back(std::move(partial));
  }
  return partials;
}

std::vector<dist::WireKsBlock> sample_ks_blocks(std::uint64_t seed) {
  testfuzz::SplitMix64 rng(seed ^ 0xA5);
  std::vector<dist::WireKsBlock> blocks;
  const std::size_t n_blocks = rng.below(3);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    dist::WireKsBlock block;
    block.morsel = b;
    const std::size_t n = rng.below(10);
    for (std::size_t i = 0; i < n; ++i) {
      block.t.push_back(static_cast<std::int64_t>(rng.next()));
      block.s_id.push_back("S" + std::to_string(rng.below(4)));
      block.v_num.push_back(static_cast<double>(rng.below(100)));
      block.has_num.push_back(rng.below(2));
      block.v_str.push_back("x");
      block.has_str.push_back(rng.below(2));
      block.b_id.push_back("BUS0");
    }
    blocks.push_back(std::move(block));
  }
  return blocks;
}

template <typename Decode>
void fuzz_payload(const std::string& good, Decode decode,
                  const char* what) {
  constexpr std::uint64_t kIterations = 600;
  for (std::uint64_t i = 0; i < kIterations; ++i) {
    const std::string bad = testfuzz::mutate(good, i);
    try {
      decode(bad);
    } catch (const errors::Error&) {
      // Typed rejection is the contract.
    } catch (const std::exception& e) {
      ADD_FAILURE() << what << " iter=" << i
                    << ": untyped exception escaped: " << e.what();
      return;
    }
  }
}

TEST(FuzzPartialCodecTest, MutatedSegmentPayloadsNeverEscapeTypedErrors) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const std::string good = dist::encode_partials(sample_partials(seed));
    fuzz_payload(good,
                 [](const std::string& p) { (void)dist::decode_partials(p); },
                 "segments");
  }
}

TEST(FuzzPartialCodecTest, MutatedRangePayloadsNeverEscapeTypedErrors) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const std::string good = dist::encode_range_payload(
        sample_partials(seed), sample_ks_blocks(seed));
    fuzz_payload(
        good,
        [](const std::string& p) { (void)dist::decode_range_payload(p); },
        "range");
  }
}

TEST(FuzzPartialCodecTest, UnmutatedPayloadsRoundTrip) {
  const std::vector<core::MorselPartial> partials = sample_partials(5);
  std::size_t n_segments = 0;
  for (const core::MorselPartial& p : partials) {
    n_segments += p.segments.size();
  }
  const std::vector<dist::WireSegment> decoded =
      dist::decode_partials(dist::encode_partials(partials));
  EXPECT_EQ(decoded.size(), n_segments);

  const std::vector<dist::WireKsBlock> blocks = sample_ks_blocks(5);
  const dist::RangePayload range = dist::decode_range_payload(
      dist::encode_range_payload(partials, blocks));
  EXPECT_EQ(range.segments.size(), n_segments);
  EXPECT_EQ(range.ks_blocks.size(), blocks.size());
}

}  // namespace
}  // namespace ivt
