#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>

#include "mini_json.hpp"
#include "obs/obs.hpp"

namespace ivt::obs {
namespace {

const testjson::Value* find_event(const testjson::Array& events,
                                  const std::string& name) {
  for (const testjson::Value& e : events) {
    if (e.at("name").string() == name) return &e;
  }
  return nullptr;
}

#if IVT_OBS_ENABLED

TEST(SpanTest, NestedSpansRecordDepthAndDuration) {
  reset_spans();
  {
    SpanScope outer("test.outer");
    outer.set_rows(100);
    {
      SpanScope inner("test.inner");
      inner.set_bytes(4096);
    }
  }
  const std::vector<SpanEvent> spans = collect_spans();
  ASSERT_EQ(spans.size(), 2u);
  const auto outer_it =
      std::find_if(spans.begin(), spans.end(), [](const SpanEvent& e) {
        return std::string(e.name) == "test.outer";
      });
  const auto inner_it =
      std::find_if(spans.begin(), spans.end(), [](const SpanEvent& e) {
        return std::string(e.name) == "test.inner";
      });
  ASSERT_NE(outer_it, spans.end());
  ASSERT_NE(inner_it, spans.end());
  EXPECT_EQ(outer_it->depth, 0u);
  EXPECT_EQ(inner_it->depth, 1u);
  EXPECT_EQ(outer_it->rows, 100u);
  EXPECT_EQ(inner_it->bytes, 4096u);
  // Inner is fully contained in outer.
  EXPECT_GE(inner_it->start_ns, outer_it->start_ns);
  EXPECT_LE(inner_it->start_ns + inner_it->dur_ns,
            outer_it->start_ns + outer_it->dur_ns);
}

TEST(SpanTest, ChromeTraceJsonIsWellFormed) {
  reset_spans();
  {
    OBS_SPAN("test.stage");
    OBS_SPAN_V(sub, "test.stage.sub");
    sub.set_rows(7);
  }
  const std::string json = chrome_trace_json();
  const testjson::Value doc = testjson::parse(json);  // throws if malformed
  EXPECT_EQ(doc.at("displayTimeUnit").string(), "ms");
  const testjson::Array& events = doc.at("traceEvents").array();
  ASSERT_EQ(events.size(), 2u);
  for (const testjson::Value& e : events) {
    EXPECT_EQ(e.at("ph").string(), "X");
    EXPECT_EQ(e.at("cat").string(), "ivt");
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_GE(e.at("dur").number(), 0.0);
    EXPECT_TRUE(e.at("tid").is_number());
    EXPECT_TRUE(e.at("args").is_object());
  }
  const testjson::Value* sub = find_event(events, "test.stage.sub");
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->at("args").at("depth").number(), 1.0);
  EXPECT_EQ(sub->at("args").at("rows").number(), 7.0);
  const testjson::Value* stage = find_event(events, "test.stage");
  ASSERT_NE(stage, nullptr);
  // No rows attribute was set on the outer span.
  EXPECT_FALSE(stage->at("args").has("rows"));
}

TEST(SpanTest, SpansFromMultipleThreadsGetDistinctTids) {
  reset_spans();
  std::thread a([] { SpanScope s("test.thread_a"); });
  std::thread b([] { SpanScope s("test.thread_b"); });
  a.join();
  b.join();
  const std::vector<SpanEvent> spans = collect_spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].tid, spans[1].tid);
}

TEST(SpanTest, DisablingTracingSuppressesRecording) {
  reset_spans();
  set_tracing_enabled(false);
  { SpanScope s("test.suppressed"); }
  set_tracing_enabled(true);
  { SpanScope s("test.recorded"); }
  const std::vector<SpanEvent> spans = collect_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "test.recorded");
}

TEST(SpanTest, LongNamesAreTruncatedNotOverrun) {
  reset_spans();
  const std::string long_name(200, 'x');
  { SpanScope s(long_name); }
  const std::vector<SpanEvent> spans = collect_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(std::string(spans[0].name), std::string(kSpanNameCapacity, 'x'));
}

TEST(SpanTest, RingWrapCountsDroppedSpans) {
  reset_spans();
  for (std::size_t i = 0; i < kSpanRingCapacity + 10; ++i) {
    SpanScope s("test.wrap");
  }
  EXPECT_EQ(collect_spans().size(), kSpanRingCapacity);
  EXPECT_EQ(dropped_span_count(), 10u);
  reset_spans();
  EXPECT_TRUE(collect_spans().empty());
  EXPECT_EQ(dropped_span_count(), 0u);
}

#else  // IVT_OBS_ENABLED == 0

TEST(SpanTest, DisabledBuildRecordsNothing) {
  reset_spans();
  {
    SpanScope outer("test.outer");
    outer.set_rows(100);
    OBS_SPAN("test.macro");
  }
  EXPECT_TRUE(collect_spans().empty());
  // Export still yields a valid, empty Chrome trace document.
  const testjson::Value doc = testjson::parse(chrome_trace_json());
  EXPECT_TRUE(doc.at("traceEvents").array().empty());
}

#endif

}  // namespace
}  // namespace ivt::obs
