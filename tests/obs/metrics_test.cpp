#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "mini_json.hpp"

namespace ivt::obs {
namespace {

#if IVT_OBS_ENABLED

TEST(MetricsTest, ConcurrentCounterIncrementsSumExactly) {
  Counter& counter = Registry::instance().counter("test.concurrent_adds");
  counter.reset();
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(MetricsTest, RegistryReturnsSameMetricForSameName) {
  Counter& a = Registry::instance().counter("test.same_name");
  Counter& b = Registry::instance().counter("test.same_name");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
}

TEST(MetricsTest, GaugeAddAndSet) {
  Gauge& gauge = Registry::instance().gauge("test.gauge");
  gauge.reset();
  gauge.add(5);
  gauge.add(-2);
  EXPECT_EQ(gauge.value(), 3);
  gauge.set(42);
  EXPECT_EQ(gauge.value(), 42);
  gauge.add(-50);
  EXPECT_EQ(gauge.value(), -8);
}

TEST(MetricsTest, HistogramBucketsAndOverflow) {
  Histogram& hist =
      Registry::instance().histogram("test.hist", {1.0, 10.0, 100.0});
  hist.reset();
  hist.record(0.5);    // bucket 0 (<= 1)
  hist.record(1.0);    // bucket 0 (inclusive edge)
  hist.record(7.0);    // bucket 1
  hist.record(50.0);   // bucket 2
  hist.record(999.0);  // overflow bucket
  const Histogram::Data data = hist.data();
  ASSERT_EQ(data.bounds.size(), 3u);
  ASSERT_EQ(data.counts.size(), 4u);
  EXPECT_EQ(data.counts[0], 2u);
  EXPECT_EQ(data.counts[1], 1u);
  EXPECT_EQ(data.counts[2], 1u);
  EXPECT_EQ(data.counts[3], 1u);
  EXPECT_EQ(data.count, 5u);
  EXPECT_DOUBLE_EQ(data.sum, 0.5 + 1.0 + 7.0 + 50.0 + 999.0);
}

TEST(MetricsTest, SnapshotIsSortedAndQueryable) {
  Registry::instance().counter("test.zz_last").add(9);
  Registry::instance().counter("test.aa_first").add(1);
  const MetricsSnapshot snap = Registry::instance().snapshot();
  ASSERT_GE(snap.entries.size(), 2u);
  for (std::size_t i = 1; i < snap.entries.size(); ++i) {
    EXPECT_LE(snap.entries[i - 1].name, snap.entries[i].name);
  }
  const MetricsSnapshot::Entry* entry = snap.find("test.aa_first");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, MetricsSnapshot::Kind::Counter);
  EXPECT_GE(snap.counter_or("test.zz_last", 0), 9u);
  EXPECT_EQ(snap.counter_or("test.does_not_exist", 123), 123u);
}

TEST(MetricsTest, JsonSnapshotParsesBack) {
  Registry::instance().counter("test.json_counter").add(11);
  Registry::instance().histogram("test.json_hist", {1.0, 2.0}).record(1.5);
  const std::string json = to_json(Registry::instance().snapshot());
  const testjson::Value doc = testjson::parse(json);
  const testjson::Value& metrics = doc.at("metrics");
  ASSERT_TRUE(metrics.is_object());
  EXPECT_GE(metrics.at("test.json_counter").number(), 11.0);
  const testjson::Value& hist = metrics.at("test.json_hist");
  EXPECT_GE(hist.at("count").number(), 1.0);
  EXPECT_EQ(hist.at("bounds").array().size(), 2u);
  EXPECT_EQ(hist.at("counts").array().size(), 3u);
}

TEST(MetricsTest, ResetZeroesButKeepsRegistration) {
  Counter& counter = Registry::instance().counter("test.reset_me");
  counter.add(5);
  Registry::instance().reset();
  EXPECT_EQ(counter.value(), 0u);
  const MetricsSnapshot snap = Registry::instance().snapshot();
  const MetricsSnapshot::Entry* entry = snap.find("test.reset_me");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->counter, 0u);
}

#else  // IVT_OBS_ENABLED == 0

TEST(MetricsTest, DisabledBuildKeepsRegistryEmpty) {
  Registry::instance().counter("test.off_counter").add(7);
  Registry::instance().gauge("test.off_gauge").add(7);
  Registry::instance().histogram("test.off_hist", {1.0}).record(0.5);
  const MetricsSnapshot snap = Registry::instance().snapshot();
  EXPECT_TRUE(snap.entries.empty());
  EXPECT_EQ(snap.counter_or("test.off_counter", 0), 0u);
  // The JSON emitter must still produce a valid (empty) document.
  const testjson::Value doc = testjson::parse(to_json(snap));
  EXPECT_TRUE(doc.at("metrics").object().empty());
}

#endif

}  // namespace
}  // namespace ivt::obs
