// Rolling-window metric views. All tests drive the clock through the
// *_at hooks — no sleeping — so they are deterministic and fast. The
// explicit-epoch entry points are not gated on IVT_OBS_ENABLED (only the
// wall-clock wrappers are), so these tests run in obs-off builds too.
#include "obs/window.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ivt::obs {
namespace {

TEST(RollingCounterTest, CountsOnlyTheTrailingWindow) {
  RollingCounter counter(3);
  counter.add_at(100, 5);
  counter.add_at(101, 7);
  counter.add_at(102, 1);
  EXPECT_EQ(counter.value_at(102), 13u);
  // Second 100 ages out of the (now-3, now] window at now=103.
  EXPECT_EQ(counter.value_at(103), 8u);
  EXPECT_EQ(counter.value_at(104), 1u);
  EXPECT_EQ(counter.value_at(105), 0u);
}

TEST(RollingCounterTest, SlotReuseResetsStaleSeconds) {
  RollingCounter counter(2);
  counter.add_at(10, 100);
  // Second 12 maps onto second 10's slot (12 mod 2 == 10 mod 2) and must
  // reset it, not inherit the stale count.
  counter.add_at(12, 1);
  EXPECT_EQ(counter.value_at(12), 1u);
}

TEST(RollingCounterTest, DecaysToZeroAfterLoadStops) {
  RollingCounter counter(60);
  for (std::int64_t s = 0; s < 10; ++s) counter.add_at(s, 10);
  EXPECT_EQ(counter.value_at(9), 100u);
  EXPECT_EQ(counter.value_at(9 + 60), 0u);
}

TEST(RollingCounterTest, ResetClearsEverything) {
  RollingCounter counter(4);
  counter.add_at(50, 9);
  counter.reset();
  EXPECT_EQ(counter.value_at(50), 0u);
}

TEST(RollingCounterTest, ZeroWindowClampsToOneSecond) {
  RollingCounter counter(0);
  EXPECT_EQ(counter.window_seconds(), 1u);
  counter.add_at(7, 3);
  EXPECT_EQ(counter.value_at(7), 3u);
  EXPECT_EQ(counter.value_at(8), 0u);
}

TEST(RollingCounterTest, ConcurrentWritersLoseNothingWithinASecond) {
  RollingCounter counter(8);
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 10000; ++i) counter.add_at(500, 1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value_at(500), 40000u);
}

TEST(RollingHistogramTest, WindowedQuantilesDecay) {
  RollingHistogram hist({1.0, 10.0, 100.0}, 5);
  for (int i = 0; i < 90; ++i) hist.record_at(200, 0.5);
  for (int i = 0; i < 10; ++i) hist.record_at(201, 50.0);
  Histogram::Data data = hist.data_at(201);
  EXPECT_EQ(data.count, 100u);
  EXPECT_LE(data.quantile(0.50), 1.0);
  EXPECT_GT(data.quantile(0.99), 10.0);
  // One window later only the second batch remains...
  data = hist.data_at(201 + 4);
  EXPECT_EQ(data.count, 10u);
  // ...and after the full window the view is empty: the p99 a dashboard
  // shows decays once the load stops, unlike the lifetime histogram.
  data = hist.data_at(201 + 5);
  EXPECT_EQ(data.count, 0u);
  EXPECT_EQ(data.quantile(0.99), 0.0);
}

TEST(RollingHistogramTest, SumTracksWindowContents) {
  RollingHistogram hist({10.0}, 3);
  hist.record_at(300, 4.0);
  hist.record_at(301, 6.0);
  EXPECT_DOUBLE_EQ(hist.data_at(301).sum, 10.0);
  EXPECT_DOUBLE_EQ(hist.data_at(303).sum, 6.0);
  EXPECT_DOUBLE_EQ(hist.data_at(304).sum, 0.0);
}

TEST(RollingHistogramTest, SlotReuseResetsStaleBuckets) {
  RollingHistogram hist({10.0}, 2);
  for (int i = 0; i < 100; ++i) hist.record_at(20, 1.0);
  hist.record_at(22, 1.0);  // same slot index as second 20
  EXPECT_EQ(hist.data_at(22).count, 1u);
}

}  // namespace
}  // namespace ivt::obs
