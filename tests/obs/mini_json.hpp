// Minimal recursive-descent JSON parser for tests: parses a document into
// a variant tree so exported trace/metrics JSON can be validated
// structurally (not by substring matching). Throws std::runtime_error on
// malformed input, which is itself the well-formedness check.
#pragma once

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace ivt::testjson {

struct Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v;

  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(v);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v);
  }

  [[nodiscard]] const Object& object() const { return std::get<Object>(v); }
  [[nodiscard]] const Array& array() const { return std::get<Array>(v); }
  [[nodiscard]] double number() const { return std::get<double>(v); }
  [[nodiscard]] const std::string& string() const {
    return std::get<std::string>(v);
  }

  /// Object member access; throws when absent.
  [[nodiscard]] const Value& at(const std::string& key) const {
    const Object& obj = object();
    const auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return is_object() && object().count(key) > 0;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing content");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at offset " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value{parse_string()};
      case 't': return parse_literal("true", Value{true});
      case 'f': return parse_literal("false", Value{false});
      case 'n': return parse_literal("null", Value{nullptr});
      default: return parse_number();
    }
  }

  Value parse_literal(const std::string& word, Value value) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      throw std::runtime_error("bad literal at offset " + std::to_string(pos_));
    }
    pos_ += word.size();
    return value;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      throw std::runtime_error("bad number at offset " + std::to_string(pos_));
    }
    return Value{std::stod(text_.substr(start, pos_ - start))};
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) throw std::runtime_error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
            // Tests only need ASCII round-trips; decode the low byte.
            out += static_cast<char>(
                std::stoul(text_.substr(pos_, 4), nullptr, 16) & 0xFF);
            pos_ += 4;
            break;
          default: throw std::runtime_error("bad escape char");
        }
      } else {
        out += c;
      }
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    if (peek() == ']') {
      ++pos_;
      return Value{std::move(arr)};
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return Value{std::move(arr)};
      if (c != ',') throw std::runtime_error("expected ',' in array");
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    if (peek() == '}') {
      ++pos_;
      return Value{std::move(obj)};
    }
    while (true) {
      std::string key = parse_string();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return Value{std::move(obj)};
      if (c != ',') throw std::runtime_error("expected ',' in object");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline Value parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace ivt::testjson
