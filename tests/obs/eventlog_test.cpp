// Structured JSON-lines event log: record rendering, flush semantics and
// the never-block drop accounting. The log is operational accounting and
// stays functional in obs-off builds, so nothing here is gated.
#include "obs/eventlog.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "mini_json.hpp"
#include "obs/obs.hpp"

namespace ivt::obs {
namespace {

std::string temp_log_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(EventLogTest, RecordsRenderAsOneJsonObjectPerLine) {
  const std::string path = temp_log_path("eventlog_render.jsonl");
  std::remove(path.c_str());
  {
    EventLog log(path, {});
    ASSERT_TRUE(log.enabled());
    OBS_EVENT(&log, Info, "serve.query")
        .kv("op", "state")
        .kv("request_id", std::uint64_t{7})
        .kv("elapsed_ms", 1.25)
        .kv("ok", true)
        .kv("delta", std::int64_t{-3});
    OBS_EVENT(&log, Warn, "serve.slow_query")
        .kv("note", "quote\" backslash\\ newline\n tab\t");
    log.close();
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);

  const testjson::Value first = testjson::parse(lines[0]);
  EXPECT_GT(first.at("ts_ns").number(), 0.0);
  EXPECT_EQ(first.at("level").string(), "info");
  EXPECT_EQ(first.at("event").string(), "serve.query");
  EXPECT_EQ(first.at("op").string(), "state");
  EXPECT_EQ(first.at("request_id").number(), 7.0);
  EXPECT_DOUBLE_EQ(first.at("elapsed_ms").number(), 1.25);
  EXPECT_EQ(std::get<bool>(first.at("ok").v), true);
  EXPECT_EQ(first.at("delta").number(), -3.0);

  const testjson::Value second = testjson::parse(lines[1]);
  EXPECT_EQ(second.at("level").string(), "warn");
  EXPECT_EQ(second.at("note").string(), "quote\" backslash\\ newline\n tab\t");
}

TEST(EventLogTest, FlushMakesAllEnqueuedLinesVisible) {
  const std::string path = temp_log_path("eventlog_flush.jsonl");
  std::remove(path.c_str());
  // A long flush interval: without flush(), lines would sit in the queue.
  EventLogOptions options;
  options.flush_interval_ms = 60000;
  EventLog log(path, options);
  for (int i = 0; i < 10; ++i) {
    OBS_EVENT(&log, Info, "serve.query").kv("i", std::int64_t{i});
  }
  log.flush();
  EXPECT_EQ(read_lines(path).size(), 10u);
  log.close();
}

TEST(EventLogTest, WritesPlusDropsAccountForEveryRecord) {
  const std::string path = temp_log_path("eventlog_drops.jsonl");
  std::remove(path.c_str());
  EventLogOptions options;
  options.capacity = 4;  // tiny ring: a burst must drop, never block
  EventLog log(path, options);
  constexpr int kWrites = 20000;
  for (int i = 0; i < kWrites; ++i) {
    OBS_EVENT(&log, Info, "serve.query").kv("i", std::int64_t{i});
  }
  log.close();
  const std::uint64_t written = read_lines(path).size();
  EXPECT_EQ(written + log.dropped(), static_cast<std::uint64_t>(kWrites));
  EXPECT_GT(written, 0u);
}

TEST(EventLogTest, DisabledLogIsANoOp) {
  EventLog disabled;
  EXPECT_FALSE(disabled.enabled());
  // Records against a disabled or null log vanish without I/O or crash.
  OBS_EVENT(&disabled, Info, "serve.query").kv("op", "ping");
  OBS_EVENT(nullptr, Error, "serve.query").kv("op", "ping");
  disabled.flush();
  disabled.close();
  EXPECT_EQ(disabled.dropped(), 0u);
}

TEST(EventLogTest, UnwritablePathThrows) {
  EXPECT_THROW(EventLog("/nonexistent-dir/event.jsonl", {}),
               std::runtime_error);
}

TEST(EventLogTest, CloseIsIdempotentAndDropsLateWrites) {
  const std::string path = temp_log_path("eventlog_close.jsonl");
  std::remove(path.c_str());
  EventLog log(path, {});
  OBS_EVENT(&log, Info, "serve.query").kv("n", std::int64_t{1});
  log.close();
  log.close();
  OBS_EVENT(&log, Info, "serve.query").kv("n", std::int64_t{2});
  EXPECT_EQ(read_lines(path).size(), 1u);
}

}  // namespace
}  // namespace ivt::obs
