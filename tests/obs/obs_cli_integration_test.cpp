// Acceptance test for the observability surface: simulate -> pack ->
// `ivt run --trace-out --metrics-out` must leave a Chrome trace with at
// least one span per Algorithm-1 stage and a metrics JSON containing
// thread-pool and colstore counters.
#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "cli/commands.hpp"
#include "mini_json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace ivt::obs {
namespace {

int run(std::initializer_list<const char*> argv_list) {
  std::vector<const char*> argv{"ivt"};
  argv.insert(argv.end(), argv_list.begin(), argv_list.end());
  return cli::run_cli(static_cast<int>(argv.size()), argv.data());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(ObsCliIntegrationTest, RunEmitsTraceAndMetrics) {
  const std::string prefix = ::testing::TempDir() + "/obs_syn";
  ASSERT_EQ(run({"simulate", "--dataset", "SYN", "--scale", "0.0001",
                 "--seed", "11", "--out", prefix.c_str()}),
            0);
  const std::string ivt_path = prefix + "_J1.ivt";
  const std::string catalog = prefix + ".ivsdb";
  const std::string ivc_path = ::testing::TempDir() + "/obs_syn.ivc";
  ASSERT_EQ(run({"pack", "--trace", ivt_path.c_str(), "--out",
                 ivc_path.c_str(), "--chunk-rows", "64"}),
            0);

  // Fresh slate so the assertions see only this run's events.
  reset_spans();
  Registry::instance().reset();

  const std::string trace_out = ::testing::TempDir() + "/obs_trace.json";
  const std::string metrics_out = ::testing::TempDir() + "/obs_metrics.json";
  ASSERT_EQ(run({"run", "--trace", ivc_path.c_str(), "--catalog",
                 catalog.c_str(), "--trace-out", trace_out.c_str(),
                 "--metrics-out", metrics_out.c_str()}),
            0);

  // Both artifacts must be well-formed JSON in every build mode.
  const testjson::Value trace = testjson::parse(slurp(trace_out));
  const testjson::Value metrics = testjson::parse(slurp(metrics_out));
  const testjson::Array& events = trace.at("traceEvents").array();
  const testjson::Value& metric_map = metrics.at("metrics");

#if IVT_OBS_ENABLED
  // At least one span per Algorithm-1 stage.
  const char* kStageSpans[] = {
      "pipeline.run",      "pipeline.preselect", "pipeline.interpret",
      "pipeline.split",    "sequence.reduce",    "sequence.extend",
      "sequence.classify", "pipeline.merge",     "pipeline.state_repr",
  };
  std::set<std::string> seen;
  bool saw_branch = false;
  for (const testjson::Value& e : events) {
    seen.insert(e.at("name").string());
    if (e.at("name").string().rfind("branch.", 0) == 0) saw_branch = true;
  }
  for (const char* name : kStageSpans) {
    EXPECT_TRUE(seen.count(name)) << "missing span: " << name;
  }
  EXPECT_TRUE(saw_branch) << "no branch.{alpha,beta,gamma} span recorded";
  // Engine and colstore instrumentation rode along.
  EXPECT_TRUE(seen.count("engine.task"));
  EXPECT_TRUE(seen.count("colstore.scan"));

  // Metrics: thread-pool and colstore counters are present and sane.
  EXPECT_GE(metric_map.at("pool.tasks_executed").number(), 1.0);
  EXPECT_GE(metric_map.at("colstore.chunks_total").number(), 1.0);
  EXPECT_GE(metric_map.at("colstore.chunks_decoded").number(), 1.0);
  EXPECT_GE(metric_map.at("pipeline.kb_rows").number(), 1.0);
  EXPECT_TRUE(metric_map.has("pipeline.stage.interpret.wall_ns"));
#else
  // IVT_OBS=OFF: instrumentation compiles to no-ops, so both artifacts
  // are valid-but-empty documents.
  EXPECT_TRUE(events.empty());
  EXPECT_TRUE(metric_map.object().empty());
#endif
}

}  // namespace
}  // namespace ivt::obs
