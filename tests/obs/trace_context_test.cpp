// Trace-context propagation primitives: minting, hex rendering/parsing
// and the thread-local install/restore scope. These stay functional in
// obs-off builds (the context is operational plumbing, not telemetry),
// so nothing here is gated on IVT_OBS_ENABLED.
#include "obs/trace_context.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <thread>

namespace ivt::obs {
namespace {

TEST(TraceContextTest, DefaultIsInvalidMintedIsValid) {
  const TraceContext none;
  EXPECT_FALSE(none.valid());
  const TraceContext minted = TraceContext::mint();
  EXPECT_TRUE(minted.valid());
  EXPECT_NE(minted.trace_id, 0u);
}

TEST(TraceContextTest, MintedIdsAreDistinct) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(TraceContext::mint().trace_id).second);
  }
}

TEST(TraceContextTest, HexRendersSixteenLowercaseDigits) {
  const std::string hex = trace_id_hex(0xDEADBEEFULL);
  EXPECT_EQ(hex, "00000000deadbeef");
  for (const char c : trace_id_hex(TraceContext::mint().trace_id)) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)));
    EXPECT_FALSE(std::isupper(static_cast<unsigned char>(c)));
  }
}

TEST(TraceContextTest, HexRoundTrips) {
  for (const std::uint64_t id :
       {std::uint64_t{1}, std::uint64_t{0xDEADBEEFULL}, ~std::uint64_t{0}}) {
    EXPECT_EQ(parse_trace_id_hex(trace_id_hex(id)), id);
  }
  // Short forms and uppercase are accepted on the wire.
  EXPECT_EQ(parse_trace_id_hex("ff"), 0xFFu);
  EXPECT_EQ(parse_trace_id_hex("DeadBeef"), 0xDEADBEEFu);
}

TEST(TraceContextTest, ParseRejectsMalformedAsZero) {
  EXPECT_EQ(parse_trace_id_hex(""), 0u);
  EXPECT_EQ(parse_trace_id_hex("xyz"), 0u);
  EXPECT_EQ(parse_trace_id_hex("12 34"), 0u);
  EXPECT_EQ(parse_trace_id_hex("0x12"), 0u);
  EXPECT_EQ(parse_trace_id_hex("00000000000000001"), 0u);  // 17 digits
}

TEST(TraceContextTest, ScopeInstallsAndRestores) {
  EXPECT_FALSE(current_trace_context().valid());
  TraceContext outer;
  outer.trace_id = 42;
  outer.span_id = 7;
  {
    const TraceContextScope outer_scope(outer);
    EXPECT_EQ(current_trace_context().trace_id, 42u);
    EXPECT_EQ(current_trace_context().span_id, 7u);
    TraceContext inner;
    inner.trace_id = 99;
    {
      const TraceContextScope inner_scope(inner);
      EXPECT_EQ(current_trace_context().trace_id, 99u);
    }
    EXPECT_EQ(current_trace_context().trace_id, 42u);
  }
  EXPECT_FALSE(current_trace_context().valid());
}

TEST(TraceContextTest, ContextIsThreadLocal) {
  TraceContext ctx;
  ctx.trace_id = 1234;
  const TraceContextScope scope(ctx);
  std::uint64_t seen_on_thread = 99;
  std::thread t([&] { seen_on_thread = current_trace_context().trace_id; });
  t.join();
  // A fresh thread starts with no context; propagation across threads is
  // explicit (the server re-installs the scope in its worker lambda).
  EXPECT_EQ(seen_on_thread, 0u);
  EXPECT_EQ(current_trace_context().trace_id, 1234u);
}

}  // namespace
}  // namespace ivt::obs
