// Property tests: insert/extract round-trips over randomized field layouts.
#include <gtest/gtest.h>

#include <random>

#include "protocol/bitcodec.hpp"

namespace ivt::protocol {
namespace {

struct LayoutCase {
  ByteOrder order;
  std::size_t payload_size;
};

class BitCodecPropertyTest : public ::testing::TestWithParam<LayoutCase> {};

TEST_P(BitCodecPropertyTest, RandomRoundTripsPreserveValue) {
  const auto [order, payload_size] = GetParam();
  std::mt19937_64 rng(0xC0DEC + payload_size +
                      (order == ByteOrder::Motorola ? 1000 : 0));
  for (int iteration = 0; iteration < 500; ++iteration) {
    const std::uint16_t length = static_cast<std::uint16_t>(
        1 + rng() % std::min<std::size_t>(64, payload_size * 8));
    // Draw start bits until the field fits.
    std::uint16_t start = 0;
    bool found = false;
    for (int tries = 0; tries < 64; ++tries) {
      start = static_cast<std::uint16_t>(rng() % (payload_size * 8));
      if (bit_field_fits(payload_size, start, length, order)) {
        found = true;
        break;
      }
    }
    if (!found) continue;
    const std::uint64_t value =
        rng() & (length >= 64 ? ~0ULL : ((1ULL << length) - 1));

    std::vector<std::uint8_t> payload(payload_size);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
    const std::vector<std::uint8_t> before = payload;

    insert_bits(payload, start, length, order, value);
    EXPECT_EQ(extract_bits(payload, start, length, order), value)
        << "start=" << start << " len=" << length;

    // Inserting back the ORIGINAL field value restores the exact payload
    // (no neighbour disturbance).
    const std::uint64_t original =
        extract_bits(before, start, length, order);
    insert_bits(payload, start, length, order, original);
    EXPECT_EQ(payload, before);
  }
}

TEST_P(BitCodecPropertyTest, ExtractNeverReadsOutsideField) {
  const auto [order, payload_size] = GetParam();
  std::mt19937_64 rng(0xFEED + payload_size);
  for (int iteration = 0; iteration < 200; ++iteration) {
    const std::uint16_t length =
        static_cast<std::uint16_t>(1 + rng() % 16);
    const std::uint16_t start =
        static_cast<std::uint16_t>(rng() % (payload_size * 8));
    if (!bit_field_fits(payload_size, start, length, order)) continue;

    std::vector<std::uint8_t> a(payload_size, 0x00);
    std::vector<std::uint8_t> b(payload_size, 0xFF);
    const std::uint64_t value = rng() & ((1ULL << length) - 1);
    insert_bits(a, start, length, order, value);
    insert_bits(b, start, length, order, value);
    // Same field value regardless of surrounding bits.
    EXPECT_EQ(extract_bits(a, start, length, order),
              extract_bits(b, start, length, order));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, BitCodecPropertyTest,
    ::testing::Values(LayoutCase{ByteOrder::Intel, 1},
                      LayoutCase{ByteOrder::Intel, 8},
                      LayoutCase{ByteOrder::Intel, 64},
                      LayoutCase{ByteOrder::Motorola, 1},
                      LayoutCase{ByteOrder::Motorola, 8},
                      LayoutCase{ByteOrder::Motorola, 64}),
    [](const auto& info) {
      return std::string(info.param.order == ByteOrder::Intel ? "Intel"
                                                              : "Motorola") +
             "_" + std::to_string(info.param.payload_size) + "B";
    });

}  // namespace
}  // namespace ivt::protocol
