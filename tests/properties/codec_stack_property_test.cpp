// Property tests: the full encode/decode stack. Random signal specs are
// encoded into payloads via signaldb and recovered (a) directly via
// decode_signal and (b) through the tabular interpretation path of the
// pipeline — both must agree with the original physical values.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/interpret.hpp"
#include "core/urel.hpp"
#include "signaldb/catalog.hpp"
#include "tracefile/trace.hpp"

namespace ivt {
namespace {

struct GeneratedVehicle {
  signaldb::Catalog catalog;
  std::vector<double> raw_maxima;  // per signal, for value generation
};

/// Random catalog: one message with several non-overlapping fields of
/// random widths/orders/kinds.
GeneratedVehicle random_vehicle(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  GeneratedVehicle v;
  signaldb::MessageSpec message;
  message.name = "M";
  message.bus = "FC";
  message.message_id = 0x100;
  message.payload_size = 8;

  std::uint16_t bit_cursor = 0;
  const std::size_t signals = 1 + rng() % 4;
  for (std::size_t i = 0; i < signals && bit_cursor < 64; ++i) {
    signaldb::SignalSpec s;
    s.name = "s" + std::to_string(i);
    const std::uint16_t remaining =
        static_cast<std::uint16_t>(64 - bit_cursor);
    std::uint16_t length =
        static_cast<std::uint16_t>(1 + rng() % std::min<int>(16, remaining));
    s.length = length;
    s.start_bit = bit_cursor;
    s.byte_order = protocol::ByteOrder::Intel;
    if (rng() % 3 == 0 && bit_cursor % 8 == 0 && length % 8 == 0) {
      s.byte_order = protocol::ByteOrder::Motorola;
      s.start_bit = static_cast<std::uint16_t>(bit_cursor + 7);
    }
    s.value_kind = (rng() % 4 == 0 && length >= 2)
                       ? signaldb::ValueKind::Signed
                       : signaldb::ValueKind::Unsigned;
    const double scales[] = {1.0, 0.5, 0.25, 0.1};
    s.transform.scale = scales[rng() % 4];
    s.transform.offset =
        static_cast<double>(static_cast<int>(rng() % 41)) - 20.0;
    bit_cursor = static_cast<std::uint16_t>(bit_cursor + length);
    const double max_raw =
        s.value_kind == signaldb::ValueKind::Signed
            ? std::ldexp(1.0, length - 1) - 1.0
            : std::ldexp(1.0, std::min<int>(length, 52)) - 1.0;
    v.raw_maxima.push_back(max_raw);
    message.signals.push_back(std::move(s));
  }
  v.catalog.add_message(std::move(message));
  return v;
}

class CodecStackPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecStackPropertyTest, EncodeDecodeAgreesAcrossBothPaths) {
  const GeneratedVehicle vehicle = random_vehicle(GetParam());
  const signaldb::MessageSpec& message = vehicle.catalog.messages()[0];
  std::mt19937_64 rng(GetParam() * 31 + 1);

  tracefile::Trace trace;
  std::vector<std::vector<double>> expected(message.signals.size());
  for (int instance = 0; instance < 50; ++instance) {
    tracefile::TraceRecord rec;
    rec.t_ns = instance * 1000;
    rec.bus = message.bus;
    rec.message_id = message.message_id;
    rec.payload.assign(message.payload_size, 0);
    for (std::size_t i = 0; i < message.signals.size(); ++i) {
      const signaldb::SignalSpec& spec = message.signals[i];
      // Pick a representable raw value, convert to physical.
      const double max_raw = vehicle.raw_maxima[i];
      double raw = std::floor(
          std::uniform_real_distribution<double>(0.0, max_raw)(rng));
      if (spec.value_kind == signaldb::ValueKind::Signed && rng() % 2 == 0) {
        raw = -raw;
      }
      const double physical = spec.transform.apply(raw);
      signaldb::encode_signal(rec.payload, spec, physical);
      // Path (a): direct decode.
      const signaldb::DecodedValue decoded =
          signaldb::decode_signal(rec.payload, spec);
      ASSERT_TRUE(decoded.present);
      EXPECT_NEAR(decoded.physical, physical, 1e-9)
          << spec.name << " len=" << spec.length;
      expected[i].push_back(physical);
    }
    trace.records.push_back(std::move(rec));
  }

  // Path (b): the pipeline's tabular interpretation.
  dataflow::Engine engine{{.workers = 2, .default_partitions = 4}};
  const auto kb = tracefile::to_kb_table(trace, 4);
  const auto urel = core::make_full_urel_table(vehicle.catalog);
  core::InterpretOptions options;
  options.catalog = &vehicle.catalog;
  const auto ks = core::extract_signals(engine, kb, urel, options);
  ASSERT_EQ(ks.num_rows(), 50 * message.signals.size());

  std::map<std::string, std::vector<double>> by_signal;
  const std::size_t sid_col = ks.schema().require("s_id");
  const std::size_t num_col = ks.schema().require("v_num");
  ks.for_each_row([&](const dataflow::RowView& row) {
    by_signal[row.string_at(sid_col)].push_back(row.float64_at(num_col));
  });
  for (std::size_t i = 0; i < message.signals.size(); ++i) {
    const auto& values = by_signal.at(message.signals[i].name);
    ASSERT_EQ(values.size(), expected[i].size());
    for (std::size_t k = 0; k < values.size(); ++k) {
      EXPECT_NEAR(values[k], expected[i][k], 1e-9);
    }
  }
}

TEST_P(CodecStackPropertyTest, FusedAndLiteralInterpretationAgree) {
  const GeneratedVehicle vehicle = random_vehicle(GetParam() ^ 0xBEEF);
  const signaldb::MessageSpec& message = vehicle.catalog.messages()[0];
  std::mt19937_64 rng(GetParam());
  tracefile::Trace trace;
  for (int i = 0; i < 30; ++i) {
    tracefile::TraceRecord rec;
    rec.t_ns = i * 500;
    rec.bus = message.bus;
    rec.message_id = message.message_id;
    rec.payload.resize(message.payload_size);
    for (auto& b : rec.payload) b = static_cast<std::uint8_t>(rng());
    trace.records.push_back(std::move(rec));
  }
  dataflow::Engine engine{{.workers = 2, .default_partitions = 4}};
  const auto kb = tracefile::to_kb_table(trace, 4);
  const auto urel = core::make_full_urel_table(vehicle.catalog);
  core::InterpretOptions fused;
  fused.catalog = &vehicle.catalog;
  core::InterpretOptions literal = fused;
  literal.two_stage_interpretation = true;
  EXPECT_EQ(core::extract_signals(engine, kb, urel, fused).collect_rows(),
            core::extract_signals(engine, kb, urel, literal).collect_rows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecStackPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1337u, 9001u,
                                           0xDEADu));

}  // namespace
}  // namespace ivt
