// Property tests: invariants of the constraint reduction over randomized
// signal sequences.
#include <gtest/gtest.h>

#include <random>

#include "core/reduce.hpp"

namespace ivt::core {
namespace {

constexpr std::int64_t kMs = 1'000'000;

SequenceData random_sequence(std::uint64_t seed, std::size_t n,
                             std::size_t levels, double violation_rate) {
  std::mt19937_64 rng(seed);
  SequenceData d;
  d.s_id = "sig";
  d.bus = "FC";
  std::int64_t t = 0;
  double value = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng() % 4 == 0) {
      value = static_cast<double>(rng() % levels);
    }
    t += 10 * kMs;
    if (std::uniform_real_distribution<double>(0, 1)(rng) < violation_rate) {
      t += 40 * kMs;  // cycle violation (10 ms expected)
    }
    d.t.push_back(t);
    d.v_num.push_back(value);
    d.has_num.push_back(1);
    d.v_str.emplace_back();
    d.has_str.push_back(0);
  }
  return d;
}

signaldb::SignalSpec spec_10ms() {
  signaldb::SignalSpec spec;
  spec.name = "sig";
  spec.expected_cycle_ns = 10 * kMs;
  return spec;
}

class ReductionPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ReductionPropertyTest, SurvivorsAreASubsequence) {
  const SequenceData d = random_sequence(GetParam(), 500, 5, 0.02);
  const auto spec = spec_10ms();
  const SequenceData out =
      reduce_sequence({drop_repeated_values_rule()}, d, &spec);
  // Every output (t, v) pair must appear in the input in order.
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    while (cursor < d.size() &&
           (d.t[cursor] != out.t[i] || d.v_num[cursor] != out.v_num[i])) {
      ++cursor;
    }
    ASSERT_LT(cursor, d.size()) << "output row " << i << " not found";
    ++cursor;
  }
}

TEST_P(ReductionPropertyTest, FirstAndLastSurvive) {
  const SequenceData d = random_sequence(GetParam(), 300, 4, 0.0);
  const auto spec = spec_10ms();
  const SequenceData out =
      reduce_sequence({drop_repeated_values_rule()}, d, &spec);
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out.t.front(), d.t.front());
  EXPECT_EQ(out.t.back(), d.t.back());
}

TEST_P(ReductionPropertyTest, AllValueChangesSurvive) {
  const SequenceData d = random_sequence(GetParam(), 400, 6, 0.01);
  const auto spec = spec_10ms();
  const SequenceData out =
      reduce_sequence({drop_repeated_values_rule()}, d, &spec);
  // Collect input change points and assert each appears in the output.
  std::size_t out_cursor = 0;
  for (std::size_t i = 1; i < d.size(); ++i) {
    if (d.v_num[i] == d.v_num[i - 1]) continue;
    bool found = false;
    while (out_cursor < out.size()) {
      if (out.t[out_cursor] == d.t[i]) {
        found = true;
        break;
      }
      ++out_cursor;
    }
    EXPECT_TRUE(found) << "change at t=" << d.t[i] << " dropped";
  }
}

TEST_P(ReductionPropertyTest, CycleViolationWitnessesSurvive) {
  const SequenceData d = random_sequence(GetParam(), 400, 3, 0.05);
  const auto spec = spec_10ms();
  const SequenceData out =
      reduce_sequence({drop_repeated_values_rule(1.5)}, d, &spec);
  for (std::size_t i = 1; i < d.size(); ++i) {
    if (d.t[i] - d.t[i - 1] <= 15 * kMs) continue;  // not a violation
    bool found = false;
    for (std::size_t j = 0; j < out.size(); ++j) {
      if (out.t[j] == d.t[i]) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "violation witness at t=" << d.t[i] << " dropped";
  }
}

TEST_P(ReductionPropertyTest, ReductionIsIdempotent) {
  const SequenceData d = random_sequence(GetParam(), 300, 5, 0.02);
  const auto spec = spec_10ms();
  const std::vector<ConstraintRule> rules{drop_repeated_values_rule()};
  const SequenceData once = reduce_sequence(rules, d, &spec);
  const SequenceData twice = reduce_sequence(rules, once, &spec);
  EXPECT_EQ(once.t, twice.t);
  EXPECT_EQ(once.v_num, twice.v_num);
}

TEST_P(ReductionPropertyTest, MoreRulesNeverKeepMore) {
  const SequenceData d = random_sequence(GetParam(), 300, 5, 0.02);
  const auto spec = spec_10ms();
  const SequenceData one =
      reduce_sequence({drop_repeated_values_rule()}, d, &spec);
  const SequenceData two = reduce_sequence(
      {drop_repeated_values_rule(), drop_within_band_rule("sig", 0.5, 1.5)},
      d, &spec);
  EXPECT_LE(two.size(), one.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u));

}  // namespace
}  // namespace ivt::core
