// Property tests for the columnar container: randomly generated traces
// must survive .ivt -> pack -> .ivc byte-for-byte (ISSUE acceptance:
// the ColumnarReader's table equals the row-oriented load path row for
// row, including under a ScanPredicate equal to the full id set), random
// predicates must equal a reference row filter, and truncated images
// must throw.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <sstream>

#include "colstore/columnar_reader.hpp"
#include "colstore/columnar_writer.hpp"
#include "tracefile/binary_format.hpp"
#include "tracefile/trace.hpp"

namespace ivt {
namespace {

tracefile::Trace random_trace(std::uint64_t seed) {
  std::mt19937_64 rng(seed ^ 0xC01570);
  tracefile::Trace trace;
  trace.vehicle = "V" + std::to_string(rng() % 10);
  trace.journey = "J" + std::to_string(rng() % 10);
  trace.start_unix_ns = static_cast<std::int64_t>(rng() % (1ull << 62));
  const std::size_t n = rng() % 400;
  std::int64_t t = -static_cast<std::int64_t>(rng() % 1'000'000);
  for (std::size_t i = 0; i < n; ++i) {
    tracefile::TraceRecord rec;
    t += static_cast<std::int64_t>(rng() % 1'000'000);
    rec.t_ns = t;
    rec.bus = "BUS" + std::to_string(rng() % 5);
    rec.message_id = static_cast<std::int64_t>(rng() % 2048) -
                     (rng() % 8 == 0 ? 4096 : 0);  // some negative ids
    rec.protocol = static_cast<protocol::Protocol>(rng() % 5);
    rec.flags = static_cast<std::uint32_t>(rng() % 4);
    rec.payload.resize(rng() % 64);
    for (auto& b : rec.payload) b = static_cast<std::uint8_t>(rng());
    trace.records.push_back(std::move(rec));
  }
  return trace;
}

class ColstoreRoundTripPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    std::mt19937_64 rng(GetParam());
    trace_ = random_trace(GetParam());
    chunk_rows_ = 1 + rng() % 50;
    ivt_path_ = ::testing::TempDir() + "/colstore_prop_" +
                std::to_string(GetParam()) + ".ivt";
    ivc_path_ = ::testing::TempDir() + "/colstore_prop_" +
                std::to_string(GetParam()) + ".ivc";
    tracefile::save_trace(trace_, ivt_path_);
    colstore::pack_trace_file(ivt_path_, ivc_path_,
                              {.chunk_rows = chunk_rows_});
  }

  tracefile::Trace trace_;
  std::size_t chunk_rows_ = 0;
  std::string ivt_path_;
  std::string ivc_path_;
};

TEST_P(ColstoreRoundTripPropertyTest, PackedTableEqualsIvtLoadPath) {
  const tracefile::Trace via_ivt = tracefile::load_trace(ivt_path_);
  const colstore::ColumnarReader reader(ivc_path_);
  EXPECT_EQ(reader.vehicle(), via_ivt.vehicle);
  EXPECT_EQ(reader.journey(), via_ivt.journey);
  EXPECT_EQ(reader.start_unix_ns(), via_ivt.start_unix_ns);

  const auto expected = tracefile::to_kb_table(via_ivt, 1).collect_rows();
  EXPECT_EQ(reader.scan().collect_rows(), expected);

  // Acceptance criterion: a predicate equal to the full id set must be a
  // no-op filter.
  std::set<std::int64_t> ids;
  for (const auto& rec : trace_.records) ids.insert(rec.message_id);
  colstore::ScanPredicate full;
  full.message_ids.assign(ids.begin(), ids.end());
  EXPECT_EQ(reader.scan(full).collect_rows(), expected);

  // Full materialization equals the original in-memory trace.
  EXPECT_EQ(reader.read_trace().records, trace_.records);
}

TEST_P(ColstoreRoundTripPropertyTest, RandomPredicateEqualsReferenceFilter) {
  std::mt19937_64 rng(GetParam() ^ 0xF117E5);
  const colstore::ColumnarReader reader(ivc_path_);

  colstore::ScanPredicate pred;
  // Random id subset (possibly including absent ids).
  const std::size_t n_ids = rng() % 6;
  for (std::size_t i = 0; i < n_ids; ++i) {
    pred.message_ids.push_back(static_cast<std::int64_t>(rng() % 2048));
  }
  if (rng() % 2 == 0) pred.buses = {"BUS" + std::to_string(rng() % 6)};
  if (rng() % 2 == 0 && !trace_.records.empty()) {
    pred.has_time_range = true;
    const std::int64_t lo = trace_.records.front().t_ns;
    const std::int64_t hi = trace_.records.back().t_ns;
    pred.min_t_ns = lo + (hi - lo) / 4;
    pred.max_t_ns = hi - (hi - lo) / 4;
  }

  const std::set<std::int64_t> ids(pred.message_ids.begin(),
                                   pred.message_ids.end());
  tracefile::Trace expected;
  for (const auto& rec : trace_.records) {
    if (!ids.empty() && !ids.contains(rec.message_id)) continue;
    if (!pred.buses.empty() && rec.bus != pred.buses.front()) continue;
    if (pred.has_time_range &&
        (rec.t_ns < pred.min_t_ns || rec.t_ns > pred.max_t_ns)) {
      continue;
    }
    expected.records.push_back(rec);
  }

  colstore::ScanStats stats;
  const dataflow::Table out = reader.scan(pred, &stats);
  EXPECT_EQ(out.collect_rows(),
            tracefile::to_kb_table(expected, 1).collect_rows());
  EXPECT_EQ(stats.rows_emitted, expected.records.size());
  EXPECT_LE(stats.chunks_scanned, stats.chunks_total);
  EXPECT_GE(stats.rows_considered, stats.rows_emitted);
}

TEST_P(ColstoreRoundTripPropertyTest, TruncatedImageThrows) {
  if (trace_.records.empty()) return;
  std::ostringstream out(std::ios::binary);
  {
    colstore::ColumnarWriter writer(out, trace_.vehicle, trace_.journey,
                                    trace_.start_unix_ns,
                                    {.chunk_rows = chunk_rows_});
    for (const auto& rec : trace_.records) writer.write(rec);
    writer.finish();
  }
  std::string data = out.str();
  data.resize(data.size() * 2 / 3);
  EXPECT_THROW(colstore::ColumnarReader::from_buffer(std::move(data)),
               std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColstoreRoundTripPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

}  // namespace
}  // namespace ivt
