// Property tests: branch α behaves sanely across its configuration space
// (SAX alphabet sizes × outlier methods), parameterized sweep.
#include <gtest/gtest.h>

#include <cmath>

#include "core/branches.hpp"
#include "core/schemas.hpp"

namespace ivt::core {
namespace {

constexpr std::int64_t kMs = 1'000'000;

SequenceData sine_with_spikes() {
  SequenceData d;
  d.s_id = "sig";
  d.bus = "FC";
  for (int i = 0; i < 200; ++i) {
    d.t.push_back(i * 10 * kMs);
    double v = 100.0 + 50.0 * std::sin(i * 0.1);
    if (i == 60 || i == 150) v = 5000.0;
    d.v_num.push_back(v);
    d.has_num.push_back(1);
    d.v_str.emplace_back();
    d.has_str.push_back(0);
  }
  return d;
}

struct ConfigCase {
  std::size_t alphabet;
  algo::OutlierMethod method;
};

class BranchConfigPropertyTest
    : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(BranchConfigPropertyTest, AlphaInvariantsHoldAcrossConfigs) {
  const auto [alphabet, method] = GetParam();
  BranchConfig config;
  config.sax_alphabet = alphabet;
  config.outlier.method = method;
  const SequenceData d = sine_with_spikes();
  BranchStats stats;
  const auto out = process_alpha({d, nullptr}, config, &stats);

  // Both spikes isolated.
  EXPECT_EQ(stats.outliers, 2u);
  // Symbolization compresses.
  EXPECT_LT(out.num_rows(), d.size());
  EXPECT_GE(stats.segments, 2u);
  // Output schema + symbol labels bounded by the alphabet.
  EXPECT_EQ(out.schema(), krep_schema());
  const std::size_t value_col = out.schema().require("value");
  const std::size_t kind_col = out.schema().require("element_kind");
  std::size_t state_rows = 0;
  out.for_each_row([&](const dataflow::RowView& row) {
    if (row.string_at(kind_col) != kElementState) return;
    ++state_rows;
    const std::string& value = row.string_at(value_col);
    EXPECT_EQ(value.front(), '(');
    EXPECT_EQ(value.back(), ')');
    EXPECT_NE(value.find(','), std::string::npos);
  });
  EXPECT_EQ(state_rows, stats.segments);
  // Time-ordered output.
  std::int64_t last = -1;
  out.for_each_row([&](const dataflow::RowView& row) {
    EXPECT_GE(row.int64_at(0), last);
    last = row.int64_at(0);
  });
}

TEST_P(BranchConfigPropertyTest, SineUsesHighAndLowLevels) {
  const auto [alphabet, method] = GetParam();
  BranchConfig config;
  config.sax_alphabet = alphabet;
  config.outlier.method = method;
  config.swab_error_scale = 0.2;  // fine segmentation
  const SequenceData d = sine_with_spikes();
  const auto out = process_alpha({d, nullptr}, config);
  // With a fine segmentation, at least two distinct level names appear.
  std::set<std::string> levels;
  const std::size_t value_col = out.schema().require("value");
  const std::size_t kind_col = out.schema().require("element_kind");
  out.for_each_row([&](const dataflow::RowView& row) {
    if (row.string_at(kind_col) != kElementState) return;
    const std::string& value = row.string_at(value_col);
    levels.insert(value.substr(1, value.find(',') - 1));
  });
  EXPECT_GE(levels.size(), 2u);
  EXPECT_LE(levels.size(), alphabet);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BranchConfigPropertyTest,
    ::testing::Values(ConfigCase{2, algo::OutlierMethod::Hampel},
                      ConfigCase{3, algo::OutlierMethod::Hampel},
                      ConfigCase{5, algo::OutlierMethod::Hampel},
                      ConfigCase{8, algo::OutlierMethod::Hampel},
                      ConfigCase{16, algo::OutlierMethod::Hampel},
                      ConfigCase{5, algo::OutlierMethod::ZScore},
                      ConfigCase{5, algo::OutlierMethod::Iqr}),
    [](const auto& info) {
      const char* method = "Hampel";
      if (info.param.method == algo::OutlierMethod::ZScore) method = "ZScore";
      if (info.param.method == algo::OutlierMethod::Iqr) method = "Iqr";
      return std::string("A") + std::to_string(info.param.alphabet) + "_" +
             method;
    });

}  // namespace
}  // namespace ivt::core
