// Property: chunking is invisible. A signal instance stream packed at ANY
// chunk size — including sizes that slice instance runs mid-sequence at
// awkward prime offsets — must produce exactly the splits, e(·)
// channel-dedup decisions and Extension gap annotations (the paper's W
// elements) of the degenerate single-chunk layout, in both execution
// modes. Chunk boundaries are a storage artefact; if any of these
// observables shifted with chunk_rows, morsel-local state would be
// leaking into the results.
//
// Two layers:
//  * the full pipeline over a catalog-driven trace (splits + W gap
//    annotations + byte-identical K_s / K_rep across chunkings), and
//  * the split stage over a synthetic multi-channel K_s (the catalog
//    model binds each signal to one bus, so gateway-duplicated channels
//    — the e(·) dedup input — are constructed directly), re-partitioned
//    at several boundaries to mimic morsels cutting sequences mid-run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "colstore/columnar_writer.hpp"
#include "core/extend.hpp"
#include "core/pipeline.hpp"
#include "core/schemas.hpp"
#include "core/split.hpp"
#include "tracefile/trace.hpp"

#include "../common/differ.hpp"
#include "../core/test_fixtures.hpp"

namespace ivt {
namespace {

using core::testing::kMs;
using core::testing::KsRow;

/// ~3400 records: wiper ramp with plateaus (reduction fodder), heater and
/// belt for branch variety. Every sequence gets cut many times at small
/// chunk sizes.
tracefile::Trace boundary_trace() {
  tracefile::Trace trace;
  for (int i = 0; i < 3000; ++i) {
    trace.records.push_back(core::testing::wiper_record(
        i * 20 * kMs, static_cast<double>(i / 10),
        static_cast<double>(i % 50), "FC"));
  }
  for (int i = 0; i < 60; ++i) {
    trace.records.push_back(
        core::testing::heater_record(i * 1000 * kMs + 3, (i % 4)));
  }
  for (int i = 0; i < 300; ++i) {
    trace.records.push_back(
        core::testing::belt_record(i * 200 * kMs + 7, (i / 10) % 2 == 1));
  }
  std::sort(trace.records.begin(), trace.records.end(),
            [](const tracefile::TraceRecord& a,
               const tracefile::TraceRecord& b) { return a.t_ns < b.t_ns; });
  return trace;
}

class ChunkBoundaryPropertyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new signaldb::Catalog(core::testing::wiper_catalog());
    trace_ = new tracefile::Trace(boundary_trace());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    delete trace_;
    catalog_ = nullptr;
    trace_ = nullptr;
  }

  static std::string pack(std::size_t chunk_rows) {
    const std::string path = ::testing::TempDir() + "/chunkprop_" +
                             std::to_string(chunk_rows) + ".ivc";
    colstore::ColumnarWriterOptions options;
    options.chunk_rows = chunk_rows;
    colstore::save_trace_columnar(*trace_, path, options);
    return path;
  }

  /// Gap extension on, channel dedup on, K_s kept: every observable the
  /// property quantifies over is in the result.
  static core::PipelineConfig config_with_gaps() {
    core::PipelineConfig config;
    config.extensions.push_back(core::gap_extension());
    config.keep_ks = true;
    return config;
  }

  /// Rows K_rep owes to extension rules — the W set.
  static std::size_t extension_rows(const core::PipelineResult& result) {
    const std::size_t kind_col = result.krep.schema().require("element_kind");
    std::size_t n = 0;
    for (const auto& row : result.krep.collect_rows()) {
      if (row[kind_col].to_display_string() == "extension") ++n;
    }
    return n;
  }

  static signaldb::Catalog* catalog_;
  static tracefile::Trace* trace_;
};

signaldb::Catalog* ChunkBoundaryPropertyTest::catalog_ = nullptr;
tracefile::Trace* ChunkBoundaryPropertyTest::trace_ = nullptr;

TEST_F(ChunkBoundaryPropertyTest, ChunkingIsInvisibleToThePipeline) {
  // Reference: everything in one chunk — no instance can straddle a
  // boundary because there are none.
  const colstore::ColumnarReader single(pack(1u << 22));
  const testdiff::RunOutcome reference = testdiff::run_mode(
      *catalog_, single, config_with_gaps(), core::ExecMode::Streaming,
      {.workers = 4});
  ASSERT_FALSE(reference.threw) << reference.error;
  ASSERT_GT(reference.result.krep_rows, 0u);
  const std::size_t reference_w = extension_rows(reference.result);
  ASSERT_GT(reference_w, 0u) << "property is vacuous without gap elements";

  // Prime and power-of-two sizes small enough that every sequence is cut
  // many times.
  for (const std::size_t chunk_rows :
       {std::size_t{61}, std::size_t{128}, std::size_t{509},
        std::size_t{1021}, std::size_t{4096}}) {
    SCOPED_TRACE("chunk_rows=" + std::to_string(chunk_rows));
    const colstore::ColumnarReader reader(pack(chunk_rows));

    // Both modes over the chunked layout agree with each other...
    const testdiff::RunOutcome batch = testdiff::expect_modes_equivalent(
        *catalog_, reader, config_with_gaps(), {.workers = 4});
    ASSERT_FALSE(batch.threw) << batch.error;

    // ...and with the single-chunk reference: same splits...
    ASSERT_EQ(batch.result.sequences.size(),
              reference.result.sequences.size());
    for (std::size_t i = 0; i < batch.result.sequences.size(); ++i) {
      const core::SequenceReport& a = batch.result.sequences[i];
      const core::SequenceReport& b = reference.result.sequences[i];
      EXPECT_EQ(a.s_id, b.s_id) << "sequence " << i;
      EXPECT_EQ(a.bus, b.bus) << "sequence " << i;
      EXPECT_EQ(a.input_rows, b.input_rows) << "sequence " << i;
    }

    // ...same W gap annotations, and in fact the same K_s and K_rep to
    // the last byte.
    EXPECT_EQ(extension_rows(batch.result), reference_w);
    EXPECT_TRUE(testdiff::tables_identical(batch.result.ks,
                                           reference.result.ks, "K_s"));
    EXPECT_TRUE(testdiff::tables_identical(batch.result.krep,
                                           reference.result.krep, "K_rep"));
  }
}

// ---- Split-stage dedup under partition boundaries -------------------------

/// K_s rows as morsel-shaped partitions of `rows_per_part` rows each.
dataflow::Table make_ks_partitioned(const std::vector<KsRow>& rows,
                                    std::size_t rows_per_part) {
  dataflow::Table table(core::ks_schema());
  for (std::size_t begin = 0; begin < rows.size(); begin += rows_per_part) {
    dataflow::Partition p = dataflow::Table::make_partition(core::ks_schema());
    const std::size_t end = std::min(rows.size(), begin + rows_per_part);
    for (std::size_t r = begin; r < end; ++r) {
      const KsRow& row = rows[r];
      p.columns[0].append_int64(row.t);
      p.columns[1].append_string(row.s_id);
      if (row.has_num) {
        p.columns[2].append_float64(row.v_num);
      } else {
        p.columns[2].append_null();
      }
      if (row.has_str) {
        p.columns[3].append_string(row.v_str);
      } else {
        p.columns[3].append_null();
      }
      p.columns[4].append_string(row.bus);
    }
    table.add_partition(std::move(p));
  }
  return table;
}

TEST_F(ChunkBoundaryPropertyTest, SplitDedupInvariantUnderPartitioning) {
  // Three channels of 'sig': FC and RC carry pairwise-equal values (a
  // gateway forward — e(·) must collapse RC), KC diverges at one instance
  // (must stay its own sequence). Channels are interleaved in time so
  // small partitions slice every sequence mid-run.
  std::vector<KsRow> rows;
  for (int i = 0; i < 200; ++i) {
    const double v = static_cast<double>(i / 7);
    rows.push_back({i * 100 * kMs, "sig", v, true, "", false, "FC"});
    rows.push_back({i * 100 * kMs + kMs, "sig", v, true, "", false, "RC"});
    const double kc = (i == 150) ? v + 99.0 : v;  // one diverging instance
    rows.push_back({i * 100 * kMs + 2 * kMs, "sig", kc, true, "", false,
                    "KC"});
  }

  dataflow::Engine engine({.workers = 4});
  core::SplitOptions options;  // dedup_channels = true
  const core::SplitDataResult reference = core::split_signals_data(
      engine, make_ks_partitioned(rows, rows.size()), options);
  ASSERT_EQ(reference.sequences.size(), 2u);  // FC representative + KC
  ASSERT_EQ(reference.correspondences.size(), 1u);
  EXPECT_EQ(reference.correspondences[0].representative_bus, "FC");
  EXPECT_EQ(reference.correspondences[0].corresponding_buses,
            std::vector<std::string>{"RC"});

  for (const std::size_t rows_per_part :
       {std::size_t{1}, std::size_t{3}, std::size_t{7}, std::size_t{64},
        std::size_t{101}}) {
    SCOPED_TRACE("rows_per_part=" + std::to_string(rows_per_part));
    const core::SplitDataResult got = core::split_signals_data(
        engine, make_ks_partitioned(rows, rows_per_part), options);

    ASSERT_EQ(got.sequences.size(), reference.sequences.size());
    for (std::size_t i = 0; i < got.sequences.size(); ++i) {
      const core::SequenceData& a = got.sequences[i];
      const core::SequenceData& b = reference.sequences[i];
      EXPECT_EQ(a.s_id, b.s_id);
      EXPECT_EQ(a.bus, b.bus);
      EXPECT_EQ(a.t, b.t);
      EXPECT_EQ(a.v_num, b.v_num);
    }
    ASSERT_EQ(got.correspondences.size(), reference.correspondences.size());
    EXPECT_EQ(got.correspondences[0].representative_bus, "FC");
    EXPECT_EQ(got.correspondences[0].corresponding_buses,
              std::vector<std::string>{"RC"});
  }
}

}  // namespace
}  // namespace ivt
