// Property tests: CSV and binary table serialization round-trip randomly
// generated tables; the trace container round-trips random traces; and
// truncated inputs throw instead of crashing or silently succeeding.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "dataflow/csv.hpp"
#include "dataflow/table_io.hpp"
#include "tracefile/binary_format.hpp"

namespace ivt {
namespace {

using dataflow::Field;
using dataflow::Schema;
using dataflow::Table;
using dataflow::TableBuilder;
using dataflow::Value;
using dataflow::ValueType;

Value random_value(ValueType type, std::mt19937_64& rng) {
  if (rng() % 10 == 0) return Value{};  // null
  switch (type) {
    case ValueType::Int64:
      return Value{static_cast<std::int64_t>(rng()) / 1024};
    case ValueType::Float64:
      return Value{std::uniform_real_distribution<double>(-1e6, 1e6)(rng)};
    case ValueType::String: {
      // Include CSV-hostile characters.
      static const char* kPieces[] = {"plain", "with,comma", "with\"quote",
                                      "with\nnewline", "", "ünïcode-ish"};
      std::string s = kPieces[rng() % 6];
      s += std::to_string(rng() % 100);
      return Value{std::move(s)};
    }
    case ValueType::Null:
      return Value{};
  }
  return Value{};
}

Table random_table(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Field> fields;
  const std::size_t width = 1 + rng() % 5;
  for (std::size_t c = 0; c < width; ++c) {
    const ValueType types[] = {ValueType::Int64, ValueType::Float64,
                               ValueType::String};
    fields.push_back(Field{"c" + std::to_string(c), types[rng() % 3]});
  }
  const Schema schema{std::move(fields)};
  TableBuilder builder(schema, 1 + rng() % 7);
  const std::size_t rows = rng() % 200;
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    row.reserve(schema.size());
    for (std::size_t c = 0; c < schema.size(); ++c) {
      row.push_back(random_value(schema.field(c).type, rng));
    }
    builder.append_row(std::move(row));
  }
  return builder.build();
}

class SerializationPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializationPropertyTest, BinaryTableRoundTrip) {
  const Table t = random_table(GetParam());
  std::stringstream ss;
  dataflow::write_table(t, ss);
  const Table back = dataflow::read_table(ss);
  EXPECT_EQ(back.schema(), t.schema());
  EXPECT_EQ(back.collect_rows(), t.collect_rows());
}

TEST_P(SerializationPropertyTest, BinaryTableTruncationThrows) {
  const Table t = random_table(GetParam());
  if (t.num_rows() == 0) return;
  std::stringstream ss;
  dataflow::write_table(t, ss);
  std::string data = ss.str();
  data.resize(data.size() * 2 / 3);
  std::stringstream truncated(data);
  EXPECT_THROW(dataflow::read_table(truncated), std::runtime_error);
}

TEST_P(SerializationPropertyTest, CsvRoundTripModuloFloatFormat) {
  // CSV prints doubles with %.9g — exact round trip holds for the values
  // we generate only up to that precision, so compare rendered cells.
  const Table t = random_table(GetParam());
  std::stringstream ss;
  dataflow::write_csv(t, ss);
  const Table back = dataflow::read_csv(ss, t.schema());
  ASSERT_EQ(back.num_rows(), t.num_rows());
  const auto a = t.collect_rows();
  const auto b = back.collect_rows();
  for (std::size_t r = 0; r < a.size(); ++r) {
    for (std::size_t c = 0; c < a[r].size(); ++c) {
      if (t.schema().field(c).type == ValueType::String &&
          !a[r][c].is_null() && a[r][c].as_string().empty()) {
        // Documented lossy corner: CSV cannot distinguish an empty string
        // from null.
        EXPECT_TRUE(b[r][c].is_null() ||
                    b[r][c].as_string().empty());
        continue;
      }
      EXPECT_EQ(a[r][c].to_display_string(), b[r][c].to_display_string())
          << "row " << r << " col " << c;
    }
  }
}

TEST_P(SerializationPropertyTest, TraceContainerRoundTrip) {
  std::mt19937_64 rng(GetParam() ^ 0x70D014);
  tracefile::Trace trace;
  trace.vehicle = "V" + std::to_string(rng() % 10);
  trace.journey = "J" + std::to_string(rng() % 10);
  trace.start_unix_ns = static_cast<std::int64_t>(rng());
  const std::size_t n = rng() % 300;
  std::int64_t t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tracefile::TraceRecord rec;
    t += static_cast<std::int64_t>(rng() % 1'000'000);
    rec.t_ns = t;
    rec.bus = "BUS" + std::to_string(rng() % 4);
    rec.message_id = static_cast<std::int64_t>(rng() % 2048);
    rec.protocol = static_cast<protocol::Protocol>(rng() % 5);
    rec.flags = static_cast<std::uint32_t>(rng() % 2);
    rec.payload.resize(rng() % 64);
    for (auto& b : rec.payload) b = static_cast<std::uint8_t>(rng());
    trace.records.push_back(std::move(rec));
  }
  std::stringstream ss;
  {
    tracefile::TraceWriter writer(ss, trace.vehicle, trace.journey,
                                  trace.start_unix_ns);
    for (const auto& rec : trace.records) writer.write(rec);
  }
  tracefile::TraceReader reader(ss);
  tracefile::Trace back;
  back.vehicle = reader.vehicle();
  back.journey = reader.journey();
  back.start_unix_ns = reader.start_unix_ns();
  tracefile::TraceRecord rec;
  while (reader.next(rec)) back.records.push_back(rec);
  EXPECT_EQ(back.vehicle, trace.vehicle);
  EXPECT_EQ(back.start_unix_ns, trace.start_unix_ns);
  EXPECT_EQ(back.records, trace.records);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

}  // namespace
}  // namespace ivt
