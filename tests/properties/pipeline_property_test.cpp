// Property tests: pipeline bookkeeping invariants over all three paper
// data sets (parameterized sweep).
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <set>

#include "core/pipeline.hpp"
#include "core/schemas.hpp"
#include "simnet/datasets.hpp"
#include "tracefile/trace.hpp"

namespace ivt {
namespace {

class PipelinePropertyTest : public ::testing::TestWithParam<const char*> {
 protected:
  static simnet::DatasetSpec spec_for(const std::string& name) {
    if (name == "SYN") return simnet::syn_spec();
    if (name == "LIG") return simnet::lig_spec();
    return simnet::sta_spec();
  }

  struct Prepared {
    simnet::Dataset dataset;
    simnet::VehiclePlan plan;
    core::PipelineResult result;
  };

  /// One pipeline run per data set, cached across the test cases.
  static const Prepared& prepared_for(const std::string& name) {
    static std::map<std::string, Prepared> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
      Prepared p{{}, simnet::plan_vehicle(spec_for(name), 42), {}};
      simnet::DatasetConfig config;
      config.scale = 3e-4;
      config.seed = 42;
      p.dataset = simnet::make_dataset(spec_for(name), config);
      core::PipelineConfig pconfig;
      pconfig.classifier.rate_threshold_hz =
          p.plan.recommended_rate_threshold_hz;
      pconfig.extensions.push_back(core::cycle_violation_extension(1.5));
      const core::Pipeline pipeline(p.dataset.catalog, pconfig);
      dataflow::Engine engine{{.workers = 4, .default_partitions = 8}};
      p.result =
          pipeline.run(engine, tracefile::to_kb_table(p.dataset.trace, 8));
      it = cache.emplace(name, std::move(p)).first;
    }
    return it->second;
  }
};

TEST_P(PipelinePropertyTest, RowAccountingIsConsistent) {
  const auto& p = prepared_for(GetParam());
  const core::PipelineResult& r = p.result;
  EXPECT_LE(r.kpre_rows, r.kb_rows);
  EXPECT_LE(r.reduced_rows, r.ks_rows);
  std::size_t seq_input = 0;
  std::size_t seq_reduced = 0;
  std::size_t seq_output = 0;
  std::size_t seq_ext = 0;
  for (const core::SequenceReport& report : r.sequences) {
    seq_input += report.input_rows;
    seq_reduced += report.reduced_rows;
    seq_output += report.output_rows;
    seq_ext += report.extension_rows;
    EXPECT_LE(report.reduced_rows, report.input_rows);
  }
  // Gateway duplicates are dropped between K_s and the sequences.
  EXPECT_LE(seq_input, r.ks_rows);
  EXPECT_EQ(seq_reduced, r.reduced_rows);
  EXPECT_EQ(seq_output + seq_ext, r.krep_rows);
}

TEST_P(PipelinePropertyTest, EverySelectedSignalAppears) {
  const auto& p = prepared_for(GetParam());
  std::set<std::string> seen;
  for (const core::SequenceReport& report : p.result.sequences) {
    seen.insert(report.s_id);
  }
  // Every documented signal must produce a sequence (the simulator emits
  // every message type).
  for (const std::string& name : p.dataset.signal_names) {
    EXPECT_TRUE(seen.contains(name)) << name;
  }
}

TEST_P(PipelinePropertyTest, KrepElementsAreWellFormed) {
  const auto& p = prepared_for(GetParam());
  const auto& schema = p.result.krep.schema();
  EXPECT_EQ(schema, core::krep_schema());
  const std::size_t kind_col = schema.require("element_kind");
  const std::size_t value_col = schema.require("value");
  p.result.krep.for_each_row([&](const dataflow::RowView& row) {
    const std::string& kind = row.string_at(kind_col);
    EXPECT_TRUE(kind == core::kElementState ||
                kind == core::kElementOutlier ||
                kind == core::kElementValidity ||
                kind == core::kElementExtension)
        << kind;
    EXPECT_FALSE(row.is_null(value_col));
  });
}

TEST_P(PipelinePropertyTest, StateTimesAreNonDecreasing) {
  const auto& p = prepared_for(GetParam());
  std::int64_t last = std::numeric_limits<std::int64_t>::min();
  const std::size_t t_col = p.result.state.schema().require("t");
  p.result.state.for_each_row([&](const dataflow::RowView& row) {
    EXPECT_GE(row.int64_at(t_col), last);
    last = row.int64_at(t_col);
  });
}

TEST_P(PipelinePropertyTest, StateColumnsNeverRevertToNull) {
  const auto& p = prepared_for(GetParam());
  const auto& state = p.result.state;
  // Forward fill: once a non-extension column is set it stays set.
  std::vector<bool> seen(state.schema().size(), false);
  std::vector<bool> is_extension(state.schema().size(), false);
  for (std::size_t c = 1; c < state.schema().size(); ++c) {
    is_extension[c] =
        state.schema().field(c).name.find('.') != std::string::npos;
  }
  state.for_each_row([&](const dataflow::RowView& row) {
    for (std::size_t c = 1; c < state.schema().size(); ++c) {
      if (is_extension[c]) continue;
      if (!row.is_null(c)) {
        seen[c] = true;
      } else {
        EXPECT_FALSE(seen[c])
            << "column " << state.schema().field(c).name << " reverted";
      }
    }
  });
}

TEST_P(PipelinePropertyTest, ReductionActuallyReduces) {
  const auto& p = prepared_for(GetParam());
  // Automotive traffic is highly redundant; expect at least 10% removed.
  EXPECT_LT(p.result.reduced_rows,
            p.result.ks_rows - p.result.ks_rows / 10);
}

INSTANTIATE_TEST_SUITE_P(Datasets, PipelinePropertyTest,
                         ::testing::Values("SYN", "LIG", "STA"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace ivt
