// Property tests: segmentation invariants over generated waveforms.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "algo/swab.hpp"

namespace ivt::algo {
namespace {

enum class Waveform { Sine, Ramp, Steps, Noise, Constant };

std::vector<double> make_waveform(Waveform kind, std::size_t n,
                                  std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  double level = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    switch (kind) {
      case Waveform::Sine:
        xs.push_back(std::sin(x * 0.05));
        break;
      case Waveform::Ramp:
        xs.push_back(0.01 * x);
        break;
      case Waveform::Steps:
        if (i % 40 == 0) {
          level = static_cast<double>(rng() % 8);
        }
        xs.push_back(level);
        break;
      case Waveform::Noise:
        xs.push_back(std::uniform_real_distribution<double>(-1, 1)(rng));
        break;
      case Waveform::Constant:
        xs.push_back(3.5);
        break;
    }
  }
  return xs;
}

struct WaveCase {
  Waveform kind;
  std::size_t n;
};

class SwabPropertyTest : public ::testing::TestWithParam<WaveCase> {
 protected:
  static std::vector<double> unit_ts(std::size_t n) {
    std::vector<double> ts(n);
    for (std::size_t i = 0; i < n; ++i) ts[i] = static_cast<double>(i);
    return ts;
  }
};

TEST_P(SwabPropertyTest, SegmentsPartitionTheSeries) {
  const auto [kind, n] = GetParam();
  const auto xs = make_waveform(kind, n, 7);
  const auto ts = unit_ts(n);
  SegmentationConfig config;
  config.max_error = 1.0;
  config.buffer_size = 80;
  const auto segments = swab_segment(ts, xs, config);
  ASSERT_FALSE(segments.empty());
  EXPECT_EQ(segments.front().start, 0u);
  EXPECT_EQ(segments.back().end, n);
  for (std::size_t i = 1; i < segments.size(); ++i) {
    EXPECT_EQ(segments[i].start, segments[i - 1].end);
  }
  for (const Segment& seg : segments) {
    EXPECT_GT(seg.length(), 0u);
  }
}

TEST_P(SwabPropertyTest, SegmentErrorsMatchTheirFit) {
  const auto [kind, n] = GetParam();
  const auto xs = make_waveform(kind, n, 11);
  const auto ts = unit_ts(n);
  SegmentationConfig config;
  config.max_error = 2.0;
  const auto segments = swab_segment(ts, xs, config);
  for (const Segment& seg : segments) {
    const Segment refit = fit_segment(ts, xs, seg.start, seg.end);
    EXPECT_NEAR(seg.error, refit.error, 1e-6);
    EXPECT_NEAR(seg.fit.slope, refit.fit.slope, 1e-9);
  }
}

TEST_P(SwabPropertyTest, DeterministicAcrossRuns) {
  const auto [kind, n] = GetParam();
  const auto xs = make_waveform(kind, n, 13);
  const auto ts = unit_ts(n);
  SegmentationConfig config;
  config.max_error = 0.5;
  config.buffer_size = 60;
  const auto a = swab_segment(ts, xs, config);
  const auto b = swab_segment(ts, xs, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

TEST_P(SwabPropertyTest, LargerBudgetNeverYieldsMoreSegments) {
  const auto [kind, n] = GetParam();
  const auto xs = make_waveform(kind, n, 17);
  const auto ts = unit_ts(n);
  const auto tight = bottom_up_segment(ts, xs, 0.1);
  const auto loose = bottom_up_segment(ts, xs, 10.0);
  EXPECT_LE(loose.size(), tight.size());
}

std::string wave_case_name(const ::testing::TestParamInfo<WaveCase>& info) {
  const char* name = "Unknown";
  switch (info.param.kind) {
    case Waveform::Sine:
      name = "Sine";
      break;
    case Waveform::Ramp:
      name = "Ramp";
      break;
    case Waveform::Steps:
      name = "Steps";
      break;
    case Waveform::Noise:
      name = "Noise";
      break;
    case Waveform::Constant:
      name = "Constant";
      break;
  }
  return std::string(name) + "_" + std::to_string(info.param.n);
}

INSTANTIATE_TEST_SUITE_P(
    Waveforms, SwabPropertyTest,
    ::testing::Values(WaveCase{Waveform::Sine, 300},
                      WaveCase{Waveform::Ramp, 300},
                      WaveCase{Waveform::Steps, 400},
                      WaveCase{Waveform::Noise, 200},
                      WaveCase{Waveform::Constant, 150},
                      WaveCase{Waveform::Sine, 37},
                      WaveCase{Waveform::Steps, 1000}),
    wave_case_name);

}  // namespace
}  // namespace ivt::algo
