// Property wall around the compressed (decode-free) scan path: for random
// traces × chunk sizes × predicates, ScanMode::Compressed must emit
// exactly the rows, in exactly the order, of ScanMode::Decoded — cell for
// cell — and the EmittedRun report of every morsel must tile its
// partition and agree with the key dictionary. The generator is bursty on
// purpose (keys repeat in runs like periodic CAN traffic) so the key_idx
// column has real run structure, with a scattered tail so single-row runs
// occur too.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "colstore/chunk_cursor.hpp"
#include "colstore/columnar_reader.hpp"
#include "colstore/columnar_writer.hpp"
#include "tracefile/trace.hpp"

namespace ivt {
namespace {

using colstore::ScanMode;
using colstore::ScanOptions;
using colstore::ScanPredicate;
using colstore::ScanStats;

tracefile::Trace bursty_trace(std::uint64_t seed) {
  std::mt19937_64 rng(seed ^ 0xB5247);
  tracefile::Trace trace;
  trace.vehicle = "V1";
  trace.journey = "J" + std::to_string(seed);
  trace.start_unix_ns = static_cast<std::int64_t>(rng() % (1ull << 40));
  const std::size_t n_bursts = rng() % 40;
  std::int64_t t = 0;
  for (std::size_t b = 0; b < n_bursts; ++b) {
    // One burst = one (bus, id) key repeated `len` times: a key run.
    // len 1 happens often enough to cover single-row runs.
    const std::string bus = "BUS" + std::to_string(rng() % 4);
    const std::int64_t mid = static_cast<std::int64_t>(rng() % 64) -
                             (rng() % 8 == 0 ? 128 : 0);
    const std::size_t len = 1 + rng() % 24;
    const auto protocol = static_cast<protocol::Protocol>(rng() % 5);
    for (std::size_t i = 0; i < len; ++i) {
      tracefile::TraceRecord rec;
      t += static_cast<std::int64_t>(rng() % 10'000);
      rec.t_ns = t;
      rec.bus = bus;
      rec.message_id = mid;
      rec.protocol = protocol;
      rec.flags = static_cast<std::uint32_t>(rng() % 4);
      rec.payload.resize(rng() % 16);
      for (auto& byte : rec.payload) byte = static_cast<std::uint8_t>(rng());
      trace.records.push_back(std::move(rec));
    }
  }
  return trace;
}

std::string pack_to_buffer(const tracefile::Trace& trace,
                           std::size_t chunk_rows) {
  std::ostringstream out(std::ios::binary);
  colstore::ColumnarWriter writer(out, trace.vehicle, trace.journey,
                                  trace.start_unix_ns,
                                  {.chunk_rows = chunk_rows});
  for (const auto& rec : trace.records) writer.write(rec);
  writer.finish();
  return out.str();
}

/// The predicate shapes the compressed path must get right: run-constant
/// conjuncts (ids / buses / pairs), the row-level time range that can
/// split runs, never-match sets, and combinations.
std::vector<ScanPredicate> predicate_suite(const tracefile::Trace& trace,
                                           std::mt19937_64& rng) {
  std::vector<ScanPredicate> preds;
  preds.emplace_back();  // unconstrained

  ScanPredicate ids;
  for (std::size_t i = 0; i < 3 && !trace.records.empty(); ++i) {
    ids.message_ids.push_back(
        trace.records[rng() % trace.records.size()].message_id);
  }
  ids.message_ids.push_back(9999);  // absent id mixed in
  preds.push_back(ids);

  ScanPredicate bus;
  bus.buses = {"BUS" + std::to_string(rng() % 5)};  // sometimes absent
  preds.push_back(bus);

  ScanPredicate pairs;
  for (std::size_t i = 0; i < 2 && !trace.records.empty(); ++i) {
    const auto& rec = trace.records[rng() % trace.records.size()];
    pairs.bus_message_pairs.emplace_back(rec.bus, rec.message_id);
  }
  pairs.bus_message_pairs.emplace_back("BUS9", 7);  // absent pair
  preds.push_back(pairs);

  if (!trace.records.empty()) {
    ScanPredicate range;
    range.has_time_range = true;
    const std::int64_t lo = trace.records.front().t_ns;
    const std::int64_t hi = trace.records.back().t_ns;
    range.min_t_ns = lo + (hi - lo) / 3;
    range.max_t_ns = hi - (hi - lo) / 3;
    preds.push_back(range);

    // Combined: ids + bus + time range, the full conjunction.
    ScanPredicate combo = range;
    combo.message_ids = ids.message_ids;
    combo.buses = {trace.records[rng() % trace.records.size()].bus};
    preds.push_back(combo);
  }

  ScanPredicate never;
  never.message_ids = {123456789};  // matches nothing
  preds.push_back(never);

  ScanPredicate absent_bus;
  absent_bus.buses = {"NO_SUCH_BUS"};
  preds.push_back(absent_bus);
  return preds;
}

class CompressedScanPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompressedScanPropertyTest, CompressedEqualsDecodedRowForRow) {
  const tracefile::Trace trace = bursty_trace(GetParam());
  std::mt19937_64 rng(GetParam() ^ 0x5CA11);
  for (const std::size_t chunk_rows :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}, std::size_t{64}}) {
    SCOPED_TRACE("chunk_rows=" + std::to_string(chunk_rows));
    const colstore::ColumnarReader reader =
        colstore::ColumnarReader::from_buffer(
            pack_to_buffer(trace, chunk_rows));
    ASSERT_EQ(reader.version(), colstore::kColumnarFormatVersion);
    std::size_t pred_index = 0;
    for (const ScanPredicate& pred : predicate_suite(trace, rng)) {
      SCOPED_TRACE("predicate #" + std::to_string(pred_index++));
      ScanStats decoded_stats;
      ScanStats compressed_stats;
      const dataflow::Table decoded = reader.scan(
          pred, ScanOptions{.mode = ScanMode::Decoded}, &decoded_stats);
      const dataflow::Table compressed = reader.scan(
          pred, ScanOptions{.mode = ScanMode::Compressed},
          &compressed_stats);
      EXPECT_EQ(compressed.collect_rows(), decoded.collect_rows());
      EXPECT_EQ(compressed_stats.rows_emitted, decoded_stats.rows_emitted);
      EXPECT_EQ(compressed_stats.chunks_scanned,
                decoded_stats.chunks_scanned);
      // Run accounting: the decoded path never touches runs; the
      // compressed path classifies every run it considers.
      EXPECT_EQ(decoded_stats.runs_considered, 0u);
      EXPECT_EQ(compressed_stats.runs_pruned +
                    compressed_stats.runs_accepted,
                compressed_stats.runs_considered);
      if (compressed_stats.rows_considered > 0) {
        EXPECT_GT(compressed_stats.runs_considered, 0u);
      }
    }
  }
}

TEST_P(CompressedScanPropertyTest, EmittedRunsTilePartitionsAndMatchDict) {
  const tracefile::Trace trace = bursty_trace(GetParam());
  std::mt19937_64 rng(GetParam() ^ 0x2117);
  for (const std::size_t chunk_rows : {std::size_t{1}, std::size_t{13},
                                       std::size_t{64}}) {
    SCOPED_TRACE("chunk_rows=" + std::to_string(chunk_rows));
    const colstore::ColumnarReader reader =
        colstore::ColumnarReader::from_buffer(
            pack_to_buffer(trace, chunk_rows));
    const auto& dict = reader.key_dict();
    const auto& buses = reader.bus_names();
    for (const ScanPredicate& pred : predicate_suite(trace, rng)) {
      const colstore::ChunkCursor cursor =
          reader.cursor(pred, {.mode = ScanMode::Compressed});
      ASSERT_TRUE(cursor.compressed());  // writer always emits v2
      for (std::size_t k = 0; k < cursor.num_morsels(); ++k) {
        std::vector<colstore::EmittedRun> runs;
        dataflow::Partition part = cursor.decode(k, runs);
        const std::size_t n_rows = part.num_rows();
        // Runs tile the partition: contiguous from row 0, covering
        // exactly the emitted rows (a run fully dropped by the time
        // range is simply absent).
        std::size_t next_row = 0;
        for (const colstore::EmittedRun& run : runs) {
          EXPECT_EQ(run.row_begin, next_row);
          EXPECT_GT(run.row_count, 0u);
          ASSERT_LT(run.key, dict.size());
          next_row = run.row_begin + run.row_count;
        }
        EXPECT_EQ(next_row, n_rows);
        // Every row of a run carries its dictionary key's (bus, id):
        // this is the invariant the array-index join rests on.
        dataflow::Table table(tracefile::kb_schema());
        table.add_partition(std::move(part));
        const auto rows = table.collect_rows();
        for (const colstore::EmittedRun& run : runs) {
          const colstore::KeyDictEntry& entry = dict[run.key];
          ASSERT_LT(entry.bus_index, buses.size());
          for (std::size_t r = run.row_begin;
               r < run.row_begin + run.row_count; ++r) {
            EXPECT_EQ(rows[r][2], dataflow::Value(buses[entry.bus_index]));
            EXPECT_EQ(rows[r][3], dataflow::Value(entry.message_id));
          }
        }
      }
    }
  }
}

TEST_P(CompressedScanPropertyTest, DecodedModeReportsNoRuns) {
  const tracefile::Trace trace = bursty_trace(GetParam());
  const colstore::ColumnarReader reader =
      colstore::ColumnarReader::from_buffer(pack_to_buffer(trace, 16));
  const colstore::ChunkCursor cursor =
      reader.cursor({}, {.mode = ScanMode::Decoded});
  EXPECT_FALSE(cursor.compressed());
  for (std::size_t k = 0; k < cursor.num_morsels(); ++k) {
    std::vector<colstore::EmittedRun> runs;
    (void)cursor.decode(k, runs);
    EXPECT_TRUE(runs.empty());
  }
  EXPECT_EQ(cursor.stats().runs_considered, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressedScanPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

// --- Targeted edge shapes ---------------------------------------------

TEST(CompressedScanEdgeTest, AllEqualTraceIsOneRunPerChunk) {
  // Every record shares one key: each chunk's key column is a single
  // all-equal RLE run, and the zone map of every chunk has min == max.
  tracefile::Trace trace;
  trace.vehicle = "V";
  trace.journey = "J";
  for (int i = 0; i < 100; ++i) {
    tracefile::TraceRecord rec;
    rec.t_ns = i * 1000;
    rec.bus = "CAN0";
    rec.message_id = 0x42;
    rec.payload = {static_cast<std::uint8_t>(i)};
    trace.records.push_back(std::move(rec));
  }
  const colstore::ColumnarReader reader =
      colstore::ColumnarReader::from_buffer(pack_to_buffer(trace, 10));

  ScanPredicate hit;
  hit.message_ids = {0x42};
  ScanStats stats;
  const dataflow::Table out =
      reader.scan(hit, ScanOptions{.mode = ScanMode::Compressed}, &stats);
  EXPECT_EQ(out.num_rows(), 100u);
  EXPECT_EQ(stats.runs_considered, 10u);  // one run per chunk
  EXPECT_EQ(stats.runs_accepted, 10u);
  EXPECT_EQ(stats.runs_pruned, 0u);

  // A miss on the all-equal id must be pruned by the zone maps before a
  // single run is even considered (min == max == 0x42 excludes 0x43).
  ScanPredicate miss;
  miss.message_ids = {0x43};
  ScanStats miss_stats;
  const dataflow::Table empty =
      reader.scan(miss, ScanOptions{.mode = ScanMode::Compressed},
                  &miss_stats);
  EXPECT_EQ(empty.num_rows(), 0u);
  EXPECT_EQ(miss_stats.chunks_scanned, 0u);
  EXPECT_EQ(miss_stats.runs_considered, 0u);
}

TEST(CompressedScanEdgeTest, TimeRangeSplitsAcceptedRuns) {
  // One key, times 0..99k: the time range keeps only the middle of each
  // accepted run, so run acceptance and row filtering must compose.
  tracefile::Trace trace;
  trace.vehicle = "V";
  trace.journey = "J";
  for (int i = 0; i < 100; ++i) {
    tracefile::TraceRecord rec;
    rec.t_ns = i * 1000;
    rec.bus = "CAN0";
    rec.message_id = 7;
    trace.records.push_back(std::move(rec));
  }
  const colstore::ColumnarReader reader =
      colstore::ColumnarReader::from_buffer(pack_to_buffer(trace, 25));
  ScanPredicate pred;
  pred.has_time_range = true;
  pred.min_t_ns = 24'000;
  pred.max_t_ns = 74'000;
  for (const ScanMode mode : {ScanMode::Decoded, ScanMode::Compressed}) {
    SCOPED_TRACE(colstore::to_string(mode));
    const dataflow::Table out =
        reader.scan(pred, ScanOptions{.mode = mode}, nullptr);
    EXPECT_EQ(out.num_rows(), 51u);
  }
}

TEST(CompressedScanEdgeTest, EmptyTraceBothModesEmpty) {
  tracefile::Trace trace;
  trace.vehicle = "V";
  trace.journey = "J";
  const colstore::ColumnarReader reader =
      colstore::ColumnarReader::from_buffer(pack_to_buffer(trace, 8));
  for (const ScanMode mode : {ScanMode::Decoded, ScanMode::Compressed}) {
    ScanStats stats;
    EXPECT_EQ(reader.scan({}, ScanOptions{.mode = mode}, &stats).num_rows(),
              0u);
    EXPECT_EQ(stats.rows_emitted, 0u);
  }
}

TEST(CompressedScanEdgeTest, SingleRowChunksEveryRunIsOneRow) {
  const tracefile::Trace trace = bursty_trace(99);
  if (trace.records.empty()) GTEST_SKIP();
  const colstore::ColumnarReader reader =
      colstore::ColumnarReader::from_buffer(pack_to_buffer(trace, 1));
  ScanStats stats;
  const dataflow::Table compressed = reader.scan(
      {}, ScanOptions{.mode = ScanMode::Compressed}, &stats);
  const dataflow::Table decoded =
      reader.scan({}, ScanOptions{.mode = ScanMode::Decoded}, nullptr);
  EXPECT_EQ(compressed.collect_rows(), decoded.collect_rows());
  // One row per chunk ⇒ one run per chunk, all accepted.
  EXPECT_EQ(stats.runs_considered, trace.records.size());
  EXPECT_EQ(stats.runs_accepted, trace.records.size());
}

}  // namespace
}  // namespace ivt
