#include "simnet/simulator.hpp"

#include <gtest/gtest.h>

namespace ivt::simnet {
namespace {

constexpr std::int64_t kMs = 1'000'000;

struct Fixture {
  signaldb::MessageSpec wiper;
  signaldb::MessageSpec lights;

  Fixture() {
    wiper.name = "Wiper";
    wiper.message_id = 3;
    wiper.bus = "FC";
    wiper.payload_size = 2;
    signaldb::SignalSpec wpos;
    wpos.name = "wpos";
    wpos.length = 16;
    wiper.signals = {wpos};

    lights.name = "Lights";
    lights.message_id = 5;
    lights.bus = "KC";
    lights.payload_size = 1;
    signaldb::SignalSpec head;
    head.name = "head";
    head.length = 2;
    lights.signals = {head};
  }

  NetworkSimulator build() {
    NetworkSimulator sim;
    Ecu e1("E1");
    TxMessage tx1;
    tx1.message = &wiper;
    tx1.period_ns = 10 * kMs;
    tx1.bindings.push_back({&wiper.signals[0], make_constant(100.0), false});
    e1.add_tx_message(std::move(tx1));
    sim.add_ecu(std::move(e1));

    Ecu e2("E2");
    TxMessage tx2;
    tx2.message = &lights;
    tx2.period_ns = 25 * kMs;
    tx2.bindings.push_back({&lights.signals[0], make_constant(1.0), false});
    e2.add_tx_message(std::move(tx2));
    sim.add_ecu(std::move(e2));
    return sim;
  }
};

TEST(SimulatorTest, TraceIsTimeOrdered) {
  Fixture fx;
  NetworkSimulator sim = fx.build();
  SimulationConfig config;
  config.duration_ns = 500 * kMs;
  const tracefile::Trace trace = sim.run(config, "V1", "J1");
  EXPECT_TRUE(trace.is_time_ordered());
  EXPECT_EQ(trace.vehicle, "V1");
  EXPECT_EQ(trace.journey, "J1");
}

TEST(SimulatorTest, BothEcusContribute) {
  Fixture fx;
  NetworkSimulator sim = fx.build();
  SimulationConfig config;
  config.duration_ns = 500 * kMs;
  const tracefile::Trace trace = sim.run(config, "V1", "J1");
  std::size_t wiper_count = 0;
  std::size_t light_count = 0;
  for (const auto& rec : trace.records) {
    if (rec.message_id == 3) ++wiper_count;
    if (rec.message_id == 5) ++light_count;
  }
  EXPECT_NEAR(static_cast<double>(wiper_count), 50.0, 3.0);
  EXPECT_NEAR(static_cast<double>(light_count), 20.0, 3.0);
}

TEST(SimulatorTest, GatewayDuplicatesRoutedMessages) {
  Fixture fx;
  NetworkSimulator sim = fx.build();
  Gateway gw("GW");
  gw.add_route({"FC", 3, "KC", 150'000});
  sim.add_gateway(std::move(gw));
  SimulationConfig config;
  config.duration_ns = 500 * kMs;
  const tracefile::Trace trace = sim.run(config, "V1", "J1");
  std::size_t on_fc = 0;
  std::size_t on_kc = 0;
  for (const auto& rec : trace.records) {
    if (rec.message_id != 3) continue;
    if (rec.bus == "FC") ++on_fc;
    if (rec.bus == "KC") ++on_kc;
  }
  EXPECT_EQ(on_fc, on_kc);
  EXPECT_GT(on_fc, 0u);
  EXPECT_TRUE(trace.is_time_ordered());
}

TEST(SimulatorTest, SameSeedSameTrace) {
  Fixture fx;
  SimulationConfig config;
  config.duration_ns = 300 * kMs;
  config.seed = 99;
  NetworkSimulator sim1 = fx.build();
  NetworkSimulator sim2 = fx.build();
  const auto t1 = sim1.run(config, "V", "J");
  const auto t2 = sim2.run(config, "V", "J");
  EXPECT_EQ(t1.records, t2.records);
}

TEST(SimulatorTest, DifferentSeedsDifferentTraces) {
  Fixture fx;
  SimulationConfig a;
  a.duration_ns = 300 * kMs;
  a.seed = 1;
  SimulationConfig b = a;
  b.seed = 2;
  NetworkSimulator sim1 = fx.build();
  NetworkSimulator sim2 = fx.build();
  EXPECT_NE(sim1.run(a, "V", "J").records, sim2.run(b, "V", "J").records);
}

}  // namespace
}  // namespace ivt::simnet
