#include "simnet/ecu.hpp"

#include <gtest/gtest.h>

#include "simnet/gateway.hpp"

namespace ivt::simnet {
namespace {

constexpr std::int64_t kMs = 1'000'000;

signaldb::MessageSpec wiper_spec() {
  signaldb::MessageSpec m;
  m.name = "Wiper";
  m.message_id = 3;
  m.bus = "FC";
  m.payload_size = 4;
  signaldb::SignalSpec wpos;
  wpos.name = "wpos";
  wpos.start_bit = 0;
  wpos.length = 16;
  wpos.transform = {0.5, 0.0};
  signaldb::SignalSpec wvel;
  wvel.name = "wvel";
  wvel.start_bit = 16;
  wvel.length = 16;
  m.signals = {wpos, wvel};
  return m;
}

TxMessage make_tx(const signaldb::MessageSpec& spec) {
  TxMessage tx;
  tx.message = &spec;
  tx.period_ns = 10 * kMs;
  tx.bindings.push_back({&spec.signals[0], make_constant(45.0), false});
  tx.bindings.push_back({&spec.signals[1], make_constant(1.0), false});
  return tx;
}

TEST(EcuTest, EncodeMessageInstanceEncodesAllSignals) {
  const signaldb::MessageSpec spec = wiper_spec();
  TxMessage tx = make_tx(spec);
  std::mt19937_64 rng(1);
  const auto payload = encode_message_instance(tx, 0, rng);
  ASSERT_EQ(payload.size(), 4u);
  EXPECT_DOUBLE_EQ(signaldb::decode_signal(payload, spec.signals[0]).physical,
                   45.0);
  EXPECT_DOUBLE_EQ(signaldb::decode_signal(payload, spec.signals[1]).physical,
                   1.0);
}

TEST(EcuTest, CyclicGenerationCountMatchesPeriod) {
  const signaldb::MessageSpec spec = wiper_spec();
  Ecu ecu("E1");
  ecu.add_tx_message(make_tx(spec));
  std::vector<tracefile::TraceRecord> records;
  ecu.generate(0, 1000 * kMs, FaultConfig{}, 42,
               [&](tracefile::TraceRecord rec) {
                 records.push_back(std::move(rec));
               });
  // 1 s at 10 ms: ~100 sends (random phase -> 99..101).
  EXPECT_GE(records.size(), 98u);
  EXPECT_LE(records.size(), 102u);
  for (const auto& rec : records) {
    EXPECT_EQ(rec.bus, "FC");
    EXPECT_EQ(rec.message_id, 3);
  }
}

TEST(EcuTest, GenerationIsDeterministic) {
  const signaldb::MessageSpec spec = wiper_spec();
  auto run = [&spec]() {
    Ecu ecu("E1");
    ecu.add_tx_message(make_tx(spec));
    std::vector<tracefile::TraceRecord> records;
    ecu.generate(0, 500 * kMs, FaultConfig{}, 7,
                 [&](tracefile::TraceRecord rec) {
                   records.push_back(std::move(rec));
                 });
    return records;
  };
  EXPECT_EQ(run(), run());
}

TEST(EcuTest, DropoutsReduceRecordCount) {
  const signaldb::MessageSpec spec = wiper_spec();
  FaultConfig faults;
  faults.dropout_rate = 0.5;
  Ecu ecu("E1");
  ecu.add_tx_message(make_tx(spec));
  std::vector<tracefile::TraceRecord> records;
  ecu.generate(0, 1000 * kMs, faults, 42, [&](tracefile::TraceRecord rec) {
    records.push_back(std::move(rec));
  });
  EXPECT_LT(records.size(), 80u);
  EXPECT_GT(records.size(), 20u);
}

TEST(EcuTest, CycleViolationsStretchGaps) {
  const signaldb::MessageSpec spec = wiper_spec();
  FaultConfig faults;
  faults.cycle_violation_rate = 0.2;
  faults.violation_factor = 5.0;
  Ecu ecu("E1");
  ecu.add_tx_message(make_tx(spec));
  std::vector<tracefile::TraceRecord> records;
  ecu.generate(0, 2000 * kMs, faults, 42, [&](tracefile::TraceRecord rec) {
    records.push_back(std::move(rec));
  });
  std::size_t violations = 0;
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (records[i].t_ns - records[i - 1].t_ns > 30 * kMs) ++violations;
  }
  EXPECT_GT(violations, 5u);
}

TEST(EcuTest, ErrorFramesFlagged) {
  const signaldb::MessageSpec spec = wiper_spec();
  FaultConfig faults;
  faults.error_frame_rate = 0.3;
  Ecu ecu("E1");
  ecu.add_tx_message(make_tx(spec));
  std::size_t errors = 0;
  std::size_t total = 0;
  ecu.generate(0, 2000 * kMs, faults, 42, [&](tracefile::TraceRecord rec) {
    ++total;
    if ((rec.flags & tracefile::TraceRecord::kFlagErrorFrame) != 0) ++errors;
  });
  EXPECT_GT(errors, total / 6);
  EXPECT_LT(errors, total / 2);
}

TEST(EcuTest, EventDrivenUsesMeanGap) {
  const signaldb::MessageSpec spec = wiper_spec();
  TxMessage tx = make_tx(spec);
  tx.period_ns = 0;
  tx.event_mean_gap_ns = 20 * kMs;
  Ecu ecu("E1");
  ecu.add_tx_message(std::move(tx));
  std::size_t count = 0;
  ecu.generate(0, 4000 * kMs, FaultConfig{}, 3,
               [&](tracefile::TraceRecord) { ++count; });
  // Expect roughly 200 events; allow wide tolerance.
  EXPECT_GT(count, 120u);
  EXPECT_LT(count, 320u);
}

TEST(EcuTest, ConditionalSignalSometimesAbsent) {
  signaldb::MessageSpec spec = wiper_spec();
  spec.payload_size = 5;
  spec.signals[1].start_bit = 24;
  spec.signals[1].presence.always = false;
  spec.signals[1].presence.selector_start_bit = 16;
  spec.signals[1].presence.selector_length = 8;
  spec.signals[1].presence.equals = 1;

  TxMessage tx;
  tx.message = &spec;
  tx.period_ns = 10 * kMs;
  tx.bindings.push_back({&spec.signals[0], make_constant(45.0), false});
  tx.bindings.push_back({&spec.signals[1], make_constant(7.0), false});
  Ecu ecu("E1");
  ecu.add_tx_message(std::move(tx));
  std::size_t present = 0;
  std::size_t absent = 0;
  ecu.generate(0, 3000 * kMs, FaultConfig{}, 5,
               [&](tracefile::TraceRecord rec) {
                 if (signaldb::decode_signal(rec.payload, spec.signals[1])
                         .present) {
                   ++present;
                 } else {
                   ++absent;
                 }
               });
  EXPECT_GT(present, 0u);
  EXPECT_GT(absent, 0u);
  EXPECT_GT(present, absent);  // 75% presence by design
}

TEST(GatewayTest, ForwardsMatchingRecordsWithLatency) {
  Gateway gw("GW");
  gw.add_route({"FC", 3, "KC", 200});
  std::vector<tracefile::TraceRecord> records(2);
  records[0].bus = "FC";
  records[0].message_id = 3;
  records[0].t_ns = 1000;
  records[1].bus = "FC";
  records[1].message_id = 4;  // not routed
  const auto forwarded = gw.apply(records);
  ASSERT_EQ(forwarded.size(), 1u);
  EXPECT_EQ(forwarded[0].bus, "KC");
  EXPECT_EQ(forwarded[0].t_ns, 1200);
  EXPECT_EQ(forwarded[0].message_id, 3);
}

TEST(GatewayTest, PayloadIsIdenticalCopy) {
  Gateway gw("GW");
  gw.add_route({"FC", 3, "KC", 0});
  std::vector<tracefile::TraceRecord> records(1);
  records[0].bus = "FC";
  records[0].message_id = 3;
  records[0].payload = {1, 2, 3};
  const auto forwarded = gw.apply(records);
  ASSERT_EQ(forwarded.size(), 1u);
  EXPECT_EQ(forwarded[0].payload, records[0].payload);
}

}  // namespace
}  // namespace ivt::simnet
