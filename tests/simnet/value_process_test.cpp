#include "simnet/value_process.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace ivt::simnet {
namespace {

constexpr std::int64_t kSecond = 1'000'000'000;

std::vector<double> sample(ValueProcess& p, std::size_t n,
                           std::int64_t step_ns = 10'000'000) {
  std::vector<double> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(p.next(static_cast<std::int64_t>(i) * step_ns));
  }
  return out;
}

TEST(ValueProcessTest, ConstantStaysPut) {
  auto p = make_constant(7.5);
  for (double v : sample(*p, 10)) EXPECT_DOUBLE_EQ(v, 7.5);
}

TEST(ValueProcessTest, SineStaysInRangeAndOscillates) {
  auto p = make_sine(2.0, 10.0, kSecond);
  const auto xs = sample(*p, 200);
  const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  EXPECT_GE(*lo, 8.0 - 1e-9);
  EXPECT_LE(*hi, 12.0 + 1e-9);
  EXPECT_LT(*lo, 9.0);  // actually reaches low part
  EXPECT_GT(*hi, 11.0);
}

TEST(ValueProcessTest, SineIsPeriodic) {
  auto p = make_sine(1.0, 0.0, kSecond);
  const double a = p->next(123'000'000);
  const double b = p->next(123'000'000 + kSecond);
  EXPECT_NEAR(a, b, 1e-9);
}

TEST(ValueProcessTest, RampWrapsAround) {
  auto p = make_ramp(0.0, 100.0, kSecond);
  EXPECT_NEAR(p->next(0), 0.0, 1e-9);
  EXPECT_NEAR(p->next(kSecond / 2), 50.0, 1e-9);
  EXPECT_NEAR(p->next(kSecond), 0.0, 1e-9);  // wrapped
}

TEST(ValueProcessTest, RandomWalkBoundedAndDeterministic) {
  auto p1 = make_random_walk(50.0, 1.0, 0.0, 100.0, 7);
  auto p2 = make_random_walk(50.0, 1.0, 0.0, 100.0, 7);
  const auto a = sample(*p1, 500);
  const auto b = sample(*p2, 500);
  EXPECT_EQ(a, b);  // same seed, same walk
  for (double v : a) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST(ValueProcessTest, RandomWalkSeedsDiffer) {
  auto p1 = make_random_walk(50.0, 1.0, 0.0, 100.0, 7);
  auto p2 = make_random_walk(50.0, 1.0, 0.0, 100.0, 8);
  EXPECT_NE(sample(*p1, 100), sample(*p2, 100));
}

TEST(ValueProcessTest, StepLevelsOnlyEmitsLevels) {
  auto p = make_step_levels({0.0, 1.0, 2.0, 3.0}, kSecond / 10, true, 11);
  for (double v : sample(*p, 300)) {
    EXPECT_TRUE(v == 0.0 || v == 1.0 || v == 2.0 || v == 3.0) << v;
  }
}

TEST(ValueProcessTest, StepLevelsNeighbourJumpsAreAdjacent) {
  // Dwell time much larger than the sampling interval, so at most one
  // jump happens between samples (multiple jumps within one gap are legal
  // for coarser sampling).
  auto p = make_step_levels({0.0, 1.0, 2.0, 3.0}, 2 * kSecond, true, 13);
  const auto xs = sample(*p, 500);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    EXPECT_LE(std::fabs(xs[i] - xs[i - 1]), 1.0 + 1e-9);
  }
}

TEST(ValueProcessTest, StepLevelsEventuallyMoves) {
  auto p = make_step_levels({0.0, 1.0, 2.0}, kSecond / 50, false, 17);
  const auto xs = sample(*p, 400);
  std::set<double> distinct(xs.begin(), xs.end());
  EXPECT_GE(distinct.size(), 2u);
}

TEST(ValueProcessTest, DutyCycleBinaryAndToggles) {
  auto p = make_duty_cycle(kSecond / 10, kSecond / 10, 3);
  const auto xs = sample(*p, 500);
  bool saw_on = false;
  bool saw_off = false;
  for (double v : xs) {
    EXPECT_TRUE(v == 0.0 || v == 1.0);
    saw_on |= v == 1.0;
    saw_off |= v == 0.0;
  }
  EXPECT_TRUE(saw_on);
  EXPECT_TRUE(saw_off);
}

TEST(ValueProcessTest, MarkovChainStaysInStateSpace) {
  auto p = make_markov_chain(5, 0.2, 23);
  for (double v : sample(*p, 300)) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 4.0);
    EXPECT_DOUBLE_EQ(v, std::round(v));
  }
}

TEST(ValueProcessTest, MarkovZeroSwitchNeverMoves) {
  auto p = make_markov_chain(5, 0.0, 23);
  const auto xs = sample(*p, 100);
  for (double v : xs) EXPECT_DOUBLE_EQ(v, xs[0]);
}

TEST(ValueProcessTest, OutlierInjectorRateZeroIsTransparent) {
  auto base1 = make_sine(1.0, 0.0, kSecond);
  auto wrapped = make_outlier_injector(make_sine(1.0, 0.0, kSecond), 0.0,
                                       10.0, 100.0, 1);
  EXPECT_EQ(sample(*base1, 50), sample(*wrapped, 50));
}

TEST(ValueProcessTest, OutlierInjectorProducesSpikes) {
  auto wrapped = make_outlier_injector(make_constant(1.0), 0.05, 10.0, 100.0,
                                       99);
  const auto xs = sample(*wrapped, 2000);
  const std::size_t spikes = static_cast<std::size_t>(
      std::count(xs.begin(), xs.end(), 110.0));
  EXPECT_GT(spikes, 50u);
  EXPECT_LT(spikes, 200u);
}

TEST(ValueProcessTest, QuantizerSnapsToStep) {
  auto q = make_quantizer(make_constant(3.3), 0.5);
  EXPECT_DOUBLE_EQ(q->next(0), 3.5);
  auto q2 = make_quantizer(make_constant(3.2), 0.5);
  EXPECT_DOUBLE_EQ(q2->next(0), 3.0);
}

}  // namespace
}  // namespace ivt::simnet
