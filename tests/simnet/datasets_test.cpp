#include "simnet/datasets.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ivt::simnet {
namespace {

TEST(DatasetSpecTest, PaperTable5SignalTypeCounts) {
  EXPECT_EQ(syn_spec().total_signals(), 13u);
  EXPECT_EQ(syn_spec().alpha, 6u);
  EXPECT_EQ(syn_spec().beta_numeric + syn_spec().beta_string, 4u);

  EXPECT_EQ(lig_spec().total_signals(), 180u);
  EXPECT_EQ(lig_spec().alpha, 27u);
  EXPECT_EQ(lig_spec().beta_numeric + lig_spec().beta_string, 71u);
  EXPECT_EQ(lig_spec().gamma_binary + lig_spec().gamma_nominal, 82u);

  EXPECT_EQ(sta_spec().total_signals(), 78u);
  EXPECT_EQ(sta_spec().alpha, 6u);
  EXPECT_EQ(sta_spec().beta_numeric + sta_spec().beta_string, 1u);
  EXPECT_EQ(sta_spec().gamma_binary + sta_spec().gamma_nominal, 71u);
}

TEST(PlanVehicleTest, CatalogMatchesSpec) {
  const VehiclePlan plan = plan_vehicle(syn_spec(), 42);
  EXPECT_EQ(plan.catalog.num_signals(), 13u);
  EXPECT_EQ(plan.messages.size(), plan.catalog.num_messages());
  // Mean signals per message ~ 1.47 -> 13/1.47 ≈ 9 messages.
  EXPECT_NEAR(static_cast<double>(plan.catalog.num_messages()), 9.0, 1.0);
}

TEST(PlanVehicleTest, Deterministic) {
  const VehiclePlan a = plan_vehicle(syn_spec(), 42);
  const VehiclePlan b = plan_vehicle(syn_spec(), 42);
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < a.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].period_ns, b.messages[i].period_ns);
    EXPECT_EQ(a.messages[i].seed, b.messages[i].seed);
  }
  EXPECT_EQ(to_text(a.catalog), to_text(b.catalog));
}

TEST(PlanVehicleTest, ExpectedExamplesNearTarget) {
  for (const DatasetSpec& spec : {syn_spec(), lig_spec(), sta_spec()}) {
    const VehiclePlan plan = plan_vehicle(spec, 42);
    double expected = 0.0;
    for (const MessagePlan& mp : plan.messages) {
      const auto& m = plan.catalog.messages()[mp.message_index];
      double per_instance = 0.0;
      for (const auto& s : m.signals) {
        per_instance += s.presence.always ? 1.0 : 0.75;
      }
      expected += static_cast<double>(spec.full_duration_ns) /
                  static_cast<double>(mp.period_ns) * per_instance;
    }
    EXPECT_NEAR(expected / static_cast<double>(spec.target_examples), 1.0,
                0.15)
        << spec.name;
  }
}

TEST(PlanVehicleTest, CycleTimesDocumented) {
  const VehiclePlan plan = plan_vehicle(syn_spec(), 42);
  for (const auto& m : plan.catalog.messages()) {
    for (const auto& s : m.signals) {
      EXPECT_GT(s.expected_cycle_ns, 0);
    }
  }
}

TEST(PlanVehicleTest, RateThresholdSeparatesAlphaFromSlow) {
  const VehiclePlan plan = plan_vehicle(lig_spec(), 42);
  EXPECT_GT(plan.recommended_rate_threshold_hz, 0.0);
  for (const MessagePlan& mp : plan.messages) {
    const double hz = 1e9 / static_cast<double>(mp.period_ns);
    const bool has_alpha =
        std::find(mp.signal_kinds.begin(), mp.signal_kinds.end(),
                  SignalKind::AlphaNumeric) != mp.signal_kinds.end();
    if (has_alpha) {
      EXPECT_GT(hz, plan.recommended_rate_threshold_hz);
    }
  }
}

TEST(PlanVehicleTest, GatewayRoutesExist) {
  const VehiclePlan plan = plan_vehicle(lig_spec(), 42);
  EXPECT_FALSE(plan.gateway_routes.empty());
}

TEST(MakeDatasetTest, SmallScaleSynHasPlausibleShape) {
  DatasetConfig config;
  config.scale = 2e-4;  // ~14 s of driving
  const Dataset ds = make_syn_dataset(config);
  EXPECT_EQ(ds.name, "SYN");
  EXPECT_EQ(ds.signal_names.size(), 13u);
  EXPECT_GT(ds.trace.size(), 500u);
  EXPECT_TRUE(ds.trace.is_time_ordered());
  // Multiple buses present.
  std::set<std::string> buses;
  for (const auto& rec : ds.trace.records) buses.insert(rec.bus);
  EXPECT_GE(buses.size(), 2u);
}

TEST(MakeDatasetTest, ScaleScalesRecordCount) {
  DatasetConfig small;
  small.scale = 1e-4;
  DatasetConfig big;
  big.scale = 2e-4;
  const Dataset a = make_dataset(syn_spec(), small);
  const Dataset b = make_dataset(syn_spec(), big);
  EXPECT_NEAR(static_cast<double>(b.trace.size()) /
                  static_cast<double>(a.trace.size()),
              2.0, 0.3);
}

TEST(MakeFleetTest, JourneysAreIndependentButSameCatalog) {
  DatasetConfig config;
  config.scale = 5e-5;
  const Fleet fleet = make_fleet(3, syn_spec(), config);
  ASSERT_EQ(fleet.journeys.size(), 3u);
  EXPECT_NE(fleet.journeys[0].records, fleet.journeys[1].records);
  EXPECT_EQ(fleet.journeys[0].journey, "J1");
  EXPECT_EQ(fleet.journeys[2].journey, "J3");
  for (const auto& journey : fleet.journeys) {
    EXPECT_GT(journey.size(), 100u);
  }
}

}  // namespace
}  // namespace ivt::simnet
