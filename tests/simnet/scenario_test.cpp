#include "simnet/scenario.hpp"

#include <gtest/gtest.h>

#include "../core/test_fixtures.hpp"

namespace ivt::simnet {
namespace {

using ivt::core::testing::kMs;
using ivt::core::testing::wiper_catalog;

TEST(ScenarioTest, EmitsOnlyScriptedMessages) {
  const auto catalog = wiper_catalog();
  ScenarioBuilder scenario(catalog);
  scenario.set(0, "wpos", 45.0);
  const auto trace = scenario.build(0, 1000 * kMs);
  EXPECT_FALSE(trace.empty());
  for (const auto& rec : trace.records) {
    EXPECT_EQ(rec.message_id, 3);  // only the wiper message
  }
}

TEST(ScenarioTest, PeriodDefaultsToDocumentedCycle) {
  const auto catalog = wiper_catalog();  // wiper cycle 500 ms
  ScenarioBuilder scenario(catalog);
  scenario.set(0, "wpos", 45.0);
  const auto trace = scenario.build(0, 2000 * kMs);
  EXPECT_EQ(trace.size(), 4u);  // t = 0, 500, 1000, 1500 ms
}

TEST(ScenarioTest, PeriodOverride) {
  const auto catalog = wiper_catalog();
  ScenarioBuilder scenario(catalog);
  scenario.set(0, "wpos", 45.0).message_period("Wiper", 100 * kMs);
  EXPECT_EQ(scenario.build(0, 1000 * kMs).size(), 10u);
}

TEST(ScenarioTest, TimelineValuesApplyFromTheirTime) {
  const auto catalog = wiper_catalog();
  const auto* spec = catalog.find_signal("wpos").signal;
  ScenarioBuilder scenario(catalog);
  scenario.set(0, "wpos", 10.0).set(1000 * kMs, "wpos", 99.0);
  const auto trace = scenario.build(0, 2000 * kMs);
  for (const auto& rec : trace.records) {
    const double expected = rec.t_ns < 1000 * kMs ? 10.0 : 99.0;
    EXPECT_DOUBLE_EQ(signaldb::decode_signal(rec.payload, *spec).physical,
                     expected)
        << "t=" << rec.t_ns;
  }
}

TEST(ScenarioTest, LabelsEncodeTableRaw) {
  const auto catalog = wiper_catalog();
  const auto* spec = catalog.find_signal("heat").signal;
  ScenarioBuilder scenario(catalog);
  scenario.set_label(0, "heat", "medium");
  const auto trace = scenario.build(0, 1000 * kMs);
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(signaldb::decode_signal(trace.records[0].payload, *spec).label,
            "medium");
}

TEST(ScenarioTest, UnscriptedSignalsGetDefaults) {
  const auto catalog = wiper_catalog();
  const auto* wvel = catalog.find_signal("wvel").signal;
  ScenarioBuilder scenario(catalog);
  scenario.set(0, "wpos", 45.0);  // wvel unscripted
  const auto trace = scenario.build(0, 1000 * kMs);
  EXPECT_DOUBLE_EQ(
      signaldb::decode_signal(trace.records[0].payload, *wvel).physical, 0.0);
}

TEST(ScenarioTest, BlackoutSuppressesEmission) {
  const auto catalog = wiper_catalog();
  ScenarioBuilder scenario(catalog);
  scenario.set(0, "wpos", 45.0)
      .message_period("Wiper", 100 * kMs)
      .blackout("Wiper", 300 * kMs, 600 * kMs);
  const auto trace = scenario.build(0, 1000 * kMs);
  EXPECT_EQ(trace.size(), 7u);  // 10 - 3 suppressed (300, 400, 500)
  for (const auto& rec : trace.records) {
    EXPECT_TRUE(rec.t_ns < 300 * kMs || rec.t_ns >= 600 * kMs);
  }
}

TEST(ScenarioTest, MultipleMessagesInterleaveTimeOrdered) {
  const auto catalog = wiper_catalog();
  ScenarioBuilder scenario(catalog);
  scenario.set(0, "wpos", 1.0).set_label(0, "belt", "ON");
  const auto trace = scenario.build(0, 2000 * kMs);
  EXPECT_TRUE(trace.is_time_ordered());
  bool saw_wiper = false;
  bool saw_belt = false;
  for (const auto& rec : trace.records) {
    saw_wiper |= rec.message_id == 3;
    saw_belt |= rec.message_id == 20;
  }
  EXPECT_TRUE(saw_wiper);
  EXPECT_TRUE(saw_belt);
}

TEST(ScenarioTest, UnknownSignalThrows) {
  const auto catalog = wiper_catalog();
  ScenarioBuilder scenario(catalog);
  EXPECT_THROW(scenario.set(0, "nope", 1.0), std::invalid_argument);
  EXPECT_THROW(scenario.set_label(0, "heat", "nope"), std::invalid_argument);
  EXPECT_THROW(scenario.message_period("nope", 1), std::invalid_argument);
  EXPECT_THROW(scenario.blackout("nope", 0, 1), std::invalid_argument);
}

TEST(ScenarioTest, DeterministicOutput) {
  const auto catalog = wiper_catalog();
  auto build = [&catalog]() {
    ScenarioBuilder scenario(catalog);
    scenario.set(0, "wpos", 45.0).set(700 * kMs, "wpos", 60.0);
    return scenario.build(0, 3000 * kMs);
  };
  EXPECT_EQ(build().records, build().records);
}

}  // namespace
}  // namespace ivt::simnet
