#include <gtest/gtest.h>

#include "signaldb/catalog.hpp"

namespace ivt::signaldb {
namespace {

Catalog sample_catalog() {
  Catalog c;
  MessageSpec m;
  m.name = "Wiper Status";  // space forces quoting
  m.message_id = 3;
  m.bus = "FC";
  m.payload_size = 8;

  SignalSpec wpos;
  wpos.name = "wpos";
  wpos.start_bit = 0;
  wpos.length = 16;
  wpos.transform = {0.5, -10.0};
  wpos.unit = "deg";
  wpos.min_value = 0.0;
  wpos.max_value = 360.0;
  wpos.expected_cycle_ns = 100'000'000;
  wpos.comment = "wiper position \"raw\"";

  SignalSpec wstat;
  wstat.name = "wstat";
  wstat.start_bit = 24;
  wstat.length = 4;
  wstat.byte_order = protocol::ByteOrder::Motorola;
  wstat.start_bit = 31;
  wstat.value_kind = ValueKind::Unsigned;
  wstat.ordered_values = true;
  wstat.affiliation = Affiliation::Validity;
  wstat.value_table = {{0, "off", false},
                       {1, "slow wipe", false},
                       {14, "not valid", true}};
  wstat.presence.always = false;
  wstat.presence.selector_start_bit = 8;
  wstat.presence.selector_length = 8;
  wstat.presence.equals = 2;

  m.signals = {wpos, wstat};
  c.add_message(std::move(m));
  return c;
}

void expect_catalogs_equal(const Catalog& a, const Catalog& b) {
  ASSERT_EQ(a.num_messages(), b.num_messages());
  for (std::size_t i = 0; i < a.messages().size(); ++i) {
    const MessageSpec& ma = a.messages()[i];
    const MessageSpec& mb = b.messages()[i];
    EXPECT_EQ(ma.name, mb.name);
    EXPECT_EQ(ma.bus, mb.bus);
    EXPECT_EQ(ma.message_id, mb.message_id);
    EXPECT_EQ(ma.protocol, mb.protocol);
    EXPECT_EQ(ma.payload_size, mb.payload_size);
    ASSERT_EQ(ma.signals.size(), mb.signals.size());
    for (std::size_t j = 0; j < ma.signals.size(); ++j) {
      const SignalSpec& sa = ma.signals[j];
      const SignalSpec& sb = mb.signals[j];
      EXPECT_EQ(sa.name, sb.name);
      EXPECT_EQ(sa.start_bit, sb.start_bit);
      EXPECT_EQ(sa.length, sb.length);
      EXPECT_EQ(sa.byte_order, sb.byte_order);
      EXPECT_EQ(sa.value_kind, sb.value_kind);
      EXPECT_EQ(sa.transform, sb.transform);
      EXPECT_EQ(sa.value_table, sb.value_table);
      EXPECT_EQ(sa.affiliation, sb.affiliation);
      EXPECT_EQ(sa.unit, sb.unit);
      EXPECT_EQ(sa.min_value, sb.min_value);
      EXPECT_EQ(sa.max_value, sb.max_value);
      EXPECT_EQ(sa.presence, sb.presence);
      EXPECT_EQ(sa.expected_cycle_ns, sb.expected_cycle_ns);
      EXPECT_EQ(sa.ordered_values, sb.ordered_values);
      EXPECT_EQ(sa.comment, sb.comment);
    }
  }
}

TEST(CatalogIoTest, TextRoundTrip) {
  const Catalog original = sample_catalog();
  const Catalog back = catalog_from_text(to_text(original));
  expect_catalogs_equal(original, back);
}

TEST(CatalogIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/catalog_io_test.ivsdb";
  const Catalog original = sample_catalog();
  save_catalog(original, path);
  expect_catalogs_equal(original, load_catalog(path));
}

TEST(CatalogIoTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "\n"
      "message M bus=FC id=1 protocol=CAN size=8\n"
      "  signal s start=0 len=8  # trailing comment\n"
      "end\n";
  const Catalog c = catalog_from_text(text);
  EXPECT_EQ(c.num_messages(), 1u);
  EXPECT_EQ(c.num_signals(), 1u);
}

TEST(CatalogIoTest, ValidityMarkerParsed) {
  const std::string text =
      "message M bus=FC id=1 protocol=CAN size=8\n"
      "  signal s start=0 len=8\n"
      "    value 0 ok\n"
      "    value 1 bad V\n"
      "end\n";
  const Catalog c = catalog_from_text(text);
  const SignalSpec& s = c.messages()[0].signals[0];
  ASSERT_EQ(s.value_table.size(), 2u);
  EXPECT_FALSE(s.value_table[0].validity);
  EXPECT_TRUE(s.value_table[1].validity);
}

TEST(CatalogIoTest, UnknownDirectiveRejected) {
  EXPECT_THROW(catalog_from_text("bogus thing\n"), std::runtime_error);
}

TEST(CatalogIoTest, SignalOutsideMessageRejected) {
  EXPECT_THROW(catalog_from_text("signal s start=0 len=8\n"),
               std::runtime_error);
}

TEST(CatalogIoTest, ValueOutsideSignalRejected) {
  EXPECT_THROW(
      catalog_from_text("message M bus=FC id=1 protocol=CAN size=8\n"
                        "  value 0 x\n"),
      std::runtime_error);
}

TEST(CatalogIoTest, BadNumberRejected) {
  EXPECT_THROW(
      catalog_from_text("message M bus=FC id=abc protocol=CAN size=8\n"),
      std::runtime_error);
}

TEST(CatalogIoTest, UnterminatedQuoteRejected) {
  EXPECT_THROW(catalog_from_text("message \"M bus=FC id=1\n"),
               std::runtime_error);
}

TEST(CatalogIoTest, UnknownProtocolRejected) {
  EXPECT_THROW(
      catalog_from_text("message M bus=FC id=1 protocol=XXX size=8\n"),
      std::runtime_error);
}

TEST(CatalogIoTest, MissingEndStillFinishesMessage) {
  const Catalog c = catalog_from_text(
      "message M bus=FC id=1 protocol=CAN size=8\n"
      "  signal s start=0 len=8\n");
  EXPECT_EQ(c.num_messages(), 1u);
}

TEST(CatalogIoTest, HexIdsAccepted) {
  const Catalog c = catalog_from_text(
      "message M bus=FC id=0x123 protocol=CAN size=8\n");
  EXPECT_EQ(c.messages()[0].message_id, 0x123);
}

}  // namespace
}  // namespace ivt::signaldb
