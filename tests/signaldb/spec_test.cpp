#include "signaldb/spec.hpp"

#include <gtest/gtest.h>

namespace ivt::signaldb {
namespace {

SignalSpec numeric_spec() {
  SignalSpec s;
  s.name = "wpos";
  s.start_bit = 0;
  s.length = 16;
  s.byte_order = protocol::ByteOrder::Intel;
  s.value_kind = ValueKind::Unsigned;
  s.transform = {0.5, 0.0};
  return s;
}

SignalSpec categorical_spec() {
  SignalSpec s;
  s.name = "heat";
  s.start_bit = 0;
  s.length = 4;
  s.value_table = {{0, "off", false},
                   {1, "low", false},
                   {2, "high", false},
                   {15, "snv", true}};
  return s;
}

TEST(SpecTest, LinearTransformApplyInvert) {
  const LinearTransform t{0.25, -10.0};
  EXPECT_DOUBLE_EQ(t.apply(100.0), 15.0);
  EXPECT_DOUBLE_EQ(t.invert(t.apply(64.0)), 64.0);
}

TEST(SpecTest, DecodeUnsignedWithScale) {
  // Paper Fig. 2: l' = x5A x01 -> raw 0x015A = 346; v = 0.5 * 346 = 173.
  std::vector<std::uint8_t> payload{0x5A, 0x01, 0x00, 0x00};
  const DecodedValue v = decode_signal(payload, numeric_spec());
  ASSERT_TRUE(v.present);
  EXPECT_DOUBLE_EQ(v.physical, 173.0);
  EXPECT_FALSE(v.label.has_value());
}

TEST(SpecTest, DecodeSigned) {
  SignalSpec s = numeric_spec();
  s.value_kind = ValueKind::Signed;
  s.transform = {1.0, 0.0};
  std::vector<std::uint8_t> payload{0xFF, 0xFF};  // -1 as int16
  const DecodedValue v = decode_signal(payload, s);
  ASSERT_TRUE(v.present);
  EXPECT_DOUBLE_EQ(v.physical, -1.0);
}

TEST(SpecTest, DecodeFloat32) {
  SignalSpec s;
  s.name = "f";
  s.start_bit = 0;
  s.length = 32;
  s.value_kind = ValueKind::Float32;
  std::vector<std::uint8_t> payload(4, 0);
  const std::uint32_t raw = protocol::float32_to_raw(2.5f);
  protocol::insert_bits(payload, 0, 32, protocol::ByteOrder::Intel, raw);
  const DecodedValue v = decode_signal(payload, s);
  ASSERT_TRUE(v.present);
  EXPECT_DOUBLE_EQ(v.physical, 2.5);
}

TEST(SpecTest, DecodeCategoricalLabel) {
  std::vector<std::uint8_t> payload{0x02};
  const DecodedValue v = decode_signal(payload, categorical_spec());
  ASSERT_TRUE(v.present);
  EXPECT_EQ(v.label, "high");
}

TEST(SpecTest, DecodeUnknownRawGetsRawLabel) {
  std::vector<std::uint8_t> payload{0x07};
  const DecodedValue v = decode_signal(payload, categorical_spec());
  ASSERT_TRUE(v.present);
  EXPECT_EQ(v.label, "raw:7");
}

TEST(SpecTest, FieldDoesNotFitIsAbsent) {
  std::vector<std::uint8_t> payload{0x00};  // 1 byte, need 2
  EXPECT_FALSE(decode_signal(payload, numeric_spec()).present);
}

TEST(SpecTest, PresenceConditionGates) {
  SignalSpec s = numeric_spec();
  s.start_bit = 8;
  s.presence.always = false;
  s.presence.selector_start_bit = 0;
  s.presence.selector_length = 8;
  s.presence.equals = 1;
  std::vector<std::uint8_t> payload{0x01, 0x10, 0x00};
  EXPECT_TRUE(decode_signal(payload, s).present);
  payload[0] = 0x02;
  EXPECT_FALSE(decode_signal(payload, s).present);
}

TEST(SpecTest, EncodeDecodeRoundTrip) {
  const SignalSpec s = numeric_spec();
  std::vector<std::uint8_t> payload(4, 0);
  encode_signal(payload, s, 173.0);
  const DecodedValue v = decode_signal(payload, s);
  ASSERT_TRUE(v.present);
  EXPECT_DOUBLE_EQ(v.physical, 173.0);
}

TEST(SpecTest, EncodeClampsToFieldRange) {
  const SignalSpec s = numeric_spec();  // 16 bit, scale 0.5 -> max 32767.5
  std::vector<std::uint8_t> payload(4, 0);
  encode_signal(payload, s, 1e9);
  const DecodedValue v = decode_signal(payload, s);
  EXPECT_DOUBLE_EQ(v.physical, 0.5 * 65535.0);
}

TEST(SpecTest, EncodeSignedNegative) {
  SignalSpec s = numeric_spec();
  s.value_kind = ValueKind::Signed;
  s.transform = {1.0, 0.0};
  std::vector<std::uint8_t> payload(4, 0);
  encode_signal(payload, s, -42.0);
  EXPECT_DOUBLE_EQ(decode_signal(payload, s).physical, -42.0);
}

TEST(SpecTest, EncodeLabel) {
  const SignalSpec s = categorical_spec();
  std::vector<std::uint8_t> payload(1, 0);
  encode_signal_label(payload, s, "snv");
  EXPECT_EQ(decode_signal(payload, s).label, "snv");
}

TEST(SpecTest, EncodeUnknownLabelThrows) {
  const SignalSpec s = categorical_spec();
  std::vector<std::uint8_t> payload(1, 0);
  EXPECT_THROW(encode_signal_label(payload, s, "bogus"),
               std::invalid_argument);
}

TEST(SpecTest, EncodeZeroScaleThrows) {
  SignalSpec s = numeric_spec();
  s.transform.scale = 0.0;
  std::vector<std::uint8_t> payload(4, 0);
  EXPECT_THROW(encode_signal(payload, s, 1.0), std::invalid_argument);
}

TEST(SpecTest, FindLabelAndRaw) {
  const SignalSpec s = categorical_spec();
  ASSERT_NE(s.find_label(1), nullptr);
  EXPECT_EQ(s.find_label(1)->label, "low");
  EXPECT_EQ(s.find_label(9), nullptr);
  EXPECT_EQ(s.find_raw("high"), 2u);
  EXPECT_FALSE(s.find_raw("none").has_value());
}

TEST(SpecTest, MotorolaDecodeMatchesIntelValue) {
  SignalSpec intel = numeric_spec();
  intel.transform = {1.0, 0.0};
  SignalSpec moto = intel;
  moto.byte_order = protocol::ByteOrder::Motorola;
  moto.start_bit = 7;  // MSB of byte 0

  std::vector<std::uint8_t> p_intel(2, 0);
  std::vector<std::uint8_t> p_moto(2, 0);
  encode_signal(p_intel, intel, 0x1234);
  encode_signal(p_moto, moto, 0x1234);
  EXPECT_DOUBLE_EQ(decode_signal(p_intel, intel).physical, 4660.0);
  EXPECT_DOUBLE_EQ(decode_signal(p_moto, moto).physical, 4660.0);
  // Byte layouts must differ (little vs big endian).
  EXPECT_NE(p_intel, p_moto);
}

TEST(SpecTest, EnumNames) {
  EXPECT_EQ(to_string(ValueKind::Unsigned), "unsigned");
  EXPECT_EQ(parse_value_kind("signed"), ValueKind::Signed);
  EXPECT_FALSE(parse_value_kind("int").has_value());
  EXPECT_EQ(to_string(Affiliation::Functional), "F");
  EXPECT_EQ(to_string(Affiliation::Validity), "V");
}

}  // namespace
}  // namespace ivt::signaldb
