#include "signaldb/catalog.hpp"

#include <gtest/gtest.h>

namespace ivt::signaldb {
namespace {

MessageSpec wiper_message() {
  MessageSpec m;
  m.name = "WiperStatus";
  m.message_id = 3;
  m.bus = "FC";
  m.payload_size = 4;
  SignalSpec wpos;
  wpos.name = "wpos";
  wpos.start_bit = 0;
  wpos.length = 16;
  wpos.transform = {0.5, 0.0};
  SignalSpec wvel;
  wvel.name = "wvel";
  wvel.start_bit = 16;
  wvel.length = 16;
  m.signals = {wpos, wvel};
  return m;
}

MessageSpec heater_message() {
  MessageSpec m;
  m.name = "Heater";
  m.message_id = 11;
  m.bus = "K-LIN";
  m.protocol = protocol::Protocol::Lin;
  SignalSpec heat;
  heat.name = "heat";
  heat.length = 4;
  m.signals = {heat};
  return m;
}

TEST(CatalogTest, AddAndFind) {
  Catalog c;
  c.add_message(wiper_message());
  c.add_message(heater_message());
  EXPECT_EQ(c.num_messages(), 2u);
  EXPECT_EQ(c.num_signals(), 3u);
  ASSERT_NE(c.find_message("FC", 3), nullptr);
  EXPECT_EQ(c.find_message("FC", 3)->name, "WiperStatus");
  EXPECT_EQ(c.find_message("FC", 99), nullptr);
  EXPECT_EQ(c.find_message("XX", 3), nullptr);
}

TEST(CatalogTest, FindByName) {
  Catalog c;
  c.add_message(wiper_message());
  ASSERT_NE(c.find_message_by_name("WiperStatus"), nullptr);
  EXPECT_EQ(c.find_message_by_name("nope"), nullptr);
}

TEST(CatalogTest, FindSignal) {
  Catalog c;
  c.add_message(wiper_message());
  const SignalRef ref = c.find_signal("wvel");
  ASSERT_TRUE(ref.valid());
  EXPECT_EQ(ref.message->name, "WiperStatus");
  EXPECT_EQ(ref.signal->start_bit, 16);
  EXPECT_FALSE(c.find_signal("missing").valid());
}

TEST(CatalogTest, DuplicateBusIdRejected) {
  Catalog c;
  c.add_message(wiper_message());
  MessageSpec dup = wiper_message();
  dup.name = "Other";
  dup.signals.clear();
  EXPECT_THROW(c.add_message(dup), std::invalid_argument);
}

TEST(CatalogTest, DuplicateMessageNameRejected) {
  Catalog c;
  c.add_message(wiper_message());
  MessageSpec dup = wiper_message();
  dup.message_id = 4;
  dup.signals.clear();
  EXPECT_THROW(c.add_message(dup), std::invalid_argument);
}

TEST(CatalogTest, GloballyDuplicateSignalNameRejected) {
  Catalog c;
  c.add_message(wiper_message());
  MessageSpec other = heater_message();
  other.signals[0].name = "wpos";
  EXPECT_THROW(c.add_message(other), std::invalid_argument);
}

TEST(CatalogTest, DuplicateSignalWithinMessageRejected) {
  Catalog c;
  MessageSpec m = wiper_message();
  m.signals[1].name = "wpos";
  EXPECT_THROW(c.add_message(m), std::invalid_argument);
}

TEST(CatalogTest, SignalNamesInOrder) {
  Catalog c;
  c.add_message(wiper_message());
  c.add_message(heater_message());
  EXPECT_EQ(c.signal_names(),
            (std::vector<std::string>{"wpos", "wvel", "heat"}));
}

TEST(CatalogTest, BusNamesDeduplicated) {
  Catalog c;
  c.add_message(wiper_message());
  c.add_message(heater_message());
  MessageSpec third;
  third.name = "Third";
  third.message_id = 7;
  third.bus = "FC";
  c.add_message(third);
  EXPECT_EQ(c.bus_names(), (std::vector<std::string>{"FC", "K-LIN"}));
}

TEST(CatalogTest, MessageFindSignal) {
  const MessageSpec m = wiper_message();
  ASSERT_NE(m.find_signal("wpos"), nullptr);
  EXPECT_EQ(m.find_signal("zz"), nullptr);
}

}  // namespace
}  // namespace ivt::signaldb
