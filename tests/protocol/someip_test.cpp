#include "errors/error.hpp"
#include "protocol/someip.hpp"

#include <gtest/gtest.h>

namespace ivt::protocol {
namespace {

SomeIpMessage sample_message() {
  SomeIpMessage m;
  m.service_id = 0x1234;
  m.method_id = 0x8001;
  m.client_id = 0x0002;
  m.session_id = 0x0100;
  m.message_type = SomeIpMessageType::Notification;
  m.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  return m;
}

TEST(SomeIpTest, MessageIdComposition) {
  EXPECT_EQ(sample_message().message_id(), 0x12348001u);
}

TEST(SomeIpTest, LengthField) {
  EXPECT_EQ(sample_message().length(), 12u);  // 8 + 4 payload bytes
}

TEST(SomeIpTest, SerializeHeaderIsBigEndian) {
  const auto bytes = serialize(sample_message());
  ASSERT_GE(bytes.size(), kSomeIpHeaderSize);
  EXPECT_EQ(bytes[0], 0x12);
  EXPECT_EQ(bytes[1], 0x34);
  EXPECT_EQ(bytes[2], 0x80);
  EXPECT_EQ(bytes[3], 0x01);
  // length = 12 at offset 4..7
  EXPECT_EQ(bytes[7], 12);
}

TEST(SomeIpTest, SerializeRoundTrip) {
  const SomeIpMessage m = sample_message();
  const SomeIpMessage back = deserialize_someip(serialize(m));
  EXPECT_EQ(back.service_id, m.service_id);
  EXPECT_EQ(back.method_id, m.method_id);
  EXPECT_EQ(back.client_id, m.client_id);
  EXPECT_EQ(back.session_id, m.session_id);
  EXPECT_EQ(back.message_type, m.message_type);
  EXPECT_EQ(back.return_code, m.return_code);
  EXPECT_EQ(back.payload, m.payload);
}

TEST(SomeIpTest, EmptyPayloadRoundTrip) {
  SomeIpMessage m = sample_message();
  m.payload.clear();
  const SomeIpMessage back = deserialize_someip(serialize(m));
  EXPECT_TRUE(back.payload.empty());
}

TEST(SomeIpTest, TruncatedHeaderThrows) {
  const std::vector<std::uint8_t> junk(8, 0);
  EXPECT_THROW(deserialize_someip(junk), ivt::errors::Error);
}

TEST(SomeIpTest, InconsistentLengthThrows) {
  auto bytes = serialize(sample_message());
  bytes[7] = 200;  // claims more payload than present
  EXPECT_THROW(deserialize_someip(bytes), ivt::errors::Error);
  bytes[7] = 4;  // less than the minimum 8
  EXPECT_THROW(deserialize_someip(bytes), ivt::errors::Error);
}

TEST(SomeIpTest, MessageTypes) {
  SomeIpMessage m = sample_message();
  m.message_type = SomeIpMessageType::Error;
  m.return_code = SomeIpReturnCode::MalformedMessage;
  const SomeIpMessage back = deserialize_someip(serialize(m));
  EXPECT_EQ(back.message_type, SomeIpMessageType::Error);
  EXPECT_EQ(back.return_code, SomeIpReturnCode::MalformedMessage);
}

TEST(SomeIpTest, DisplayString) {
  const std::string s = to_display_string(sample_message());
  EXPECT_NE(s.find("1234.8001"), std::string::npos);
}

}  // namespace
}  // namespace ivt::protocol
