#include "errors/error.hpp"
#include "protocol/can.hpp"

#include <gtest/gtest.h>

#include "protocol/frame.hpp"

namespace ivt::protocol {
namespace {

CanFrame sample_frame() {
  CanFrame f;
  f.id = 0x123;
  f.data = {0x11, 0x22, 0x33, 0x44};
  return f;
}

TEST(CanTest, ValidityStandardId) {
  CanFrame f = sample_frame();
  EXPECT_TRUE(f.is_valid());
  f.id = 0x800;  // > 11 bits
  EXPECT_FALSE(f.is_valid());
  f.extended_id = true;
  EXPECT_TRUE(f.is_valid());
  f.id = 0x20000000;  // > 29 bits
  EXPECT_FALSE(f.is_valid());
}

TEST(CanTest, ClassicPayloadLimit) {
  CanFrame f = sample_frame();
  f.data.assign(8, 0);
  EXPECT_TRUE(f.is_valid());
  f.data.assign(9, 0);
  EXPECT_FALSE(f.is_valid());
}

TEST(CanTest, FdPayloadSizesMustBeDlcEncodable) {
  CanFrame f = sample_frame();
  f.fd = true;
  f.data.assign(12, 0);
  EXPECT_TRUE(f.is_valid());
  f.data.assign(13, 0);
  EXPECT_FALSE(f.is_valid());
  f.data.assign(64, 0);
  EXPECT_TRUE(f.is_valid());
}

TEST(CanTest, DlcClassic) {
  CanFrame f = sample_frame();
  EXPECT_EQ(f.dlc(), 4u);
}

TEST(CanTest, FdDlcTable) {
  EXPECT_EQ(can_fd_dlc_to_length(8), 8u);
  EXPECT_EQ(can_fd_dlc_to_length(9), 12u);
  EXPECT_EQ(can_fd_dlc_to_length(15), 64u);
  EXPECT_THROW(can_fd_dlc_to_length(16), ivt::errors::Error);
}

TEST(CanTest, FdLengthToDlcRoundsUp) {
  EXPECT_EQ(can_fd_length_to_dlc(0), 0u);
  EXPECT_EQ(can_fd_length_to_dlc(9), 9u);   // -> 12 bytes
  EXPECT_EQ(can_fd_length_to_dlc(64), 15u);
  EXPECT_THROW(can_fd_length_to_dlc(65), ivt::errors::Error);
}

TEST(CanTest, SerializeRoundTrip) {
  const CanFrame f = sample_frame();
  const CanFrame back = deserialize_can(serialize(f));
  EXPECT_EQ(back.id, f.id);
  EXPECT_EQ(back.data, f.data);
  EXPECT_EQ(back.extended_id, f.extended_id);
  EXPECT_EQ(back.fd, f.fd);
}

TEST(CanTest, SerializeRoundTripExtendedFd) {
  CanFrame f;
  f.id = 0x1ABCDEF0;
  f.extended_id = true;
  f.fd = true;
  f.data.assign(12, 0x77);
  const CanFrame back = deserialize_can(serialize(f));
  EXPECT_EQ(back.id, f.id);
  EXPECT_TRUE(back.extended_id);
  EXPECT_TRUE(back.fd);
  EXPECT_EQ(back.data.size(), 12u);
}

TEST(CanTest, DeserializeTruncatedThrows) {
  const std::vector<std::uint8_t> junk{0x00, 0x01};
  EXPECT_THROW(deserialize_can(junk), ivt::errors::Error);
  std::vector<std::uint8_t> bytes = serialize(sample_frame());
  bytes.pop_back();
  EXPECT_THROW(deserialize_can(bytes), ivt::errors::Error);
}

TEST(CanTest, Crc15DetectsBitFlips) {
  const CanFrame f = sample_frame();
  const std::uint16_t crc = can_crc15(f);
  EXPECT_LE(crc, 0x7FFFu);
  CanFrame tampered = f;
  tampered.data[1] ^= 0x01;
  EXPECT_NE(can_crc15(tampered), crc);
  CanFrame other_id = f;
  other_id.id ^= 0x1;
  EXPECT_NE(can_crc15(other_id), crc);
}

TEST(CanTest, Crc15Deterministic) {
  EXPECT_EQ(can_crc15(sample_frame()), can_crc15(sample_frame()));
}

TEST(CanTest, DisplayString) {
  const std::string s = to_display_string(sample_frame());
  EXPECT_NE(s.find("CAN 123"), std::string::npos);
  EXPECT_NE(s.find("11 22 33 44"), std::string::npos);
}

TEST(ProtocolEnumTest, RoundTrip) {
  for (Protocol p : {Protocol::Can, Protocol::CanFd, Protocol::Lin,
                     Protocol::SomeIp, Protocol::FlexRay}) {
    EXPECT_EQ(parse_protocol(to_string(p)), p);
  }
  EXPECT_FALSE(parse_protocol("bogus").has_value());
}

TEST(ProtocolEnumTest, KLinAlias) {
  EXPECT_EQ(parse_protocol("K-LIN"), Protocol::Lin);
}

}  // namespace
}  // namespace ivt::protocol
