#include "errors/error.hpp"
#include "protocol/bitcodec.hpp"

#include <gtest/gtest.h>

namespace ivt::protocol {
namespace {

TEST(BitCodecTest, IntelSingleByte) {
  const std::vector<std::uint8_t> payload{0xA5};  // 1010 0101
  EXPECT_EQ(extract_bits(payload, 0, 4, ByteOrder::Intel), 0x5u);
  EXPECT_EQ(extract_bits(payload, 4, 4, ByteOrder::Intel), 0xAu);
  EXPECT_EQ(extract_bits(payload, 0, 8, ByteOrder::Intel), 0xA5u);
}

TEST(BitCodecTest, IntelMultiByteLittleEndian) {
  const std::vector<std::uint8_t> payload{0x34, 0x12};
  EXPECT_EQ(extract_bits(payload, 0, 16, ByteOrder::Intel), 0x1234u);
}

TEST(BitCodecTest, IntelUnalignedField) {
  // bits: byte0 = abcdefgh (h = bit0). Field at start 4, len 8 spans bytes.
  const std::vector<std::uint8_t> payload{0xF0, 0x0F};
  // bits 4..11 = high nibble of byte0 (1111) + low nibble of byte1 (1111)
  EXPECT_EQ(extract_bits(payload, 4, 8, ByteOrder::Intel), 0xFFu);
}

TEST(BitCodecTest, MotorolaByteAligned16) {
  const std::vector<std::uint8_t> payload{0x12, 0x34};
  // Motorola start bit = MSB of byte 0 = bit 7.
  EXPECT_EQ(extract_bits(payload, 7, 16, ByteOrder::Motorola), 0x1234u);
}

TEST(BitCodecTest, MotorolaNibble) {
  const std::vector<std::uint8_t> payload{0xA5};
  EXPECT_EQ(extract_bits(payload, 7, 4, ByteOrder::Motorola), 0xAu);
  EXPECT_EQ(extract_bits(payload, 3, 4, ByteOrder::Motorola), 0x5u);
}

TEST(BitCodecTest, InsertExtractRoundTripIntel) {
  for (std::uint16_t start : {0, 3, 8, 13}) {
    for (std::uint16_t len : {1, 5, 8, 12, 16}) {
      std::vector<std::uint8_t> payload(8, 0);
      const std::uint64_t value = 0x5A5A5A5A5A5A5A5AULL &
                                  ((len >= 64) ? ~0ULL : ((1ULL << len) - 1));
      insert_bits(payload, start, len, ByteOrder::Intel, value);
      EXPECT_EQ(extract_bits(payload, start, len, ByteOrder::Intel), value)
          << "start=" << start << " len=" << len;
    }
  }
}

TEST(BitCodecTest, InsertExtractRoundTripMotorola) {
  for (std::uint16_t start : {7, 15, 23}) {
    for (std::uint16_t len : {4, 8, 12, 16}) {
      std::vector<std::uint8_t> payload(8, 0);
      const std::uint64_t value = 0x3CC3F00FULL & ((1ULL << len) - 1);
      insert_bits(payload, start, len, ByteOrder::Motorola, value);
      EXPECT_EQ(extract_bits(payload, start, len, ByteOrder::Motorola), value)
          << "start=" << start << " len=" << len;
    }
  }
}

TEST(BitCodecTest, InsertDoesNotDisturbNeighbours) {
  std::vector<std::uint8_t> payload(2, 0xFF);
  insert_bits(payload, 4, 4, ByteOrder::Intel, 0x0);
  EXPECT_EQ(payload[0], 0x0F);
  EXPECT_EQ(payload[1], 0xFF);
}

TEST(BitCodecTest, Full64BitField) {
  std::vector<std::uint8_t> payload(8, 0);
  const std::uint64_t value = 0xDEADBEEFCAFEBABEULL;
  insert_bits(payload, 0, 64, ByteOrder::Intel, value);
  EXPECT_EQ(extract_bits(payload, 0, 64, ByteOrder::Intel), value);
}

TEST(BitCodecTest, FitChecks) {
  EXPECT_TRUE(bit_field_fits(8, 0, 64, ByteOrder::Intel));
  EXPECT_FALSE(bit_field_fits(8, 1, 64, ByteOrder::Intel));
  EXPECT_FALSE(bit_field_fits(1, 0, 0, ByteOrder::Intel));
  EXPECT_FALSE(bit_field_fits(1, 0, 65, ByteOrder::Intel));
  EXPECT_TRUE(bit_field_fits(2, 7, 16, ByteOrder::Motorola));
  EXPECT_FALSE(bit_field_fits(2, 7, 17, ByteOrder::Motorola));
}

TEST(BitCodecTest, OutOfRangeThrows) {
  const std::vector<std::uint8_t> payload(2, 0);
  EXPECT_THROW(extract_bits(payload, 12, 8, ByteOrder::Intel),
               ivt::errors::Error);
  std::vector<std::uint8_t> w(2, 0);
  EXPECT_THROW(insert_bits(w, 12, 8, ByteOrder::Intel, 1),
               ivt::errors::Error);
}

TEST(BitCodecTest, SignExtend) {
  EXPECT_EQ(sign_extend(0xFF, 8), -1);
  EXPECT_EQ(sign_extend(0x7F, 8), 127);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0x1, 1), -1);
  EXPECT_EQ(sign_extend(0xFFFF, 16), -1);
  EXPECT_EQ(sign_extend(42, 32), 42);
}

TEST(BitCodecTest, FloatRoundTrip) {
  EXPECT_FLOAT_EQ(raw_to_float32(float32_to_raw(3.14f)), 3.14f);
  EXPECT_DOUBLE_EQ(raw_to_float64(float64_to_raw(-2.718281828)),
                   -2.718281828);
}

TEST(BitCodecTest, HexRoundTrip) {
  const std::vector<std::uint8_t> payload{0x5A, 0x01, 0xFF};
  EXPECT_EQ(to_hex(payload), "5A 01 FF");
  EXPECT_EQ(from_hex("5A 01 FF"), payload);
  EXPECT_EQ(from_hex("5a01ff"), payload);
}

TEST(BitCodecTest, HexRejectsBadInput) {
  EXPECT_THROW(from_hex("5G"), ivt::errors::Error);
  EXPECT_THROW(from_hex("5"), ivt::errors::Error);
  EXPECT_THROW(from_hex("5 A"), ivt::errors::Error);
}

TEST(BitCodecTest, EmptyHex) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

}  // namespace
}  // namespace ivt::protocol
