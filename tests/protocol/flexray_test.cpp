#include "errors/error.hpp"
#include "protocol/flexray.hpp"

#include <gtest/gtest.h>

namespace ivt::protocol {
namespace {

FlexRayFrame sample_frame() {
  FlexRayFrame f;
  f.slot_id = 42;
  f.cycle = 7;
  f.data = {0xAA, 0xBB};
  return f;
}

TEST(FlexRayTest, Validity) {
  FlexRayFrame f = sample_frame();
  EXPECT_TRUE(f.is_valid());
  f.slot_id = 0;
  EXPECT_FALSE(f.is_valid());
  f.slot_id = 2048;
  EXPECT_FALSE(f.is_valid());
  f.slot_id = 1;
  f.cycle = 64;
  EXPECT_FALSE(f.is_valid());
}

TEST(FlexRayTest, SerializeRoundTrip) {
  const FlexRayFrame f = sample_frame();
  const FlexRayFrame back = deserialize_flexray(serialize(f));
  EXPECT_EQ(back.slot_id, f.slot_id);
  EXPECT_EQ(back.cycle, f.cycle);
  EXPECT_EQ(back.channel_a, f.channel_a);
  EXPECT_EQ(back.data, f.data);
}

TEST(FlexRayTest, ChannelBPreserved) {
  FlexRayFrame f = sample_frame();
  f.channel_a = false;
  EXPECT_FALSE(deserialize_flexray(serialize(f)).channel_a);
}

TEST(FlexRayTest, TruncatedThrows) {
  EXPECT_THROW(deserialize_flexray(std::vector<std::uint8_t>{1, 2, 3}),
               ivt::errors::Error);
  auto bytes = serialize(sample_frame());
  bytes.pop_back();
  EXPECT_THROW(deserialize_flexray(bytes), ivt::errors::Error);
}

TEST(FlexRayTest, HeaderCrcDependsOnSlotAndLength) {
  const FlexRayFrame f = sample_frame();
  const std::uint16_t crc = flexray_header_crc(f);
  EXPECT_LE(crc, 0x7FFu);
  FlexRayFrame other = f;
  other.slot_id = 43;
  EXPECT_NE(flexray_header_crc(other), crc);
  FlexRayFrame longer = f;
  longer.data.assign(6, 0);
  EXPECT_NE(flexray_header_crc(longer), crc);
}

TEST(FlexRayTest, DisplayString) {
  const std::string s = to_display_string(sample_frame());
  EXPECT_NE(s.find("slot 42"), std::string::npos);
}

}  // namespace
}  // namespace ivt::protocol
