#include "errors/error.hpp"
#include "protocol/lin.hpp"

#include <gtest/gtest.h>

namespace ivt::protocol {
namespace {

LinFrame sample_frame() {
  LinFrame f;
  f.id = 0x11;
  f.data = {0x01, 0x02, 0x03};
  return f;
}

TEST(LinTest, ProtectedIdKnownVectors) {
  // From the LIN 2.1 spec examples: id 0x00 -> PID 0x80.
  EXPECT_EQ(lin_protected_id(0x00), 0x80);
  // P0/P1 of every id round-trip through lin_id_from_pid.
  for (std::uint8_t id = 0; id <= 0x3F; ++id) {
    EXPECT_EQ(lin_id_from_pid(lin_protected_id(id)), id);
  }
}

TEST(LinTest, ProtectedIdRejectsOutOfRange) {
  EXPECT_THROW(lin_protected_id(0x40), ivt::errors::Error);
}

TEST(LinTest, PidParityErrorDetected) {
  const std::uint8_t pid = lin_protected_id(0x11);
  EXPECT_THROW(lin_id_from_pid(pid ^ 0x80), ivt::errors::Error);
}

TEST(LinTest, ChecksumEnhancedDiffersFromClassic) {
  LinFrame f = sample_frame();
  f.checksum_model = LinChecksumModel::Enhanced;
  const std::uint8_t enhanced = lin_checksum(f);
  f.checksum_model = LinChecksumModel::Classic;
  const std::uint8_t classic = lin_checksum(f);
  EXPECT_NE(enhanced, classic);
}

TEST(LinTest, ChecksumCarryWraps) {
  LinFrame f;
  f.id = 0x00;
  f.checksum_model = LinChecksumModel::Classic;
  f.data = {0xFF, 0xFF};
  // 0xFF + 0xFF = 0x1FE -> wrap: 0x1FE - 0xFF = 0xFF; ~0xFF = 0x00.
  EXPECT_EQ(lin_checksum(f), 0x00);
}

TEST(LinTest, SerializeRoundTrip) {
  const LinFrame f = sample_frame();
  const LinFrame back = deserialize_lin(serialize(f));
  EXPECT_EQ(back.id, f.id);
  EXPECT_EQ(back.data, f.data);
  EXPECT_EQ(back.checksum_model, f.checksum_model);
}

TEST(LinTest, SerializeRoundTripClassic) {
  LinFrame f = sample_frame();
  f.checksum_model = LinChecksumModel::Classic;
  const LinFrame back = deserialize_lin(serialize(f));
  EXPECT_EQ(back.checksum_model, LinChecksumModel::Classic);
}

TEST(LinTest, CorruptedChecksumRejected) {
  std::vector<std::uint8_t> bytes = serialize(sample_frame());
  bytes.back() ^= 0xFF;
  EXPECT_THROW(deserialize_lin(bytes), ivt::errors::Error);
}

TEST(LinTest, CorruptedPayloadRejected) {
  std::vector<std::uint8_t> bytes = serialize(sample_frame());
  bytes[2] ^= 0x01;  // first data byte
  EXPECT_THROW(deserialize_lin(bytes), ivt::errors::Error);
}

TEST(LinTest, TruncatedRejected) {
  EXPECT_THROW(deserialize_lin(std::vector<std::uint8_t>{0x80}),
               ivt::errors::Error);
}

TEST(LinTest, Validity) {
  LinFrame f = sample_frame();
  EXPECT_TRUE(f.is_valid());
  f.data.clear();
  EXPECT_FALSE(f.is_valid());
  f.data.assign(9, 0);
  EXPECT_FALSE(f.is_valid());
  f.data.assign(8, 0);
  f.id = 0x40;
  EXPECT_FALSE(f.is_valid());
}

TEST(LinTest, DisplayString) {
  const std::string s = to_display_string(sample_frame());
  EXPECT_NE(s.find("LIN 11"), std::string::npos);
}

}  // namespace
}  // namespace ivt::protocol
