#include "baseline/inhouse_tool.hpp"

#include <gtest/gtest.h>

#include "../core/test_fixtures.hpp"

namespace ivt::baseline {
namespace {

using ivt::core::testing::heater_record;
using ivt::core::testing::kMs;
using ivt::core::testing::wiper_catalog;
using ivt::core::testing::wiper_record;

tracefile::Trace small_trace() {
  tracefile::Trace trace;
  trace.records.push_back(wiper_record(0, 45.0, 1.0));
  trace.records.push_back(wiper_record(20 * kMs, 60.0, 2.0));
  trace.records.push_back(heater_record(30 * kMs, 2));
  return trace;
}

TEST(InHouseToolTest, IngestDecodesEverySignal) {
  const auto catalog = wiper_catalog();
  InHouseTool tool(catalog);
  const IngestStats stats = tool.ingest(small_trace());
  EXPECT_EQ(stats.records_scanned, 3u);
  EXPECT_EQ(stats.records_unknown, 0u);
  // 2 wiper records x 2 signals + 1 heater x 1 signal.
  EXPECT_EQ(stats.instances_decoded, 5u);
  EXPECT_EQ(tool.num_stored_signals(), 3u);
}

TEST(InHouseToolTest, PostIngestLookupIsDecoded) {
  const auto catalog = wiper_catalog();
  InHouseTool tool(catalog);
  tool.ingest(small_trace());
  const auto* wpos = tool.find("wpos");
  ASSERT_NE(wpos, nullptr);
  ASSERT_EQ(wpos->size(), 2u);
  EXPECT_DOUBLE_EQ((*wpos)[0].value, 45.0);
  EXPECT_DOUBLE_EQ((*wpos)[1].value, 60.0);
  EXPECT_EQ((*wpos)[0].t_ns, 0);
}

TEST(InHouseToolTest, CategoricalStoresLabelIndex) {
  const auto catalog = wiper_catalog();
  InHouseTool tool(catalog);
  tool.ingest(small_trace());
  const auto* heat = tool.find("heat");
  ASSERT_NE(heat, nullptr);
  EXPECT_EQ((*heat)[0].label_index, 2);  // "medium"
}

TEST(InHouseToolTest, UnknownMessagesCounted) {
  const auto catalog = wiper_catalog();
  InHouseTool tool(catalog);
  tracefile::Trace trace = small_trace();
  tracefile::TraceRecord unknown;
  unknown.bus = "FC";
  unknown.message_id = 999;
  trace.records.push_back(unknown);
  const IngestStats stats = tool.ingest(trace);
  EXPECT_EQ(stats.records_unknown, 1u);
}

TEST(InHouseToolTest, MissingSignalReturnsNull) {
  const auto catalog = wiper_catalog();
  InHouseTool tool(catalog);
  tool.ingest(small_trace());
  EXPECT_EQ(tool.find("belt"), nullptr);  // never occurred
}

TEST(InHouseToolTest, TableIngestMatchesTraceIngest) {
  const auto catalog = wiper_catalog();
  InHouseTool a(catalog);
  InHouseTool b(catalog);
  const auto trace = small_trace();
  const IngestStats sa = a.ingest(trace);
  const IngestStats sb = b.ingest_table(tracefile::to_kb_table(trace, 2));
  EXPECT_EQ(sa.records_scanned, sb.records_scanned);
  EXPECT_EQ(sa.instances_decoded, sb.instances_decoded);
  ASSERT_NE(b.find("wvel"), nullptr);
  EXPECT_DOUBLE_EQ((*b.find("wvel"))[1].value, 2.0);
}

TEST(InHouseToolTest, IngestCostIndependentOfRequestedSignals) {
  // Structural property behind paper Table 6: ingest decodes everything,
  // so instances_decoded equals catalog signals x records regardless of
  // what the analyst later looks up.
  const auto catalog = wiper_catalog();
  InHouseTool tool(catalog);
  const IngestStats stats = tool.ingest(small_trace());
  EXPECT_EQ(stats.instances_decoded, 5u);
  // "Extraction" afterwards is a pure lookup, no further decoding.
  EXPECT_NE(tool.find("wpos"), nullptr);
  EXPECT_NE(tool.find("wvel"), nullptr);
}

TEST(InHouseToolTest, ClearEmptiesStore) {
  const auto catalog = wiper_catalog();
  InHouseTool tool(catalog);
  tool.ingest(small_trace());
  tool.clear();
  EXPECT_EQ(tool.num_stored_signals(), 0u);
}

}  // namespace
}  // namespace ivt::baseline
