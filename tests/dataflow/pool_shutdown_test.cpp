// Regression tests for ThreadPool shutdown ordering: destroying the pool
// while a submit_bounded() caller is parked on an admission slot used to
// leave that caller waiting on a condition variable nobody would ever
// notify again (the destructor only woke the workers). The destructor now
// wakes slot waiters, which observe stop_ and fail with a typed error,
// and it waits for them to leave the critical section before tearing the
// synchronization state down.
#include "dataflow/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>

#include "errors/error.hpp"

namespace ivt::dataflow {
namespace {

TEST(PoolShutdownTest, DestructorWakesPendingBoundedSubmitter) {
  auto pool = std::make_unique<ThreadPool>(1);

  // Occupy the single worker so the admission window (limit 1) is full.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool->submit([gate] { gate.wait(); });

  // Producer and destroyer race on the pool object itself by design, but
  // must not race on the unique_ptr — hand the producer a raw pointer.
  ThreadPool* raw = pool.get();
  std::atomic<bool> producer_in{false};
  std::atomic<bool> threw_internal{false};
  std::thread producer([&, raw] {
    producer_in.store(true);
    try {
      raw->submit_bounded([] {}, 1);  // blocks: in_flight == limit
    } catch (const errors::Error& e) {
      threw_internal.store(e.category() == errors::Category::Internal);
    }
  });
  while (!producer_in.load()) std::this_thread::yield();
  // Give the producer time to actually park on the admission slot; the
  // contract holds either way (parked => woken by the destructor,
  // not-yet-parked => observes stop_ on entry).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::thread destroyer([&] { pool.reset(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.set_value();  // let the in-flight task finish so workers can join

  destroyer.join();   // would deadlock without the shutdown wakeup
  producer.join();
  EXPECT_TRUE(threw_internal.load());
}

TEST(PoolShutdownTest, SubmitBoundedAfterStopThrowsInsteadOfStranding) {
  // The not-yet-parked flavour: the submitter only reaches the pool once
  // destruction already started. It must get the same typed error, never
  // a silently dropped task.
  auto pool = std::make_unique<ThreadPool>(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool->submit([gate] { gate.wait(); });

  ThreadPool* raw = pool.get();  // stays valid until destroyer joins below
  std::thread destroyer([&] { pool.reset(); });
  // Destructor is now blocked joining the busy worker; stop_ is set.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_THROW(raw->submit_bounded([] {}, 4), errors::Error);
  EXPECT_THROW(raw->submit([] {}), errors::Error);
  release.set_value();
  destroyer.join();
}

TEST(PoolShutdownTest, CleanDestructionStillDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    // No wait_idle(): the destructor must let the workers drain the queue.
  }
  EXPECT_EQ(ran.load(), 64);
}

}  // namespace
}  // namespace ivt::dataflow
