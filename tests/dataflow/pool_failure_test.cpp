// Failure-path tests for the execution layer: the ThreadPool exception
// barrier (worker and inline modes) and the Engine's transient-error
// retry loop.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

#include "dataflow/engine.hpp"
#include "dataflow/thread_pool.hpp"
#include "errors/error.hpp"

namespace ivt::dataflow {
namespace {

TEST(ThreadPoolFailureTest, FirstExceptionRethrownFromWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.submit([] { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 8; ++i) {
    pool.submit([&completed] { ++completed; });
  }
  try {
    pool.wait_idle();
    FAIL() << "wait_idle did not rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "task boom");
  }
  // Every healthy task still ran: one failure does not poison the queue.
  EXPECT_EQ(completed.load(), 8);
  EXPECT_EQ(pool.tasks_failed(), 1u);
}

TEST(ThreadPoolFailureTest, PoolStaysUsableAfterRethrow) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("first"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The captured exception was consumed by the rethrow.
  pool.submit([] {});
  EXPECT_NO_THROW(pool.wait_idle());

  pool.submit([] { throw std::runtime_error("second"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(pool.tasks_failed(), 2u);
}

TEST(ThreadPoolFailureTest, LaterFailuresCountedFirstWins) {
  ThreadPool pool(0);  // inline: deterministic submission order
  for (int i = 0; i < 3; ++i) {
    pool.submit([i] { throw std::runtime_error("boom " + std::to_string(i)); });
  }
  try {
    pool.wait_idle();
    FAIL() << "wait_idle did not rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "boom 0");
  }
  EXPECT_EQ(pool.tasks_failed(), 3u);
}

TEST(ThreadPoolFailureTest, InlineModeSameContract) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::atomic<int> completed{0};
  pool.submit([] { throw std::runtime_error("inline boom"); });
  pool.submit([&completed] { ++completed; });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(completed.load(), 1);
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPoolFailureTest, HelpUntilIdleRethrows) {
  ThreadPool pool(1);
  pool.submit([] { throw std::runtime_error("helped boom"); });
  EXPECT_THROW(pool.help_until_idle(), std::runtime_error);
  EXPECT_NO_THROW(pool.help_until_idle());
}

TEST(EngineRetryTest, TransientErrorIsRetried) {
  // n > 1 so the tasks go through the worker pool, not the inline path.
  Engine engine({.workers = 2,
                 .max_task_retries = 3,
                 .retry_backoff = std::chrono::microseconds(1)});
  std::atomic<int> attempts[4] = {};
  engine.parallel_for(4, [&attempts](std::size_t i) {
    if (attempts[i].fetch_add(1) < 2 && i == 2) {
      IVT_THROW(errors::Category::Resource, "temporarily out of budget");
    }
  });
  EXPECT_EQ(attempts[2].load(), 3);  // 2 failures + 1 success
  EXPECT_EQ(attempts[0].load(), 1);
  EXPECT_EQ(engine.task_retries(), 2u);
}

TEST(EngineRetryTest, TransientErrorExhaustsRetriesThenThrows) {
  Engine engine({.workers = 1,
                 .max_task_retries = 2,
                 .retry_backoff = std::chrono::microseconds(1)});
  std::atomic<int> attempts{0};
  EXPECT_THROW(engine.parallel_for(1,
                                   [&attempts](std::size_t) {
                                     ++attempts;
                                     IVT_THROW(errors::Category::Resource,
                                               "never clears");
                                   }),
               errors::Error);
  EXPECT_EQ(attempts.load(), 3);  // initial + 2 retries
  EXPECT_EQ(engine.task_retries(), 2u);
}

TEST(EngineRetryTest, PersistentErrorIsNotRetried) {
  Engine engine({.workers = 1,
                 .max_task_retries = 5,
                 .retry_backoff = std::chrono::microseconds(1)});
  std::atomic<int> attempts{0};
  EXPECT_THROW(engine.parallel_for(1,
                                   [&attempts](std::size_t) {
                                     ++attempts;
                                     IVT_THROW(errors::Category::Decode,
                                               "corrupt stays corrupt");
                                   }),
               errors::Error);
  EXPECT_EQ(attempts.load(), 1);
  EXPECT_EQ(engine.task_retries(), 0u);
}

TEST(EngineRetryTest, UntypedExceptionIsNotRetried) {
  Engine engine({.workers = 1, .max_task_retries = 5});
  std::atomic<int> attempts{0};
  EXPECT_THROW(engine.parallel_for(1,
                                   [&attempts](std::size_t) {
                                     ++attempts;
                                     throw std::runtime_error("untyped");
                                   }),
               std::runtime_error);
  EXPECT_EQ(attempts.load(), 1);
}

TEST(EngineRetryTest, InlineSingleTaskPathRetriesToo) {
  // n == 1 takes the no-pool fast path; the retry loop must apply there
  // as well.
  Engine engine({.workers = 0,
                 .max_task_retries = 1,
                 .retry_backoff = std::chrono::microseconds(1)});
  int attempts = 0;
  engine.parallel_for(1, [&attempts](std::size_t) {
    if (++attempts == 1) {
      IVT_THROW(errors::Category::Resource, "one transient hiccup");
    }
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(engine.task_retries(), 1u);
}

}  // namespace
}  // namespace ivt::dataflow
