#include "dataflow/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ivt::dataflow {
namespace {

Schema csv_schema() {
  return Schema{{{"id", ValueType::Int64},
                 {"name", ValueType::String},
                 {"v", ValueType::Float64}}};
}

Table sample_table() {
  TableBuilder b(csv_schema(), 0);
  b.append_row({Value{std::int64_t{1}}, Value{"plain"}, Value{1.5}});
  b.append_row({Value{std::int64_t{2}}, Value{"with,comma"}, Value{}});
  b.append_row({Value{std::int64_t{3}}, Value{"with \"quote\""}, Value{-2.0}});
  return b.build();
}

TEST(CsvTest, RoundTrip) {
  std::stringstream ss;
  write_csv(sample_table(), ss);
  const Table back = read_csv(ss, csv_schema());
  EXPECT_EQ(back.collect_rows(), sample_table().collect_rows());
}

TEST(CsvTest, HeaderWritten) {
  std::stringstream ss;
  write_csv(sample_table(), ss);
  std::string first_line;
  std::getline(ss, first_line);
  EXPECT_EQ(first_line, "id,name,v");
}

TEST(CsvTest, NoHeaderOption) {
  std::stringstream ss;
  write_csv(sample_table(), ss, CsvOptions{.separator = ',', .header = false});
  std::string first_line;
  std::getline(ss, first_line);
  EXPECT_EQ(first_line.substr(0, 2), "1,");
}

TEST(CsvTest, QuotingOfSeparator) {
  std::stringstream ss;
  write_csv(sample_table(), ss);
  EXPECT_NE(ss.str().find("\"with,comma\""), std::string::npos);
}

TEST(CsvTest, QuoteEscaping) {
  std::stringstream ss;
  write_csv(sample_table(), ss);
  EXPECT_NE(ss.str().find("\"with \"\"quote\"\"\""), std::string::npos);
}

TEST(CsvTest, NullCellsAreEmpty) {
  std::stringstream ss;
  write_csv(sample_table(), ss);
  EXPECT_NE(ss.str().find("2,\"with,comma\",\n"), std::string::npos);
}

TEST(CsvTest, ReadRejectsBadHeader) {
  std::stringstream ss("wrong,name,v\n1,x,2.0\n");
  EXPECT_THROW(read_csv(ss, csv_schema()), std::runtime_error);
}

TEST(CsvTest, ReadRejectsBadWidth) {
  std::stringstream ss("id,name,v\n1,x\n");
  EXPECT_THROW(read_csv(ss, csv_schema()), std::runtime_error);
}

TEST(CsvTest, ReadRejectsBadInt) {
  std::stringstream ss("id,name,v\nxyz,a,1.0\n");
  EXPECT_THROW(read_csv(ss, csv_schema()), std::runtime_error);
}

TEST(CsvTest, TsvSeparator) {
  std::stringstream ss;
  const CsvOptions tsv{.separator = '\t', .header = true};
  write_csv(sample_table(), ss, tsv);
  const Table back = read_csv(ss, csv_schema(), tsv);
  EXPECT_EQ(back.num_rows(), 3u);
}

TEST(CsvTest, PartitionedRead) {
  std::stringstream ss;
  write_csv(sample_table(), ss);
  const Table back = read_csv(ss, csv_schema(), {}, 1);
  EXPECT_EQ(back.num_partitions(), 3u);
}

TEST(CsvTest, EmptyInputGivesEmptyTable) {
  std::stringstream ss("");
  const Table back = read_csv(ss, csv_schema());
  EXPECT_EQ(back.num_rows(), 0u);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ivt_csv_test.csv";
  write_csv_file(sample_table(), path);
  const Table back = read_csv_file(path, csv_schema());
  EXPECT_EQ(back.collect_rows(), sample_table().collect_rows());
}

}  // namespace
}  // namespace ivt::dataflow
