#include "dataflow/value.hpp"

#include <gtest/gtest.h>

namespace ivt::dataflow {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::Null);
}

TEST(ValueTest, Int64RoundTrip) {
  Value v{std::int64_t{42}};
  EXPECT_EQ(v.type(), ValueType::Int64);
  EXPECT_EQ(v.as_int64(), 42);
  EXPECT_DOUBLE_EQ(v.as_number(), 42.0);
}

TEST(ValueTest, Float64RoundTrip) {
  Value v{3.25};
  EXPECT_EQ(v.type(), ValueType::Float64);
  EXPECT_DOUBLE_EQ(v.as_float64(), 3.25);
  EXPECT_DOUBLE_EQ(v.as_number(), 3.25);
}

TEST(ValueTest, StringRoundTrip) {
  Value v{"hello"};
  EXPECT_EQ(v.type(), ValueType::String);
  EXPECT_EQ(v.as_string(), "hello");
}

TEST(ValueTest, StringViewConstructor) {
  std::string_view sv = "view";
  Value v{sv};
  EXPECT_EQ(v.as_string(), "view");
}

TEST(ValueTest, EqualityWithinType) {
  EXPECT_EQ(Value{std::int64_t{1}}, Value{std::int64_t{1}});
  EXPECT_NE(Value{std::int64_t{1}}, Value{std::int64_t{2}});
  EXPECT_EQ(Value{"a"}, Value{"a"});
  EXPECT_NE(Value{"a"}, Value{"b"});
  EXPECT_EQ(Value{}, Value{});
}

TEST(ValueTest, DifferentTypesAreNotEqual) {
  EXPECT_NE(Value{std::int64_t{1}}, Value{1.0});
  EXPECT_NE(Value{}, Value{std::int64_t{0}});
}

TEST(ValueTest, OrderingWithinType) {
  EXPECT_LT(Value{std::int64_t{1}}, Value{std::int64_t{2}});
  EXPECT_LT(Value{"a"}, Value{"b"});
  EXPECT_LT(Value{1.5}, Value{2.5});
}

TEST(ValueTest, NullOrdersBeforeTyped) {
  EXPECT_LT(Value{}, Value{std::int64_t{-100}});
}

TEST(ValueTest, DisplayString) {
  EXPECT_EQ(Value{}.to_display_string(), "");
  EXPECT_EQ(Value{std::int64_t{7}}.to_display_string(), "7");
  EXPECT_EQ(Value{"x y"}.to_display_string(), "x y");
  EXPECT_EQ(Value{2.5}.to_display_string(), "2.5");
  EXPECT_EQ(Value{3.0}.to_display_string(), "3");
}

TEST(ValueTest, HashEqualForEqualValues) {
  EXPECT_EQ(Value{std::int64_t{5}}.hash(), Value{std::int64_t{5}}.hash());
  EXPECT_EQ(Value{"abc"}.hash(), Value{"abc"}.hash());
}

TEST(ValueTest, HashUsuallyDiffersForDifferentValues) {
  EXPECT_NE(Value{std::int64_t{5}}.hash(), Value{std::int64_t{6}}.hash());
  EXPECT_NE(Value{"abc"}.hash(), Value{"abd"}.hash());
}

TEST(ValueTypeTest, Names) {
  EXPECT_EQ(to_string(ValueType::Null), "null");
  EXPECT_EQ(to_string(ValueType::Int64), "int64");
  EXPECT_EQ(to_string(ValueType::Float64), "float64");
  EXPECT_EQ(to_string(ValueType::String), "string");
}

}  // namespace
}  // namespace ivt::dataflow
