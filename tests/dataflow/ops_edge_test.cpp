// Robustness: every relational operation must handle empty tables,
// empty partitions and degenerate inputs without crashing.
#include "errors/error.hpp"
#include <gtest/gtest.h>

#include "dataflow/ops.hpp"

namespace ivt::dataflow {
namespace {

class OpsEdgeTest : public ::testing::Test {
 protected:
  Engine engine_{EngineConfig{.workers = 2, .default_partitions = 4}};

  static Schema schema() {
    return Schema{{{"k", ValueType::String}, {"v", ValueType::Int64}}};
  }

  static Table empty_table() { return Table(schema()); }

  /// Table with one explicitly empty partition.
  static Table empty_partition_table() {
    Table t(schema());
    t.add_partition(Table::make_partition(schema()));
    return t;
  }

  static Table one_row() {
    TableBuilder b(schema(), 0);
    b.append_row({Value{"a"}, Value{std::int64_t{1}}});
    return b.build();
  }
};

TEST_F(OpsEdgeTest, FilterEmpty) {
  EXPECT_EQ(filter(engine_, empty_table(),
                   [](const RowView&) { return true; })
                .num_rows(),
            0u);
  EXPECT_EQ(filter(engine_, empty_partition_table(),
                   [](const RowView&) { return true; })
                .num_rows(),
            0u);
}

TEST_F(OpsEdgeTest, ProjectEmpty) {
  const Table out = project(engine_, empty_partition_table(), {"v"});
  EXPECT_EQ(out.num_rows(), 0u);
  EXPECT_EQ(out.schema().size(), 1u);
}

TEST_F(OpsEdgeTest, WithColumnEmpty) {
  const Table out =
      with_column(engine_, empty_partition_table(), {"w", ValueType::Int64},
                  [](const RowView&) { return Value{std::int64_t{1}}; });
  EXPECT_EQ(out.num_rows(), 0u);
  EXPECT_TRUE(out.schema().contains("w"));
}

TEST_F(OpsEdgeTest, MapRowsEmpty) {
  const Table out = map_rows(engine_, empty_partition_table(), schema(),
                             [](const RowView&, Partition&) {});
  EXPECT_EQ(out.num_rows(), 0u);
}

TEST_F(OpsEdgeTest, JoinWithEmptyLeft) {
  TableBuilder rb(
      Schema{{{"k", ValueType::String}, {"w", ValueType::Int64}}}, 0);
  rb.append_row({Value{"a"}, Value{std::int64_t{9}}});
  const Table out = hash_join(engine_, empty_partition_table(), rb.build(),
                              {"k"}, {"k"});
  EXPECT_EQ(out.num_rows(), 0u);
  EXPECT_TRUE(out.schema().contains("w"));
}

TEST_F(OpsEdgeTest, JoinWithEmptyRightInner) {
  const Table right(
      Schema{{{"k", ValueType::String}, {"w", ValueType::Int64}}});
  const Table out = hash_join(engine_, one_row(), right, {"k"}, {"k"});
  EXPECT_EQ(out.num_rows(), 0u);
}

TEST_F(OpsEdgeTest, JoinWithEmptyRightLeftOuter) {
  const Table right(
      Schema{{{"k", ValueType::String}, {"w", ValueType::Int64}}});
  const Table out = hash_join(engine_, one_row(), right, {"k"}, {"k"},
                              JoinType::LeftOuter);
  EXPECT_EQ(out.num_rows(), 1u);
  EXPECT_TRUE(out.collect_rows()[0][2].is_null());
}

TEST_F(OpsEdgeTest, SortEmpty) {
  EXPECT_EQ(sort_by(engine_, empty_table(), {{"v", true}}).num_rows(), 0u);
}

TEST_F(OpsEdgeTest, SortSingleRow) {
  const Table out = sort_by(engine_, one_row(), {{"v", false}});
  EXPECT_EQ(out.num_rows(), 1u);
}

TEST_F(OpsEdgeTest, DistinctEmpty) {
  EXPECT_EQ(distinct(engine_, empty_partition_table(), {"k"}).num_rows(), 0u);
}

TEST_F(OpsEdgeTest, GroupByEmpty) {
  const Table out = group_by(engine_, empty_partition_table(), {"k"},
                             {{AggOp::Count, "", "n"}});
  EXPECT_EQ(out.num_rows(), 0u);
  EXPECT_TRUE(out.schema().contains("n"));
}

TEST_F(OpsEdgeTest, GroupByAllNullAggColumn) {
  TableBuilder b(schema(), 0);
  b.append_row({Value{"a"}, Value{}});
  b.append_row({Value{"a"}, Value{}});
  const Table out = group_by(engine_, b.build(), {"k"},
                             {{AggOp::Count, "", "n"},
                              {AggOp::Min, "v", "min_v"},
                              {AggOp::Mean, "v", "mean_v"}});
  const auto rows = out.collect_rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][out.schema().require("n")], Value{std::int64_t{2}});
  EXPECT_TRUE(rows[0][out.schema().require("min_v")].is_null());
}

TEST_F(OpsEdgeTest, WithLagEmpty) {
  EXPECT_EQ(
      with_lag(engine_, empty_partition_table(), {"k"}, "v", "prev")
          .num_rows(),
      0u);
}

TEST_F(OpsEdgeTest, WithLagSingleRowIsNull) {
  const Table out = with_lag(engine_, one_row(), {"k"}, "v", "prev");
  EXPECT_TRUE(out.collect_rows()[0][2].is_null());
}

TEST_F(OpsEdgeTest, UnionWithEmpty) {
  const Table out = union_all(one_row(), empty_table());
  EXPECT_EQ(out.num_rows(), 1u);
}

TEST_F(OpsEdgeTest, RepartitionEmpty) {
  EXPECT_EQ(empty_table().repartitioned(8).num_rows(), 0u);
}

TEST_F(OpsEdgeTest, ProjectUnknownColumnThrows) {
  EXPECT_THROW(project(engine_, one_row(), {"zz"}), ivt::errors::Error);
}

TEST_F(OpsEdgeTest, SortUnknownColumnThrows) {
  EXPECT_THROW(sort_by(engine_, one_row(), {{"zz", true}}),
               ivt::errors::Error);
}

TEST_F(OpsEdgeTest, WithColumnWrongTypeThrows) {
  EXPECT_THROW(
      with_column(engine_, one_row(), {"w", ValueType::Int64},
                  [](const RowView&) { return Value{"string!"}; }),
      ivt::errors::Error);
}

}  // namespace
}  // namespace ivt::dataflow
