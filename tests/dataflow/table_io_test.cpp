#include "dataflow/table_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ivt::dataflow {
namespace {

Table sample_table() {
  Schema schema{{{"id", ValueType::Int64},
                 {"v", ValueType::Float64},
                 {"name", ValueType::String}}};
  TableBuilder b(schema, 3);
  for (std::int64_t i = 0; i < 8; ++i) {
    b.append_row({Value{i},
                  i % 3 == 0 ? Value{} : Value{0.5 * static_cast<double>(i)},
                  i % 4 == 0 ? Value{} : Value{"n" + std::to_string(i)}});
  }
  return b.build();
}

TEST(TableIoTest, StreamRoundTrip) {
  const Table t = sample_table();
  std::stringstream ss;
  write_table(t, ss);
  const Table back = read_table(ss);
  EXPECT_EQ(back.schema(), t.schema());
  EXPECT_EQ(back.num_partitions(), t.num_partitions());
  EXPECT_EQ(back.collect_rows(), t.collect_rows());
}

TEST(TableIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/table_io_test.ivtbl";
  const Table t = sample_table();
  save_table(t, path);
  EXPECT_EQ(load_table(path).collect_rows(), t.collect_rows());
}

TEST(TableIoTest, NullsSurvive) {
  const Table t = sample_table();
  std::stringstream ss;
  write_table(t, ss);
  const Table back = read_table(ss);
  const auto rows = back.collect_rows();
  EXPECT_TRUE(rows[0][1].is_null());
  EXPECT_TRUE(rows[0][2].is_null());
  EXPECT_FALSE(rows[1][1].is_null());
}

TEST(TableIoTest, EmptyTable) {
  Table t(Schema{{{"x", ValueType::Int64}}});
  std::stringstream ss;
  write_table(t, ss);
  const Table back = read_table(ss);
  EXPECT_EQ(back.num_rows(), 0u);
  EXPECT_EQ(back.schema(), t.schema());
}

TEST(TableIoTest, BinaryPayloadStringsSurvive) {
  Schema schema{{{"payload", ValueType::String}}};
  TableBuilder b(schema, 0);
  std::string bytes;
  for (int i = 0; i < 256; ++i) bytes.push_back(static_cast<char>(i));
  b.append_row({Value{bytes}});
  std::stringstream ss;
  write_table(b.build(), ss);
  const Table back = read_table(ss);
  EXPECT_EQ(back.collect_rows()[0][0].as_string(), bytes);
}

TEST(TableIoTest, BadMagicRejected) {
  std::stringstream ss("NOPE....");
  EXPECT_THROW(read_table(ss), std::runtime_error);
}

TEST(TableIoTest, TruncationRejected) {
  std::stringstream ss;
  write_table(sample_table(), ss);
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(read_table(truncated), std::runtime_error);
}

TEST(TableIoTest, LargeTableRoundTrip) {
  Schema schema{{{"i", ValueType::Int64}, {"s", ValueType::String}}};
  TableBuilder b(schema, 1000);
  for (std::int64_t i = 0; i < 5000; ++i) {
    b.append_row({Value{i}, Value{std::to_string(i * 7)}});
  }
  const Table t = b.build();
  std::stringstream ss;
  write_table(t, ss);
  const Table back = read_table(ss);
  EXPECT_EQ(back.num_rows(), 5000u);
  EXPECT_EQ(back.collect_rows(), t.collect_rows());
}

}  // namespace
}  // namespace ivt::dataflow
