#include "errors/error.hpp"
#include "dataflow/schema.hpp"

#include <gtest/gtest.h>

namespace ivt::dataflow {
namespace {

Schema make_schema() {
  return Schema{{{"t", ValueType::Int64},
                 {"name", ValueType::String},
                 {"v", ValueType::Float64}}};
}

TEST(SchemaTest, SizeAndFieldAccess) {
  const Schema s = make_schema();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.field(0).name, "t");
  EXPECT_EQ(s.field(1).type, ValueType::String);
}

TEST(SchemaTest, IndexOf) {
  const Schema s = make_schema();
  EXPECT_EQ(s.index_of("t"), 0u);
  EXPECT_EQ(s.index_of("v"), 2u);
  EXPECT_FALSE(s.index_of("missing").has_value());
}

TEST(SchemaTest, RequireThrowsOnMissing) {
  const Schema s = make_schema();
  EXPECT_EQ(s.require("name"), 1u);
  EXPECT_THROW((void)s.require("nope"), ivt::errors::Error);
}

TEST(SchemaTest, DuplicateNamesRejected) {
  EXPECT_THROW(Schema({{"a", ValueType::Int64}, {"a", ValueType::String}}),
               ivt::errors::Error);
}

TEST(SchemaTest, WithFieldAppends) {
  const Schema s = make_schema().with_field({"extra", ValueType::Int64});
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.require("extra"), 3u);
}

TEST(SchemaTest, WithFieldRejectsDuplicate) {
  EXPECT_THROW(make_schema().with_field({"t", ValueType::Int64}),
               ivt::errors::Error);
}

TEST(SchemaTest, SelectReordersFields) {
  const Schema s = make_schema().select({"v", "t"});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.field(0).name, "v");
  EXPECT_EQ(s.field(1).name, "t");
}

TEST(SchemaTest, SelectUnknownThrows) {
  EXPECT_THROW(make_schema().select({"zz"}), ivt::errors::Error);
}

TEST(SchemaTest, Equality) {
  EXPECT_EQ(make_schema(), make_schema());
  EXPECT_NE(make_schema(), make_schema().with_field({"x", ValueType::Null}));
}

TEST(SchemaTest, DisplayString) {
  EXPECT_EQ(make_schema().to_display_string(),
            "(t: int64, name: string, v: float64)");
}

TEST(SchemaTest, EmptySchema) {
  const Schema s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains("anything"));
}

}  // namespace
}  // namespace ivt::dataflow
