#include "errors/error.hpp"
#include "dataflow/table.hpp"

#include <gtest/gtest.h>

namespace ivt::dataflow {
namespace {

Schema test_schema() {
  return Schema{{{"id", ValueType::Int64}, {"name", ValueType::String}}};
}

Table make_table(std::size_t rows, std::size_t partition_rows) {
  TableBuilder builder(test_schema(), partition_rows);
  for (std::size_t i = 0; i < rows; ++i) {
    builder.append_row({Value{static_cast<std::int64_t>(i)},
                        Value{"row" + std::to_string(i)}});
  }
  return builder.build();
}

TEST(TableTest, EmptyTable) {
  Table t(test_schema());
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_TRUE(t.empty());
}

TEST(TableBuilderTest, SinglePartitionWhenTargetZero) {
  const Table t = make_table(10, 0);
  EXPECT_EQ(t.num_partitions(), 1u);
  EXPECT_EQ(t.num_rows(), 10u);
}

TEST(TableBuilderTest, PartitionsRollAtTarget) {
  const Table t = make_table(10, 3);
  EXPECT_EQ(t.num_partitions(), 4u);  // 3+3+3+1
  EXPECT_EQ(t.num_rows(), 10u);
}

TEST(TableBuilderTest, RowWidthMismatchThrows) {
  TableBuilder builder(test_schema(), 0);
  EXPECT_THROW(builder.append_row({Value{std::int64_t{1}}}),
               ivt::errors::Error);
}

TEST(TableTest, CollectRowsPreservesOrder) {
  const Table t = make_table(7, 2);
  const auto rows = t.collect_rows();
  ASSERT_EQ(rows.size(), 7u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i][0], Value{static_cast<std::int64_t>(i)});
  }
}

TEST(TableTest, ForEachRowVisitsAllInOrder) {
  const Table t = make_table(5, 2);
  std::vector<std::int64_t> seen;
  t.for_each_row([&](const RowView& row) { seen.push_back(row.int64_at(0)); });
  EXPECT_EQ(seen, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

TEST(TableTest, RepartitionedPreservesOrderAndContent) {
  const Table t = make_table(10, 3);
  const Table r = t.repartitioned(5);
  EXPECT_EQ(r.num_partitions(), 5u);
  EXPECT_EQ(r.collect_rows(), t.collect_rows());
}

TEST(TableTest, RepartitionedToOne) {
  const Table t = make_table(4, 1);
  const Table r = t.repartitioned(1);
  EXPECT_EQ(r.num_partitions(), 1u);
  EXPECT_EQ(r.num_rows(), 4u);
}

TEST(TableTest, AddPartitionValidatesWidth) {
  Table t(test_schema());
  Partition p;  // empty columns
  EXPECT_THROW(t.add_partition(std::move(p)), ivt::errors::Error);
}

TEST(TableTest, AddPartitionValidatesTypes) {
  Table t(test_schema());
  Partition p;
  p.columns.emplace_back(ValueType::String);  // wrong type for col 0
  p.columns.emplace_back(ValueType::String);
  EXPECT_THROW(t.add_partition(std::move(p)), ivt::errors::Error);
}

TEST(TableTest, AddPartitionRejectsRaggedColumns) {
  Table t(test_schema());
  Partition p = Table::make_partition(test_schema());
  p.columns[0].append_int64(1);
  // column 1 left empty -> ragged
  EXPECT_THROW(t.add_partition(std::move(p)), ivt::errors::Error);
}

TEST(TableTest, DisplayStringMentionsCounts) {
  const Table t = make_table(3, 0);
  const std::string s = t.to_display_string();
  EXPECT_NE(s.find("3 rows"), std::string::npos);
  EXPECT_NE(s.find("row0"), std::string::npos);
}

TEST(TableTest, DisplayStringTruncates) {
  const Table t = make_table(30, 0);
  const std::string s = t.to_display_string(5);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

TEST(RowViewTest, ByNameAccess) {
  const Table t = make_table(1, 0);
  t.for_each_row([](const RowView& row) {
    EXPECT_EQ(row.value("name").as_string(), "row0");
  });
}

TEST(TableBuilderTest, TypedPathMatchesBoxedPath) {
  TableBuilder builder(test_schema(), 2);
  for (int i = 0; i < 3; ++i) {
    Partition& p = builder.current_partition();
    p.columns[0].append_int64(i);
    p.columns[1].append_string("row" + std::to_string(i));
    builder.commit_row();
  }
  const Table t = builder.build();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_partitions(), 2u);
  EXPECT_EQ(t.collect_rows(), make_table(3, 2).collect_rows());
}

}  // namespace
}  // namespace ivt::dataflow
