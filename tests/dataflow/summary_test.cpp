#include "dataflow/summary.hpp"

#include <gtest/gtest.h>

namespace ivt::dataflow {
namespace {

Table sample_table() {
  Schema schema{{{"n", ValueType::Int64},
                 {"x", ValueType::Float64},
                 {"s", ValueType::String}}};
  TableBuilder b(schema, 4);
  for (std::int64_t i = 0; i < 10; ++i) {
    b.append_row({Value{i}, i == 5 ? Value{} : Value{static_cast<double>(i)},
                  Value{i % 2 == 0 ? "even" : "odd"}});
  }
  return b.build();
}

TEST(SummaryTest, CountsAndNulls) {
  Engine engine{{.workers = 2}};
  const auto summaries = summarize(engine, sample_table());
  ASSERT_EQ(summaries.size(), 3u);
  EXPECT_EQ(summaries[0].count, 10u);
  EXPECT_EQ(summaries[0].nulls, 0u);
  EXPECT_EQ(summaries[1].count, 9u);
  EXPECT_EQ(summaries[1].nulls, 1u);
}

TEST(SummaryTest, NumericStats) {
  Engine engine{{.workers = 2}};
  const auto summaries = summarize(engine, sample_table());
  EXPECT_DOUBLE_EQ(*summaries[0].min, 0.0);
  EXPECT_DOUBLE_EQ(*summaries[0].max, 9.0);
  EXPECT_DOUBLE_EQ(*summaries[0].mean, 4.5);
  // x skips 5 -> mean of remaining 9 values = (45-5)/9.
  EXPECT_DOUBLE_EQ(*summaries[1].mean, 40.0 / 9.0);
  EXPECT_FALSE(summaries[2].min.has_value());
}

TEST(SummaryTest, DistinctCounts) {
  Engine engine{{.workers = 2}};
  const auto summaries = summarize(engine, sample_table());
  EXPECT_EQ(summaries[0].distinct, 10u);
  EXPECT_EQ(summaries[2].distinct, 2u);
  EXPECT_FALSE(summaries[2].distinct_capped);
}

TEST(SummaryTest, DistinctCapApplies) {
  Engine engine{{.workers = 2}};
  SummaryOptions options;
  options.distinct_cap = 4;
  const auto summaries = summarize(engine, sample_table(), options);
  EXPECT_TRUE(summaries[0].distinct_capped);
  EXPECT_EQ(summaries[0].distinct, 4u);
}

TEST(SummaryTest, EmptyTable) {
  Engine engine{{.workers = 1}};
  Table t(Schema{{{"x", ValueType::Float64}}});
  const auto summaries = summarize(engine, t);
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].count, 0u);
  EXPECT_FALSE(summaries[0].mean.has_value());
}

TEST(SummaryTest, DisplayContainsColumnNames) {
  Engine engine{{.workers = 1}};
  const std::string s =
      to_display_string(summarize(engine, sample_table()));
  EXPECT_NE(s.find("column"), std::string::npos);
  EXPECT_NE(s.find("mean"), std::string::npos);
  EXPECT_NE(s.find("float64"), std::string::npos);
}

TEST(SummaryTest, DeterministicAcrossWorkers) {
  Engine one{{.workers = 1}};
  Engine many{{.workers = 8}};
  const auto a = summarize(one, sample_table());
  const auto b = summarize(many, sample_table());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].count, b[i].count);
    EXPECT_EQ(a[i].distinct, b[i].distinct);
    EXPECT_EQ(a[i].mean, b[i].mean);
  }
}

}  // namespace
}  // namespace ivt::dataflow
