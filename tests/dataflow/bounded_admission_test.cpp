// Bounded task admission: ThreadPool::submit_bounded and
// Engine::parallel_for_bounded must cap tasks in flight (queued + running)
// at the admission limit — the property the streaming executor's memory
// bound rests on — while still running every task exactly once, surfacing
// exceptions, and degrading to deterministic inline execution with zero
// workers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dataflow/engine.hpp"
#include "dataflow/thread_pool.hpp"

namespace ivt::dataflow {
namespace {

using namespace std::chrono_literals;

TEST(SubmitBoundedTest, NeverExceedsAdmissionLimit) {
  constexpr std::size_t kLimit = 3;
  constexpr std::size_t kTasks = 64;
  ThreadPool pool(4);
  std::atomic<std::size_t> completed{0};
  std::size_t submitted = 0;
  std::size_t high_water = 0;
  for (std::size_t i = 0; i < kTasks; ++i) {
    pool.submit_bounded(
        [&completed] {
          std::this_thread::sleep_for(1ms);
          completed.fetch_add(1);  // last statement: leads the pool's count
        },
        kLimit);
    ++submitted;
    // `completed` can only lag the pool's internal accounting, so this
    // over-approximates in-flight; even the over-approximation must stay
    // within the limit.
    high_water = std::max(high_water, submitted - completed.load());
  }
  pool.wait_idle();
  EXPECT_EQ(completed.load(), kTasks);
  EXPECT_LE(high_water, kLimit);
}

TEST(SubmitBoundedTest, LimitZeroMeansOne) {
  ThreadPool pool(2);
  std::atomic<std::size_t> concurrent{0};
  std::atomic<std::size_t> peak{0};
  for (std::size_t i = 0; i < 16; ++i) {
    pool.submit_bounded(
        [&] {
          const std::size_t now = concurrent.fetch_add(1) + 1;
          std::size_t p = peak.load();
          while (now > p && !peak.compare_exchange_weak(p, now)) {
          }
          std::this_thread::sleep_for(500us);
          concurrent.fetch_sub(1);
        },
        0);
  }
  pool.wait_idle();
  EXPECT_EQ(peak.load(), 1u);
}

TEST(SubmitBoundedTest, SingleWorkerTightLimitDoesNotDeadlock) {
  // The submitter must help drain the queue when the window is full,
  // otherwise worker=1 limit=1 livelocks with a sleeping producer.
  ThreadPool pool(1);
  std::atomic<std::size_t> completed{0};
  for (std::size_t i = 0; i < 200; ++i) {
    pool.submit_bounded([&completed] { completed.fetch_add(1); }, 1);
  }
  pool.wait_idle();
  EXPECT_EQ(completed.load(), 200u);
}

TEST(SubmitBoundedTest, InlineModeRunsImmediatelyInOrder) {
  ThreadPool pool(0);
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < 8; ++i) {
    pool.submit_bounded([&order, i] { order.push_back(i); }, 2);
    // Inline mode executes before submit_bounded returns.
    ASSERT_EQ(order.size(), i + 1);
  }
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForBoundedTest, RunsEveryIndexExactlyOnce) {
  Engine engine({.workers = 4});
  constexpr std::size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  engine.parallel_for_bounded(kN, 4, [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForBoundedTest, RespectsExplicitLimit) {
  Engine engine({.workers = 8});
  constexpr std::size_t kLimit = 2;
  std::atomic<std::size_t> concurrent{0};
  std::atomic<std::size_t> peak{0};
  engine.parallel_for_bounded(64, kLimit, [&](std::size_t) {
    const std::size_t now = concurrent.fetch_add(1) + 1;
    std::size_t p = peak.load();
    while (now > p && !peak.compare_exchange_weak(p, now)) {
    }
    std::this_thread::sleep_for(500us);
    concurrent.fetch_sub(1);
  });
  EXPECT_GE(peak.load(), 1u);
  // Running tasks are a subset of in-flight tasks, so the concurrency
  // peak is bounded by the admission limit too.
  EXPECT_LE(peak.load(), kLimit);
}

TEST(ParallelForBoundedTest, DefaultLimitKeepsWorkersBusy) {
  Engine engine({.workers = 4});
  std::atomic<std::size_t> completed{0};
  // max_in_flight = 0 -> 2 x workers + 1: enough for full throughput.
  engine.parallel_for_bounded(100, 0, [&](std::size_t) {
    completed.fetch_add(1);
  });
  EXPECT_EQ(completed.load(), 100u);
}

TEST(ParallelForBoundedTest, PropagatesTaskException) {
  Engine engine({.workers = 4});
  EXPECT_THROW(
      engine.parallel_for_bounded(32, 3,
                                  [](std::size_t i) {
                                    if (i == 17) {
                                      throw std::runtime_error("boom");
                                    }
                                  }),
      std::runtime_error);
}

TEST(ParallelForBoundedTest, InlineEngineIsDeterministicallyOrdered) {
  Engine engine({.workers = 0, .inline_execution = true});
  EXPECT_EQ(engine.workers(), 0u);
  std::vector<std::size_t> order;
  engine.parallel_for_bounded(16, 2, [&](std::size_t i) {
    order.push_back(i);  // no mutex: single-threaded by contract
  });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForBoundedTest, ZeroTasksIsANoOp) {
  Engine engine({.workers = 2});
  engine.parallel_for_bounded(0, 3, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace ivt::dataflow
