#include "errors/error.hpp"
#include "dataflow/ops.hpp"

#include <gtest/gtest.h>

namespace ivt::dataflow {
namespace {

class OpsTest : public ::testing::Test {
 protected:
  Engine engine_{EngineConfig{.workers = 4, .default_partitions = 4}};

  static Schema people_schema() {
    return Schema{{{"id", ValueType::Int64},
                   {"city", ValueType::String},
                   {"score", ValueType::Float64}}};
  }

  static Table people(std::size_t partition_rows = 3) {
    TableBuilder b(people_schema(), partition_rows);
    const char* cities[] = {"muc", "ber", "muc", "ham", "ber",
                            "muc", "ham", "muc", "ber", "muc"};
    for (std::int64_t i = 0; i < 10; ++i) {
      b.append_row({Value{i}, Value{cities[i]},
                    Value{static_cast<double>(i) * 0.5}});
    }
    return b.build();
  }
};

TEST_F(OpsTest, FilterKeepsMatchingRows) {
  const Table t = people();
  const Table out = filter(engine_, t, [](const RowView& r) {
    return r.int64_at(0) % 2 == 0;
  });
  EXPECT_EQ(out.num_rows(), 5u);
  out.for_each_row(
      [](const RowView& r) { EXPECT_EQ(r.int64_at(0) % 2, 0); });
}

TEST_F(OpsTest, FilterPreservesOrder) {
  const Table out = filter(engine_, people(), [](const RowView& r) {
    return r.int64_at(0) >= 5;
  });
  std::vector<std::int64_t> ids;
  out.for_each_row([&](const RowView& r) { ids.push_back(r.int64_at(0)); });
  EXPECT_EQ(ids, (std::vector<std::int64_t>{5, 6, 7, 8, 9}));
}

TEST_F(OpsTest, ProjectSelectsAndReorders) {
  const Table out = project(engine_, people(), {"score", "id"});
  ASSERT_EQ(out.schema().size(), 2u);
  EXPECT_EQ(out.schema().field(0).name, "score");
  EXPECT_EQ(out.num_rows(), 10u);
}

TEST_F(OpsTest, WithColumnComputesValues) {
  const Table out = with_column(
      engine_, people(), {"double_id", ValueType::Int64},
      [](const RowView& r) { return Value{r.int64_at(0) * 2}; });
  out.for_each_row([&](const RowView& r) {
    EXPECT_EQ(r.int64_at(out.schema().require("double_id")),
              r.int64_at(0) * 2);
  });
}

TEST_F(OpsTest, MapRowsCanFanOut) {
  const Schema out_schema{{{"id", ValueType::Int64}}};
  const Table out = map_rows(
      engine_, people(), out_schema,
      [](const RowView& r, Partition& dst) {
        // Emit one row per unit of id (0..id-1 copies), i.e. id copies.
        for (std::int64_t k = 0; k < r.int64_at(0) % 3; ++k) {
          dst.columns[0].append_int64(r.int64_at(0));
        }
      });
  // ids mod 3: 0,1,2,0,1,2,... -> total = sum of (i%3) over 0..9 = 9
  EXPECT_EQ(out.num_rows(), 9u);
}

TEST_F(OpsTest, HashJoinInner) {
  const Table left = people();
  TableBuilder rb(
      Schema{{{"city", ValueType::String}, {"zip", ValueType::Int64}}}, 0);
  rb.append_row({Value{"muc"}, Value{std::int64_t{80331}}});
  rb.append_row({Value{"ber"}, Value{std::int64_t{10115}}});
  const Table right = rb.build();

  const Table out =
      hash_join(engine_, left, right, {"city"}, {"city"});
  // "ham" rows drop out: 10 - 2 = 8 rows.
  EXPECT_EQ(out.num_rows(), 8u);
  ASSERT_TRUE(out.schema().contains("zip"));
  out.for_each_row([&](const RowView& r) {
    const std::string& city = r.string_at(out.schema().require("city"));
    const std::int64_t zip = r.int64_at(out.schema().require("zip"));
    EXPECT_EQ(zip, city == "muc" ? 80331 : 10115);
  });
}

TEST_F(OpsTest, HashJoinLeftOuterKeepsUnmatched) {
  const Table left = people();
  TableBuilder rb(
      Schema{{{"city", ValueType::String}, {"zip", ValueType::Int64}}}, 0);
  rb.append_row({Value{"muc"}, Value{std::int64_t{80331}}});
  const Table right = rb.build();
  const Table out = hash_join(engine_, left, right, {"city"}, {"city"},
                              JoinType::LeftOuter);
  EXPECT_EQ(out.num_rows(), 10u);
  std::size_t nulls = 0;
  out.for_each_row([&](const RowView& r) {
    if (r.is_null(out.schema().require("zip"))) ++nulls;
  });
  EXPECT_EQ(nulls, 5u);  // ber(3) + ham(2)
}

TEST_F(OpsTest, HashJoinDuplicateRightKeysMultiply) {
  TableBuilder rb(
      Schema{{{"city", ValueType::String}, {"tag", ValueType::String}}}, 0);
  rb.append_row({Value{"muc"}, Value{"a"}});
  rb.append_row({Value{"muc"}, Value{"b"}});
  const Table right = rb.build();
  const Table out = hash_join(engine_, people(), right, {"city"}, {"city"});
  EXPECT_EQ(out.num_rows(), 10u);  // 5 muc rows x 2 tags
}

TEST_F(OpsTest, HashJoinNameClashThrows) {
  EXPECT_THROW(hash_join(engine_, people(), people(), {"city"}, {"city"}),
               ivt::errors::Error);
}

TEST_F(OpsTest, HashJoinEmptyKeysThrows) {
  EXPECT_THROW(hash_join(engine_, people(), people(), {}, {}),
               ivt::errors::Error);
}

TEST_F(OpsTest, UnionAllConcatenates) {
  const Table out = union_all(people(), people());
  EXPECT_EQ(out.num_rows(), 20u);
}

TEST_F(OpsTest, UnionAllSchemaMismatchThrows) {
  EXPECT_THROW(
      union_all(people(), project(engine_, people(), {"id"})),
      ivt::errors::Error);
}

TEST_F(OpsTest, SortByDescending) {
  const Table out = sort_by(engine_, people(), {{"id", false}});
  std::vector<std::int64_t> ids;
  out.for_each_row([&](const RowView& r) { ids.push_back(r.int64_at(0)); });
  EXPECT_EQ(ids, (std::vector<std::int64_t>{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}));
}

TEST_F(OpsTest, SortIsStableOnTies) {
  const Table out = sort_by(engine_, people(), {{"city", true}});
  // Within one city, ids must stay ascending (input order).
  std::string last_city;
  std::int64_t last_id = -1;
  out.for_each_row([&](const RowView& r) {
    const std::string& city = r.string_at(1);
    if (city == last_city) EXPECT_GT(r.int64_at(0), last_id);
    last_city = city;
    last_id = r.int64_at(0);
  });
}

TEST_F(OpsTest, SortNullsFirst) {
  TableBuilder b(Schema{{{"v", ValueType::Int64}}}, 0);
  b.append_row({Value{std::int64_t{2}}});
  b.append_row({Value{}});
  b.append_row({Value{std::int64_t{1}}});
  const Table out = sort_by(engine_, b.build(), {{"v", true}});
  const auto rows = out.collect_rows();
  EXPECT_TRUE(rows[0][0].is_null());
  EXPECT_EQ(rows[1][0], Value{std::int64_t{1}});
}

TEST_F(OpsTest, DistinctKeepsFirstOccurrence) {
  const Table out = distinct(engine_, people(), {"city"});
  EXPECT_EQ(out.num_rows(), 3u);
  const auto rows = out.collect_rows();
  EXPECT_EQ(rows[0][1], Value{"muc"});
  EXPECT_EQ(rows[1][1], Value{"ber"});
  EXPECT_EQ(rows[2][1], Value{"ham"});
}

TEST_F(OpsTest, GroupByCountSumMinMax) {
  const Table out = group_by(
      engine_, people(), {"city"},
      {{AggOp::Count, "", "n"},
       {AggOp::Sum, "score", "total"},
       {AggOp::Min, "id", "min_id"},
       {AggOp::Max, "id", "max_id"}});
  ASSERT_EQ(out.num_rows(), 3u);
  const auto& schema = out.schema();
  out.for_each_row([&](const RowView& r) {
    const std::string& city = r.string_at(schema.require("city"));
    const std::int64_t n = r.int64_at(schema.require("n"));
    if (city == "muc") {
      EXPECT_EQ(n, 5);
      EXPECT_EQ(r.int64_at(schema.require("min_id")), 0);
      EXPECT_EQ(r.int64_at(schema.require("max_id")), 9);
      // ids 0,2,5,7,9 -> scores 0,1,2.5,3.5,4.5 = 11.5
      EXPECT_DOUBLE_EQ(r.float64_at(schema.require("total")), 11.5);
    } else if (city == "ham") {
      EXPECT_EQ(n, 2);
    }
  });
}

TEST_F(OpsTest, GroupByFirstLastMeanFollowLogicalOrder) {
  const Table out = group_by(engine_, people(), {"city"},
                             {{AggOp::First, "id", "first_id"},
                              {AggOp::Last, "id", "last_id"},
                              {AggOp::Mean, "id", "mean_id"}});
  out.for_each_row([&](const RowView& r) {
    const std::string& city = r.string_at(0);
    if (city == "ber") {
      EXPECT_EQ(r.int64_at(out.schema().require("first_id")), 1);
      EXPECT_EQ(r.int64_at(out.schema().require("last_id")), 8);
      EXPECT_DOUBLE_EQ(r.float64_at(out.schema().require("mean_id")),
                       (1.0 + 4.0 + 8.0) / 3.0);
    }
  });
}

TEST_F(OpsTest, GroupByGroupOrderIsFirstOccurrence) {
  const Table out =
      group_by(engine_, people(), {"city"}, {{AggOp::Count, "", "n"}});
  const auto rows = out.collect_rows();
  EXPECT_EQ(rows[0][0], Value{"muc"});
  EXPECT_EQ(rows[1][0], Value{"ber"});
  EXPECT_EQ(rows[2][0], Value{"ham"});
}

TEST_F(OpsTest, WithLagPerGroup) {
  const Table out = with_lag(engine_, people(), {"city"}, "id", "prev_id");
  const std::size_t lag_col = out.schema().require("prev_id");
  std::size_t nulls = 0;
  out.for_each_row([&](const RowView& r) {
    if (r.is_null(lag_col)) ++nulls;
  });
  EXPECT_EQ(nulls, 3u);  // one per city
  // Row id=2 (muc) must see previous muc id=0.
  out.for_each_row([&](const RowView& r) {
    if (r.int64_at(0) == 2) EXPECT_EQ(r.int64_at(lag_col), 0);
    if (r.int64_at(0) == 9) EXPECT_EQ(r.int64_at(lag_col), 7);
  });
}

TEST_F(OpsTest, ResultsIndependentOfWorkerCount) {
  Engine one{EngineConfig{.workers = 1, .default_partitions = 4}};
  Engine many{EngineConfig{.workers = 8, .default_partitions = 4}};
  const Table t = people(2);
  auto run = [&](Engine& e) {
    const Table f = filter(e, t, [](const RowView& r) {
      return r.int64_at(0) != 3;
    });
    return group_by(e, f, {"city"}, {{AggOp::Count, "", "n"}}).collect_rows();
  };
  EXPECT_EQ(run(one), run(many));
}

TEST_F(OpsTest, FilterPropagatesPredicateExceptions) {
  EXPECT_THROW(
      filter(engine_, people(), [](const RowView&) -> bool {
        throw std::runtime_error("boom");
      }),
      std::runtime_error);
}

}  // namespace
}  // namespace ivt::dataflow
