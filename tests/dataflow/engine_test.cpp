#include "dataflow/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace ivt::dataflow {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  int ran = 0;
  pool.submit([&ran] { ++ran; });
  EXPECT_EQ(ran, 1);   // executed synchronously in submit()
  pool.wait_idle();    // regression: must not deadlock with no workers
  pool.help_until_idle();
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(EngineTest, DefaultsDeriveFromWorkers) {
  Engine e{EngineConfig{.workers = 3}};
  EXPECT_EQ(e.workers(), 3u);
  EXPECT_EQ(e.default_partitions(), 12u);
}

TEST(EngineTest, ParallelForCoversRange) {
  Engine e{EngineConfig{.workers = 4}};
  std::vector<int> hits(50, 0);
  e.parallel_for(50, [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 50);
}

TEST(EngineTest, ParallelForZeroIsNoop) {
  Engine e{EngineConfig{.workers = 2}};
  e.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(EngineTest, ParallelForRethrowsTaskException) {
  Engine e{EngineConfig{.workers = 4}};
  EXPECT_THROW(e.parallel_for(8,
                              [](std::size_t i) {
                                if (i == 3) {
                                  throw std::runtime_error("task failed");
                                }
                              }),
               std::runtime_error);
}

TEST(EngineTest, MapPartitionsRecordsMetrics) {
  Engine e{EngineConfig{.workers = 2}};
  Schema schema{{{"v", ValueType::Int64}}};
  TableBuilder b(schema, 2);
  for (std::int64_t i = 0; i < 6; ++i) b.append_row({Value{i}});
  const Table t = b.build();

  const Table out = e.map_partitions(
      "double", t, schema, [&](const Partition& p, std::size_t) {
        Partition q = Table::make_partition(schema);
        for (std::size_t r = 0; r < p.num_rows(); ++r) {
          q.columns[0].append_int64(p.columns[0].int64_at(r) * 2);
        }
        return q;
      });
  EXPECT_EQ(out.num_rows(), 6u);
  const auto metrics = e.metrics();
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_EQ(metrics[0].name, "double");
  EXPECT_EQ(metrics[0].tasks, 3u);
  EXPECT_EQ(metrics[0].input_rows, 6u);
  EXPECT_EQ(metrics[0].output_rows, 6u);
}

TEST(EngineTest, ClearMetrics) {
  Engine e{EngineConfig{.workers = 1}};
  e.record_stage({"x", 1, 0, 0, 0.0});
  EXPECT_EQ(e.metrics().size(), 1u);
  e.clear_metrics();
  EXPECT_TRUE(e.metrics().empty());
}

TEST(EngineTest, MapPartitionsPreservesPartitionIndexOrder) {
  Engine e{EngineConfig{.workers = 8}};
  Schema schema{{{"v", ValueType::Int64}}};
  TableBuilder b(schema, 1);
  for (std::int64_t i = 0; i < 16; ++i) b.append_row({Value{i}});
  const Table t = b.build();
  const Table out = e.map_partitions(
      "ident", t, schema,
      [&](const Partition& p, std::size_t) {
        Partition q = Table::make_partition(schema);
        q.columns[0].append_from(p.columns[0], 0);
        return q;
      });
  std::vector<std::int64_t> values;
  out.for_each_row(
      [&](const RowView& r) { values.push_back(r.int64_at(0)); });
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_EQ(values[i], i);
}

TEST(EngineTest, TaskOverheadSlowsExecution) {
  Engine fast{EngineConfig{.workers = 1}};
  Engine slow{EngineConfig{
      .workers = 1, .task_overhead = std::chrono::microseconds(2000)}};
  const auto time_one = [](Engine& e) {
    const auto start = std::chrono::steady_clock::now();
    e.parallel_for(10, [](std::size_t) {});
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  const double t_fast = time_one(fast);
  const double t_slow = time_one(slow);
  EXPECT_GT(t_slow, t_fast);
  // 10 tasks x 2 ms, shared between the caller and the worker thread
  // (caller helps drain the queue), so at least ~5 tasks' worth of delay.
  EXPECT_GE(t_slow, 0.008);
}

}  // namespace
}  // namespace ivt::dataflow
