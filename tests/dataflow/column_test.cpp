#include "errors/error.hpp"
#include "dataflow/column.hpp"

#include <gtest/gtest.h>

namespace ivt::dataflow {
namespace {

TEST(ColumnTest, TypedAppendAndRead) {
  Column c(ValueType::Int64);
  c.append_int64(1);
  c.append_int64(-5);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.int64_at(0), 1);
  EXPECT_EQ(c.int64_at(1), -5);
  EXPECT_FALSE(c.is_null(0));
}

TEST(ColumnTest, NullsTracked) {
  Column c(ValueType::Float64);
  c.append_float64(1.5);
  c.append_null();
  ASSERT_EQ(c.size(), 2u);
  EXPECT_FALSE(c.is_null(0));
  EXPECT_TRUE(c.is_null(1));
  EXPECT_TRUE(c.value_at(1).is_null());
}

TEST(ColumnTest, BoxedAppend) {
  Column c(ValueType::String);
  c.append(Value{"abc"});
  c.append(Value{});
  EXPECT_EQ(c.string_at(0), "abc");
  EXPECT_TRUE(c.is_null(1));
}

TEST(ColumnTest, TypeMismatchThrows) {
  Column c(ValueType::Int64);
  EXPECT_THROW(c.append_string("x"), ivt::errors::Error);
  EXPECT_THROW(c.append(Value{1.5}), ivt::errors::Error);
}

TEST(ColumnTest, Int64WidensIntoFloat64Column) {
  Column c(ValueType::Float64);
  c.append(Value{std::int64_t{3}});
  EXPECT_DOUBLE_EQ(c.float64_at(0), 3.0);
}

TEST(ColumnTest, NumberAtWidens) {
  Column c(ValueType::Int64);
  c.append_int64(9);
  EXPECT_DOUBLE_EQ(c.number_at(0), 9.0);
}

TEST(ColumnTest, AppendFromCopiesCellIncludingNull) {
  Column src(ValueType::String);
  src.append_string("x");
  src.append_null();
  Column dst(ValueType::String);
  dst.append_from(src, 0);
  dst.append_from(src, 1);
  EXPECT_EQ(dst.string_at(0), "x");
  EXPECT_TRUE(dst.is_null(1));
}

TEST(ColumnTest, AppendFromWidensInt64ToFloat64) {
  Column src(ValueType::Int64);
  src.append_int64(7);
  Column dst(ValueType::Float64);
  dst.append_from(src, 0);
  EXPECT_DOUBLE_EQ(dst.float64_at(0), 7.0);
}

TEST(ColumnTest, AppendFromTypeMismatchThrows) {
  Column src(ValueType::String);
  src.append_string("x");
  Column dst(ValueType::Int64);
  EXPECT_THROW(dst.append_from(src, 0), ivt::errors::Error);
}

TEST(ColumnTest, ValueAtBoxesCorrectly) {
  Column c(ValueType::Int64);
  c.append_int64(11);
  EXPECT_EQ(c.value_at(0), Value{std::int64_t{11}});
}

TEST(ColumnTest, MoveAppendStealsString) {
  Column c(ValueType::String);
  c.append(Value{std::string(100, 'a')});
  EXPECT_EQ(c.string_at(0).size(), 100u);
}

}  // namespace
}  // namespace ivt::dataflow
