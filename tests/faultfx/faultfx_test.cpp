// Failpoint injection unit tests: recipe parsing, arming/disarming,
// deterministic trigger counts, every=N cadence, corrupt-action bit
// flips, injected error categories, and the IVT_FAULTFX=OFF contract.
#include "faultfx/faultfx.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "errors/error.hpp"

namespace ivt::faultfx {
namespace {

/// Every test leaves the global registry disarmed (the registry is
/// process-wide, so leaks would bleed into unrelated tests).
class FaultfxTest : public ::testing::Test {
 protected:
  void TearDown() override { disarm_all(); }
};

TEST_F(FaultfxTest, ParseMinimalSpec) {
  const auto specs = parse_recipe("colstore.decode_chunk:error").value();
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].site, "colstore.decode_chunk");
  EXPECT_EQ(specs[0].action, Action::Error);
  EXPECT_EQ(specs[0].probability, 1.0);
  EXPECT_EQ(specs[0].seed, 0u);
  EXPECT_EQ(specs[0].every, 0u);
  EXPECT_EQ(specs[0].category, errors::Category::Decode);
}

TEST_F(FaultfxTest, ParseFullRecipe) {
  const auto specs =
      parse_recipe(
          "a:error:0.01:seed=7:cat=resource,b:corrupt:0.5,c:delay:delay_us=50")
          .value();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].probability, 0.01);
  EXPECT_EQ(specs[0].seed, 7u);
  EXPECT_EQ(specs[0].category, errors::Category::Resource);
  EXPECT_EQ(specs[1].action, Action::Corrupt);
  EXPECT_EQ(specs[1].probability, 0.5);
  EXPECT_EQ(specs[2].action, Action::Delay);
  EXPECT_EQ(specs[2].delay_us, 50u);
}

TEST_F(FaultfxTest, ParseEveryN) {
  const auto specs = parse_recipe("a:error:every=3").value();
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].every, 3u);
}

TEST_F(FaultfxTest, ParseErrorsAreTypedSpecErrors) {
  const char* bad_recipes[] = {
      "noaction",          // missing action
      "a:explode",         // unknown action
      "a:error:2.0",       // probability out of range
      "a:error:bogus=1",   // unknown key
      "a:error:seed=xyz",  // bad integer
      "a:error:cat=nope",  // unknown category
      ":error",            // empty site
  };
  for (const char* recipe : bad_recipes) {
    const auto result = parse_recipe(recipe);
    ASSERT_FALSE(result.ok()) << recipe;
    EXPECT_EQ(result.error().category(), errors::Category::Spec) << recipe;
  }
  // arm() throws instead of silently running without faults.
  EXPECT_THROW(arm("a:explode"), errors::Error);
}

TEST_F(FaultfxTest, ArmTriggerDisarm) {
  EXPECT_FALSE(any_armed());
  if (!enabled()) {
    // Compiled out: arming is a no-op and sites stay inert.
    EXPECT_EQ(arm("faultfx.test.always:error"), 0u);
    EXPECT_FALSE(any_armed());
    FAULT_POINT("faultfx.test.always");
    EXPECT_EQ(triggered("faultfx.test.always"), 0u);
    return;
  }
  EXPECT_EQ(arm("faultfx.test.always:error"), 1u);
  EXPECT_TRUE(any_armed());
  try {
    FAULT_POINT("faultfx.test.always");
    FAIL() << "armed always-on site did not throw";
  } catch (const errors::Error& e) {
    EXPECT_EQ(e.category(), errors::Category::Decode);
    EXPECT_NE(std::string(e.message()).find("faultfx.test.always"),
              std::string::npos);
  }
  EXPECT_EQ(triggered("faultfx.test.always"), 1u);
  EXPECT_EQ(evaluations("faultfx.test.always"), 1u);

  disarm_all();
  EXPECT_FALSE(any_armed());
  FAULT_POINT("faultfx.test.always");  // inert again
  EXPECT_EQ(triggered("faultfx.test.always"), 1u);
}

TEST_F(FaultfxTest, InjectedCategoryIsConfigurable) {
  if (!enabled()) GTEST_SKIP() << "faultfx compiled out";
  arm("faultfx.test.cat:error:cat=resource");
  try {
    FAULT_POINT("faultfx.test.cat");
    FAIL() << "did not throw";
  } catch (const errors::Error& e) {
    EXPECT_EQ(e.category(), errors::Category::Resource);
    EXPECT_TRUE(errors::is_transient(e.category()));
  }
}

TEST_F(FaultfxTest, EveryNTriggersExactly) {
  if (!enabled()) GTEST_SKIP() << "faultfx compiled out";
  arm("faultfx.test.every:error:every=3");
  std::size_t thrown = 0;
  for (int i = 0; i < 9; ++i) {
    try {
      FAULT_POINT("faultfx.test.every");
    } catch (const errors::Error&) {
      ++thrown;
    }
  }
  EXPECT_EQ(thrown, 3u);  // evaluations 3, 6, 9
  EXPECT_EQ(triggered("faultfx.test.every"), 3u);
  EXPECT_EQ(evaluations("faultfx.test.every"), 9u);
}

TEST_F(FaultfxTest, ProbabilisticTriggerCountIsDeterministic) {
  if (!enabled()) GTEST_SKIP() << "faultfx compiled out";
  // The trigger decision is a pure function of (seed, evaluation index),
  // so two identical runs produce identical trigger counts.
  const auto run_once = [](const char* site_name, const std::string& recipe) {
    arm(recipe);
    std::size_t thrown = 0;
    for (int i = 0; i < 1000; ++i) {
      try {
        detail::evaluate(detail::site(site_name), site_name);
      } catch (const errors::Error&) {
        ++thrown;
      }
    }
    disarm_all();
    return thrown;
  };
  const std::size_t a =
      run_once("faultfx.test.p1", "faultfx.test.p1:error:0.1:seed=42");
  const std::size_t b =
      run_once("faultfx.test.p2", "faultfx.test.p2:error:0.1:seed=42");
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 50u);   // ~100 expected out of 1000
  EXPECT_LT(a, 200u);
}

TEST_F(FaultfxTest, CorruptFlipsExactlyOneBit) {
  if (!enabled()) GTEST_SKIP() << "faultfx compiled out";
  arm("faultfx.test.corrupt:corrupt:seed=9");
  std::vector<std::uint8_t> buf(32, 0x00);
  FAULT_POINT_MUTATE("faultfx.test.corrupt", buf.data(), buf.size());
  std::size_t bits_set = 0;
  for (const std::uint8_t byte : buf) {
    for (int b = 0; b < 8; ++b) bits_set += (byte >> b) & 1;
  }
  EXPECT_EQ(bits_set, 1u);
  EXPECT_EQ(triggered("faultfx.test.corrupt"), 1u);
}

TEST_F(FaultfxTest, CorruptIsInertWithoutBuffer) {
  if (!enabled()) GTEST_SKIP() << "faultfx compiled out";
  arm("faultfx.test.nobuf:corrupt");
  // FAULT_POINT passes no buffer; the corrupt action must not crash.
  FAULT_POINT("faultfx.test.nobuf");
  EXPECT_EQ(triggered("faultfx.test.nobuf"), 1u);
}

TEST_F(FaultfxTest, ZeroProbabilityNeverTriggers) {
  if (!enabled()) GTEST_SKIP() << "faultfx compiled out";
  arm("faultfx.test.zero:error:0.0");
  for (int i = 0; i < 100; ++i) FAULT_POINT("faultfx.test.zero");
  EXPECT_EQ(triggered("faultfx.test.zero"), 0u);
  EXPECT_EQ(evaluations("faultfx.test.zero"), 100u);
}

}  // namespace
}  // namespace ivt::faultfx
