#include "bench_util.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace ivt::bench {
namespace {

TEST(BenchUtilTest, MaxRssToBytesNormalizesPerPlatformUnits) {
  // macOS getrusage reports bytes; Linux reports KiB. The helper must
  // normalize both to bytes.
  EXPECT_EQ(maxrss_to_bytes(1048576, /*platform_reports_bytes=*/true),
            1048576u);
  EXPECT_EQ(maxrss_to_bytes(1024, /*platform_reports_bytes=*/false),
            1024u * 1024u);
  EXPECT_EQ(maxrss_to_bytes(0, true), 0u);
  EXPECT_EQ(maxrss_to_bytes(0, false), 0u);
}

TEST(BenchUtilTest, PeakRssIsPlausiblyBytes) {
  // Guard against a unit regression: a running test process occupies at
  // least 1 MiB resident, so a KiB-valued result (a few thousand) would
  // fail, while a byte-valued result passes. Touch some memory first so
  // the floor holds even on a minimal libc.
  std::vector<std::uint8_t> ballast(4 * 1024 * 1024, 1);
  volatile std::uint8_t sink = ballast[ballast.size() / 2];
  (void)sink;
  const std::uint64_t rss = peak_rss_bytes();
  if (rss == 0) GTEST_SKIP() << "platform offers no getrusage";
  EXPECT_GE(rss, 1024u * 1024u);
}

TEST(BenchUtilTest, JsonRecordRendersTypedFields) {
  const std::string line = JsonRecord()
                               .add("name", "fig\"5\"")
                               .add("time_ms", 1.5)
                               .add("rows", std::uint64_t{42})
                               .add("quick", true)
                               .to_line();
  EXPECT_EQ(line,
            "{\"name\": \"fig\\\"5\\\"\", \"time_ms\": 1.5, "
            "\"rows\": 42, \"quick\": true}");
}

TEST(BenchUtilTest, RobustnessCountersReadFromRegistry) {
#if IVT_OBS_ENABLED
  obs::Registry::instance().reset();
  obs::Registry::instance().counter("engine.task_retries").add(3);
  obs::Registry::instance().counter("colstore.chunks_quarantined").add(2);
  obs::Registry::instance().counter("errors.total").add(5);
  const RobustnessCounters c = read_robustness_counters();
  EXPECT_EQ(c.task_retries, 3u);
  EXPECT_EQ(c.chunks_quarantined, 2u);
  EXPECT_EQ(c.sequences_dropped, 0u);  // never bumped -> fallback
  EXPECT_EQ(c.errors_total, 5u);
  obs::Registry::instance().reset();
#else
  // No-op registry: every counter reads as zero.
  const RobustnessCounters c = read_robustness_counters();
  EXPECT_EQ(c.task_retries, 0u);
  EXPECT_EQ(c.errors_total, 0u);
#endif
}

TEST(BenchUtilTest, RobustnessCountersReadStaticAnalysisEnv) {
  // CI's lint/TSan lanes export their summaries; unset or garbage values
  // must fall back to zero, never abort a bench run.
  ::setenv("IVT_LINT_FINDINGS", "4", 1);
  ::setenv("IVT_LINT_EXEMPTED", "56", 1);
  ::setenv("IVT_TSAN_RACES", "not-a-number", 1);
  ::setenv("IVT_ANALYZER_FINDINGS", "2", 1);
  ::setenv("IVT_LOCK_GRAPH_NODES", "15", 1);
  ::setenv("IVT_LAYER_VIOLATIONS", "1", 1);
  const RobustnessCounters c = read_robustness_counters();
  EXPECT_EQ(c.lint_findings, 4u);
  EXPECT_EQ(c.lint_exempted, 56u);
  EXPECT_EQ(c.tsan_races, 0u);
  EXPECT_EQ(c.analyzer_findings, 2u);
  EXPECT_EQ(c.lock_graph_nodes, 15u);
  EXPECT_EQ(c.layer_violations, 1u);
  ::unsetenv("IVT_LINT_FINDINGS");
  ::unsetenv("IVT_LINT_EXEMPTED");
  ::unsetenv("IVT_TSAN_RACES");
  ::unsetenv("IVT_ANALYZER_FINDINGS");
  ::unsetenv("IVT_LOCK_GRAPH_NODES");
  ::unsetenv("IVT_LAYER_VIOLATIONS");
  const RobustnessCounters unset = read_robustness_counters();
  EXPECT_EQ(unset.lint_findings, 0u);
  EXPECT_EQ(unset.lint_exempted, 0u);
  EXPECT_EQ(unset.analyzer_findings, 0u);
}

TEST(BenchUtilTest, RobustnessFieldsRenderIntoRecord) {
  RobustnessCounters c;
  c.task_retries = 1;
  c.chunks_quarantined = 2;
  c.sequences_dropped = 3;
  c.errors_total = 6;
  c.lint_findings = 4;
  c.lint_exempted = 5;
  c.tsan_races = 7;
  c.analyzer_findings = 8;
  c.lock_graph_nodes = 15;
  c.layer_violations = 9;
  JsonRecord record;
  add_robustness_fields(record, c);
  EXPECT_EQ(record.to_line(),
            "{\"task_retries\": 1, \"chunks_quarantined\": 2, "
            "\"sequences_dropped\": 3, \"errors_total\": 6, "
            "\"lint_findings\": 4, \"lint_exempted\": 5, "
            "\"tsan_races\": 7, \"analyzer_findings\": 8, "
            "\"lock_graph_nodes\": 15, \"layer_violations\": 9}");
}

TEST(BenchUtilTest, MetricsSnapshotWritesValidFile) {
  ::setenv("IVT_BENCH_JSON_DIR", ::testing::TempDir().c_str(), 1);
  const std::string path = write_metrics_snapshot("util_test");
  ::unsetenv("IVT_BENCH_JSON_DIR");
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "snapshot not written: " << path;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"metrics\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ivt::bench
