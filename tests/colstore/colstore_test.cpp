// Columnar container (.ivc) unit tests: round trips, chunk rollover and
// zone-map contents, predicate pushdown (ids / buses / time / exact
// (b_id, m_id) pairs) with pruning statistics, parallel == sequential
// scans, the streaming .ivt -> .ivc packer, writer misuse, and corrupted
// inputs throwing instead of crashing.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "colstore/columnar_reader.hpp"
#include "colstore/columnar_writer.hpp"
#include "core/interpret.hpp"
#include "errors/error.hpp"
#include "core/urel.hpp"
#include "dataflow/engine.hpp"
#include "dataflow/thread_pool.hpp"
#include "tracefile/binary_format.hpp"
#include "tracefile/trace.hpp"

#include "../core/test_fixtures.hpp"

namespace ivt::colstore {
namespace {

using tracefile::Trace;
using tracefile::TraceRecord;

TraceRecord make_record(std::int64_t t_ns, const std::string& bus,
                        std::int64_t message_id,
                        std::initializer_list<std::uint8_t> payload = {0x01,
                                                                       0x02}) {
  TraceRecord rec;
  rec.t_ns = t_ns;
  rec.bus = bus;
  rec.message_id = message_id;
  rec.payload = payload;
  return rec;
}

Trace sample_trace() {
  Trace trace;
  trace.vehicle = "V042";
  trace.journey = "J3";
  trace.start_unix_ns = 1'700'000'000'000'000'000;
  trace.records = {
      make_record(0, "FC", 3, {0xAA, 0xBB, 0xCC, 0xDD}),
      make_record(500, "KC", 7, {}),
      make_record(1'000, "FC", 3, {0x00}),
      make_record(1'500, "K-LIN", 11, {0xFF, 0xFE}),
      make_record(2'000, "KC", 7, {0x10, 0x20, 0x30}),
  };
  trace.records[3].protocol = protocol::Protocol::Lin;
  trace.records[4].flags = TraceRecord::kFlagErrorFrame;
  return trace;
}

/// Serialize a trace to an in-memory .ivc image.
std::string to_ivc_buffer(const Trace& trace, std::size_t chunk_rows) {
  std::ostringstream out(std::ios::binary);
  ColumnarWriter writer(out, trace.vehicle, trace.journey,
                        trace.start_unix_ns, {.chunk_rows = chunk_rows});
  for (const TraceRecord& rec : trace.records) writer.write(rec);
  writer.finish();
  return out.str();
}

/// A trace laid out so chunk boundaries separate ids, buses and times:
/// chunk c (of 4 rows) has ids in [100c, 100c+3], bus "BUS<c>", and
/// t_ns in [1000c, 1000c+3].
Trace clustered_trace(std::size_t chunks) {
  Trace trace;
  trace.vehicle = "V";
  trace.journey = "J";
  for (std::size_t c = 0; c < chunks; ++c) {
    for (std::size_t r = 0; r < 4; ++r) {
      trace.records.push_back(make_record(
          static_cast<std::int64_t>(1'000 * c + r),
          "BUS" + std::to_string(c),
          static_cast<std::int64_t>(100 * c + r)));
    }
  }
  return trace;
}

TEST(ColstoreTest, RoundTripTraceAndTable) {
  const Trace t = sample_trace();
  const ColumnarReader reader =
      ColumnarReader::from_buffer(to_ivc_buffer(t, 2));
  EXPECT_EQ(reader.vehicle(), t.vehicle);
  EXPECT_EQ(reader.journey(), t.journey);
  EXPECT_EQ(reader.start_unix_ns(), t.start_unix_ns);
  EXPECT_EQ(reader.num_rows(), t.records.size());

  const Trace back = reader.read_trace();
  EXPECT_EQ(back.vehicle, t.vehicle);
  EXPECT_EQ(back.records, t.records);

  const dataflow::Table table = reader.scan();
  EXPECT_EQ(table.schema(), tracefile::kb_schema());
  EXPECT_EQ(table.collect_rows(),
            tracefile::to_kb_table(t, 1).collect_rows());
}

TEST(ColstoreTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/colstore_rt.ivc";
  const Trace t = sample_trace();
  save_trace_columnar(t, path, {.chunk_rows = 3});
  EXPECT_TRUE(is_columnar_trace_file(path));
  const ColumnarReader reader(path);
  EXPECT_EQ(reader.read_trace().records, t.records);
  EXPECT_EQ(load_any_trace(path).records, t.records);
}

TEST(ColstoreTest, EmptyTrace) {
  Trace t;
  t.vehicle = "V";
  t.journey = "J";
  const ColumnarReader reader =
      ColumnarReader::from_buffer(to_ivc_buffer(t, 16));
  EXPECT_EQ(reader.num_chunks(), 0u);
  EXPECT_EQ(reader.num_rows(), 0u);
  EXPECT_TRUE(reader.read_trace().records.empty());
  const dataflow::Table table = reader.scan();
  EXPECT_EQ(table.num_rows(), 0u);
  EXPECT_EQ(table.schema(), tracefile::kb_schema());
}

TEST(ColstoreTest, ChunkRolloverAndZoneMaps) {
  const Trace t = clustered_trace(3);  // 12 records, chunk_rows = 4
  const ColumnarReader reader =
      ColumnarReader::from_buffer(to_ivc_buffer(t, 4));
  ASSERT_EQ(reader.num_chunks(), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    const ChunkInfo& info = reader.chunk(c);
    EXPECT_EQ(info.row_count, 4u);
    EXPECT_EQ(info.min_t_ns, static_cast<std::int64_t>(1'000 * c));
    EXPECT_EQ(info.max_t_ns, static_cast<std::int64_t>(1'000 * c + 3));
    EXPECT_EQ(info.min_message_id, static_cast<std::int64_t>(100 * c));
    EXPECT_EQ(info.max_message_id, static_cast<std::int64_t>(100 * c + 3));
    // Exactly one bus per chunk in this layout.
    for (std::uint16_t b = 0; b < 3; ++b) {
      EXPECT_EQ(info.has_bus(b), b == c) << "chunk " << c << " bus " << b;
    }
  }
}

TEST(ColstoreTest, UnevenLastChunk) {
  Trace t = clustered_trace(2);
  t.records.push_back(make_record(9'999, "TAIL", 999));
  const ColumnarReader reader =
      ColumnarReader::from_buffer(to_ivc_buffer(t, 4));
  ASSERT_EQ(reader.num_chunks(), 3u);
  EXPECT_EQ(reader.chunk(2).row_count, 1u);
  EXPECT_EQ(reader.num_rows(), 9u);
  EXPECT_EQ(reader.read_trace().records, t.records);
}

TEST(ColstoreTest, MessageIdPredicatePrunesChunks) {
  const Trace t = clustered_trace(4);
  const ColumnarReader reader =
      ColumnarReader::from_buffer(to_ivc_buffer(t, 4));
  ScanPredicate pred;
  pred.message_ids = {101, 103};  // chunk 1 only
  ScanStats stats;
  const dataflow::Table out = reader.scan(pred, &stats);
  EXPECT_EQ(stats.chunks_total, 4u);
  EXPECT_EQ(stats.chunks_scanned, 1u);
  EXPECT_EQ(stats.rows_considered, 4u);
  EXPECT_EQ(stats.rows_emitted, 2u);
  EXPECT_EQ(out.num_rows(), 2u);
  for (const auto& row : out.collect_rows()) {
    const std::int64_t mid = row[3].as_int64();
    EXPECT_TRUE(mid == 101 || mid == 103);
  }
}

TEST(ColstoreTest, TimeRangePredicateInclusiveBounds) {
  const Trace t = clustered_trace(4);  // t_ns 0..3, 1000..1003, ...
  const ColumnarReader reader =
      ColumnarReader::from_buffer(to_ivc_buffer(t, 4));
  ScanPredicate pred;
  pred.has_time_range = true;
  pred.min_t_ns = 1'003;  // last row of chunk 1
  pred.max_t_ns = 2'001;  // second row of chunk 2
  ScanStats stats;
  const dataflow::Table out = reader.scan(pred, &stats);
  EXPECT_EQ(stats.chunks_scanned, 2u);
  ASSERT_EQ(out.num_rows(), 3u);
  const auto rows = out.collect_rows();
  EXPECT_EQ(rows.front()[0].as_int64(), 1'003);
  EXPECT_EQ(rows.back()[0].as_int64(), 2'001);
}

TEST(ColstoreTest, BusPredicatePrunesViaBitmap) {
  const Trace t = clustered_trace(3);
  const ColumnarReader reader =
      ColumnarReader::from_buffer(to_ivc_buffer(t, 4));
  ScanPredicate pred;
  pred.buses = {"BUS2"};
  ScanStats stats;
  const dataflow::Table out = reader.scan(pred, &stats);
  EXPECT_EQ(stats.chunks_scanned, 1u);
  EXPECT_EQ(out.num_rows(), 4u);
  for (const auto& row : out.collect_rows()) {
    EXPECT_EQ(row[2].as_string(), "BUS2");
  }
}

TEST(ColstoreTest, UnknownBusScansNothing) {
  const Trace t = clustered_trace(2);
  const ColumnarReader reader =
      ColumnarReader::from_buffer(to_ivc_buffer(t, 4));
  ScanPredicate pred;
  pred.buses = {"NOPE"};
  ScanStats stats;
  const dataflow::Table out = reader.scan(pred, &stats);
  EXPECT_EQ(stats.chunks_scanned, 0u);
  EXPECT_EQ(out.num_rows(), 0u);
  EXPECT_EQ(out.schema(), tracefile::kb_schema());
}

TEST(ColstoreTest, PairPredicateIsExactNotCrossProduct) {
  // Two buses sharing the id space: (A,1) (A,2) (B,1) (B,2). The pair
  // predicate {(A,1), (B,2)} must not return the cross-product rows
  // (A,2) / (B,1) an independent id-set + bus-set filter would admit.
  Trace t;
  t.records = {
      make_record(0, "A", 1),
      make_record(1, "A", 2),
      make_record(2, "B", 1),
      make_record(3, "B", 2),
  };
  const ColumnarReader reader =
      ColumnarReader::from_buffer(to_ivc_buffer(t, 8));
  ScanPredicate pred;
  pred.bus_message_pairs = {{"A", 1}, {"B", 2}};
  const dataflow::Table out = reader.scan(pred);
  ASSERT_EQ(out.num_rows(), 2u);
  const auto rows = out.collect_rows();
  EXPECT_EQ(rows[0][2].as_string(), "A");
  EXPECT_EQ(rows[0][3].as_int64(), 1);
  EXPECT_EQ(rows[1][2].as_string(), "B");
  EXPECT_EQ(rows[1][3].as_int64(), 2);
}

TEST(ColstoreTest, ParallelScansMatchSequential) {
  const Trace t = clustered_trace(8);
  const ColumnarReader reader =
      ColumnarReader::from_buffer(to_ivc_buffer(t, 4));
  ScanPredicate pred;
  pred.message_ids = {100, 201, 302, 403, 704};
  const auto expected = reader.scan(pred).collect_rows();

  dataflow::ThreadPool pool(3);
  ScanStats pool_stats;
  EXPECT_EQ(reader.scan(pred, pool, &pool_stats).collect_rows(), expected);
  EXPECT_EQ(pool_stats.rows_emitted, expected.size());

  dataflow::Engine engine;
  EXPECT_EQ(reader.scan(pred, engine).collect_rows(), expected);
  bool recorded = false;
  for (const auto& m : engine.metrics()) {
    recorded = recorded || m.name == "colstore_scan";
  }
  EXPECT_TRUE(recorded);
}

TEST(ColstoreTest, PreselectPushdownMatchesTablePreselect) {
  // K_pre from the pushed-down .ivc scan must equal K_pre from the
  // in-memory table path (Algorithm 1 lines 2-3) row for row.
  Trace trace;
  for (int i = 0; i < 20; ++i) {
    trace.records.push_back(
        core::testing::wiper_record(i * core::testing::kMs, 45.0, 1.0));
    trace.records.push_back(core::testing::heater_record(
        i * core::testing::kMs + 100, static_cast<std::uint8_t>(i % 4)));
    // Noise the preselection must drop: unknown id on a known bus.
    trace.records.push_back(
        make_record(i * core::testing::kMs + 200, "FC", 0x7FF));
  }
  const signaldb::Catalog catalog = core::testing::wiper_catalog();
  dataflow::Engine engine;
  const dataflow::Table urel = core::make_full_urel_table(catalog);

  const dataflow::Table kb = tracefile::to_kb_table(trace, 4);
  const dataflow::Table via_table = core::preselect(engine, kb, urel);

  const ColumnarReader reader =
      ColumnarReader::from_buffer(to_ivc_buffer(trace, 16));
  ScanStats stats;
  const dataflow::Table via_scan =
      core::preselect(engine, reader, urel, &stats);

  EXPECT_EQ(via_scan.collect_rows(), via_table.collect_rows());
  EXPECT_EQ(stats.rows_emitted, via_table.num_rows());
  EXPECT_LT(stats.rows_emitted, trace.records.size());
}

TEST(ColstoreTest, PackMatchesDirectSave) {
  const std::string ivt = ::testing::TempDir() + "/colstore_pack.ivt";
  const std::string ivc = ::testing::TempDir() + "/colstore_pack.ivc";
  const Trace t = clustered_trace(5);
  tracefile::save_trace(t, ivt);
  const PackStats stats = pack_trace_file(ivt, ivc, {.chunk_rows = 4});
  EXPECT_EQ(stats.records, t.records.size());
  EXPECT_EQ(stats.chunks, 5u);
  EXPECT_GT(stats.input_bytes, 0u);
  EXPECT_GT(stats.output_bytes, 0u);
  const ColumnarReader reader(ivc);
  EXPECT_EQ(reader.read_trace().records, t.records);
}

TEST(ColstoreTest, WriterMisuseThrows) {
  std::ostringstream out(std::ios::binary);
  ColumnarWriter writer(out, "V", "J", 0);
  writer.write(make_record(0, "FC", 1));
  writer.finish();
  // API misuse carries the taxonomy (Category::Internal), not logic_error.
  try {
    writer.finish();
    FAIL() << "finish() after finish() did not throw";
  } catch (const errors::Error& e) {
    EXPECT_EQ(e.category(), errors::Category::Internal);
  }
  try {
    writer.write(make_record(1, "FC", 1));
    FAIL() << "write() after finish() did not throw";
  } catch (const errors::Error& e) {
    EXPECT_EQ(e.category(), errors::Category::Internal);
  }
}

TEST(ColstoreTest, CorruptInputsThrow) {
  const std::string good = to_ivc_buffer(sample_trace(), 2);

  {  // Bad header magic.
    std::string bad = good;
    bad[0] = 'X';
    EXPECT_THROW(ColumnarReader::from_buffer(bad), std::runtime_error);
  }
  {  // Bad tail magic (footer cannot be located).
    std::string bad = good;
    bad.back() = 'X';
    EXPECT_THROW(ColumnarReader::from_buffer(bad), std::runtime_error);
  }
  {  // Truncated: tail chopped off entirely.
    std::string bad = good.substr(0, good.size() - 12);
    EXPECT_THROW(ColumnarReader::from_buffer(bad), std::runtime_error);
  }
  {  // Footer offset pointing past EOF.
    std::string bad = good;
    const std::size_t tail = bad.size() - 12;  // u64 offset + 4-byte magic
    for (std::size_t i = 0; i < 8; ++i) bad[tail + i] = '\xFF';
    EXPECT_THROW(ColumnarReader::from_buffer(bad), std::runtime_error);
  }
  {  // Chunk bytes vandalized: decode must fail loudly, not misread.
    std::string bad = good;
    // Header is magic+version+"V042"+"J3"+i64 = 4+4+5+3+8 = 24 bytes;
    // stomp the first chunk's column data right after its row count.
    for (std::size_t i = 30; i < 60 && i < bad.size(); ++i) bad[i] = '\xFF';
    const ColumnarReader reader = ColumnarReader::from_buffer(bad);
    EXPECT_THROW((void)reader.scan(), std::runtime_error);
  }
  {  // Not a columnar file at all.
    EXPECT_THROW(ColumnarReader::from_buffer("IVTR not columnar"),
                 std::runtime_error);
  }
}

TEST(ColstoreTest, SniffRejectsRowFormat) {
  const std::string ivt = ::testing::TempDir() + "/colstore_sniff.ivt";
  tracefile::save_trace(sample_trace(), ivt);
  EXPECT_FALSE(is_columnar_trace_file(ivt));
  // load_any_trace still loads it via the row reader.
  EXPECT_EQ(load_any_trace(ivt).records, sample_trace().records);
}

}  // namespace
}  // namespace ivt::colstore
