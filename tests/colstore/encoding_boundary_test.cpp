// Regression pins for the encoding boundary bug class the compressed
// scan work flushed out: varint values at the 1-/2-/10-byte thresholds
// (0, 2^7, 2^14, UINT64_MAX), non-canonical 10-byte encodings, wrapped
// delta arithmetic at the int64 extremes, saturating skip sums, RLE run
// validation, and zone maps on all-equal chunks (min == max must prune
// exactly, not off-by-one).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "colstore/columnar_reader.hpp"
#include "colstore/columnar_writer.hpp"
#include "colstore/encoding.hpp"
#include "errors/error.hpp"
#include "tracefile/trace.hpp"

namespace ivt::colstore {
namespace {

ByteSpan span_of(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(VarintBoundaryTest, UvarintThresholdValuesRoundTrip) {
  // Each value sits at an encoding-width boundary: off-by-one in the
  // continuation logic flips the byte count and corrupts the stream.
  const std::vector<std::uint64_t> values = {
      0,
      1,
      (1ull << 7) - 1,   // last 1-byte value
      1ull << 7,         // first 2-byte value
      (1ull << 14) - 1,  // last 2-byte value
      1ull << 14,        // first 3-byte value
      (1ull << 63) - 1,  // last 9-byte value
      1ull << 63,        // first 10-byte value
      std::numeric_limits<std::uint64_t>::max(),
  };
  std::string block;
  for (const std::uint64_t v : values) put_uvarint(block, v);
  ByteCursor in(span_of(block));
  for (const std::uint64_t v : values) EXPECT_EQ(get_uvarint(in), v);
  EXPECT_TRUE(in.exhausted());

  // Skipping must land on exactly the same byte positions as decoding.
  ByteCursor skip(span_of(block));
  skip_uvarints(skip, values.size());
  EXPECT_TRUE(skip.exhausted());
}

TEST(VarintBoundaryTest, ExpectedEncodedWidths) {
  const auto width = [](std::uint64_t v) {
    std::string block;
    put_uvarint(block, v);
    return block.size();
  };
  EXPECT_EQ(width(0), 1u);
  EXPECT_EQ(width((1ull << 7) - 1), 1u);
  EXPECT_EQ(width(1ull << 7), 2u);
  EXPECT_EQ(width((1ull << 14) - 1), 2u);
  EXPECT_EQ(width(1ull << 14), 3u);
  EXPECT_EQ(width(std::numeric_limits<std::uint64_t>::max()), 10u);
}

TEST(VarintBoundaryTest, NonCanonicalTenthByteIsTypedOverflow) {
  // Nine continuation bytes then a 10th byte carrying payload above bit
  // 63: accepting it would silently truncate. This was the latent bug —
  // the old loop OR-ed the shifted-out bits away.
  std::string bad(9, '\x80');
  bad.push_back('\x02');  // bit 64 — one past the top
  ByteCursor in(span_of(bad));
  try {
    (void)get_uvarint(in);
    FAIL() << "non-canonical varint decoded";
  } catch (const errors::Error& e) {
    EXPECT_EQ(e.category(), errors::Category::Decode);
    EXPECT_NE(e.describe().find("varint overflow"), std::string::npos);
  }

  // Bit 63 itself is canonical and must still decode.
  std::string top(9, '\x80');
  top.push_back('\x01');
  ByteCursor ok(span_of(top));
  EXPECT_EQ(get_uvarint(ok), 1ull << 63);
}

TEST(VarintBoundaryTest, EndlessContinuationIsTypedTooLong) {
  const std::string bad(11, '\x80');
  ByteCursor in(span_of(bad));
  EXPECT_THROW((void)get_uvarint(in), errors::Error);
  ByteCursor skip_in(span_of(bad));
  EXPECT_THROW(skip_uvarints(skip_in, 1), errors::Error);
}

TEST(VarintBoundaryTest, SvarintExtremesRoundTrip) {
  const std::vector<std::int64_t> values = {
      0, -1, 1, std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max()};
  std::string block;
  for (const std::int64_t v : values) put_svarint(block, v);
  ByteCursor in(span_of(block));
  for (const std::int64_t v : values) EXPECT_EQ(get_svarint(in), v);
}

TEST(DeltaBoundaryTest, WrappedExtremesRoundTrip) {
  // INT64_MIN next to INT64_MAX: the plain signed difference overflows
  // (UB); the wrapped encoding must round-trip it exactly.
  const std::vector<std::int64_t> values = {
      0,
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min(),
      -1,
      std::numeric_limits<std::int64_t>::max(),
      7};
  std::string block;
  encode_delta(values, block);
  EXPECT_EQ(decode_delta(span_of(block), values.size()), values);

  // skip_delta_sum's wrapped sum must carry the cursor to the same value
  // a full decode would: last - (value before the range), mod 2^64.
  ByteCursor in(span_of(block));
  const std::uint64_t sum = skip_delta_sum(in, values.size());
  EXPECT_EQ(sum, static_cast<std::uint64_t>(values.back()));
  EXPECT_TRUE(in.exhausted());
}

TEST(DeltaBoundaryTest, SkipUvarintSumSaturatesInsteadOfWrapping) {
  // Two huge lengths would wrap std::uint64_t back into plausible range
  // and defeat the payload bounds check — the sum must pin at max.
  std::string block;
  put_uvarint(block, std::numeric_limits<std::uint64_t>::max());
  put_uvarint(block, std::numeric_limits<std::uint64_t>::max());
  put_uvarint(block, 5);
  ByteCursor in(span_of(block));
  EXPECT_EQ(skip_uvarint_sum(in, 3),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(RleBoundaryTest, ZeroAndOverflowingRunsAreTypedErrors) {
  std::string zero_run;
  put_uvarint(zero_run, 42);  // value
  put_uvarint(zero_run, 0);   // run length 0: would loop forever
  EXPECT_THROW((void)decode_rle(span_of(zero_run), 4), errors::Error);

  std::string over_run;
  put_uvarint(over_run, 42);
  put_uvarint(over_run, 10);  // run longer than the column
  EXPECT_THROW((void)decode_rle(span_of(over_run), 4), errors::Error);

  // RleRunCursor applies the same validation when skipping, so the
  // compressed path cannot be driven past the chunk by a corrupt run.
  RleRunCursor cursor(span_of(over_run), 4, 0xFF, "overflow");
  EXPECT_THROW(cursor.skip(4), errors::Error);
}

TEST(RleBoundaryTest, SingleRowRunsRoundTrip) {
  const std::vector<std::uint64_t> values = {1, 2, 3, 2, 2, 9};
  std::string block;
  encode_rle(values, block);
  EXPECT_EQ(decode_rle(span_of(block), values.size()), values);
  RleRunCursor cursor(span_of(block), values.size(), 9, "overflow");
  for (const std::uint64_t v : values) EXPECT_EQ(cursor.next(), v);
}

// --- zone maps on all-equal chunks ------------------------------------

tracefile::Trace all_equal_trace(std::int64_t message_id, int rows) {
  tracefile::Trace trace;
  trace.vehicle = "V";
  trace.journey = "J";
  for (int i = 0; i < rows; ++i) {
    tracefile::TraceRecord rec;
    rec.t_ns = i * 100;
    rec.bus = "CAN0";
    rec.message_id = message_id;
    trace.records.push_back(std::move(rec));
  }
  return trace;
}

ColumnarReader pack_reader(const tracefile::Trace& trace,
                           std::size_t chunk_rows) {
  std::ostringstream out(std::ios::binary);
  ColumnarWriter writer(out, trace.vehicle, trace.journey, 0,
                        {.chunk_rows = chunk_rows});
  for (const auto& rec : trace.records) writer.write(rec);
  writer.finish();
  return ColumnarReader::from_buffer(out.str());
}

TEST(ZoneMapBoundaryTest, AllEqualChunkMinEqualsMaxPrunesExactly) {
  const ColumnarReader reader = pack_reader(all_equal_trace(0x100, 40), 10);
  for (const ChunkInfo& info : reader.chunks()) {
    EXPECT_EQ(info.min_message_id, 0x100);
    EXPECT_EQ(info.max_message_id, 0x100);
    EXPECT_EQ(info.min_t_ns, info.max_t_ns - 100 * 9);
  }
  // The exact id must scan everything; its neighbours on either side
  // (the classic min==max off-by-one) must scan nothing.
  for (const auto& [id, expect_rows] :
       std::vector<std::pair<std::int64_t, std::size_t>>{
           {0x100, 40}, {0x0FF, 0}, {0x101, 0}}) {
    SCOPED_TRACE("id=" + std::to_string(id));
    ScanPredicate pred;
    pred.message_ids = {id};
    for (const ScanMode mode : {ScanMode::Decoded, ScanMode::Compressed}) {
      ScanStats stats;
      EXPECT_EQ(
          reader.scan(pred, ScanOptions{.mode = mode}, &stats).num_rows(),
          expect_rows);
      EXPECT_EQ(stats.chunks_scanned, expect_rows == 0 ? 0u : 4u);
    }
  }
}

TEST(ZoneMapBoundaryTest, SingleRowChunkZoneMapsAreExact) {
  // One row per chunk: every zone map degenerates to min == max on both
  // t and message id, and the time-range boundary must stay inclusive.
  tracefile::Trace trace;
  trace.vehicle = "V";
  trace.journey = "J";
  for (int i = 0; i < 5; ++i) {
    tracefile::TraceRecord rec;
    rec.t_ns = i * 1000;
    rec.bus = "CAN0";
    rec.message_id = i;
    trace.records.push_back(std::move(rec));
  }
  const ColumnarReader reader = pack_reader(trace, 1);
  ASSERT_EQ(reader.num_chunks(), 5u);
  ScanPredicate pred;
  pred.has_time_range = true;
  pred.min_t_ns = 1000;  // inclusive: rows at t=1000..3000
  pred.max_t_ns = 3000;
  for (const ScanMode mode : {ScanMode::Decoded, ScanMode::Compressed}) {
    ScanStats stats;
    EXPECT_EQ(reader.scan(pred, ScanOptions{.mode = mode}, &stats).num_rows(),
              3u);
    EXPECT_EQ(stats.chunks_scanned, 3u);
  }
}

TEST(ZoneMapBoundaryTest, BoundaryIdValuesSurvivePackScan) {
  // Message ids at the varint/zigzag width thresholds, one per record:
  // pack, then scan each id back out under both modes.
  const std::vector<std::int64_t> ids = {
      0,
      -1,
      (1 << 6) - 1,  // zigzag width boundary for positives
      1 << 6,
      -(1 << 6),
      (1 << 13) - 1,
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min()};
  tracefile::Trace trace;
  trace.vehicle = "V";
  trace.journey = "J";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    tracefile::TraceRecord rec;
    rec.t_ns = static_cast<std::int64_t>(i);
    rec.bus = "CAN0";
    rec.message_id = ids[i];
    trace.records.push_back(std::move(rec));
  }
  const ColumnarReader reader = pack_reader(trace, 3);
  for (const std::int64_t id : ids) {
    SCOPED_TRACE("id=" + std::to_string(id));
    ScanPredicate pred;
    pred.message_ids = {id};
    for (const ScanMode mode : {ScanMode::Decoded, ScanMode::Compressed}) {
      EXPECT_EQ(reader.scan(pred, ScanOptions{.mode = mode}).num_rows(), 1u);
    }
  }
}

}  // namespace
}  // namespace ivt::colstore
