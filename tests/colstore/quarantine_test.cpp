// Corrupt-input recovery tests, built on the shared corruption harness
// (tests/common/corruption.hpp): a vandalised .ivc chunk is quarantined
// under Skip/Quarantine — the scan resyncs at the next chunk boundary and
// healthy chunks survive — while Fail propagates a context-chained typed
// error. Also covers the tolerant .ivt loader and a bit-flip sweep
// asserting "typed error or clean result, never a crash".
#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "colstore/columnar_reader.hpp"
#include "colstore/columnar_writer.hpp"
#include "dataflow/engine.hpp"
#include "errors/error.hpp"
#include "errors/failure_log.hpp"
#include "tracefile/binary_format.hpp"
#include "tracefile/trace.hpp"

#include "../common/corruption.hpp"

namespace ivt::colstore {
namespace {

using tracefile::Trace;
using tracefile::TraceRecord;

Trace make_trace(std::size_t records) {
  Trace trace;
  trace.vehicle = "V";
  trace.journey = "J";
  for (std::size_t i = 0; i < records; ++i) {
    TraceRecord rec;
    rec.t_ns = static_cast<std::int64_t>(1000 * i);
    rec.bus = "BUS" + std::to_string(i / 4);
    rec.message_id = static_cast<std::int64_t>(100 + i);
    rec.payload = {static_cast<std::uint8_t>(i), 0x5A};
    trace.records.push_back(rec);
  }
  return trace;
}

std::string to_ivc_buffer(const Trace& trace, std::size_t chunk_rows) {
  std::ostringstream out(std::ios::binary);
  ColumnarWriter writer(out, trace.vehicle, trace.journey,
                        trace.start_unix_ns, {.chunk_rows = chunk_rows});
  for (const TraceRecord& rec : trace.records) writer.write(rec);
  writer.finish();
  return out.str();
}

TEST(QuarantineTest, StompedChunkQuarantinedNeighboursSurvive) {
  const Trace t = make_trace(20);  // 5 chunks of 4 rows
  const testcorrupt::IvcCorruptor corruptor(to_ivc_buffer(t, 4));
  ASSERT_EQ(corruptor.num_chunks(), 5u);
  const std::string bad = corruptor.with_stomped_chunk(2);

  const ColumnarReader reader = ColumnarReader::from_buffer(bad);

  // Fail (default policy): the scan aborts with a typed, located error.
  try {
    (void)reader.scan({}, ScanOptions{}, nullptr);
    FAIL() << "scan of corrupt chunk did not throw under Fail";
  } catch (const errors::Error& e) {
    EXPECT_EQ(e.category(), errors::Category::Decode);
    ASSERT_FALSE(e.context().empty());
    EXPECT_NE(e.context()[0].find("chunk 2"), std::string::npos);
  }

  // Skip: the corrupt chunk is dropped, the other 16 rows come through.
  {
    ScanStats stats;
    const dataflow::Table table =
        reader.scan({}, ScanOptions{.on_error = errors::ErrorPolicy::Skip},
                    &stats);
    EXPECT_EQ(table.num_rows(), 16u);
    EXPECT_EQ(stats.chunks_quarantined, 1u);
    EXPECT_EQ(stats.rows_quarantined, 4u);
    EXPECT_EQ(stats.rows_emitted, 16u);
  }

  // Quarantine: same result plus a FailureRecord for the manifest.
  {
    ScanStats stats;
    errors::FailureLog failures;
    const dataflow::Table table = reader.scan(
        {},
        ScanOptions{.on_error = errors::ErrorPolicy::Quarantine,
                    .failures = &failures},
        &stats);
    EXPECT_EQ(table.num_rows(), 16u);
    ASSERT_EQ(failures.size(), 1u);
    const errors::FailureRecord record = failures.records()[0];
    EXPECT_EQ(record.site, "colstore.decode_chunk");
    EXPECT_EQ(record.category, errors::Category::Decode);
    EXPECT_NE(record.unit.find("chunk 2"), std::string::npos);
    EXPECT_NE(record.unit.find("4 rows"), std::string::npos);
  }
}

TEST(QuarantineTest, ParallelScanMatchesSequentialUnderQuarantine) {
  const Trace t = make_trace(32);  // 8 chunks of 4 rows
  const testcorrupt::IvcCorruptor corruptor(to_ivc_buffer(t, 4));
  std::string bad = corruptor.with_stomped_chunk(1);
  // Stomp a second chunk so resync is exercised more than once.
  testcorrupt::stomp(bad, corruptor.chunk_offset(5) + 4, 8);
  const ColumnarReader reader = ColumnarReader::from_buffer(bad);
  dataflow::Engine engine({.workers = 4});

  ScanStats seq_stats;
  const dataflow::Table seq = reader.scan(
      {}, ScanOptions{.on_error = errors::ErrorPolicy::Skip}, &seq_stats);
  ScanStats par_stats;
  const dataflow::Table par =
      reader.scan({}, engine,
                  ScanOptions{.on_error = errors::ErrorPolicy::Skip},
                  &par_stats);

  EXPECT_EQ(seq.collect_rows(), par.collect_rows());
  EXPECT_EQ(seq_stats.chunks_quarantined, par_stats.chunks_quarantined);
  EXPECT_GE(seq_stats.chunks_quarantined, 1u);
  EXPECT_LE(seq_stats.chunks_quarantined, 2u);
}

TEST(QuarantineTest, HeaderAndFooterCorruptionIsTypedNotQuarantinable) {
  const testcorrupt::IvcCorruptor corruptor(to_ivc_buffer(make_trace(8), 4));
  // Structural damage outside chunk bodies breaks indexing itself, so it
  // surfaces at construction — Format for a bad magic/footer frame, Decode
  // when the vandalised footer bytes fail mid-parse. There is no chunk to
  // skip yet, so no policy applies.
  for (const std::string& bad :
       {corruptor.with_corrupt_header(), corruptor.with_corrupt_zone_maps(),
        corruptor.with_truncation()}) {
    try {
      (void)ColumnarReader::from_buffer(bad);
      FAIL() << "corrupt header/footer did not throw";
    } catch (const errors::Error& e) {
      EXPECT_TRUE(e.category() == errors::Category::Format ||
                  e.category() == errors::Category::Decode)
          << e.describe();
    }
  }
}

TEST(QuarantineTest, BitFlipSweepNeverCrashes) {
  const std::string good = to_ivc_buffer(make_trace(12), 4);
  // Flip every 13th bit across the whole image. Every outcome must be a
  // typed error or a successful (possibly degraded) scan — no aborts, no
  // uncaught non-standard exceptions.
  for (std::size_t bit = 0; bit < good.size() * 8; bit += 13) {
    std::string bad = good;
    testcorrupt::flip_bit(bad, bit);
    try {
      const ColumnarReader reader = ColumnarReader::from_buffer(bad);
      ScanStats stats;
      const dataflow::Table table = reader.scan(
          {}, ScanOptions{.on_error = errors::ErrorPolicy::Skip}, &stats);
      EXPECT_LE(table.num_rows(), 12u);
    } catch (const errors::Error&) {
      // Typed rejection is a valid outcome.
    }
  }
}

TEST(QuarantineTest, TolerantIvtLoadTruncatesAtFirstBadRecord) {
  const Trace t = make_trace(10);
  const std::string path = ::testing::TempDir() + "/quarantine_tolerant.ivt";
  tracefile::save_trace(t, path);

  // Undamaged file: tolerant load equals strict load.
  EXPECT_EQ(tracefile::load_trace_tolerant(path, errors::ErrorPolicy::Skip)
                .records,
            t.records);

  // Chop the file mid-stream: strict load throws, tolerant load keeps the
  // records before the damage and logs the truncation.
  std::ifstream in(path, std::ios::binary);
  std::string image{std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>()};
  in.close();
  testcorrupt::truncate(image, image.size() - 7);
  const std::string bad_path =
      ::testing::TempDir() + "/quarantine_tolerant_bad.ivt";
  testcorrupt::write_file(bad_path, image);

  EXPECT_THROW((void)tracefile::load_trace(bad_path), errors::Error);

  errors::FailureLog failures;
  const Trace recovered = tracefile::load_trace_tolerant(
      bad_path, errors::ErrorPolicy::Quarantine, &failures);
  ASSERT_EQ(recovered.records.size(), t.records.size() - 1);
  for (std::size_t i = 0; i < recovered.records.size(); ++i) {
    EXPECT_EQ(recovered.records[i], t.records[i]);
  }
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures.records()[0].site, "tracefile.read_record");
  EXPECT_EQ(failures.records()[0].category, errors::Category::Format);

  // Fail delegates to the strict loader.
  EXPECT_THROW(
      (void)tracefile::load_trace_tolerant(bad_path, errors::ErrorPolicy::Fail),
      errors::Error);
}

}  // namespace
}  // namespace ivt::colstore
