// Fixture: fault-site violations. With fixtures/registry.txt this file
// yields: one unregistered site, one bad-grammar site, one duplicate
// instrumentation of a registered site.
#include "faultfx/faultfx.hpp"

namespace fixture {

inline void g() {
  FAULT_POINT("fixture.registered");     // ok: in registry, used once
  FAULT_POINT("fixture.unregistered");   // finding: not in registry
  FAULT_POINT("BadGrammar");             // finding: not seg(.seg)+
  FAULT_POINT("fixture.twice");          // ok on its own...
}

inline void h() {
  FAULT_POINT("fixture.twice");          // finding: second instrumentation
  // FAULT_POINT("fixture.commented") — comments must not count.
}

}  // namespace fixture
