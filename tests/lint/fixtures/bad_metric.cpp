// metric-name fixture: scanned lexically by lint_test, never compiled.
// Expected findings (no extra prefixes registered): two grammar
// violations and four unregistered prefixes; registering "colstore"
// clears exactly one of the latter.
void instrumented(void* log, void* log2) {
  OBS_COUNT("serve.Requests_Total", 1);             // grammar: uppercase
  OBS_WINDOW_HIST_MS("frob.latency_ms", 60, 1.0);   // prefix: frob
  OBS_GAUGE_ADD("pool.queue_depth", 1);             // ok: built-in prefix
  OBS_EVENT(log, Info, "widget.query").kv("op", "x");  // prefix: widget
  OBS_HIST_MS("colstore.decode_ms", 2.0);  // prefix, unless registered
  OBS_COUNT("nodot", 1);                   // grammar: single segment
  ivt::obs::EventRecord record(log2, ivt::obs::EventLevel::Warn,
                               "gadget.slow");      // prefix: gadget
  // OBS_COUNT("comments.dont_match", 1);
}
