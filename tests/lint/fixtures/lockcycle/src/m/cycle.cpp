// Fixture: a three-mutex lock-order cycle, scanned lexically by
// analyze_test, never compiled. Every mutex binds its LockRank constant
// and states what it guards (so the lock-rank and mutex-guard rules stay
// quiet) — the ONLY expected finding is the cycle itself:
//   m::A::mu_ -> m::B::mu_ -> m::C::mu_ -> m::A::mu_
// (Never compiled: IVT_GUARDED_BY needs no definition here, and a
// bodiless #define would confuse the function extractor.)
#include "support/mutex.hpp"

namespace m {

class A;

class C {
 public:
  void h();

 private:
  A* a_ = nullptr;
  support::Mutex mu_{support::LockRank::k_m_C_mu_};
  int state_ IVT_GUARDED_BY(mu_) = 0;
};

class B {
 public:
  void g();

 private:
  C c_;
  support::Mutex mu_{support::LockRank::k_m_B_mu_};
  int state_ IVT_GUARDED_BY(mu_) = 0;
};

class A {
 public:
  void f();

 private:
  B b_;
  support::Mutex mu_{support::LockRank::k_m_A_mu_};
  int state_ IVT_GUARDED_BY(mu_) = 0;
};

void A::f() {
  const support::MutexLock lock(mu_);
  b_.g();
}

void B::g() {
  const support::MutexLock lock(mu_);
  c_.h();
}

void C::h() {
  const support::MutexLock lock(mu_);
  a_->f();
}

}  // namespace m
