// Fixture: no findings under any rule.
#include "clean.hpp"

#include <cstddef>

#define IVT_GUARDED_BY(x)

namespace fixture {

class Counter {
 public:
  void bump();

 private:
  support::Mutex mu_{support::LockRank::k_fixtures_Counter_mu_};
  std::size_t n_ IVT_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
