// Fixture: exactly two real bare-throw findings. The occurrences inside
// this comment (throw std::runtime_error), the string literal below and
// the raw string must NOT be counted.
#include <stdexcept>
#include <string>

namespace fixture {

inline void f(int x) {
  if (x < 0) throw std::invalid_argument("negative");            // finding 1
  const std::string decoy = "throw std::runtime_error(fake)";
  const char* raw = R"(throw std::out_of_range("also fake"))";
  (void)decoy;
  (void)raw;
  /* block comment: throw std::logic_error("no") */
  if (x > 9)
    throw std::out_of_range("too big");                          // finding 2
}

}  // namespace fixture
