// Fixture: error-taxonomy exhaustiveness, scanned lexically by
// analyze_test, never compiled. The tree throws two categories (Io and
// Format) but the `error-table` anchor function only switches on Io.
// Expected: exactly one "error-taxonomy" finding (Format missing from
// exit_table).
#include "errors/error.hpp"

namespace e {

int exit_table(errors::Category category) {
  switch (category) {
    case errors::Category::Io:
      return 1;
  }
  return 1;
}

void open_input(bool ok, bool well_formed) {
  if (!ok) IVT_THROW(errors::Category::Io, "cannot open");
  if (!well_formed) {
    IVT_THROW(errors::Category::Format, "bad header");
  }
}

}  // namespace e
