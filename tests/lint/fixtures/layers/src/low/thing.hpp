// Fixture: lower-layer module with a seeded layering violation — it
// includes a module declared in a HIGHER layer of layers.conf. Expected:
// exactly one "layering" finding (the back-edge low -> high).
#pragma once

#include "high/api.hpp"
#include "low/other.hpp"

namespace low {
int thing();
}  // namespace low
