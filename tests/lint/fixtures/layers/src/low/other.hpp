// Fixture: self-module include (always allowed).
#pragma once

namespace low {
int other();
}  // namespace low
