// Fixture: upper-layer module; includes only downward (allowed).
#pragma once

#include "low/thing.hpp"

namespace high {
int api();
}  // namespace high
