// Fixture: mutex-guard violations — one unguarded support::Mutex and one
// raw std::mutex (which is additionally unguarded), plus a fully
// annotated class that must stay clean.
#include <cstddef>
#include <mutex>

#define IVT_GUARDED_BY(x)

namespace fixture {

class Unguarded {
  support::Mutex mu_;   // finding: nothing is IVT_GUARDED_BY(mu_)
  std::size_t count_ = 0;
};

class RawMutex {
  std::mutex raw_;      // findings: raw std::mutex AND unguarded
  std::size_t count_ = 0;
};

class Annotated {
  support::Mutex mu_;
  std::size_t count_ IVT_GUARDED_BY(mu_) = 0;  // clean
};

}  // namespace fixture
