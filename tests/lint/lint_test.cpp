// ivt-lint fixture tests: each fixture under tests/lint/fixtures/ encodes
// a known number of violations (or none), and the tests pin the exact
// finding counts, locations and process exit codes so rule behaviour
// cannot drift silently.
#include "lint/analyze.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace ivt::lint {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(IVT_LINT_FIXTURE_DIR) + "/" + name;
}

std::string read_fixture(const std::string& name) {
  std::ifstream in(fixture_path(name));
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(LintBareThrowTest, FindsExactlyTheTwoRealThrows) {
  const auto findings =
      check_bare_throw("bare_throw.cpp", read_fixture("bare_throw.cpp"));
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 10u);
  EXPECT_EQ(findings[1].line, 17u);
  EXPECT_EQ(findings[0].rule, "bare-throw");
  // Comments, plain strings and raw strings must not produce findings —
  // pinned by the exact count above.
}

TEST(LintBareThrowTest, CleanFixtureHasNoFindings) {
  EXPECT_TRUE(check_bare_throw("clean.cpp", read_fixture("clean.cpp"))
                  .empty());
}

TEST(LintMutexGuardTest, FlagsUnguardedAndRawMutexMembers) {
  const auto findings = check_mutex_guard("unannotated_mutex.cpp",
                                          read_fixture("unannotated_mutex.cpp"));
  // Unguarded.mu_ -> 1 finding; RawMutex.raw_ -> raw-std + unguarded;
  // Annotated is clean.
  ASSERT_EQ(findings.size(), 3u);
  std::size_t raw = 0;
  std::size_t unguarded = 0;
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "mutex-guard");
    if (f.message.find("raw std::mutex") != std::string::npos) {
      ++raw;
    } else {
      ++unguarded;
      EXPECT_NE(f.message.find("IVT_GUARDED_BY"), std::string::npos);
    }
  }
  EXPECT_EQ(raw, 1u);
  EXPECT_EQ(unguarded, 2u);
}

TEST(LintMutexGuardTest, CleanFixtureHasNoFindings) {
  EXPECT_TRUE(check_mutex_guard("clean.cpp", read_fixture("clean.cpp"))
                  .empty());
}

TEST(LintFaultSiteTest, CrossChecksCodeAgainstRegistry) {
  std::vector<FileContent> files;
  files.push_back({"unregistered_fault.cpp",
                   read_fixture("unregistered_fault.cpp")});
  const auto findings =
      check_fault_sites(files, "registry.txt", read_fixture("registry.txt"));
  // unregistered + bad grammar + duplicate instrumentation (code side),
  // duplicate entry + 2 registered-but-unused (registry side).
  ASSERT_EQ(findings.size(), 6u);
  std::size_t in_code = 0;
  std::size_t in_registry = 0;
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "fault-site");
    (f.file == "registry.txt" ? in_registry : in_code) += 1;
  }
  EXPECT_EQ(in_code, 3u);
  EXPECT_EQ(in_registry, 3u);
}

TEST(LintFaultSiteTest, SiteNameGrammar) {
  EXPECT_TRUE(is_valid_site_name("colstore.decode_chunk"));
  EXPECT_TRUE(is_valid_site_name("a.b.c_9"));
  EXPECT_FALSE(is_valid_site_name("nodot"));
  EXPECT_FALSE(is_valid_site_name("Upper.case"));
  EXPECT_FALSE(is_valid_site_name("trailing.dot."));
  EXPECT_FALSE(is_valid_site_name(".leading"));
  EXPECT_FALSE(is_valid_site_name("spa ce.x"));
}

TEST(LintIncludeHygieneTest, ParentRelativeAndSelfHeaderOrder) {
  const std::string bad =
      "#include \"other/first.hpp\"\n"
      "#include \"../sneaky.hpp\"\n"
      "#include \"mod/self.hpp\"\n";
  const auto findings = check_include_hygiene("src/mod/self.cpp", bad);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_NE(findings[0].message.find("parent-relative"), std::string::npos);
  EXPECT_NE(findings[1].message.find("first include"), std::string::npos);

  const std::string good =
      "#include \"mod/self.hpp\"\n\n#include \"other/first.hpp\"\n";
  EXPECT_TRUE(check_include_hygiene("src/mod/self.cpp", good).empty());
  EXPECT_TRUE(check_include_hygiene("clean.cpp", read_fixture("clean.cpp"))
                  .empty());
}

TEST(LintMetricNameTest, FlagsGrammarAndUnregisteredPrefixes) {
  const std::string content = read_fixture("bad_metric.cpp");
  // No extra prefixes: 2 grammar + 4 unregistered (frob, widget,
  // colstore, gadget — the last via direct EventRecord construction).
  const auto all = check_metric_names("bad_metric.cpp", content, {});
  ASSERT_EQ(all.size(), 6u);
  std::size_t grammar = 0;
  std::size_t prefix = 0;
  for (const Finding& f : all) {
    EXPECT_EQ(f.rule, "metric-name");
    if (f.message.find("grammar") != std::string::npos) {
      ++grammar;
    } else {
      ++prefix;
      EXPECT_NE(f.message.find("metric-prefix"), std::string::npos);
    }
  }
  EXPECT_EQ(grammar, 2u);
  EXPECT_EQ(prefix, 4u);

  // Registering a prefix clears exactly its findings.
  const auto with_colstore =
      check_metric_names("bad_metric.cpp", content, {"colstore"});
  EXPECT_EQ(with_colstore.size(), 5u);
}

TEST(LintMetricNameTest, ConcatenatedLiteralsAreJoinedBeforeChecking) {
  // Adjacent string literals are one name: splitting a metric name
  // across literals can neither evade the grammar nor the prefix check.
  const std::string content =
      "void f() {\n"
      "  OBS_COUNT(\"serve.\" \"accept_total\", 1);\n"
      "  OBS_COUNT(\"frob.\" \"x_total\", 1);\n"
      "  OBS_COUNT(\"Bad\" \".Name\", 1);\n"
      "}\n";
  const auto findings = check_metric_names("concat.cpp", content, {});
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_NE(findings[0].message.find("frob"), std::string::npos);
  EXPECT_NE(findings[0].message.find("metric-prefix"), std::string::npos);
  EXPECT_NE(findings[1].message.find("grammar"), std::string::npos);
  EXPECT_EQ(check_metric_names("concat.cpp", content, {"frob"}).size(), 1u);
}

TEST(LintMetricNameTest, CleanFixtureHasNoFindings) {
  EXPECT_TRUE(
      check_metric_names("clean.cpp", read_fixture("clean.cpp"), {}).empty());
}

TEST(LintConfigTest, ParsesExemptionsAndReportsBadLines) {
  std::vector<std::string> errors;
  const Config config = parse_config(
      "# comment\n"
      "registry src/faultfx/fault_sites.registry\n"
      "exempt bare-throw src/algo/\n"
      "metric-prefix colstore.\n"  // trailing dot accepted, stripped
      "metric-prefix obs\n"
      "exempt mutex-guard\n"     // malformed: missing prefix
      "metric-prefix\n"          // malformed: missing subsystem
      "frobnicate x y\n",        // unknown directive
      &errors);
  EXPECT_EQ(config.registry_path, "src/faultfx/fault_sites.registry");
  ASSERT_EQ(config.exemptions.size(), 1u);
  ASSERT_EQ(config.metric_prefixes.size(), 2u);
  EXPECT_EQ(config.metric_prefixes[0], "colstore");
  EXPECT_EQ(config.metric_prefixes[1], "obs");
  EXPECT_EQ(errors.size(), 3u);
  EXPECT_TRUE(is_exempt(config, "bare-throw", "src/algo/sax.cpp"));
  EXPECT_FALSE(is_exempt(config, "bare-throw", "src/core/urel.cpp"));
  EXPECT_FALSE(is_exempt(config, "mutex-guard", "src/algo/sax.cpp"));
}

TEST(LintRunRulesTest, AppliesExemptionsAndCountsByRule) {
  std::vector<FileContent> files;
  files.push_back({"src/x/bare_throw.cpp", read_fixture("bare_throw.cpp")});
  files.push_back({"src/x/unannotated_mutex.cpp",
                   read_fixture("unannotated_mutex.cpp")});
  Config config;  // no registry -> fault-site rule skipped
  Report report = run_rules(files, config, "");
  EXPECT_EQ(report.findings.size(), 5u);
  EXPECT_EQ(report.exempted, 0u);
  EXPECT_EQ(report.by_rule["bare-throw"], 2u);
  EXPECT_EQ(report.by_rule["mutex-guard"], 3u);

  config.exemptions.push_back({"bare-throw", "src/x/"});
  report = run_rules(files, config, "");
  EXPECT_EQ(report.findings.size(), 3u);
  EXPECT_EQ(report.exempted, 2u);
  EXPECT_EQ(report_to_json(report),
            "{\"findings\": 3, \"exempted\": 2, \"by_rule\": "
            "{\"mutex-guard\": 3}}");
}

TEST(AnalyzeMainTest, ExitCodes) {
  // 0: clean file, no registry.
  EXPECT_EQ(analyze_main({fixture_path("clean.cpp")}), 0);
  // 1: findings.
  EXPECT_EQ(analyze_main({fixture_path("bare_throw.cpp")}), 1);
  EXPECT_EQ(analyze_main({"--registry", fixture_path("registry.txt"),
                       fixture_path("unregistered_fault.cpp")}),
            1);
  // 2: usage / unreadable inputs.
  EXPECT_EQ(analyze_main({}), 2);
  EXPECT_EQ(analyze_main({"--bogus-flag", fixture_path("clean.cpp")}), 2);
  EXPECT_EQ(analyze_main({"--config", fixture_path("no_such.conf"),
                       fixture_path("clean.cpp")}),
            2);
  EXPECT_EQ(analyze_main({fixture_path("no_such_file.cpp")}), 2);
}

}  // namespace
}  // namespace ivt::lint
