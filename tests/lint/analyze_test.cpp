// ivt-analyze whole-program tests: each fixture tree under
// tests/lint/fixtures/ seeds exactly one violation of one global rule
// (layering back-edge, lock-order cycle, error-table gap), and the tests
// pin the exact finding counts and process exit codes so analyzer
// behaviour cannot drift silently.
#include "lint/analyze.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace ivt::lint {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(IVT_LINT_FIXTURE_DIR) + "/" + name;
}

std::string read_fixture(const std::string& name) {
  std::ifstream in(fixture_path(name));
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<FileContent> layers_fixture_files() {
  std::vector<FileContent> files;
  for (const char* name : {"layers/src/high/api.hpp",
                           "layers/src/low/thing.hpp",
                           "layers/src/low/other.hpp"}) {
    files.push_back({fixture_path(name), read_fixture(name)});
  }
  return files;
}

TEST(ParseLayersTest, BottomUpLevelsAndBadLines) {
  std::vector<std::string> errors;
  const LayersConfig layers = parse_layers(
      "# comment\n"
      "layer support\n"
      "layer errors algo   # two modules share a layer\n"
      "module bogus\n"
      "layer cli\n",
      &errors);
  ASSERT_EQ(layers.layers.size(), 3u);
  EXPECT_EQ(layers.level.at("support"), 0u);
  EXPECT_EQ(layers.level.at("errors"), 1u);
  EXPECT_EQ(layers.level.at("algo"), 1u);
  EXPECT_EQ(layers.level.at("cli"), 2u);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("unknown directive"), std::string::npos);
}

TEST(ModuleOfTest, RealTreeFixtureTreeAndFlatPaths) {
  EXPECT_EQ(module_of("src/core/urel.cpp"), "core");
  // Fixture trees resolve via their LAST src/ component.
  EXPECT_EQ(module_of("tests/lint/fixtures/layers/src/low/thing.hpp"), "low");
  // Directly in src/: no module.
  EXPECT_EQ(module_of("src/main.cpp"), "");
  // No src/ component: parent directory, then nothing for flat paths.
  EXPECT_EQ(module_of("fixtures/clean.cpp"), "fixtures");
  EXPECT_EQ(module_of("clean.cpp"), "");
}

TEST(LayeringTest, SeededBackEdgeIsTheOnlyFinding) {
  const std::vector<FileContent> files = layers_fixture_files();
  const IncludeGraph graph = build_include_graph(files);
  ASSERT_EQ(graph.modules.size(), 2u);
  // high -> low (allowed, downward) and low -> high (the seeded
  // back-edge); the self-edge low -> low is dropped.
  ASSERT_EQ(graph.edges.size(), 2u);

  std::vector<std::string> errors;
  const LayersConfig layers = parse_layers(read_fixture("layers.conf"),
                                           &errors);
  EXPECT_TRUE(errors.empty());
  const std::vector<Finding> findings = check_layering(graph, layers);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_NE(findings[0].message.find("back-edge"), std::string::npos);
  EXPECT_NE(findings[0].message.find("'low'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("'high'"), std::string::npos);

  const std::string dot = include_graph_dot(graph, layers);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"low\" -> \"high\""), std::string::npos);
}

TEST(LayeringTest, UndeclaredModuleIsAFinding) {
  const std::vector<FileContent> files = layers_fixture_files();
  const IncludeGraph graph = build_include_graph(files);
  std::vector<std::string> errors;
  // Only `low` declared: `high` becomes an undeclared module; its edges
  // are skipped (no level), so the back-edge cannot double-report.
  const LayersConfig layers = parse_layers("layer low\n", &errors);
  const std::vector<Finding> findings = check_layering(graph, layers);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("not declared"), std::string::npos);
}

TEST(LockCycleTest, ThreeMutexCycleIsExactlyOneFinding) {
  std::vector<FileContent> files;
  files.push_back({fixture_path("lockcycle/src/m/cycle.cpp"),
                   read_fixture("lockcycle/src/m/cycle.cpp")});
  const Config config;
  const LockAnalysis locks = analyze_locks(files, config);
  ASSERT_EQ(locks.locks.size(), 3u);
  // Call-graph propagation closes the cycle: each holder transitively
  // acquires all three locks (itself included), so 3 x 3 edges.
  EXPECT_EQ(locks.edges.size(), 9u);
  // Every mutex binds its rank constant, so the only finding is the
  // cycle itself — pinned to exactly one (one SCC, not three edges).
  ASSERT_EQ(locks.findings.size(), 1u);
  EXPECT_EQ(locks.findings[0].rule, "lock-order");
  EXPECT_NE(locks.findings[0].message.find("cycle"), std::string::npos);
  EXPECT_NE(locks.findings[0].message.find("m::A::mu_"), std::string::npos);
  // A cyclic graph has no ranks and must refuse to render lock_ranks.inc.
  EXPECT_TRUE(locks.rank.empty());
  EXPECT_TRUE(ranks_to_inc(locks).empty());
}

TEST(RanksToIncTest, RendersSortedRankLines) {
  LockAnalysis locks;
  locks.locks = {"a_X_mu_", "b_Y_mu_"};
  locks.display = {{"a_X_mu_", "a::X::mu_"}, {"b_Y_mu_", "b::Y::mu_"}};
  locks.rank = {{"a_X_mu_", 20}, {"b_Y_mu_", 10}};
  const std::string inc = ranks_to_inc(locks);
  EXPECT_NE(inc.find("DO NOT EDIT"), std::string::npos);
  EXPECT_NE(inc.find("IVT_LOCK_RANK(k_a_X_mu_, 20, \"a::X::mu_\")\n"),
            std::string::npos);
  EXPECT_NE(inc.find("IVT_LOCK_RANK(k_b_Y_mu_, 10, \"b::Y::mu_\")\n"),
            std::string::npos);
  // Sorted by (rank, identity), not declaration order.
  EXPECT_LT(inc.find("k_b_Y_mu_"), inc.find("k_a_X_mu_"));
}

TEST(ErrorTaxonomyTest, MissingThrownCategoryInAnchor) {
  std::vector<FileContent> files;
  files.push_back({fixture_path("errtable/src/e/table.cpp"),
                   read_fixture("errtable/src/e/table.cpp")});
  Config config;
  config.error_tables.push_back("exit_table");
  const std::vector<Finding> findings = check_error_taxonomy(files, config);
  // The tree throws Io and Format; the anchor switches only on Io.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "error-taxonomy");
  EXPECT_NE(findings[0].message.find("Format"), std::string::npos);
}

TEST(AnalysisJsonTest, GraphCountsSurfaceInJson) {
  const std::vector<FileContent> files = layers_fixture_files();
  std::vector<std::string> errors;
  const LayersConfig layers = parse_layers(read_fixture("layers.conf"),
                                           &errors);
  const Config config;
  const Analysis analysis = run_analysis(files, config, layers, "");
  EXPECT_EQ(analysis.layer_violations, 1u);
  const std::string json = analysis_to_json(analysis);
  EXPECT_NE(json.find("\"layer_violations\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"include_edges\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"lock_graph_nodes\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"lock_graph_edges\": 0"), std::string::npos);
}

TEST(AnalyzeTreeTest, SeededTreesPinExitCodes) {
  // Layering back-edge: exit 1.
  EXPECT_EQ(analyze_main({"--layers", fixture_path("layers.conf"),
                          fixture_path("layers")}),
            1);
  // The upper layer alone includes only downward: exit 0.
  EXPECT_EQ(analyze_main({"--layers", fixture_path("layers.conf"),
                          fixture_path("layers/src/high")}),
            0);
  // Lock cycle: exit 1, and --emit-ranks must refuse to emit.
  EXPECT_EQ(analyze_main({fixture_path("lockcycle")}), 1);
  EXPECT_EQ(analyze_main({"--emit-ranks", fixture_path("lockcycle")}), 1);
  // Error-table anchor missing a thrown category: exit 1.
  EXPECT_EQ(analyze_main({"--config", fixture_path("errtable.conf"),
                          fixture_path("errtable")}),
            1);
  // Unreadable layers config: exit 2.
  EXPECT_EQ(analyze_main({"--layers", fixture_path("no_such_layers.conf"),
                          fixture_path("layers")}),
            2);
}

}  // namespace
}  // namespace ivt::lint
