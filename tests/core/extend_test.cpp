#include "core/extend.hpp"

#include <gtest/gtest.h>

#include "core/schemas.hpp"
#include "test_fixtures.hpp"

namespace ivt::core {
namespace {

using testing::kMs;

SequenceData gap_sequence() {
  SequenceData d;
  d.s_id = "wpos";
  d.bus = "FC";
  // Paper Table 2: gaps 0.5, 0.4, 0.45 s.
  d.t = {2000 * kMs, 2500 * kMs, 2900 * kMs, 3350 * kMs};
  d.v_num = {45.0, 60.0, 62.0, 64.0};
  d.has_num.assign(4, 1);
  d.v_str.assign(4, "");
  d.has_str.assign(4, 0);
  return d;
}

TEST(ExtendTest, GapExtensionMatchesPaperTable2) {
  const SequenceData d = gap_sequence();
  const ConstraintContext ctx{d, nullptr};
  const auto tables = apply_extensions({gap_extension()}, ctx);
  ASSERT_EQ(tables.size(), 1u);
  const auto rows = tables[0].collect_rows();
  ASSERT_EQ(rows.size(), 3u);  // no gap for the first element
  const auto& schema = tables[0].schema();
  EXPECT_EQ(rows[0][schema.require("s_id")], dataflow::Value{"wpos.gap"});
  EXPECT_EQ(rows[0][schema.require("v_num")], dataflow::Value{0.5});
  EXPECT_EQ(rows[1][schema.require("v_num")], dataflow::Value{0.4});
  EXPECT_EQ(rows[2][schema.require("v_num")], dataflow::Value{0.45});
  EXPECT_EQ(rows[0][schema.require("element_kind")],
            dataflow::Value{kElementExtension});
}

TEST(ExtendTest, CycleViolationEmitsOnlyViolations) {
  SequenceData d = gap_sequence();
  signaldb::SignalSpec spec;
  spec.name = "wpos";
  spec.expected_cycle_ns = 400 * kMs;
  const ConstraintContext ctx{d, &spec};
  // tolerance 1.1 -> limit 440 ms: gaps 500 and 450 violate, 400 does not.
  const auto tables =
      apply_extensions({cycle_violation_extension(1.1)}, ctx);
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].num_rows(), 2u);
  const auto rows = tables[0].collect_rows();
  EXPECT_EQ(rows[0][tables[0].schema().require("t")],
            dataflow::Value{std::int64_t{2500 * kMs}});
}

TEST(ExtendTest, CycleViolationNeedsDocumentedCycle) {
  const SequenceData d = gap_sequence();
  const ConstraintContext ctx{d, nullptr};
  EXPECT_TRUE(apply_extensions({cycle_violation_extension(1.1)}, ctx).empty());
}

TEST(ExtendTest, DerivativeExtension) {
  const SequenceData d = gap_sequence();
  const ConstraintContext ctx{d, nullptr};
  const auto tables = apply_extensions({derivative_extension()}, ctx);
  ASSERT_EQ(tables.size(), 1u);
  const auto rows = tables[0].collect_rows();
  ASSERT_EQ(rows.size(), 3u);
  // (60-45)/0.5s = 30 per second.
  EXPECT_EQ(rows[0][tables[0].schema().require("v_num")],
            dataflow::Value{30.0});
}

TEST(ExtendTest, SignalPatternFilters) {
  const SequenceData d = gap_sequence();
  ExtensionRule rule = gap_extension();
  rule.signal_pattern = "other";
  const ConstraintContext ctx{d, nullptr};
  EXPECT_TRUE(apply_extensions({rule}, ctx).empty());
}

TEST(ExtendTest, MultipleRulesProduceMultipleTables) {
  const SequenceData d = gap_sequence();
  const ConstraintContext ctx{d, nullptr};
  const auto tables = apply_extensions(
      {gap_extension(), derivative_extension()}, ctx);
  EXPECT_EQ(tables.size(), 2u);
}

TEST(ExtendTest, EmptySequenceYieldsNothing) {
  SequenceData d;
  d.s_id = "x";
  const ConstraintContext ctx{d, nullptr};
  EXPECT_TRUE(apply_extensions({gap_extension()}, ctx).empty());
}

TEST(ExtendTest, EmitterBuildsKrepSchema) {
  ExtensionEmitter emitter("sig.test", "FC");
  emitter.emit(42, 1.5, "hello");
  const auto table = emitter.build();
  EXPECT_EQ(table.schema(), krep_schema());
  const auto rows = table.collect_rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], dataflow::Value{std::int64_t{42}});
  EXPECT_EQ(rows[0][1], dataflow::Value{"sig.test"});
  EXPECT_EQ(rows[0][2], dataflow::Value{"hello"});
}

}  // namespace
}  // namespace ivt::core
