#include "core/reduce.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"

namespace ivt::core {
namespace {

using testing::kMs;

SequenceData numeric_sequence(const std::vector<std::int64_t>& ts,
                              const std::vector<double>& vs,
                              const std::string& s_id = "sig") {
  SequenceData d;
  d.s_id = s_id;
  d.bus = "FC";
  d.t = ts;
  d.v_num = vs;
  d.has_num.assign(vs.size(), 1);
  d.v_str.assign(vs.size(), "");
  d.has_str.assign(vs.size(), 0);
  return d;
}

signaldb::SignalSpec cyclic_spec(std::int64_t cycle_ns) {
  signaldb::SignalSpec spec;
  spec.name = "sig";
  spec.expected_cycle_ns = cycle_ns;
  return spec;
}

TEST(ReduceTest, DropRepeatedValuesKeepsChanges) {
  // Values: 1 1 1 2 2 3 -> keep 1 (first), 2 (change), 3 (change+last).
  const SequenceData d = numeric_sequence(
      {0, 10 * kMs, 20 * kMs, 30 * kMs, 40 * kMs, 50 * kMs},
      {1, 1, 1, 2, 2, 3});
  const auto spec = cyclic_spec(10 * kMs);
  const std::vector<ConstraintRule> rules{drop_repeated_values_rule()};
  const SequenceData out = reduce_sequence(rules, d, &spec);
  EXPECT_EQ(out.v_num, (std::vector<double>{1, 2, 3}));
}

TEST(ReduceTest, FirstAndLastAlwaysSurvive) {
  const SequenceData d = numeric_sequence(
      {0, 10 * kMs, 20 * kMs}, {5, 5, 5});
  const auto spec = cyclic_spec(10 * kMs);
  const SequenceData out =
      reduce_sequence({drop_repeated_values_rule()}, d, &spec);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.t.front(), 0);
  EXPECT_EQ(out.t.back(), 20 * kMs);
}

TEST(ReduceTest, CycleViolationWitnessPreserved) {
  // Identical values, but one gap of 50 ms >> 1.5 x 10 ms cycle: the
  // element after the gap must survive ("important state changes such as
  // violations of cycle times need to be preserved").
  const SequenceData d = numeric_sequence(
      {0, 10 * kMs, 60 * kMs, 70 * kMs}, {5, 5, 5, 5});
  const auto spec = cyclic_spec(10 * kMs);
  const SequenceData out =
      reduce_sequence({drop_repeated_values_rule(1.5)}, d, &spec);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.t[1], 60 * kMs);  // violation witness
}

TEST(ReduceTest, NoSpecFallsBackToPureRepeatRemoval) {
  const SequenceData d = numeric_sequence(
      {0, 100 * kMs, 20'000 * kMs}, {5, 5, 5});
  const SequenceData out =
      reduce_sequence({drop_repeated_values_rule()}, d, nullptr);
  EXPECT_EQ(out.size(), 2u);  // inner repeat removed despite giant gap
}

TEST(ReduceTest, StringRepeatsReduced) {
  SequenceData d;
  d.s_id = "state";
  d.t = {0, 10 * kMs, 20 * kMs, 30 * kMs};
  d.v_num = {0, 0, 0, 0};
  d.has_num = {0, 0, 0, 0};
  d.v_str = {"on", "on", "off", "off"};
  d.has_str = {1, 1, 1, 1};
  const SequenceData out =
      reduce_sequence({drop_repeated_values_rule()}, d, nullptr);
  EXPECT_EQ(out.v_str, (std::vector<std::string>{"on", "off", "off"}));
}

TEST(ReduceTest, SignalPatternFilters) {
  const SequenceData d = numeric_sequence({0, kMs, 2 * kMs}, {1, 1, 1});
  ConstraintRule other = drop_repeated_values_rule();
  other.signal_pattern = "different_signal";
  const SequenceData out = reduce_sequence({other}, d, nullptr);
  EXPECT_EQ(out.size(), 3u);  // rule did not apply
}

TEST(ReduceTest, ApplicabilityPredicateRespected) {
  const SequenceData d = numeric_sequence({0, kMs, 2 * kMs}, {1, 1, 1});
  ConstraintRule rule = drop_repeated_values_rule();
  rule.applies = [](const ConstraintContext&) { return false; };
  EXPECT_EQ(reduce_sequence({rule}, d, nullptr).size(), 3u);
}

TEST(ReduceTest, MarksAreOrAcrossRules) {
  const SequenceData d = numeric_sequence(
      {0, 10 * kMs, 20 * kMs, 30 * kMs}, {1.0, 1.0, 50.0, 60.0});
  // Rule A: drop repeats (marks index 1). Rule B: drop band [45, 55]
  // interior — only boundary witnesses survive.
  const std::vector<ConstraintRule> rules{
      drop_repeated_values_rule(),
      drop_within_band_rule("sig", 0.9, 1.1),
  };
  const SequenceData out = reduce_sequence(rules, d, nullptr);
  // Index 1 dropped by repeats; band rule keeps boundaries.
  EXPECT_EQ(out.v_num, (std::vector<double>{1.0, 50.0, 60.0}));
}

TEST(ReduceTest, BandRulePreservesEntryExit) {
  const SequenceData d = numeric_sequence(
      {0, kMs, 2 * kMs, 3 * kMs, 4 * kMs}, {0.0, 10.0, 10.0, 10.0, 0.0});
  const SequenceData out = reduce_sequence(
      {drop_within_band_rule("sig", 9.0, 11.0)}, d, nullptr);
  // Middle 10 removed; first/last 10 kept as witnesses.
  EXPECT_EQ(out.v_num, (std::vector<double>{0.0, 10.0, 10.0, 0.0}));
}

TEST(ReduceTest, DecimateOnlyAppliesAboveRate) {
  // 100 points over 1 s = 100 Hz > 50 Hz: decimation applies.
  std::vector<std::int64_t> ts;
  std::vector<double> vs;
  for (int i = 0; i < 100; ++i) {
    ts.push_back(i * 10 * kMs / 10);
    vs.push_back(i);
  }
  const SequenceData d = numeric_sequence(ts, vs);
  const SequenceData out =
      reduce_sequence({decimate_rule("sig", 10, 50.0)}, d, nullptr);
  EXPECT_LE(out.size(), 11u);
  EXPECT_GE(out.size(), 10u);

  // Slow sequence: rule's d predicate fails, nothing removed.
  const SequenceData slow = numeric_sequence(
      {0, 1000 * kMs, 2000 * kMs}, {1, 2, 3});
  EXPECT_EQ(
      reduce_sequence({decimate_rule("sig", 10, 50.0)}, slow, nullptr).size(),
      3u);
}

TEST(ReduceTest, StatsAccumulate) {
  const SequenceData d = numeric_sequence(
      {0, 10 * kMs, 20 * kMs}, {1, 1, 2});
  ReductionStats stats;
  reduce_sequence({drop_repeated_values_rule()}, d, nullptr, &stats);
  EXPECT_EQ(stats.input_rows, 3u);
  EXPECT_EQ(stats.removed_rows, 1u);
}

TEST(ReduceTest, EmptySequence) {
  const SequenceData d = numeric_sequence({}, {});
  EXPECT_EQ(reduce_sequence({drop_repeated_values_rule()}, d, nullptr).size(),
            0u);
}

TEST(ReduceTest, TwoElementSequenceUntouched) {
  const SequenceData d = numeric_sequence({0, kMs}, {1, 1});
  EXPECT_EQ(reduce_sequence({drop_repeated_values_rule()}, d, nullptr).size(),
            2u);
}

}  // namespace
}  // namespace ivt::core
