#include "core/branches.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/schemas.hpp"
#include "test_fixtures.hpp"

namespace ivt::core {
namespace {

using testing::kMs;

SequenceData ramp_with_outlier() {
  SequenceData d;
  d.s_id = "speed";
  d.bus = "FC";
  for (int i = 0; i < 60; ++i) {
    d.t.push_back(i * 10 * kMs);
    double v = static_cast<double>(i);
    if (i == 30) v = 800.0;  // injected outlier (paper Table 4 shows v=800)
    d.v_num.push_back(v);
    d.has_num.push_back(1);
    d.v_str.emplace_back();
    d.has_str.push_back(0);
  }
  return d;
}

std::vector<std::string> kinds_of(const dataflow::Table& out) {
  std::vector<std::string> kinds;
  const std::size_t col = out.schema().require("element_kind");
  out.for_each_row([&](const dataflow::RowView& row) {
    kinds.push_back(row.string_at(col));
  });
  return kinds;
}

TEST(BranchAlphaTest, OutputIsKrepSchemaAndTimeOrdered) {
  const SequenceData d = ramp_with_outlier();
  BranchConfig config;
  const auto out = process_alpha({d, nullptr}, config);
  EXPECT_EQ(out.schema(), krep_schema());
  std::int64_t last_t = -1;
  out.for_each_row([&](const dataflow::RowView& row) {
    EXPECT_GE(row.int64_at(0), last_t);
    last_t = row.int64_at(0);
  });
}

TEST(BranchAlphaTest, OutlierIsolatedAndMergedBack) {
  const SequenceData d = ramp_with_outlier();
  BranchConfig config;
  BranchStats stats;
  const auto out = process_alpha({d, nullptr}, config, &stats);
  EXPECT_EQ(stats.outliers, 1u);
  bool found = false;
  const std::size_t value_col = out.schema().require("value");
  const std::size_t kind_col = out.schema().require("element_kind");
  out.for_each_row([&](const dataflow::RowView& row) {
    if (row.string_at(kind_col) == kElementOutlier) {
      found = true;
      EXPECT_NE(row.string_at(value_col).find("outlier v=800"),
                std::string::npos);
      EXPECT_EQ(row.int64_at(0), 300 * kMs);
    }
  });
  EXPECT_TRUE(found);
}

TEST(BranchAlphaTest, SegmentsCompressTheSequence) {
  const SequenceData d = ramp_with_outlier();
  BranchConfig config;
  BranchStats stats;
  const auto out = process_alpha({d, nullptr}, config, &stats);
  // A clean ramp should collapse into very few segments.
  EXPECT_GE(stats.segments, 1u);
  EXPECT_LT(stats.segments, 10u);
  EXPECT_LT(out.num_rows(), d.size());
}

TEST(BranchAlphaTest, RampSegmentsAreIncreasing) {
  const SequenceData d = ramp_with_outlier();
  BranchConfig config;
  const auto out = process_alpha({d, nullptr}, config);
  const std::size_t value_col = out.schema().require("value");
  const std::size_t kind_col = out.schema().require("element_kind");
  out.for_each_row([&](const dataflow::RowView& row) {
    if (row.string_at(kind_col) == kElementState) {
      EXPECT_NE(row.string_at(value_col).find("increasing"),
                std::string::npos)
          << row.string_at(value_col);
    }
  });
}

TEST(BranchAlphaTest, FlatSequenceIsSteadyMidLevel) {
  SequenceData d;
  d.s_id = "const";
  d.bus = "FC";
  for (int i = 0; i < 30; ++i) {
    d.t.push_back(i * 10 * kMs);
    d.v_num.push_back(5.0);
    d.has_num.push_back(1);
    d.v_str.emplace_back();
    d.has_str.push_back(0);
  }
  BranchConfig config;
  const auto out = process_alpha({d, nullptr}, config);
  ASSERT_GE(out.num_rows(), 1u);
  const auto rows = out.collect_rows();
  const std::size_t value_col = out.schema().require("value");
  EXPECT_EQ(rows[0][value_col], dataflow::Value{"(mid,steady)"});
}

TEST(BranchAlphaTest, ValidityMarkersRoutedSeparately) {
  SequenceData d = ramp_with_outlier();
  signaldb::SignalSpec spec;
  spec.name = "speed";
  spec.value_table = {{15, "snv", true}};
  // Replace one instance with a validity label.
  d.v_str[10] = "snv";
  d.has_str[10] = 1;
  d.has_num[10] = 0;
  BranchStats stats;
  const auto out = process_alpha({d, &spec}, BranchConfig{}, &stats);
  EXPECT_EQ(stats.validity, 1u);
  const auto kinds = kinds_of(out);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(),
                      std::string(kElementValidity)),
            kinds.end());
}

TEST(BranchAlphaTest, SaxLevelNames) {
  EXPECT_EQ(sax_level_name(0, 5), "verylow");
  EXPECT_EQ(sax_level_name(2, 5), "mid");
  EXPECT_EQ(sax_level_name(4, 5), "veryhigh");
  EXPECT_EQ(sax_level_name(0, 2), "low");
  EXPECT_EQ(sax_level_name(1, 2), "high");
  EXPECT_EQ(sax_level_name(3, 7), "L3");
}

SequenceData ordinal_sequence() {
  SequenceData d;
  d.s_id = "heat";
  d.bus = "K-LIN";
  const char* labels[] = {"off", "low", "medium", "high",
                          "medium", "snv", "low", "off"};
  for (int i = 0; i < 8; ++i) {
    d.t.push_back(i * 1000 * kMs);
    d.v_num.push_back(0.0);
    d.has_num.push_back(0);
    d.v_str.push_back(labels[i]);
    d.has_str.push_back(1);
  }
  return d;
}

signaldb::SignalSpec heat_spec() {
  signaldb::SignalSpec spec;
  spec.name = "heat";
  spec.ordered_values = true;
  spec.value_table = {{0, "off", false},
                      {1, "low", false},
                      {2, "medium", false},
                      {3, "high", false},
                      {14, "snv", true}};
  return spec;
}

TEST(BranchBetaTest, ValiditySplitKV) {
  const SequenceData d = ordinal_sequence();
  const signaldb::SignalSpec spec = heat_spec();
  BranchStats stats;
  const auto out = process_beta({d, &spec}, BranchConfig{}, &stats);
  EXPECT_EQ(stats.validity, 1u);  // the snv element
  EXPECT_EQ(out.num_rows(), d.size());
}

TEST(BranchBetaTest, FunctionalElementsGetTrends) {
  const SequenceData d = ordinal_sequence();
  const signaldb::SignalSpec spec = heat_spec();
  const auto out = process_beta({d, &spec}, BranchConfig{});
  const auto rows = out.collect_rows();
  const std::size_t value_col = out.schema().require("value");
  // Element 1 ("low" after "off"): increasing rank.
  EXPECT_EQ(rows[1][value_col], dataflow::Value{"(low,increasing)"});
  // Element 4 ("medium" after "high"): decreasing.
  EXPECT_EQ(rows[4][value_col], dataflow::Value{"(medium,decreasing)"});
}

TEST(BranchBetaTest, NumericTranslationUsesRank) {
  const SequenceData d = ordinal_sequence();
  const signaldb::SignalSpec spec = heat_spec();
  const auto out = process_beta({d, &spec}, BranchConfig{});
  const auto rows = out.collect_rows();
  const std::size_t num_col = out.schema().require("v_num");
  EXPECT_EQ(rows[0][num_col], dataflow::Value{0.0});  // off -> rank 0
  EXPECT_EQ(rows[3][num_col], dataflow::Value{3.0});  // high -> rank 3
}

TEST(BranchBetaTest, NumericOrdinalOutlierDetected) {
  SequenceData d;
  d.s_id = "level";
  d.bus = "FC";
  for (int i = 0; i < 40; ++i) {
    d.t.push_back(i * 1000 * kMs);
    d.v_num.push_back(i == 20 ? 99.0 : static_cast<double>(i % 3));
    d.has_num.push_back(1);
    d.v_str.emplace_back();
    d.has_str.push_back(0);
  }
  BranchStats stats;
  process_beta({d, nullptr}, BranchConfig{}, &stats);
  EXPECT_GE(stats.outliers, 1u);
}

TEST(BranchGammaTest, PassthroughNoTransformation) {
  SequenceData d;
  d.s_id = "belt";
  d.bus = "FC";
  const char* labels[] = {"ON", "OFF", "ON"};
  for (int i = 0; i < 3; ++i) {
    d.t.push_back(i * 100 * kMs);
    d.v_num.push_back(0.0);
    d.has_num.push_back(0);
    d.v_str.push_back(labels[i]);
    d.has_str.push_back(1);
  }
  BranchStats stats;
  const auto out = process_gamma({d, nullptr}, BranchConfig{}, &stats);
  EXPECT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(stats.states, 3u);
  const auto rows = out.collect_rows();
  EXPECT_EQ(rows[0][out.schema().require("value")], dataflow::Value{"ON"});
}

TEST(BranchGammaTest, ValiditySplitApplied) {
  SequenceData d;
  d.s_id = "mode";
  d.bus = "FC";
  signaldb::SignalSpec spec;
  spec.name = "mode";
  spec.value_table = {{0, "driving", false}, {15, "invalid", true}};
  const char* labels[] = {"driving", "invalid"};
  for (int i = 0; i < 2; ++i) {
    d.t.push_back(i * 100 * kMs);
    d.v_num.push_back(0.0);
    d.has_num.push_back(0);
    d.v_str.push_back(labels[i]);
    d.has_str.push_back(1);
  }
  BranchStats stats;
  const auto out = process_gamma({d, &spec}, BranchConfig{}, &stats);
  EXPECT_EQ(stats.validity, 1u);
  EXPECT_EQ(stats.states, 1u);
  const auto kinds = kinds_of(out);
  EXPECT_EQ(kinds[1], kElementValidity);
}

TEST(BranchGammaTest, NumericBinaryFormatted) {
  SequenceData d;
  d.s_id = "flag";
  d.bus = "FC";
  d.t = {0, 100 * kMs};
  d.v_num = {0.0, 1.0};
  d.has_num = {1, 1};
  d.v_str = {"", ""};
  d.has_str = {0, 0};
  const auto out = process_gamma({d, nullptr}, BranchConfig{});
  const auto rows = out.collect_rows();
  EXPECT_EQ(rows[0][out.schema().require("value")], dataflow::Value{"0"});
  EXPECT_EQ(rows[1][out.schema().require("value")], dataflow::Value{"1"});
}

TEST(BranchDispatchTest, RoutesToCorrectBranch) {
  const SequenceData d = ramp_with_outlier();
  BranchStats alpha_stats;
  process_by_branch(Branch::Alpha, {d, nullptr}, BranchConfig{},
                    &alpha_stats);
  EXPECT_GT(alpha_stats.segments, 0u);
  BranchStats gamma_stats;
  const auto out = process_by_branch(Branch::Gamma, {d, nullptr},
                                     BranchConfig{}, &gamma_stats);
  EXPECT_EQ(gamma_stats.segments, 0u);
  EXPECT_EQ(out.num_rows(), d.size());
}

TEST(BranchTest, EmptySequenceSafeInAllBranches) {
  SequenceData d;
  d.s_id = "x";
  d.bus = "FC";
  for (Branch b : {Branch::Alpha, Branch::Beta, Branch::Gamma}) {
    const auto out = process_by_branch(b, {d, nullptr}, BranchConfig{});
    EXPECT_EQ(out.num_rows(), 0u);
  }
}

}  // namespace
}  // namespace ivt::core
