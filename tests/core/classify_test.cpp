#include "core/classify.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"

namespace ivt::core {
namespace {

using testing::kMs;

// ---- map_criteria: the six rows of paper Table 3 --------------------------

struct Table3Row {
  char z_type;
  char z_rate;
  std::size_t z_num;
  bool z_val;
  DataType expected_type;
  Branch expected_branch;
};

class Table3Test : public ::testing::TestWithParam<Table3Row> {};

TEST_P(Table3Test, MapsExactlyAsInPaper) {
  const Table3Row& row = GetParam();
  const Classification c = map_criteria(
      Criteria{row.z_type, row.z_rate, row.z_num, row.z_val});
  EXPECT_EQ(c.data_type, row.expected_type);
  EXPECT_EQ(c.branch, row.expected_branch);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable3, Table3Test,
    ::testing::Values(
        // N, H, >2, true -> numeric, alpha
        Table3Row{'N', 'H', 5, true, DataType::Numeric, Branch::Alpha},
        // N, L, >2, true -> ordinal, beta
        Table3Row{'N', 'L', 5, true, DataType::Ordinal, Branch::Beta},
        // S, H|L, >2, true -> ordinal, beta
        Table3Row{'S', 'H', 4, true, DataType::Ordinal, Branch::Beta},
        Table3Row{'S', 'L', 4, true, DataType::Ordinal, Branch::Beta},
        // S, H|L, =2, true -> binary, gamma
        Table3Row{'S', 'L', 2, true, DataType::Binary, Branch::Gamma},
        Table3Row{'S', 'H', 2, true, DataType::Binary, Branch::Gamma},
        // S, H|L, >2, false -> nominal, gamma
        Table3Row{'S', 'L', 6, false, DataType::Nominal, Branch::Gamma},
        // N, H|L, =2, true -> binary, gamma
        Table3Row{'N', 'H', 2, true, DataType::Binary, Branch::Gamma},
        Table3Row{'N', 'L', 2, true, DataType::Binary, Branch::Gamma}));

TEST(MapCriteriaTest, UnlistedCombinationFallsBackToNominalGamma) {
  // Constant sequence: z_num = 1 is not in Table 3.
  const Classification c = map_criteria(Criteria{'N', 'L', 1, true});
  EXPECT_EQ(c.data_type, DataType::Nominal);
  EXPECT_EQ(c.branch, Branch::Gamma);
}

// ---- classify_sequence: criteria computed from data ------------------------

SequenceData numeric_sequence(double rate_hz, std::size_t n,
                              bool binary = false) {
  SequenceData d;
  d.s_id = "sig";
  d.bus = "FC";
  const auto gap = static_cast<std::int64_t>(1e9 / rate_hz);
  for (std::size_t i = 0; i < n; ++i) {
    d.t.push_back(static_cast<std::int64_t>(i) * gap);
    d.v_num.push_back(binary ? static_cast<double>(i % 2)
                             : static_cast<double>(i % 17));
    d.has_num.push_back(1);
    d.v_str.emplace_back();
    d.has_str.push_back(0);
  }
  return d;
}

SequenceData string_sequence(const std::vector<std::string>& labels,
                             double rate_hz = 1.0) {
  SequenceData d;
  d.s_id = "sig";
  d.bus = "FC";
  const auto gap = static_cast<std::int64_t>(1e9 / rate_hz);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    d.t.push_back(static_cast<std::int64_t>(i) * gap);
    d.v_num.push_back(0.0);
    d.has_num.push_back(0);
    d.v_str.push_back(labels[i]);
    d.has_str.push_back(1);
  }
  return d;
}

TEST(ClassifySequenceTest, FastNumericIsAlpha) {
  const SequenceData d = numeric_sequence(50.0, 200);
  const Classification c =
      classify_sequence({d, nullptr}, ClassifierConfig{5.0, 64});
  EXPECT_EQ(c.criteria.z_type, 'N');
  EXPECT_EQ(c.criteria.z_rate, 'H');
  EXPECT_EQ(c.branch, Branch::Alpha);
}

TEST(ClassifySequenceTest, SlowNumericIsBetaOrdinal) {
  const SequenceData d = numeric_sequence(1.0, 50);
  const Classification c =
      classify_sequence({d, nullptr}, ClassifierConfig{5.0, 64});
  EXPECT_EQ(c.criteria.z_rate, 'L');
  EXPECT_EQ(c.data_type, DataType::Ordinal);
  EXPECT_EQ(c.branch, Branch::Beta);
}

TEST(ClassifySequenceTest, BinaryNumericIsGamma) {
  const SequenceData d = numeric_sequence(50.0, 100, /*binary=*/true);
  const Classification c = classify_sequence({d, nullptr});
  EXPECT_EQ(c.criteria.z_num, 2u);
  EXPECT_EQ(c.data_type, DataType::Binary);
  EXPECT_EQ(c.branch, Branch::Gamma);
}

TEST(ClassifySequenceTest, OrderedStringsAreBeta) {
  signaldb::SignalSpec spec;
  spec.name = "sig";
  spec.ordered_values = true;
  spec.value_table = {{0, "off", false},
                      {1, "low", false},
                      {2, "high", false}};
  const SequenceData d = string_sequence({"off", "low", "high", "low"});
  const Classification c = classify_sequence({d, &spec});
  EXPECT_EQ(c.criteria.z_type, 'S');
  EXPECT_TRUE(c.criteria.z_val);
  EXPECT_EQ(c.branch, Branch::Beta);
}

TEST(ClassifySequenceTest, UnorderedStringsAreNominal) {
  signaldb::SignalSpec spec;
  spec.name = "sig";
  spec.ordered_values = false;
  const SequenceData d =
      string_sequence({"driving", "parking", "standby", "driving"});
  const Classification c = classify_sequence({d, &spec});
  EXPECT_FALSE(c.criteria.z_val);
  EXPECT_EQ(c.data_type, DataType::Nominal);
  EXPECT_EQ(c.branch, Branch::Gamma);
}

TEST(ClassifySequenceTest, TwoValuedStringsAreBinary) {
  const SequenceData d = string_sequence({"ON", "OFF", "ON", "OFF"});
  const Classification c = classify_sequence({d, nullptr});
  EXPECT_EQ(c.criteria.z_num, 2u);
  EXPECT_EQ(c.data_type, DataType::Binary);
}

TEST(ClassifySequenceTest, ValidityLabelsExcludedFromZNum) {
  signaldb::SignalSpec spec;
  spec.name = "sig";
  spec.value_table = {{0, "ON", false},
                      {1, "OFF", false},
                      {14, "snv", true}};
  const SequenceData d = string_sequence({"ON", "OFF", "snv", "ON"});
  const Classification c = classify_sequence({d, &spec});
  EXPECT_EQ(c.criteria.z_num, 2u);  // snv not counted
  EXPECT_EQ(c.data_type, DataType::Binary);
}

TEST(ClassifySequenceTest, RateThresholdBoundary) {
  // Exactly at threshold: rate must be H only when strictly greater.
  const SequenceData d = numeric_sequence(5.0, 100);
  const Classification at =
      classify_sequence({d, nullptr}, ClassifierConfig{5.0, 64});
  // rate = n/duration = 100 / (99 * 0.2 s) ≈ 5.05 > 5 -> H.
  EXPECT_EQ(at.criteria.z_rate, 'H');
  const Classification above =
      classify_sequence({d, nullptr}, ClassifierConfig{6.0, 64});
  EXPECT_EQ(above.criteria.z_rate, 'L');
}

TEST(ClassifySequenceTest, EmptySequenceIsGamma) {
  SequenceData d;
  d.s_id = "sig";
  const Classification c = classify_sequence({d, nullptr});
  EXPECT_EQ(c.branch, Branch::Gamma);
}

TEST(ClassifyTest, EnumNames) {
  EXPECT_EQ(to_string(DataType::Numeric), "numeric");
  EXPECT_EQ(to_string(DataType::Ordinal), "ordinal");
  EXPECT_EQ(to_string(DataType::Binary), "binary");
  EXPECT_EQ(to_string(DataType::Nominal), "nominal");
  EXPECT_EQ(to_string(Branch::Alpha), "alpha");
  EXPECT_EQ(to_string(Branch::Beta), "beta");
  EXPECT_EQ(to_string(Branch::Gamma), "gamma");
}

}  // namespace
}  // namespace ivt::core
