#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "test_fixtures.hpp"

namespace ivt::core {
namespace {

using testing::belt_record;
using testing::heater_record;
using testing::kMs;
using testing::wiper_catalog;
using testing::wiper_record;

/// A trace exercising all three branches: fast numeric wiper position
/// (α), ordinal heater level (β), binary belt contact (γ), with cyclic
/// repetition (reduction fodder) and gateway duplicates.
tracefile::Trace rich_trace() {
  tracefile::Trace trace;
  // wpos: 20 ms cycle, ramping slowly with long repeated stretches.
  for (int i = 0; i < 500; ++i) {
    const double value = static_cast<double>(i / 10);
    trace.records.push_back(wiper_record(i * 20 * kMs, value, 1.0));
  }
  // heat: 1 s cycle through the ordinal levels, with one invalid marker.
  const std::uint8_t levels[] = {0, 0, 1, 2, 3, 3, 14, 2, 1, 0};
  for (int i = 0; i < 10; ++i) {
    trace.records.push_back(heater_record(i * 1000 * kMs + 3, levels[i]));
  }
  // belt: 200 ms cycle, toggling every 2 s.
  for (int i = 0; i < 50; ++i) {
    trace.records.push_back(belt_record(i * 200 * kMs + 7, (i / 10) % 2 == 1));
  }
  std::sort(trace.records.begin(), trace.records.end(),
            [](const tracefile::TraceRecord& a,
               const tracefile::TraceRecord& b) { return a.t_ns < b.t_ns; });
  return trace;
}

class PipelineTest : public ::testing::Test {
 protected:
  dataflow::Engine engine_{{.workers = 4, .default_partitions = 4}};
  signaldb::Catalog catalog_ = wiper_catalog();
};

TEST_F(PipelineTest, EndToEndProducesAllStages) {
  PipelineConfig config;
  config.classifier.rate_threshold_hz = 5.0;
  config.extensions.push_back(cycle_violation_extension(1.5));
  const Pipeline pipeline(catalog_, config);
  const auto kb = tracefile::to_kb_table(rich_trace(), 8);
  const PipelineResult result = pipeline.run(engine_, kb);

  EXPECT_EQ(result.kb_rows, 560u);
  EXPECT_EQ(result.kpre_rows, 560u);  // all messages relevant
  // wiper rows produce 2 signals each.
  EXPECT_EQ(result.ks_rows, 500u * 2 + 10 + 50);
  EXPECT_GT(result.reduced_rows, 0u);
  EXPECT_LT(result.reduced_rows, result.ks_rows);  // reduction happened
  EXPECT_GT(result.krep_rows, 0u);
  EXPECT_GT(result.state.num_rows(), 0u);
  ASSERT_EQ(result.sequences.size(), 4u);  // wpos, wvel, heat, belt
}

TEST_F(PipelineTest, BranchAssignmentsMatchSignalNature) {
  PipelineConfig config;
  config.classifier.rate_threshold_hz = 5.0;
  const Pipeline pipeline(catalog_, config);
  const auto kb = tracefile::to_kb_table(rich_trace(), 4);
  const PipelineResult result = pipeline.run(engine_, kb);

  std::map<std::string, Branch> branches;
  for (const SequenceReport& report : result.sequences) {
    branches[report.s_id] = report.classification.branch;
  }
  EXPECT_EQ(branches.at("wpos"), Branch::Alpha);
  EXPECT_EQ(branches.at("heat"), Branch::Beta);
  EXPECT_EQ(branches.at("belt"), Branch::Gamma);
}

TEST_F(PipelineTest, SignalSelectionRestrictsWork) {
  PipelineConfig config;
  config.signals = {"wpos"};
  const Pipeline pipeline(catalog_, config);
  const auto kb = tracefile::to_kb_table(rich_trace(), 4);
  const PipelineResult result = pipeline.run(engine_, kb);
  EXPECT_EQ(result.kpre_rows, 500u);  // heater/belt messages preselected away
  EXPECT_EQ(result.ks_rows, 500u);
  EXPECT_EQ(result.sequences.size(), 1u);
  EXPECT_EQ(result.sequences[0].s_id, "wpos");
}

TEST_F(PipelineTest, UnknownSignalNameThrowsAtConstruction) {
  PipelineConfig config;
  config.signals = {"bogus"};
  EXPECT_THROW(Pipeline(catalog_, config), std::invalid_argument);
}

TEST_F(PipelineTest, StateColumnsCoverSignals) {
  PipelineConfig config;
  const Pipeline pipeline(catalog_, config);
  const auto kb = tracefile::to_kb_table(rich_trace(), 4);
  const PipelineResult result = pipeline.run(engine_, kb);
  EXPECT_TRUE(result.state.schema().contains("wpos"));
  EXPECT_TRUE(result.state.schema().contains("heat"));
  EXPECT_TRUE(result.state.schema().contains("belt"));
}

TEST_F(PipelineTest, KeepKsStoresTable) {
  PipelineConfig config;
  config.keep_ks = true;
  const Pipeline pipeline(catalog_, config);
  const auto kb = tracefile::to_kb_table(rich_trace(), 4);
  const PipelineResult result = pipeline.run(engine_, kb);
  EXPECT_EQ(result.ks.num_rows(), result.ks_rows);
}

TEST_F(PipelineTest, DisableStateSkipsIt) {
  PipelineConfig config;
  config.build_state = false;
  const Pipeline pipeline(catalog_, config);
  const auto kb = tracefile::to_kb_table(rich_trace(), 4);
  const PipelineResult result = pipeline.run(engine_, kb);
  EXPECT_EQ(result.state.num_rows(), 0u);
  EXPECT_GT(result.krep_rows, 0u);
}

TEST_F(PipelineTest, ExtractMatchesRunKsCount) {
  PipelineConfig config;
  const Pipeline pipeline(catalog_, config);
  const auto kb = tracefile::to_kb_table(rich_trace(), 4);
  const auto ks = pipeline.extract(engine_, kb);
  const PipelineResult result = pipeline.run(engine_, kb);
  EXPECT_EQ(ks.num_rows(), result.ks_rows);
}

TEST_F(PipelineTest, ExtractAndReduceMatchesRun) {
  PipelineConfig config;
  const Pipeline pipeline(catalog_, config);
  const auto kb = tracefile::to_kb_table(rich_trace(), 4);
  const auto reduced = pipeline.extract_and_reduce(engine_, kb);
  const PipelineResult result = pipeline.run(engine_, kb);
  EXPECT_EQ(reduced.ks_rows, result.ks_rows);
  EXPECT_EQ(reduced.reduced_rows, result.reduced_rows);
  EXPECT_EQ(reduced.sequences.size(), result.sequences.size());
}

TEST_F(PipelineTest, DeterministicAcrossWorkerCounts) {
  PipelineConfig config;
  config.extensions.push_back(gap_extension());
  const Pipeline pipeline(catalog_, config);
  const auto kb = tracefile::to_kb_table(rich_trace(), 8);
  dataflow::Engine one{{.workers = 1, .default_partitions = 4}};
  dataflow::Engine many{{.workers = 8, .default_partitions = 4}};
  const PipelineResult a = pipeline.run(one, kb);
  const PipelineResult b = pipeline.run(many, kb);
  EXPECT_EQ(a.krep.collect_rows(), b.krep.collect_rows());
  EXPECT_EQ(a.state.collect_rows(), b.state.collect_rows());
}

TEST_F(PipelineTest, GatewayDuplicatesDeduplicated) {
  // Declare the wiper on KC as well (as if documented for both buses).
  signaldb::Catalog catalog = wiper_catalog();
  signaldb::MessageSpec copy = *catalog.find_message("FC", 3);
  copy.name = "Wiper_KC";
  copy.bus = "KC";
  for (auto& s : copy.signals) s.name += "_kc";
  // Not needed — instead simulate gateway copies on the same declared bus.
  tracefile::Trace trace;
  for (int i = 0; i < 20; ++i) {
    trace.records.push_back(wiper_record(i * 20 * kMs, 1.0 * i, 1.0, "FC"));
  }
  PipelineConfig config;
  config.signals = {"wpos"};
  const Pipeline pipeline(catalog_, config);
  const auto kb = tracefile::to_kb_table(trace, 2);
  const PipelineResult result = pipeline.run(engine_, kb);
  EXPECT_TRUE(result.correspondences.empty());
  EXPECT_EQ(result.sequences.size(), 1u);
}

TEST_F(PipelineTest, ReportsCountOutliersAndExtensions) {
  PipelineConfig config;
  config.extensions.push_back(gap_extension());
  const Pipeline pipeline(catalog_, config);
  const auto kb = tracefile::to_kb_table(rich_trace(), 4);
  const PipelineResult result = pipeline.run(engine_, kb);
  for (const SequenceReport& report : result.sequences) {
    EXPECT_GT(report.input_rows, 0u);
    EXPECT_GT(report.extension_rows, 0u);  // gap rule applies everywhere
    EXPECT_LE(report.reduced_rows, report.input_rows);
  }
}

TEST_F(PipelineTest, ConcatTablesMergesPartitions) {
  dataflow::TableBuilder b1(ks_schema(), 0);
  dataflow::TableBuilder b2(ks_schema(), 0);
  std::vector<dataflow::Table> tables;
  tables.push_back(b1.build());
  tables.push_back(b2.build());
  const auto out = concat_tables(ks_schema(), std::move(tables));
  EXPECT_EQ(out.num_rows(), 0u);
  EXPECT_GE(out.num_partitions(), 1u);
}

}  // namespace
}  // namespace ivt::core
