#include "core/urel.hpp"

#include <gtest/gtest.h>

#include "core/schemas.hpp"
#include "test_fixtures.hpp"

namespace ivt::core {
namespace {

using testing::wiper_catalog;

TEST(UrelTest, SchemaHasPaperColumns) {
  // u_rel = (s_id^rel, b_id, m_id, u_info) — u_info unpacked into typed
  // columns.
  const auto& schema = urel_schema();
  EXPECT_TRUE(schema.contains("s_id"));
  EXPECT_TRUE(schema.contains("u_b_id"));
  EXPECT_TRUE(schema.contains("u_m_id"));
  EXPECT_TRUE(schema.contains("start_bit"));
  EXPECT_TRUE(schema.contains("scale"));
  EXPECT_TRUE(schema.contains("expected_cycle_ns"));
}

TEST(UrelTest, SelectedSignalsOnly) {
  const auto catalog = wiper_catalog();
  const auto urel = make_urel_table(catalog, {"wpos", "heat"});
  EXPECT_EQ(urel.num_rows(), 2u);
  const auto rows = urel.collect_rows();
  EXPECT_EQ(rows[0][0], dataflow::Value{"wpos"});
  EXPECT_EQ(rows[1][0], dataflow::Value{"heat"});
}

TEST(UrelTest, TupleCarriesInterpretationRule) {
  const auto catalog = wiper_catalog();
  const auto urel = make_urel_table(catalog, {"wpos"});
  const auto row = urel.collect_rows()[0];
  const auto& schema = urel.schema();
  EXPECT_EQ(row[schema.require("u_b_id")], dataflow::Value{"FC"});
  EXPECT_EQ(row[schema.require("u_m_id")], dataflow::Value{std::int64_t{3}});
  EXPECT_EQ(row[schema.require("start_bit")],
            dataflow::Value{std::int64_t{0}});
  EXPECT_EQ(row[schema.require("length")], dataflow::Value{std::int64_t{16}});
  EXPECT_EQ(row[schema.require("scale")], dataflow::Value{0.5});
}

TEST(UrelTest, UnknownSignalThrows) {
  const auto catalog = wiper_catalog();
  EXPECT_THROW(make_urel_table(catalog, {"nope"}), std::invalid_argument);
}

TEST(UrelTest, FullTableCoversAllSignals) {
  const auto catalog = wiper_catalog();
  const auto urel = make_full_urel_table(catalog);
  EXPECT_EQ(urel.num_rows(), catalog.num_signals());
}

TEST(UrelTest, RelevantMessageKeysDeduplicated) {
  const auto catalog = wiper_catalog();
  // wpos and wvel share (FC, 3).
  const auto urel = make_urel_table(catalog, {"wpos", "wvel", "heat"});
  const auto keys = relevant_message_keys(urel);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0].bus, "FC");
  EXPECT_EQ(keys[0].message_id, 3);
  EXPECT_EQ(keys[1].bus, "K-LIN");
}

TEST(UrelTest, CategoricalFlagSet) {
  const auto catalog = wiper_catalog();
  const auto urel = make_urel_table(catalog, {"wpos", "heat"});
  const auto rows = urel.collect_rows();
  const std::size_t cat = urel.schema().require("categorical");
  EXPECT_EQ(rows[0][cat], dataflow::Value{std::int64_t{0}});
  EXPECT_EQ(rows[1][cat], dataflow::Value{std::int64_t{1}});
}

}  // namespace
}  // namespace ivt::core
