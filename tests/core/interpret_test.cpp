#include "core/interpret.hpp"

#include <gtest/gtest.h>

#include "core/schemas.hpp"
#include "core/urel.hpp"
#include "test_fixtures.hpp"

namespace ivt::core {
namespace {

using testing::belt_record;
using testing::fig2_trace;
using testing::heater_record;
using testing::kMs;
using testing::wiper_catalog;
using testing::wiper_record;

class InterpretTest : public ::testing::Test {
 protected:
  dataflow::Engine engine_{
      dataflow::EngineConfig{.workers = 4, .default_partitions = 4}};
  signaldb::Catalog catalog_ = wiper_catalog();
};

TEST_F(InterpretTest, PreselectKeepsOnlyRelevantMessages) {
  tracefile::Trace trace;
  trace.records.push_back(wiper_record(0, 10.0, 1.0));
  trace.records.push_back(heater_record(1 * kMs, 2));
  trace.records.push_back(belt_record(2 * kMs, true));
  // Unknown message: must be dropped even before interpretation.
  tracefile::TraceRecord unknown;
  unknown.t_ns = 3 * kMs;
  unknown.bus = "FC";
  unknown.message_id = 999;
  trace.records.push_back(unknown);

  const auto kb = tracefile::to_kb_table(trace, 2);
  const auto urel = make_urel_table(catalog_, {"wpos", "heat"});
  const auto kpre = preselect(engine_, kb, urel);
  EXPECT_EQ(kpre.num_rows(), 2u);  // wiper + heater rows only
}

TEST_F(InterpretTest, Fig2WiperExample) {
  // Paper Fig. 2: payload x5A x01 -> wpos 45°, wvel 1.
  const auto kb = tracefile::to_kb_table(fig2_trace(), 1);
  const auto urel = make_urel_table(catalog_, {"wpos", "wvel"});
  InterpretOptions options;
  options.catalog = &catalog_;
  const auto ks = extract_signals(engine_, kb, urel, options);
  ASSERT_EQ(ks.num_rows(), 4u);  // 2 messages x 2 signals

  const auto rows = ks.collect_rows();
  const auto& schema = ks.schema();
  const std::size_t sid = schema.require("s_id");
  const std::size_t vnum = schema.require("v_num");
  const std::size_t t = schema.require("t");
  // Row order: per message, signals in U_comb order.
  EXPECT_EQ(rows[0][sid], dataflow::Value{"wpos"});
  EXPECT_EQ(rows[0][vnum], dataflow::Value{45.0});
  EXPECT_EQ(rows[0][t], dataflow::Value{std::int64_t{2000 * kMs}});
  EXPECT_EQ(rows[1][sid], dataflow::Value{"wvel"});
  EXPECT_EQ(rows[1][vnum], dataflow::Value{1.0});
  EXPECT_EQ(rows[2][vnum], dataflow::Value{60.0});
}

TEST_F(InterpretTest, KsSchemaMatchesPaper) {
  const auto& schema = ks_schema();
  EXPECT_TRUE(schema.contains("t"));
  EXPECT_TRUE(schema.contains("s_id"));
  EXPECT_TRUE(schema.contains("v_num"));
  EXPECT_TRUE(schema.contains("v_str"));
  EXPECT_TRUE(schema.contains("b_id"));
}

TEST_F(InterpretTest, CategoricalValuesCarryLabels) {
  tracefile::Trace trace;
  trace.records.push_back(heater_record(0, 2));   // medium
  trace.records.push_back(heater_record(kMs, 14));  // snv (validity)
  const auto kb = tracefile::to_kb_table(trace, 1);
  const auto urel = make_urel_table(catalog_, {"heat"});
  InterpretOptions options;
  options.catalog = &catalog_;
  const auto ks = extract_signals(engine_, kb, urel, options);
  const auto rows = ks.collect_rows();
  ASSERT_EQ(rows.size(), 2u);
  const std::size_t vstr = ks.schema().require("v_str");
  EXPECT_EQ(rows[0][vstr], dataflow::Value{"medium"});
  EXPECT_EQ(rows[1][vstr], dataflow::Value{"snv"});
}

TEST_F(InterpretTest, WithoutCatalogLabelsAreRaw) {
  tracefile::Trace trace;
  trace.records.push_back(heater_record(0, 2));
  const auto kb = tracefile::to_kb_table(trace, 1);
  const auto urel = make_urel_table(catalog_, {"heat"});
  const auto ks = extract_signals(engine_, kb, urel, {});
  const auto rows = ks.collect_rows();
  EXPECT_EQ(rows[0][ks.schema().require("v_str")], dataflow::Value{"raw:2"});
}

TEST_F(InterpretTest, SkipErrorFramesOption) {
  tracefile::Trace trace;
  auto bad = wiper_record(0, 10.0, 1.0);
  bad.flags = tracefile::TraceRecord::kFlagErrorFrame;
  trace.records.push_back(bad);
  trace.records.push_back(wiper_record(kMs, 20.0, 1.0));
  const auto kb = tracefile::to_kb_table(trace, 1);
  const auto urel = make_urel_table(catalog_, {"wpos"});
  InterpretOptions options;
  options.catalog = &catalog_;
  options.skip_error_frames = true;
  EXPECT_EQ(extract_signals(engine_, kb, urel, options).num_rows(), 1u);
  options.skip_error_frames = false;
  EXPECT_EQ(extract_signals(engine_, kb, urel, options).num_rows(), 2u);
}

TEST_F(InterpretTest, TwoStageMatchesFused) {
  tracefile::Trace trace;
  for (int i = 0; i < 20; ++i) {
    trace.records.push_back(wiper_record(i * kMs, 5.0 * i, 2.0));
    trace.records.push_back(heater_record(i * kMs + 1, i % 4));
  }
  const auto kb = tracefile::to_kb_table(trace, 3);
  const auto urel = make_full_urel_table(catalog_);
  InterpretOptions fused;
  fused.catalog = &catalog_;
  InterpretOptions staged = fused;
  staged.two_stage_interpretation = true;
  const auto a = extract_signals(engine_, kb, urel, fused);
  const auto b = extract_signals(engine_, kb, urel, staged);
  EXPECT_EQ(a.collect_rows(), b.collect_rows());
}

TEST_F(InterpretTest, TruncatedPayloadYieldsNoInstance) {
  tracefile::TraceRecord rec;
  rec.bus = "FC";
  rec.message_id = 3;
  rec.payload = {0x5A};  // too short for wpos (16 bits)
  tracefile::Trace trace;
  trace.records.push_back(rec);
  const auto kb = tracefile::to_kb_table(trace, 1);
  const auto urel = make_urel_table(catalog_, {"wpos"});
  EXPECT_EQ(extract_signals(engine_, kb, urel, {}).num_rows(), 0u);
}

TEST_F(InterpretTest, GatewayDuplicateKeepsBusIdentity) {
  tracefile::Trace trace;
  trace.records.push_back(wiper_record(0, 45.0, 1.0, "FC"));
  trace.records.push_back(wiper_record(150'000, 45.0, 1.0, "KC"));
  const auto kb = tracefile::to_kb_table(trace, 1);
  // U_rel declares the wiper on FC only; the KC copy must not match the
  // join (different b_id).
  const auto urel = make_urel_table(catalog_, {"wpos"});
  const auto ks = extract_signals(engine_, kb, urel, {});
  EXPECT_EQ(ks.num_rows(), 1u);
}

TEST_F(InterpretTest, RowCountScalesWithSignalsPerMessage) {
  tracefile::Trace trace;
  for (int i = 0; i < 10; ++i) {
    trace.records.push_back(wiper_record(i * kMs, 1.0 * i, 2.0));
  }
  const auto kb = tracefile::to_kb_table(trace, 2);
  const auto one = make_urel_table(catalog_, {"wpos"});
  const auto two = make_urel_table(catalog_, {"wpos", "wvel"});
  EXPECT_EQ(extract_signals(engine_, kb, one, {}).num_rows(), 10u);
  EXPECT_EQ(extract_signals(engine_, kb, two, {}).num_rows(), 20u);
}

TEST_F(InterpretTest, DeterministicAcrossWorkerCounts) {
  tracefile::Trace trace;
  for (int i = 0; i < 50; ++i) {
    trace.records.push_back(wiper_record(i * kMs, 2.0 * i, 1.0));
  }
  const auto kb = tracefile::to_kb_table(trace, 7);
  const auto urel = make_full_urel_table(catalog_);
  dataflow::Engine one{{.workers = 1}};
  dataflow::Engine eight{{.workers = 8}};
  EXPECT_EQ(extract_signals(one, kb, urel, {}).collect_rows(),
            extract_signals(eight, kb, urel, {}).collect_rows());
}

}  // namespace
}  // namespace ivt::core
