// Coverage of the pipeline's configuration switches beyond the defaults.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "test_fixtures.hpp"

namespace ivt::core {
namespace {

using testing::kMs;
using testing::wiper_catalog;
using testing::wiper_record;

/// Wiper trace with long repeated stretches: 50 identical values, then a
/// change, then 50 identical again.
tracefile::Trace repetitive_trace() {
  tracefile::Trace trace;
  for (int i = 0; i < 100; ++i) {
    const double value = i < 50 ? 10.0 : 20.0;
    trace.records.push_back(wiper_record(i * 20 * kMs, value, 1.0));
  }
  return trace;
}

class PipelineConfigTest : public ::testing::Test {
 protected:
  dataflow::Engine engine_{{.workers = 2, .default_partitions = 4}};
  signaldb::Catalog catalog_ = wiper_catalog();
};

TEST_F(PipelineConfigTest, ExtensionsOnRawSeeTrueSendGaps) {
  PipelineConfig config;
  config.signals = {"wpos"};
  config.extensions = {gap_extension()};
  config.extensions_on_reduced = false;  // default
  const Pipeline pipeline(catalog_, config);
  const auto result =
      pipeline.run(engine_, tracefile::to_kb_table(repetitive_trace(), 4));
  // Raw sequence: 99 gaps of exactly 20 ms each.
  std::size_t gap_rows = 0;
  const auto& schema = result.krep.schema();
  const std::size_t sid_col = schema.require("s_id");
  const std::size_t num_col = schema.require("v_num");
  result.krep.for_each_row([&](const dataflow::RowView& row) {
    if (row.string_at(sid_col) != "wpos.gap") return;
    ++gap_rows;
    EXPECT_NEAR(row.float64_at(num_col), 0.02, 1e-9);
  });
  EXPECT_EQ(gap_rows, 99u);
}

TEST_F(PipelineConfigTest, ExtensionsOnReducedSeeReducedGaps) {
  PipelineConfig config;
  config.signals = {"wpos"};
  config.extensions = {gap_extension()};
  config.extensions_on_reduced = true;  // literal Algorithm 1 line 12
  const Pipeline pipeline(catalog_, config);
  const auto result =
      pipeline.run(engine_, tracefile::to_kb_table(repetitive_trace(), 4));
  // Reduced sequence: first, change point, last + cycle-violation-free
  // repeats removed -> far fewer gap elements, and one spanning ~1 s.
  std::size_t gap_rows = 0;
  double max_gap = 0.0;
  const auto& schema = result.krep.schema();
  const std::size_t sid_col = schema.require("s_id");
  const std::size_t num_col = schema.require("v_num");
  result.krep.for_each_row([&](const dataflow::RowView& row) {
    if (row.string_at(sid_col) != "wpos.gap") return;
    ++gap_rows;
    max_gap = std::max(max_gap, row.float64_at(num_col));
  });
  EXPECT_LT(gap_rows, 10u);
  EXPECT_GT(max_gap, 0.5);
}

TEST_F(PipelineConfigTest, SkipErrorFramesPropagates) {
  tracefile::Trace trace = repetitive_trace();
  for (std::size_t i = 0; i < trace.records.size(); i += 2) {
    trace.records[i].flags = tracefile::TraceRecord::kFlagErrorFrame;
  }
  PipelineConfig config;
  config.signals = {"wpos"};
  config.interpret.skip_error_frames = true;
  const Pipeline pipeline(catalog_, config);
  const auto result =
      pipeline.run(engine_, tracefile::to_kb_table(trace, 4));
  EXPECT_EQ(result.ks_rows, 50u);  // half dropped
}

TEST_F(PipelineConfigTest, NoConstraintsKeepsEverything) {
  PipelineConfig config;
  config.signals = {"wpos"};
  config.constraints.clear();
  const Pipeline pipeline(catalog_, config);
  const auto result =
      pipeline.run(engine_, tracefile::to_kb_table(repetitive_trace(), 4));
  EXPECT_EQ(result.reduced_rows, result.ks_rows);
}

TEST_F(PipelineConfigTest, LiteralInterpretationEndToEnd) {
  PipelineConfig config;
  config.interpret.two_stage_interpretation = true;
  const Pipeline literal(catalog_, config);
  const Pipeline fused(catalog_, PipelineConfig{});
  const auto kb = tracefile::to_kb_table(repetitive_trace(), 4);
  EXPECT_EQ(literal.run(engine_, kb).krep.collect_rows(),
            fused.run(engine_, kb).krep.collect_rows());
}

TEST_F(PipelineConfigTest, DocumentCycleTimeFeedsConstraints) {
  signaldb::Catalog catalog = wiper_catalog();
  // Overwrite the documented cycle with a data-driven estimate.
  EXPECT_TRUE(catalog.document_cycle_time("FC", 3, 20 * kMs));
  EXPECT_FALSE(catalog.document_cycle_time("FC", 999, 20 * kMs));
  EXPECT_EQ(catalog.find_signal("wpos").signal->expected_cycle_ns, 20 * kMs);

  // With the tight documented cycle, a 40 ms gap counts as a violation.
  tracefile::Trace trace;
  for (int i = 0; i < 20; ++i) {
    trace.records.push_back(
        wiper_record(i * 20 * kMs + (i >= 10 ? 25 * kMs : 0), 5.0, 1.0));
  }
  PipelineConfig config;
  config.signals = {"wpos"};
  config.extensions = {cycle_violation_extension(1.5)};
  const Pipeline pipeline(catalog, config);
  const auto result =
      pipeline.run(engine_, tracefile::to_kb_table(trace, 2));
  std::size_t violations = 0;
  const std::size_t sid_col = result.krep.schema().require("s_id");
  result.krep.for_each_row([&](const dataflow::RowView& row) {
    if (row.string_at(sid_col) == "wpos.cycle_violation") ++violations;
  });
  EXPECT_EQ(violations, 1u);  // exactly the stretched gap at i == 10
}

TEST_F(PipelineConfigTest, StateOptionsRespected) {
  PipelineConfig config;
  config.signals = {"wpos"};
  config.extensions = {gap_extension()};
  config.state.include_extensions = false;
  const Pipeline pipeline(catalog_, config);
  const auto result =
      pipeline.run(engine_, tracefile::to_kb_table(repetitive_trace(), 4));
  EXPECT_FALSE(result.state.schema().contains("wpos.gap"));
}

}  // namespace
}  // namespace ivt::core
