#include "core/sequence.hpp"

#include <gtest/gtest.h>

#include "core/schemas.hpp"
#include "test_fixtures.hpp"

namespace ivt::core {
namespace {

using testing::KsRow;
using testing::make_ks;

SignalSequence sample_sequence() {
  return SignalSequence{
      "sig", "FC",
      make_ks({
          {0, "sig", 1.5, true, "", false},
          {10, "sig", 0.0, false, "label", true},
          {20, "sig", 2.5, true, "both", true},
      })};
}

TEST(SequenceTest, MaterializeCapturesAllFields) {
  const SequenceData d = materialize_sequence(sample_sequence());
  EXPECT_EQ(d.s_id, "sig");
  EXPECT_EQ(d.bus, "FC");
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d.t, (std::vector<std::int64_t>{0, 10, 20}));
  EXPECT_EQ(d.has_num, (std::vector<std::uint8_t>{1, 0, 1}));
  EXPECT_EQ(d.has_str, (std::vector<std::uint8_t>{0, 1, 1}));
  EXPECT_DOUBLE_EQ(d.v_num[0], 1.5);
  EXPECT_EQ(d.v_str[1], "label");
}

TEST(SequenceTest, RoundTripThroughTable) {
  const SignalSequence seq = sample_sequence();
  const SequenceData d = materialize_sequence(seq);
  const dataflow::Table back = sequence_to_table(d);
  EXPECT_EQ(back.collect_rows(), seq.table.collect_rows());
}

TEST(SequenceTest, SelectiveRebuild) {
  const SequenceData d = materialize_sequence(sample_sequence());
  const dataflow::Table back = sequence_to_table(d, {0, 2});
  ASSERT_EQ(back.num_rows(), 2u);
  const auto rows = back.collect_rows();
  EXPECT_EQ(rows[0][0], dataflow::Value{std::int64_t{0}});
  EXPECT_EQ(rows[1][0], dataflow::Value{std::int64_t{20}});
}

TEST(SequenceTest, DurationSeconds) {
  SequenceData d;
  EXPECT_DOUBLE_EQ(d.duration_s(), 0.0);
  d.t = {0};
  EXPECT_DOUBLE_EQ(d.duration_s(), 0.0);
  d.t = {0, 2'000'000'000};
  EXPECT_DOUBLE_EQ(d.duration_s(), 2.0);
}

TEST(SequenceTest, EmptySequenceRoundTrip) {
  SignalSequence seq{"x", "FC", make_ks({})};
  const SequenceData d = materialize_sequence(seq);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(sequence_to_table(d).num_rows(), 0u);
}

}  // namespace
}  // namespace ivt::core
