#include "core/state_repr.hpp"

#include <gtest/gtest.h>

#include "core/schemas.hpp"
#include "test_fixtures.hpp"

namespace ivt::core {
namespace {

using testing::kMs;

dataflow::Engine& engine() {
  static dataflow::Engine e{{.workers = 4, .default_partitions = 2}};
  return e;
}

struct KrepRow {
  std::int64_t t;
  std::string s_id;
  std::string value;
  std::string kind = kElementState;
};

dataflow::Table make_krep(const std::vector<KrepRow>& rows) {
  dataflow::TableBuilder builder(krep_schema(), 0);
  for (const KrepRow& row : rows) {
    dataflow::Partition& dst = builder.current_partition();
    dst.columns[0].append_int64(row.t);
    dst.columns[1].append_string(row.s_id);
    dst.columns[2].append_string(row.value);
    dst.columns[3].append_null();
    dst.columns[4].append_string(row.kind);
    dst.columns[5].append_string("FC");
    builder.commit_row();
  }
  return builder.build();
}

TEST(StateReprTest, PaperTable4Shape) {
  // Simplified version of paper Table 4: lights + speed.
  const auto krep = make_krep({
      {2000 * kMs, "headlight", "off"},
      {2000 * kMs, "speed", "(high,increasing)"},
      {4000 * kMs, "lever", "pushed up"},
      {20100 * kMs, "headlight", "parklight on"},
      {23500 * kMs, "headlight", "headlight on"},
  });
  const auto state = build_state_representation(engine(), krep);
  // Columns: t + 3 signals in chronological first-appearance order.
  ASSERT_EQ(state.schema().size(), 4u);
  EXPECT_EQ(state.schema().field(0).name, "t");
  EXPECT_EQ(state.schema().field(1).name, "headlight");
  EXPECT_EQ(state.schema().field(2).name, "speed");
  EXPECT_EQ(state.schema().field(3).name, "lever");
  EXPECT_EQ(state.num_rows(), 4u);  // 2000 merged, 4000, 20100, 23500
}

TEST(StateReprTest, ForwardFill) {
  const auto krep = make_krep({
      {0, "a", "1"},
      {1000, "b", "x"},
      {2000, "a", "2"},
  });
  const auto state = build_state_representation(engine(), krep);
  const auto rows = state.collect_rows();
  ASSERT_EQ(rows.size(), 3u);
  const std::size_t a = state.schema().require("a");
  const std::size_t b = state.schema().require("b");
  // Row 0: a=1, b missing.
  EXPECT_EQ(rows[0][a], dataflow::Value{"1"});
  EXPECT_TRUE(rows[0][b].is_null());
  // Row 1: a carried forward.
  EXPECT_EQ(rows[1][a], dataflow::Value{"1"});
  EXPECT_EQ(rows[1][b], dataflow::Value{"x"});
  // Row 2: b carried forward.
  EXPECT_EQ(rows[2][a], dataflow::Value{"2"});
  EXPECT_EQ(rows[2][b], dataflow::Value{"x"});
}

TEST(StateReprTest, SameTimestampMergesIntoOneRow) {
  const auto krep = make_krep({
      {500, "a", "1"},
      {500, "b", "2"},
  });
  const auto state = build_state_representation(engine(), krep);
  EXPECT_EQ(state.num_rows(), 1u);
}

TEST(StateReprTest, MergeDisabledKeepsRows) {
  const auto krep = make_krep({
      {500, "a", "1"},
      {500, "b", "2"},
  });
  StateRepresentationOptions options;
  options.merge_same_timestamp = false;
  const auto state = build_state_representation(engine(), krep, options);
  EXPECT_EQ(state.num_rows(), 2u);
}

TEST(StateReprTest, UnsortedInputIsSortedFirst) {
  const auto krep = make_krep({
      {2000, "a", "late"},
      {0, "a", "early"},
  });
  const auto state = build_state_representation(engine(), krep);
  const auto rows = state.collect_rows();
  EXPECT_EQ(rows[0][0], dataflow::Value{std::int64_t{0}});
  EXPECT_EQ(rows[0][1], dataflow::Value{"early"});
  EXPECT_EQ(rows[1][1], dataflow::Value{"late"});
}

TEST(StateReprTest, ExtensionsAreMomentaryByDefault) {
  const auto krep = make_krep({
      {0, "a", "1"},
      {1000, "a.gap", "0.5", kElementExtension},
      {2000, "a", "2"},
  });
  const auto state = build_state_representation(engine(), krep);
  const auto rows = state.collect_rows();
  const std::size_t gap_col = state.schema().require("a.gap");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(rows[0][gap_col].is_null());
  EXPECT_EQ(rows[1][gap_col], dataflow::Value{"0.5"});
  // NOT forward-filled: the violation was momentary.
  EXPECT_TRUE(rows[2][gap_col].is_null());
}

TEST(StateReprTest, ExtensionsCanBeExcluded) {
  const auto krep = make_krep({
      {0, "a", "1"},
      {1000, "a.gap", "0.5", kElementExtension},
  });
  StateRepresentationOptions options;
  options.include_extensions = false;
  const auto state = build_state_representation(engine(), krep, options);
  EXPECT_FALSE(state.schema().contains("a.gap"));
  EXPECT_EQ(state.num_rows(), 1u);
}

TEST(StateReprTest, OutlierValuePropagatesLikeState) {
  const auto krep = make_krep({
      {0, "speed", "(high,steady)"},
      {1000, "speed", "outlier v=800", kElementOutlier},
      {2000, "speed", "(high,steady)"},
  });
  const auto state = build_state_representation(engine(), krep);
  const auto rows = state.collect_rows();
  EXPECT_EQ(rows[1][1], dataflow::Value{"outlier v=800"});
  EXPECT_EQ(rows[2][1], dataflow::Value{"(high,steady)"});
}

TEST(StateReprTest, EmptyInput) {
  const auto krep = make_krep({});
  const auto state = build_state_representation(engine(), krep);
  EXPECT_EQ(state.num_rows(), 0u);
  EXPECT_EQ(state.schema().size(), 1u);  // just "t"
}

}  // namespace
}  // namespace ivt::core
