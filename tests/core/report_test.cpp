#include "core/report.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"

namespace ivt::core {
namespace {

using testing::kMs;
using testing::wiper_catalog;
using testing::wiper_record;

PipelineResult sample_result() {
  static const signaldb::Catalog catalog = wiper_catalog();
  tracefile::Trace trace;
  for (int i = 0; i < 30; ++i) {
    trace.records.push_back(wiper_record(i * 20 * kMs, 2.0 * i, 1.0));
  }
  PipelineConfig config;
  config.extensions.push_back(gap_extension());
  const Pipeline pipeline(catalog, config);
  dataflow::Engine engine{{.workers = 2}};
  return pipeline.run(engine, tracefile::to_kb_table(trace, 4));
}

TEST(ReportTest, SummaryLineContainsStageCounts) {
  const std::string line = report_summary_line(sample_result());
  EXPECT_NE(line.find("K_b 30"), std::string::npos);
  EXPECT_NE(line.find("K_s 60"), std::string::npos);
  EXPECT_NE(line.find("sequences: 2"), std::string::npos);
}

TEST(ReportTest, TextContainsPerSequenceRows) {
  const std::string text = report_to_text(sample_result());
  EXPECT_NE(text.find("wpos"), std::string::npos);
  EXPECT_NE(text.find("wvel"), std::string::npos);
  EXPECT_NE(text.find("branch"), std::string::npos);
}

TEST(ReportTest, JsonIsWellFormedEnough) {
  const std::string json = report_to_json(sample_result());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');  // trailing newline
  EXPECT_NE(json.find("\"sequences\": ["), std::string::npos);
  EXPECT_NE(json.find("\"s_id\": \"wpos\""), std::string::npos);
  // Balanced braces/brackets.
  int braces = 0;
  int brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ReportTest, JsonEscapesQuotes) {
  PipelineResult result;
  SequenceReport report;
  report.s_id = "weird\"name";
  result.sequences.push_back(report);
  const std::string json = report_to_json(result);
  EXPECT_NE(json.find("weird\\\"name"), std::string::npos);
}

}  // namespace
}  // namespace ivt::core
