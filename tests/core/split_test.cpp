#include "core/split.hpp"

#include <gtest/gtest.h>

#include "test_fixtures.hpp"

namespace ivt::core {
namespace {

using testing::KsRow;
using testing::make_ks;

dataflow::Engine& engine() {
  static dataflow::Engine e{{.workers = 4, .default_partitions = 4}};
  return e;
}

TEST(SplitTest, OneSequencePerSignalType) {
  const auto ks = make_ks({
      {0, "a", 1.0, true, "", false},
      {1, "b", 2.0, true, "", false},
      {2, "a", 3.0, true, "", false},
  });
  const SplitResult result = split_signals(engine(), ks);
  ASSERT_EQ(result.sequences.size(), 2u);
  EXPECT_EQ(result.sequences[0].s_id, "a");
  EXPECT_EQ(result.sequences[0].table.num_rows(), 2u);
  EXPECT_EQ(result.sequences[1].s_id, "b");
}

TEST(SplitTest, OrderIsFirstAppearance) {
  const auto ks = make_ks({
      {0, "z", 1.0, true, "", false},
      {1, "a", 2.0, true, "", false},
  });
  const SplitResult result = split_signals(engine(), ks);
  EXPECT_EQ(result.sequences[0].s_id, "z");
  EXPECT_EQ(result.sequences[1].s_id, "a");
}

TEST(SplitTest, TimeOrderPreservedWithinSequence) {
  const auto ks = make_ks({
      {0, "a", 1.0, true, "", false},
      {5, "a", 2.0, true, "", false},
      {9, "a", 3.0, true, "", false},
  });
  const SplitDataResult result = split_signals_data(engine(), ks);
  ASSERT_EQ(result.sequences.size(), 1u);
  EXPECT_EQ(result.sequences[0].t, (std::vector<std::int64_t>{0, 5, 9}));
}

TEST(SplitTest, GatewayDuplicateDetected) {
  // Identical value sequence on FC and KC (shifted timestamps).
  const auto ks = make_ks({
      {0, "a", 1.0, true, "", false, "FC"},
      {150, "a", 1.0, true, "", false, "KC"},
      {1000, "a", 2.0, true, "", false, "FC"},
      {1150, "a", 2.0, true, "", false, "KC"},
  });
  const SplitDataResult result = split_signals_data(engine(), ks);
  ASSERT_EQ(result.sequences.size(), 1u);
  EXPECT_EQ(result.sequences[0].bus, "FC");  // representative
  ASSERT_EQ(result.correspondences.size(), 1u);
  EXPECT_EQ(result.correspondences[0].s_id, "a");
  EXPECT_EQ(result.correspondences[0].representative_bus, "FC");
  EXPECT_EQ(result.correspondences[0].corresponding_buses,
            (std::vector<std::string>{"KC"}));
}

TEST(SplitTest, DifferentContentChannelsKeptSeparate) {
  const auto ks = make_ks({
      {0, "a", 1.0, true, "", false, "FC"},
      {100, "a", 9.0, true, "", false, "KC"},  // different value
  });
  const SplitDataResult result = split_signals_data(engine(), ks);
  EXPECT_EQ(result.sequences.size(), 2u);
  EXPECT_TRUE(result.correspondences.empty());
}

TEST(SplitTest, DedupDisabledKeepsAllChannels) {
  const auto ks = make_ks({
      {0, "a", 1.0, true, "", false, "FC"},
      {150, "a", 1.0, true, "", false, "KC"},
  });
  SplitOptions options;
  options.dedup_channels = false;
  const SplitDataResult result = split_signals_data(engine(), ks, options);
  EXPECT_EQ(result.sequences.size(), 2u);
}

TEST(SplitTest, ThreeChannelsOneRepresentative) {
  const auto ks = make_ks({
      {0, "a", 1.0, true, "", false, "FC"},
      {10, "a", 1.0, true, "", false, "KC"},
      {20, "a", 1.0, true, "", false, "DC"},
  });
  const SplitDataResult result = split_signals_data(engine(), ks);
  ASSERT_EQ(result.sequences.size(), 1u);
  ASSERT_EQ(result.correspondences.size(), 1u);
  EXPECT_EQ(result.correspondences[0].corresponding_buses,
            (std::vector<std::string>{"KC", "DC"}));
}

TEST(SplitTest, SequencesEqualChecksValuesNotTimes) {
  SequenceData a;
  a.t = {0, 100};
  a.v_num = {1.0, 2.0};
  a.has_num = {1, 1};
  a.v_str = {"", ""};
  a.has_str = {0, 0};
  SequenceData b = a;
  b.t = {55, 155};  // shifted
  EXPECT_TRUE(sequences_equal(a, b));
  b.v_num[1] = 3.0;
  EXPECT_FALSE(sequences_equal(a, b));
}

TEST(SplitTest, SequencesEqualLengthMismatch) {
  SequenceData a;
  a.t = {0};
  a.v_num = {1.0};
  a.has_num = {1};
  a.v_str = {""};
  a.has_str = {0};
  SequenceData b = a;
  b.t.push_back(1);
  b.v_num.push_back(1.0);
  b.has_num.push_back(1);
  b.v_str.emplace_back();
  b.has_str.push_back(0);
  EXPECT_FALSE(sequences_equal(a, b));
}

TEST(SplitTest, StringValuesCompared) {
  const auto ks = make_ks({
      {0, "s", 0.0, false, "on", true, "FC"},
      {10, "s", 0.0, false, "off", true, "KC"},
  });
  const SplitDataResult result = split_signals_data(engine(), ks);
  EXPECT_EQ(result.sequences.size(), 2u);  // labels differ -> no dedup
}

TEST(SplitTest, EmptyInput) {
  const auto ks = make_ks({});
  const SplitResult result = split_signals(engine(), ks);
  EXPECT_TRUE(result.sequences.empty());
  EXPECT_TRUE(result.correspondences.empty());
}

TEST(SplitTest, ManyPartitionsMergeInOrder) {
  std::vector<KsRow> rows;
  for (int i = 0; i < 40; ++i) {
    rows.push_back({i, "a", static_cast<double>(i), true, "", false});
  }
  auto table = make_ks(rows).repartitioned(8);
  const SplitDataResult result = split_signals_data(engine(), table);
  ASSERT_EQ(result.sequences.size(), 1u);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_DOUBLE_EQ(result.sequences[0].v_num[i], static_cast<double>(i));
  }
}

}  // namespace
}  // namespace ivt::core
