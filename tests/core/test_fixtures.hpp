// Shared fixtures for core tests: the paper's wiper running example
// (Fig. 2 / Table 1) as a catalog plus hand-built traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/schemas.hpp"
#include "dataflow/table.hpp"
#include "signaldb/catalog.hpp"
#include "tracefile/trace.hpp"

namespace ivt::core::testing {

inline constexpr std::int64_t kMs = 1'000'000;

/// Catalog with the paper's wiper message (wpos: bytes 1-2, v = 0.5*l;
/// wvel: bytes 3-4, v = l) on bus FC with m_id 3, plus a heater ordinal
/// on K-LIN and a binary belt contact.
inline signaldb::Catalog wiper_catalog() {
  signaldb::Catalog catalog;

  signaldb::MessageSpec wiper;
  wiper.name = "Wiper";
  wiper.message_id = 3;
  wiper.bus = "FC";
  wiper.payload_size = 4;
  {
    signaldb::SignalSpec wpos;
    wpos.name = "wpos";
    wpos.start_bit = 0;
    wpos.length = 16;
    wpos.transform = {0.5, 0.0};
    wpos.unit = "deg";
    wpos.expected_cycle_ns = 500 * kMs;
    signaldb::SignalSpec wvel;
    wvel.name = "wvel";
    wvel.start_bit = 16;
    wvel.length = 16;
    wvel.unit = "rad/min";
    wvel.expected_cycle_ns = 500 * kMs;
    wiper.signals = {wpos, wvel};
  }
  catalog.add_message(std::move(wiper));

  signaldb::MessageSpec heater;
  heater.name = "Heater";
  heater.message_id = 11;
  heater.bus = "K-LIN";
  heater.protocol = protocol::Protocol::Lin;
  heater.payload_size = 1;
  {
    signaldb::SignalSpec heat;
    heat.name = "heat";
    heat.start_bit = 0;
    heat.length = 4;
    heat.ordered_values = true;
    heat.expected_cycle_ns = 1000 * kMs;
    heat.value_table = {{0, "off", false},
                        {1, "low", false},
                        {2, "medium", false},
                        {3, "high", false},
                        {14, "snv", true}};
    heater.signals = {heat};
  }
  catalog.add_message(std::move(heater));

  signaldb::MessageSpec belt;
  belt.name = "Belt";
  belt.message_id = 20;
  belt.bus = "FC";
  belt.payload_size = 1;
  {
    signaldb::SignalSpec contact;
    contact.name = "belt";
    contact.start_bit = 0;
    contact.length = 1;
    contact.expected_cycle_ns = 200 * kMs;
    contact.value_table = {{0, "OFF", false}, {1, "ON", false}};
    belt.signals = {contact};
  }
  catalog.add_message(std::move(belt));

  return catalog;
}

/// One wiper trace record at time t with given physical wpos/wvel.
inline tracefile::TraceRecord wiper_record(std::int64_t t_ns, double wpos,
                                           double wvel,
                                           const std::string& bus = "FC") {
  tracefile::TraceRecord rec;
  rec.t_ns = t_ns;
  rec.bus = bus;
  rec.message_id = 3;
  rec.payload.assign(4, 0);
  const auto raw_pos = static_cast<std::uint16_t>(wpos / 0.5);
  const auto raw_vel = static_cast<std::uint16_t>(wvel);
  rec.payload[0] = static_cast<std::uint8_t>(raw_pos & 0xFF);
  rec.payload[1] = static_cast<std::uint8_t>(raw_pos >> 8);
  rec.payload[2] = static_cast<std::uint8_t>(raw_vel & 0xFF);
  rec.payload[3] = static_cast<std::uint8_t>(raw_vel >> 8);
  return rec;
}

inline tracefile::TraceRecord heater_record(std::int64_t t_ns,
                                            std::uint8_t raw) {
  tracefile::TraceRecord rec;
  rec.t_ns = t_ns;
  rec.bus = "K-LIN";
  rec.message_id = 11;
  rec.protocol = protocol::Protocol::Lin;
  rec.payload = {raw};
  return rec;
}

inline tracefile::TraceRecord belt_record(std::int64_t t_ns, bool on) {
  tracefile::TraceRecord rec;
  rec.t_ns = t_ns;
  rec.bus = "FC";
  rec.message_id = 20;
  rec.payload = {static_cast<std::uint8_t>(on ? 1 : 0)};
  return rec;
}

/// The paper's Fig. 2 example: two wiper messages at 2 s and 2.5 s.
inline tracefile::Trace fig2_trace() {
  tracefile::Trace trace;
  trace.records.push_back(wiper_record(2'000 * kMs, 45.0, 1.0));
  trace.records.push_back(wiper_record(2'500 * kMs, 60.0, 1.0));
  return trace;
}

/// Build a ks_schema table directly from (t, s_id, num, str, bus) tuples.
struct KsRow {
  std::int64_t t;
  std::string s_id;
  double v_num;
  bool has_num;
  std::string v_str;
  bool has_str;
  std::string bus = "FC";
};

inline dataflow::Table make_ks(const std::vector<KsRow>& rows) {
  dataflow::TableBuilder builder(ks_schema(), 0);
  for (const KsRow& row : rows) {
    dataflow::Partition& dst = builder.current_partition();
    dst.columns[0].append_int64(row.t);
    dst.columns[1].append_string(row.s_id);
    if (row.has_num) {
      dst.columns[2].append_float64(row.v_num);
    } else {
      dst.columns[2].append_null();
    }
    if (row.has_str) {
      dst.columns[3].append_string(row.v_str);
    } else {
      dst.columns[3].append_null();
    }
    dst.columns[4].append_string(row.bus);
    builder.commit_row();
  }
  return builder.build();
}

}  // namespace ivt::core::testing
