#include "algo/trend.hpp"

#include <gtest/gtest.h>

namespace ivt::algo {
namespace {

TEST(TrendTest, ClassifySlope) {
  EXPECT_EQ(classify_slope(1.0, 0.1), Trend::Increasing);
  EXPECT_EQ(classify_slope(-1.0, 0.1), Trend::Decreasing);
  EXPECT_EQ(classify_slope(0.05, 0.1), Trend::Steady);
  EXPECT_EQ(classify_slope(-0.1, 0.1), Trend::Steady);  // boundary inclusive
}

TEST(TrendTest, Names) {
  EXPECT_EQ(to_string(Trend::Increasing), "increasing");
  EXPECT_EQ(to_string(Trend::Steady), "steady");
  EXPECT_EQ(to_string(Trend::Decreasing), "decreasing");
}

TEST(TrendTest, SegmentTrendUsesSlope) {
  Segment seg;
  seg.fit.slope = -3.0;
  EXPECT_EQ(segment_trend(seg, 0.5), Trend::Decreasing);
}

TEST(GradientTrendsTest, FirstElementIsSteady) {
  const std::vector<double> ts{0.0, 1.0, 2.0};
  const std::vector<double> ys{5.0, 6.0, 6.0};
  const auto trends = gradient_trends(ts, ys, 0.1);
  ASSERT_EQ(trends.size(), 3u);
  EXPECT_EQ(trends[0], Trend::Steady);
  EXPECT_EQ(trends[1], Trend::Increasing);
  EXPECT_EQ(trends[2], Trend::Steady);
}

TEST(GradientTrendsTest, RespectsTimeSpacing) {
  // Same delta over a long gap: small slope -> steady.
  const std::vector<double> ts{0.0, 100.0};
  const std::vector<double> ys{0.0, 1.0};
  EXPECT_EQ(gradient_trends(ts, ys, 0.5)[1], Trend::Steady);
  const std::vector<double> ts_fast{0.0, 0.1};
  EXPECT_EQ(gradient_trends(ts_fast, ys, 0.5)[1], Trend::Increasing);
}

TEST(GradientTrendsTest, ZeroDtIsSteady) {
  const std::vector<double> ts{1.0, 1.0};
  const std::vector<double> ys{0.0, 100.0};
  EXPECT_EQ(gradient_trends(ts, ys, 0.1)[1], Trend::Steady);
}

TEST(GradientTrendsTest, MismatchThrows) {
  EXPECT_THROW(gradient_trends(std::vector<double>{1.0},
                               std::vector<double>{1.0, 2.0}, 0.1),
               std::invalid_argument);
}

TEST(GradientTrendsTest, EmptyInput) {
  EXPECT_TRUE(gradient_trends({}, {}, 0.1).empty());
}

}  // namespace
}  // namespace ivt::algo
