#include "algo/sax.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace ivt::algo {
namespace {

TEST(PaaTest, ExactDivision) {
  const std::vector<double> xs{1.0, 1.0, 5.0, 5.0};
  const auto out = paa(xs, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 5.0);
}

TEST(PaaTest, FractionalFramesAreWeighted) {
  const std::vector<double> xs{0.0, 6.0, 12.0};
  const auto out = paa(xs, 2);
  ASSERT_EQ(out.size(), 2u);
  // Frame 0 covers x[0] and half of x[1]: (0*1 + 6*0.5) / 1.5 = 2
  EXPECT_NEAR(out[0], 2.0, 1e-9);
  EXPECT_NEAR(out[1], 10.0, 1e-9);
}

TEST(PaaTest, SegmentsClampToLength) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_EQ(paa(xs, 10).size(), 2u);
}

TEST(PaaTest, OneSegmentIsMean) {
  const std::vector<double> xs{2.0, 4.0, 6.0};
  const auto out = paa(xs, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0], 4.0, 1e-9);
}

TEST(PaaTest, EmptyInput) { EXPECT_TRUE(paa({}, 4).empty()); }

TEST(PaaTest, MeanIsPreserved) {
  std::vector<double> xs;
  for (int i = 0; i < 17; ++i) xs.push_back(std::sin(i * 0.3));
  const auto out = paa(xs, 5);
  double in_mean = 0.0;
  for (double x : xs) in_mean += x;
  in_mean /= static_cast<double>(xs.size());
  double out_mean = 0.0;
  for (double x : out) out_mean += x;
  out_mean /= static_cast<double>(out.size());
  EXPECT_NEAR(in_mean, out_mean, 1e-9);
}

TEST(ZNormalizeTest, MeanZeroStdOne) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto z = znormalize(xs);
  double m = 0.0;
  for (double v : z) m += v;
  EXPECT_NEAR(m, 0.0, 1e-12);
}

TEST(ZNormalizeTest, FlatSeriesBecomesZeros) {
  const std::vector<double> xs(5, 42.0);
  const auto z = znormalize(xs);
  for (double v : z) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(BreakpointsTest, SizesAndMonotonicity) {
  for (std::size_t a = 2; a <= 16; ++a) {
    const auto bp = sax_breakpoints(a);
    ASSERT_EQ(bp.size(), a - 1) << "alphabet " << a;
    for (std::size_t i = 1; i < bp.size(); ++i) {
      EXPECT_LT(bp[i - 1], bp[i]);
    }
  }
}

TEST(BreakpointsTest, SymmetricAboutZero) {
  for (std::size_t a : {3u, 5u, 9u}) {
    const auto bp = sax_breakpoints(a);
    for (std::size_t i = 0; i < bp.size(); ++i) {
      EXPECT_NEAR(bp[i], -bp[bp.size() - 1 - i], 1e-9);
    }
  }
}

TEST(BreakpointsTest, OutOfRangeThrows) {
  EXPECT_THROW(sax_breakpoints(1), std::invalid_argument);
  EXPECT_THROW(sax_breakpoints(17), std::invalid_argument);
}

TEST(SaxSymbolTest, RegionsMapToLetters) {
  const auto bp = sax_breakpoints(3);  // cuts at ±0.4307
  EXPECT_EQ(sax_symbol(-1.0, bp), 'a');
  EXPECT_EQ(sax_symbol(0.0, bp), 'b');
  EXPECT_EQ(sax_symbol(1.0, bp), 'c');
}

TEST(SaxSymbolTest, BoundaryGoesToUpperRegion) {
  const auto bp = sax_breakpoints(2);  // cut at 0
  EXPECT_EQ(sax_symbol(0.0, bp), 'b');
  EXPECT_EQ(sax_symbol(-1e-9, bp), 'a');
}

TEST(SaxWordTest, RampProducesNonDecreasingWord) {
  std::vector<double> xs;
  for (int i = 0; i < 64; ++i) xs.push_back(static_cast<double>(i));
  const std::string word = sax_word(xs, 8, 4);
  ASSERT_EQ(word.size(), 8u);
  for (std::size_t i = 1; i < word.size(); ++i) {
    EXPECT_LE(word[i - 1], word[i]);
  }
  EXPECT_EQ(word.front(), 'a');
  EXPECT_EQ(word.back(), 'd');
}

TEST(SaxWordTest, SineUsesFullAlphabetSymmetrically) {
  std::vector<double> xs;
  for (int i = 0; i < 256; ++i) {
    xs.push_back(std::sin(2.0 * std::numbers::pi * i / 256.0));
  }
  const std::string word = sax_word(xs, 16, 4);
  EXPECT_NE(word.find('a'), std::string::npos);
  EXPECT_NE(word.find('d'), std::string::npos);
}

TEST(MinDistTest, IdenticalWordsHaveZeroDistance) {
  EXPECT_DOUBLE_EQ(sax_min_dist("abc", "abc", 4, 12), 0.0);
}

TEST(MinDistTest, AdjacentSymbolsHaveZeroDistance) {
  EXPECT_DOUBLE_EQ(sax_min_dist("ab", "ba", 4, 8), 0.0);
}

TEST(MinDistTest, FarSymbolsHavePositiveDistance) {
  EXPECT_GT(sax_min_dist("aa", "dd", 4, 8), 0.0);
}

TEST(MinDistTest, LengthMismatchThrows) {
  EXPECT_THROW(sax_min_dist("ab", "abc", 4, 8), std::invalid_argument);
}

TEST(MinDistTest, GrowsWithSeriesLength) {
  const double d1 = sax_min_dist("aa", "dd", 4, 8);
  const double d2 = sax_min_dist("aa", "dd", 4, 32);
  EXPECT_GT(d2, d1);
}

}  // namespace
}  // namespace ivt::algo
