#include "algo/swab.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ivt::algo {
namespace {

std::vector<double> unit_ts(std::size_t n) {
  std::vector<double> ts(n);
  for (std::size_t i = 0; i < n; ++i) ts[i] = static_cast<double>(i);
  return ts;
}

/// Piecewise linear: up-slope then flat then down-slope.
std::vector<double> three_phase(std::size_t per_phase = 40) {
  std::vector<double> xs;
  for (std::size_t i = 0; i < per_phase; ++i) {
    xs.push_back(static_cast<double>(i));
  }
  for (std::size_t i = 0; i < per_phase; ++i) {
    xs.push_back(static_cast<double>(per_phase - 1));
  }
  for (std::size_t i = 0; i < per_phase; ++i) {
    xs.push_back(static_cast<double>(per_phase - 1) -
                 static_cast<double>(i));
  }
  return xs;
}

void expect_cover(const std::vector<Segment>& segments, std::size_t n) {
  ASSERT_FALSE(segments.empty());
  EXPECT_EQ(segments.front().start, 0u);
  EXPECT_EQ(segments.back().end, n);
  for (std::size_t i = 1; i < segments.size(); ++i) {
    EXPECT_EQ(segments[i].start, segments[i - 1].end) << "gap at " << i;
  }
}

TEST(FitSegmentTest, PerfectLineZeroError) {
  const auto ts = unit_ts(10);
  std::vector<double> xs;
  for (double t : ts) xs.push_back(3.0 * t + 1.0);
  const Segment seg = fit_segment(ts, xs, 0, 10);
  EXPECT_NEAR(seg.fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(seg.error, 0.0, 1e-9);
}

TEST(BottomUpTest, PerfectLineMergesToOneSegment) {
  const auto ts = unit_ts(100);
  std::vector<double> xs;
  for (double t : ts) xs.push_back(0.5 * t);
  const auto segments = bottom_up_segment(ts, xs, 0.01);
  EXPECT_EQ(segments.size(), 1u);
  expect_cover(segments, xs.size());
}

TEST(BottomUpTest, ThreePhaseFindsAboutThreeSegments) {
  const auto xs = three_phase();
  const auto ts = unit_ts(xs.size());
  const auto segments = bottom_up_segment(ts, xs, 2.0);
  expect_cover(segments, xs.size());
  EXPECT_GE(segments.size(), 3u);
  EXPECT_LE(segments.size(), 6u);
}

TEST(BottomUpTest, TinyInputs) {
  const auto ts1 = unit_ts(1);
  const std::vector<double> xs1{5.0};
  EXPECT_EQ(bottom_up_segment(ts1, xs1, 1.0).size(), 1u);
  EXPECT_TRUE(bottom_up_segment({}, {}, 1.0).empty());
}

TEST(BottomUpTest, ZeroBudgetKeepsFineSegments) {
  // Noisy data with zero error budget: nothing merges beyond pairs.
  std::vector<double> xs;
  for (int i = 0; i < 20; ++i) xs.push_back(i % 2 == 0 ? 0.0 : 10.0);
  const auto ts = unit_ts(xs.size());
  const auto segments = bottom_up_segment(ts, xs, 1e-9);
  EXPECT_GE(segments.size(), 9u);
  expect_cover(segments, xs.size());
}

TEST(SlidingWindowTest, CoversAndRespectsBudget) {
  const auto xs = three_phase();
  const auto ts = unit_ts(xs.size());
  const auto segments = sliding_window_segment(ts, xs, 2.0);
  expect_cover(segments, xs.size());
  for (const Segment& seg : segments) {
    if (seg.length() > 2) EXPECT_LE(seg.error, 2.0 + 1e-9);
  }
}

TEST(SwabTest, MatchesBottomUpOnSmallInput) {
  const auto xs = three_phase(10);  // 30 points < default buffer
  const auto ts = unit_ts(xs.size());
  SegmentationConfig config;
  config.max_error = 2.0;
  const auto swab = swab_segment(ts, xs, config);
  const auto bu = bottom_up_segment(ts, xs, 2.0);
  ASSERT_EQ(swab.size(), bu.size());
  for (std::size_t i = 0; i < swab.size(); ++i) {
    EXPECT_EQ(swab[i].start, bu[i].start);
    EXPECT_EQ(swab[i].end, bu[i].end);
  }
}

TEST(SwabTest, LongInputCoversEverything) {
  const auto xs = three_phase(100);  // 300 points > buffer 120
  const auto ts = unit_ts(xs.size());
  SegmentationConfig config;
  config.max_error = 2.0;
  config.buffer_size = 60;
  const auto segments = swab_segment(ts, xs, config);
  expect_cover(segments, xs.size());
  EXPECT_GE(segments.size(), 3u);
}

TEST(SwabTest, SineSegmentsTrackSlopeSigns) {
  std::vector<double> xs;
  const std::size_t n = 400;
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(std::sin(2.0 * M_PI * static_cast<double>(i) / 200.0));
  }
  const auto ts = unit_ts(n);
  SegmentationConfig config;
  config.max_error = 0.05;
  config.buffer_size = 80;
  const auto segments = swab_segment(ts, xs, config);
  expect_cover(segments, n);
  // A sine over 2 periods needs a healthy number of linear pieces.
  EXPECT_GE(segments.size(), 4u);
}

TEST(SwabTest, UnitSpacedOverloadAgrees) {
  const auto xs = three_phase(20);
  SegmentationConfig config;
  config.max_error = 2.0;
  const auto a = swab_segment(xs, config);
  const auto b = swab_segment(unit_ts(xs.size()), xs, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
  }
}

TEST(SwabTest, SizeMismatchThrows) {
  const std::vector<double> ts{0.0, 1.0};
  const std::vector<double> xs{1.0};
  EXPECT_THROW(swab_segment(ts, xs, {}), std::invalid_argument);
}

TEST(SwabTest, EmptyInput) {
  const std::vector<double> empty;
  EXPECT_TRUE(swab_segment(std::span<const double>(empty),
                           SegmentationConfig{})
                  .empty());
}

TEST(SegmentTest, ValueAtUsesFit) {
  Segment seg;
  seg.fit = {2.0, 1.0};
  EXPECT_DOUBLE_EQ(seg.value_at(3.0), 7.0);
}

}  // namespace
}  // namespace ivt::algo
