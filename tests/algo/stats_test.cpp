#include "algo/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ivt::algo {
namespace {

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats rs;
  rs.add(3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(StatsTest, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(StatsTest, MeanMatchesManual) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(StatsTest, MedianOddEven) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(StatsTest, MedianEmptyThrows) {
  EXPECT_THROW(median({}), std::invalid_argument);
}

TEST(StatsTest, QuantileEndpointsAndMid) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.3), 3.0);
}

TEST(StatsTest, MedianAbsoluteDeviation) {
  const std::vector<double> xs{1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0};
  // median = 2; |x - 2| = {1,1,0,0,2,4,7}; median of that = 1.
  EXPECT_DOUBLE_EQ(median_absolute_deviation(xs), 1.0);
}

TEST(StatsTest, FitLineExact) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{1.0, 3.0, 5.0, 7.0};
  const LineFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(residual_sum_squares(xs, ys, fit), 0.0, 1e-12);
}

TEST(StatsTest, FitLineConstantXIsFlat) {
  const std::vector<double> xs{2.0, 2.0, 2.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  const LineFit fit = fit_line(xs, ys);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);  // passes through mean y
}

TEST(StatsTest, FitLineEmptyIsZero) {
  const LineFit fit = fit_line({}, {});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 0.0);
}

TEST(StatsTest, ResidualsPositiveForNoisyData) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{0.0, 2.0, 0.0};
  const LineFit fit = fit_line(xs, ys);
  EXPECT_GT(residual_sum_squares(xs, ys, fit), 0.0);
}

TEST(StatsTest, VarianceAgreesWithRunningStats) {
  const std::vector<double> xs{1.0, 4.0, 9.0, 16.0, 25.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_NEAR(variance(xs), rs.variance(), 1e-9);
}

}  // namespace
}  // namespace ivt::algo
