#include "algo/smoothing.hpp"

#include <gtest/gtest.h>

namespace ivt::algo {
namespace {

TEST(SmoothingTest, ZeroWindowIsIdentity) {
  const std::vector<double> xs{1.0, 5.0, 2.0};
  EXPECT_EQ(moving_average(xs, 0), xs);
  EXPECT_EQ(moving_median(xs, 0), xs);
}

TEST(SmoothingTest, MovingAverageInterior) {
  const std::vector<double> xs{0.0, 3.0, 6.0, 9.0, 12.0};
  const auto out = moving_average(xs, 1);
  ASSERT_EQ(out.size(), xs.size());
  EXPECT_DOUBLE_EQ(out[2], 6.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
}

TEST(SmoothingTest, MovingAverageBorderTruncates) {
  const std::vector<double> xs{0.0, 6.0};
  const auto out = moving_average(xs, 1);
  EXPECT_DOUBLE_EQ(out[0], 3.0);  // mean of first two only
  EXPECT_DOUBLE_EQ(out[1], 3.0);
}

TEST(SmoothingTest, MovingAverageFlattensSpike) {
  std::vector<double> xs(11, 1.0);
  xs[5] = 100.0;
  const auto out = moving_average(xs, 2);
  EXPECT_LT(out[5], 25.0);
}

TEST(SmoothingTest, MovingMedianRemovesSpikeCompletely) {
  std::vector<double> xs(11, 1.0);
  xs[5] = 100.0;
  const auto out = moving_median(xs, 2);
  EXPECT_DOUBLE_EQ(out[5], 1.0);
}

TEST(SmoothingTest, ExponentialAlphaOneIsIdentity) {
  const std::vector<double> xs{1.0, 9.0, 4.0};
  EXPECT_EQ(exponential_smoothing(xs, 1.0), xs);
}

TEST(SmoothingTest, ExponentialConverges) {
  std::vector<double> xs(50, 10.0);
  xs[0] = 0.0;
  const auto out = exponential_smoothing(xs, 0.3);
  EXPECT_NEAR(out.back(), 10.0, 1e-4);
  EXPECT_LT(out[1], 10.0);
}

TEST(SmoothingTest, ExponentialBadAlphaThrows) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(exponential_smoothing(xs, 0.0), std::invalid_argument);
  EXPECT_THROW(exponential_smoothing(xs, 1.5), std::invalid_argument);
}

TEST(SmoothingTest, EmptyInputs) {
  EXPECT_TRUE(moving_average({}, 3).empty());
  EXPECT_TRUE(moving_median({}, 3).empty());
  EXPECT_TRUE(exponential_smoothing({}, 0.5).empty());
}

}  // namespace
}  // namespace ivt::algo
