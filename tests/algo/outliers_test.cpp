#include "algo/outliers.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace ivt::algo {
namespace {

std::vector<double> base_series() {
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(10.0 + 0.1 * (i % 5));
  return xs;
}

std::size_t count_flags(const std::vector<std::uint8_t>& mask) {
  return static_cast<std::size_t>(
      std::accumulate(mask.begin(), mask.end(), 0));
}

class OutlierMethodTest
    : public ::testing::TestWithParam<OutlierMethod> {};

TEST_P(OutlierMethodTest, FlagsInjectedSpike) {
  std::vector<double> xs = base_series();
  xs[25] = 500.0;
  OutlierConfig config;
  config.method = GetParam();
  const auto mask = detect_outliers(xs, config);
  EXPECT_EQ(mask[25], 1);
  EXPECT_LE(count_flags(mask), 3u);
}

TEST_P(OutlierMethodTest, CleanSeriesMostlyUnflagged) {
  OutlierConfig config;
  config.method = GetParam();
  const auto mask = detect_outliers(base_series(), config);
  EXPECT_LE(count_flags(mask), 1u);
}

TEST_P(OutlierMethodTest, ConstantSeriesNeverFlagged) {
  const std::vector<double> xs(30, 7.0);
  OutlierConfig config;
  config.method = GetParam();
  EXPECT_EQ(count_flags(detect_outliers(xs, config)), 0u);
}

TEST_P(OutlierMethodTest, TooShortSeriesNeverFlagged) {
  const std::vector<double> xs{1.0, 1000.0};
  OutlierConfig config;
  config.method = GetParam();
  EXPECT_EQ(count_flags(detect_outliers(xs, config)), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, OutlierMethodTest,
                         ::testing::Values(OutlierMethod::ZScore,
                                           OutlierMethod::Iqr,
                                           OutlierMethod::Hampel),
                         [](const auto& info) {
                           switch (info.param) {
                             case OutlierMethod::ZScore:
                               return "ZScore";
                             case OutlierMethod::Iqr:
                               return "Iqr";
                             case OutlierMethod::Hampel:
                               return "Hampel";
                           }
                           return "Unknown";
                         });

TEST(OutlierTest, HampelToleratesLevelShift) {
  // A genuine step (level change) must NOT be flagged by a local method:
  std::vector<double> xs(20, 1.0);
  for (int i = 20; i < 40; ++i) xs.push_back(50.0);
  OutlierConfig config;
  config.method = OutlierMethod::Hampel;
  config.window = 3;
  const auto mask = detect_outliers(xs, config);
  // Allow at most the immediate boundary points to be flagged.
  EXPECT_LE(count_flags(mask), 2u);
}

TEST(OutlierTest, ZScoreMasksNothingWhenSpreadZero) {
  std::vector<double> xs(10, 5.0);
  OutlierConfig config;
  config.method = OutlierMethod::ZScore;
  EXPECT_EQ(count_flags(detect_outliers(xs, config)), 0u);
}

TEST(OutlierTest, ThresholdControlsSensitivity) {
  std::vector<double> xs = base_series();
  xs[10] = 12.0;  // mild deviation
  OutlierConfig strict{OutlierMethod::ZScore, 1.0, 5};
  OutlierConfig loose{OutlierMethod::ZScore, 6.0, 5};
  EXPECT_GE(count_flags(detect_outliers(xs, strict)),
            count_flags(detect_outliers(xs, loose)));
}

TEST(OutlierTest, SplitByMaskPartitionsIndices) {
  const std::vector<std::uint8_t> mask{0, 1, 0, 0, 1};
  const OutlierSplit split = split_by_mask(mask);
  EXPECT_EQ(split.outliers, (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(split.clean, (std::vector<std::size_t>{0, 2, 3}));
}

TEST(OutlierTest, MultipleSpikesAllFound) {
  std::vector<double> xs = base_series();
  xs[5] = 400.0;
  xs[30] = -400.0;
  OutlierConfig config;
  config.method = OutlierMethod::Hampel;
  const auto mask = detect_outliers(xs, config);
  EXPECT_EQ(mask[5], 1);
  EXPECT_EQ(mask[30], 1);
}

}  // namespace
}  // namespace ivt::algo
