#include "cli/args.hpp"

#include <gtest/gtest.h>

namespace ivt::cli {
namespace {

Args parse(std::initializer_list<const char*> argv_list) {
  std::vector<const char*> argv{"ivt"};
  argv.insert(argv.end(), argv_list.begin(), argv_list.end());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgsTest, KeyValueForms) {
  const Args args = parse({"--a", "1", "--b=2"});
  EXPECT_EQ(args.get("a"), "1");
  EXPECT_EQ(args.get("b"), "2");
}

TEST(ArgsTest, BareFlag) {
  const Args args = parse({"--flag", "--x", "7"});
  EXPECT_TRUE(args.has("flag"));
  EXPECT_EQ(args.get("flag"), "");
  EXPECT_EQ(args.get("x"), "7");
}

TEST(ArgsTest, FlagFollowedByOption) {
  const Args args = parse({"--flag", "--x", "7"});
  EXPECT_EQ(args.get_int("x", 0), 7);
}

TEST(ArgsTest, Positional) {
  const Args args = parse({"pos1", "--k", "v", "pos2"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(ArgsTest, RequireThrows) {
  const Args args = parse({});
  EXPECT_THROW((void)args.require("missing"), std::invalid_argument);
}

TEST(ArgsTest, Defaults) {
  const Args args = parse({});
  EXPECT_EQ(args.get_or("x", "d"), "d");
  EXPECT_DOUBLE_EQ(args.get_double("y", 1.5), 1.5);
  EXPECT_EQ(args.get_int("z", -3), -3);
}

TEST(ArgsTest, NumericParsing) {
  const Args args = parse({"--f", "2.5", "--i", "42"});
  EXPECT_DOUBLE_EQ(args.get_double("f", 0), 2.5);
  EXPECT_EQ(args.get_int("i", 0), 42);
}

TEST(ArgsTest, BadNumberThrows) {
  const Args args = parse({"--f", "abc"});
  EXPECT_THROW((void)args.get_double("f", 0), std::invalid_argument);
}

TEST(ArgsTest, ListParsing) {
  const Args args = parse({"--signals", "a,b,c"});
  EXPECT_EQ(args.get_list("signals"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(parse({}).get_list("signals").empty());
}

TEST(ArgsTest, SingleItemList) {
  const Args args = parse({"--signals", "only"});
  EXPECT_EQ(args.get_list("signals"), (std::vector<std::string>{"only"}));
}

TEST(ArgsTest, UnusedTracking) {
  const Args args = parse({"--used", "1", "--typo", "2"});
  (void)args.get("used");
  EXPECT_EQ(args.unused(), (std::vector<std::string>{"typo"}));
}

}  // namespace
}  // namespace ivt::cli
