// End-to-end fault-tolerance acceptance tests for the CLI: simulate ->
// pack -> corrupt / arm failpoints -> `ivt run` must honour --on-error
// (fail aborts with a typed context-chained error and exit 3; skip and
// quarantine complete with exit 4, exact counts in the JSON report, and
// quarantine leaves a sidecar manifest next to the input).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "cli/commands.hpp"
#include "faultfx/faultfx.hpp"

#include "../common/corruption.hpp"
#include "../obs/mini_json.hpp"

namespace ivt::cli {
namespace {

int run(std::initializer_list<const char*> argv_list) {
  std::vector<const char*> argv{"ivt"};
  argv.insert(argv.end(), argv_list.begin(), argv_list.end());
  return run_cli(static_cast<int>(argv.size()), argv.data());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

class FaultCliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    prefix_ = new std::string(::testing::TempDir() + "/fault_syn");
    ASSERT_EQ(run({"simulate", "--dataset", "SYN", "--scale", "0.0001",
                   "--seed", "13", "--out", prefix_->c_str()}),
              0);
    ivc_ = new std::string(::testing::TempDir() + "/fault_syn.ivc");
    ASSERT_EQ(run({"pack", "--trace", (*prefix_ + "_J1.ivt").c_str(),
                   "--out", ivc_->c_str(), "--chunk-rows", "64"}),
              0);
    // One .ivc with a vandalised chunk body, shared by the policy tests.
    const testcorrupt::IvcCorruptor corruptor(slurp(*ivc_));
    ASSERT_GE(corruptor.num_chunks(), 2u);
    bad_ivc_ = new std::string(::testing::TempDir() + "/fault_syn_bad.ivc");
    testcorrupt::write_file(*bad_ivc_, corruptor.with_stomped_chunk(0));
  }
  static void TearDownTestSuite() {
    delete prefix_;
    delete ivc_;
    delete bad_ivc_;
    prefix_ = ivc_ = bad_ivc_ = nullptr;
  }
  void TearDown() override {
    faultfx::disarm_all();
    unsetenv("IVT_FAULTS");
  }

  static std::string catalog_path() { return *prefix_ + ".ivsdb"; }
  static std::string* prefix_;
  static std::string* ivc_;
  static std::string* bad_ivc_;
};

std::string* FaultCliTest::prefix_ = nullptr;
std::string* FaultCliTest::ivc_ = nullptr;
std::string* FaultCliTest::bad_ivc_ = nullptr;

TEST_F(FaultCliTest, FailPolicyAbortsWithTypedErrorAndExit3) {
  ::testing::internal::CaptureStderr();
  const int rc = run({"run", "--trace", bad_ivc_->c_str(), "--catalog",
                      catalog_path().c_str()});
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(rc, 3);
  // The typed error reaches stderr with its category and context chain.
  EXPECT_NE(err.find("decode error"), std::string::npos) << err;
  EXPECT_NE(err.find("while"), std::string::npos) << err;
  EXPECT_NE(err.find("chunk 0"), std::string::npos) << err;
}

TEST_F(FaultCliTest, QuarantinePolicyCompletesWithManifestAndExit4) {
  const std::string manifest = *bad_ivc_ + ".quarantine.json";
  std::remove(manifest.c_str());

  ::testing::internal::CaptureStdout();
  ::testing::internal::CaptureStderr();
  const int rc =
      run({"run", "--trace", bad_ivc_->c_str(), "--catalog",
           catalog_path().c_str(), "--on-error", "quarantine", "--report",
           "json"});
  const std::string out = ::testing::internal::GetCapturedStdout();
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(rc, 4);

  // The JSON report carries exact quarantine counts.
  const testjson::Value report = testjson::parse(out);
  const testjson::Value& failures = report.at("failures");
  EXPECT_EQ(failures.at("total").number(), 1.0);
  EXPECT_EQ(failures.at("chunks_quarantined").number(), 1.0);
  EXPECT_EQ(failures.at("sequences_dropped").number(), 0.0);
  const testjson::Array& records = failures.at("records").array();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].at("site").string(), "colstore.decode_chunk");
  EXPECT_EQ(records[0].at("category").string(), "decode");

  // The sidecar manifest exists and names the quarantined chunk.
  const std::string body = slurp(manifest);
  ASSERT_FALSE(body.empty()) << "no manifest at " << manifest;
  const testjson::Value parsed = testjson::parse(body);
  EXPECT_EQ(parsed.at("source").string(), *bad_ivc_);
  EXPECT_EQ(parsed.at("quarantined").number(), 1.0);
  EXPECT_NE(err.find("quarantine manifest written"), std::string::npos);
}

TEST_F(FaultCliTest, SkipPolicyCompletesWithoutManifest) {
  const std::string manifest = *bad_ivc_ + ".quarantine.json";
  std::remove(manifest.c_str());

  ::testing::internal::CaptureStdout();
  ::testing::internal::CaptureStderr();
  const int rc = run({"run", "--trace", bad_ivc_->c_str(), "--catalog",
                      catalog_path().c_str(), "--on-error", "skip"});
  const std::string out = ::testing::internal::GetCapturedStdout();
  ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(rc, 4);
  // Text report lists the recovered failure; no sidecar under skip.
  EXPECT_NE(out.find("recovered failures (1)"), std::string::npos);
  EXPECT_TRUE(slurp(manifest).empty());
}

TEST_F(FaultCliTest, BadOnErrorValueIsUsageError) {
  ::testing::internal::CaptureStderr();
  const int rc = run({"run", "--trace", ivc_->c_str(), "--catalog",
                      catalog_path().c_str(), "--on-error", "explode"});
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(rc, 2);
  EXPECT_NE(err.find("usage error"), std::string::npos);
}

TEST_F(FaultCliTest, EnvRecipeInjectsFaultsIntoCleanRun) {
  if (!faultfx::enabled()) GTEST_SKIP() << "faultfx compiled out";
  // Deterministic recipe on a CLEAN trace: every chunk decode fails, the
  // quarantine policy drops them all and still completes with exit 4.
  setenv("IVT_FAULTS", "colstore.decode_chunk:error:every=1", 1);
  ::testing::internal::CaptureStdout();
  ::testing::internal::CaptureStderr();
  const int rc = run({"run", "--trace", ivc_->c_str(), "--catalog",
                      catalog_path().c_str(), "--on-error", "quarantine",
                      "--report", "json"});
  const std::string out = ::testing::internal::GetCapturedStdout();
  ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(rc, 4);
  const testjson::Value report = testjson::parse(out);
  EXPECT_GE(report.at("failures").at("chunks_quarantined").number(), 1.0);
  EXPECT_EQ(report.at("kb_rows").number(), 0.0);
  std::remove((*ivc_ + ".quarantine.json").c_str());
}

TEST_F(FaultCliTest, EnvRecipeUnderFailPolicyExits3) {
  if (!faultfx::enabled()) GTEST_SKIP() << "faultfx compiled out";
  setenv("IVT_FAULTS", "colstore.decode_chunk:error:every=1", 1);
  ::testing::internal::CaptureStderr();
  const int rc = run({"run", "--trace", ivc_->c_str(), "--catalog",
                      catalog_path().c_str()});
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(rc, 3);
  EXPECT_NE(err.find("injected fault"), std::string::npos) << err;
}

TEST_F(FaultCliTest, MalformedEnvRecipeAborts) {
  if (!faultfx::enabled()) GTEST_SKIP() << "faultfx compiled out";
  // A typo'd IVT_FAULTS must not silently run without faults.
  setenv("IVT_FAULTS", "colstore.decode_chunk:explode", 1);
  ::testing::internal::CaptureStderr();
  const int rc = run({"inspect", "--trace", ivc_->c_str(), "--catalog",
                      catalog_path().c_str()});
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(rc, 3);  // Category::Spec -> input/spec error
  EXPECT_NE(err.find("bad fault spec"), std::string::npos) << err;
}

TEST_F(FaultCliTest, SequenceFaultsDegradeToDroppedSequences) {
  if (!faultfx::enabled()) GTEST_SKIP() << "faultfx compiled out";
  setenv("IVT_FAULTS", "pipeline.sequence:error:every=2", 1);
  ::testing::internal::CaptureStdout();
  ::testing::internal::CaptureStderr();
  const int rc = run({"run", "--trace", ivc_->c_str(), "--catalog",
                      catalog_path().c_str(), "--on-error", "skip",
                      "--report", "json"});
  const std::string out = ::testing::internal::GetCapturedStdout();
  ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(rc, 4);
  const testjson::Value report = testjson::parse(out);
  const double dropped =
      report.at("failures").at("sequences_dropped").number();
  EXPECT_GE(dropped, 1.0);
  // Dropped sequences are flagged in the per-sequence report with the
  // injected fault as the recorded reason.
  bool saw_dropped_flag = false;
  for (const testjson::Value& seq : report.at("sequences").array()) {
    if (std::get<bool>(seq.at("dropped").v)) {
      saw_dropped_flag = true;
      EXPECT_NE(seq.at("drop_reason").string().find("injected fault"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(saw_dropped_flag);
}

}  // namespace
}  // namespace ivt::cli
