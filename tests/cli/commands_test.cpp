// End-to-end CLI tests: simulate -> inspect -> extract -> run with real
// files in a temp directory.
#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

#include "dataflow/table_io.hpp"

namespace ivt::cli {
namespace {

int run(std::initializer_list<const char*> argv_list) {
  std::vector<const char*> argv{"ivt"};
  argv.insert(argv.end(), argv_list.begin(), argv_list.end());
  return run_cli(static_cast<int>(argv.size()), argv.data());
}

class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    prefix_ = new std::string(::testing::TempDir() + "/cli_syn");
    ASSERT_EQ(run({"simulate", "--dataset", "SYN", "--scale", "0.0001",
                   "--seed", "7", "--out", prefix_->c_str()}),
              0);
  }
  static void TearDownTestSuite() {
    delete prefix_;
    prefix_ = nullptr;
  }
  static std::string trace_path() { return *prefix_ + "_J1.ivt"; }
  static std::string catalog_path() { return *prefix_ + ".ivsdb"; }
  static std::string* prefix_;
};

std::string* CliTest::prefix_ = nullptr;

TEST_F(CliTest, SimulateWroteFiles) {
  EXPECT_TRUE(std::ifstream(trace_path()).good());
  EXPECT_TRUE(std::ifstream(catalog_path()).good());
}

TEST_F(CliTest, InspectRuns) {
  EXPECT_EQ(run({"inspect", "--trace", trace_path().c_str(), "--catalog",
                 catalog_path().c_str()}),
            0);
}

TEST_F(CliTest, CatalogRuns) {
  EXPECT_EQ(run({"catalog", "--file", catalog_path().c_str()}), 0);
}

TEST_F(CliTest, ExtractWritesTable) {
  const std::string out = ::testing::TempDir() + "/cli_ks.ivtbl";
  EXPECT_EQ(run({"extract", "--trace", trace_path().c_str(), "--catalog",
                 catalog_path().c_str(), "--out", out.c_str()}),
            0);
  const dataflow::Table ks = dataflow::load_table(out);
  EXPECT_GT(ks.num_rows(), 0u);
  EXPECT_TRUE(ks.schema().contains("s_id"));
}

TEST_F(CliTest, ExtractSignalSubset) {
  const std::string out = ::testing::TempDir() + "/cli_ks_subset.csv";
  EXPECT_EQ(run({"extract", "--trace", trace_path().c_str(), "--catalog",
                 catalog_path().c_str(), "--signals", "SYN_s0", "--out",
                 out.c_str()}),
            0);
  std::ifstream in(out);
  std::string line;
  std::getline(in, line);  // header
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    EXPECT_NE(line.find("SYN_s0"), std::string::npos);
    ++rows;
  }
  EXPECT_GT(rows, 0u);
}

TEST_F(CliTest, RunProducesStateAndReport) {
  const std::string state = ::testing::TempDir() + "/cli_state.ivtbl";
  EXPECT_EQ(run({"run", "--trace", trace_path().c_str(), "--catalog",
                 catalog_path().c_str(), "--extensions", "cycle_violation",
                 "--state", state.c_str(), "--report", "json"}),
            0);
  const dataflow::Table table = dataflow::load_table(state);
  EXPECT_GT(table.num_rows(), 0u);
  EXPECT_TRUE(table.schema().contains("t"));
}

TEST_F(CliTest, MineRunsAndWritesDot) {
  const std::string dot = ::testing::TempDir() + "/cli_mine.dot";
  EXPECT_EQ(run({"mine", "--trace", trace_path().c_str(), "--catalog",
                 catalog_path().c_str(), "--top-k", "3", "--dot",
                 dot.c_str()}),
            0);
}

TEST_F(CliTest, ExportAscRuns) {
  const std::string out = ::testing::TempDir() + "/cli_dump.asc";
  EXPECT_EQ(run({"export-asc", "--trace", trace_path().c_str(), "--out",
                 out.c_str()}),
            0);
  std::ifstream in(out);
  std::string line;
  std::getline(in, line);
  EXPECT_NE(line.find("vehicle"), std::string::npos);
}

TEST_F(CliTest, PackThenInspectColumnar) {
  const std::string ivc = ::testing::TempDir() + "/cli_packed.ivc";
  EXPECT_EQ(run({"pack", "--trace", trace_path().c_str(), "--out",
                 ivc.c_str(), "--chunk-rows", "64"}),
            0);
  EXPECT_TRUE(std::ifstream(ivc).good());
  // inspect dispatches on the file magic and dumps the zone maps.
  EXPECT_EQ(run({"inspect", "--trace", ivc.c_str(), "--catalog",
                 catalog_path().c_str()}),
            0);
}

TEST_F(CliTest, ExtractFromColumnarMatchesRowContainer) {
  const std::string ivc = ::testing::TempDir() + "/cli_extract.ivc";
  ASSERT_EQ(run({"pack", "--trace", trace_path().c_str(), "--out",
                 ivc.c_str(), "--chunk-rows", "64"}),
            0);
  const std::string from_ivt = ::testing::TempDir() + "/cli_ks_ivt.csv";
  const std::string from_ivc = ::testing::TempDir() + "/cli_ks_ivc.csv";
  ASSERT_EQ(run({"extract", "--trace", trace_path().c_str(), "--catalog",
                 catalog_path().c_str(), "--out", from_ivt.c_str()}),
            0);
  ASSERT_EQ(run({"extract", "--trace", ivc.c_str(), "--catalog",
                 catalog_path().c_str(), "--out", from_ivc.c_str()}),
            0);
  // The pushed-down columnar path must produce byte-identical signal rows.
  std::ifstream a(from_ivt), b(from_ivc);
  const std::string csv_a((std::istreambuf_iterator<char>(a)),
                          std::istreambuf_iterator<char>());
  const std::string csv_b((std::istreambuf_iterator<char>(b)),
                          std::istreambuf_iterator<char>());
  EXPECT_FALSE(csv_a.empty());
  EXPECT_EQ(csv_a, csv_b);
}

TEST_F(CliTest, RunAcceptsColumnarTrace) {
  const std::string ivc = ::testing::TempDir() + "/cli_run.ivc";
  ASSERT_EQ(run({"pack", "--trace", trace_path().c_str(), "--out",
                 ivc.c_str()}),
            0);
  const std::string state = ::testing::TempDir() + "/cli_state_ivc.ivtbl";
  EXPECT_EQ(run({"run", "--trace", ivc.c_str(), "--catalog",
                 catalog_path().c_str(), "--state", state.c_str()}),
            0);
  const dataflow::Table table = dataflow::load_table(state);
  EXPECT_GT(table.num_rows(), 0u);
}

TEST_F(CliTest, PackMissingTraceFails) {
  EXPECT_EQ(run({"pack", "--out", "/tmp/nope.ivc"}), 2);
}

TEST_F(CliTest, UnknownCommandFails) {
  EXPECT_EQ(run({"bogus"}), 2);
}

TEST_F(CliTest, MissingRequiredOptionFails) {
  EXPECT_EQ(run({"inspect"}), 2);
}

TEST_F(CliTest, UnknownDatasetFails) {
  EXPECT_EQ(run({"simulate", "--dataset", "XXX"}), 2);
}

TEST_F(CliTest, MissingInputFileIsFormatError) {
  // A trace path that does not exist is an Io-category failure -> generic 1,
  // while a present-but-malformed file maps to 3 (exercised in the fault
  // integration test). Here we pin that nonexistent input is NOT a usage
  // error and goes to stderr, not stdout.
  ::testing::internal::CaptureStdout();
  ::testing::internal::CaptureStderr();
  const int rc = run({"inspect", "--trace", "/tmp/ivt_does_not_exist.ivt"});
  const std::string out = ::testing::internal::GetCapturedStdout();
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(rc, 1);
  EXPECT_TRUE(out.empty());
  EXPECT_NE(err.find("error"), std::string::npos);
}

TEST_F(CliTest, HelpSucceeds) {
  EXPECT_EQ(run({"help"}), 0);
}

}  // namespace
}  // namespace ivt::cli
