// Runtime lock-rank cross-check tests. In checked builds
// (IVT_LOCK_RANKS=1: Debug and the TSan lane) an inverted acquisition
// must abort the process with a diagnostic — pinned here with death
// tests against the real generated ranks. In unchecked builds the
// entire mechanism must cost nothing: Mutex stays layout-identical to
// std::mutex and any acquisition order is tolerated.
#include "support/mutex.hpp"

#include <gtest/gtest.h>

#include <mutex>

namespace ivt::support {
namespace {

// Real generated constants, chosen for their distinct levels:
//   k_obs_Collector_mutex   level 20
//   k_obs_ThreadRing_mutex  level 30
//   k_obs_Registry_mutex_   level 40
// and two distinct locks sharing level 10:
//   k_core_Shard_mu, k_serve_Server_mutex_

TEST(LockRankTest, RankedConstructionAndLevels) {
  EXPECT_EQ(lock_rank_level(LockRank::kUnranked), 0u);
  EXPECT_EQ(lock_rank_level(LockRank::k_obs_Collector_mutex), 20u);
  EXPECT_EQ(lock_rank_level(LockRank::k_obs_ThreadRing_mutex), 30u);
  EXPECT_EQ(lock_rank_level(LockRank::k_obs_Registry_mutex_), 40u);
  // Same level, distinct constants (the low byte disambiguates).
  EXPECT_EQ(lock_rank_level(LockRank::k_core_Shard_mu), 10u);
  EXPECT_EQ(lock_rank_level(LockRank::k_serve_Server_mutex_), 10u);
  EXPECT_NE(LockRank::k_core_Shard_mu, LockRank::k_serve_Server_mutex_);
}

TEST(LockRankTest, InOrderAcquisitionSucceeds) {
  Mutex low{LockRank::k_obs_Collector_mutex};
  Mutex mid{LockRank::k_obs_ThreadRing_mutex};
  Mutex high{LockRank::k_obs_Registry_mutex_};
  const MutexLock l1(low);
  const MutexLock l2(mid);
  const MutexLock l3(high);
}

TEST(LockRankTest, UnrankedLocksAreExemptInEitherDirection) {
  Mutex ranked{LockRank::k_obs_Registry_mutex_};
  Mutex scratch;  // kUnranked
  {
    const MutexLock l1(ranked);
    const MutexLock l2(scratch);
  }
  {
    const MutexLock l1(scratch);
    const MutexLock l2(ranked);
  }
}

#if IVT_LOCK_RANKS

TEST(LockRankDeathTest, InvertedAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex high{LockRank::k_obs_Registry_mutex_};
  Mutex mid{LockRank::k_obs_ThreadRing_mutex};
  EXPECT_DEATH(
      {
        const MutexLock l1(high);
        const MutexLock l2(mid);
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, EqualLevelAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Strict monotonicity: two level-10 locks may never nest, in either
  // order — that is exactly the ordering the static graph cannot prove.
  Mutex a{LockRank::k_core_Shard_mu};
  Mutex b{LockRank::k_serve_Server_mutex_};
  EXPECT_DEATH(
      {
        const MutexLock l1(a);
        const MutexLock l2(b);
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, ReacquisitionInsideWindowIsAFreshAcquisition) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex low{LockRank::k_obs_Collector_mutex};
  Mutex mid{LockRank::k_obs_ThreadRing_mutex};
  EXPECT_DEATH(
      {
        MutexLock l1(low);
        const MutexLock l2(mid);
        l1.unlock();  // manual window: low released below the top
        l1.lock();    // re-acquiring level 20 under level 30 must abort
      },
      "lock-rank violation");
}

TEST(LockRankTest, NonLifoReleaseKeepsTheStackConsistent) {
  Mutex low{LockRank::k_obs_Collector_mutex};
  Mutex mid{LockRank::k_obs_ThreadRing_mutex};
  Mutex high{LockRank::k_obs_Registry_mutex_};
  MutexLock l1(low);
  const MutexLock l2(mid);
  l1.unlock();  // held set is now {mid} — low popped from below the top
  const MutexLock l3(high);  // 40 > 30: fine
}

#else  // !IVT_LOCK_RANKS

TEST(LockRankTest, UncheckedBuildAddsNothingOverStdMutex) {
  static_assert(sizeof(Mutex) == sizeof(std::mutex),
                "Release Mutex must stay layout-identical to std::mutex");
  // No ordering enforcement: inverted nesting is tolerated.
  Mutex high{LockRank::k_obs_Registry_mutex_};
  Mutex mid{LockRank::k_obs_ThreadRing_mutex};
  const MutexLock l1(high);
  const MutexLock l2(mid);
}

#endif  // IVT_LOCK_RANKS

}  // namespace
}  // namespace ivt::support
