// Fault injection against the streaming morsel path, end to end through
// the CLI: a chunk quarantined mid-stream must drop exactly that chunk's
// rows and finish with exit 4 — no hang waiting on a morsel that never
// completes, no double-counting of the surviving chunks — and the
// degraded result must match batch mode run over the same damaged input.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "cli/commands.hpp"
#include "faultfx/faultfx.hpp"

#include "../common/corruption.hpp"
#include "../obs/mini_json.hpp"

namespace ivt::cli {
namespace {

int run(std::initializer_list<const char*> argv_list) {
  std::vector<const char*> argv{"ivt"};
  argv.insert(argv.end(), argv_list.begin(), argv_list.end());
  return run_cli(static_cast<int>(argv.size()), argv.data());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

class StreamingFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    prefix_ = new std::string(::testing::TempDir() + "/sfault_syn");
    ASSERT_EQ(run({"simulate", "--dataset", "SYN", "--scale", "0.0001",
                   "--seed", "29", "--out", prefix_->c_str()}),
              0);
    ivc_ = new std::string(::testing::TempDir() + "/sfault_syn.ivc");
    ASSERT_EQ(run({"pack", "--trace", (*prefix_ + "_J1.ivt").c_str(),
                   "--out", ivc_->c_str(), "--chunk-rows", "64"}),
              0);
    // Vandalise a MIDDLE chunk: upstream morsels are already in flight
    // when the corruption is hit, downstream morsels must still run.
    const testcorrupt::IvcCorruptor corruptor(slurp(*ivc_));
    ASSERT_GE(corruptor.num_chunks(), 3u);
    bad_chunk_ = corruptor.num_chunks() / 2;
    bad_chunk_rows_ = corruptor.chunk_rows(bad_chunk_);
    bad_ivc_ = new std::string(::testing::TempDir() + "/sfault_syn_bad.ivc");
    testcorrupt::write_file(*bad_ivc_,
                            corruptor.with_stomped_chunk(bad_chunk_));
  }
  static void TearDownTestSuite() {
    delete prefix_;
    delete ivc_;
    delete bad_ivc_;
    prefix_ = ivc_ = bad_ivc_ = nullptr;
  }
  void TearDown() override {
    faultfx::disarm_all();
    unsetenv("IVT_FAULTS");
  }

  static std::string catalog_path() { return *prefix_ + ".ivsdb"; }

  /// `ivt run --report json`, returning (exit code, parsed report).
  static std::pair<int, testjson::Value> run_json(
      std::initializer_list<const char*> extra) {
    std::vector<const char*> argv{"ivt", "run", "--catalog"};
    static std::string catalog;  // storage for the c_str()s below
    catalog = catalog_path();
    argv.push_back(catalog.c_str());
    argv.push_back("--report");
    argv.push_back("json");
    argv.insert(argv.end(), extra.begin(), extra.end());
    ::testing::internal::CaptureStdout();
    const int rc =
        run_cli(static_cast<int>(argv.size()), argv.data());
    return {rc, testjson::parse(::testing::internal::GetCapturedStdout())};
  }

  static std::string* prefix_;
  static std::string* ivc_;
  static std::string* bad_ivc_;
  static std::size_t bad_chunk_;
  static std::uint32_t bad_chunk_rows_;
};

std::string* StreamingFaultTest::prefix_ = nullptr;
std::string* StreamingFaultTest::ivc_ = nullptr;
std::string* StreamingFaultTest::bad_ivc_ = nullptr;
std::size_t StreamingFaultTest::bad_chunk_ = 0;
std::uint32_t StreamingFaultTest::bad_chunk_rows_ = 0;

TEST_F(StreamingFaultTest, MidStreamQuarantineDropsExactlyThatChunk) {
  const auto [clean_rc, clean] =
      run_json({"--trace", ivc_->c_str(), "--exec", "streaming"});
  ASSERT_EQ(clean_rc, 0);

  const auto [rc, report] = run_json({"--trace", bad_ivc_->c_str(),
                                      "--exec", "streaming", "--on-error",
                                      "skip"});
  EXPECT_EQ(rc, 4);
  const testjson::Value& failures = report.at("failures");
  EXPECT_EQ(failures.at("chunks_quarantined").number(), 1.0);
  const testjson::Array& records = failures.at("records").array();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].at("site").string(), "colstore.decode_chunk");

  // Exactly the corrupt chunk's rows vanish from K_b — the surviving
  // morsels are neither lost nor double-counted.
  EXPECT_EQ(report.at("kb_rows").number(),
            clean.at("kb_rows").number() - bad_chunk_rows_);
  EXPECT_LE(report.at("ks_rows").number(), clean.at("ks_rows").number());
  EXPECT_GT(report.at("krep_rows").number(), 0.0);
}

TEST_F(StreamingFaultTest, DegradedStreamingMatchesDegradedBatch) {
  const auto [rc_b, batch] = run_json(
      {"--trace", bad_ivc_->c_str(), "--exec", "batch", "--on-error",
       "skip"});
  const auto [rc_s, streaming] = run_json(
      {"--trace", bad_ivc_->c_str(), "--exec", "streaming", "--on-error",
       "skip"});
  EXPECT_EQ(rc_b, 4);
  EXPECT_EQ(rc_s, 4);
  for (const char* key :
       {"kb_rows", "kpre_rows", "ks_rows", "reduced_rows", "krep_rows"}) {
    EXPECT_EQ(batch.at(key).number(), streaming.at(key).number()) << key;
  }
  EXPECT_EQ(batch.at("failures").at("total").number(),
            streaming.at("failures").at("total").number());
  EXPECT_EQ(batch.at("failures").at("chunks_quarantined").number(),
            streaming.at("failures").at("chunks_quarantined").number());
}

TEST_F(StreamingFaultTest, FailPolicyAbortsStreamingWithExit3) {
  ::testing::internal::CaptureStdout();
  ::testing::internal::CaptureStderr();
  const int rc = run({"run", "--trace", bad_ivc_->c_str(), "--catalog",
                      catalog_path().c_str(), "--exec", "streaming"});
  ::testing::internal::GetCapturedStdout();
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(rc, 3);
  // Same typed, context-chained diagnostic as batch mode.
  EXPECT_NE(err.find("decode error"), std::string::npos) << err;
  EXPECT_NE(err.find("chunk " + std::to_string(bad_chunk_)),
            std::string::npos)
      << err;
}

TEST_F(StreamingFaultTest, InjectedDecodeFaultsAccountForEveryRow) {
  // Probabilistic IVT_FAULTS decode errors hit an unpredictable subset of
  // morsels mid-stream. Whatever the subset, the accounting must be
  // exact: K_b shrinks by precisely the sum of the quarantined chunks'
  // directory row counts — surviving morsels are neither lost nor
  // double-counted — and the run completes with exit 4 instead of
  // hanging on the failed morsels.
  const auto [clean_rc, clean] =
      run_json({"--trace", ivc_->c_str(), "--exec", "streaming"});
  ASSERT_EQ(clean_rc, 0);

  setenv("IVT_FAULTS", "colstore.decode_chunk:error:0.4:seed=11", 1);
  const auto [rc, report] =
      run_json({"--trace", ivc_->c_str(), "--exec", "streaming",
                "--workers", "4", "--on-error", "skip"});
  EXPECT_EQ(rc, 4);
  const testjson::Value& failures = report.at("failures");
  EXPECT_GT(failures.at("chunks_quarantined").number(), 0.0);

  // Each record's unit reads "chunk N @ offset O (R rows)"; sum the R's.
  double rows_lost = 0;
  for (const testjson::Value& record : failures.at("records").array()) {
    EXPECT_EQ(record.at("site").string(), "colstore.decode_chunk");
    const std::string unit = record.at("unit").string();
    const std::size_t open = unit.rfind('(');
    ASSERT_NE(open, std::string::npos) << unit;
    rows_lost += std::stod(unit.substr(open + 1));
  }
  EXPECT_EQ(report.at("kb_rows").number(),
            clean.at("kb_rows").number() - rows_lost);
  EXPECT_LE(report.at("ks_rows").number(), clean.at("ks_rows").number());
}

TEST_F(StreamingFaultTest, SequenceFaultsDegradeStreamingRunToExit4) {
  // Faults downstream of the fused stage (per-sequence processing) go
  // through the shared process_and_merge; streaming must degrade the same
  // way batch does instead of hanging or aborting.
  setenv("IVT_FAULTS", "pipeline.sequence:error:0.5:seed=3", 1);
  const auto [rc, report] =
      run_json({"--trace", ivc_->c_str(), "--exec", "streaming",
                "--workers", "0", "--on-error", "skip"});
  EXPECT_EQ(rc, 4);
  EXPECT_GT(report.at("failures").at("sequences_dropped").number(), 0.0);
  EXPECT_GT(report.at("krep_rows").number(), 0.0);
}

TEST_F(StreamingFaultTest, StreamingOnRowTraceIsUsageError) {
  ::testing::internal::CaptureStderr();
  const int rc =
      run({"run", "--trace", (*prefix_ + "_J1.ivt").c_str(), "--catalog",
           catalog_path().c_str(), "--exec", "streaming"});
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(rc, 2);
  EXPECT_NE(err.find("requires a columnar .ivc trace"), std::string::npos)
      << err;
}

TEST_F(StreamingFaultTest, BadExecValueIsUsageError) {
  ::testing::internal::CaptureStderr();
  const int rc = run({"run", "--trace", ivc_->c_str(), "--catalog",
                      catalog_path().c_str(), "--exec", "sideways"});
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(rc, 2);
  EXPECT_NE(err.find("unknown exec mode"), std::string::npos) << err;
}

}  // namespace
}  // namespace ivt::cli
