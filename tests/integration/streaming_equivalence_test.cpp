// Differential batch-vs-streaming equivalence: the streaming morsel
// executor must be observationally indistinguishable from the batch
// pipeline — byte-identical K_s / K_rep / state, identical report rows and
// failure counters, identical exit codes — across chunk sizes, worker
// counts (inline / 1 / N) and every --on-error policy, on clean and on
// corrupted input. The whole suite is swept across both scan modes
// (--scan decoded|compressed): the compressed path must hold every
// equivalence the decoded path holds, including under corruption.
#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "colstore/columnar_writer.hpp"
#include "colstore/format.hpp"
#include "core/pipeline.hpp"
#include "simnet/datasets.hpp"

#include "../common/corruption.hpp"
#include "../common/differ.hpp"

namespace ivt {
namespace {

class StreamingEquivalenceTest
    : public ::testing::TestWithParam<colstore::ScanMode> {
 protected:
  static void SetUpTestSuite() {
    simnet::DatasetConfig config;
    config.scale = 2e-4;  // ~14 s of the 20 h recording
    config.seed = 42;
    dataset_ = new simnet::Dataset(simnet::make_syn_dataset(config));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  /// The in-memory .ivc image of the shared trace at a given chunking.
  static std::string pack(std::size_t chunk_rows) {
    const std::string path = ::testing::TempDir() + "/streq_" +
                             std::to_string(chunk_rows) + ".ivc";
    colstore::ColumnarWriterOptions options;
    options.chunk_rows = chunk_rows;
    colstore::save_trace_columnar(dataset_->trace, path, options);
    return path;
  }

  /// Both executors run under the suite's scan-mode parameter, so every
  /// equivalence below is asserted for the compressed path too.
  [[nodiscard]] core::PipelineConfig base_config() const {
    core::PipelineConfig config;
    config.keep_ks = true;  // compare the K_s table too
    config.scan_mode = GetParam();
    return config;
  }

  static simnet::Dataset* dataset_;
};

simnet::Dataset* StreamingEquivalenceTest::dataset_ = nullptr;

TEST_P(StreamingEquivalenceTest, IdenticalAcrossChunkSizes) {
  // Small (many morsels), mid, prime (instances straddle boundaries at
  // awkward offsets), and one-chunk (degenerate single morsel).
  for (const std::size_t chunk_rows :
       {std::size_t{256}, std::size_t{2048}, std::size_t{4099},
        std::size_t{1u << 20}}) {
    SCOPED_TRACE("chunk_rows=" + std::to_string(chunk_rows));
    const colstore::ColumnarReader reader(pack(chunk_rows));
    const testdiff::RunOutcome batch = testdiff::expect_modes_equivalent(
        dataset_->catalog, reader, base_config(),
        {.workers = 4, .default_partitions = 8});
    ASSERT_FALSE(batch.threw) << batch.error;
    EXPECT_GT(batch.result.krep_rows, 0u);
  }
}

TEST_P(StreamingEquivalenceTest, IdenticalAcrossWorkerCounts) {
  const colstore::ColumnarReader reader(pack(1024));
  // Inline (deterministic debugging mode), one worker, many workers.
  const std::vector<dataflow::EngineConfig> engines = {
      {.workers = 0, .inline_execution = true},
      {.workers = 1},
      {.workers = 8},
  };
  for (const dataflow::EngineConfig& engine_config : engines) {
    SCOPED_TRACE("workers=" + std::to_string(engine_config.workers) +
                 (engine_config.inline_execution ? " (inline)" : ""));
    const testdiff::RunOutcome batch = testdiff::expect_modes_equivalent(
        dataset_->catalog, reader, base_config(), engine_config);
    ASSERT_FALSE(batch.threw) << batch.error;
  }
}

TEST_P(StreamingEquivalenceTest, IdenticalUnderEveryErrorPolicyCleanInput) {
  const colstore::ColumnarReader reader(pack(1024));
  for (const errors::ErrorPolicy policy :
       {errors::ErrorPolicy::Fail, errors::ErrorPolicy::Skip,
        errors::ErrorPolicy::Quarantine}) {
    SCOPED_TRACE("policy=" + std::string(errors::to_string(policy)));
    core::PipelineConfig config = base_config();
    config.on_error = policy;
    const testdiff::RunOutcome batch = testdiff::expect_modes_equivalent(
        dataset_->catalog, reader, config, {.workers = 4});
    ASSERT_FALSE(batch.threw) << batch.error;
    EXPECT_EQ(batch.exit_code, 0);
  }
}

TEST_P(StreamingEquivalenceTest, IdenticalUnderEveryErrorPolicyCorruptChunk) {
  // Vandalise one chunk body: Fail must abort both modes with the same
  // typed error and exit 3; Skip / Quarantine must drop exactly that
  // chunk's rows in both modes and exit 4 with equal failure counters.
  const std::string good_path = pack(512);
  std::ifstream in(good_path, std::ios::binary);
  const std::string good((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const testcorrupt::IvcCorruptor corruptor(good);
  ASSERT_GE(corruptor.num_chunks(), 3u);
  const colstore::ColumnarReader reader =
      colstore::ColumnarReader::from_buffer(corruptor.with_stomped_chunk(1));

  for (const errors::ErrorPolicy policy :
       {errors::ErrorPolicy::Fail, errors::ErrorPolicy::Skip,
        errors::ErrorPolicy::Quarantine}) {
    SCOPED_TRACE("policy=" + std::string(errors::to_string(policy)));
    core::PipelineConfig config = base_config();
    config.on_error = policy;
    const testdiff::RunOutcome batch = testdiff::expect_modes_equivalent(
        dataset_->catalog, reader, config, {.workers = 4});
    if (policy == errors::ErrorPolicy::Fail) {
      EXPECT_TRUE(batch.threw);
      EXPECT_EQ(batch.exit_code, 3);
    } else {
      ASSERT_FALSE(batch.threw) << batch.error;
      EXPECT_EQ(batch.exit_code, 4);
      EXPECT_EQ(
          testdiff::failure_counts(batch.result.failures)["colstore.decode_chunk"],
          1u);
    }
  }
}

TEST_P(StreamingEquivalenceTest, ReportCountersMatchScanStats) {
  const colstore::ColumnarReader reader(pack(1024));
  const testdiff::RunOutcome streaming = testdiff::run_mode(
      dataset_->catalog, reader, base_config(), core::ExecMode::Streaming,
      {.workers = 4});
  ASSERT_FALSE(streaming.threw) << streaming.error;
  // K_b is virtual in streaming mode, but its reported size must still be
  // the file's row count (nothing quarantined here).
  EXPECT_EQ(streaming.result.kb_rows, reader.num_rows());
  // The pushdown row filter IS preselection: rows emitted by the cursor
  // must equal the reported K_pre.
  EXPECT_EQ(streaming.scan_stats.rows_emitted, streaming.result.kpre_rows);
  EXPECT_EQ(streaming.scan_stats.chunks_quarantined, 0u);
}

// The cross-mode anchor: a decoded batch run is the reference output, and
// a streaming run under the suite's scan mode must match it byte for
// byte. For the compressed parameter this pins the full claim — decoded
// batch == compressed streaming — through every pipeline observable.
TEST_P(StreamingEquivalenceTest, MatchesDecodedBatchReference) {
  const colstore::ColumnarReader reader(pack(1024));
  core::PipelineConfig decoded_config = base_config();
  decoded_config.scan_mode = colstore::ScanMode::Decoded;
  const testdiff::RunOutcome reference = testdiff::run_mode(
      dataset_->catalog, reader, decoded_config, core::ExecMode::Batch,
      {.workers = 4});
  ASSERT_FALSE(reference.threw) << reference.error;
  const testdiff::RunOutcome streaming = testdiff::run_mode(
      dataset_->catalog, reader, base_config(), core::ExecMode::Streaming,
      {.workers = 4});
  EXPECT_TRUE(testdiff::outcomes_equivalent(reference, streaming));
}

INSTANTIATE_TEST_SUITE_P(
    ScanModes, StreamingEquivalenceTest,
    ::testing::Values(colstore::ScanMode::Decoded,
                      colstore::ScanMode::Compressed),
    [](const ::testing::TestParamInfo<colstore::ScanMode>& info) {
      return std::string(colstore::to_string(info.param));
    });

}  // namespace
}  // namespace ivt
