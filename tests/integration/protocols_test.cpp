// Integration: every supported protocol flows through the full pipeline —
// classic CAN, CAN-FD (large payload), LIN, SOME/IP (conditional member)
// and FlexRay, mixed in one trace.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "signaldb/catalog.hpp"
#include "tracefile/trace.hpp"

namespace ivt {
namespace {

constexpr std::int64_t kMs = 1'000'000;

signaldb::Catalog mixed_catalog() {
  signaldb::Catalog catalog;

  {  // classic CAN, 8 bytes
    signaldb::MessageSpec m;
    m.name = "CanMsg";
    m.bus = "FC";
    m.message_id = 0x100;
    m.protocol = protocol::Protocol::Can;
    m.payload_size = 8;
    signaldb::SignalSpec s;
    s.name = "can_speed";
    s.start_bit = 0;
    s.length = 16;
    s.transform = {0.1, 0.0};
    s.expected_cycle_ns = 20 * kMs;
    m.signals = {s};
    catalog.add_message(std::move(m));
  }
  {  // CAN-FD, 32 bytes, signal deep in the payload
    signaldb::MessageSpec m;
    m.name = "FdMsg";
    m.bus = "FC";
    m.message_id = 0x200;
    m.protocol = protocol::Protocol::CanFd;
    m.payload_size = 32;
    signaldb::SignalSpec s;
    s.name = "fd_torque";
    s.start_bit = 200;  // byte 25
    s.length = 16;
    s.value_kind = signaldb::ValueKind::Signed;
    s.expected_cycle_ns = 50 * kMs;
    m.signals = {s};
    catalog.add_message(std::move(m));
  }
  {  // LIN
    signaldb::MessageSpec m;
    m.name = "LinMsg";
    m.bus = "K-LIN";
    m.message_id = 0x21;
    m.protocol = protocol::Protocol::Lin;
    m.payload_size = 2;
    signaldb::SignalSpec s;
    s.name = "lin_level";
    s.start_bit = 0;
    s.length = 8;
    s.ordered_values = true;
    s.expected_cycle_ns = 500 * kMs;
    s.value_table = {{0, "off", false}, {1, "low", false}, {2, "high", false}};
    m.signals = {s};
    catalog.add_message(std::move(m));
  }
  {  // SOME/IP with conditional member
    signaldb::MessageSpec m;
    m.name = "SomeIpMsg";
    m.bus = "IP";
    m.message_id = (0x1234LL << 16) | 0x8001;
    m.protocol = protocol::Protocol::SomeIp;
    m.payload_size = 16;
    signaldb::SignalSpec s;
    s.name = "sip_opt";
    s.start_bit = 8;
    s.length = 32;
    s.value_kind = signaldb::ValueKind::Float32;
    s.presence.always = false;
    s.presence.selector_start_bit = 0;
    s.presence.selector_length = 8;
    s.presence.equals = 1;
    s.expected_cycle_ns = 100 * kMs;
    m.signals = {s};
    catalog.add_message(std::move(m));
  }
  {  // FlexRay
    signaldb::MessageSpec m;
    m.name = "FrMsg";
    m.bus = "FR-A";
    m.message_id = 42;  // slot id
    m.protocol = protocol::Protocol::FlexRay;
    m.payload_size = 16;
    signaldb::SignalSpec s;
    s.name = "fr_flag";
    s.start_bit = 0;
    s.length = 1;
    s.expected_cycle_ns = 5 * kMs;
    s.value_table = {{0, "OFF", false}, {1, "ON", false}};
    m.signals = {s};
    catalog.add_message(std::move(m));
  }
  return catalog;
}

tracefile::Trace mixed_trace(const signaldb::Catalog& catalog) {
  tracefile::Trace trace;
  for (int i = 0; i < 100; ++i) {
    const std::int64_t t = i * 10 * kMs;
    {  // CAN speed ramp
      tracefile::TraceRecord rec;
      rec.t_ns = t;
      rec.bus = "FC";
      rec.message_id = 0x100;
      rec.payload.assign(8, 0);
      signaldb::encode_signal(rec.payload,
                              *catalog.find_signal("can_speed").signal,
                              1.0 * i);
      trace.records.push_back(std::move(rec));
    }
    if (i % 5 == 0) {  // FD torque alternating sign
      tracefile::TraceRecord rec;
      rec.t_ns = t + 1;
      rec.bus = "FC";
      rec.message_id = 0x200;
      rec.protocol = protocol::Protocol::CanFd;
      rec.payload.assign(32, 0);
      signaldb::encode_signal(rec.payload,
                              *catalog.find_signal("fd_torque").signal,
                              i % 10 == 0 ? -40.0 : 55.0);
      trace.records.push_back(std::move(rec));
    }
    if (i % 25 == 0) {  // LIN level stepping through off/low/high
      tracefile::TraceRecord rec;
      rec.t_ns = t + 2;
      rec.bus = "K-LIN";
      rec.message_id = 0x21;
      rec.protocol = protocol::Protocol::Lin;
      rec.payload.assign(2, 0);
      protocol::insert_bits(rec.payload, 0, 8, protocol::ByteOrder::Intel,
                            static_cast<std::uint64_t>((i / 25) % 3));
      trace.records.push_back(std::move(rec));
    }
    if (i % 10 == 0) {  // SOME/IP, member present for even i/10
      tracefile::TraceRecord rec;
      rec.t_ns = t + 3;
      rec.bus = "IP";
      rec.message_id = (0x1234LL << 16) | 0x8001;
      rec.protocol = protocol::Protocol::SomeIp;
      rec.payload.assign(16, 0);
      const bool present = (i / 10) % 2 == 0;
      rec.payload[0] = present ? 1 : 2;
      if (present) {
        protocol::insert_bits(rec.payload, 8, 32,
                              protocol::ByteOrder::Intel,
                              protocol::float32_to_raw(3.5f));
      }
      trace.records.push_back(std::move(rec));
    }
    {  // FlexRay flag toggling every 25 samples
      tracefile::TraceRecord rec;
      rec.t_ns = t + 4;
      rec.bus = "FR-A";
      rec.message_id = 42;
      rec.protocol = protocol::Protocol::FlexRay;
      rec.payload.assign(16, 0);
      rec.payload[0] = (i / 25) % 2;
      trace.records.push_back(std::move(rec));
    }
  }
  return trace;
}

TEST(ProtocolsIntegrationTest, AllProtocolsFlowThroughThePipeline) {
  const signaldb::Catalog catalog = mixed_catalog();
  const tracefile::Trace trace = mixed_trace(catalog);

  core::PipelineConfig config;
  config.classifier.rate_threshold_hz = 20.0;
  const core::Pipeline pipeline(catalog, config);
  dataflow::Engine engine{{.workers = 2, .default_partitions = 4}};
  const core::PipelineResult result =
      pipeline.run(engine, tracefile::to_kb_table(trace, 4));

  ASSERT_EQ(result.sequences.size(), 5u);
  std::map<std::string, const core::SequenceReport*> by_name;
  for (const auto& report : result.sequences) {
    by_name[report.s_id] = &report;
  }

  // CAN ramp at 100 Hz: numeric α.
  EXPECT_EQ(by_name.at("can_speed")->classification.branch,
            core::Branch::Alpha);
  EXPECT_EQ(by_name.at("can_speed")->input_rows, 100u);

  // CAN-FD signed value with 2 distinct values: binary γ.
  EXPECT_EQ(by_name.at("fd_torque")->classification.data_type,
            core::DataType::Binary);
  EXPECT_EQ(by_name.at("fd_torque")->input_rows, 20u);

  // LIN ordered labels: ordinal β.
  EXPECT_EQ(by_name.at("lin_level")->classification.branch,
            core::Branch::Beta);

  // SOME/IP conditional member: only present instances extracted.
  EXPECT_EQ(by_name.at("sip_opt")->input_rows, 5u);  // i/10 even: 0,2,4,6,8

  // FlexRay binary flag: γ.
  EXPECT_EQ(by_name.at("fr_flag")->classification.branch,
            core::Branch::Gamma);
  EXPECT_EQ(by_name.at("fr_flag")->input_rows, 100u);

  // State table has a column per signal.
  for (const char* name :
       {"can_speed", "fd_torque", "lin_level", "sip_opt", "fr_flag"}) {
    EXPECT_TRUE(result.state.schema().contains(name)) << name;
  }
}

TEST(ProtocolsIntegrationTest, Float32ValuesDecodeExactly) {
  const signaldb::Catalog catalog = mixed_catalog();
  const tracefile::Trace trace = mixed_trace(catalog);
  core::PipelineConfig config;
  config.keep_ks = true;
  config.constraints.clear();
  const core::Pipeline pipeline(catalog, config);
  dataflow::Engine engine{{.workers = 2}};
  const core::PipelineResult result =
      pipeline.run(engine, tracefile::to_kb_table(trace, 4));
  const std::size_t sid_col = result.ks.schema().require("s_id");
  const std::size_t num_col = result.ks.schema().require("v_num");
  result.ks.for_each_row([&](const dataflow::RowView& row) {
    if (row.string_at(sid_col) == "sip_opt") {
      EXPECT_FLOAT_EQ(static_cast<float>(row.float64_at(num_col)), 3.5f);
    }
  });
}

}  // namespace
}  // namespace ivt
