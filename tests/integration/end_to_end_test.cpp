// Integration: simulator -> trace file -> pipeline -> applications,
// cross-checked against the sequential baseline tool.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "dataflow/ops.hpp"

#include "apps/anomaly.hpp"
#include "apps/association_rules.hpp"
#include "apps/transition_graph.hpp"
#include "baseline/inhouse_tool.hpp"
#include "core/pipeline.hpp"
#include "simnet/datasets.hpp"
#include "tracefile/binary_format.hpp"

namespace ivt {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    simnet::DatasetConfig config;
    config.scale = 2e-4;  // ~14 s of the 20 h recording
    config.seed = 42;
    dataset_ = new simnet::Dataset(simnet::make_syn_dataset(config));
    plan_ = new simnet::VehiclePlan(
        simnet::plan_vehicle(simnet::syn_spec(), config.seed));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete plan_;
    dataset_ = nullptr;
    plan_ = nullptr;
  }

  static simnet::Dataset* dataset_;
  static simnet::VehiclePlan* plan_;
  dataflow::Engine engine_{{.workers = 4, .default_partitions = 8}};
};

simnet::Dataset* EndToEndTest::dataset_ = nullptr;
simnet::VehiclePlan* EndToEndTest::plan_ = nullptr;

TEST_F(EndToEndTest, TraceSurvivesFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/e2e_syn.ivt";
  tracefile::save_trace(dataset_->trace, path);
  const tracefile::Trace back = tracefile::load_trace(path);
  EXPECT_EQ(back.records, dataset_->trace.records);
}

TEST_F(EndToEndTest, PipelineBranchMixMatchesTable5Spec) {
  core::PipelineConfig config;
  config.classifier.rate_threshold_hz = plan_->recommended_rate_threshold_hz;
  const core::Pipeline pipeline(dataset_->catalog, config);
  const auto kb = tracefile::to_kb_table(dataset_->trace, 8);
  const core::PipelineResult result = pipeline.run(engine_, kb);

  std::size_t alpha = 0;
  std::size_t beta = 0;
  std::size_t gamma = 0;
  for (const core::SequenceReport& report : result.sequences) {
    switch (report.classification.branch) {
      case core::Branch::Alpha:
        ++alpha;
        break;
      case core::Branch::Beta:
        ++beta;
        break;
      case core::Branch::Gamma:
        ++gamma;
        break;
    }
  }
  // Paper Table 5 SYN: 6 α, 4 β, 3 γ. Short traces can demote an α/β
  // signal whose values barely move, so allow slack of 2 per class.
  EXPECT_NEAR(static_cast<double>(alpha), 6.0, 2.0);
  EXPECT_NEAR(static_cast<double>(beta), 4.0, 2.0);
  EXPECT_NEAR(static_cast<double>(gamma), 3.0, 2.0);
  EXPECT_EQ(alpha + beta + gamma, result.sequences.size());
}

TEST_F(EndToEndTest, ReductionRemovesRedundancyButKeepsChanges) {
  core::PipelineConfig config;
  config.classifier.rate_threshold_hz = plan_->recommended_rate_threshold_hz;
  const core::Pipeline pipeline(dataset_->catalog, config);
  const auto kb = tracefile::to_kb_table(dataset_->trace, 8);
  const auto reduced = pipeline.extract_and_reduce(engine_, kb);
  EXPECT_GT(reduced.ks_rows, 0u);
  EXPECT_LT(reduced.reduced_rows, reduced.ks_rows);
  EXPECT_GT(reduced.reduced_rows, reduced.ks_rows / 100);
}

TEST_F(EndToEndTest, GatewayCorrespondencesFound) {
  core::PipelineConfig config;
  const core::Pipeline pipeline(dataset_->catalog, config);
  const auto kb = tracefile::to_kb_table(dataset_->trace, 8);
  const auto reduced = pipeline.extract_and_reduce(engine_, kb);
  // The SYN plan routes some FC messages through a gateway, but U_rel only
  // documents the origin bus, so the duplicates are filtered by
  // preselection — no correspondences expected here. Force dedup coverage
  // by checking the path ran without creating spurious sequences:
  std::map<std::string, int> per_sid;
  for (const auto& seq : reduced.sequences) ++per_sid[seq.s_id];
  for (const auto& [sid, count] : per_sid) {
    EXPECT_EQ(count, 1) << sid;
  }
}

TEST_F(EndToEndTest, BaselineAgreesWithPipelineOnValues) {
  // Pick one α signal and compare pipeline K_s values to the baseline
  // tool's decoded store.
  const auto kb = tracefile::to_kb_table(dataset_->trace, 8);
  core::PipelineConfig config;
  config.keep_ks = true;
  config.constraints.clear();  // no reduction: want raw values
  const core::Pipeline pipeline(dataset_->catalog, config);
  const core::PipelineResult result = pipeline.run(engine_, kb);

  baseline::InHouseTool tool(dataset_->catalog);
  tool.ingest(dataset_->trace);

  const std::string sid = dataset_->signal_names.front();
  std::vector<std::pair<std::int64_t, double>> pipeline_values;
  const auto& schema = result.ks.schema();
  const std::size_t t_col = schema.require("t");
  const std::size_t sid_col = schema.require("s_id");
  const std::size_t num_col = schema.require("v_num");
  result.ks.for_each_row([&](const dataflow::RowView& row) {
    if (row.string_at(sid_col) == sid && !row.is_null(num_col)) {
      pipeline_values.emplace_back(row.int64_at(t_col),
                                   row.float64_at(num_col));
    }
  });
  const auto* stored = tool.find(sid);
  ASSERT_NE(stored, nullptr);
  ASSERT_EQ(stored->size(), pipeline_values.size());
  for (std::size_t i = 0; i < stored->size(); ++i) {
    EXPECT_EQ((*stored)[i].t_ns, pipeline_values[i].first);
    EXPECT_DOUBLE_EQ((*stored)[i].value, pipeline_values[i].second);
  }
}

TEST_F(EndToEndTest, ApplicationsRunOnPipelineOutput) {
  core::PipelineConfig config;
  config.classifier.rate_threshold_hz = plan_->recommended_rate_threshold_hz;
  config.extensions.push_back(core::cycle_violation_extension(2.0));
  const core::Pipeline pipeline(dataset_->catalog, config);
  const auto kb = tracefile::to_kb_table(dataset_->trace, 8);
  const core::PipelineResult result = pipeline.run(engine_, kb);

  // Element anomalies: the simulator injects outliers and dropouts, the
  // pipeline must surface them.
  apps::AnomalyConfig anomaly_config;
  anomaly_config.top_k = 50;
  const auto anomalies =
      apps::detect_element_anomalies(result.krep, anomaly_config);
  EXPECT_FALSE(anomalies.empty());

  // Transition graph over one γ signal column.
  std::string gamma_sid;
  for (const auto& report : result.sequences) {
    if (report.classification.branch == core::Branch::Gamma &&
        result.state.schema().contains(report.s_id)) {
      gamma_sid = report.s_id;
      break;
    }
  }
  ASSERT_FALSE(gamma_sid.empty());
  const auto graph =
      apps::TransitionGraph::from_column(result.state, gamma_sid);
  EXPECT_GT(graph.num_transitions(), 0u);

  // Association rules over a trimmed state table (first 6 columns to keep
  // Apriori cheap).
  std::vector<std::string> cols;
  for (std::size_t c = 0; c < std::min<std::size_t>(6, result.state.schema().size());
       ++c) {
    cols.push_back(result.state.schema().field(c).name);
  }
  const auto trimmed = dataflow::project(engine_, result.state, cols);
  apps::MinerConfig miner;
  miner.min_support = 0.2;
  miner.min_confidence = 0.8;
  miner.max_itemset_size = 2;
  const auto rules = apps::mine_rules(trimmed, miner);
  SUCCEED();  // mining must terminate; rule count depends on the data
}

TEST_F(EndToEndTest, DeterministicEndToEnd) {
  simnet::DatasetConfig config;
  config.scale = 5e-5;
  config.seed = 123;
  const simnet::Dataset a = simnet::make_syn_dataset(config);
  const simnet::Dataset b = simnet::make_syn_dataset(config);
  ASSERT_EQ(a.trace.records, b.trace.records);

  core::PipelineConfig pconfig;
  const core::Pipeline pa(a.catalog, pconfig);
  const core::Pipeline pb(b.catalog, pconfig);
  const auto ra = pa.run(engine_, tracefile::to_kb_table(a.trace, 8));
  const auto rb = pb.run(engine_, tracefile::to_kb_table(b.trace, 8));
  EXPECT_EQ(ra.krep.collect_rows(), rb.krep.collect_rows());
  EXPECT_EQ(ra.state.collect_rows(), rb.state.collect_rows());
}

}  // namespace
}  // namespace ivt
