// serve::Client deadline coverage: a peer that accepts the connection but
// never answers must surface as a typed, retryable errors::Error(Timeout)
// within the configured budget — not hang the caller forever.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "errors/error.hpp"
#include "serve/client.hpp"
#include "serve/wire.hpp"

namespace ivt {
namespace {

/// A listener that completes TCP handshakes (via the kernel backlog) but
/// never reads or writes a byte: the canonical stalled peer.
class StalledPeer {
 public:
  StalledPeer() {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_OR_THROW(fd_ >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_OR_THROW(::bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0);
    ASSERT_OR_THROW(::listen(fd_, 8) == 0);
    socklen_t len = sizeof(addr);
    ASSERT_OR_THROW(
        ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
    port_ = ntohs(addr.sin_port);
  }

  ~StalledPeer() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  static void ASSERT_OR_THROW(bool ok) {
    if (!ok) throw std::runtime_error(std::strerror(errno));
  }

  int fd_ = -1;
  std::uint16_t port_ = 0;
};

TEST(ClientTimeoutTest, StalledPeerSurfacesAsTypedTimeout) {
  StalledPeer peer;
  serve::Client client("127.0.0.1", peer.port(), /*timeout_ms=*/200);

  const auto start = std::chrono::steady_clock::now();
  try {
    (void)client.request(R"({"op": "ping"})");
    FAIL() << "request against a stalled peer should not succeed";
  } catch (const errors::Error& e) {
    EXPECT_EQ(e.category(), errors::Category::Timeout) << e.describe();
    EXPECT_TRUE(errors::is_transient(e.category()));
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // The deadline has to actually bound the wait: well under the test
  // timeout, comfortably above zero wiggle for slow CI machines.
  EXPECT_LT(elapsed, std::chrono::seconds(30));
}

TEST(ClientTimeoutTest, ZeroTimeoutKeepsLegacyBlockingConnectPath) {
  // timeout_ms=0 must still connect fine (reads would block forever
  // against this peer, so only the construction is exercised).
  StalledPeer peer;
  EXPECT_NO_THROW(serve::Client("127.0.0.1", peer.port()));
}

TEST(ClientTimeoutTest, TimeoutCategoryRendersAndParses) {
  EXPECT_EQ(errors::to_string(errors::Category::Timeout), "timeout");
  static_assert(errors::is_transient(errors::Category::Timeout));
}

}  // namespace
}  // namespace ivt
