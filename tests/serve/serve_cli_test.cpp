// CLI surface of the serving subsystem: `ivt serve` exit codes (5 is
// pinned for bind/listen failure), `ivt query` argument validation, and
// the observability commands `trace-merge` / `top` / `query --trace-out`.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cli/commands.hpp"
#include "obs/obs.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "signaldb/catalog.hpp"

namespace ivt::cli {
namespace {

int run(std::initializer_list<std::string> argv_list) {
  std::vector<std::string> storage{"ivt"};
  storage.insert(storage.end(), argv_list.begin(), argv_list.end());
  std::vector<const char*> argv;
  argv.reserve(storage.size());
  for (const std::string& s : storage) argv.push_back(s.c_str());
  return run_cli(static_cast<int>(argv.size()), argv.data());
}

/// Occupies an ephemeral 127.0.0.1 port for the lifetime of the object.
struct PortHog {
  int fd = -1;
  std::uint16_t port = 0;
  PortHog() {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(fd, 1), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len),
              0);
    port = ntohs(addr.sin_port);
  }
  ~PortHog() {
    if (fd >= 0) ::close(fd);
  }
};

class ServeCliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    prefix_ = new std::string(::testing::TempDir() + "/serve_cli_syn");
    ASSERT_EQ(run({"simulate", "--dataset", "SYN", "--scale", "0.0001",
                   "--seed", "3", "--out", *prefix_}),
              0);
    ivc_ = new std::string(*prefix_ + "_J1.ivc");
    ASSERT_EQ(run({"pack", "--trace", *prefix_ + "_J1.ivt", "--out", *ivc_,
                   "--chunk-rows", "1024"}),
              0);
  }
  static void TearDownTestSuite() {
    delete prefix_;
    prefix_ = nullptr;
    delete ivc_;
    ivc_ = nullptr;
  }
  static std::string catalog_path() { return *prefix_ + ".ivsdb"; }
  static std::string* prefix_;
  static std::string* ivc_;
};

std::string* ServeCliTest::prefix_ = nullptr;
std::string* ServeCliTest::ivc_ = nullptr;

// The exit-code contract of the usage text: a port that cannot be bound
// exits 5, not 1, so supervisors can tell "address in use" from "crash".
TEST_F(ServeCliTest, BindFailureExitsFive) {
  const PortHog hog;
  EXPECT_EQ(run({"serve", "--catalog", catalog_path(), "--traces", *ivc_,
                 "--port", std::to_string(hog.port)}),
            5);
}

TEST_F(ServeCliTest, ServeRequiresTraces) {
  EXPECT_EQ(run({"serve", "--catalog", catalog_path()}), 2);
}

TEST_F(ServeCliTest, QueryRequiresPort) {
  EXPECT_EQ(run({"query", "--op", "ping"}), 2);
}

TEST_F(ServeCliTest, QueryAgainstClosedPortIsFailure) {
  // Grab an ephemeral port, release it, then query it: the connection is
  // refused and the client reports a plain (exit 1) I/O failure.
  std::uint16_t port = 0;
  {
    const PortHog hog;
    port = hog.port;
  }
  EXPECT_EQ(run({"query", "--port", std::to_string(port), "--op", "ping"}),
            1);
}

TEST(ServeUsageTest, UsageMentionsServeAndExitFive) {
  const std::string text = usage();
  EXPECT_NE(text.find("serve"), std::string::npos);
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("trace-merge"), std::string::npos);
  EXPECT_NE(text.find("top"), std::string::npos);
  EXPECT_NE(text.find("5  server bind/"), std::string::npos);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// In-process daemon over the fixture's packed trace, for CLI commands
/// that need a live port.
std::unique_ptr<serve::Server> start_fixture_server(
    const std::string& catalog_path, const std::string& ivc) {
  auto catalog = std::make_unique<serve::TraceCatalog>(
      signaldb::load_catalog(catalog_path));
  catalog->add_trace("syn", ivc);
  auto server = std::make_unique<serve::Server>(std::move(catalog),
                                                serve::ServerConfig{});
  server->start();
  return server;
}

TEST_F(ServeCliTest, QueryWritesClientTraceFile) {
  auto server = start_fixture_server(catalog_path(), *ivc_);
  const std::string trace_path =
      ::testing::TempDir() + "/serve_cli_client_trace.json";
  std::remove(trace_path.c_str());
  EXPECT_EQ(run({"query", "--port", std::to_string(server->port()), "--op",
                 "ping", "--trace-out", trace_path}),
            0);
  const serve::json::Value doc = serve::json::parse(read_file(trace_path));
  const serve::json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
#if IVT_OBS_ENABLED
  bool found = false;
  for (const serve::json::Value& e : events->array()) {
    if (e.get_string("name", "") == "serve.client.request") found = true;
  }
  EXPECT_TRUE(found);
#endif
}

TEST_F(ServeCliTest, TopRendersOneFrameAgainstLiveServer) {
  auto server = start_fixture_server(catalog_path(), *ivc_);
  EXPECT_EQ(run({"top", "--port", std::to_string(server->port()),
                 "--iterations", "1", "--no-clear"}),
            0);
}

TEST(TopCliTest, RequiresPortAndFailsOnClosedPort) {
  EXPECT_EQ(run({"top"}), 2);
  std::uint16_t port = 0;
  {
    const PortHog hog;
    port = hog.port;
  }
  EXPECT_EQ(run({"top", "--port", std::to_string(port), "--iterations", "1",
                 "--no-clear"}),
            1);
}

TEST(TraceMergeCliTest, MergesClientAndServerTraces) {
  const std::string dir = ::testing::TempDir();
  const std::string client_path = dir + "/merge_cli_query.json";
  const std::string server_path = dir + "/merge_cli_daemon.json";
  const std::string out_path = dir + "/merge_cli_merged.json";
  std::ofstream(client_path) << R"({"traceEvents": [
    {"name": "serve.client.request", "ph": "X", "pid": 1, "tid": 1,
     "ts": 0.0, "dur": 5.0, "cat": "ivt",
     "args": {"trace_id": "00000000000000ab"}}], "displayTimeUnit": "ms"})";
  std::ofstream(server_path) << R"({"traceEvents": [
    {"name": "serve.req.ping", "ph": "X", "pid": 2, "tid": 9,
     "ts": 1.0, "dur": 2.0, "cat": "ivt",
     "args": {"trace_id": "00000000000000ab"}}], "displayTimeUnit": "ms"})";
  ASSERT_EQ(run({"trace-merge", client_path, server_path, "--out", out_path}),
            0);
  const serve::json::Value doc = serve::json::parse(read_file(out_path));
  const serve::json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // 2 spans + 2 process_name metadata rows, both spans sharing the id.
  EXPECT_EQ(events->array().size(), 4u);
  std::size_t tagged = 0;
  for (const serve::json::Value& e : events->array()) {
    const serve::json::Value* args = e.find("args");
    if (args != nullptr &&
        args->get_string("trace_id", "") == "00000000000000ab") {
      ++tagged;
    }
  }
  EXPECT_EQ(tagged, 2u);
}

TEST(TraceMergeCliTest, ValidatesArguments) {
  EXPECT_EQ(run({"trace-merge"}), 2);  // no --out, no inputs
  const std::string out = ::testing::TempDir() + "/merge_cli_noinputs.json";
  EXPECT_EQ(run({"trace-merge", "--out", out}), 2);  // no inputs
  EXPECT_EQ(run({"trace-merge", "/nonexistent/trace.json", "--out", out}),
            1);  // unreadable input is an I/O failure, not usage
}

}  // namespace
}  // namespace ivt::cli
