// CLI surface of the serving subsystem: `ivt serve` exit codes (5 is
// pinned for bind/listen failure) and `ivt query` argument validation.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "cli/commands.hpp"

namespace ivt::cli {
namespace {

int run(std::initializer_list<std::string> argv_list) {
  std::vector<std::string> storage{"ivt"};
  storage.insert(storage.end(), argv_list.begin(), argv_list.end());
  std::vector<const char*> argv;
  argv.reserve(storage.size());
  for (const std::string& s : storage) argv.push_back(s.c_str());
  return run_cli(static_cast<int>(argv.size()), argv.data());
}

/// Occupies an ephemeral 127.0.0.1 port for the lifetime of the object.
struct PortHog {
  int fd = -1;
  std::uint16_t port = 0;
  PortHog() {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(fd, 1), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len),
              0);
    port = ntohs(addr.sin_port);
  }
  ~PortHog() {
    if (fd >= 0) ::close(fd);
  }
};

class ServeCliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    prefix_ = new std::string(::testing::TempDir() + "/serve_cli_syn");
    ASSERT_EQ(run({"simulate", "--dataset", "SYN", "--scale", "0.0001",
                   "--seed", "3", "--out", *prefix_}),
              0);
    ivc_ = new std::string(*prefix_ + "_J1.ivc");
    ASSERT_EQ(run({"pack", "--trace", *prefix_ + "_J1.ivt", "--out", *ivc_,
                   "--chunk-rows", "1024"}),
              0);
  }
  static void TearDownTestSuite() {
    delete prefix_;
    prefix_ = nullptr;
    delete ivc_;
    ivc_ = nullptr;
  }
  static std::string catalog_path() { return *prefix_ + ".ivsdb"; }
  static std::string* prefix_;
  static std::string* ivc_;
};

std::string* ServeCliTest::prefix_ = nullptr;
std::string* ServeCliTest::ivc_ = nullptr;

// The exit-code contract of the usage text: a port that cannot be bound
// exits 5, not 1, so supervisors can tell "address in use" from "crash".
TEST_F(ServeCliTest, BindFailureExitsFive) {
  const PortHog hog;
  EXPECT_EQ(run({"serve", "--catalog", catalog_path(), "--traces", *ivc_,
                 "--port", std::to_string(hog.port)}),
            5);
}

TEST_F(ServeCliTest, ServeRequiresTraces) {
  EXPECT_EQ(run({"serve", "--catalog", catalog_path()}), 2);
}

TEST_F(ServeCliTest, QueryRequiresPort) {
  EXPECT_EQ(run({"query", "--op", "ping"}), 2);
}

TEST_F(ServeCliTest, QueryAgainstClosedPortIsFailure) {
  // Grab an ephemeral port, release it, then query it: the connection is
  // refused and the client reports a plain (exit 1) I/O failure.
  std::uint16_t port = 0;
  {
    const PortHog hog;
    port = hog.port;
  }
  EXPECT_EQ(run({"query", "--port", std::to_string(port), "--op", "ping"}),
            1);
}

TEST(ServeUsageTest, UsageMentionsServeAndExitFive) {
  const std::string text = usage();
  EXPECT_NE(text.find("serve"), std::string::npos);
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("5  server bind/"), std::string::npos);
}

}  // namespace
}  // namespace ivt::cli
