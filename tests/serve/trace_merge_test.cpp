// `ivt trace-merge` core: joining per-process Chrome traces into one
// timeline document. Inputs are hand-written traces so the tests pin the
// merge semantics (pid assignment, process_name metadata, field
// preservation) independently of the span exporter.
#include "serve/trace_merge.hpp"

#include <gtest/gtest.h>

#include <string>

#include "errors/error.hpp"
#include "serve/json.hpp"

namespace ivt::serve {
namespace {

const json::Value* find_event(const json::Value& events,
                              const std::string& name) {
  for (const json::Value& e : events.array()) {
    if (e.get_string("name", "") == name) return &e;
  }
  return nullptr;
}

TEST(TraceMergeTest, AssignsOneProcessPerInput) {
  const std::string client = R"({"traceEvents": [
    {"name": "serve.client.request", "ph": "X", "pid": 77, "tid": 1,
     "ts": 10.5, "dur": 1000.0, "cat": "ivt",
     "args": {"trace_id": "00000000deadbeef"}}
  ], "displayTimeUnit": "ms"})";
  const std::string server = R"({"traceEvents": [
    {"name": "serve.req.state", "ph": "X", "pid": 88, "tid": 2,
     "ts": 400.0, "dur": 200.0, "cat": "ivt",
     "args": {"trace_id": "00000000deadbeef", "rows": 9}},
    {"name": "serve.scan", "ph": "X", "pid": 88, "tid": 2,
     "ts": 420.0, "dur": 50.0, "cat": "ivt", "args": {}}
  ], "displayTimeUnit": "ms"})";

  const std::string merged = merge_chrome_traces(
      {{"query", client}, {"daemon", server}});
  const json::Value doc = json::parse(merged);
  EXPECT_EQ(doc.get_string("displayTimeUnit", ""), "ms");
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // 3 original events + 2 process_name metadata events.
  ASSERT_EQ(events->array().size(), 5u);

  // Each input owns one pid (its index), overriding whatever pid the
  // original export used; the metadata event names the process.
  std::size_t metas = 0;
  for (const json::Value& e : events->array()) {
    if (e.get_string("ph", "") != "M") continue;
    ++metas;
    EXPECT_EQ(e.get_string("name", ""), "process_name");
    const std::int64_t pid = e.get_int("pid", -1);
    ASSERT_TRUE(pid == 0 || pid == 1);
    const json::Value* args = e.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->get_string("name", ""), pid == 0 ? "query" : "daemon");
  }
  EXPECT_EQ(metas, 2u);

  const json::Value* client_span = find_event(*events, "serve.client.request");
  ASSERT_NE(client_span, nullptr);
  EXPECT_EQ(client_span->get_int("pid", -1), 0);
  const json::Value* server_span = find_event(*events, "serve.req.state");
  ASSERT_NE(server_span, nullptr);
  EXPECT_EQ(server_span->get_int("pid", -1), 1);

  // Non-pid fields survive verbatim: timestamps are not rebased (the
  // shared trace_id, not the clock, aligns the processes) and args pass
  // through.
  EXPECT_DOUBLE_EQ(server_span->get_double("ts", 0.0), 400.0);
  EXPECT_EQ(server_span->find("args")->get_string("trace_id", ""),
            "00000000deadbeef");
  EXPECT_EQ(server_span->find("args")->get_int("rows", 0), 9);
  EXPECT_EQ(client_span->find("args")->get_string("trace_id", ""),
            "00000000deadbeef");
}

TEST(TraceMergeTest, SingleAndEmptyEventInputs) {
  const std::string empty = R"({"traceEvents": [], "displayTimeUnit": "ms"})";
  const std::string merged = merge_chrome_traces({{"only", empty}});
  const json::Value doc = json::parse(merged);
  // Just the process_name metadata row.
  ASSERT_EQ(doc.find("traceEvents")->array().size(), 1u);
  EXPECT_EQ(doc.find("traceEvents")->array()[0].get_string("ph", ""), "M");
}

TEST(TraceMergeTest, RejectsInputsWithoutEventArray) {
  try {
    (void)merge_chrome_traces({{"bad", R"({"displayTimeUnit": "ms"})"}});
    FAIL() << "expected errors::Error";
  } catch (const errors::Error& e) {
    EXPECT_EQ(e.category(), errors::Category::Decode);
  }
  EXPECT_THROW((void)merge_chrome_traces({{"bad", "not json"}}),
               errors::Error);
}

}  // namespace
}  // namespace ivt::serve
