// ShardedLruCache: eviction order, byte-capacity accounting, replacement,
// oversized values, stats plumbing, and a concurrent hammer that the TSan
// CI lane runs to vouch for the locking.
#include "serve/lru_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace ivt::serve {
namespace {

/// Degenerate hash: every key lands on shard 0, so the whole capacity
/// budget and the LRU order are observable through one shard.
struct OneShardHash {
  std::size_t operator()(const std::string&) const { return 0; }
};

using OneShardCache = ShardedLruCache<std::string, int, OneShardHash>;

std::shared_ptr<const int> val(int v) {
  return std::make_shared<const int>(v);
}

TEST(LruCacheTest, MissThenHit) {
  OneShardCache cache("test.cache_miss_hit", 8 * 100);
  EXPECT_EQ(cache.get("a"), nullptr);
  cache.put("a", val(1), 10);
  const auto hit = cache.get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 1);
  const LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.bytes, 10u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  // Shard budget = 8 * 100 / 8 = 100 bytes; three 40-byte entries
  // overflow it by 20, so exactly the least recently used one must go.
  OneShardCache cache("test.cache_lru_order", 8 * 100);
  cache.put("a", val(1), 40);
  cache.put("b", val(2), 40);
  // Touch "a": "b" becomes the LRU entry.
  EXPECT_NE(cache.get("a"), nullptr);
  cache.put("c", val(3), 40);
  EXPECT_NE(cache.get("a"), nullptr);
  EXPECT_EQ(cache.get("b"), nullptr) << "LRU entry should have been evicted";
  EXPECT_NE(cache.get("c"), nullptr);
  const LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.bytes, 80u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(LruCacheTest, ByteAccountingAcrossReplace) {
  OneShardCache cache("test.cache_replace", 8 * 100);
  cache.put("a", val(1), 30);
  cache.put("a", val(2), 50);  // replace: 30 goes away, 50 comes in
  const LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.bytes, 50u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  const auto hit = cache.get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 2);
}

TEST(LruCacheTest, OversizedValueIsNotRetained) {
  OneShardCache cache("test.cache_oversized", 8 * 100);
  cache.put("small", val(1), 10);
  cache.put("huge", val(2), 1000);  // > shard budget: evicted immediately
  EXPECT_EQ(cache.get("huge"), nullptr);
  const LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.bytes, 0u) << "oversized insert must not leak bytes";
  EXPECT_EQ(stats.entries, 0u);
}

TEST(LruCacheTest, SingleShardAdmitsEntryUpToFullBudget) {
  // The default 8-way sharding caps the largest cacheable entry at
  // capacity/8; a single-shard instance (the serve state cache) must
  // retain an entry that fills the whole budget. Regression: large
  // state tables were evicted on insert and never answered "cached".
  ShardedLruCache<std::string, int> sharded("test.cache_large8", 800);
  sharded.put("big", val(1), 500);  // > 800/8 per-shard budget
  EXPECT_EQ(sharded.get("big"), nullptr);

  ShardedLruCache<std::string, int> single("test.cache_large1", 800, 1);
  single.put("big", val(1), 500);
  EXPECT_NE(single.get("big"), nullptr);
  EXPECT_EQ(single.stats().bytes, 500u);
  EXPECT_EQ(single.capacity_bytes(), 800u);
}

TEST(LruCacheTest, EvictedValueSurvivesForHolders) {
  OneShardCache cache("test.cache_holders", 8 * 100);
  cache.put("a", val(7), 60);
  const auto held = cache.get("a");
  cache.put("b", val(8), 60);  // evicts "a"
  EXPECT_EQ(cache.get("a"), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, 7) << "shared_ptr keeps evicted values alive";
}

TEST(LruCacheTest, ClearEmptiesEveryShard) {
  ShardedLruCache<std::string, int> cache("test.cache_clear", 8 * 1024);
  for (int i = 0; i < 64; ++i) {
    cache.put("key" + std::to_string(i), val(i), 8);
  }
  EXPECT_GT(cache.stats().entries, 0u);
  cache.clear();
  const LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

// Concurrent hammer: readers and writers over a shared key space. The
// assertions are weak (values are self-describing); the point is that the
// TSan lane runs this and any locking mistake in the shard structure
// becomes a reported race.
TEST(LruCacheTest, ConcurrentHammer) {
  ShardedLruCache<std::string, int> cache("test.cache_hammer", 8 * 4096);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  constexpr int kKeySpace = 64;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int k = (t * 31 + i) % kKeySpace;
        const std::string key = "key" + std::to_string(k);
        if (i % 3 == 0) {
          cache.put(key, val(k), 64);
        } else if (const auto hit = cache.get(key)) {
          EXPECT_EQ(*hit, k) << "value must match its key";
        }
        if (i % 512 == 0 && t == 0) cache.clear();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const LruCacheStats stats = cache.stats();
  const std::uint64_t gets_per_thread =
      kOpsPerThread - (kOpsPerThread + 2) / 3;  // ops with i % 3 != 0
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * gets_per_thread);
}

}  // namespace
}  // namespace ivt::serve
