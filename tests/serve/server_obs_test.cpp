// End-to-end observability of the ivt-serve daemon: trace-context
// propagation from client request to server spans / response / access
// record, the JSON-lines event log, rolling-window stats decay and the
// Prometheus metrics op.
//
// Every server in this binary uses stats_window_s = 1: a 1 s window
// lets the decay test sleep seconds, not minutes — and the *registry
// mirrors* ("serve.requests_window" etc., behind the metrics op) fix
// their width at first registration, so the whole process must agree
// for the window="1s" Prometheus label to hold.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "colstore/columnar_writer.hpp"
#include "obs/obs.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "simnet/datasets.hpp"

namespace ivt::serve {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// The event-log record (if any) with the given event name and trace id.
std::unique_ptr<json::Value> find_record(const std::vector<std::string>& lines,
                                         const std::string& event,
                                         const std::string& trace_id) {
  for (const std::string& line : lines) {
    json::Value record = json::parse(line);
    if (record.get_string("event", "") == event &&
        record.get_string("trace_id", "") == trace_id) {
      return std::make_unique<json::Value>(std::move(record));
    }
  }
  return nullptr;
}

class ServerObsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    simnet::DatasetConfig config;
    config.scale = 0.0005;
    config.seed = 23;
    dataset_ = new simnet::Dataset(simnet::make_syn_dataset(config));
    ivc_path_ = new std::string(::testing::TempDir() + "/serve_obs_syn.ivc");
    colstore::save_trace_columnar(dataset_->trace, *ivc_path_,
                                  {.chunk_rows = 1024});
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
    delete ivc_path_;
    ivc_path_ = nullptr;
  }

  static std::unique_ptr<Server> make_server(ServerConfig config = {}) {
    config.query.stats_window_s = 1;  // see file comment
    auto catalog = std::make_unique<TraceCatalog>(dataset_->catalog);
    catalog->add_trace("syn", *ivc_path_);
    auto server = std::make_unique<Server>(std::move(catalog), config);
    server->start();
    return server;
  }

  static simnet::Dataset* dataset_;
  static std::string* ivc_path_;
};

simnet::Dataset* ServerObsTest::dataset_ = nullptr;
std::string* ServerObsTest::ivc_path_ = nullptr;

TEST_F(ServerObsTest, TraceIdPropagatesToResponseAndEventLog) {
  const std::string log_path =
      ::testing::TempDir() + "/serve_obs_access.jsonl";
  std::remove(log_path.c_str());
  ServerConfig config;
  config.event_log_path = log_path;
  config.slow_query_ms = 1e-6;  // everything is "slow": exercise the warn
  auto server = make_server(config);

  const obs::TraceContext ctx = obs::TraceContext::mint();
  const std::string hex = obs::trace_id_hex(ctx.trace_id);
  json::Object request;
  request.add("op", "state").add("trace", "syn");
  add_trace_context(request, ctx);

  Client client(server->host(), server->port());
  const ClientResponse response = client.request(request.str());
  ASSERT_TRUE(response.ok()) << response.error_message();
  // The response echoes the propagated id.
  EXPECT_EQ(response.body.get_string("trace_id", ""), hex);

  server->stop();  // flushes the event log
  const std::vector<std::string> lines = read_lines(log_path);
  ASSERT_FALSE(lines.empty());
  for (const std::string& line : lines) {
    (void)json::parse(line);  // every line is a standalone JSON object
  }
  const auto access = find_record(lines, "serve.query", hex);
  ASSERT_NE(access, nullptr) << "no access record carries the trace id";
  EXPECT_EQ(access->get_string("level", ""), "info");
  EXPECT_EQ(access->get_string("op", ""), "state");
  EXPECT_TRUE(access->get_bool("ok", false));
  EXPECT_GE(access->get_double("elapsed_ms", -1.0), 0.0);
  EXPECT_GT(access->get_int("bytes_in", 0), 0);
  EXPECT_GT(access->get_int("bytes_out", 0), 0);
  EXPECT_GT(access->get_int("rows", 0), 0);
  EXPECT_GT(access->get_int("chunks_total", 0), 0);

  const auto slow = find_record(lines, "serve.slow_query", hex);
  ASSERT_NE(slow, nullptr);
  EXPECT_EQ(slow->get_string("level", ""), "warn");
  EXPECT_GE(slow->get_double("elapsed_ms", -1.0),
            slow->get_double("threshold_ms", 1e9));
}

TEST_F(ServerObsTest, ServerMintsWhenRequestCarriesNoOrBadContext) {
  auto server = make_server();
  Client client(server->host(), server->port());

  const ClientResponse bare = client.request(R"({"op":"ping"})");
  ASSERT_TRUE(bare.ok());
  const std::string minted = bare.body.get_string("trace_id", "");
  ASSERT_FALSE(minted.empty());
  EXPECT_NE(obs::parse_trace_id_hex(minted), 0u);

  const ClientResponse bad = client.request(
      R"({"op":"ping","trace_ctx":{"trace_id":"not-hex"}})");
  ASSERT_TRUE(bad.ok());
  const std::string re_minted = bad.body.get_string("trace_id", "");
  EXPECT_NE(obs::parse_trace_id_hex(re_minted), 0u);
  EXPECT_NE(re_minted, minted);
}

TEST_F(ServerObsTest, ErrorResponsesEchoTheTraceId) {
  auto server = make_server();
  const obs::TraceContext ctx = obs::TraceContext::mint();
  json::Object request;
  request.add("op", "state").add("trace", "no_such_trace");
  add_trace_context(request, ctx);
  Client client(server->host(), server->port());
  const ClientResponse response = client.request(request.str());
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.body.get_string("trace_id", ""),
            obs::trace_id_hex(ctx.trace_id));
}

TEST_F(ServerObsTest, StatsReportWindowedLatencyThatDecays) {
  auto server = make_server();
  Client client(server->host(), server->port());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.request(R"({"op":"ping"})").ok());
  }

  const ClientResponse hot = client.request(R"({"op":"stats"})");
  ASSERT_TRUE(hot.ok());
  const json::Value* windowed = hot.body.find("latency_windowed");
  ASSERT_NE(windowed, nullptr);
  EXPECT_EQ(windowed->get_int("window_seconds", 0), 1);
  EXPECT_GT(windowed->get_int("count", 0), 0);
  EXPECT_GE(windowed->get_double("p99_ms", -1.0),
            windowed->get_double("p50_ms", -1.0));
  EXPECT_GT(hot.body.get_int("requests_window", 0), 0);
  EXPECT_GT(hot.body.get_double("qps", 0.0), 0.0);
  EXPECT_EQ(hot.body.get_int("spans_dropped", -1), 0);
  EXPECT_EQ(hot.body.get_int("events_dropped", -1), 0);

  // One window (1 s) after the load stops, the windowed view is empty —
  // while the lifetime histogram of course still remembers everything.
  std::this_thread::sleep_for(std::chrono::milliseconds(2500));
  const ClientResponse cold = client.request(R"({"op":"stats"})");
  ASSERT_TRUE(cold.ok());
  const json::Value* decayed = cold.body.find("latency_windowed");
  ASSERT_NE(decayed, nullptr);
  EXPECT_EQ(decayed->get_int("count", -1), 0);
  EXPECT_EQ(decayed->get_double("p99_ms", -1.0), 0.0);
  EXPECT_EQ(cold.body.get_int("requests_window", -1), 0);
  const json::Value* lifetime = cold.body.find("latency");
  ASSERT_NE(lifetime, nullptr);
  EXPECT_GT(lifetime->get_int("count", 0), 0);
}

#if IVT_OBS_ENABLED

TEST_F(ServerObsTest, ClientAndServerSpansShareThePropagatedTraceId) {
  auto server = make_server();
  obs::reset_spans();

  const obs::TraceContext ctx = obs::TraceContext::mint();
  const std::string hex = obs::trace_id_hex(ctx.trace_id);
  json::Object request;
  request.add("op", "state").add("trace", "syn");
  add_trace_context(request, ctx);
  {
    // What `ivt query --trace-out` does around its socket round-trip.
    const obs::TraceContextScope scope(ctx);
    OBS_SPAN("serve.client.request");
    Client client(server->host(), server->port());
    const ClientResponse response = client.request(request.str());
    ASSERT_TRUE(response.ok()) << response.error_message();
  }
  server->stop();  // joins workers: all server spans are retired

  // Server and client run in one process here, so one export holds both
  // sides; the propagated id must tag the client span and the server's
  // per-request span even though they ran on different threads.
  const json::Value doc = json::parse(obs::chrome_trace_json());
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool client_tagged = false;
  bool server_tagged = false;
  for (const json::Value& e : events->array()) {
    const json::Value* args = e.find("args");
    if (args == nullptr || args->get_string("trace_id", "") != hex) continue;
    if (e.get_string("name", "") == "serve.client.request") {
      client_tagged = true;
    }
    if (e.get_string("name", "") == "serve.req.state") server_tagged = true;
  }
  EXPECT_TRUE(client_tagged);
  EXPECT_TRUE(server_tagged);
  EXPECT_EQ(obs::dropped_span_count(), 0u);
}

TEST_F(ServerObsTest, MetricsOpExposesPrometheusText) {
  auto server = make_server();
  Client client(server->host(), server->port());
  ASSERT_TRUE(client.request(R"({"op":"ping"})").ok());  // traffic first

  const ClientResponse response = client.request(R"({"op":"metrics"})");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.body.get_string("payload_format", ""), "prometheus");
  const std::string& text = response.payload;
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  EXPECT_NE(text.find("# TYPE ivt_serve_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("ivt_serve_requests_total "), std::string::npos);
  // Window metrics carry the window as a label (a decaying count is not
  // a monotonic counter, so they expose as gauges).
  EXPECT_NE(text.find("ivt_serve_requests_window{window=\"1s\"}"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  // Every line is a comment or `name[{labels}] value`.
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.compare(0, 4, "ivt_"), 0) << line;
    const std::string value = line.substr(space + 1);
    EXPECT_NO_THROW((void)std::stod(value)) << line;
  }
}

#endif  // IVT_OBS_ENABLED

}  // namespace
}  // namespace ivt::serve
