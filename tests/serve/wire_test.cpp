// Wire framing (length-prefixed JSON + payload over a socketpair) and the
// minimal JSON layer underneath it.
#include "serve/wire.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>

#include "errors/error.hpp"
#include "serve/json.hpp"

namespace ivt::serve {
namespace {

/// RAII socketpair; frames written on one end are read from the other.
struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  }
  ~SocketPair() {
    for (const int fd : fds) {
      if (fd >= 0) ::close(fd);
    }
  }
  void close_writer() {
    ::close(fds[0]);
    fds[0] = -1;
  }
};

TEST(WireTest, FrameRoundTrip) {
  SocketPair pair;
  const Frame sent{R"({"op":"ping"})", std::string("payload\0bytes", 13)};
  write_frame(pair.fds[0], sent);
  Frame received;
  ASSERT_TRUE(read_frame(pair.fds[1], received));
  EXPECT_EQ(received.json, sent.json);
  EXPECT_EQ(received.payload, sent.payload);
}

TEST(WireTest, EmptyPayloadRoundTrip) {
  SocketPair pair;
  write_frame(pair.fds[0], Frame{"{}", {}});
  Frame received;
  ASSERT_TRUE(read_frame(pair.fds[1], received));
  EXPECT_EQ(received.json, "{}");
  EXPECT_TRUE(received.payload.empty());
}

TEST(WireTest, CleanEofReturnsFalse) {
  SocketPair pair;
  pair.close_writer();
  Frame received;
  EXPECT_FALSE(read_frame(pair.fds[1], received));
}

TEST(WireTest, TruncatedFrameThrowsIo) {
  SocketPair pair;
  // A valid header promising more bytes than ever arrive.
  const std::uint32_t magic = kFrameMagic;
  const std::uint32_t json_len = 100;
  const std::uint32_t payload_len = 0;
  ASSERT_EQ(::send(pair.fds[0], &magic, 4, 0), 4);
  ASSERT_EQ(::send(pair.fds[0], &json_len, 4, 0), 4);
  ASSERT_EQ(::send(pair.fds[0], &payload_len, 4, 0), 4);
  ASSERT_EQ(::send(pair.fds[0], "abc", 3, 0), 3);
  pair.close_writer();
  Frame received;
  try {
    read_frame(pair.fds[1], received);
    FAIL() << "expected errors::Error";
  } catch (const errors::Error& e) {
    EXPECT_EQ(e.category(), errors::Category::Io);
  }
}

TEST(WireTest, BadMagicThrowsFormat) {
  SocketPair pair;
  const char junk[12] = "XXXXYYYYZZZ";
  ASSERT_EQ(::send(pair.fds[0], junk, 12, 0), 12);
  Frame received;
  try {
    read_frame(pair.fds[1], received);
    FAIL() << "expected errors::Error";
  } catch (const errors::Error& e) {
    EXPECT_EQ(e.category(), errors::Category::Format);
  }
}

TEST(WireTest, OversizedJsonLengthThrowsFormat) {
  SocketPair pair;
  const std::uint32_t magic = kFrameMagic;
  const std::uint32_t json_len = kMaxJsonBytes + 1;
  const std::uint32_t payload_len = 0;
  ASSERT_EQ(::send(pair.fds[0], &magic, 4, 0), 4);
  ASSERT_EQ(::send(pair.fds[0], &json_len, 4, 0), 4);
  ASSERT_EQ(::send(pair.fds[0], &payload_len, 4, 0), 4);
  Frame received;
  try {
    read_frame(pair.fds[1], received);
    FAIL() << "expected errors::Error";
  } catch (const errors::Error& e) {
    EXPECT_EQ(e.category(), errors::Category::Format);
  }
}

TEST(WireTest, LargePayloadRoundTrip) {
  SocketPair pair;
  std::string payload(1 << 20, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 31);
  }
  // A megabyte exceeds the socket buffer, so writer and reader must run
  // concurrently.
  std::thread writer(
      [&] { write_frame(pair.fds[0], Frame{R"({"big":true})", payload}); });
  Frame received;
  ASSERT_TRUE(read_frame(pair.fds[1], received));
  writer.join();
  EXPECT_EQ(received.payload, payload);
}

// ---------------------------------------------------------------- JSON --

TEST(JsonTest, ParsesScalarsExactly) {
  const json::Value v = json::parse(
      R"({"i": 9007199254740993, "d": 1.5, "s": "x", "b": true, "n": null})");
  // 2^53 + 1 is not representable in a double; the parser must keep it.
  EXPECT_EQ(v.get_int("i", 0), 9007199254740993LL);
  EXPECT_DOUBLE_EQ(v.get_double("d", 0.0), 1.5);
  EXPECT_EQ(v.get_string("s", ""), "x");
  EXPECT_TRUE(v.get_bool("b", false));
  ASSERT_NE(v.find("n"), nullptr);
  EXPECT_TRUE(v.find("n")->is_null());
}

TEST(JsonTest, ParsesNestedArraysAndObjects) {
  const json::Value v =
      json::parse(R"({"signals": ["a", "b"], "nested": {"k": [1, 2, 3]}})");
  EXPECT_EQ(v.get_string_list("signals"),
            (std::vector<std::string>{"a", "b"}));
  const json::Value* nested = v.find("nested");
  ASSERT_NE(nested, nullptr);
  const json::Value* k = nested->find("k");
  ASSERT_NE(k, nullptr);
  ASSERT_TRUE(k->is_array());
  EXPECT_EQ(k->array().size(), 3u);
  EXPECT_EQ(k->array()[2].integer(), 3);
}

TEST(JsonTest, StringEscapes) {
  const json::Value v =
      json::parse("{\"s\": \"a\\\"b\\\\c\\n\\t\\u0041\"}");
  EXPECT_EQ(v.get_string("s", ""), "a\"b\\c\n\tA");
}

TEST(JsonTest, MalformedInputThrowsDecode) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\": }", "tru", "{\"a\":1} extra"}) {
    try {
      (void)json::parse(bad);
      FAIL() << "expected errors::Error for: " << bad;
    } catch (const errors::Error& e) {
      EXPECT_EQ(e.category(), errors::Category::Decode) << bad;
    }
  }
}

TEST(JsonTest, PresentWrongTypeThrowsDecode) {
  const json::Value v = json::parse(R"({"n": "not a number"})");
  EXPECT_EQ(v.get_int("absent", 7), 7);  // absent -> fallback
  try {
    (void)v.get_int("n", 0);  // present but wrong type -> typed error
    FAIL() << "expected errors::Error";
  } catch (const errors::Error& e) {
    EXPECT_EQ(e.category(), errors::Category::Decode);
  }
}

TEST(JsonTest, ObjectBuilderRendersParseableJson) {
  json::Object nested;
  nested.add("k", std::int64_t{42});
  json::Object obj;
  obj.add("s", "quote\"and\\slash")
      .add("i", std::int64_t{-7})
      .add("b", false)
      .raw("nested", nested.str())
      .raw("arr", json::render_array({"x", "y"}));
  const json::Value v = json::parse(obj.str());
  EXPECT_EQ(v.get_string("s", ""), "quote\"and\\slash");
  EXPECT_EQ(v.get_int("i", 0), -7);
  EXPECT_FALSE(v.get_bool("b", true));
  ASSERT_NE(v.find("nested"), nullptr);
  EXPECT_EQ(v.find("nested")->get_int("k", 0), 42);
  EXPECT_EQ(v.get_string_list("arr"), (std::vector<std::string>{"x", "y"}));
}

}  // namespace
}  // namespace ivt::serve
