// End-to-end tests of the ivt-serve daemon over real sockets: batch
// equivalence (a served query must return byte-identical results to the
// batch pipeline), time slicing, cache warmth, admission control under
// synthetic overload, mid-request fault injection and shutdown.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "colstore/columnar_reader.hpp"
#include "colstore/columnar_writer.hpp"
#include "core/interpret.hpp"
#include "core/pipeline.hpp"
#include "core/urel.hpp"
#include "dataflow/csv.hpp"
#include "dataflow/engine.hpp"
#include "faultfx/faultfx.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "simnet/datasets.hpp"

namespace ivt::serve {
namespace {

std::string render_csv(const dataflow::Table& table) {
  std::ostringstream out;
  dataflow::write_csv(table, out);
  return std::move(out).str();
}

dataflow::Engine inline_engine() {
  dataflow::EngineConfig config;
  config.workers = 0;
  config.inline_execution = true;
  return dataflow::Engine(config);
}

// Reads the engine's own accounting through the stats op, so the
// warm-cache invariants below hold with IVT_OBS=OFF too.
std::uint64_t chunks_decoded_now(Client& client) {
  const ClientResponse stats = client.request(R"({"op":"stats"})");
  EXPECT_TRUE(stats.ok());
  return static_cast<std::uint64_t>(stats.body.get_int("chunks_decoded", 0));
}

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    simnet::DatasetConfig config;
    config.scale = 0.0005;
    config.seed = 11;
    dataset_ = new simnet::Dataset(simnet::make_syn_dataset(config));
    ivc_path_ = new std::string(::testing::TempDir() + "/serve_syn.ivc");
    colstore::save_trace_columnar(dataset_->trace, *ivc_path_,
                                  {.chunk_rows = 1024});
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
    delete ivc_path_;
    ivc_path_ = nullptr;
  }

  void TearDown() override { faultfx::disarm_all(); }

  /// Fresh server (fresh caches) on an ephemeral port.
  static std::unique_ptr<Server> make_server(ServerConfig config = {}) {
    auto catalog = std::make_unique<TraceCatalog>(dataset_->catalog);
    catalog->add_trace("syn", *ivc_path_);
    auto server = std::make_unique<Server>(std::move(catalog), config);
    server->start();
    return server;
  }

  static simnet::Dataset* dataset_;
  static std::string* ivc_path_;
};

simnet::Dataset* ServerTest::dataset_ = nullptr;
std::string* ServerTest::ivc_path_ = nullptr;

TEST_F(ServerTest, PingListAndStats) {
  const auto server = make_server();
  Client client(server->host(), server->port());

  const ClientResponse ping = client.request(R"({"op":"ping"})");
  EXPECT_TRUE(ping.ok());
  EXPECT_GT(ping.body.get_int("request_id", 0), 0);

  const ClientResponse list = client.request(R"({"op":"list"})");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.body.get_int("count", 0), 1);
  const json::Value* traces = list.body.find("traces");
  ASSERT_NE(traces, nullptr);
  ASSERT_TRUE(traces->is_array());
  EXPECT_EQ(traces->array()[0].get_string("name", ""), "syn");
  EXPECT_GT(traces->array()[0].get_int("rows", 0), 0);

  const ClientResponse stats = client.request(R"({"op":"stats"})");
  ASSERT_TRUE(stats.ok());
  ASSERT_NE(stats.body.find("chunk_cache"), nullptr);
  ASSERT_NE(stats.body.find("state_cache"), nullptr);
  ASSERT_NE(stats.body.find("latency"), nullptr);
}

TEST_F(ServerTest, StateMatchesBatchPipeline) {
  const auto server = make_server();
  Client client(server->host(), server->port());
  const ClientResponse served =
      client.request(R"({"op":"state","trace":"syn"})");
  ASSERT_TRUE(served.ok()) << served.error_message();
  EXPECT_GT(served.body.get_int("rows", 0), 0);

  // The batch path the CLI takes: columnar scan, then Algorithm 1 with
  // default parameters. The served result must be byte-identical.
  dataflow::Engine engine = inline_engine();
  const colstore::ColumnarReader reader(*ivc_path_);
  const dataflow::Table kb =
      reader.scan({}, engine, colstore::ScanOptions{});
  const core::Pipeline pipeline(dataset_->catalog, core::PipelineConfig{});
  const core::PipelineResult batch = pipeline.run(engine, kb);
  EXPECT_EQ(served.payload, render_csv(batch.state));
}

TEST_F(ServerTest, ExtractMatchesBatchInterpret) {
  const auto server = make_server();
  Client client(server->host(), server->port());
  const ClientResponse served =
      client.request(R"({"op":"extract","trace":"syn"})");
  ASSERT_TRUE(served.ok()) << served.error_message();

  dataflow::Engine engine = inline_engine();
  const dataflow::Table urel = core::make_full_urel_table(dataset_->catalog);
  const colstore::ColumnarReader reader(*ivc_path_);
  const dataflow::Table kb = reader.scan(core::urel_scan_predicate(urel),
                                         engine, colstore::ScanOptions{});
  core::InterpretOptions options;
  options.catalog = &dataset_->catalog;
  const dataflow::Table ks = core::interpret(engine, kb, urel, options);
  EXPECT_EQ(served.payload, render_csv(ks));
}

TEST_F(ServerTest, StateSliceAndProjection) {
  const auto server = make_server();
  Client client(server->host(), server->port());
  const ClientResponse full =
      client.request(R"({"op":"state","trace":"syn"})");
  ASSERT_TRUE(full.ok());
  const std::int64_t full_rows = full.body.get_int("rows", 0);
  ASSERT_GT(full_rows, 10);

  // Slice the middle of the journey and check every returned t.
  const std::int64_t lo = 10'000'000'000;
  const std::int64_t hi = 60'000'000'000;
  json::Object request;
  request.add("op", "state")
      .add("trace", "syn")
      .add("min_t_ns", lo)
      .add("max_t_ns", hi);
  const ClientResponse sliced = client.request(request.str());
  ASSERT_TRUE(sliced.ok()) << sliced.error_message();
  EXPECT_LT(sliced.body.get_int("rows", 0), full_rows);
  std::istringstream lines(sliced.payload);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));  // header
  EXPECT_EQ(line.substr(0, 2), "t,");
  std::int64_t rows = 0;
  while (std::getline(lines, line)) {
    const std::int64_t t = std::stoll(line.substr(0, line.find(',')));
    EXPECT_GE(t, lo);
    EXPECT_LE(t, hi);
    ++rows;
  }
  EXPECT_EQ(rows, sliced.body.get_int("rows", -1));

  // Signal projection narrows the columns to t + the requested signals.
  const ClientResponse projected = client.request(
      R"({"op":"state","trace":"syn","signals":["SYN_s0"]})");
  ASSERT_TRUE(projected.ok()) << projected.error_message();
  std::istringstream proj_lines(projected.payload);
  ASSERT_TRUE(std::getline(proj_lines, line));
  EXPECT_EQ(line, "t,SYN_s0");
}

TEST_F(ServerTest, WarmStateQueriesDecodeNoChunks) {
  const auto server = make_server();
  Client client(server->host(), server->port());
  const ClientResponse cold =
      client.request(R"({"op":"state","trace":"syn"})");
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.body.get_bool("cached", true));

  const std::uint64_t decoded_before = chunks_decoded_now(client);
  for (int i = 0; i < 3; ++i) {
    const ClientResponse warm =
        client.request(R"({"op":"state","trace":"syn"})");
    ASSERT_TRUE(warm.ok());
    EXPECT_TRUE(warm.body.get_bool("cached", false));
    EXPECT_EQ(warm.payload, cold.payload);
  }
  EXPECT_EQ(chunks_decoded_now(client), decoded_before)
      << "warm state queries must be served from the tier-2 cache";

  // mine reuses the same tier-2 entry (same key), still no decode.
  const ClientResponse mine =
      client.request(R"({"op":"mine","trace":"syn","top_k":3})");
  ASSERT_TRUE(mine.ok()) << mine.error_message();
  EXPECT_TRUE(mine.body.get_bool("cached", false));
  EXPECT_EQ(chunks_decoded_now(client), decoded_before);
}

TEST_F(ServerTest, ConcurrentClientsAgree) {
  const auto server = make_server();
  constexpr int kClients = 8;
  std::vector<std::string> payloads(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  std::atomic<int> failures{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      try {
        Client client(server->host(), server->port());
        // The documented client contract: back off and retry on a typed
        // retryable (Overloaded) response. On a small machine 8 clients
        // can exceed the default admission window.
        for (int attempt = 0; attempt < 50; ++attempt) {
          const ClientResponse response =
              client.request(R"({"op":"state","trace":"syn"})");
          if (response.ok()) {
            payloads[i] = response.payload;
            return;
          }
          if (!response.retryable()) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        failures.fetch_add(1);
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(payloads[i], payloads[0]) << "client " << i << " diverged";
  }
  EXPECT_FALSE(payloads[0].empty());
}

TEST_F(ServerTest, UnknownTraceAndOpAreSpecErrors) {
  const auto server = make_server();
  Client client(server->host(), server->port());
  const ClientResponse bad_trace =
      client.request(R"({"op":"state","trace":"nope"})");
  EXPECT_FALSE(bad_trace.ok());
  EXPECT_EQ(bad_trace.error_category(), "spec");
  EXPECT_FALSE(bad_trace.retryable());

  const ClientResponse bad_op = client.request(R"({"op":"nonsense"})");
  EXPECT_FALSE(bad_op.ok());
  EXPECT_EQ(bad_op.error_category(), "spec");

  // The connection survived both failures.
  EXPECT_TRUE(client.request(R"({"op":"ping"})").ok());
}

TEST_F(ServerTest, MalformedJsonIsDecodeErrorNotDrop) {
  const auto server = make_server();
  Client client(server->host(), server->port());
  const ClientResponse bad = client.request("{not json");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error_category(), "decode");
  EXPECT_TRUE(client.request(R"({"op":"ping"})").ok());
}

TEST_F(ServerTest, OverloadIsTypedAndRetryable) {
  if (!faultfx::enabled()) GTEST_SKIP() << "faultfx compiled out";
  ServerConfig config;
  config.workers = 1;
  config.max_in_flight = 1;
  const auto server = make_server(config);
  ASSERT_EQ(server->max_in_flight(), 1u);

  // Every cold chunk fetch stalls 200 ms, pinning request A in flight
  // long enough for request B to hit the admission gate.
  ASSERT_EQ(faultfx::arm("serve.cache:delay:1:delay_us=200000"), 1u);

  std::atomic<bool> slow_ok{false};
  std::thread slow([&] {
    Client client(server->host(), server->port());
    const ClientResponse response =
        client.request(R"({"op":"state","trace":"syn"})");
    slow_ok.store(response.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  Client probe(server->host(), server->port());
  const ClientResponse rejected = probe.request(R"({"op":"ping"})");
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error_category(), "overloaded");
  EXPECT_TRUE(rejected.retryable())
      << "Overloaded must be typed as transient so clients retry";

  slow.join();
  EXPECT_TRUE(slow_ok.load()) << "in-budget request must stay correct";
  faultfx::disarm_all();

  // The rejected client retries on the same connection and succeeds, and
  // the stats op accounts the rejection (functional in any build mode).
  EXPECT_TRUE(probe.request(R"({"op":"ping"})").ok());
  const ClientResponse stats = probe.request(R"({"op":"stats"})");
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.body.get_int("requests_overloaded", 0), 1);
}

TEST_F(ServerTest, MidRequestFaultYieldsTypedErrorNotDrop) {
  if (!faultfx::enabled()) GTEST_SKIP() << "faultfx compiled out";
  const auto server = make_server();
  Client client(server->host(), server->port());

  // serve.read models a fault between frame read and execution.
  ASSERT_EQ(faultfx::arm("serve.read:error:1"), 1u);
  const ClientResponse faulted = client.request(R"({"op":"ping"})");
  EXPECT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.error_category(), "decode");  // injected default
  faultfx::disarm_all();
  // Same connection, next request: healthy.
  EXPECT_TRUE(client.request(R"({"op":"ping"})").ok());

  // serve.cache models a failed backing-store read on a chunk miss.
  ASSERT_EQ(faultfx::arm("serve.cache:error:1"), 1u);
  const ClientResponse cache_fault =
      client.request(R"({"op":"preselect","trace":"syn"})");
  EXPECT_FALSE(cache_fault.ok());
  EXPECT_EQ(cache_fault.error_category(), "decode");
  faultfx::disarm_all();
  const ClientResponse recovered =
      client.request(R"({"op":"preselect","trace":"syn"})");
  EXPECT_TRUE(recovered.ok()) << recovered.error_message();
  EXPECT_GT(recovered.body.get_int("rows", 0), 0);
}

TEST_F(ServerTest, ShutdownOpStopsTheServer) {
  const auto server = make_server();
  {
    Client client(server->host(), server->port());
    const ClientResponse response =
        client.request(R"({"op":"shutdown"})");
    EXPECT_TRUE(response.ok());
  }
  server->wait();  // returns promptly because shutdown requested the stop
  server->stop();
  // A fresh connection attempt must now fail.
  EXPECT_THROW(Client(server->host(), server->port()),
               errors::Error);
}

}  // namespace
}  // namespace ivt::serve
