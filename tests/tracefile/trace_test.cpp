#include "tracefile/trace.hpp"

#include <gtest/gtest.h>

namespace ivt::tracefile {
namespace {

Trace sample_trace() {
  Trace trace;
  trace.vehicle = "V1";
  trace.journey = "J1";
  trace.start_unix_ns = 1234;
  for (int i = 0; i < 6; ++i) {
    TraceRecord rec;
    rec.t_ns = i * 1000;
    rec.bus = i % 2 == 0 ? "FC" : "KC";
    rec.message_id = 3 + i % 3;
    rec.protocol = protocol::Protocol::Can;
    rec.payload = {static_cast<std::uint8_t>(i), 0x01};
    trace.records.push_back(std::move(rec));
  }
  return trace;
}

TEST(TraceTest, DurationAndOrder) {
  const Trace t = sample_trace();
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.duration_ns(), 5000);
  EXPECT_TRUE(t.is_time_ordered());
}

TEST(TraceTest, UnorderedDetected) {
  Trace t = sample_trace();
  std::swap(t.records[0], t.records[5]);
  EXPECT_FALSE(t.is_time_ordered());
}

TEST(TraceTest, EmptyTraceDuration) {
  Trace t;
  EXPECT_EQ(t.duration_ns(), 0);
  EXPECT_TRUE(t.is_time_ordered());
}

TEST(TraceTest, MInfoRoundTrip) {
  const std::string m = make_m_info(protocol::Protocol::SomeIp, 3);
  const MInfo info = parse_m_info(m);
  EXPECT_EQ(info.protocol, protocol::Protocol::SomeIp);
  EXPECT_EQ(info.flags, 3u);
}

TEST(TraceTest, MInfoBadInputThrows) {
  EXPECT_THROW(parse_m_info("garbage"), std::invalid_argument);
  EXPECT_THROW(parse_m_info("CAN:xx"), std::invalid_argument);
  EXPECT_THROW(parse_m_info("NOPE:1"), std::invalid_argument);
}

TEST(TraceTest, KbTableSchemaMatchesPaper) {
  // k_b = (t, l, b_id, m_id, m_info)
  const auto& schema = kb_schema();
  ASSERT_EQ(schema.size(), 5u);
  EXPECT_EQ(schema.field(0).name, "t");
  EXPECT_EQ(schema.field(1).name, "l");
  EXPECT_EQ(schema.field(2).name, "b_id");
  EXPECT_EQ(schema.field(3).name, "m_id");
  EXPECT_EQ(schema.field(4).name, "m_info");
}

TEST(TraceTest, ToKbTableRoundTrip) {
  const Trace t = sample_trace();
  const dataflow::Table kb = to_kb_table(t, 3);
  EXPECT_EQ(kb.num_rows(), 6u);
  EXPECT_EQ(kb.num_partitions(), 3u);
  const Trace back = from_kb_table(kb);
  EXPECT_EQ(back.records, t.records);
}

TEST(TraceTest, FromWrongSchemaThrows) {
  dataflow::Table wrong(dataflow::Schema{{{"x", dataflow::ValueType::Int64}}});
  EXPECT_THROW(from_kb_table(wrong), std::invalid_argument);
}

TEST(TraceTest, ZeroPartitionRequestYieldsOne) {
  const dataflow::Table kb = to_kb_table(sample_trace(), 0);
  EXPECT_EQ(kb.num_partitions(), 1u);
}

TEST(TraceTest, PayloadBytesSurviveTableRoundTrip) {
  Trace t;
  TraceRecord rec;
  rec.bus = "FC";
  rec.payload = {0x00, 0xFF, 0x1F, 0x00};  // embedded NULs matter
  t.records.push_back(rec);
  const Trace back = from_kb_table(to_kb_table(t, 1));
  EXPECT_EQ(back.records[0].payload, rec.payload);
}

TEST(TraceTest, ComputeStats) {
  const TraceStats stats = compute_stats(sample_trace());
  EXPECT_EQ(stats.num_records, 6u);
  EXPECT_EQ(stats.duration_ns, 5000);
  ASSERT_EQ(stats.records_per_bus.size(), 2u);
  EXPECT_EQ(stats.records_per_bus[0].first, "FC");
  EXPECT_EQ(stats.records_per_bus[0].second, 3u);
  EXPECT_EQ(stats.records_per_message.size(), 3u);
}

}  // namespace
}  // namespace ivt::tracefile
