#include "tracefile/trace_ops.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ivt::tracefile {
namespace {

Trace sample_trace() {
  Trace trace;
  trace.vehicle = "V";
  trace.journey = "J";
  trace.start_unix_ns = 100;
  for (int i = 0; i < 10; ++i) {
    TraceRecord rec;
    rec.t_ns = i * 100;
    rec.bus = i % 2 == 0 ? "FC" : "KC";
    rec.message_id = 3 + i % 3;
    trace.records.push_back(std::move(rec));
  }
  return trace;
}

TEST(TraceOpsTest, SliceTimeHalfOpen) {
  const Trace out = slice_time(sample_trace(), 200, 500);
  ASSERT_EQ(out.size(), 3u);  // t = 200, 300, 400
  EXPECT_EQ(out.records.front().t_ns, 200);
  EXPECT_EQ(out.records.back().t_ns, 400);
  EXPECT_EQ(out.vehicle, "V");
}

TEST(TraceOpsTest, FilterBuses) {
  const Trace out = filter_buses(sample_trace(), {"FC"});
  EXPECT_EQ(out.size(), 5u);
  for (const auto& rec : out.records) EXPECT_EQ(rec.bus, "FC");
}

TEST(TraceOpsTest, FilterMessages) {
  const Trace out = filter_messages(sample_trace(), {3, 4});
  for (const auto& rec : out.records) {
    EXPECT_TRUE(rec.message_id == 3 || rec.message_id == 4);
  }
  EXPECT_EQ(out.size(), 7u);  // ids cycle 3,4,5: 4+3
}

TEST(TraceOpsTest, FilterPredicate) {
  const Trace out = filter_records(
      sample_trace(), [](const TraceRecord& r) { return r.t_ns >= 800; });
  EXPECT_EQ(out.size(), 2u);
}

TEST(TraceOpsTest, ShiftTime) {
  const Trace out = shift_time(sample_trace(), 50);
  EXPECT_EQ(out.records[0].t_ns, 50);
  EXPECT_EQ(out.records[9].t_ns, 950);
}

TEST(TraceOpsTest, MergePreservesTimeOrder) {
  Trace a = sample_trace();
  Trace b = shift_time(sample_trace(), 37);
  b.start_unix_ns = 50;
  const Trace merged = merge_traces({a, b});
  EXPECT_EQ(merged.size(), 20u);
  EXPECT_TRUE(merged.is_time_ordered());
  EXPECT_EQ(merged.start_unix_ns, 50);
}

TEST(TraceOpsTest, MergeIsStableOnTies) {
  Trace a;
  TraceRecord ra;
  ra.t_ns = 100;
  ra.bus = "A";
  a.records.push_back(ra);
  Trace b;
  TraceRecord rb;
  rb.t_ns = 100;
  rb.bus = "B";
  b.records.push_back(rb);
  const Trace merged = merge_traces({a, b});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.records[0].bus, "A");
  EXPECT_EQ(merged.records[1].bus, "B");
}

TEST(TraceOpsTest, MergeEmptyInput) {
  EXPECT_TRUE(merge_traces({}).empty());
}

TEST(TraceOpsTest, EstimateCyclesFindsMedianGap) {
  Trace trace;
  for (int i = 0; i < 20; ++i) {
    TraceRecord rec;
    rec.t_ns = i * 1000;
    rec.bus = "FC";
    rec.message_id = 7;
    trace.records.push_back(rec);
  }
  const auto estimates = estimate_cycles(trace);
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_EQ(estimates[0].bus, "FC");
  EXPECT_EQ(estimates[0].message_id, 7);
  EXPECT_EQ(estimates[0].median_gap_ns, 1000);
  EXPECT_EQ(estimates[0].instances, 20u);
}

TEST(TraceOpsTest, EstimateCyclesRobustToOneViolation) {
  Trace trace;
  std::int64_t t = 0;
  for (int i = 0; i < 21; ++i) {
    TraceRecord rec;
    rec.t_ns = t;
    rec.bus = "FC";
    rec.message_id = 7;
    trace.records.push_back(rec);
    t += (i == 10) ? 50'000 : 1000;  // one huge gap
  }
  const auto estimates = estimate_cycles(trace);
  EXPECT_EQ(estimates[0].median_gap_ns, 1000);  // median ignores the spike
}

TEST(TraceOpsTest, EstimateCyclesPerMessageType) {
  Trace trace;
  for (int i = 0; i < 10; ++i) {
    TraceRecord fast;
    fast.t_ns = i * 10;
    fast.bus = "FC";
    fast.message_id = 1;
    trace.records.push_back(fast);
    TraceRecord slow;
    slow.t_ns = i * 100;
    slow.bus = "FC";
    slow.message_id = 2;
    trace.records.push_back(slow);
  }
  auto estimates = estimate_cycles(trace);
  ASSERT_EQ(estimates.size(), 2u);
  std::sort(estimates.begin(), estimates.end(),
            [](const CycleEstimate& a, const CycleEstimate& b) {
              return a.message_id < b.message_id;
            });
  EXPECT_EQ(estimates[0].median_gap_ns, 10);
  EXPECT_EQ(estimates[1].median_gap_ns, 100);
}

}  // namespace
}  // namespace ivt::tracefile
