#include "tracefile/binary_format.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace ivt::tracefile {
namespace {

Trace sample_trace() {
  Trace trace;
  trace.vehicle = "V001";
  trace.journey = "J7";
  trace.start_unix_ns = 1'700'000'000'000'000'000;
  const char* buses[] = {"FC", "KC", "K-LIN", "FC"};
  for (int i = 0; i < 4; ++i) {
    TraceRecord rec;
    rec.t_ns = i * 500;
    rec.bus = buses[i];
    rec.message_id = 100 + i;
    rec.protocol =
        i == 2 ? protocol::Protocol::Lin : protocol::Protocol::Can;
    rec.flags = i == 3 ? TraceRecord::kFlagErrorFrame : 0;
    rec.payload.assign(static_cast<std::size_t>(i + 1),
                       static_cast<std::uint8_t>(0xA0 + i));
    trace.records.push_back(std::move(rec));
  }
  return trace;
}

TEST(BinaryFormatTest, StreamRoundTrip) {
  const Trace t = sample_trace();
  std::stringstream ss;
  {
    TraceWriter writer(ss, t.vehicle, t.journey, t.start_unix_ns);
    for (const TraceRecord& rec : t.records) writer.write(rec);
    EXPECT_EQ(writer.records_written(), 4u);
  }
  TraceReader reader(ss);
  EXPECT_EQ(reader.vehicle(), "V001");
  EXPECT_EQ(reader.journey(), "J7");
  EXPECT_EQ(reader.start_unix_ns(), t.start_unix_ns);
  std::vector<TraceRecord> back;
  TraceRecord rec;
  while (reader.next(rec)) back.push_back(rec);
  EXPECT_EQ(back, t.records);
}

TEST(BinaryFormatTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/trace_test.ivt";
  const Trace t = sample_trace();
  save_trace(t, path);
  const Trace back = load_trace(path);
  EXPECT_EQ(back.vehicle, t.vehicle);
  EXPECT_EQ(back.journey, t.journey);
  EXPECT_EQ(back.start_unix_ns, t.start_unix_ns);
  EXPECT_EQ(back.records, t.records);
}

TEST(BinaryFormatTest, BusNamesInternedOnce) {
  const Trace t = sample_trace();  // FC appears twice
  std::stringstream ss;
  TraceWriter writer(ss, t.vehicle, t.journey, 0);
  for (const TraceRecord& rec : t.records) writer.write(rec);
  const std::string data = ss.str();
  // "FC" must appear exactly once in the byte stream (one bus definition).
  std::size_t count = 0;
  for (std::size_t pos = 0; (pos = data.find("FC", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(BinaryFormatTest, BadMagicRejected) {
  std::stringstream ss("NOTAMAGIC................");
  EXPECT_THROW(TraceReader reader(ss), std::runtime_error);
}

TEST(BinaryFormatTest, TruncatedRecordRejected) {
  std::stringstream ss;
  {
    TraceWriter writer(ss, "V", "J", 0);
    writer.write(sample_trace().records[0]);
  }
  std::string data = ss.str();
  data.resize(data.size() - 2);
  std::stringstream truncated(data);
  TraceReader reader(truncated);
  TraceRecord rec;
  EXPECT_THROW(reader.next(rec), std::runtime_error);
}

TEST(BinaryFormatTest, TruncatedMidPayloadRejected) {
  std::stringstream ss;
  {
    TraceWriter writer(ss, "V", "J", 0);
    TraceRecord rec;
    rec.bus = "FC";
    rec.payload.assign(16, 0x55);
    writer.write(rec);
  }
  std::string data = ss.str();
  data.resize(data.size() - 8);  // cut inside the 16-byte payload
  std::stringstream truncated(data);
  TraceReader reader(truncated);
  TraceRecord rec;
  EXPECT_THROW(reader.next(rec), std::runtime_error);
}

TEST(BinaryFormatTest, OutOfRangeBusIndexRejected) {
  // A record referencing bus index 5 when no bus was ever defined: craft
  // the stream by writing a valid record and patching its index bytes
  // (tag 0x02 | i64 t_ns | u16 bus_index | ...).
  std::stringstream ss;
  {
    TraceWriter writer(ss, "V", "J", 0);
    TraceRecord rec;
    rec.bus = "FC";
    writer.write(rec);
  }
  std::string data = ss.str();
  // With an empty payload the record is the trailing 26 bytes:
  // tag(1) t_ns(8) bus(2) protocol(1) m_id(8) flags(4) payload_len(2).
  const std::size_t record_start = data.size() - 26;
  ASSERT_EQ(data[record_start], '\x02');
  data[record_start + 1 + 8] = 5;  // bus index low byte: 0 -> 5
  std::stringstream patched(data);
  TraceReader reader(patched);
  TraceRecord rec;
  EXPECT_THROW(reader.next(rec), std::runtime_error);
}

TEST(BinaryFormatTest, OverlongBusNameRejectedWithoutCorruptingStream) {
  std::stringstream ss;
  TraceWriter writer(ss, "V", "J", 0);
  TraceRecord bad;
  bad.bus = std::string(256, 'x');
  EXPECT_THROW(writer.write(bad), std::invalid_argument);
  // The rejected name must leave neither a partial bus definition in the
  // stream nor a dictionary entry: a valid record must still round-trip.
  TraceRecord good;
  good.bus = "FC";
  good.message_id = 7;
  writer.write(good);
  TraceReader reader(ss);
  TraceRecord back;
  ASSERT_TRUE(reader.next(back));
  EXPECT_EQ(back, good);
  EXPECT_FALSE(reader.next(back));
}

TEST(BinaryFormatTest, ManyBusesInternAndRoundTrip) {
  // Regression for the O(#buses) linear intern scan: thousands of
  // distinct buses must stay fast and index correctly.
  Trace t;
  t.vehicle = "V";
  for (int i = 0; i < 2000; ++i) {
    TraceRecord rec;
    rec.t_ns = i;
    rec.bus = "BUS" + std::to_string(i % 1000);  // each name used twice
    rec.message_id = i;
    t.records.push_back(std::move(rec));
  }
  std::stringstream ss;
  {
    TraceWriter writer(ss, t.vehicle, "J", 0);
    for (const TraceRecord& rec : t.records) writer.write(rec);
  }
  TraceReader reader(ss);
  std::vector<TraceRecord> back;
  TraceRecord rec;
  while (reader.next(rec)) back.push_back(rec);
  EXPECT_EQ(back, t.records);
}

TEST(BinaryFormatTest, BusInternCapEnforced) {
  // The u16 bus index caps the dictionary at 0xFFFF names; the 65536th
  // distinct bus must be rejected (and the hash-map intern keeps writing
  // 65535 definitions tractable in the first place).
  std::stringstream ss;
  TraceWriter writer(ss, "V", "J", 0);
  TraceRecord rec;
  for (int i = 0; i < 0xFFFF; ++i) {
    rec.t_ns = i;
    rec.bus = "B" + std::to_string(i);
    writer.write(rec);
  }
  rec.bus = "ONE-TOO-MANY";
  EXPECT_THROW(writer.write(rec), std::runtime_error);
}

TEST(BinaryFormatTest, EmptyTraceRoundTrip) {
  std::stringstream ss;
  { TraceWriter writer(ss, "V", "J", 42); }
  TraceReader reader(ss);
  TraceRecord rec;
  EXPECT_FALSE(reader.next(rec));
}

TEST(BinaryFormatTest, LargePayloadAndNegativeTime) {
  Trace t;
  t.vehicle = "V";
  TraceRecord rec;
  rec.t_ns = -5;  // pre-trigger records can be negative relative to start
  rec.bus = "FC";
  rec.payload.assign(4096, 0x42);
  t.records.push_back(rec);
  const std::string path = ::testing::TempDir() + "/trace_large.ivt";
  save_trace(t, path);
  const Trace back = load_trace(path);
  EXPECT_EQ(back.records[0].t_ns, -5);
  EXPECT_EQ(back.records[0].payload.size(), 4096u);
}

TEST(BinaryFormatTest, AscExportMentionsRecords) {
  std::ostringstream os;
  export_asc(sample_trace(), os);
  const std::string asc = os.str();
  EXPECT_NE(asc.find("V001"), std::string::npos);
  EXPECT_NE(asc.find("FC"), std::string::npos);
  EXPECT_NE(asc.find("ERROR"), std::string::npos);
  // 1 header + 1 base line + 4 records
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(asc.begin(), asc.end(), '\n')),
            6u);
}

}  // namespace
}  // namespace ivt::tracefile
