// Error taxonomy unit tests: categories, severity, context chains,
// describe() rendering, the IVT_THROW macros, ErrorPolicy parsing,
// Result<T>, and the FailureLog / quarantine-manifest machinery.
#include "errors/error.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>

#include "errors/failure_log.hpp"
#include "errors/result.hpp"

namespace ivt::errors {
namespace {

TEST(ErrorTest, CategoryNames) {
  EXPECT_EQ(to_string(Category::Io), "io");
  EXPECT_EQ(to_string(Category::Format), "format");
  EXPECT_EQ(to_string(Category::Decode), "decode");
  EXPECT_EQ(to_string(Category::Spec), "spec");
  EXPECT_EQ(to_string(Category::Resource), "resource");
  EXPECT_EQ(to_string(Category::Internal), "internal");
}

TEST(ErrorTest, OnlyResourceIsTransient) {
  EXPECT_TRUE(is_transient(Category::Resource));
  EXPECT_FALSE(is_transient(Category::Io));
  EXPECT_FALSE(is_transient(Category::Format));
  EXPECT_FALSE(is_transient(Category::Decode));
  EXPECT_FALSE(is_transient(Category::Spec));
  EXPECT_FALSE(is_transient(Category::Internal));
}

TEST(ErrorTest, DefaultsToRecoverable) {
  const Error e(Category::Decode, "bad run length");
  EXPECT_EQ(e.category(), Category::Decode);
  EXPECT_EQ(e.severity(), Severity::Recoverable);
  EXPECT_EQ(e.message(), "bad run length");
  EXPECT_TRUE(e.context().empty());
}

TEST(ErrorTest, IsARuntimeErrorForLegacyCatchSites) {
  try {
    IVT_THROW(Category::Format, "bad magic");
    FAIL() << "did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
  }
}

TEST(ErrorTest, ThrowMacroCapturesLocation) {
  try {
    IVT_THROW(Category::Io, "cannot open");
  } catch (const Error& e) {
    ASSERT_NE(e.location().file, nullptr);
    EXPECT_NE(std::string(e.location().file).find("error_test.cpp"),
              std::string::npos);
    EXPECT_GT(e.location().line, 0);
    // describe() renders the basename, not the whole path.
    EXPECT_NE(e.describe().find("error_test.cpp:"), std::string::npos);
    EXPECT_EQ(e.describe().find('/'), std::string::npos);
  }
}

TEST(ErrorTest, FatalMacroSetsSeverity) {
  try {
    IVT_THROW_FATAL(Category::Internal, "invariant violated");
  } catch (const Error& e) {
    EXPECT_EQ(e.severity(), Severity::Fatal);
  }
}

TEST(ErrorTest, DescribeRendersCategoryMessageAndChain) {
  Error e(Category::Decode, "bad RLE run length");
  e.add_context("decoding chunk 3 @ 0x1a40");
  e.add_context("scanning trace.ivc");
  const std::string d = e.describe();
  EXPECT_EQ(d.find("decode error"), 0u);
  EXPECT_NE(d.find("bad RLE run length"), std::string::npos);
  // Innermost frame first.
  const std::size_t inner = d.find("while decoding chunk 3 @ 0x1a40");
  const std::size_t outer = d.find("while scanning trace.ivc");
  ASSERT_NE(inner, std::string::npos);
  ASSERT_NE(outer, std::string::npos);
  EXPECT_LT(inner, outer);
  // what() sees the same rendering (it is rebuilt after add_context).
  EXPECT_EQ(std::string(e.what()), d);
}

TEST(ErrorTest, WithContextStampsAndRethrows) {
  try {
    with_context("loading trace.ivt", [] {
      with_context("reading record 7",
                   [] { IVT_THROW(Category::Decode, "truncated payload"); });
    });
    FAIL() << "did not throw";
  } catch (const Error& e) {
    ASSERT_EQ(e.context().size(), 2u);
    EXPECT_EQ(e.context()[0], "reading record 7");
    EXPECT_EQ(e.context()[1], "loading trace.ivt");
  }
}

TEST(ErrorTest, WithContextPassesThroughReturnValue) {
  const int v = with_context("computing", [] { return 42; });
  EXPECT_EQ(v, 42);
}

TEST(ErrorPolicyTest, ParseRoundTrip) {
  EXPECT_EQ(parse_error_policy("fail"), ErrorPolicy::Fail);
  EXPECT_EQ(parse_error_policy("skip"), ErrorPolicy::Skip);
  EXPECT_EQ(parse_error_policy("quarantine"), ErrorPolicy::Quarantine);
  EXPECT_EQ(parse_error_policy("retry"), std::nullopt);
  EXPECT_EQ(parse_error_policy(""), std::nullopt);
  EXPECT_EQ(to_string(ErrorPolicy::Fail), "fail");
  EXPECT_EQ(to_string(ErrorPolicy::Skip), "skip");
  EXPECT_EQ(to_string(ErrorPolicy::Quarantine), "quarantine");
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(ok.value_or(0), 7);

  Result<int> bad(Error(Category::Spec, "no such signal"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().category(), Category::Spec);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_THROW((void)bad.value(), Error);
}

TEST(ResultTest, CaptureConvertsThrownError) {
  const Result<int> r = Result<int>::capture(
      []() -> int { IVT_THROW(Category::Io, "gone"); });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category(), Category::Io);
}

TEST(FailureLogTest, AddRecordsAndMerge) {
  FailureLog log;
  EXPECT_TRUE(log.empty());
  log.add("colstore.decode_chunk", "chunk 3 @ offset 6720",
          Error(Category::Decode, "bad varint"));
  log.add({.site = "pipeline.sequence",
           .unit = "sequence S1 on FC",
           .category = Category::Resource,
           .message = "out of budget",
           .retries = 2});
  ASSERT_EQ(log.size(), 2u);
  const std::vector<FailureRecord> records = log.records();
  EXPECT_EQ(records[0].site, "colstore.decode_chunk");
  EXPECT_EQ(records[0].category, Category::Decode);
  EXPECT_NE(records[0].message.find("bad varint"), std::string::npos);
  EXPECT_EQ(records[1].retries, 2u);

  FailureLog other;
  other.add("tracefile.read_record", "tail after record 9",
            Error(Category::Format, "unexpected EOF"));
  log.merge(other);
  EXPECT_EQ(log.size(), 3u);
}

TEST(FailureLogTest, JsonRenderingEscapesAndCounts) {
  FailureLog log;
  log.add("site.a", "unit \"quoted\"", Error(Category::Decode, "msg"));
  const std::string json = failures_to_json(log.records(), "");
  EXPECT_NE(json.find("\"site\": \"site.a\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"category\": \"decode\""), std::string::npos);

  EXPECT_EQ(failures_to_json({}, ""), "[]");
}

TEST(FailureLogTest, QuarantineManifestWritten) {
  FailureLog log;
  log.add("colstore.decode_chunk", "chunk 0 @ offset 24 (4 rows)",
          Error(Category::Decode, "bad run"));
  const std::string path =
      ::testing::TempDir() + "/errors_manifest.quarantine.json";
  write_quarantine_manifest(path, "trace.ivc", log.records());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const std::string body{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  EXPECT_NE(body.find("\"source\": \"trace.ivc\""), std::string::npos);
  EXPECT_NE(body.find("\"quarantined\": 1"), std::string::npos);
  EXPECT_NE(body.find("chunk 0 @ offset 24"), std::string::npos);

  EXPECT_THROW(
      write_quarantine_manifest("/nonexistent-dir/x.json", "t", log.records()),
      Error);
}

}  // namespace
}  // namespace ivt::errors
