#!/usr/bin/env python3
"""Line-coverage summary from raw .gcda/.gcno data, no gcovr required.

Runs `gcov` over every .gcda file under a build directory, parses the
intermediate JSON it emits, and prints a per-file and aggregate line
coverage table restricted to sources under --filter (default: src/).
Exits nonzero when the aggregate line coverage of --gate-prefix files
falls below --min-percent, so CI can pin a floor under e.g. src/colstore.

Usage:
  python3 tools/gcov_summary.py --build build-cov \
      --filter src/ --gate-prefix src/colstore --min-percent 85
"""
import argparse
import json
import os
import subprocess
import sys
import tempfile


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.realpath(os.path.join(root, name))


def run_gcov(gcda_paths, workdir):
    """Invoke gcov in JSON-intermediate mode; returns parsed file records."""
    records = []
    # Batch to keep command lines bounded.
    batch = 100
    for i in range(0, len(gcda_paths), batch):
        chunk = gcda_paths[i:i + batch]
        proc = subprocess.run(
            ["gcov", "--json-format", "--stdout"] + chunk,
            cwd=workdir, capture_output=True, text=True, check=False)
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            raise SystemExit(f"gcov failed on batch starting {chunk[0]}")
        for line in proc.stdout.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", required=True,
                        help="build directory containing .gcda files")
    parser.add_argument("--root", default=os.getcwd(),
                        help="repo root that --filter paths are relative to")
    parser.add_argument("--filter", default="src/",
                        help="only report sources whose repo-relative path "
                             "starts with this prefix")
    parser.add_argument("--gate-prefix", default=None,
                        help="aggregate-gate file prefix (e.g. src/colstore)")
    parser.add_argument("--min-percent", type=float, default=0.0,
                        help="fail when gate aggregate line coverage is "
                             "below this percentage")
    args = parser.parse_args()

    gcda = sorted(find_gcda(args.build))
    if not gcda:
        raise SystemExit(f"no .gcda files under {args.build} — "
                         "did the instrumented tests run?")

    root = os.path.realpath(args.root)
    # gcov writes nothing with --stdout, but run in a scratch dir anyway in
    # case a toolchain variant drops .gcov artifacts.
    with tempfile.TemporaryDirectory() as scratch:
        records = run_gcov(gcda, scratch)

    # path -> [covered_lines, instrumented_lines]; a line counts as covered
    # if ANY translation unit executed it (headers appear in many TUs).
    per_file = {}
    for record in records:
        for f in record.get("files", []):
            path = os.path.realpath(os.path.join(root, f.get("file", "")))
            if not path.startswith(root + os.sep):
                continue
            rel = os.path.relpath(path, root)
            if not rel.startswith(args.filter):
                continue
            lines = per_file.setdefault(rel, {})
            for line in f.get("lines", []):
                num = line.get("line_number")
                if num is None:
                    continue
                hit = line.get("count", 0) > 0 or lines.get(num, False)
                lines[num] = hit

    if not per_file:
        raise SystemExit(f"no instrumented sources matched filter "
                         f"'{args.filter}'")

    print(f"{'file':60s} {'lines':>7s} {'covered':>8s} {'percent':>8s}")
    total_lines = total_covered = 0
    gate_lines = gate_covered = 0
    for rel in sorted(per_file):
        lines = per_file[rel]
        n = len(lines)
        covered = sum(1 for hit in lines.values() if hit)
        pct = 100.0 * covered / n if n else 100.0
        print(f"{rel:60s} {n:7d} {covered:8d} {pct:7.1f}%")
        total_lines += n
        total_covered += covered
        if args.gate_prefix and rel.startswith(args.gate_prefix):
            gate_lines += n
            gate_covered += covered

    total_pct = 100.0 * total_covered / total_lines if total_lines else 100.0
    print(f"{'TOTAL (' + args.filter + ')':60s} {total_lines:7d} "
          f"{total_covered:8d} {total_pct:7.1f}%")

    if args.gate_prefix:
        gate_pct = (100.0 * gate_covered / gate_lines
                    if gate_lines else 0.0)
        print(f"{'GATE (' + args.gate_prefix + ')':60s} {gate_lines:7d} "
              f"{gate_covered:8d} {gate_pct:7.1f}%")
        if gate_pct < args.min_percent:
            raise SystemExit(
                f"coverage gate FAILED: {args.gate_prefix} line coverage "
                f"{gate_pct:.1f}% < required {args.min_percent:.1f}%")
        print(f"coverage gate OK: {gate_pct:.1f}% >= "
              f"{args.min_percent:.1f}%")


if __name__ == "__main__":
    main()
