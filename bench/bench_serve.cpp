// Open-loop load generator for the ivt-serve daemon.
//
// Starts an in-process Server over a packed SYN journey, then drives it
// from C client connections at a fixed target arrival rate (open loop:
// each sender issues its next request on schedule whether or not the
// previous one is done, so the server sees offered load, not closed-loop
// back-pressure). Two passes over the same request mix:
//
//   cold — caches empty: every state/extract request preads and decodes
//          its chunks (tier 1) and runs the pipeline (tier 2).
//   warm — same requests again: state settles in the tier-2 cache and the
//          serve.chunks_decoded counter stays flat, which is the serving
//          layer's whole value proposition.
//
// Each pass appends one JSON line to BENCH_serve.json (IVT_BENCH_JSON_DIR
// overrides the directory) with sustained QPS, client-side latency
// p50/p90/p99, the chunk-decode delta and cache hit counts. Overloaded
// responses count separately — under an offered load above capacity the
// correct behaviour is typed retryable rejection, not collapse.
//
// Knobs: IVT_BENCH_SCALE (journey length), IVT_BENCH_SERVE_RPS (offered
// load per pass, default 200), IVT_BENCH_SERVE_CONNS (connections,
// default 4), IVT_BENCH_SERVE_REQUESTS (requests per pass, default 200).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "colstore/columnar_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "simnet/datasets.hpp"

namespace {

using namespace ivt;

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

/// The request mix: mostly state (tier-2 cacheable), some extract
/// (tier-1 only) and a stats probe. Index-deterministic so cold and warm
/// passes offer identical work.
std::string request_body(std::size_t index, const std::string& trace) {
  serve::json::Object request;
  switch (index % 8) {
    case 6:
      request.add("op", "extract").add("trace", trace);
      break;
    case 7:
      request.add("op", "stats");
      break;
    default:
      request.add("op", "state").add("trace", trace);
      break;
  }
  return request.str();
}

struct PassResult {
  double seconds = 0.0;
  std::size_t ok = 0;
  std::size_t overloaded = 0;
  std::size_t failed = 0;
  obs::Histogram::Data latency;
};

/// One open-loop pass: `requests` requests spread over `conns` sender
/// threads, each sender pacing its share at the offered rate.
PassResult run_pass(const std::string& host, std::uint16_t port,
                    const std::string& trace, std::size_t requests,
                    std::size_t conns, double offered_rps) {
  obs::Histogram latency(obs::default_latency_bounds_ms());
  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> overloaded{0};
  std::atomic<std::size_t> failed{0};

  const double per_sender_rps = offered_rps / static_cast<double>(conns);
  const auto interval = std::chrono::duration<double>(1.0 / per_sender_rps);

  bench::Stopwatch wall;
  std::vector<std::thread> senders;
  senders.reserve(conns);
  for (std::size_t s = 0; s < conns; ++s) {
    senders.emplace_back([&, s] {
      serve::Client client(host, port);
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t i = s; i < requests; i += conns) {
        // Open loop: wait until this request's scheduled arrival time.
        const auto due =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        interval * static_cast<double>(i / conns));
        std::this_thread::sleep_until(due);
        const auto t0 = std::chrono::steady_clock::now();
        try {
          const serve::ClientResponse response =
              client.request(request_body(i, trace));
          const double ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
          latency.record(ms);
          if (response.ok()) {
            ok.fetch_add(1, std::memory_order_relaxed);
          } else if (response.error_category() == "overloaded") {
            overloaded.fetch_add(1, std::memory_order_relaxed);
          } else {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const std::exception& e) {
          failed.fetch_add(1, std::memory_order_relaxed);
          std::fprintf(stderr, "bench_serve: request failed: %s\n",
                       e.what());
        }
      }
    });
  }
  for (std::thread& t : senders) t.join();

  PassResult result;
  result.seconds = wall.seconds();
  result.ok = ok.load();
  result.overloaded = overloaded.load();
  result.failed = failed.load();
  result.latency = latency.data();
  return result;
}

std::uint64_t chunks_decoded_now() {
  return obs::Registry::instance().snapshot().counter_or(
      "serve.chunks_decoded", 0);
}

void emit_pass(bench::JsonLinesEmitter& emitter, const char* pass,
               const PassResult& result, double offered_rps,
               std::uint64_t chunks_decoded_delta,
               const serve::LruCacheStats& chunk_cache,
               const serve::LruCacheStats& state_cache) {
  bench::JsonRecord record;
  record.add("bench", "serve_open_loop")
      .add("pass", pass)
      .add("offered_rps", offered_rps)
      .add("sustained_qps",
           result.seconds > 0.0
               ? static_cast<double>(result.ok + result.overloaded +
                                     result.failed) /
                     result.seconds
               : 0.0)
      .add("wall_s", result.seconds)
      .add("ok", static_cast<std::uint64_t>(result.ok))
      .add("overloaded", static_cast<std::uint64_t>(result.overloaded))
      .add("failed", static_cast<std::uint64_t>(result.failed))
      .add("chunks_decoded_delta", chunks_decoded_delta)
      .add("chunk_cache_hits", chunk_cache.hits)
      .add("chunk_cache_misses", chunk_cache.misses)
      .add("state_cache_hits", state_cache.hits)
      .add("state_cache_misses", state_cache.misses);
  bench::add_histogram_quantiles(record, "latency_ms", result.latency);
  bench::add_robustness_fields(record, bench::read_robustness_counters());
  emitter.emit(record);
  std::printf(
      "bench_serve %-4s: %.1f qps sustained (%.0f offered), "
      "p50 %.2f ms, p99 %.2f ms, %zu ok / %zu overloaded / %zu failed, "
      "%llu chunks decoded\n",
      pass,
      result.seconds > 0.0 ? static_cast<double>(result.ok) / result.seconds
                           : 0.0,
      offered_rps, result.latency.quantile(0.50),
      result.latency.quantile(0.99), result.ok, result.overloaded,
      result.failed,
      static_cast<unsigned long long>(chunks_decoded_delta));
}

}  // namespace

int main() {
  // Workload: one packed SYN journey in TMPDIR.
  simnet::DatasetConfig config;
  config.scale = 0.002 * bench::bench_scale();
  config.seed = 42;
  const simnet::Dataset dataset = simnet::make_syn_dataset(config);
  const char* tmp = std::getenv("TMPDIR");
  const std::string ivc_path =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/ivt_bench_serve.ivc";
  colstore::save_trace_columnar(dataset.trace, ivc_path, {.chunk_rows = 4096});

  auto catalog = std::make_unique<serve::TraceCatalog>(dataset.catalog);
  catalog->add_trace("bench", ivc_path);

  serve::ServerConfig server_config;
  server_config.workers = bench::bench_workers();
  serve::Server server(std::move(catalog), server_config);
  server.start();

  const std::size_t requests = env_size("IVT_BENCH_SERVE_REQUESTS", 200);
  const std::size_t conns = env_size("IVT_BENCH_SERVE_CONNS", 4);
  const double offered_rps =
      static_cast<double>(env_size("IVT_BENCH_SERVE_RPS", 200));

  bench::JsonLinesEmitter emitter("serve");

  const std::uint64_t decoded_before_cold = chunks_decoded_now();
  const PassResult cold = run_pass(server.host(), server.port(), "bench",
                                   requests, conns, offered_rps);
  const std::uint64_t decoded_after_cold = chunks_decoded_now();
  emit_pass(emitter, "cold", cold, offered_rps,
            decoded_after_cold - decoded_before_cold,
            server.query_engine().chunk_cache_stats(),
            server.query_engine().state_cache_stats());

  const PassResult warm = run_pass(server.host(), server.port(), "bench",
                                   requests, conns, offered_rps);
  const std::uint64_t decoded_after_warm = chunks_decoded_now();
  emit_pass(emitter, "warm", warm, offered_rps,
            decoded_after_warm - decoded_after_cold,
            server.query_engine().chunk_cache_stats(),
            server.query_engine().state_cache_stats());

  // Deterministic cache probe (the load passes above are statistical:
  // overloaded rejections skip decoding, so their decode deltas jitter).
  // With the server idle and the state representation resident in tier 2,
  // repeated state queries must decode zero chunks — the caches are the
  // subsystem under test, so a regression here fails the bench.
  int exit_code = 0;
  {
    serve::Client probe(server.host(), server.port());
    (void)probe.request(request_body(0, "bench"));  // ensure residency
    const std::uint64_t before = chunks_decoded_now();
    for (int i = 0; i < 5; ++i) {
      (void)probe.request(request_body(0, "bench"));
    }
    const std::uint64_t probe_delta = chunks_decoded_now() - before;
    std::printf("bench_serve probe: %llu chunks decoded across 5 warm "
                "state queries (want 0)\n",
                static_cast<unsigned long long>(probe_delta));
    if (probe_delta != 0) {
      std::fprintf(stderr,
                   "bench_serve: warm state queries decoded %llu chunks — "
                   "cache ineffective\n",
                   static_cast<unsigned long long>(probe_delta));
      exit_code = 1;
    }
  }

  server.stop();
  bench::write_metrics_snapshot("serve");

  // The span rings are sized for a full bench run; a dropped span means
  // the ring is now too small (or a span leak), and the Chrome traces CI
  // archives would silently lose events. Fail loudly instead.
  if (obs::dropped_span_count() != 0) {
    std::fprintf(stderr,
                 "bench_serve: %llu spans dropped — span ring overflow\n",
                 static_cast<unsigned long long>(obs::dropped_span_count()));
    exit_code = 1;
  }
  return exit_code;
}
