// Paper Fig. 5: execution time of Algorithm 1 lines 3–11 (interpretation
// + splitting + reduction) vs. number of examples, one series per data
// set, with a constant number of signal types.
//
// Protocol (matching paper Sec. 5.1 "Execution performance"): per data
// set, the K_b subset is increased step-wise; all signal types of the
// data set are interpreted; identical subsequent signal instances are
// removed as the reduction; one channel per signal type is analyzed
// (gateway dedup). Expect a linear curve (O(n) row-wise interpretation)
// with fluctuations from task scheduling.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "simnet/datasets.hpp"
#include "tracefile/trace.hpp"

using namespace ivt;

namespace {

/// First `rows` rows of `kb` (prefix subset, like replaying less trace).
dataflow::Table kb_prefix(const dataflow::Table& kb, std::size_t rows,
                          std::size_t partitions) {
  dataflow::TableBuilder builder(
      kb.schema(), (rows + partitions - 1) / std::max<std::size_t>(1, partitions));
  std::size_t copied = 0;
  for (const dataflow::Partition& p : kb.partitions()) {
    const std::size_t n = p.num_rows();
    for (std::size_t r = 0; r < n && copied < rows; ++r, ++copied) {
      dataflow::Partition& dst = builder.current_partition();
      for (std::size_t c = 0; c < p.columns.size(); ++c) {
        dst.columns[c].append_from(p.columns[c], r);
      }
      builder.commit_row();
    }
    if (copied >= rows) break;
  }
  return builder.build();
}

}  // namespace

int main(int argc, char** argv) {
  // --quick: CI-budget variant (smaller dataset, fewer steps) that still
  // exercises every stage and emits the same JSON artifacts.
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }
  const double scale = (quick ? 2e-3 : 2e-2) * bench::bench_scale();
  const std::size_t kSteps = quick ? 3 : 8;
  dataflow::Engine engine({.workers = bench::bench_workers(),
                           .task_overhead = std::chrono::microseconds(100)});
  bench::JsonLinesEmitter json("fig5_scaling");

  std::printf("Fig. 5 reproduction — execution time after interpretation "
              "and reduction (Algorithm 1 lines 3-11)\n");
  std::printf("dataset scale %.4g, %zu workers, 100us simulated task "
              "dispatch overhead%s\n\n", scale, engine.workers(),
              quick ? " [quick]" : "");
  std::printf("%-8s %12s %12s %12s %14s\n", "dataset", "kb_rows",
              "examples", "reduced", "time_ms");

  for (const simnet::DatasetSpec& spec :
       {simnet::syn_spec(), simnet::lig_spec(), simnet::sta_spec()}) {
    simnet::DatasetConfig config;
    config.scale = scale;
    config.seed = 42;
    const simnet::VehiclePlan plan = simnet::plan_vehicle(spec, config.seed);
    const simnet::Dataset ds = simnet::make_dataset(spec, config);

    core::PipelineConfig pconfig;
    pconfig.classifier.rate_threshold_hz = plan.recommended_rate_threshold_hz;
    const core::Pipeline pipeline(ds.catalog, pconfig);
    const auto kb_full = tracefile::to_kb_table(ds.trace, 64);
    const std::size_t total_rows = kb_full.num_rows();

    for (std::size_t step = 1; step <= kSteps; ++step) {
      const std::size_t rows = total_rows * step / kSteps;
      const auto kb = kb_prefix(kb_full, rows, 64);
      // Warm cold caches once at the smallest step only (cheap), then
      // measure a single run — Fig. 5 reports single executions.
      bench::Stopwatch timer;
      const core::Pipeline::ReducedResult result =
          pipeline.extract_and_reduce(engine, kb);
      const double ms = timer.seconds() * 1e3;
      std::printf("%-8s %12zu %12zu %12zu %14.2f\n", spec.name.c_str(), rows,
                  result.ks_rows, result.reduced_rows, ms);
      bench::JsonRecord record;
      record.add("bench", "fig5_scaling")
          .add("dataset", spec.name)
          .add("quick", quick)
          .add("step", static_cast<std::uint64_t>(step))
          .add("kb_rows", static_cast<std::uint64_t>(rows))
          .add("examples", static_cast<std::uint64_t>(result.ks_rows))
          .add("reduced", static_cast<std::uint64_t>(result.reduced_rows))
          .add("time_ms", ms)
          .add("peak_rss_bytes", bench::peak_rss_bytes());
      bench::add_robustness_fields(record,
                                   bench::read_robustness_counters());
      json.emit(record);
    }
    std::puts("");
  }
  const std::string metrics_path =
      bench::write_metrics_snapshot("fig5_scaling");
  std::printf("JSON trajectory: %s\nmetrics snapshot: %s\n", json.path().c_str(),
              metrics_path.c_str());
  std::printf(
      "Paper reference: linear growth in examples per data set (O(n)\n"
      "row-wise interpretation), fluctuations from cluster scheduling;\n"
      "e.g. 2.6M examples in 1324 s and 7.4M in 930 s on 10 nodes.\n");
  return 0;
}
