// Paper Fig. 5: execution time of Algorithm 1 lines 3–11 (interpretation
// + splitting + reduction) vs. number of examples, one series per data
// set, with a constant number of signal types — run in BOTH execution
// modes over the same chunked .ivc input:
//
//   batch      zone-map-pruned scan materializes K_b, then the staged
//              extract → split → reduce pipeline runs over it;
//   streaming  the morsel executor fuses decode + preselect + interpret
//              + split per chunk, never materializing K_b or K_s.
//
// Protocol (matching paper Sec. 5.1 "Execution performance"): per data
// set, the trace prefix is increased step-wise; all signal types of the
// data set are interpreted; identical subsequent signal instances are
// removed as the reduction; one channel per signal type is analyzed
// (gateway dedup). Expect linear curves (O(n) row-wise interpretation)
// with matching throughput across modes, and a lower memory high-water
// mark for streaming. The streaming run of each step executes FIRST:
// ru_maxrss is a process-lifetime maximum, so the streaming rows record
// the peak before batch's K_b materialization has ever happened.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "colstore/columnar_reader.hpp"
#include "colstore/columnar_writer.hpp"
#include "core/pipeline.hpp"
#include "dist/sim.hpp"
#include "obs/span.hpp"
#include "signaldb/catalog.hpp"
#include "simnet/datasets.hpp"
#include "tracefile/trace.hpp"

using namespace ivt;

namespace {

/// First `rows` records of `trace` (prefix subset, like replaying less
/// of the journey).
tracefile::Trace trace_prefix(const tracefile::Trace& trace,
                              std::size_t rows) {
  tracefile::Trace out;
  out.vehicle = trace.vehicle;
  out.journey = trace.journey;
  out.start_unix_ns = trace.start_unix_ns;
  rows = std::min(rows, trace.records.size());
  out.records.assign(trace.records.begin(),
                     trace.records.begin() +
                         static_cast<std::ptrdiff_t>(rows));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // --quick: CI-budget variant (smaller dataset, fewer steps) that still
  // exercises every stage and emits the same JSON artifacts.
  // --nodes N1,N2,...: append the paper's cluster axis — the same job
  // under `--exec dist` at each node count, once clean and once at a 5 %
  // seeded failure rate, with the recovery counters in the JSON rows.
  bool quick = false;
  std::vector<std::size_t> node_counts;
  bool usage_error = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      const std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos <= list.size()) {
        std::size_t next = list.find(',', pos);
        if (next == std::string::npos) next = list.size();
        const std::size_t n = static_cast<std::size_t>(
            std::strtoull(list.substr(pos, next - pos).c_str(), nullptr, 10));
        if (n == 0) usage_error = true;
        node_counts.push_back(n);
        pos = next + 1;
      }
    } else {
      usage_error = true;
    }
    if (usage_error) {
      std::fprintf(stderr, "usage: %s [--quick] [--nodes N1,N2,...]\n",
                   argv[0]);
      return 2;
    }
  }
  const double scale = (quick ? 2e-3 : 2e-2) * bench::bench_scale();
  const std::size_t kSteps = quick ? 3 : 8;
  dataflow::Engine engine({.workers = bench::bench_workers(),
                           .task_overhead = std::chrono::microseconds(100)});
  bench::JsonLinesEmitter json("fig5_scaling");

  const char* tmp = std::getenv("TMPDIR");
  const std::string ivc_path =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/ivt_bench_fig5.ivc";

  std::printf("Fig. 5 reproduction — execution time after interpretation "
              "and reduction (Algorithm 1 lines 3-11)\n");
  std::printf("dataset scale %.4g, %zu workers, 100us simulated task "
              "dispatch overhead%s\n\n", scale, engine.workers(),
              quick ? " [quick]" : "");
  std::printf("%-8s %-10s %-10s %12s %12s %12s %14s %12s\n", "dataset",
              "exec", "scan", "kb_rows", "examples", "reduced", "time_ms",
              "peak_rss_mb");

  for (const simnet::DatasetSpec& spec :
       {simnet::syn_spec(), simnet::lig_spec(), simnet::sta_spec()}) {
    simnet::DatasetConfig config;
    config.scale = scale;
    config.seed = 42;
    const simnet::VehiclePlan plan = simnet::plan_vehicle(spec, config.seed);
    const simnet::Dataset ds = simnet::make_dataset(spec, config);

    core::PipelineConfig pconfig;
    pconfig.classifier.rate_threshold_hz = plan.recommended_rate_threshold_hz;
    const std::size_t total_rows = ds.trace.size();

    for (std::size_t step = 1; step <= kSteps; ++step) {
      const std::size_t rows = total_rows * step / kSteps;
      colstore::save_trace_columnar(trace_prefix(ds.trace, rows), ivc_path,
                                    {.chunk_rows = 8192});
      const colstore::ColumnarReader reader(ivc_path);

      // Scan-mode axis: the decoded baseline and the decode-free
      // run-header path must land on the same examples/reduced counts —
      // the time_ms delta between them is the compressed-execution win.
      for (const colstore::ScanMode scan_mode :
           {colstore::ScanMode::Decoded, colstore::ScanMode::Compressed}) {
        core::PipelineConfig mode_config = pconfig;
        mode_config.scan_mode = scan_mode;
        const core::Pipeline pipeline(ds.catalog, mode_config);

        // Streaming first — see the header comment on ru_maxrss.
        for (const bool streaming : {true, false}) {
          bench::Stopwatch timer;
          const core::Pipeline::ReducedResult result =
              streaming
                  ? pipeline.extract_and_reduce_streaming(engine, reader)
                  : pipeline.extract_and_reduce(
                        engine,
                        reader.scan(colstore::ScanPredicate{}, engine,
                                    colstore::ScanOptions{.mode = scan_mode}));
          const double ms = timer.seconds() * 1e3;
          const char* exec = streaming ? "streaming" : "batch";
          const char* scan = colstore::to_string(scan_mode);
          const std::uint64_t peak_rss = bench::peak_rss_bytes();
          std::printf("%-8s %-10s %-10s %12zu %12zu %12zu %14.2f %12.1f\n",
                      spec.name.c_str(), exec, scan, rows, result.ks_rows,
                      result.reduced_rows, ms,
                      static_cast<double>(peak_rss) / (1024.0 * 1024.0));
          bench::JsonRecord record;
          record.add("bench", "fig5_scaling")
              .add("dataset", spec.name)
              .add("exec", exec)
              .add("scan", scan)
              .add("quick", quick)
              .add("step", static_cast<std::uint64_t>(step))
              .add("kb_rows", static_cast<std::uint64_t>(rows))
              .add("examples", static_cast<std::uint64_t>(result.ks_rows))
              .add("reduced", static_cast<std::uint64_t>(result.reduced_rows))
              .add("time_ms", ms)
              .add("peak_rss_bytes", peak_rss);
          bench::add_robustness_fields(record,
                                       bench::read_robustness_counters());
          json.emit(record);
        }
      }
    }
    std::puts("");
  }
  if (!node_counts.empty()) {
    // Cluster axis: the full syn trace, one dist run per node count,
    // clean and with a 5 % seeded failure schedule. The recovery work
    // (deaths, re-assignments, speculative wins) rides along in the JSON
    // so a slow point can be told apart from a recovery storm — the
    // paper's 930 s / 7.4 M-example fluctuation on 10 nodes is exactly
    // this effect.
    const simnet::DatasetSpec spec = simnet::syn_spec();
    simnet::DatasetConfig config;
    config.scale = scale;
    config.seed = 42;
    const simnet::VehiclePlan plan = simnet::plan_vehicle(spec, config.seed);
    const simnet::Dataset ds = simnet::make_dataset(spec, config);
    core::PipelineConfig pconfig;
    pconfig.classifier.rate_threshold_hz = plan.recommended_rate_threshold_hz;
    pconfig.exec_mode = core::ExecMode::Dist;
    // Smaller chunks than the mode series so every node count has enough
    // ranges to balance (and to steal from on a death).
    colstore::save_trace_columnar(ds.trace, ivc_path, {.chunk_rows = 2048});
    const std::string catalog_path =
        std::string(tmp != nullptr ? tmp : "/tmp") + "/ivt_bench_fig5.ivsdb";
    signaldb::save_catalog(ds.catalog, catalog_path);
    const colstore::ColumnarReader reader(ivc_path);

    std::printf("%-8s %-10s %6s %6s %14s %8s %12s %10s\n", "dataset",
                "exec", "nodes", "fail", "time_ms", "deaths", "reassigned",
                "spec_wins");
    for (const std::size_t nodes : node_counts) {
      for (const double failure_rate : {0.0, 0.05}) {
        dist::DistRunConfig dcfg;
        dcfg.trace_path = ivc_path;
        dcfg.catalog_path = catalog_path;
        dcfg.nodes = nodes;
        dcfg.failure_rate = failure_rate;
        dcfg.seed = 42;
        bench::Stopwatch timer;
        const core::PipelineResult result =
            dist::run_dist(ds.catalog, pconfig, reader, dcfg, engine);
        const double ms = timer.seconds() * 1e3;
        const core::DistStats& d = result.dist;
        const std::uint64_t peak_rss = bench::peak_rss_bytes();
        std::printf("%-8s %-10s %6zu %5.0f%% %14.2f %8zu %12zu %10zu\n",
                    spec.name.c_str(), "dist", nodes, failure_rate * 100.0,
                    ms, d.worker_deaths, d.ranges_reassigned,
                    d.speculative_wins);
        bench::JsonRecord record;
        record.add("bench", "fig5_scaling")
            .add("dataset", spec.name)
            .add("exec", "dist")
            .add("quick", quick)
            .add("nodes", static_cast<std::uint64_t>(nodes))
            .add("failure_rate", failure_rate)
            .add("examples", static_cast<std::uint64_t>(result.ks_rows))
            .add("reduced", static_cast<std::uint64_t>(result.reduced_rows))
            .add("time_ms", ms)
            .add("peak_rss_bytes", peak_rss)
            .add("ranges_total", static_cast<std::uint64_t>(d.ranges_total))
            .add("worker_deaths",
                 static_cast<std::uint64_t>(d.worker_deaths))
            .add("ranges_reassigned",
                 static_cast<std::uint64_t>(d.ranges_reassigned))
            .add("speculative_launched",
                 static_cast<std::uint64_t>(d.speculative_launched))
            .add("speculative_wins",
                 static_cast<std::uint64_t>(d.speculative_wins))
            .add("results_deduped",
                 static_cast<std::uint64_t>(d.results_deduped))
            .add("registrations_retried",
                 static_cast<std::uint64_t>(d.registrations_retried));
        bench::add_robustness_fields(record,
                                     bench::read_robustness_counters());
        json.emit(record);
      }
    }
    std::puts("");
    std::remove(catalog_path.c_str());
  }

  std::remove(ivc_path.c_str());
  const std::string metrics_path =
      bench::write_metrics_snapshot("fig5_scaling");
  std::printf("JSON trajectory: %s\nmetrics snapshot: %s\n", json.path().c_str(),
              metrics_path.c_str());
  std::printf(
      "Paper reference: linear growth in examples per data set (O(n)\n"
      "row-wise interpretation), fluctuations from cluster scheduling;\n"
      "e.g. 2.6M examples in 1324 s and 7.4M in 930 s on 10 nodes.\n");
  // Quick (CI) runs double as a span-ring capacity check: a drop means
  // the archived traces are incomplete, which the full run tolerates but
  // the CI lane must not.
  if (quick && obs::dropped_span_count() != 0) {
    std::fprintf(stderr,
                 "bench_fig5_scaling: %llu spans dropped — span ring "
                 "overflow\n",
                 static_cast<unsigned long long>(obs::dropped_span_count()));
    return 1;
  }
  return 0;
}
