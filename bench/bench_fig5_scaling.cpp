// Paper Fig. 5: execution time of Algorithm 1 lines 3–11 (interpretation
// + splitting + reduction) vs. number of examples, one series per data
// set, with a constant number of signal types — run in BOTH execution
// modes over the same chunked .ivc input:
//
//   batch      zone-map-pruned scan materializes K_b, then the staged
//              extract → split → reduce pipeline runs over it;
//   streaming  the morsel executor fuses decode + preselect + interpret
//              + split per chunk, never materializing K_b or K_s.
//
// Protocol (matching paper Sec. 5.1 "Execution performance"): per data
// set, the trace prefix is increased step-wise; all signal types of the
// data set are interpreted; identical subsequent signal instances are
// removed as the reduction; one channel per signal type is analyzed
// (gateway dedup). Expect linear curves (O(n) row-wise interpretation)
// with matching throughput across modes, and a lower memory high-water
// mark for streaming. The streaming run of each step executes FIRST:
// ru_maxrss is a process-lifetime maximum, so the streaming rows record
// the peak before batch's K_b materialization has ever happened.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "colstore/columnar_reader.hpp"
#include "colstore/columnar_writer.hpp"
#include "core/pipeline.hpp"
#include "obs/span.hpp"
#include "simnet/datasets.hpp"
#include "tracefile/trace.hpp"

using namespace ivt;

namespace {

/// First `rows` records of `trace` (prefix subset, like replaying less
/// of the journey).
tracefile::Trace trace_prefix(const tracefile::Trace& trace,
                              std::size_t rows) {
  tracefile::Trace out;
  out.vehicle = trace.vehicle;
  out.journey = trace.journey;
  out.start_unix_ns = trace.start_unix_ns;
  rows = std::min(rows, trace.records.size());
  out.records.assign(trace.records.begin(),
                     trace.records.begin() +
                         static_cast<std::ptrdiff_t>(rows));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // --quick: CI-budget variant (smaller dataset, fewer steps) that still
  // exercises every stage and emits the same JSON artifacts.
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }
  const double scale = (quick ? 2e-3 : 2e-2) * bench::bench_scale();
  const std::size_t kSteps = quick ? 3 : 8;
  dataflow::Engine engine({.workers = bench::bench_workers(),
                           .task_overhead = std::chrono::microseconds(100)});
  bench::JsonLinesEmitter json("fig5_scaling");

  const char* tmp = std::getenv("TMPDIR");
  const std::string ivc_path =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/ivt_bench_fig5.ivc";

  std::printf("Fig. 5 reproduction — execution time after interpretation "
              "and reduction (Algorithm 1 lines 3-11)\n");
  std::printf("dataset scale %.4g, %zu workers, 100us simulated task "
              "dispatch overhead%s\n\n", scale, engine.workers(),
              quick ? " [quick]" : "");
  std::printf("%-8s %-10s %12s %12s %12s %14s %12s\n", "dataset", "exec",
              "kb_rows", "examples", "reduced", "time_ms", "peak_rss_mb");

  for (const simnet::DatasetSpec& spec :
       {simnet::syn_spec(), simnet::lig_spec(), simnet::sta_spec()}) {
    simnet::DatasetConfig config;
    config.scale = scale;
    config.seed = 42;
    const simnet::VehiclePlan plan = simnet::plan_vehicle(spec, config.seed);
    const simnet::Dataset ds = simnet::make_dataset(spec, config);

    core::PipelineConfig pconfig;
    pconfig.classifier.rate_threshold_hz = plan.recommended_rate_threshold_hz;
    const core::Pipeline pipeline(ds.catalog, pconfig);
    const std::size_t total_rows = ds.trace.size();

    for (std::size_t step = 1; step <= kSteps; ++step) {
      const std::size_t rows = total_rows * step / kSteps;
      colstore::save_trace_columnar(trace_prefix(ds.trace, rows), ivc_path,
                                    {.chunk_rows = 8192});
      const colstore::ColumnarReader reader(ivc_path);

      // Streaming first — see the header comment on ru_maxrss.
      for (const bool streaming : {true, false}) {
        bench::Stopwatch timer;
        const core::Pipeline::ReducedResult result =
            streaming
                ? pipeline.extract_and_reduce_streaming(engine, reader)
                : pipeline.extract_and_reduce(
                      engine, reader.scan(colstore::ScanPredicate{}, engine));
        const double ms = timer.seconds() * 1e3;
        const char* exec = streaming ? "streaming" : "batch";
        const std::uint64_t peak_rss = bench::peak_rss_bytes();
        std::printf("%-8s %-10s %12zu %12zu %12zu %14.2f %12.1f\n",
                    spec.name.c_str(), exec, rows, result.ks_rows,
                    result.reduced_rows, ms,
                    static_cast<double>(peak_rss) / (1024.0 * 1024.0));
        bench::JsonRecord record;
        record.add("bench", "fig5_scaling")
            .add("dataset", spec.name)
            .add("exec", exec)
            .add("quick", quick)
            .add("step", static_cast<std::uint64_t>(step))
            .add("kb_rows", static_cast<std::uint64_t>(rows))
            .add("examples", static_cast<std::uint64_t>(result.ks_rows))
            .add("reduced", static_cast<std::uint64_t>(result.reduced_rows))
            .add("time_ms", ms)
            .add("peak_rss_bytes", peak_rss);
        bench::add_robustness_fields(record,
                                     bench::read_robustness_counters());
        json.emit(record);
      }
    }
    std::puts("");
  }
  std::remove(ivc_path.c_str());
  const std::string metrics_path =
      bench::write_metrics_snapshot("fig5_scaling");
  std::printf("JSON trajectory: %s\nmetrics snapshot: %s\n", json.path().c_str(),
              metrics_path.c_str());
  std::printf(
      "Paper reference: linear growth in examples per data set (O(n)\n"
      "row-wise interpretation), fluctuations from cluster scheduling;\n"
      "e.g. 2.6M examples in 1324 s and 7.4M in 930 s on 10 nodes.\n");
  // Quick (CI) runs double as a span-ring capacity check: a drop means
  // the archived traces are incomplete, which the full run tolerates but
  // the CI lane must not.
  if (quick && obs::dropped_span_count() != 0) {
    std::fprintf(stderr,
                 "bench_fig5_scaling: %llu spans dropped — span ring "
                 "overflow\n",
                 static_cast<unsigned long long>(obs::dropped_span_count()));
    return 1;
  }
  return 0;
}
