// Ablation: the join-based interpretation design (paper Sec. 3.2).
//
// Compares three ways to get from K_pre to K_s on the same trace:
//  - join_fused:   hash-join U_comb then fused u1∘u2 row mapping (default)
//  - join_staged:  hash-join then two separate engine stages F_u1, F_u2
//                  (the literal Algorithm 1 lines 5-6)
//  - seq_lookup:   the in-house pattern — sequential scan, per-message
//                  signal lookup (single machine, no tabular ops)
#include <benchmark/benchmark.h>

#include "baseline/inhouse_tool.hpp"
#include "bench_util.hpp"
#include "core/interpret.hpp"
#include "core/urel.hpp"
#include "simnet/datasets.hpp"
#include "tracefile/trace.hpp"

namespace {

using namespace ivt;

struct Workload {
  simnet::Dataset dataset;
  dataflow::Table kb;
  dataflow::Table urel;

  explicit Workload(double scale) {
    simnet::DatasetConfig config;
    config.scale = scale;
    config.seed = 42;
    dataset = simnet::make_syn_dataset(config);
    kb = tracefile::to_kb_table(dataset.trace, 32);
    urel = core::make_urel_table(dataset.catalog, dataset.signal_names);
  }
};

Workload& workload() {
  static Workload w(2e-3 * bench::bench_scale());
  return w;
}

void BM_InterpretJoinFused(benchmark::State& state) {
  dataflow::Engine engine({.workers = bench::bench_workers()});
  core::InterpretOptions options;
  options.catalog = &workload().dataset.catalog;
  std::size_t rows = 0;
  for (auto _ : state) {
    const auto ks =
        core::extract_signals(engine, workload().kb, workload().urel, options);
    rows = ks.num_rows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["ks_rows"] = static_cast<double>(rows);
  state.counters["rows_per_s"] = benchmark::Counter(
      static_cast<double>(workload().kb.num_rows()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_InterpretJoinFused)->Unit(benchmark::kMillisecond);

void BM_InterpretJoinTwoStage(benchmark::State& state) {
  dataflow::Engine engine({.workers = bench::bench_workers()});
  core::InterpretOptions options;
  options.catalog = &workload().dataset.catalog;
  options.two_stage_interpretation = true;
  for (auto _ : state) {
    const auto ks =
        core::extract_signals(engine, workload().kb, workload().urel, options);
    benchmark::DoNotOptimize(ks.num_rows());
  }
}
BENCHMARK(BM_InterpretJoinTwoStage)->Unit(benchmark::kMillisecond);

void BM_SequentialLookup(benchmark::State& state) {
  for (auto _ : state) {
    baseline::InHouseTool tool(workload().dataset.catalog);
    const auto stats = tool.ingest_table(workload().kb);
    benchmark::DoNotOptimize(stats.instances_decoded);
  }
}
BENCHMARK(BM_SequentialLookup)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
