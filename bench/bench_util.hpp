// Shared helpers for the benchmark binaries.
#pragma once

#include <chrono>
#include <cstdlib>
#include <string>

namespace ivt::bench {

/// Wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Global workload multiplier: IVT_BENCH_SCALE (default 1.0) scales every
/// benchmark's data volume. The paper runs at ~10^9 rows; the default here
/// targets a laptop-minutes budget while preserving the curves' shapes.
inline double bench_scale() {
  if (const char* env = std::getenv("IVT_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 1.0;
}

/// Workers used by the "cluster" (the paper restricts to 10 executor
/// nodes; we default to the machine, overridable via IVT_BENCH_WORKERS).
inline std::size_t bench_workers() {
  if (const char* env = std::getenv("IVT_BENCH_WORKERS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 0;  // engine default = hardware concurrency
}

}  // namespace ivt::bench
