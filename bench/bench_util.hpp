// Shared helpers for the benchmark binaries.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/metrics.hpp"

namespace ivt::bench {

/// Wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Global workload multiplier: IVT_BENCH_SCALE (default 1.0) scales every
/// benchmark's data volume. The paper runs at ~10^9 rows; the default here
/// targets a laptop-minutes budget while preserving the curves' shapes.
inline double bench_scale() {
  if (const char* env = std::getenv("IVT_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 1.0;
}

/// Workers used by the "cluster" (the paper restricts to 10 executor
/// nodes; we default to the machine, overridable via IVT_BENCH_WORKERS).
inline std::size_t bench_workers() {
  if (const char* env = std::getenv("IVT_BENCH_WORKERS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 0;  // engine default = hardware concurrency
}

/// Normalizes a getrusage ru_maxrss value to bytes. macOS reports bytes;
/// Linux (and the BSDs) report KiB. Split out from peak_rss_bytes() so the
/// unit conversion is testable on every platform regardless of which
/// branch the host compiles.
inline std::uint64_t maxrss_to_bytes(std::uint64_t ru_maxrss,
                                     bool platform_reports_bytes) {
  return platform_reports_bytes ? ru_maxrss : ru_maxrss * 1024;
}

/// Peak resident set size of this process so far, in bytes (0 when the
/// platform offers no getrusage).
inline std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  constexpr bool kMaxRssIsBytes = true;
#else
  constexpr bool kMaxRssIsBytes = false;
#endif
  return maxrss_to_bytes(static_cast<std::uint64_t>(usage.ru_maxrss),
                         kMaxRssIsBytes);
#else
  return 0;
#endif
}

/// Directory benchmark artifacts land in: $IVT_BENCH_JSON_DIR (with a
/// trailing '/' appended) when set, else the current directory.
inline std::string bench_json_dir() {
  if (const char* env = std::getenv("IVT_BENCH_JSON_DIR")) {
    std::string dir = env;
    if (!dir.empty() && dir.back() != '/') dir += '/';
    return dir;
  }
  return "";
}

/// Dumps the current obs metrics registry to METRICS_<name>.json next to
/// the BENCH_*.json trajectory (honors IVT_BENCH_JSON_DIR), so a benchmark
/// run leaves its internal counters (pool, colstore, pipeline stages)
/// alongside the wall-clock numbers. A no-op registry (IVT_OBS=OFF)
/// produces an empty-but-valid snapshot.
inline std::string write_metrics_snapshot(const std::string& bench_name) {
  const std::string path = bench_json_dir() + "METRICS_" + bench_name + ".json";
  obs::write_metrics_json(path);
  return path;
}

/// Robustness counters of the current process, read from the obs metrics
/// registry: transient-task retries, quarantined .ivc chunks, dropped
/// pipeline sequences and total recovered errors. All zero on a clean run
/// and under IVT_OBS=OFF (the registry is then a no-op), so emitting them
/// into every benchmark row costs one registry snapshot and nothing else.
struct RobustnessCounters {
  std::uint64_t task_retries = 0;
  std::uint64_t chunks_quarantined = 0;
  std::uint64_t sequences_dropped = 0;
  std::uint64_t errors_total = 0;
  // Static-analysis counters, injected by CI via environment variables
  // (the lint/TSan lanes run before the bench step and export their
  // summaries): how trustworthy was the tree this number was measured on?
  std::uint64_t lint_findings = 0;   ///< $IVT_LINT_FINDINGS
  std::uint64_t lint_exempted = 0;   ///< $IVT_LINT_EXEMPTED
  std::uint64_t tsan_races = 0;      ///< $IVT_TSAN_RACES
  // Whole-program analyzer counters (ivt-analyze --json): findings after
  // exemptions, the lock-acquisition graph size backing lock_ranks.inc,
  // and layering back-edges against tools/ivt-layers.conf.
  std::uint64_t analyzer_findings = 0;   ///< $IVT_ANALYZER_FINDINGS
  std::uint64_t lock_graph_nodes = 0;    ///< $IVT_LOCK_GRAPH_NODES
  std::uint64_t layer_violations = 0;    ///< $IVT_LAYER_VIOLATIONS
};

inline std::uint64_t env_counter_or(const char* name, std::uint64_t fallback) {
  if (const char* env = std::getenv(name)) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != nullptr && end != env && *end == '\0') return v;
  }
  return fallback;
}

inline RobustnessCounters read_robustness_counters() {
  const obs::MetricsSnapshot snapshot = obs::Registry::instance().snapshot();
  RobustnessCounters c;
  c.task_retries = snapshot.counter_or("engine.task_retries", 0);
  c.chunks_quarantined =
      snapshot.counter_or("colstore.chunks_quarantined", 0);
  c.sequences_dropped = snapshot.counter_or("pipeline.sequences_dropped", 0);
  c.errors_total = snapshot.counter_or("errors.total", 0);
  c.lint_findings = env_counter_or("IVT_LINT_FINDINGS", 0);
  c.lint_exempted = env_counter_or("IVT_LINT_EXEMPTED", 0);
  c.tsan_races = env_counter_or("IVT_TSAN_RACES", 0);
  c.analyzer_findings = env_counter_or("IVT_ANALYZER_FINDINGS", 0);
  c.lock_graph_nodes = env_counter_or("IVT_LOCK_GRAPH_NODES", 0);
  c.layer_violations = env_counter_or("IVT_LAYER_VIOLATIONS", 0);
  return c;
}

/// One JSON-lines benchmark record: ordered key -> rendered-JSON-value
/// pairs, so benchmark results land in BENCH_*.json machine-readably.
class JsonRecord {
 public:
  JsonRecord& add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, '"' + escape(value) + '"');
    return *this;
  }
  JsonRecord& add(const std::string& key, const char* value) {
    return add(key, std::string(value));
  }
  JsonRecord& add(const std::string& key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
    return *this;
  }
  JsonRecord& add(const std::string& key, std::int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonRecord& add(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonRecord& add(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
    return *this;
  }

  [[nodiscard]] std::string to_line() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += '"' + escape(fields_[i].first) + "\": " + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Folds a histogram's p50/p90/p99 (obs::Histogram::Data::quantile) into a
/// bench record as <prefix>_p50/_p90/_p99 plus <prefix>_count, so every
/// latency histogram a benchmark touches lands in BENCH_*.json with its
/// tail, not just its mean. Fields are emitted even for an empty
/// histogram (all zeros) to keep record shapes stable across runs.
inline JsonRecord& add_histogram_quantiles(JsonRecord& record,
                                           const std::string& prefix,
                                           const obs::Histogram::Data& hist) {
  return record.add(prefix + "_count", hist.count)
      .add(prefix + "_p50", hist.quantile(0.50))
      .add(prefix + "_p90", hist.quantile(0.90))
      .add(prefix + "_p99", hist.quantile(0.99));
}

/// Folds robustness counters into a bench record (cumulative process
/// totals at emit time).
inline JsonRecord& add_robustness_fields(JsonRecord& record,
                                         const RobustnessCounters& c) {
  return record.add("task_retries", c.task_retries)
      .add("chunks_quarantined", c.chunks_quarantined)
      .add("sequences_dropped", c.sequences_dropped)
      .add("errors_total", c.errors_total)
      .add("lint_findings", c.lint_findings)
      .add("lint_exempted", c.lint_exempted)
      .add("tsan_races", c.tsan_races)
      .add("analyzer_findings", c.analyzer_findings)
      .add("lock_graph_nodes", c.lock_graph_nodes)
      .add("layer_violations", c.layer_violations);
}

/// Appends one JSON object per emit() to BENCH_<name>.json (or to
/// $IVT_BENCH_JSON_DIR/BENCH_<name>.json when the env var is set), so a
/// benchmark run leaves a machine-readable trajectory next to the
/// human-readable console output. Each process run appends; delete the
/// file to reset a trajectory.
class JsonLinesEmitter {
 public:
  explicit JsonLinesEmitter(const std::string& bench_name)
      : path_(bench_json_dir() + "BENCH_" + bench_name + ".json"),
        out_(path_, std::ios::app) {}

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool ok() const { return out_.good(); }

  void emit(const JsonRecord& record) {
    out_ << record.to_line() << '\n';
    out_.flush();
  }

 private:
  std::string path_;
  std::ofstream out_;
};

}  // namespace ivt::bench
