// Paper Table 6: signal extraction times for massive traces —
// the proposed distributed pipeline vs. the in-house sequential tool.
//
// Protocol: journeys ∈ {1, 7, 12} of the same vehicle; extract 9 vs. 89
// signals. For the proposed approach the measured time is interpretation
// followed by writing the result to the database (here: an in-memory CSV
// sink — symmetric with the in-house tool, whose ingest also materializes
// its signal store in RAM); the in-house tool's extraction time is its
// ingest (it interprets everything on ingest, so its time is independent
// of the number of requested signals).
//
// Expected shape (paper): in-house time constant in #signals and linear
// in journeys; proposed much faster for few signals (5.7x at 12
// journeys/9 signals) and still ~1.8x faster for 89 signals.
#include <cstdio>
#include <sstream>
#include <vector>

#include "baseline/inhouse_tool.hpp"
#include "bench_util.hpp"
#include "core/interpret.hpp"
#include "core/urel.hpp"
#include "dataflow/csv.hpp"
#include "simnet/datasets.hpp"
#include "tracefile/trace.hpp"

using namespace ivt;

int main() {
  const double scale = 2e-3 * bench::bench_scale();
  const std::size_t max_journeys = 12;
  dataflow::Engine engine({.workers = bench::bench_workers()});

  std::printf("Table 6 reproduction — signal extraction times "
              "(journey scale %.4g, %zu workers)\n\n", scale,
              engine.workers());

  // One LIG-class vehicle (180 documented signals), 12 journeys.
  simnet::DatasetConfig config;
  config.scale = scale;
  config.seed = 42;
  const simnet::Fleet fleet =
      simnet::make_fleet(max_journeys, simnet::lig_spec(), config);

  // Pre-build the K_b tables (loading is not part of either measurement).
  std::vector<dataflow::Table> kbs;
  std::size_t rows_per_journey = 0;
  for (const tracefile::Trace& journey : fleet.journeys) {
    kbs.push_back(tracefile::to_kb_table(journey, 32));
    rows_per_journey = kbs.back().num_rows();
  }

  const std::vector<std::string> signals9(fleet.signal_names.begin(),
                                          fleet.signal_names.begin() + 9);
  const std::vector<std::string> signals89(fleet.signal_names.begin(),
                                           fleet.signal_names.begin() + 89);

  std::printf("%-9s %12s %14s %10s %16s %16s %8s\n", "journeys", "trace_rows",
              "extracted_rows", "#signals", "proposed_ms", "inhouse_ms",
              "speedup");

  for (std::size_t journeys : {std::size_t{1}, std::size_t{7},
                               std::size_t{12}}) {
    // In-house: ingest all journeys once (independent of #signals).
    baseline::InHouseTool tool(fleet.catalog);
    bench::Stopwatch inhouse_timer;
    std::size_t scanned = 0;
    for (std::size_t j = 0; j < journeys; ++j) {
      const baseline::IngestStats stats = tool.ingest_table(kbs[j]);
      scanned += stats.records_scanned;
    }
    const double inhouse_ms = inhouse_timer.seconds() * 1e3;
    tool.clear();

    for (const auto* signals : {&signals9, &signals89}) {
      const auto urel = core::make_urel_table(fleet.catalog, *signals);
      core::InterpretOptions options;
      options.catalog = &fleet.catalog;

      bench::Stopwatch proposed_timer;
      std::size_t extracted = 0;
      std::ostringstream sink;
      for (std::size_t j = 0; j < journeys; ++j) {
        const auto ks = core::extract_signals(engine, kbs[j], urel, options);
        extracted += ks.num_rows();
        dataflow::write_csv(ks, sink, {.separator = ',', .header = j == 0});
      }
      const double proposed_ms = proposed_timer.seconds() * 1e3;
      // Keep the sink alive until after timing (it is the "database").
      if (sink.tellp() <= 0) {
        std::fprintf(stderr, "warning: empty extraction sink\n");
      }

      std::printf("%-9zu %12zu %14zu %10zu %16.2f %16.2f %7.2fx\n", journeys,
                  scanned, extracted, signals->size(), proposed_ms,
                  inhouse_ms, inhouse_ms / proposed_ms);
    }
  }

  std::printf(
      "\nPaper reference (10^9-row traces, 10 Spark nodes vs. HP Z840):\n"
      "  1 journey : 9 sig  9.58 min vs 41.66 min | 89 sig 168.05 vs 41.66\n"
      "  7 journeys: 9 sig 62.00 min vs 372.88    | 89 sig 183.25 vs 372.88\n"
      "  12 journeys: 9 sig 87.62 min vs 504.27 (5.7x) | 89 sig 269.65 vs\n"
      "  504.27 (1.8x). In-house time is constant in #signals; proposed\n"
      "  grows with #signals but wins increasingly with journeys.\n");
  return 0;
}
