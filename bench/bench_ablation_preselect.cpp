// Ablation: early preselection (paper Sec. 3.1 — "Interpretation cost is
// kept low as relevant messages are filtered prior to interpretation").
//
// Extracts a small signal subset from a LIG-class trace with and without
// the preselection filter, in both interpretation modes:
//  - fused (default): the join probe itself skips irrelevant rows, so the
//    σ-filter is largely subsumed — expect parity;
//  - literal (materialized K_join, Algorithm 1 lines 4-6): without the
//    σ-filter every K_b row is shuffled through the materializing join,
//    which is exactly the cost the paper's preselection avoids.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/interpret.hpp"
#include "core/urel.hpp"
#include "simnet/datasets.hpp"
#include "tracefile/trace.hpp"

namespace {

using namespace ivt;

struct Workload {
  simnet::Dataset dataset;
  dataflow::Table kb;

  Workload() {
    simnet::DatasetConfig config;
    config.scale = 1e-3 * bench::bench_scale();
    config.seed = 42;
    dataset = simnet::make_lig_dataset(config);
    kb = tracefile::to_kb_table(dataset.trace, 32);
  }

  dataflow::Table urel_subset(std::size_t n) const {
    std::vector<std::string> names(dataset.signal_names.begin(),
                                   dataset.signal_names.begin() +
                                       static_cast<std::ptrdiff_t>(n));
    return core::make_urel_table(dataset.catalog, names);
  }
};

Workload& workload() {
  static Workload w;
  return w;
}

void BM_WithPreselection(benchmark::State& state) {
  dataflow::Engine engine({.workers = bench::bench_workers()});
  const auto urel =
      workload().urel_subset(static_cast<std::size_t>(state.range(0)));
  core::InterpretOptions options;
  options.catalog = &workload().dataset.catalog;
  std::size_t rows = 0;
  for (auto _ : state) {
    const auto kpre = core::preselect(engine, workload().kb, urel);
    const auto ks = core::interpret(engine, kpre, urel, options);
    rows = ks.num_rows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["ks_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_WithPreselection)->Arg(5)->Arg(20)->Arg(90)
    ->Unit(benchmark::kMillisecond);

void BM_WithoutPreselection(benchmark::State& state) {
  dataflow::Engine engine({.workers = bench::bench_workers()});
  const auto urel =
      workload().urel_subset(static_cast<std::size_t>(state.range(0)));
  core::InterpretOptions options;
  options.catalog = &workload().dataset.catalog;
  std::size_t rows = 0;
  for (auto _ : state) {
    // Join directly against the full K_b — no σ-filter first.
    const auto ks = core::interpret(engine, workload().kb, urel, options);
    rows = ks.num_rows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["ks_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_WithoutPreselection)->Arg(5)->Arg(20)->Arg(90)
    ->Unit(benchmark::kMillisecond);

void BM_LiteralWithPreselection(benchmark::State& state) {
  dataflow::Engine engine({.workers = bench::bench_workers()});
  const auto urel =
      workload().urel_subset(static_cast<std::size_t>(state.range(0)));
  core::InterpretOptions options;
  options.catalog = &workload().dataset.catalog;
  options.two_stage_interpretation = true;
  for (auto _ : state) {
    const auto kpre = core::preselect(engine, workload().kb, urel);
    const auto ks = core::interpret(engine, kpre, urel, options);
    benchmark::DoNotOptimize(ks.num_rows());
  }
}
BENCHMARK(BM_LiteralWithPreselection)->Arg(5)->Arg(90)
    ->Unit(benchmark::kMillisecond);

void BM_LiteralWithoutPreselection(benchmark::State& state) {
  dataflow::Engine engine({.workers = bench::bench_workers()});
  const auto urel =
      workload().urel_subset(static_cast<std::size_t>(state.range(0)));
  core::InterpretOptions options;
  options.catalog = &workload().dataset.catalog;
  options.two_stage_interpretation = true;
  for (auto _ : state) {
    const auto ks = core::interpret(engine, workload().kb, urel, options);
    benchmark::DoNotOptimize(ks.num_rows());
  }
}
BENCHMARK(BM_LiteralWithoutPreselection)->Arg(5)->Arg(90)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
