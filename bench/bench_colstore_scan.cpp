// Columnar-store ablation: preselection cost on the row-oriented .ivt
// container (full streaming decode of every record, then σ-filter) versus
// the chunked .ivc container (zone-map chunk pruning + row filtering
// during decode, payloads materialized only for surviving rows).
//
// Selectivity is swept as a percentage of distinct message ids requested;
// the paper's preselection (Algorithm 1 lines 2-3) typically requests a
// single domain's messages, i.e. low selectivity, where the columnar scan
// touches a fraction of the bytes the .ivt path decodes.
//
// Each benchmark also appends a JSON line to BENCH_colstore_scan.json
// (IVT_BENCH_JSON_DIR overrides the directory) with timing, row counts
// and peak RSS.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "colstore/chunk_cursor.hpp"
#include "colstore/columnar_reader.hpp"
#include "colstore/columnar_writer.hpp"
#include "dataflow/ops.hpp"
#include "simnet/datasets.hpp"
#include "tracefile/binary_format.hpp"
#include "tracefile/trace.hpp"

namespace {

using namespace ivt;

/// LIG-class journey written once to both containers in a temp dir.
struct Workload {
  std::string ivt_path;
  std::string ivc_path;
  std::vector<std::int64_t> message_ids;  ///< distinct, ascending
  std::size_t num_records = 0;

  Workload() {
    simnet::DatasetConfig config;
    config.scale = 1e-3 * bench::bench_scale();
    config.seed = 42;
    const simnet::Dataset dataset = simnet::make_lig_dataset(config);
    num_records = dataset.trace.size();

    const char* tmp = std::getenv("TMPDIR");
    const std::string dir = tmp != nullptr ? tmp : "/tmp";
    ivt_path = dir + "/ivt_bench_colstore.ivt";
    ivc_path = dir + "/ivt_bench_colstore.ivc";
    tracefile::save_trace(dataset.trace, ivt_path);
    colstore::save_trace_columnar(dataset.trace, ivc_path,
                                  {.chunk_rows = 8192});

    std::set<std::int64_t> ids;
    for (const tracefile::TraceRecord& rec : dataset.trace.records) {
      ids.insert(rec.message_id);
    }
    message_ids.assign(ids.begin(), ids.end());
  }

  /// The first `percent`% of distinct ids (at least one).
  [[nodiscard]] std::vector<std::int64_t> id_subset(
      std::int64_t percent) const {
    const std::size_t n = std::max<std::size_t>(
        1, message_ids.size() * static_cast<std::size_t>(percent) / 100);
    return {message_ids.begin(),
            message_ids.begin() + static_cast<std::ptrdiff_t>(n)};
  }
};

Workload& workload() {
  static Workload w;
  return w;
}

void emit_result(const std::string& path_kind, std::int64_t percent,
                 double seconds_per_iter, std::size_t rows_out,
                 std::size_t rows_in) {
  static bench::JsonLinesEmitter emitter("colstore_scan");
  bench::JsonRecord record;
  record.add("bench", "colstore_scan")
      .add("path", path_kind)
      .add("selectivity_pct", percent)
      .add("seconds", seconds_per_iter)
      .add("rows_in", static_cast<std::uint64_t>(rows_in))
      .add("rows_out", static_cast<std::uint64_t>(rows_out))
      .add("scale", bench::bench_scale())
      .add("peak_rss_bytes", bench::peak_rss_bytes());
  emitter.emit(record);
}

/// Baseline: the only path the row container supports — stream-decode
/// every record, build K_b, then σ-filter on the id set.
void BM_IvtFullDecodeScan(benchmark::State& state) {
  const std::int64_t percent = state.range(0);
  const std::vector<std::int64_t> ids = workload().id_subset(percent);
  const std::set<std::int64_t> id_set(ids.begin(), ids.end());
  std::size_t rows = 0;
  bench::Stopwatch watch;
  for (auto _ : state) {
    const tracefile::Trace trace = tracefile::load_trace(workload().ivt_path);
    std::size_t kept = 0;
    for (const tracefile::TraceRecord& rec : trace.records) {
      kept += id_set.contains(rec.message_id) ? 1 : 0;
    }
    rows = kept;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows_out"] = static_cast<double>(rows);
  emit_result("ivt_full_decode", percent,
              watch.seconds() / static_cast<double>(state.iterations()),
              rows, workload().num_records);
}
BENCHMARK(BM_IvtFullDecodeScan)->Arg(5)->Arg(10)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

/// Columnar path: zone-map pruning + pushed-down row filter; only
/// surviving rows are materialized into the K_b table.
void BM_IvcPrunedScan(benchmark::State& state) {
  const std::int64_t percent = state.range(0);
  colstore::ScanPredicate pred;
  pred.message_ids = workload().id_subset(percent);
  const colstore::ColumnarReader reader(workload().ivc_path);
  std::size_t rows = 0;
  colstore::ScanStats stats;
  bench::Stopwatch watch;
  for (auto _ : state) {
    const dataflow::Table kpre = reader.scan(pred, &stats);
    rows = kpre.num_rows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows_out"] = static_cast<double>(rows);
  state.counters["chunks_scanned"] =
      static_cast<double>(stats.chunks_scanned);
  emit_result("ivc_pruned_scan", percent,
              watch.seconds() / static_cast<double>(state.iterations()),
              rows, workload().num_records);
}
BENCHMARK(BM_IvcPrunedScan)->Arg(5)->Arg(10)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

/// Decode-free run-level path (--scan compressed): the same pruning +
/// pushdown as BM_IvcPrunedScan, but surviving chunks are evaluated on
/// their key_idx RLE runs — rejected runs advance the column cursors
/// without materializing a row, and the bus/message-id blocks are never
/// decoded at all. Output is byte-identical to BM_IvcPrunedScan; the
/// delta between the two rows at equal selectivity is the decode cost
/// the compressed path skips.
void BM_IvcCompressedScan(benchmark::State& state) {
  const std::int64_t percent = state.range(0);
  colstore::ScanPredicate pred;
  pred.message_ids = workload().id_subset(percent);
  const colstore::ColumnarReader reader(workload().ivc_path);
  colstore::ScanOptions options;
  options.mode = colstore::ScanMode::Compressed;
  std::size_t rows = 0;
  colstore::ScanStats stats;
  bench::Stopwatch watch;
  for (auto _ : state) {
    const dataflow::Table kpre = reader.scan(pred, options, &stats);
    rows = kpre.num_rows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows_out"] = static_cast<double>(rows);
  state.counters["runs_pruned"] = static_cast<double>(stats.runs_pruned);
  state.counters["runs_accepted"] =
      static_cast<double>(stats.runs_accepted);
  emit_result("ivc_compressed_scan", percent,
              watch.seconds() / static_cast<double>(state.iterations()),
              rows, workload().num_records);
}
BENCHMARK(BM_IvcCompressedScan)->Arg(5)->Arg(10)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

/// Streaming morsel path: the same pruning + pushdown as BM_IvcPrunedScan
/// but decoding one chunk at a time through ChunkCursor — the access
/// pattern of --exec=streaming, where at most one morsel's rows are
/// resident per worker instead of the whole K_pre table.
void BM_IvcCursorStream(benchmark::State& state) {
  const std::int64_t percent = state.range(0);
  colstore::ScanPredicate pred;
  pred.message_ids = workload().id_subset(percent);
  const colstore::ColumnarReader reader(workload().ivc_path);
  std::size_t rows = 0;
  std::size_t peak_morsel_rows = 0;
  bench::Stopwatch watch;
  for (auto _ : state) {
    const colstore::ChunkCursor cursor = reader.cursor(pred);
    std::size_t kept = 0;
    std::size_t peak = 0;
    for (std::size_t k = 0; k < cursor.num_morsels(); ++k) {
      const dataflow::Partition morsel = cursor.decode(k);
      kept += morsel.num_rows();
      peak = std::max(peak, morsel.num_rows());
      benchmark::DoNotOptimize(morsel);
    }  // morsel freed here: working set stays one chunk deep
    rows = kept;
    peak_morsel_rows = peak;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows_out"] = static_cast<double>(rows);
  state.counters["peak_morsel_rows"] =
      static_cast<double>(peak_morsel_rows);
  emit_result("ivc_cursor_stream", percent,
              watch.seconds() / static_cast<double>(state.iterations()),
              rows, workload().num_records);
}
BENCHMARK(BM_IvcCursorStream)->Arg(5)->Arg(10)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

/// The compressed cursor path — what --exec streaming --scan compressed
/// runs per morsel, including the EmittedRun bookkeeping the dictionary
/// join consumes.
void BM_IvcCursorStreamCompressed(benchmark::State& state) {
  const std::int64_t percent = state.range(0);
  colstore::ScanPredicate pred;
  pred.message_ids = workload().id_subset(percent);
  const colstore::ColumnarReader reader(workload().ivc_path);
  colstore::ScanOptions options;
  options.mode = colstore::ScanMode::Compressed;
  std::size_t rows = 0;
  bench::Stopwatch watch;
  for (auto _ : state) {
    const colstore::ChunkCursor cursor = reader.cursor(pred, options);
    std::size_t kept = 0;
    std::vector<colstore::EmittedRun> runs;
    for (std::size_t k = 0; k < cursor.num_morsels(); ++k) {
      const dataflow::Partition morsel = cursor.decode(k, runs);
      kept += morsel.num_rows();
      benchmark::DoNotOptimize(morsel);
    }
    rows = kept;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows_out"] = static_cast<double>(rows);
  emit_result("ivc_cursor_stream_compressed", percent,
              watch.seconds() / static_cast<double>(state.iterations()),
              rows, workload().num_records);
}
BENCHMARK(BM_IvcCursorStreamCompressed)->Arg(5)->Arg(10)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

/// Columnar path including file open + footer parse each iteration (the
/// cold-start cost a per-journey batch job pays).
void BM_IvcOpenAndScan(benchmark::State& state) {
  const std::int64_t percent = state.range(0);
  colstore::ScanPredicate pred;
  pred.message_ids = workload().id_subset(percent);
  std::size_t rows = 0;
  bench::Stopwatch watch;
  for (auto _ : state) {
    const colstore::ColumnarReader reader(workload().ivc_path);
    const dataflow::Table kpre = reader.scan(pred);
    rows = kpre.num_rows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows_out"] = static_cast<double>(rows);
  emit_result("ivc_open_and_scan", percent,
              watch.seconds() / static_cast<double>(state.iterations()),
              rows, workload().num_records);
}
BENCHMARK(BM_IvcOpenAndScan)->Arg(5)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMillisecond);

/// Time-windowed scan: zone maps on t_ns prune chunks outside the window
/// entirely (time-ordered traces give tight per-chunk time ranges).
void BM_IvcTimeWindowScan(benchmark::State& state) {
  const colstore::ColumnarReader reader(workload().ivc_path);
  // Middle 10% of the journey.
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  for (const colstore::ChunkInfo& c : reader.chunks()) {
    hi = std::max(hi, c.max_t_ns);
    lo = std::min(lo, c.min_t_ns);
  }
  const std::int64_t span = hi - lo;
  colstore::ScanPredicate pred;
  pred.has_time_range = true;
  pred.min_t_ns = lo + span * 45 / 100;
  pred.max_t_ns = lo + span * 55 / 100;
  std::size_t rows = 0;
  colstore::ScanStats stats;
  bench::Stopwatch watch;
  for (auto _ : state) {
    const dataflow::Table slice = reader.scan(pred, &stats);
    rows = slice.num_rows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows_out"] = static_cast<double>(rows);
  state.counters["chunks_scanned"] =
      static_cast<double>(stats.chunks_scanned);
  state.counters["chunks_total"] = static_cast<double>(stats.chunks_total);
  emit_result("ivc_time_window", 10,
              watch.seconds() / static_cast<double>(state.iterations()),
              rows, workload().num_records);
}
BENCHMARK(BM_IvcTimeWindowScan)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
