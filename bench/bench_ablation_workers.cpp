// Ablation: worker scaling of the distributed engine (the paper restricts
// its cluster to 10 nodes, "yielding a lower bound of execution
// performance"). Runs Algorithm 1 lines 3-11 on a fixed LIG workload with
// 1..N workers.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "simnet/datasets.hpp"
#include "tracefile/trace.hpp"

namespace {

using namespace ivt;

struct Workload {
  simnet::Dataset dataset;
  simnet::VehiclePlan plan;
  dataflow::Table kb;

  Workload()
      : plan(simnet::plan_vehicle(simnet::lig_spec(), 42)) {
    simnet::DatasetConfig config;
    config.scale = 2e-3 * bench::bench_scale();
    config.seed = 42;
    dataset = simnet::make_lig_dataset(config);
    kb = tracefile::to_kb_table(dataset.trace, 64);
  }
};

Workload& workload() {
  static Workload w;
  return w;
}

void BM_PipelineWorkers(benchmark::State& state) {
  dataflow::Engine engine(
      {.workers = static_cast<std::size_t>(state.range(0))});
  core::PipelineConfig config;
  config.classifier.rate_threshold_hz =
      workload().plan.recommended_rate_threshold_hz;
  const core::Pipeline pipeline(workload().dataset.catalog, config);
  for (auto _ : state) {
    const auto result = pipeline.extract_and_reduce(engine, workload().kb);
    benchmark::DoNotOptimize(result.reduced_rows);
  }
  state.counters["kb_rows"] = static_cast<double>(workload().kb.num_rows());
}
BENCHMARK(BM_PipelineWorkers)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
