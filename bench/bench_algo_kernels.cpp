// Micro-benchmarks of the per-sequence kernels used by the processing
// branches: SWAB segmentation, SAX symbolization, outlier detection and
// smoothing. (The paper defers these to their original publications; the
// kernels must stay cheap relative to interpretation.)
#include <benchmark/benchmark.h>

#include <cmath>
#include <random>
#include <vector>

#include "algo/outliers.hpp"
#include "algo/sax.hpp"
#include "algo/smoothing.hpp"
#include "algo/swab.hpp"

namespace {

using namespace ivt::algo;

std::vector<double> noisy_sine(std::size_t n) {
  std::vector<double> xs;
  xs.reserve(n);
  std::mt19937_64 rng(7);
  std::normal_distribution<double> noise(0.0, 0.05);
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(std::sin(static_cast<double>(i) * 0.02) + noise(rng));
  }
  return xs;
}

void BM_SwabSegment(benchmark::State& state) {
  const auto xs = noisy_sine(static_cast<std::size_t>(state.range(0)));
  SegmentationConfig config;
  config.max_error = 0.5;
  config.buffer_size = 120;
  for (auto _ : state) {
    benchmark::DoNotOptimize(swab_segment(xs, config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SwabSegment)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_BottomUpSegment(benchmark::State& state) {
  const auto xs = noisy_sine(static_cast<std::size_t>(state.range(0)));
  std::vector<double> ts(xs.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    ts[i] = static_cast<double>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bottom_up_segment(ts, xs, 0.5));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BottomUpSegment)->Arg(1000)->Arg(4000);

void BM_SaxWord(benchmark::State& state) {
  const auto xs = noisy_sine(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sax_word(xs, 32, 5));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SaxWord)->Arg(1000)->Arg(100000);

void BM_OutliersHampel(benchmark::State& state) {
  const auto xs = noisy_sine(static_cast<std::size_t>(state.range(0)));
  OutlierConfig config;
  config.method = OutlierMethod::Hampel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detect_outliers(xs, config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OutliersHampel)->Arg(1000)->Arg(10000);

void BM_OutliersZScore(benchmark::State& state) {
  const auto xs = noisy_sine(static_cast<std::size_t>(state.range(0)));
  OutlierConfig config;
  config.method = OutlierMethod::ZScore;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detect_outliers(xs, config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OutliersZScore)->Arg(1000)->Arg(100000);

void BM_MovingAverage(benchmark::State& state) {
  const auto xs = noisy_sine(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(moving_average(xs, 2));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MovingAverage)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
