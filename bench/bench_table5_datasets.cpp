// Paper Table 5: statistics of the three data sets (SYN / LIG / STA).
//
// Regenerates the table from the simulated data sets: signal-type counts,
// the α/β/γ split as *measured by the classifier on the actual traces*,
// the number of examples (extracted signal instances) and the mean number
// of signal types per message.
//
// Paper values (20 h recording):
//              SYN         LIG         STA
//   types      13          180         78
//   α          6           27          6
//   β          4           71          1
//   γ          3           82          71
//   examples   13,197,983  12,306,327  4,807,891
//   ∅ sig/msg  1.47        5.11        3.66
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "simnet/datasets.hpp"
#include "tracefile/trace.hpp"

using namespace ivt;

int main() {
  const double scale = 2e-3 * bench::bench_scale();
  std::printf("Table 5 reproduction — dataset statistics (scale %.4g of the "
              "paper's 20 h recording)\n\n", scale);
  std::printf("%-28s %12s %12s %12s\n", "", "SYN", "LIG", "STA");

  struct Row {
    std::size_t types = 0;
    std::size_t alpha = 0, beta = 0, gamma = 0;
    std::size_t examples = 0;
    double sig_per_msg = 0.0;
    double scaled_target = 0.0;
  };
  std::map<std::string, Row> rows;

  dataflow::Engine engine({.workers = bench::bench_workers()});
  for (const simnet::DatasetSpec& spec :
       {simnet::syn_spec(), simnet::lig_spec(), simnet::sta_spec()}) {
    simnet::DatasetConfig config;
    config.scale = scale;
    config.seed = 42;
    const simnet::VehiclePlan plan = simnet::plan_vehicle(spec, config.seed);
    const simnet::Dataset ds = simnet::make_dataset(spec, config);

    core::PipelineConfig pconfig;
    pconfig.classifier.rate_threshold_hz = plan.recommended_rate_threshold_hz;
    pconfig.build_state = false;
    const core::Pipeline pipeline(ds.catalog, pconfig);
    const auto kb = tracefile::to_kb_table(ds.trace, 32);
    const core::PipelineResult result = pipeline.run(engine, kb);

    Row row;
    row.types = ds.catalog.num_signals();
    for (const core::SequenceReport& report : result.sequences) {
      switch (report.classification.branch) {
        case core::Branch::Alpha:
          ++row.alpha;
          break;
        case core::Branch::Beta:
          ++row.beta;
          break;
        case core::Branch::Gamma:
          ++row.gamma;
          break;
      }
    }
    row.examples = result.ks_rows;
    row.scaled_target = static_cast<double>(spec.target_examples) * scale;
    // ∅ signal types per message over the catalog.
    row.sig_per_msg = static_cast<double>(ds.catalog.num_signals()) /
                      static_cast<double>(ds.catalog.num_messages());
    rows[spec.name] = row;
  }

  auto print_sizet = [&](const char* label, auto getter) {
    std::printf("%-28s %12zu %12zu %12zu\n", label, getter(rows["SYN"]),
                getter(rows["LIG"]), getter(rows["STA"]));
  };
  auto print_double = [&](const char* label, auto getter) {
    std::printf("%-28s %12.2f %12.2f %12.2f\n", label, getter(rows["SYN"]),
                getter(rows["LIG"]), getter(rows["STA"]));
  };
  print_sizet("# signal types", [](const Row& r) { return r.types; });
  print_sizet("# signal types - alpha", [](const Row& r) { return r.alpha; });
  print_sizet("# signal types - beta", [](const Row& r) { return r.beta; });
  print_sizet("# signal types - gamma", [](const Row& r) { return r.gamma; });
  print_sizet("# examples (measured)",
              [](const Row& r) { return r.examples; });
  print_double("# examples (paper x scale)",
               [](const Row& r) { return r.scaled_target; });
  print_double("avg signal types per msg",
               [](const Row& r) { return r.sig_per_msg; });

  std::printf(
      "\nPaper reference (unscaled): types 13/180/78, alpha 6/27/6,\n"
      "beta 4/71/1, gamma 3/82/71, examples 13.2M/12.3M/4.8M,\n"
      "sig/msg 1.47/5.11/3.66.\n");
  return 0;
}
