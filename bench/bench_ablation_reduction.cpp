// Ablation: the constraint reduction (paper Sec. 4.1 / DESIGN.md).
//
// The paper argues trace data is "highly redundant and exploitable for
// lossless reduction" and that "early reduction is required". This bench
// quantifies it on a LIG-class trace:
//   - end-to-end pipeline time with and without the constraint set C
//   - output (R_out) size with and without reduction
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "simnet/datasets.hpp"
#include "tracefile/trace.hpp"

namespace {

using namespace ivt;

struct Workload {
  simnet::Dataset dataset;
  simnet::VehiclePlan plan;
  dataflow::Table kb;

  Workload() : plan(simnet::plan_vehicle(simnet::lig_spec(), 42)) {
    simnet::DatasetConfig config;
    config.scale = 2e-3 * bench::bench_scale();
    config.seed = 42;
    dataset = simnet::make_lig_dataset(config);
    kb = tracefile::to_kb_table(dataset.trace, 32);
  }
};

Workload& workload() {
  static Workload w;
  return w;
}

core::PipelineConfig base_config(bool with_reduction) {
  core::PipelineConfig config;
  config.classifier.rate_threshold_hz =
      workload().plan.recommended_rate_threshold_hz;
  config.build_state = false;
  if (!with_reduction) config.constraints.clear();
  return config;
}

void BM_PipelineWithReduction(benchmark::State& state) {
  dataflow::Engine engine({.workers = bench::bench_workers()});
  const core::Pipeline pipeline(workload().dataset.catalog,
                                base_config(true));
  std::size_t krep = 0;
  std::size_t reduced = 0;
  std::size_t ks = 0;
  for (auto _ : state) {
    const auto result = pipeline.run(engine, workload().kb);
    krep = result.krep_rows;
    reduced = result.reduced_rows;
    ks = result.ks_rows;
    benchmark::DoNotOptimize(krep);
  }
  state.counters["ks_rows"] = static_cast<double>(ks);
  state.counters["reduced_rows"] = static_cast<double>(reduced);
  state.counters["rout_rows"] = static_cast<double>(krep);
}
BENCHMARK(BM_PipelineWithReduction)->Unit(benchmark::kMillisecond);

void BM_PipelineWithoutReduction(benchmark::State& state) {
  dataflow::Engine engine({.workers = bench::bench_workers()});
  const core::Pipeline pipeline(workload().dataset.catalog,
                                base_config(false));
  std::size_t krep = 0;
  for (auto _ : state) {
    const auto result = pipeline.run(engine, workload().kb);
    krep = result.krep_rows;
    benchmark::DoNotOptimize(krep);
  }
  state.counters["rout_rows"] = static_cast<double>(krep);
}
BENCHMARK(BM_PipelineWithoutReduction)->Unit(benchmark::kMillisecond);

// State representation cost scales with R_out size — the downstream
// payoff of early reduction.
void BM_StateReprAfterReduction(benchmark::State& state) {
  dataflow::Engine engine({.workers = bench::bench_workers()});
  core::PipelineConfig config = base_config(true);
  const core::Pipeline pipeline(workload().dataset.catalog, config);
  const auto result = pipeline.run(engine, workload().kb);
  for (auto _ : state) {
    const auto table =
        core::build_state_representation(engine, result.krep);
    benchmark::DoNotOptimize(table.num_rows());
  }
}
BENCHMARK(BM_StateReprAfterReduction)->Unit(benchmark::kMillisecond);

void BM_StateReprWithoutReduction(benchmark::State& state) {
  dataflow::Engine engine({.workers = bench::bench_workers()});
  core::PipelineConfig config = base_config(false);
  const core::Pipeline pipeline(workload().dataset.catalog, config);
  const auto result = pipeline.run(engine, workload().kb);
  for (auto _ : state) {
    const auto table =
        core::build_state_representation(engine, result.krep);
    benchmark::DoNotOptimize(table.num_rows());
  }
}
BENCHMARK(BM_StateReprWithoutReduction)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
