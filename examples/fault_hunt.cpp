// Sec. 4.4 applications, end to end: run the pipeline on a faulty journey
// and hunt the injected faults with all three mining applications —
// outlier/violation anomalies, association rules, and transition graphs.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "apps/anomaly.hpp"
#include "apps/association_rules.hpp"
#include "apps/transition_graph.hpp"
#include "core/pipeline.hpp"
#include "dataflow/ops.hpp"
#include "simnet/datasets.hpp"
#include "tracefile/trace.hpp"

using namespace ivt;

int main() {
  // A faulty STA-like journey: dropouts, cycle violations, outliers and
  // error frames are injected by the simulator.
  simnet::DatasetConfig config;
  config.scale = 2e-4;
  config.seed = 2026;
  config.inject_faults = true;
  const simnet::VehiclePlan plan =
      simnet::plan_vehicle(simnet::sta_spec(), config.seed);
  const simnet::Dataset dataset = simnet::make_dataset(simnet::sta_spec(),
                                                       config);
  std::printf("Journey: %zu records, %zu signal types\n",
              dataset.trace.size(), dataset.catalog.num_signals());

  core::PipelineConfig pipeline_config;
  pipeline_config.classifier.rate_threshold_hz =
      plan.recommended_rate_threshold_hz;
  pipeline_config.extensions = {core::cycle_violation_extension(2.0)};
  const core::Pipeline pipeline(dataset.catalog, pipeline_config);

  dataflow::Engine engine({.workers = 4});
  const auto kb = tracefile::to_kb_table(dataset.trace, 16);
  const core::PipelineResult result = pipeline.run(engine, kb);
  std::printf("K_s %zu -> reduced %zu -> R_out %zu, state rows %zu\n\n",
              result.ks_rows, result.reduced_rows, result.krep_rows,
              result.state.num_rows());

  // --- 1. Anomaly detection: outliers and cycle violations ranked --------
  apps::AnomalyConfig anomaly_config;
  anomaly_config.top_k = 10;
  const auto anomalies =
      apps::detect_element_anomalies(result.krep, anomaly_config);
  std::puts("Top element-level anomalies (potential errors):");
  for (const auto& anomaly : anomalies) {
    std::printf("  sev %6.2f  t=%8.3fs  %-14s %s\n", anomaly.severity,
                static_cast<double>(anomaly.t_ns) / 1e9,
                anomaly.signal.c_str(), anomaly.description.c_str());
  }

  // --- 2. Transition graph of the first γ signal -------------------------
  std::string gamma_signal;
  for (const auto& report : result.sequences) {
    if (report.classification.branch == core::Branch::Gamma &&
        report.classification.criteria.z_num > 2) {
      gamma_signal = report.s_id;
      break;
    }
  }
  if (!gamma_signal.empty()) {
    const auto graph =
        apps::TransitionGraph::from_column(result.state, gamma_signal);
    std::printf("\nTransition graph of '%s': %zu states, %zu transitions\n",
                gamma_signal.c_str(), graph.num_nodes(),
                graph.num_transitions());
    const auto rare = graph.rare_transitions(0.05);
    std::puts("Rare transitions (potential error indicators):");
    for (const auto& edge : rare) {
      std::printf("  %-12s -> %-12s  p=%.4f (count %zu)\n", edge.from.c_str(),
                  edge.to.c_str(), edge.probability, edge.count);
      const auto path = graph.frequent_path_to(edge.to, 4);
      std::printf("    typical path: ");
      for (std::size_t i = 0; i < path.size(); ++i) {
        std::printf("%s%s", i ? " -> " : "", path[i].c_str());
      }
      std::puts("");
    }
    std::ofstream dot("fault_hunt_transitions.dot");
    dot << graph.to_dot(0.05);
    std::puts("  (full graph written to fault_hunt_transitions.dot)");
  }

  // --- 3. Association rules over a narrow column set ---------------------
  std::vector<std::string> columns = {"t"};
  for (std::size_t c = 1;
       c < result.state.schema().size() && columns.size() < 6; ++c) {
    columns.push_back(result.state.schema().field(c).name);
  }
  const auto trimmed = dataflow::project(engine, result.state, columns);
  apps::MinerConfig miner;
  miner.min_support = 0.1;
  miner.min_confidence = 0.9;
  miner.max_itemset_size = 2;
  const auto rules = apps::mine_rules(trimmed, miner);
  std::printf("\nAssociation rules over %zu state columns (top 5 of %zu):\n",
              columns.size() - 1, rules.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, rules.size()); ++i) {
    std::printf("  %s\n", rules[i].to_display_string().c_str());
  }
  return 0;
}
