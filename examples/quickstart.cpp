// Quickstart: the smallest end-to-end use of the library.
//
// 1. Describe the vehicle's messages/signals in a Catalog (or load one).
// 2. Record (here: simulate) a trace.
// 3. Parameterize a Pipeline for your domain (signals, constraints,
//    extensions) — the paper's one-time parameterization.
// 4. Run it and inspect the homogeneous state representation.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "core/pipeline.hpp"
#include "dataflow/csv.hpp"
#include "simnet/datasets.hpp"
#include "tracefile/trace.hpp"

int main() {
  using namespace ivt;

  // --- 1+2: a small synthetic data set (the paper's SYN, scaled down) ---
  simnet::DatasetConfig dataset_config;
  dataset_config.scale = 1e-4;  // ~7 s of the paper's 20 h recording
  dataset_config.seed = 7;
  const simnet::Dataset dataset = simnet::make_syn_dataset(dataset_config);
  std::cout << "Simulated trace: " << dataset.trace.size()
            << " records over "
            << static_cast<double>(dataset.trace.duration_ns()) / 1e9
            << " s, " << dataset.catalog.num_signals()
            << " documented signal types\n";

  // --- 3: parameterize the pipeline -------------------------------------
  core::PipelineConfig config;
  // U_comb: extract everything the catalog documents (a real domain would
  // list only its relevant signals here).
  config.signals = dataset.signal_names;
  // C: remove cyclically repeated values, keep cycle-time violations.
  config.constraints = {core::drop_repeated_values_rule(1.5)};
  // E: annotate gaps that violate the documented cycle time.
  config.extensions = {core::cycle_violation_extension(1.5)};

  const core::Pipeline pipeline(dataset.catalog, config);

  // --- 4: run on the distributed engine ----------------------------------
  dataflow::Engine engine({.workers = 4});
  const auto kb = tracefile::to_kb_table(dataset.trace, 16);
  const core::PipelineResult result = pipeline.run(engine, kb);

  std::printf("\nK_b rows      : %zu\n", result.kb_rows);
  std::printf("K_pre rows    : %zu (after preselection)\n", result.kpre_rows);
  std::printf("K_s rows      : %zu (signal instances)\n", result.ks_rows);
  std::printf("reduced rows  : %zu (%.1f%% of K_s kept)\n",
              result.reduced_rows,
              100.0 * static_cast<double>(result.reduced_rows) /
                  static_cast<double>(result.ks_rows));
  std::printf("R_out rows    : %zu (homogenized elements + extensions)\n",
              result.krep_rows);
  std::printf("state rows    : %zu\n\n", result.state.num_rows());

  std::puts("Per-sequence processing report:");
  std::printf("  %-12s %-6s %-8s %-8s %6s %6s %6s\n", "signal", "branch",
              "type", "rate", "in", "red", "out");
  for (const core::SequenceReport& report : result.sequences) {
    std::printf("  %-12s %-6s %-8s %-8c %6zu %6zu %6zu\n",
                report.s_id.c_str(),
                std::string(to_string(report.classification.branch)).c_str(),
                std::string(to_string(report.classification.data_type)).c_str(),
                report.classification.criteria.z_rate, report.input_rows,
                report.reduced_rows, report.output_rows);
  }

  std::cout << "\nState representation (first rows):\n"
            << result.state.to_display_string(8);

  // Results persist like any table:
  dataflow::write_csv_file(result.state, "quickstart_state.csv");
  std::cout << "\nFull state representation written to quickstart_state.csv\n";
  return 0;
}
