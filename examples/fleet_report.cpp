// Fleet-scale workflow: multiple journeys of one vehicle model (paper
// Fig. 1 / Table 6 setting) processed with one one-time parameterization,
// plus the trace-file round trip a recording toolchain would use.
#include <cstdio>
#include <sstream>

#include "baseline/inhouse_tool.hpp"
#include "core/pipeline.hpp"
#include "simnet/datasets.hpp"
#include "tracefile/binary_format.hpp"

using namespace ivt;

int main() {
  simnet::DatasetConfig config;
  config.scale = 5e-5;
  config.seed = 99;
  const std::size_t num_journeys = 4;
  const simnet::Fleet fleet =
      simnet::make_fleet(num_journeys, simnet::lig_spec(), config);
  const simnet::VehiclePlan plan =
      simnet::plan_vehicle(simnet::lig_spec(), config.seed);

  std::printf("Fleet: %zu journeys, %zu documented signal types\n\n",
              fleet.journeys.size(), fleet.catalog.num_signals());

  // One-time parameterization: a "light functions" domain extracting a
  // 9-signal subset (the paper's small extraction set).
  std::vector<std::string> domain_signals(fleet.signal_names.begin(),
                                          fleet.signal_names.begin() + 9);
  core::PipelineConfig pipeline_config;
  pipeline_config.signals = domain_signals;
  pipeline_config.classifier.rate_threshold_hz =
      plan.recommended_rate_threshold_hz;
  const core::Pipeline pipeline(fleet.catalog, pipeline_config);

  dataflow::Engine engine({.workers = 4});
  std::printf("%-8s %10s %10s %10s %10s\n", "journey", "records", "K_s",
              "reduced", "state");
  std::size_t total_records = 0;
  for (const tracefile::Trace& journey : fleet.journeys) {
    // Round-trip through the binary trace container, as a logger would.
    std::stringstream file;
    {
      tracefile::TraceWriter writer(file, journey.vehicle, journey.journey,
                                    journey.start_unix_ns);
      for (const auto& rec : journey.records) writer.write(rec);
    }
    tracefile::TraceReader reader(file);
    tracefile::Trace loaded;
    loaded.vehicle = reader.vehicle();
    loaded.journey = reader.journey();
    tracefile::TraceRecord rec;
    while (reader.next(rec)) loaded.records.push_back(rec);

    const auto kb = tracefile::to_kb_table(loaded, 16);
    const core::PipelineResult result = pipeline.run(engine, kb);
    std::printf("%-8s %10zu %10zu %10zu %10zu\n", loaded.journey.c_str(),
                loaded.records.size(), result.ks_rows, result.reduced_rows,
                result.state.num_rows());
    total_records += loaded.records.size();
  }

  // Contrast with the in-house tool: it must ingest EVERY signal of every
  // record regardless of the 9-signal domain selection.
  baseline::InHouseTool tool(fleet.catalog);
  std::size_t baseline_decoded = 0;
  for (const tracefile::Trace& journey : fleet.journeys) {
    baseline::IngestStats stats = tool.ingest(journey);
    baseline_decoded += stats.instances_decoded;
    tool.clear();
  }
  std::printf(
      "\nIn-house tool decoded %zu signal instances across the fleet to\n"
      "answer the same 9-signal question (records scanned: %zu).\n",
      baseline_decoded, total_records);
  return 0;
}
