// The paper's running example (Fig. 2, Tables 1 & 2): a function
// specialist inspects the wiper.
//
// Demonstrates: hand-written catalog matching paper Table 1 (CAN + LIN +
// SOME/IP signals of one function), the K_b -> K_n -> K_s mapping of
// Fig. 2, and the wposGap extension of Table 2.
#include <cstdio>
#include <iostream>

#include "core/interpret.hpp"
#include "core/pipeline.hpp"
#include "core/urel.hpp"
#include "signaldb/catalog.hpp"
#include "tracefile/trace.hpp"

using namespace ivt;

namespace {

constexpr std::int64_t kMs = 1'000'000;

/// Paper Table 1: wpos/wvel on CAN (FC, id 3), wtype on K-LIN (id 11),
/// wstat on SOME/IP (id 212).
signaldb::Catalog wiper_catalog() {
  signaldb::Catalog catalog;

  signaldb::MessageSpec wiper;
  wiper.name = "WiperStatus";
  wiper.bus = "FC";
  wiper.message_id = 3;
  wiper.payload_size = 4;
  {
    signaldb::SignalSpec wpos;  // Int.rule: v = 0.5*l; rel.B = (1,2)
    wpos.name = "wpos";
    wpos.start_bit = 0;
    wpos.length = 16;
    wpos.transform = {0.5, 0.0};
    wpos.unit = "deg";
    wpos.expected_cycle_ns = 500 * kMs;
    signaldb::SignalSpec wvel;  // Int.rule: v = l; rel.B = (3,4)
    wvel.name = "wvel";
    wvel.start_bit = 16;
    wvel.length = 16;
    wvel.unit = "rad/min";
    wvel.expected_cycle_ns = 500 * kMs;
    wiper.signals = {wpos, wvel};
  }
  catalog.add_message(std::move(wiper));

  signaldb::MessageSpec wtype_msg;
  wtype_msg.name = "WiperType";
  wtype_msg.bus = "K-LIN";
  wtype_msg.message_id = 11;
  wtype_msg.protocol = protocol::Protocol::Lin;
  wtype_msg.payload_size = 1;
  {
    signaldb::SignalSpec wtype;  // Int.rule: v = l + 2; rel.B = (1)
    wtype.name = "wtype";
    wtype.start_bit = 0;
    wtype.length = 8;
    wtype.transform = {1.0, 2.0};
    wtype_msg.signals = {wtype};
  }
  catalog.add_message(std::move(wtype_msg));

  signaldb::MessageSpec wstat_msg;
  wstat_msg.name = "WiperService";
  wstat_msg.bus = "SOME/IP";
  wstat_msg.message_id = 212;
  wstat_msg.protocol = protocol::Protocol::SomeIp;
  wstat_msg.payload_size = 23;
  {
    signaldb::SignalSpec wstat;  // rel.B = (10..22) — we use byte 10
    wstat.name = "wstat";
    wstat.start_bit = 80;
    wstat.length = 8;
    wstat.ordered_values = true;
    wstat.value_table = {{0, "idle", false},
                         {1, "interval", false},
                         {2, "continuous", false},
                         {3, "fast", false},
                         {255, "invalid", true}};
    wstat_msg.signals = {wstat};
  }
  catalog.add_message(std::move(wstat_msg));
  return catalog;
}

tracefile::TraceRecord can_record(std::int64_t t, double wpos, double wvel) {
  tracefile::TraceRecord rec;
  rec.t_ns = t;
  rec.bus = "FC";
  rec.message_id = 3;
  rec.payload.assign(4, 0);
  const auto raw_pos = static_cast<std::uint16_t>(wpos / 0.5);
  const auto raw_vel = static_cast<std::uint16_t>(wvel);
  rec.payload[0] = static_cast<std::uint8_t>(raw_pos);
  rec.payload[1] = static_cast<std::uint8_t>(raw_pos >> 8);
  rec.payload[2] = static_cast<std::uint8_t>(raw_vel);
  rec.payload[3] = static_cast<std::uint8_t>(raw_vel >> 8);
  return rec;
}

}  // namespace

int main() {
  const signaldb::Catalog catalog = wiper_catalog();
  std::cout << "Catalog (U_rel source, cf. paper Table 1):\n"
            << signaldb::to_text(catalog) << "\n";

  // --- Fig. 2's two byte tuples + a wiping episode -----------------------
  tracefile::Trace trace;
  trace.records.push_back(can_record(2000 * kMs, 45.0, 1.0));  // x5A x01 ...
  trace.records.push_back(can_record(2500 * kMs, 60.0, 1.0));
  // Continue the wipe: position sweeps, velocity constant, one stuck gap.
  double pos = 60.0;
  std::int64_t t = 2900 * kMs;
  for (int i = 0; i < 30; ++i) {
    pos += (i < 15 ? 10.0 : -10.0);
    trace.records.push_back(can_record(t, pos, 1.0));
    t += (i == 20 ? 2000 * kMs : 450 * kMs);  // one cycle violation
  }

  dataflow::Engine engine({.workers = 2});
  const auto kb = tracefile::to_kb_table(trace, 4);
  std::cout << "K_b (raw byte tuples):\n" << kb.to_display_string(3) << "\n";

  // --- Structuring: the expert selects wpos + wvel as U_comb -------------
  const auto urel = core::make_urel_table(catalog, {"wpos", "wvel"});
  std::cout << "U_comb (translation tuples):\n"
            << urel.to_display_string(2) << "\n";

  // --- Interpretation: K_b -> K_s (Fig. 2 mapping) ------------------------
  core::InterpretOptions interpret_options;
  interpret_options.catalog = &catalog;
  const auto ks = core::extract_signals(engine, kb, urel, interpret_options);
  std::cout << "K_s (signal instances):\n" << ks.to_display_string(4) << "\n";

  // --- Full pipeline with the wposGap extension (paper Table 2) ----------
  core::PipelineConfig config;
  config.signals = {"wpos", "wvel"};
  config.extensions = {core::gap_extension(),
                       core::cycle_violation_extension(1.5)};
  const core::Pipeline pipeline(catalog, config);
  const core::PipelineResult result = pipeline.run(engine, kb);

  std::cout << "Homogenized sequence R_out:\n"
            << result.krep.to_display_string(12) << "\n";
  std::cout << "State representation:\n"
            << result.state.to_display_string(12) << "\n";

  std::puts("Cycle-time violations found (wpos.cycle_violation column):");
  const auto& schema = result.state.schema();
  if (schema.contains("wpos.cycle_violation")) {
    const std::size_t col = schema.require("wpos.cycle_violation");
    const std::size_t t_col = schema.require("t");
    result.state.for_each_row([&](const dataflow::RowView& row) {
      if (!row.is_null(col)) {
        std::printf("  t=%.2fs  %s\n",
                    static_cast<double>(row.int64_at(t_col)) / 1e9,
                    row.string_at(col).c_str());
      }
    });
  }
  return 0;
}
