// Reproduces the *shape* of paper Table 4: the state representation of the
// lights function combined with driving speed — headlight, lever control,
// speed (symbolized α signal with an outlier), indicator light and light
// switch, forward-filled per state change.
#include <cstdio>
#include <iostream>

#include "core/pipeline.hpp"
#include "signaldb/catalog.hpp"
#include "tracefile/trace.hpp"

using namespace ivt;

namespace {

constexpr std::int64_t kMs = 1'000'000;

signaldb::Catalog lights_catalog() {
  signaldb::Catalog catalog;

  signaldb::MessageSpec lights;
  lights.name = "LightsState";
  lights.bus = "KC";
  lights.message_id = 0x21;
  lights.payload_size = 3;
  {
    signaldb::SignalSpec headlight;
    headlight.name = "headlight";
    headlight.start_bit = 0;
    headlight.length = 2;
    headlight.expected_cycle_ns = 100 * kMs;
    headlight.value_table = {{0, "off", false},
                             {1, "parklight on", false},
                             {2, "headlight on", false}};
    signaldb::SignalSpec lever;
    lever.name = "levercontrol";
    lever.start_bit = 2;
    lever.length = 2;
    lever.expected_cycle_ns = 100 * kMs;
    lever.value_table = {{0, "default", false},
                         {1, "pushed up", false},
                         {2, "pushed down", false}};
    signaldb::SignalSpec indicator;
    indicator.name = "indicatorlight";
    indicator.start_bit = 4;
    indicator.length = 2;
    indicator.expected_cycle_ns = 100 * kMs;
    indicator.value_table = {{0, "off", false},
                             {1, "left on", false},
                             {2, "right on", false}};
    signaldb::SignalSpec lightswitch;
    lightswitch.name = "lightswitch";
    lightswitch.start_bit = 6;
    lightswitch.length = 2;
    lightswitch.ordered_values = true;
    lightswitch.expected_cycle_ns = 100 * kMs;
    lightswitch.value_table = {{0, "default", false},
                               {1, "turned halfway", false},
                               {2, "turned full", false}};
    lights.signals = {headlight, lever, indicator, lightswitch};
  }
  catalog.add_message(std::move(lights));

  signaldb::MessageSpec drive;
  drive.name = "DriveState";
  drive.bus = "DC";
  drive.message_id = 0x100;
  drive.payload_size = 2;
  {
    signaldb::SignalSpec speed;
    speed.name = "speed";
    speed.start_bit = 0;
    speed.length = 16;
    speed.transform = {0.1, 0.0};
    speed.unit = "km/h";
    speed.expected_cycle_ns = 20 * kMs;
    drive.signals = {speed};
  }
  catalog.add_message(std::move(drive));
  return catalog;
}

tracefile::TraceRecord lights_record(std::int64_t t, std::uint8_t headlight,
                                     std::uint8_t lever,
                                     std::uint8_t indicator,
                                     std::uint8_t lightswitch) {
  tracefile::TraceRecord rec;
  rec.t_ns = t;
  rec.bus = "KC";
  rec.message_id = 0x21;
  rec.payload = {static_cast<std::uint8_t>(
                     (headlight & 3) | ((lever & 3) << 2) |
                     ((indicator & 3) << 4) | ((lightswitch & 3) << 6)),
                 0, 0};
  return rec;
}

tracefile::TraceRecord speed_record(std::int64_t t, double kmh) {
  tracefile::TraceRecord rec;
  rec.t_ns = t;
  rec.bus = "DC";
  rec.message_id = 0x100;
  const auto raw = static_cast<std::uint16_t>(kmh / 0.1);
  rec.payload = {static_cast<std::uint8_t>(raw),
                 static_cast<std::uint8_t>(raw >> 8)};
  return rec;
}

}  // namespace

int main() {
  const signaldb::Catalog catalog = lights_catalog();

  // Script the scenario of paper Table 4: indicator blink at 4s, park
  // light at 20.1s, headlight at 23.5s, speed rising then steady with one
  // outlier (v = 800) at 22s.
  tracefile::Trace trace;
  struct LightsEvent {
    std::int64_t t;
    std::uint8_t head, lever, ind, sw;
  };
  const LightsEvent events[] = {
      {2000, 0, 0, 0, 0},   {4000, 0, 1, 0, 0},   {4250, 0, 1, 1, 0},
      {7000, 0, 0, 1, 0},   {7220, 0, 0, 0, 0},   {20000, 0, 0, 0, 1},
      {20100, 1, 0, 0, 1},  {23000, 1, 0, 0, 2},  {23500, 2, 0, 0, 2},
  };
  // Cyclic re-sends every 100 ms between events (redundancy for the
  // reduction to remove).
  std::size_t next_event = 0;
  LightsEvent current = events[0];
  for (std::int64_t t = 2000; t <= 25000; t += 100) {
    while (next_event < std::size(events) && events[next_event].t <= t) {
      current = events[next_event++];
    }
    trace.records.push_back(lights_record(
        t * kMs, current.head, current.lever, current.ind, current.sw));
  }
  // Speed: ramps 0..120 until 14 s, then steady; outlier at 22 s.
  for (std::int64_t t = 2000; t <= 25000; t += 20) {
    double v = t < 14000 ? 120.0 * (t - 2000) / 12000.0 : 120.0;
    if (t == 22000) v = 800.0;
    trace.records.push_back(speed_record(t * kMs, v));
  }
  std::sort(trace.records.begin(), trace.records.end(),
            [](const tracefile::TraceRecord& a,
               const tracefile::TraceRecord& b) { return a.t_ns < b.t_ns; });

  core::PipelineConfig config;
  config.classifier.rate_threshold_hz = 8.0;  // speed (50 Hz) is α
  config.branch.sax_alphabet = 3;             // low / mid / high
  config.branch.outlier.threshold = 4.0;
  const core::Pipeline pipeline(catalog, config);

  dataflow::Engine engine({.workers = 4});
  const auto kb = tracefile::to_kb_table(trace, 8);
  const core::PipelineResult result = pipeline.run(engine, kb);

  std::printf("K_s rows %zu -> reduced %zu -> state rows %zu\n\n",
              result.ks_rows, result.reduced_rows, result.state.num_rows());
  std::puts("State representation (cf. paper Table 4):");
  std::cout << result.state.to_display_string(30);

  std::puts("\nSequence report:");
  for (const core::SequenceReport& report : result.sequences) {
    std::printf("  %-14s -> %s/%s, outliers: %zu\n", report.s_id.c_str(),
                std::string(to_string(report.classification.data_type)).c_str(),
                std::string(to_string(report.classification.branch)).c_str(),
                report.branch_stats.outliers);
  }
  return 0;
}
