// Multi-logger workflow: two monitoring devices record different buses of
// the same journey with skewed clocks. Align, merge, bootstrap missing
// cycle-time documentation from the data, then run the pipeline on the
// fused trace — the off-board toolchain of paper Fig. 1.
#include <cstdio>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "signaldb/catalog.hpp"
#include "simnet/scenario.hpp"
#include "tracefile/trace_ops.hpp"

using namespace ivt;

namespace {

constexpr std::int64_t kMs = 1'000'000;

signaldb::Catalog demo_catalog() {
  signaldb::Catalog catalog;
  {
    signaldb::MessageSpec m;
    m.name = "Engine";
    m.bus = "DC";
    m.message_id = 0x10;
    m.payload_size = 4;
    signaldb::SignalSpec rpm;
    rpm.name = "rpm";
    rpm.start_bit = 0;
    rpm.length = 16;
    rpm.transform = {1.0, 0.0};
    // Deliberately undocumented cycle time: we bootstrap it from data.
    rpm.expected_cycle_ns = 0;
    m.signals = {rpm};
    catalog.add_message(std::move(m));
  }
  {
    signaldb::MessageSpec m;
    m.name = "Body";
    m.bus = "KC";
    m.message_id = 0x20;
    m.payload_size = 1;
    signaldb::SignalSpec door;
    door.name = "door";
    door.start_bit = 0;
    door.length = 1;
    door.expected_cycle_ns = 0;
    door.value_table = {{0, "closed", false}, {1, "open", false}};
    m.signals = {door};
    catalog.add_message(std::move(m));
  }
  return catalog;
}

}  // namespace

int main() {
  signaldb::Catalog catalog = demo_catalog();

  // Logger A records the drive CAN; logger B the body CAN, with its clock
  // 120 ms ahead.
  simnet::ScenarioBuilder drive(catalog);
  drive.message_period("Engine", 20 * kMs);
  for (int i = 0; i <= 100; ++i) {
    drive.set(i * 100 * kMs, "rpm", 800.0 + 20.0 * i);
  }
  const tracefile::Trace logger_a = drive.build(0, 10'000 * kMs);

  simnet::ScenarioBuilder body(catalog);
  body.message_period("Body", 200 * kMs);
  body.set_label(0, "door", "closed")
      .set_label(3'000 * kMs, "door", "open")
      .set_label(4'500 * kMs, "door", "closed");
  tracefile::Trace logger_b = body.build(0, 10'000 * kMs);
  logger_b = tracefile::shift_time(logger_b, 120 * kMs);  // clock skew

  std::printf("logger A: %zu records (DC), logger B: %zu records (KC, "
              "+120 ms skew)\n", logger_a.size(), logger_b.size());

  // Align B's clock and merge.
  const tracefile::Trace aligned_b =
      tracefile::shift_time(logger_b, -120 * kMs);
  const tracefile::Trace merged =
      tracefile::merge_traces({logger_a, aligned_b});
  std::printf("merged: %zu records, time-ordered: %s\n", merged.size(),
              merged.is_time_ordered() ? "yes" : "no");

  // Bootstrap the undocumented cycle times from the data and fold them
  // back into the catalog (domain knowledge for constraints/extensions).
  std::puts("\nestimated cycle times:");
  for (const tracefile::CycleEstimate& est :
       tracefile::estimate_cycles(merged)) {
    std::printf("  %-4s m_id=%#llx  median gap %.1f ms (%zu instances)\n",
                est.bus.c_str(), static_cast<long long>(est.message_id),
                static_cast<double>(est.median_gap_ns) / 1e6, est.instances);
    catalog.document_cycle_time(est.bus, est.message_id, est.median_gap_ns);
  }

  // Focus on the interesting window around the door event and run the
  // pipeline with the bootstrapped cycle knowledge.
  const tracefile::Trace window =
      tracefile::slice_time(merged, 2'000 * kMs, 6'000 * kMs);
  core::PipelineConfig config;
  config.extensions = {core::cycle_violation_extension(2.0)};
  const core::Pipeline pipeline(catalog, config);
  dataflow::Engine engine({.workers = 2});
  const core::PipelineResult result =
      pipeline.run(engine, tracefile::to_kb_table(window, 8));

  std::puts("");
  std::printf("%s\n", core::report_to_text(result).c_str());
  std::puts("state representation around the door event:");
  std::printf("%s", result.state.to_display_string(12).c_str());
  return 0;
}
