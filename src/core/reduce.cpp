#include "core/reduce.hpp"

#include <algorithm>

namespace ivt::core {

std::vector<std::size_t> apply_constraints(
    const std::vector<ConstraintRule>& rules, const ConstraintContext& context,
    ReductionStats* stats) {
  const SequenceData& data = context.data;
  std::vector<std::uint8_t> marks(data.size(), 0);
  for (const ConstraintRule& rule : rules) {
    if (rule.signal_pattern != "*" && rule.signal_pattern != data.s_id) {
      continue;
    }
    if (rule.applies && !rule.applies(context)) continue;
    for (const MarkFn& f : rule.marks) {
      f(context, marks);
    }
  }
  std::vector<std::size_t> keep;
  keep.reserve(data.size());
  for (std::size_t i = 0; i < marks.size(); ++i) {
    if (marks[i] == 0) keep.push_back(i);
  }
  if (stats != nullptr) {
    stats->input_rows += data.size();
    stats->removed_rows += data.size() - keep.size();
  }
  return keep;
}

namespace {

SequenceData filter_data(const SequenceData& data,
                         const std::vector<std::size_t>& keep) {
  SequenceData out;
  out.s_id = data.s_id;
  out.bus = data.bus;
  out.t.reserve(keep.size());
  out.v_num.reserve(keep.size());
  out.has_num.reserve(keep.size());
  out.v_str.reserve(keep.size());
  out.has_str.reserve(keep.size());
  for (std::size_t i : keep) {
    out.t.push_back(data.t[i]);
    out.v_num.push_back(data.v_num[i]);
    out.has_num.push_back(data.has_num[i]);
    out.v_str.push_back(data.v_str[i]);
    out.has_str.push_back(data.has_str[i]);
  }
  return out;
}

bool values_equal(const SequenceData& d, std::size_t i, std::size_t j) {
  if (d.has_num[i] != d.has_num[j] || d.has_str[i] != d.has_str[j]) {
    return false;
  }
  if (d.has_num[i] != 0 && d.v_num[i] != d.v_num[j]) return false;
  if (d.has_str[i] != 0 && d.v_str[i] != d.v_str[j]) return false;
  return true;
}

}  // namespace

SequenceData reduce_sequence(const std::vector<ConstraintRule>& rules,
                             const SequenceData& data,
                             const signaldb::SignalSpec* spec,
                             ReductionStats* stats) {
  const ConstraintContext context{data, spec};
  return filter_data(data, apply_constraints(rules, context, stats));
}

ConstraintRule drop_repeated_values_rule(double cycle_tolerance) {
  ConstraintRule rule;
  rule.name = "drop_repeated_values";
  rule.signal_pattern = "*";
  rule.marks.push_back([cycle_tolerance](const ConstraintContext& ctx,
                                         std::vector<std::uint8_t>& marks) {
    const SequenceData& d = ctx.data;
    if (d.size() < 3) return;
    const std::int64_t expected_cycle =
        ctx.spec != nullptr ? ctx.spec->expected_cycle_ns : 0;
    const std::int64_t gap_limit =
        expected_cycle > 0
            ? static_cast<std::int64_t>(cycle_tolerance *
                                        static_cast<double>(expected_cycle))
            : 0;
    // Keep first and last; inner elements are redundant when identical to
    // the previous element and the gap is unsuspicious.
    for (std::size_t i = 1; i + 1 < d.size(); ++i) {
      if (!values_equal(d, i, i - 1)) continue;
      if (gap_limit > 0 && d.t[i] - d.t[i - 1] > gap_limit) continue;
      marks[i] = 1;
    }
  });
  return rule;
}

ConstraintRule drop_within_band_rule(std::string signal, double lo,
                                     double hi) {
  ConstraintRule rule;
  rule.name = "drop_within_band";
  rule.signal_pattern = std::move(signal);
  rule.marks.push_back(
      [lo, hi](const ConstraintContext& ctx, std::vector<std::uint8_t>& marks) {
        const SequenceData& d = ctx.data;
        auto inside = [&](std::size_t i) {
          return d.has_num[i] != 0 && d.v_num[i] >= lo && d.v_num[i] <= hi;
        };
        for (std::size_t i = 0; i < d.size(); ++i) {
          if (!inside(i)) continue;
          // Preserve band entry/exit witnesses.
          const bool prev_inside = i > 0 && inside(i - 1);
          const bool next_inside = i + 1 < d.size() && inside(i + 1);
          if (prev_inside && next_inside) marks[i] = 1;
        }
      });
  return rule;
}

ConstraintRule decimate_rule(std::string signal, std::size_t keep_every,
                             double min_rate_hz) {
  ConstraintRule rule;
  rule.name = "decimate";
  rule.signal_pattern = std::move(signal);
  rule.applies = [min_rate_hz](const ConstraintContext& ctx) {
    const double duration = ctx.data.duration_s();
    if (duration <= 0.0) return false;
    return static_cast<double>(ctx.data.size()) / duration > min_rate_hz;
  };
  const std::size_t every = std::max<std::size_t>(keep_every, 1);
  rule.marks.push_back(
      [every](const ConstraintContext& ctx, std::vector<std::uint8_t>& marks) {
        for (std::size_t i = 0; i < ctx.data.size(); ++i) {
          if (i % every != 0 && i + 1 != ctx.data.size()) marks[i] = 1;
        }
      });
  return rule;
}

}  // namespace ivt::core
