// State representation (paper Sec. 4.3, Table 4).
//
// The merged homogeneous sequence K_rep is pivoted into a wide table: one
// column per signal type (and extension w_id), one row per state change,
// missing cells forward-filled with the signal's last value. Each row is
// then "the state of all signal instances at a time" and feeds Data Mining
// directly (association rules, transition graphs, anomaly detection).
#pragma once

#include "dataflow/engine.hpp"
#include "dataflow/table.hpp"

namespace ivt::core {

struct StateRepresentationOptions {
  /// Collapse elements sharing one timestamp into a single state row.
  bool merge_same_timestamp = true;
  /// Keep extension elements (w columns) in the representation.
  bool include_extensions = true;
  /// Extension elements are momentary events: when true (default) an
  /// extension cell is only set on the row where it occurred instead of
  /// being forward-filled like signal states.
  bool momentary_extensions = true;
};

/// Pivot a krep_schema table into the wide state representation. Column
/// order: "t" first, then signal types in order of first (chronological)
/// appearance. Input is sorted by time internally.
dataflow::Table build_state_representation(
    dataflow::Engine& engine, const dataflow::Table& krep,
    const StateRepresentationOptions& options = {});

}  // namespace ivt::core
