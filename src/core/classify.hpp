// Type-dependent classification (paper Sec. 4.2, Table 3).
//
// Each reduced sequence K_red is classified by the criteria
// Z = (z_type, z_rate, z_num, z_val) and routed to a processing branch:
//   α — high-rate numeric, β — ordinal, γ — binary / nominal.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/reduce.hpp"
#include "core/sequence.hpp"

namespace ivt::core {

enum class DataType : std::uint8_t { Numeric, Ordinal, Binary, Nominal };
enum class Branch : std::uint8_t { Alpha, Beta, Gamma };

std::string_view to_string(DataType type);
std::string_view to_string(Branch branch);

/// The classification criteria Z.
struct Criteria {
  char z_type = 'N';        ///< 'N' numeric or 'S' string
  char z_rate = 'L';        ///< 'H' high rate or 'L' low rate
  std::size_t z_num = 0;    ///< number of distinct functional values
  bool z_val = true;        ///< values carry a comparable valence
};

struct Classification {
  Criteria criteria;
  DataType data_type = DataType::Nominal;
  Branch branch = Branch::Gamma;
};

struct ClassifierConfig {
  /// The rate threshold T of Eq. (2) — domain knowledge.
  double rate_threshold_hz = 5.0;
  /// Distinct-value counting stops here (only =2 vs >2 matters).
  std::size_t max_distinct_tracked = 64;
};

/// Paper Table 3: map criteria to (data type, branch). Combinations not
/// listed in the table fall back to (Nominal, γ).
Classification map_criteria(const Criteria& criteria);

/// Compute Z for a sequence and classify it. `spec` supplies the
/// z_val domain knowledge (ordered_values) and identifies validity labels
/// excluded from the functional distinct-value count; it may be null.
Classification classify_sequence(const ConstraintContext& context,
                                 const ClassifierConfig& config = {});

}  // namespace ivt::core
