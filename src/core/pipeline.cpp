#include "core/pipeline.hpp"

#include <unordered_map>

#include "core/schemas.hpp"
#include "core/urel.hpp"

namespace ivt::core {

dataflow::Table concat_tables(const dataflow::Schema& schema,
                              std::vector<dataflow::Table> tables) {
  dataflow::Table out(schema);
  for (dataflow::Table& t : tables) {
    for (std::size_t p = 0; p < t.num_partitions(); ++p) {
      if (t.partition(p).num_rows() == 0) continue;
      out.add_partition(std::move(t.mutable_partition(p)));
    }
  }
  if (out.num_partitions() == 0) {
    out.add_partition(dataflow::Table::make_partition(schema));
  }
  return out;
}

Pipeline::Pipeline(const signaldb::Catalog& catalog, PipelineConfig config)
    : catalog_(catalog), config_(std::move(config)) {
  urel_ = config_.signals.empty()
              ? make_full_urel_table(catalog_)
              : make_urel_table(catalog_, config_.signals);
  config_.interpret.catalog = &catalog_;
}

const signaldb::SignalSpec* Pipeline::spec_of(const std::string& s_id) const {
  const signaldb::SignalRef ref = catalog_.find_signal(s_id);
  return ref.valid() ? ref.signal : nullptr;
}

dataflow::Table Pipeline::extract(dataflow::Engine& engine,
                                  const dataflow::Table& kb) const {
  return extract_signals(engine, kb, urel_, config_.interpret);
}

Pipeline::ReducedResult Pipeline::extract_and_reduce(
    dataflow::Engine& engine, const dataflow::Table& kb) const {
  ReducedResult result;
  const dataflow::Table ks = extract(engine, kb);
  result.ks_rows = ks.num_rows();

  SplitDataResult split = split_signals_data(engine, ks, config_.split);
  result.correspondences = std::move(split.correspondences);

  result.sequences.resize(split.sequences.size());
  engine.parallel_for(split.sequences.size(), [&](std::size_t i) {
    const SequenceData& seq = split.sequences[i];
    result.sequences[i] =
        reduce_sequence(config_.constraints, seq, spec_of(seq.s_id));
  });
  for (const SequenceData& seq : result.sequences) {
    result.reduced_rows += seq.size();
  }
  return result;
}

PipelineResult Pipeline::run(dataflow::Engine& engine,
                             const dataflow::Table& kb) const {
  PipelineResult result;
  result.kb_rows = kb.num_rows();

  // Lines 3–6: preselection + interpretation.
  const dataflow::Table kpre = preselect(engine, kb, urel_);
  result.kpre_rows = kpre.num_rows();
  dataflow::Table ks = interpret(engine, kpre, urel_, config_.interpret);
  result.ks_rows = ks.num_rows();

  // Lines 7–9: splitting + gateway dedup.
  SplitDataResult split = split_signals_data(engine, ks, config_.split);
  result.correspondences = std::move(split.correspondences);
  if (config_.keep_ks) {
    result.ks = std::move(ks);
  } else {
    ks = dataflow::Table(ks_schema());
  }

  // Lines 10–28 per sequence, parallel across sequences: reduction,
  // extension, classification, branch processing.
  const std::size_t n = split.sequences.size();
  std::vector<SequenceReport> reports(n);
  std::vector<dataflow::Table> branch_tables(n);
  std::vector<std::vector<dataflow::Table>> extension_tables(n);

  engine.parallel_for(n, [&](std::size_t i) {
    const SequenceData& raw = split.sequences[i];
    const signaldb::SignalSpec* spec = spec_of(raw.s_id);
    SequenceReport& report = reports[i];
    report.s_id = raw.s_id;
    report.bus = raw.bus;
    report.input_rows = raw.size();

    // Line 10–11: constraint reduction.
    const SequenceData red =
        reduce_sequence(config_.constraints, raw, spec);
    report.reduced_rows = red.size();
    const ConstraintContext context{red, spec};

    // Line 12: extensions W (on raw or reduced data, see PipelineConfig).
    const ConstraintContext extension_context{
        config_.extensions_on_reduced ? red : raw, spec};
    extension_tables[i] = apply_extensions(config_.extensions,
                                           extension_context);
    for (const dataflow::Table& t : extension_tables[i]) {
      report.extension_rows += t.num_rows();
    }

    // Lines 13–28: classification + branch processing.
    report.classification = classify_sequence(context, config_.classifier);
    branch_tables[i] = process_by_branch(report.classification.branch,
                                         context, config_.branch,
                                         &report.branch_stats);
    report.output_rows = branch_tables[i].num_rows();
  });

  result.sequences = std::move(reports);
  for (const SequenceReport& report : result.sequences) {
    result.reduced_rows += report.reduced_rows;
  }

  // Line 29: merge K_res and W into R_out.
  std::vector<dataflow::Table> all;
  all.reserve(branch_tables.size() * 2);
  for (std::size_t i = 0; i < n; ++i) {
    all.push_back(std::move(branch_tables[i]));
    for (dataflow::Table& t : extension_tables[i]) {
      all.push_back(std::move(t));
    }
  }
  result.krep = concat_tables(krep_schema(), std::move(all));
  result.krep_rows = result.krep.num_rows();

  // Sec. 4.3: state representation.
  if (config_.build_state) {
    result.state =
        build_state_representation(engine, result.krep, config_.state);
  }
  return result;
}

}  // namespace ivt::core
