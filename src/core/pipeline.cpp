#include "core/pipeline.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <unordered_map>

#include "core/schemas.hpp"
#include "core/urel.hpp"
#include "errors/error.hpp"
#include "faultfx/faultfx.hpp"
#include "obs/obs.hpp"

namespace ivt::core {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

const char* branch_span_name(Branch branch) {
  switch (branch) {
    case Branch::Alpha: return "branch.alpha";
    case Branch::Beta: return "branch.beta";
    case Branch::Gamma: return "branch.gamma";
  }
  return "branch.unknown";
}

/// Relaxed-atomic nanosecond accumulators for the per-sequence sub-stages
/// (reduce/extend/classify/branch run inside parallel_for, so their
/// totals are summed across workers).
struct SubStageNs {
  std::atomic<std::uint64_t> reduce{0};
  std::atomic<std::uint64_t> extend{0};
  std::atomic<std::uint64_t> classify{0};
  std::atomic<std::uint64_t> branch{0};
};

}  // namespace

/// Publishes to the metrics registry so both `--report-json` and
/// `--metrics-out` answer "which stage dominated".
void record_stage_time(std::vector<StageTiming>& times, const char* name,
                       std::uint64_t wall_ns) {
  times.push_back({name, static_cast<double>(wall_ns) / 1e6});
#if IVT_OBS_ENABLED
  obs::Registry::instance()
      .counter(std::string("pipeline.stage.") + name + ".wall_ns")
      .add(wall_ns);
#endif
}

ExecMode parse_exec_mode(const std::string& text) {
  if (text == "batch") return ExecMode::Batch;
  if (text == "streaming") return ExecMode::Streaming;
  if (text == "dist") return ExecMode::Dist;
  throw std::invalid_argument("unknown exec mode: " + text +
                              " (expected batch|streaming|dist)");
}

const char* to_string(ExecMode mode) {
  switch (mode) {
    case ExecMode::Batch: return "batch";
    case ExecMode::Streaming: return "streaming";
    case ExecMode::Dist: return "dist";
  }
  return "batch";
}

dataflow::Table concat_tables(const dataflow::Schema& schema,
                              std::vector<dataflow::Table> tables) {
  dataflow::Table out(schema);
  for (dataflow::Table& t : tables) {
    for (std::size_t p = 0; p < t.num_partitions(); ++p) {
      if (t.partition(p).num_rows() == 0) continue;
      out.add_partition(std::move(t.mutable_partition(p)));
    }
  }
  if (out.num_partitions() == 0) {
    out.add_partition(dataflow::Table::make_partition(schema));
  }
  return out;
}

Pipeline::Pipeline(const signaldb::Catalog& catalog, PipelineConfig config)
    : catalog_(catalog), config_(std::move(config)) {
  urel_ = config_.signals.empty()
              ? make_full_urel_table(catalog_)
              : make_urel_table(catalog_, config_.signals);
  config_.interpret.catalog = &catalog_;
}

const signaldb::SignalSpec* Pipeline::spec_of(const std::string& s_id) const {
  const signaldb::SignalRef ref = catalog_.find_signal(s_id);
  return ref.valid() ? ref.signal : nullptr;
}

dataflow::Table Pipeline::extract(dataflow::Engine& engine,
                                  const dataflow::Table& kb) const {
  return extract_signals(engine, kb, urel_, config_.interpret);
}

Pipeline::ReducedResult Pipeline::extract_and_reduce(
    dataflow::Engine& engine, const dataflow::Table& kb) const {
  OBS_SPAN("pipeline.extract_and_reduce");
  ReducedResult result;
  dataflow::Table ks = [&] {
    OBS_SPAN_V(span, "pipeline.interpret");
    dataflow::Table t = extract(engine, kb);
    span.set_rows(t.num_rows());
    return t;
  }();
  result.ks_rows = ks.num_rows();

  SplitDataResult split = [&] {
    OBS_SPAN_V(span, "pipeline.split");
    return split_signals_data(engine, ks, config_.split);
  }();
  result.correspondences = std::move(split.correspondences);

  result.sequences.resize(split.sequences.size());
  engine.parallel_for(split.sequences.size(), [&](std::size_t i) {
    OBS_SPAN_V(span, "sequence.reduce");
    const SequenceData& seq = split.sequences[i];
    result.sequences[i] =
        reduce_sequence(config_.constraints, seq, spec_of(seq.s_id));
    span.set_rows(result.sequences[i].size());
  });
  for (const SequenceData& seq : result.sequences) {
    result.reduced_rows += seq.size();
  }
  return result;
}

PipelineResult Pipeline::run(dataflow::Engine& engine,
                             const dataflow::Table& kb) const {
  OBS_SPAN("pipeline.run");
  using Clock = std::chrono::steady_clock;
  PipelineResult result;
  result.kb_rows = kb.num_rows();
  OBS_COUNT("pipeline.runs", 1);
  OBS_COUNT("pipeline.kb_rows", result.kb_rows);

  // Lines 3–6: preselection + interpretation.
  auto stage_start = Clock::now();
  const dataflow::Table kpre = [&] {
    OBS_SPAN_V(span, "pipeline.preselect");
    dataflow::Table t = preselect(engine, kb, urel_);
    span.set_rows(t.num_rows());
    return t;
  }();
  result.kpre_rows = kpre.num_rows();
  record_stage_time(result.stage_times, "preselect", elapsed_ns(stage_start));

  stage_start = Clock::now();
  dataflow::Table ks = [&] {
    OBS_SPAN_V(span, "pipeline.interpret");
    dataflow::Table t = interpret(engine, kpre, urel_, config_.interpret);
    span.set_rows(t.num_rows());
    return t;
  }();
  result.ks_rows = ks.num_rows();
  record_stage_time(result.stage_times, "interpret", elapsed_ns(stage_start));
  OBS_COUNT("pipeline.ks_rows", result.ks_rows);

  // Lines 7–9: splitting + gateway dedup.
  stage_start = Clock::now();
  SplitDataResult split = [&] {
    OBS_SPAN_V(span, "pipeline.split");
    SplitDataResult r = split_signals_data(engine, ks, config_.split);
    span.set_rows(r.sequences.size());
    return r;
  }();
  record_stage_time(result.stage_times, "split", elapsed_ns(stage_start));
  if (config_.keep_ks) {
    result.ks = std::move(ks);
  } else {
    ks = dataflow::Table(ks_schema());
  }

  process_and_merge(engine, std::move(split), result);
  return result;
}

void Pipeline::process_and_merge(dataflow::Engine& engine,
                                 SplitDataResult split,
                                 PipelineResult& result) const {
  using Clock = std::chrono::steady_clock;
  result.correspondences = std::move(split.correspondences);

  // Lines 10–28 per sequence, parallel across sequences: reduction,
  // extension, classification, branch processing.
  const std::size_t n = split.sequences.size();
  std::vector<SequenceReport> reports(n);
  std::vector<dataflow::Table> branch_tables(n);
  std::vector<std::vector<dataflow::Table>> extension_tables(n);
  SubStageNs sub_ns;
  errors::FailureLog failure_log;

  const auto process_sequence = [&](std::size_t i) {
    FAULT_POINT("pipeline.sequence");
    const SequenceData& raw = split.sequences[i];
    const signaldb::SignalSpec* spec = spec_of(raw.s_id);
    SequenceReport& report = reports[i];
    report.s_id = raw.s_id;
    report.bus = raw.bus;
    report.input_rows = raw.size();

    // Line 10–11: constraint reduction.
    auto sub_start = Clock::now();
    const SequenceData red = [&] {
      OBS_SPAN_V(span, "sequence.reduce");
      SequenceData r = reduce_sequence(config_.constraints, raw, spec);
      span.set_rows(r.size());
      return r;
    }();
    sub_ns.reduce.fetch_add(elapsed_ns(sub_start),
                            std::memory_order_relaxed);
    report.reduced_rows = red.size();
    const ConstraintContext context{red, spec};

    // Line 12: extensions W (on raw or reduced data, see PipelineConfig).
    sub_start = Clock::now();
    {
      OBS_SPAN_V(span, "sequence.extend");
      const ConstraintContext extension_context{
          config_.extensions_on_reduced ? red : raw, spec};
      extension_tables[i] =
          apply_extensions(config_.extensions, extension_context);
      for (const dataflow::Table& t : extension_tables[i]) {
        report.extension_rows += t.num_rows();
      }
      span.set_rows(report.extension_rows);
    }
    sub_ns.extend.fetch_add(elapsed_ns(sub_start),
                            std::memory_order_relaxed);

    // Lines 13–28: classification + branch processing.
    sub_start = Clock::now();
    {
      OBS_SPAN("sequence.classify");
      report.classification = classify_sequence(context, config_.classifier);
    }
    sub_ns.classify.fetch_add(elapsed_ns(sub_start),
                              std::memory_order_relaxed);

    sub_start = Clock::now();
    {
      OBS_SPAN_V(span, branch_span_name(report.classification.branch));
      branch_tables[i] = process_by_branch(report.classification.branch,
                                           context, config_.branch,
                                           &report.branch_stats);
      span.set_rows(branch_tables[i].num_rows());
    }
    sub_ns.branch.fetch_add(elapsed_ns(sub_start),
                            std::memory_order_relaxed);
    report.output_rows = branch_tables[i].num_rows();
  };

  engine.parallel_for(n, [&](std::size_t i) {
    if (config_.on_error == errors::ErrorPolicy::Fail) {
      errors::with_context("processing sequence " + split.sequences[i].s_id,
                           [&] { process_sequence(i); });
      return;
    }
    try {
      process_sequence(i);
    } catch (const errors::Error& e) {
      if (e.severity() == errors::Severity::Fatal) throw;
      // Degrade: this sequence contributes nothing to R_out; the run
      // continues with the reason on record.
      const SequenceData& raw = split.sequences[i];
      SequenceReport& report = reports[i];
      report.s_id = raw.s_id;
      report.bus = raw.bus;
      report.input_rows = raw.size();
      report.reduced_rows = 0;
      report.output_rows = 0;
      report.extension_rows = 0;
      report.dropped = true;
      report.drop_reason = e.describe();
      branch_tables[i] = dataflow::Table(krep_schema());
      extension_tables[i].clear();
      OBS_COUNT("pipeline.sequences_dropped", 1);
      failure_log.add("pipeline.sequence",
                      "sequence " + raw.s_id + " on " + raw.bus + " (" +
                          std::to_string(raw.size()) + " rows)",
                      e);
    }
  });
  {
    std::vector<errors::FailureRecord> records = failure_log.records();
    result.failures.insert(result.failures.end(),
                           std::make_move_iterator(records.begin()),
                           std::make_move_iterator(records.end()));
  }
  record_stage_time(result.stage_times, "reduce",
                    sub_ns.reduce.load(std::memory_order_relaxed));
  record_stage_time(result.stage_times, "extend",
                    sub_ns.extend.load(std::memory_order_relaxed));
  record_stage_time(result.stage_times, "classify",
                    sub_ns.classify.load(std::memory_order_relaxed));
  record_stage_time(result.stage_times, "branch",
                    sub_ns.branch.load(std::memory_order_relaxed));

  result.sequences = std::move(reports);
  for (const SequenceReport& report : result.sequences) {
    result.reduced_rows += report.reduced_rows;
  }
  OBS_COUNT("pipeline.reduced_rows", result.reduced_rows);

  // Line 29: merge K_res and W into R_out.
  auto stage_start = Clock::now();
  {
    OBS_SPAN_V(span, "pipeline.merge");
    std::vector<dataflow::Table> all;
    all.reserve(branch_tables.size() * 2);
    for (std::size_t i = 0; i < n; ++i) {
      all.push_back(std::move(branch_tables[i]));
      for (dataflow::Table& t : extension_tables[i]) {
        all.push_back(std::move(t));
      }
    }
    result.krep = concat_tables(krep_schema(), std::move(all));
    span.set_rows(result.krep.num_rows());
  }
  result.krep_rows = result.krep.num_rows();
  record_stage_time(result.stage_times, "merge", elapsed_ns(stage_start));
  OBS_COUNT("pipeline.krep_rows", result.krep_rows);

  // Sec. 4.3: state representation.
  if (config_.build_state) {
    stage_start = Clock::now();
    OBS_SPAN_V(span, "pipeline.state_repr");
    result.state =
        build_state_representation(engine, result.krep, config_.state);
    span.set_rows(result.state.num_rows());
    record_stage_time(result.stage_times, "state_repr",
                      elapsed_ns(stage_start));
  }
}

PipelineResult Pipeline::run(dataflow::Engine& engine,
                             const colstore::ColumnarReader& reader,
                             colstore::ScanStats* stats) const {
  if (config_.exec_mode == ExecMode::Streaming) {
    return run_streaming(engine, reader, stats);
  }
  if (config_.exec_mode == ExecMode::Dist) {
    // Dist is orchestrated above the core (coordinator + worker
    // processes); Pipeline::run cannot spawn them. The CLI intercepts
    // --exec dist before reaching here.
    IVT_THROW(errors::Category::Spec,
              "dist execution is orchestrated by the CLI "
              "(ivt run --exec dist), not Pipeline::run");
  }
  errors::FailureLog scan_failures;
  colstore::ScanOptions scan_options;
  scan_options.on_error = config_.on_error;
  scan_options.failures = &scan_failures;
  scan_options.mode = config_.scan_mode;
  colstore::ScanStats local;
  const dataflow::Table kb = reader.scan({}, engine, scan_options, &local);
  PipelineResult result = run(engine, kb);
  // Scan-level losses come first in the report, matching the order events
  // actually happened.
  std::vector<errors::FailureRecord> all = scan_failures.records();
  all.insert(all.end(), std::make_move_iterator(result.failures.begin()),
             std::make_move_iterator(result.failures.end()));
  result.failures = std::move(all);
  if (stats != nullptr) *stats = local;
  return result;
}

PipelineResult Pipeline::merge_morsel_partials(
    dataflow::Engine& engine, KeyedSegments&& keyed, std::size_t kb_rows,
    std::size_t kpre_rows, std::size_t ks_rows,
    std::vector<errors::FailureRecord> failures) const {
  OBS_SPAN("pipeline.merge_morsel_partials");
  PipelineResult result;
  result.kb_rows = kb_rows;
  result.kpre_rows = kpre_rows;
  result.ks_rows = ks_rows;
  result.failures = std::move(failures);
  const auto merge_start = std::chrono::steady_clock::now();
  SplitDataResult split = merge_split_segments(std::move(keyed), config_.split);
  record_stage_time(result.stage_times, "dist_merge",
                    elapsed_ns(merge_start));
  process_and_merge(engine, std::move(split), result);
  return result;
}

}  // namespace ivt::core
