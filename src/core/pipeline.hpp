// End-to-end preprocessing pipeline (paper Algorithm 1).
//
// One-time parameterization per domain: which signals to extract
// (U_comb), the reduction constraint set C, the extension rules E, the
// classifier threshold and the branch knobs. Once parameterized, the
// pipeline turns any raw trace table K_b into the reduced, interpreted,
// homogeneous sequence R_out and the wide state representation — fully
// automatically, as a sequence of distributable tabular operations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/branches.hpp"
#include "core/classify.hpp"
#include "core/extend.hpp"
#include "core/interpret.hpp"
#include "core/partials.hpp"
#include "core/reduce.hpp"
#include "core/split.hpp"
#include "core/state_repr.hpp"
#include "dataflow/engine.hpp"
#include "errors/error.hpp"
#include "errors/failure_log.hpp"
#include "signaldb/catalog.hpp"

namespace ivt::core {

/// How the pipeline executes lines 2–9 of Algorithm 1 over a columnar
/// trace.
///
/// Batch (default): materialize the full K_b scan, then run preselect /
/// interpret / split as separate engine stages with a barrier between
/// each — peak memory grows with the trace.
///
/// Streaming: each surviving .ivc chunk flows decode → preselect →
/// interpret → per-signal shard append as ONE morsel task; bounded task
/// admission caps the number of decoded morsels in flight, so peak memory
/// is bounded by max_in_flight × chunk size + the split accumulators.
/// Output (K_s, K_rep, reports, failure counters) is identical to batch.
///
/// Dist: the streaming morsel work fanned out over coordinator-assigned
/// worker processes (src/dist); orchestrated by the CLI layer
/// (`ivt run --exec dist`), not by Pipeline::run — the core only merges
/// the returned partials via merge_morsel_partials. Output is again
/// identical to batch, clean runs and recovered-failure runs alike.
enum class ExecMode { Batch, Streaming, Dist };

/// Parse "batch" / "streaming" / "dist" (the CLI --exec values); throws
/// std::invalid_argument on anything else.
ExecMode parse_exec_mode(const std::string& text);
[[nodiscard]] const char* to_string(ExecMode mode);

struct StreamingOptions {
  /// Cap on morsels simultaneously queued or running. 0 = 2 × workers + 1
  /// (enough to keep every worker busy while one morsel is being
  /// admitted, without unbounded queue growth).
  std::size_t max_in_flight = 0;
  /// Hash-shard count for the split accumulators (shard by s_id). 0 =
  /// 4 × workers, clamped to [1, 64]. Purely a contention knob: results
  /// are merged order-stably and do not depend on it.
  std::size_t shards = 0;
};

struct PipelineConfig {
  /// U_comb: the domain's relevant signals. Empty = all catalog signals.
  std::vector<std::string> signals;
  ClassifierConfig classifier;
  BranchConfig branch;
  /// C: reduction constraints. Defaults to the paper's evaluation setup
  /// (remove repeated identical instances, preserve cycle violations).
  std::vector<ConstraintRule> constraints;
  /// E: extension rules (default: none).
  std::vector<ExtensionRule> extensions;
  /// Algorithm 1 line 12 applies F_E to K_red. On reduced data, gap-based
  /// rules would see gaps created by repeat-removal rather than true send
  /// gaps, so the default applies extensions to the pre-reduction split
  /// sequence (both coincide when C is empty). Set true for the literal
  /// Algorithm 1 behaviour.
  bool extensions_on_reduced = false;
  InterpretOptions interpret;
  SplitOptions split;
  StateRepresentationOptions state;
  bool build_state = true;
  /// Keep the (large) K_s table in the result for inspection.
  bool keep_ks = false;
  /// What to do when one sequence fails in reduce/extend/classify/branch:
  /// Fail aborts the run (default); Skip/Quarantine degrade to "sequence
  /// dropped, reason recorded" — the failed sequence contributes no rows
  /// to R_out and shows up in PipelineResult::failures.
  errors::ErrorPolicy on_error = errors::ErrorPolicy::Fail;
  /// Execution topology for run(engine, reader); see ExecMode.
  ExecMode exec_mode = ExecMode::Batch;
  StreamingOptions streaming;
  /// How .ivc chunks are evaluated (CLI --scan): Decoded materializes
  /// every column of every zone-map-surviving chunk before row filtering;
  /// Compressed evaluates the U_comb predicate on the v2 key-run headers
  /// — rejected runs are skipped without materializing a row, accepted
  /// runs join U_comb by dictionary index. Output is byte-identical in
  /// every exec mode; v1 files fall back to Decoded per chunk.
  colstore::ScanMode scan_mode = colstore::ScanMode::Decoded;

  PipelineConfig() { constraints.push_back(drop_repeated_values_rule()); }
};

/// Per-sequence outcome (one row of the processing report).
struct SequenceReport {
  std::string s_id;
  std::string bus;
  Classification classification;
  std::size_t input_rows = 0;    ///< after splitting
  std::size_t reduced_rows = 0;  ///< after constraint reduction (K_red)
  std::size_t output_rows = 0;   ///< homogenized elements (K_res)
  std::size_t extension_rows = 0;
  BranchStats branch_stats;
  /// Set when the sequence failed and the on_error policy dropped it.
  bool dropped = false;
  std::string drop_reason;
};

/// Wall time of one Algorithm-1 stage across the whole run (sub-stages
/// executed per sequence are summed over sequences, so on a parallel run
/// they can exceed the elapsed wall clock).
struct StageTiming {
  std::string stage;
  double wall_ms = 0.0;
};

/// Recovery accounting of one distributed run (zeros / disabled for batch
/// and streaming). Rendered into the report JSON "failures" section so
/// re-assigned ranges are auditable next to quarantined chunks.
struct DistStats {
  bool enabled = false;
  std::size_t nodes = 0;          ///< sim/real worker processes launched
  std::size_t ranges_total = 0;   ///< chunk ranges assigned over the run
  std::size_t worker_deaths = 0;  ///< members declared dead (missed beats)
  std::size_t ranges_reassigned = 0;    ///< re-queued after a death
  std::size_t speculative_launched = 0; ///< straggler duplicates issued
  std::size_t speculative_wins = 0;     ///< duplicates that finished first
  std::size_t results_deduped = 0;  ///< late/duplicate partials discarded
  std::size_t registrations_retried = 0;  ///< worker register retries
};

struct PipelineResult {
  std::size_t kb_rows = 0;
  std::size_t kpre_rows = 0;
  std::size_t ks_rows = 0;
  std::size_t reduced_rows = 0;
  std::size_t krep_rows = 0;

  /// Per-stage wall-time totals in execution order (preselect, interpret,
  /// split, reduce, extend, classify, branch, merge, state_repr). Also
  /// published to the obs metrics registry as
  /// `pipeline.stage.<name>.wall_ns` counters.
  std::vector<StageTiming> stage_times;

  dataflow::Table ks;    ///< only populated when config.keep_ks
  dataflow::Table krep;  ///< R_out: merged homogeneous sequence (incl. W)
  dataflow::Table state; ///< state representation (empty when disabled)
  std::vector<SequenceReport> sequences;
  std::vector<ChannelCorrespondence> correspondences;
  /// Recovered failures under Skip/Quarantine; empty on a clean run or
  /// under Fail (which aborts instead). The pipeline records dropped
  /// sequences here; callers may merge in upstream losses (quarantined
  /// scan chunks, truncated traces) before rendering the report.
  std::vector<errors::FailureRecord> failures;
  /// Distributed-run recovery counters (enabled only under ExecMode::Dist).
  DistStats dist;
  [[nodiscard]] std::size_t sequences_dropped() const {
    std::size_t n = 0;
    for (const SequenceReport& s : sequences) n += s.dropped ? 1 : 0;
    return n;
  }
};

class Pipeline {
 public:
  /// The catalog must outlive the pipeline (specs are referenced, not
  /// copied). Throws std::invalid_argument on unknown signal names.
  Pipeline(const signaldb::Catalog& catalog, PipelineConfig config);

  [[nodiscard]] const PipelineConfig& config() const { return config_; }
  /// The parameterization table U_comb handed to the join.
  [[nodiscard]] const dataflow::Table& urel() const { return urel_; }

  /// Full Algorithm 1.
  PipelineResult run(dataflow::Engine& engine,
                     const dataflow::Table& kb) const;

  /// Full Algorithm 1 from a columnar reader, dispatching on
  /// config().exec_mode. Batch materializes a full scan (honouring
  /// config().on_error for corrupt chunks) and runs run(engine, kb);
  /// Streaming runs run_streaming(). In both modes scan-level failures
  /// (quarantined chunks) are folded into result.failures ahead of
  /// sequence failures, and `stats` (optional) receives the scan
  /// statistics — callers need not merge anything themselves.
  PipelineResult run(dataflow::Engine& engine,
                     const colstore::ColumnarReader& reader,
                     colstore::ScanStats* stats = nullptr) const;

  /// The streaming morsel path (ignores config().exec_mode — this IS the
  /// streaming mode): U_comb is pushed down as the scan predicate, each
  /// surviving chunk is decoded, preselected, interpreted and bucketed
  /// into hash-sharded split accumulators as one bounded-admission task,
  /// and the accumulators are merged order-stably so K_s order, split
  /// sequences, K_rep and all counters are identical to batch.
  PipelineResult run_streaming(dataflow::Engine& engine,
                               const colstore::ColumnarReader& reader,
                               colstore::ScanStats* stats = nullptr) const;

  /// Entry point for the distributed executor (src/dist): merge the
  /// per-morsel split segments collected from workers through the shared
  /// order-stable merge, then run Algorithm 1 lines 10–29 + state exactly
  /// like the in-process modes. `keyed` is consumed; `kb_rows` /
  /// `kpre_rows` / `ks_rows` are the caller-accumulated scan counters;
  /// `failures` are upstream losses (quarantined chunks shipped back by
  /// workers), which sequence-level failures are appended after — the
  /// same ordering the streaming path produces.
  PipelineResult merge_morsel_partials(
      dataflow::Engine& engine, KeyedSegments&& keyed, std::size_t kb_rows,
      std::size_t kpre_rows, std::size_t ks_rows,
      std::vector<errors::FailureRecord> failures) const;

  /// Lines 3–6 only: preselection, join, interpretation. Returns K_s.
  dataflow::Table extract(dataflow::Engine& engine,
                          const dataflow::Table& kb) const;

  /// Lines 3–11 only (the scope of the paper's Fig. 5 measurement):
  /// extraction, splitting/dedup and constraint reduction.
  struct ReducedResult {
    std::size_t ks_rows = 0;
    std::size_t reduced_rows = 0;
    std::vector<SequenceData> sequences;
    std::vector<ChannelCorrespondence> correspondences;
  };
  ReducedResult extract_and_reduce(dataflow::Engine& engine,
                                   const dataflow::Table& kb) const;

  /// Streaming-mode lines 3–11 (Fig. 5 scope) straight from a reader.
  ReducedResult extract_and_reduce_streaming(
      dataflow::Engine& engine,
      const colstore::ColumnarReader& reader) const;

 private:
  [[nodiscard]] const signaldb::SignalSpec* spec_of(
      const std::string& s_id) const;

  /// Algorithm 1 lines 10–29 + state representation, shared verbatim by
  /// the batch and streaming paths: consumes `split`, fills sequence
  /// reports, K_rep, state and the per-sequence stage times, and appends
  /// dropped-sequence failures to result.failures.
  void process_and_merge(dataflow::Engine& engine, SplitDataResult split,
                         PipelineResult& result) const;

  const signaldb::Catalog& catalog_;
  PipelineConfig config_;
  dataflow::Table urel_;
};

/// Concatenate krep-schema tables (deterministic order, partitions moved).
dataflow::Table concat_tables(const dataflow::Schema& schema,
                              std::vector<dataflow::Table> tables);

/// Append one stage total to `times` and publish it to the metrics
/// registry (`pipeline.stage.<name>.wall_ns`). Shared by pipeline.cpp and
/// streaming.cpp so both modes report stage times the same way.
void record_stage_time(std::vector<StageTiming>& times, const char* name,
                       std::uint64_t wall_ns);

}  // namespace ivt::core
