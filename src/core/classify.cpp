#include "core/classify.hpp"

#include <unordered_set>

namespace ivt::core {

std::string_view to_string(DataType type) {
  switch (type) {
    case DataType::Numeric:
      return "numeric";
    case DataType::Ordinal:
      return "ordinal";
    case DataType::Binary:
      return "binary";
    case DataType::Nominal:
      return "nominal";
  }
  return "unknown";
}

std::string_view to_string(Branch branch) {
  switch (branch) {
    case Branch::Alpha:
      return "alpha";
    case Branch::Beta:
      return "beta";
    case Branch::Gamma:
      return "gamma";
  }
  return "unknown";
}

Classification map_criteria(const Criteria& z) {
  Classification c;
  c.criteria = z;
  // Paper Table 3, row by row.
  if (z.z_type == 'N' && z.z_rate == 'H' && z.z_num > 2 && z.z_val) {
    c.data_type = DataType::Numeric;
    c.branch = Branch::Alpha;
  } else if (z.z_type == 'N' && z.z_rate == 'L' && z.z_num > 2 && z.z_val) {
    c.data_type = DataType::Ordinal;
    c.branch = Branch::Beta;
  } else if (z.z_type == 'S' && z.z_num > 2 && z.z_val) {
    c.data_type = DataType::Ordinal;
    c.branch = Branch::Beta;
  } else if (z.z_type == 'S' && z.z_num == 2 && z.z_val) {
    c.data_type = DataType::Binary;
    c.branch = Branch::Gamma;
  } else if (z.z_type == 'S' && z.z_num > 2 && !z.z_val) {
    c.data_type = DataType::Nominal;
    c.branch = Branch::Gamma;
  } else if (z.z_type == 'N' && z.z_num == 2 && z.z_val) {
    c.data_type = DataType::Binary;
    c.branch = Branch::Gamma;
  } else {
    // Not listed (e.g. constant sequences with z_num <= 1): treat as
    // nominal, processed without transformation.
    c.data_type = DataType::Nominal;
    c.branch = Branch::Gamma;
  }
  return c;
}

Classification classify_sequence(const ConstraintContext& context,
                                 const ClassifierConfig& config) {
  const SequenceData& d = context.data;
  Criteria z;

  // z_type: a sequence whose instances carry labels is a string sequence.
  bool any_str = false;
  for (std::uint8_t h : d.has_str) {
    if (h != 0) {
      any_str = true;
      break;
    }
  }
  z.z_type = any_str ? 'S' : 'N';

  // z_rate (Eq. 2): values per second of active duration vs threshold T.
  const double duration = d.duration_s();
  const double rate =
      duration > 0.0 ? static_cast<double>(d.size()) / duration : 0.0;
  z.z_rate = rate > config.rate_threshold_hz ? 'H' : 'L';

  // z_num: distinct *functional* values (validity labels excluded).
  auto is_validity_label = [&](const std::string& label) {
    if (context.spec == nullptr) return false;
    for (const signaldb::ValueTableEntry& e : context.spec->value_table) {
      if (e.label == label) return e.validity;
    }
    return false;
  };
  if (any_str) {
    std::unordered_set<std::string> distinct;
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (d.has_str[i] == 0) continue;
      if (is_validity_label(d.v_str[i])) continue;
      distinct.insert(d.v_str[i]);
      if (distinct.size() >= config.max_distinct_tracked) break;
    }
    z.z_num = distinct.size();
  } else {
    std::unordered_set<double> distinct;
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (d.has_num[i] == 0) continue;
      distinct.insert(d.v_num[i]);
      if (distinct.size() >= config.max_distinct_tracked) break;
    }
    z.z_num = distinct.size();
  }

  // z_val: numeric values are inherently comparable; string values carry a
  // valence when the catalog documents an ordering, and two-valued string
  // signals (ON/OFF-like) are treated as comparable per Table 3's binary
  // row.
  if (any_str) {
    const bool ordered =
        context.spec != nullptr && context.spec->ordered_values;
    z.z_val = ordered || z.z_num <= 2;
  } else {
    z.z_val = true;
  }

  return map_criteria(z);
}

}  // namespace ivt::core
