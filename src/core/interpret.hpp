// Preselection + information interpretation (paper Sec. 3, Algorithm 1
// lines 3–6).
//
// Preselection filters the raw byte trace K_b down to the message types
// referenced by U_comb *before* any interpretation happens ("Interpretation
// cost is kept low as relevant messages are filtered prior to
// interpretation"). Interpretation joins U_comb onto the preselected rows
// and applies the per-row mappings
//   u1 : (l, u_info) -> l_rel          (relevant payload bytes)
//   u2 : (l_rel, m_info, u_info) -> (t, (v, s_id))
// yielding the signal-instance table K_s.
#pragma once

#include <memory>
#include <vector>

#include "colstore/columnar_reader.hpp"
#include "dataflow/engine.hpp"
#include "dataflow/table.hpp"
#include "signaldb/catalog.hpp"

namespace ivt::core {

struct InterpretOptions {
  /// Broadcast catalog used to resolve categorical labels (the Spark
  /// equivalent is a broadcast variable). Without it, categorical values
  /// decode as "raw:<n>".
  const signaldb::Catalog* catalog = nullptr;
  /// Drop records the monitor flagged as error frames.
  bool skip_error_frames = false;
  /// Execute the literal Algorithm 1 plan: materialize K_join via the
  /// hash join (line 4), then run F_u1 (line 5) and F_u2 (line 6) as
  /// separate engine stages. The default instead fuses the join probe and
  /// both mappings into one pipelined stage — the same plan a Spark
  /// optimizer produces (broadcast join + whole-stage codegen), avoiding
  /// the K_join materialization that duplicates each payload once per
  /// matched signal. Used by bench_ablation_join.
  bool two_stage_interpretation = false;
};

/// Line 3: K_pre = σ_{(m_id,b_id) ∈ U_comb}(K_b).
dataflow::Table preselect(dataflow::Engine& engine, const dataflow::Table& kb,
                          const dataflow::Table& urel);

/// Line 3 with storage pushdown: instead of decoding all of K_b and then
/// filtering, push the U_comb (m_id, b_id) set into a columnar scan —
/// chunks whose zone maps cannot intersect the set are skipped entirely,
/// and surviving chunks are row-filtered to the exact pair set during
/// decode. Returns the same K_pre rows, in the same logical order, as
/// preselect(engine, reader.scan(), urel).
dataflow::Table preselect(dataflow::Engine& engine,
                          const colstore::ColumnarReader& reader,
                          const dataflow::Table& urel,
                          colstore::ScanStats* stats = nullptr);

/// Pushdown preselect with a failure policy: under Skip/Quarantine a
/// chunk that fails to decode is dropped (recorded in `options.failures`
/// and the scan stats) instead of aborting the run.
dataflow::Table preselect(dataflow::Engine& engine,
                          const colstore::ColumnarReader& reader,
                          const dataflow::Table& urel,
                          const colstore::ScanOptions& options,
                          colstore::ScanStats* stats = nullptr);

/// The ScanPredicate form of U_comb's (m_id, b_id) set, as pushed down by
/// the pushdown preselect overloads and by the streaming execution path —
/// both must prune and row-filter identically.
colstore::ScanPredicate urel_scan_predicate(const dataflow::Table& urel);

/// Reusable fused interpretation kernel (join probe + u1 + u2 of
/// Algorithm 1 lines 4–6): the broadcast U_comb map is built once, then
/// interpret_partition() turns any K_pre partition into K_s rows. Both the
/// batch interpret() stage and the streaming morsel path run through this
/// class, so the two execution modes cannot drift semantically.
class InterpretKernel {
 public:
  /// Build the broadcast side from U_comb. `urel` and the catalog in
  /// `options` are only read during construction.
  InterpretKernel(const dataflow::Table& urel,
                  const InterpretOptions& options);
  ~InterpretKernel();
  InterpretKernel(const InterpretKernel&) = delete;
  InterpretKernel& operator=(const InterpretKernel&) = delete;

  /// Interpret every row of the K_pre partition `in` (schema `in_schema`,
  /// K_b layout), appending the resulting signal instances to the
  /// ks_schema() partition `out` in row order. Const and thread-safe:
  /// morsel tasks call this concurrently.
  void interpret_partition(const dataflow::Partition& in,
                           const dataflow::Schema& in_schema,
                           dataflow::Partition& out) const;

  /// The U_comb join resolved against one file's key dictionary: entry k
  /// is the broadcast bucket of key_dict[k] (null when that (bus, id) has
  /// no translation tuples). Computed once per file; the compressed
  /// execution path then joins each accepted key run by array index
  /// instead of re-hashing "bus\x1F<id>" per row.
  class KeyTable;

  /// Build the per-file key table. One broadcast-map probe per dictionary
  /// entry, not per row. Thread-safe; the kernel must outlive the table.
  [[nodiscard]] std::shared_ptr<const KeyTable> prepare_keys(
      const std::vector<colstore::KeyDictEntry>& key_dict,
      const std::vector<std::string>& buses) const;

  /// interpret_partition for a compressed-scanned partition: `runs` are
  /// the accepted key runs (output-row coordinates) the scan emitted, and
  /// every row of `in` must be covered by them. Joins run-level through
  /// `table`; emits exactly what interpret_partition would on the same
  /// rows. Const and thread-safe.
  void interpret_runs(const dataflow::Partition& in,
                      const dataflow::Schema& in_schema,
                      const std::vector<colstore::EmittedRun>& runs,
                      const KeyTable& table,
                      dataflow::Partition& out) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Lines 4–6: K_join = K_pre ⋈ U_comb; K_s = F_u2(F_u1(K_join)).
dataflow::Table interpret(dataflow::Engine& engine,
                          const dataflow::Table& kpre,
                          const dataflow::Table& urel,
                          const InterpretOptions& options = {});

/// Convenience: preselect + interpret.
dataflow::Table extract_signals(dataflow::Engine& engine,
                                const dataflow::Table& kb,
                                const dataflow::Table& urel,
                                const InterpretOptions& options = {});

}  // namespace ivt::core
