#include "core/state_repr.hpp"

#include <unordered_map>

#include "core/schemas.hpp"
#include "dataflow/ops.hpp"

namespace ivt::core {

dataflow::Table build_state_representation(
    dataflow::Engine& engine, const dataflow::Table& krep,
    const StateRepresentationOptions& options) {
  using dataflow::Field;
  using dataflow::Schema;
  using dataflow::Table;
  using dataflow::ValueType;

  const Table sorted = dataflow::sort_by(engine, krep, {{"t", true}},
                                         "state_repr_sort");
  const std::size_t t_col = sorted.schema().require("t");
  const std::size_t sid_col = sorted.schema().require("s_id");
  const std::size_t value_col = sorted.schema().require("value");
  const std::size_t kind_col = sorted.schema().require("element_kind");

  // Pass 1: column order = first appearance.
  std::vector<std::string> columns;
  std::unordered_map<std::string, std::size_t> column_of;
  sorted.for_each_row([&](const dataflow::RowView& row) {
    const std::string& kind = row.string_at(kind_col);
    if (!options.include_extensions && kind == kElementExtension) return;
    const std::string& s_id = row.string_at(sid_col);
    if (column_of.emplace(s_id, columns.size()).second) {
      columns.push_back(s_id);
    }
  });

  std::vector<Field> fields;
  fields.push_back(Field{"t", ValueType::Int64});
  for (const std::string& name : columns) {
    fields.push_back(Field{name, ValueType::String});
  }
  const Schema out_schema{std::move(fields)};
  dataflow::TableBuilder builder(out_schema, 0);

  // Pass 2: forward-fill scan. `current` holds the last value per column;
  // extension columns are reset after each emitted row when momentary.
  std::vector<dataflow::Value> current(columns.size());
  std::vector<bool> is_extension_col(columns.size(), false);
  std::vector<bool> touched(columns.size(), false);

  std::int64_t pending_t = 0;
  bool has_pending = false;

  auto emit_row = [&]() {
    if (!has_pending) return;
    std::vector<dataflow::Value> row;
    row.reserve(1 + current.size());
    row.emplace_back(pending_t);
    for (const dataflow::Value& v : current) row.push_back(v);
    builder.append_row(std::move(row));
    if (options.momentary_extensions) {
      for (std::size_t c = 0; c < current.size(); ++c) {
        if (is_extension_col[c] && touched[c]) {
          current[c] = dataflow::Value{};
          touched[c] = false;
        }
      }
    }
    has_pending = false;
  };

  sorted.for_each_row([&](const dataflow::RowView& row) {
    const std::string& kind = row.string_at(kind_col);
    if (!options.include_extensions && kind == kElementExtension) return;
    const std::int64_t t = row.int64_at(t_col);
    if (has_pending && (!options.merge_same_timestamp || t != pending_t)) {
      emit_row();
    }
    const std::size_t c = column_of.at(row.string_at(sid_col));
    current[c] = dataflow::Value{row.string_at(value_col)};
    if (kind == kElementExtension) {
      is_extension_col[c] = true;
      touched[c] = true;
    }
    pending_t = t;
    has_pending = true;
  });
  emit_row();

  return builder.build().repartitioned(engine.default_partitions());
}

}  // namespace ivt::core
