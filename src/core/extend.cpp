#include "core/extend.hpp"

#include <cmath>

#include "core/schemas.hpp"

namespace ivt::core {

ExtensionEmitter::ExtensionEmitter(std::string w_id, std::string bus)
    : w_id_(std::move(w_id)),
      bus_(std::move(bus)),
      builder_(krep_schema(), 0) {}

void ExtensionEmitter::emit(std::int64_t t_ns, double v_num,
                            std::string value_text) {
  dataflow::Partition& dst = builder_.current_partition();
  dst.columns[0].append_int64(t_ns);
  dst.columns[1].append_string(w_id_);
  dst.columns[2].append_string(std::move(value_text));
  dst.columns[3].append_float64(v_num);
  dst.columns[4].append_string(kElementExtension);
  dst.columns[5].append_string(bus_);
  builder_.commit_row();
  ++count_;
}

dataflow::Table ExtensionEmitter::build() { return builder_.build(); }

std::vector<dataflow::Table> apply_extensions(
    const std::vector<ExtensionRule>& rules,
    const ConstraintContext& context) {
  std::vector<dataflow::Table> tables;
  for (const ExtensionRule& rule : rules) {
    if (rule.signal_pattern != "*" &&
        rule.signal_pattern != context.data.s_id) {
      continue;
    }
    if (!rule.apply) continue;
    ExtensionEmitter emitter(context.data.s_id + "." + rule.name,
                             context.data.bus);
    rule.apply(context, emitter);
    if (emitter.count() > 0) tables.push_back(emitter.build());
  }
  return tables;
}

ExtensionRule gap_extension() {
  ExtensionRule rule;
  rule.name = "gap";
  rule.apply = [](const ConstraintContext& ctx, ExtensionEmitter& out) {
    const SequenceData& d = ctx.data;
    for (std::size_t i = 1; i < d.size(); ++i) {
      const double gap_s = static_cast<double>(d.t[i] - d.t[i - 1]) / 1e9;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", gap_s);
      out.emit(d.t[i], gap_s, buf);
    }
  };
  return rule;
}

ExtensionRule cycle_violation_extension(double tolerance) {
  ExtensionRule rule;
  rule.name = "cycle_violation";
  rule.apply = [tolerance](const ConstraintContext& ctx,
                           ExtensionEmitter& out) {
    if (ctx.spec == nullptr || ctx.spec->expected_cycle_ns <= 0) return;
    const SequenceData& d = ctx.data;
    const double limit =
        tolerance * static_cast<double>(ctx.spec->expected_cycle_ns);
    for (std::size_t i = 1; i < d.size(); ++i) {
      const double gap = static_cast<double>(d.t[i] - d.t[i - 1]);
      if (gap > limit) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "violation gap=%.4gs expected=%.4gs",
                      gap / 1e9,
                      static_cast<double>(ctx.spec->expected_cycle_ns) / 1e9);
        out.emit(d.t[i], gap / 1e9, buf);
      }
    }
  };
  return rule;
}

ExtensionRule derivative_extension() {
  ExtensionRule rule;
  rule.name = "derivative";
  rule.apply = [](const ConstraintContext& ctx, ExtensionEmitter& out) {
    const SequenceData& d = ctx.data;
    for (std::size_t i = 1; i < d.size(); ++i) {
      if (d.has_num[i] == 0 || d.has_num[i - 1] == 0) continue;
      const double dt = static_cast<double>(d.t[i] - d.t[i - 1]) / 1e9;
      if (dt <= 0.0) continue;
      const double dv = (d.v_num[i] - d.v_num[i - 1]) / dt;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", dv);
      out.emit(d.t[i], dv, buf);
    }
  };
  return rule;
}

}  // namespace ivt::core
