#include "core/partials.hpp"

#include <algorithm>
#include <utility>

#include "core/pipeline.hpp"
#include "core/schemas.hpp"
#include "tracefile/trace.hpp"

namespace ivt::core {

void accumulate_partial(KeyedSegments& keyed, MorselPartial&& partial) {
  for (KeySegment& seg : partial.segments) {
    keyed[seg.key].push_back(
        SplitSegment{partial.morsel, seg.first_row, std::move(seg.data)});
  }
  partial.segments.clear();
}

SplitDataResult merge_split_segments(KeyedSegments&& keyed,
                                     const SplitOptions& options) {
  // Within one key, morsel order == chunk order == batch partition order,
  // so concatenating segments sorted by morsel reproduces the batch
  // phase-2 concatenation; across keys, (first morsel, first row) sorts
  // into exactly the batch first-appearance order.
  struct FirstHit {
    std::size_t morsel;
    std::size_t row;
    std::string key;
  };
  std::vector<FirstHit> firsts;
  firsts.reserve(keyed.size());
  std::unordered_map<std::string, SequenceData> merged;
  merged.reserve(keyed.size());
  for (auto& [key, segments] : keyed) {
    std::sort(segments.begin(), segments.end(),
              [](const SplitSegment& a, const SplitSegment& b) {
                return a.morsel < b.morsel;
              });
    SequenceData seq = std::move(segments.front().data);
    for (std::size_t s = 1; s < segments.size(); ++s) {
      append_sequence_data(seq, std::move(segments[s].data));
    }
    firsts.push_back(
        {segments.front().morsel, segments.front().first_row, key});
    merged.emplace(key, std::move(seq));
  }
  keyed.clear();
  std::sort(firsts.begin(), firsts.end(),
            [](const FirstHit& a, const FirstHit& b) {
              return a.morsel != b.morsel ? a.morsel < b.morsel
                                          : a.row < b.row;
            });
  std::vector<std::string> order;
  order.reserve(firsts.size());
  for (FirstHit& f : firsts) order.push_back(std::move(f.key));
  return group_split_sequences(order, merged, options);
}

MorselProcessor::MorselProcessor(const colstore::ColumnarReader& reader,
                                 const dataflow::Table& urel,
                                 const PipelineConfig& config,
                                 errors::FailureLog* failures)
    : cursor_([&] {
        colstore::ScanOptions scan_options;
        scan_options.on_error = config.on_error;
        scan_options.failures = failures;
        scan_options.mode = config.scan_mode;
        return reader.cursor(urel_scan_predicate(urel), scan_options);
      }()),
      kernel_(urel, config.interpret) {
  if (cursor_.compressed()) {
    key_table_ = kernel_.prepare_keys(reader.key_dict(), reader.bus_names());
  }
}

MorselPartial MorselProcessor::process(std::size_t k,
                                       dataflow::Partition* keep_ks) const {
  MorselPartial out;
  out.morsel = k;
  // Decode + preselect: the cursor's compiled row filter IS the
  // preselection predicate; a quarantined chunk yields an empty partition
  // (and is already on the failure log).
  std::vector<colstore::EmittedRun> runs;
  const dataflow::Partition kpre_part = key_table_ != nullptr
                                            ? cursor_.decode(k, runs)
                                            : cursor_.decode(k);
  out.kpre_rows = kpre_part.num_rows();
  // Interpret (Algorithm 1 lines 4–6), shared kernel. On the compressed
  // path the scan's accepted runs drive a dictionary join; otherwise the
  // row-wise broadcast probe.
  const dataflow::Schema& ks_schema_ref = ks_schema();
  dataflow::Partition ks_part = dataflow::Table::make_partition(ks_schema_ref);
  if (key_table_ != nullptr) {
    kernel_.interpret_runs(kpre_part, tracefile::kb_schema(), runs,
                           *key_table_, ks_part);
  } else {
    kernel_.interpret_partition(kpre_part, tracefile::kb_schema(), ks_part);
  }
  out.ks_rows = ks_part.num_rows();
  // Bucket (line 8 semantics).
  PartitionSplit buckets = bucket_split_partition(ks_part, ks_schema_ref);
  if (keep_ks != nullptr) *keep_ks = std::move(ks_part);
  out.segments.reserve(buckets.order.size());
  for (std::size_t i = 0; i < buckets.order.size(); ++i) {
    KeySegment seg;
    seg.key = buckets.order[i];
    seg.first_row = buckets.first_row[i];
    seg.data = std::move(buckets.buckets.at(seg.key));
    out.segments.push_back(std::move(seg));
  }
  return out;
}

}  // namespace ivt::core
