#include "core/interpret.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/schemas.hpp"
#include "core/urel.hpp"
#include "dataflow/ops.hpp"
#include "protocol/bitcodec.hpp"
#include "tracefile/trace.hpp"

namespace ivt::core {

namespace {

using dataflow::Engine;
using dataflow::Partition;
using dataflow::RowView;
using dataflow::Schema;
using dataflow::Table;
using dataflow::Value;
using dataflow::ValueType;

/// Column indices of the joined table (left K_b fields + U_rel payload
/// fields), resolved once per operation.
struct JoinCols {
  std::size_t t, l, b_id, m_id, m_info;
  std::size_t s_id, start_bit, length, byte_order, value_kind, scale, offset;
  std::size_t categorical, presence_always, presence_start, presence_length;
  std::size_t presence_order, presence_equals;

  explicit JoinCols(const Schema& schema)
      : t(schema.require("t")),
        l(schema.require("l")),
        b_id(schema.require("b_id")),
        m_id(schema.require("m_id")),
        m_info(schema.require("m_info")),
        s_id(schema.require("s_id")),
        start_bit(schema.require("start_bit")),
        length(schema.require("length")),
        byte_order(schema.require("byte_order")),
        value_kind(schema.require("value_kind")),
        scale(schema.require("scale")),
        offset(schema.require("offset")),
        categorical(schema.require("categorical")),
        presence_always(schema.require("presence_always")),
        presence_start(schema.require("presence_start")),
        presence_length(schema.require("presence_length")),
        presence_order(schema.require("presence_order")),
        presence_equals(schema.require("presence_equals")) {}
};

protocol::ByteOrder order_from(std::int64_t code) {
  return code != 0 ? protocol::ByteOrder::Motorola
                   : protocol::ByteOrder::Intel;
}

/// Label lookup broadcast: s_id -> spec (for value tables).
std::unordered_map<std::string, const signaldb::SignalSpec*> broadcast_specs(
    const signaldb::Catalog* catalog) {
  std::unordered_map<std::string, const signaldb::SignalSpec*> map;
  if (catalog == nullptr) return map;
  for (const signaldb::MessageSpec& m : catalog->messages()) {
    for (const signaldb::SignalSpec& s : m.signals) {
      map.emplace(s.name, &s);
    }
  }
  return map;
}

}  // namespace

Table preselect(Engine& engine, const Table& kb, const Table& urel) {
  // Broadcast the relevant (b_id, m_id) set and filter K_b row-wise.
  struct KeyHash {
    std::size_t operator()(const MessageKey& k) const {
      return std::hash<std::string>{}(k.bus) * 31 +
             std::hash<std::int64_t>{}(k.message_id);
    }
  };
  std::unordered_set<MessageKey, KeyHash> keys;
  for (MessageKey& key : relevant_message_keys(urel)) {
    keys.insert(std::move(key));
  }
  const std::size_t b_col = kb.schema().require("b_id");
  const std::size_t m_col = kb.schema().require("m_id");
  return dataflow::filter(
      engine, kb,
      [&keys, b_col, m_col](const RowView& row) {
        return keys.contains(
            MessageKey{row.string_at(b_col), row.int64_at(m_col)});
      },
      "preselect");
}

Table preselect(Engine& engine, const colstore::ColumnarReader& reader,
                const Table& urel, colstore::ScanStats* stats) {
  return preselect(engine, reader, urel, colstore::ScanOptions{}, stats);
}

colstore::ScanPredicate urel_scan_predicate(const Table& urel) {
  colstore::ScanPredicate pred;
  for (MessageKey& key : relevant_message_keys(urel)) {
    pred.message_ids.push_back(key.message_id);
    pred.buses.push_back(key.bus);
    pred.bus_message_pairs.emplace_back(std::move(key.bus), key.message_id);
  }
  std::sort(pred.message_ids.begin(), pred.message_ids.end());
  pred.message_ids.erase(
      std::unique(pred.message_ids.begin(), pred.message_ids.end()),
      pred.message_ids.end());
  std::sort(pred.buses.begin(), pred.buses.end());
  pred.buses.erase(std::unique(pred.buses.begin(), pred.buses.end()),
                   pred.buses.end());
  return pred;
}

Table preselect(Engine& engine, const colstore::ColumnarReader& reader,
                const Table& urel, const colstore::ScanOptions& options,
                colstore::ScanStats* stats) {
  return reader.scan(urel_scan_predicate(urel), engine, options, stats);
}

namespace {

/// One translation tuple, decoded out of the U_rel table for the fused
/// probe (broadcast side of the join).
struct BroadcastSpec {
  std::string s_id;
  std::uint16_t start_bit;
  std::uint16_t length;
  protocol::ByteOrder order;
  signaldb::ValueKind value_kind;
  double scale;
  double offset;
  bool categorical;
  bool presence_always;
  std::uint16_t presence_start;
  std::uint16_t presence_length;
  protocol::ByteOrder presence_order;
  std::uint64_t presence_equals;
  const signaldb::SignalSpec* spec = nullptr;  ///< label lookup (may be null)
};

std::unordered_map<std::string, std::vector<BroadcastSpec>>
broadcast_urel(const Table& urel, const signaldb::Catalog* catalog) {
  const auto specs = broadcast_specs(catalog);
  std::unordered_map<std::string, std::vector<BroadcastSpec>> map;
  const Schema& schema = urel.schema();
  const std::size_t sid = schema.require("s_id");
  const std::size_t bus = schema.require("u_b_id");
  const std::size_t mid = schema.require("u_m_id");
  const std::size_t start = schema.require("start_bit");
  const std::size_t length = schema.require("length");
  const std::size_t order = schema.require("byte_order");
  const std::size_t kind = schema.require("value_kind");
  const std::size_t scale = schema.require("scale");
  const std::size_t offset = schema.require("offset");
  const std::size_t categorical = schema.require("categorical");
  const std::size_t p_always = schema.require("presence_always");
  const std::size_t p_start = schema.require("presence_start");
  const std::size_t p_length = schema.require("presence_length");
  const std::size_t p_order = schema.require("presence_order");
  const std::size_t p_equals = schema.require("presence_equals");
  urel.for_each_row([&](const RowView& row) {
    BroadcastSpec bs;
    bs.s_id = row.string_at(sid);
    bs.start_bit = static_cast<std::uint16_t>(row.int64_at(start));
    bs.length = static_cast<std::uint16_t>(row.int64_at(length));
    bs.order = order_from(row.int64_at(order));
    bs.value_kind =
        static_cast<signaldb::ValueKind>(row.int64_at(kind));
    bs.scale = row.float64_at(scale);
    bs.offset = row.float64_at(offset);
    bs.categorical = row.int64_at(categorical) != 0;
    bs.presence_always = row.int64_at(p_always) != 0;
    bs.presence_start = static_cast<std::uint16_t>(row.int64_at(p_start));
    bs.presence_length = static_cast<std::uint16_t>(row.int64_at(p_length));
    bs.presence_order = order_from(row.int64_at(p_order));
    bs.presence_equals =
        static_cast<std::uint64_t>(row.int64_at(p_equals));
    const auto it = specs.find(bs.s_id);
    bs.spec = it != specs.end() ? it->second : nullptr;
    map[row.string_at(bus) + '\x1F' + std::to_string(row.int64_at(mid))]
        .push_back(std::move(bs));
  });
  return map;
}

}  // namespace

namespace {

/// The shared per-row emission body of the fused kernel (u1 + u2 on one
/// already-joined row). Both interpret_partition (row-wise hash probe)
/// and interpret_runs (run-level dictionary join) funnel through this,
/// so the two join strategies cannot drift in what they emit.
void emit_signals(const std::vector<BroadcastSpec>& specs, std::int64_t t,
                  const std::string& payload, const std::string& bus,
                  Partition& out) {
  const auto span = std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size());
  for (const BroadcastSpec& bs : specs) {
    if (!bs.presence_always) {
      if (!protocol::bit_field_fits(span.size(), bs.presence_start,
                                    bs.presence_length, bs.presence_order)) {
        continue;
      }
      const std::uint64_t selector = protocol::extract_bits(
          span, bs.presence_start, bs.presence_length, bs.presence_order);
      if (selector != bs.presence_equals) continue;
    }
    if (!protocol::bit_field_fits(span.size(), bs.start_bit, bs.length,
                                  bs.order)) {
      continue;
    }
    const std::uint64_t raw =
        protocol::extract_bits(span, bs.start_bit, bs.length, bs.order);
    double raw_value = 0.0;
    switch (bs.value_kind) {
      case signaldb::ValueKind::Unsigned:
        raw_value = static_cast<double>(raw);
        break;
      case signaldb::ValueKind::Signed:
        raw_value =
            static_cast<double>(protocol::sign_extend(raw, bs.length));
        break;
      case signaldb::ValueKind::Float32:
        raw_value = static_cast<double>(
            protocol::raw_to_float32(static_cast<std::uint32_t>(raw)));
        break;
      case signaldb::ValueKind::Float64:
        raw_value = protocol::raw_to_float64(raw);
        break;
    }
    out.columns[0].append_int64(t);
    out.columns[1].append_string(bs.s_id);
    out.columns[2].append_float64(bs.scale * raw_value + bs.offset);
    if (bs.categorical) {
      const signaldb::ValueTableEntry* entry =
          bs.spec != nullptr ? bs.spec->find_label(raw) : nullptr;
      out.columns[3].append_string(
          entry != nullptr ? entry->label : "raw:" + std::to_string(raw));
    } else {
      out.columns[3].append_null();
    }
    out.columns[4].append_string(bus);
  }
}

bool is_error_frame(const RowView& row, std::size_t info_col) {
  const tracefile::MInfo info =
      tracefile::parse_m_info(row.string_at(info_col));
  return (info.flags & tracefile::TraceRecord::kFlagErrorFrame) != 0;
}

}  // namespace

struct InterpretKernel::Impl {
  std::unordered_map<std::string, std::vector<BroadcastSpec>> broadcast;
  bool skip_error_frames = false;
};

/// Array-indexed form of the broadcast map for one file's key dictionary.
/// Buckets point into Impl::broadcast, so the kernel must outlive it.
class InterpretKernel::KeyTable {
 public:
  std::vector<const std::vector<BroadcastSpec>*> buckets;
};

InterpretKernel::InterpretKernel(const Table& urel,
                                 const InterpretOptions& options)
    : impl_(std::make_unique<Impl>()) {
  impl_->broadcast = broadcast_urel(urel, options.catalog);
  impl_->skip_error_frames = options.skip_error_frames;
}

InterpretKernel::~InterpretKernel() = default;

void InterpretKernel::interpret_partition(const Partition& in,
                                          const Schema& in_schema,
                                          Partition& out) const {
  const std::size_t t_col = in_schema.require("t");
  const std::size_t l_col = in_schema.require("l");
  const std::size_t b_col = in_schema.require("b_id");
  const std::size_t m_col = in_schema.require("m_id");
  const std::size_t info_col = in_schema.require("m_info");
  const auto& broadcast = impl_->broadcast;
  const bool skip_errors = impl_->skip_error_frames;

  const std::size_t n = in.num_rows();
  for (std::size_t r = 0; r < n; ++r) {
    const RowView row(&in_schema, &in, r);
    const auto it = broadcast.find(row.string_at(b_col) + '\x1F' +
                                   std::to_string(row.int64_at(m_col)));
    if (it == broadcast.end()) continue;
    if (skip_errors && is_error_frame(row, info_col)) continue;
    emit_signals(it->second, row.int64_at(t_col), row.string_at(l_col),
                 row.string_at(b_col), out);
  }
}

std::shared_ptr<const InterpretKernel::KeyTable> InterpretKernel::prepare_keys(
    const std::vector<colstore::KeyDictEntry>& key_dict,
    const std::vector<std::string>& buses) const {
  auto table = std::make_shared<KeyTable>();
  table->buckets.resize(key_dict.size(), nullptr);
  for (std::size_t k = 0; k < key_dict.size(); ++k) {
    const colstore::KeyDictEntry& key = key_dict[k];
    if (key.bus_index >= buses.size()) continue;  // reader validated; belt
    const auto it = impl_->broadcast.find(
        buses[key.bus_index] + '\x1F' + std::to_string(key.message_id));
    if (it != impl_->broadcast.end()) table->buckets[k] = &it->second;
  }
  return table;
}

void InterpretKernel::interpret_runs(
    const Partition& in, const Schema& in_schema,
    const std::vector<colstore::EmittedRun>& runs,
    const KeyTable& table, Partition& out) const {
  const std::size_t t_col = in_schema.require("t");
  const std::size_t l_col = in_schema.require("l");
  const std::size_t b_col = in_schema.require("b_id");
  const std::size_t info_col = in_schema.require("m_info");
  const bool skip_errors = impl_->skip_error_frames;

  for (const colstore::EmittedRun& run : runs) {
    const std::vector<BroadcastSpec>* bucket =
        run.key < table.buckets.size() ? table.buckets[run.key] : nullptr;
    if (bucket == nullptr) continue;  // whole run has no U_comb match
    for (std::size_t i = 0; i < run.row_count; ++i) {
      const RowView row(&in_schema, &in, run.row_begin + i);
      if (skip_errors && is_error_frame(row, info_col)) continue;
      emit_signals(*bucket, row.int64_at(t_col), row.string_at(l_col),
                   row.string_at(b_col), out);
    }
  }
}

namespace {

/// Fused join ⨝ + u1 + u2: probe each K_pre row against the broadcast
/// U_comb and emit its signal instances directly, without materializing
/// the intermediate K_join table (the equivalent of Spark pipelining the
/// join into the following map stages).
Table interpret_fused(Engine& engine, const Table& kpre, const Table& urel,
                      const InterpretOptions& options) {
  const InterpretKernel kernel(urel, options);
  return engine.map_partitions(
      "interpret_fused_join_u1u2", kpre, ks_schema(),
      [&kernel, &kpre](const Partition& p, std::size_t) {
        Partition out = Table::make_partition(ks_schema());
        kernel.interpret_partition(p, kpre.schema(), out);
        return out;
      });
}

}  // namespace

Table interpret(Engine& engine, const Table& kpre, const Table& urel,
                const InterpretOptions& options) {
  if (!options.two_stage_interpretation) {
    return interpret_fused(engine, kpre, urel, options);
  }

  Table joined = dataflow::hash_join(engine, kpre, urel, {"b_id", "m_id"},
                                     {"u_b_id", "u_m_id"},
                                     dataflow::JoinType::Inner, "join_urel");

  const auto specs = broadcast_specs(options.catalog);
  const bool skip_errors = options.skip_error_frames;

  // Optional two-stage mode: F_u1 materializes the relevant payload bytes
  // l_rel as an extra column first (Algorithm 1 line 5), then F_u2
  // interprets them (line 6). The fused default applies u2(u1(row)) in one
  // pass without materializing K_join2.
  std::size_t lrel_col = 0;
  if (options.two_stage_interpretation) {
    const JoinCols cols(joined.schema());
    joined = dataflow::with_column(
        engine, joined, {"l_rel", ValueType::String},
        [cols](const RowView& row) -> Value {
          const std::string& payload = row.string_at(cols.l);
          const auto span = std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(payload.data()),
              payload.size());
          const std::uint16_t start =
              static_cast<std::uint16_t>(row.int64_at(cols.start_bit));
          const std::uint16_t length =
              static_cast<std::uint16_t>(row.int64_at(cols.length));
          const protocol::ByteOrder order =
              order_from(row.int64_at(cols.byte_order));
          if (!protocol::bit_field_fits(span.size(), start, length, order)) {
            return Value{};
          }
          const std::uint64_t raw =
              protocol::extract_bits(span, start, length, order);
          // l_rel rendered as 8 raw bytes little-endian.
          std::string bytes(8, '\0');
          for (int i = 0; i < 8; ++i) {
            bytes[static_cast<std::size_t>(i)] =
                static_cast<char>((raw >> (8 * i)) & 0xFF);
          }
          return Value{std::move(bytes)};
        },
        "u1_extract_lrel");
    lrel_col = joined.schema().require("l_rel");
  }

  const JoinCols cols(joined.schema());
  const bool two_stage = options.two_stage_interpretation;

  return dataflow::map_rows(
      engine, joined, ks_schema(),
      [cols, &specs, skip_errors, two_stage, lrel_col](const RowView& row,
                                                       Partition& out) {
        if (skip_errors) {
          const tracefile::MInfo info =
              tracefile::parse_m_info(row.string_at(cols.m_info));
          if ((info.flags & tracefile::TraceRecord::kFlagErrorFrame) != 0) {
            return;
          }
        }
        const std::string& payload = row.string_at(cols.l);
        const auto span = std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(payload.data()),
            payload.size());

        // Presence condition (conditional members, e.g. SOME/IP).
        if (row.int64_at(cols.presence_always) == 0) {
          const std::uint16_t sel_start = static_cast<std::uint16_t>(
              row.int64_at(cols.presence_start));
          const std::uint16_t sel_len = static_cast<std::uint16_t>(
              row.int64_at(cols.presence_length));
          const protocol::ByteOrder sel_order =
              order_from(row.int64_at(cols.presence_order));
          if (!protocol::bit_field_fits(span.size(), sel_start, sel_len,
                                        sel_order)) {
            return;
          }
          const std::uint64_t selector =
              protocol::extract_bits(span, sel_start, sel_len, sel_order);
          if (selector !=
              static_cast<std::uint64_t>(
                  row.int64_at(cols.presence_equals))) {
            return;
          }
        }

        const std::uint16_t length =
            static_cast<std::uint16_t>(row.int64_at(cols.length));
        std::uint64_t raw = 0;
        if (two_stage) {
          if (row.is_null(lrel_col)) return;
          const std::string& bytes = row.string_at(lrel_col);
          for (int i = 0; i < 8; ++i) {
            raw |= static_cast<std::uint64_t>(static_cast<unsigned char>(
                       bytes[static_cast<std::size_t>(i)]))
                   << (8 * i);
          }
        } else {
          const std::uint16_t start =
              static_cast<std::uint16_t>(row.int64_at(cols.start_bit));
          const protocol::ByteOrder order =
              order_from(row.int64_at(cols.byte_order));
          if (!protocol::bit_field_fits(span.size(), start, length, order)) {
            return;
          }
          raw = protocol::extract_bits(span, start, length, order);
        }

        double raw_value = 0.0;
        switch (static_cast<signaldb::ValueKind>(
            row.int64_at(cols.value_kind))) {
          case signaldb::ValueKind::Unsigned:
            raw_value = static_cast<double>(raw);
            break;
          case signaldb::ValueKind::Signed:
            raw_value =
                static_cast<double>(protocol::sign_extend(raw, length));
            break;
          case signaldb::ValueKind::Float32:
            raw_value = static_cast<double>(
                protocol::raw_to_float32(static_cast<std::uint32_t>(raw)));
            break;
          case signaldb::ValueKind::Float64:
            raw_value = protocol::raw_to_float64(raw);
            break;
        }
        const double physical =
            row.float64_at(cols.scale) * raw_value +
            row.float64_at(cols.offset);

        const std::string& s_id = row.string_at(cols.s_id);
        out.columns[0].append_int64(row.int64_at(cols.t));
        out.columns[1].append_string(s_id);
        out.columns[2].append_float64(physical);
        if (row.int64_at(cols.categorical) != 0) {
          const auto it = specs.find(s_id);
          const signaldb::ValueTableEntry* entry =
              it != specs.end() ? it->second->find_label(raw) : nullptr;
          out.columns[3].append_string(entry != nullptr
                                           ? entry->label
                                           : "raw:" + std::to_string(raw));
        } else {
          out.columns[3].append_null();
        }
        out.columns[4].append_string(row.string_at(cols.b_id));
      },
      two_stage ? "u2_interpret" : "interpret_u1u2");
}

Table extract_signals(Engine& engine, const Table& kb, const Table& urel,
                      const InterpretOptions& options) {
  const Table kpre = preselect(engine, kb, urel);
  return interpret(engine, kpre, urel, options);
}

}  // namespace ivt::core
