#include "core/schemas.hpp"

namespace ivt::core {

using dataflow::Schema;
using dataflow::ValueType;

const Schema& ks_schema() {
  static const Schema schema{{
      {"t", ValueType::Int64},
      {"s_id", ValueType::String},
      {"v_num", ValueType::Float64},
      {"v_str", ValueType::String},
      {"b_id", ValueType::String},
  }};
  return schema;
}

const Schema& urel_schema() {
  static const Schema schema{{
      {"s_id", ValueType::String},
      {"u_b_id", ValueType::String},
      {"u_m_id", ValueType::Int64},
      {"start_bit", ValueType::Int64},
      {"length", ValueType::Int64},
      {"byte_order", ValueType::Int64},     // 0 = intel, 1 = motorola
      {"value_kind", ValueType::Int64},     // signaldb::ValueKind
      {"scale", ValueType::Float64},
      {"offset", ValueType::Float64},
      {"categorical", ValueType::Int64},    // bool
      {"presence_always", ValueType::Int64},
      {"presence_start", ValueType::Int64},
      {"presence_length", ValueType::Int64},
      {"presence_order", ValueType::Int64},
      {"presence_equals", ValueType::Int64},
      {"expected_cycle_ns", ValueType::Int64},
  }};
  return schema;
}

const Schema& krep_schema() {
  static const Schema schema{{
      {"t", ValueType::Int64},
      {"s_id", ValueType::String},
      {"value", ValueType::String},
      {"v_num", ValueType::Float64},
      {"element_kind", ValueType::String},
      {"b_id", ValueType::String},
  }};
  return schema;
}

}  // namespace ivt::core
