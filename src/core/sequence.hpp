// Materialized per-signal sequences (the K_s^{s_id} of Algorithm 1).
//
// Branch processing, reduction marks and extensions all operate on one
// signal type's instance sequence; SequenceData is its columnar,
// cache-friendly materialization.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataflow/table.hpp"

namespace ivt::core {

/// One signal type's instances on one channel, time-ordered.
struct SignalSequence {
  std::string s_id;
  std::string bus;
  dataflow::Table table;  ///< ks_schema rows of this signal only
};

/// Columnar materialization of a SignalSequence.
struct SequenceData {
  std::string s_id;
  std::string bus;
  std::vector<std::int64_t> t;
  std::vector<double> v_num;          ///< 0.0 where invalid
  std::vector<std::uint8_t> has_num;
  std::vector<std::string> v_str;     ///< empty where invalid
  std::vector<std::uint8_t> has_str;

  [[nodiscard]] std::size_t size() const { return t.size(); }
  [[nodiscard]] bool empty() const { return t.empty(); }
  /// Wall-time span in seconds (0 for < 2 elements).
  [[nodiscard]] double duration_s() const {
    return t.size() < 2
               ? 0.0
               : static_cast<double>(t.back() - t.front()) / 1e9;
  }
};

/// Flatten a ks_schema table into SequenceData (logical row order).
SequenceData materialize_sequence(const SignalSequence& sequence);

/// Rebuild a ks_schema table from SequenceData, keeping only the rows
/// whose index is in `keep` (ascending).
dataflow::Table sequence_to_table(const SequenceData& data,
                                  const std::vector<std::size_t>& keep);

/// Rebuild the full table.
dataflow::Table sequence_to_table(const SequenceData& data);

}  // namespace ivt::core
