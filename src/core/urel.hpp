// Structuring (paper Sec. 3.1): build the translation-tuple table
// U_rel / U_comb from the signal catalog and a domain's signal selection.
#pragma once

#include <string>
#include <vector>

#include "dataflow/table.hpp"
#include "signaldb/catalog.hpp"

namespace ivt::core {

/// Build a U_comb table containing one translation tuple
/// u_rel = (s_id, b_id, m_id, u_info) per selected signal. Unknown signal
/// names throw std::invalid_argument (a mis-parameterized domain is a
/// configuration error, not data).
dataflow::Table make_urel_table(const signaldb::Catalog& catalog,
                                const std::vector<std::string>& signal_names);

/// U_rel over the whole catalog (all signals possible).
dataflow::Table make_full_urel_table(const signaldb::Catalog& catalog);

/// The (m_id, b_id) combinations appearing in a U_rel table — the
/// preselection filter set.
struct MessageKey {
  std::string bus;
  std::int64_t message_id = 0;

  friend bool operator==(const MessageKey&, const MessageKey&) = default;
  friend auto operator<=>(const MessageKey&, const MessageKey&) = default;
};
std::vector<MessageKey> relevant_message_keys(const dataflow::Table& urel);

}  // namespace ivt::core
