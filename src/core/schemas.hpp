// Table schemas shared across the pipeline stages.
//
// Naming follows the paper's formalization: K_b (raw byte trace), U_rel /
// U_comb (translation tuples), K_s (extracted signal instances), K_rep
// (homogenized symbolized sequence) — see Algorithm 1.
#pragma once

#include "dataflow/schema.hpp"

namespace ivt::core {

/// K_s: one row per signal instance ŝ = (v, s_id) at time t on channel
/// b_id. Numeric values fill v_num; categorical instances additionally
/// carry their label in v_str (v_str is null for pure numeric signals).
const dataflow::Schema& ks_schema();

/// U_rel / U_comb: one row per signal type to extract, carrying u_info as
/// typed columns (byte positions, interpretation rule, presence
/// condition, expected cycle). The paper's Table 1 in tabular form.
const dataflow::Schema& urel_schema();

/// K_rep: homogenized output of the three processing branches. `value` is
/// the symbolized state (e.g. "(high,increasing)" / "ON" / "snv");
/// `element_kind` distinguishes regular states, preserved outliers,
/// validity elements and extension elements w.
const dataflow::Schema& krep_schema();

/// Element kinds used in K_rep's `element_kind` column.
inline constexpr const char* kElementState = "state";
inline constexpr const char* kElementOutlier = "outlier";
inline constexpr const char* kElementValidity = "validity";
inline constexpr const char* kElementExtension = "extension";

}  // namespace ivt::core
