#include "core/split.hpp"

#include <unordered_map>

#include "core/schemas.hpp"

namespace ivt::core {

std::string split_bucket_key(const std::string& s_id,
                             const std::string& bus) {
  std::string key;
  key.reserve(s_id.size() + bus.size() + 1);
  key += s_id;
  key += '\x1F';
  key += bus;
  return key;
}

PartitionSplit bucket_split_partition(const dataflow::Partition& p,
                                      const dataflow::Schema& schema) {
  const std::size_t t_col = schema.require("t");
  const std::size_t sid_col = schema.require("s_id");
  const std::size_t num_col = schema.require("v_num");
  const std::size_t str_col = schema.require("v_str");
  const std::size_t bus_col = schema.require("b_id");

  PartitionSplit pb;
  const std::size_t n = p.num_rows();
  for (std::size_t r = 0; r < n; ++r) {
    const std::string& s_id = p.columns[sid_col].string_at(r);
    const std::string& bus = p.columns[bus_col].string_at(r);
    std::string key = split_bucket_key(s_id, bus);
    auto [it, inserted] = pb.buckets.try_emplace(key);
    if (inserted) {
      it->second.s_id = s_id;
      it->second.bus = bus;
      pb.order.push_back(std::move(key));
      pb.first_row.push_back(r);
    }
    SequenceData& seq = it->second;
    seq.t.push_back(p.columns[t_col].int64_at(r));
    if (p.columns[num_col].is_null(r)) {
      seq.v_num.push_back(0.0);
      seq.has_num.push_back(0);
    } else {
      seq.v_num.push_back(p.columns[num_col].float64_at(r));
      seq.has_num.push_back(1);
    }
    if (p.columns[str_col].is_null(r)) {
      seq.v_str.emplace_back();
      seq.has_str.push_back(0);
    } else {
      seq.v_str.push_back(p.columns[str_col].string_at(r));
      seq.has_str.push_back(1);
    }
  }
  return pb;
}

void append_sequence_data(SequenceData& dst, SequenceData&& src) {
  dst.t.insert(dst.t.end(), src.t.begin(), src.t.end());
  dst.v_num.insert(dst.v_num.end(), src.v_num.begin(), src.v_num.end());
  dst.has_num.insert(dst.has_num.end(), src.has_num.begin(),
                     src.has_num.end());
  dst.v_str.insert(dst.v_str.end(),
                   std::make_move_iterator(src.v_str.begin()),
                   std::make_move_iterator(src.v_str.end()));
  dst.has_str.insert(dst.has_str.end(), src.has_str.begin(),
                     src.has_str.end());
}

bool sequences_equal(const SequenceData& a, const SequenceData& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.has_num[i] != b.has_num[i] || a.has_str[i] != b.has_str[i]) {
      return false;
    }
    if (a.has_num[i] != 0 && a.v_num[i] != b.v_num[i]) return false;
    if (a.has_str[i] != 0 && a.v_str[i] != b.v_str[i]) return false;
  }
  return true;
}

SplitDataResult split_signals_data(dataflow::Engine& engine,
                                   const dataflow::Table& ks,
                                   const SplitOptions& options) {
  // Phase 1: per-partition bucketing (parallel).
  std::vector<PartitionSplit> partials(ks.num_partitions());
  engine.parallel_for(ks.num_partitions(), [&](std::size_t pi) {
    partials[pi] = bucket_split_partition(ks.partition(pi), ks.schema());
  });

  // Phase 2: merge in partition order (deterministic).
  std::vector<std::string> order;
  std::unordered_map<std::string, SequenceData> merged;
  for (PartitionSplit& pb : partials) {
    for (std::string& key : pb.order) {
      SequenceData& src = pb.buckets.at(key);
      auto [it, inserted] = merged.try_emplace(key);
      if (inserted) {
        it->second = std::move(src);
        order.push_back(key);
        continue;
      }
      append_sequence_data(it->second, std::move(src));
    }
  }
  partials.clear();
  return group_split_sequences(order, merged, options);
}

SplitDataResult group_split_sequences(
    const std::vector<std::string>& order,
    std::unordered_map<std::string, SequenceData>& merged,
    const SplitOptions& options) {
  // Phase 3: group channels per signal type in first-appearance order and
  // run the equality check e(·).
  SplitDataResult result;
  std::vector<std::string> sid_order;
  std::unordered_map<std::string, std::vector<std::string>> channels_of;
  for (const std::string& key : order) {
    const SequenceData& seq = merged.at(key);
    auto [it, inserted] = channels_of.try_emplace(seq.s_id);
    if (inserted) sid_order.push_back(seq.s_id);
    it->second.push_back(key);
  }

  for (const std::string& s_id : sid_order) {
    const std::vector<std::string>& keys = channels_of.at(s_id);
    if (!options.dedup_channels || keys.size() == 1) {
      for (const std::string& key : keys) {
        result.sequences.push_back(std::move(merged.at(key)));
      }
      continue;
    }
    // Representatives carry distinct content; later channels equal to an
    // earlier representative become correspondences.
    std::vector<std::size_t> representative_indices;
    ChannelCorrespondence corr;
    corr.s_id = s_id;
    for (std::size_t k = 0; k < keys.size(); ++k) {
      SequenceData& candidate = merged.at(keys[k]);
      bool matched = false;
      for (std::size_t rep_index : representative_indices) {
        if (sequences_equal(result.sequences[rep_index], candidate)) {
          if (corr.representative_bus.empty()) {
            corr.representative_bus = result.sequences[rep_index].bus;
          }
          corr.corresponding_buses.push_back(candidate.bus);
          matched = true;
          break;
        }
      }
      if (!matched) {
        representative_indices.push_back(result.sequences.size());
        result.sequences.push_back(std::move(candidate));
      }
    }
    if (!corr.corresponding_buses.empty()) {
      result.correspondences.push_back(std::move(corr));
    }
  }
  return result;
}

SplitResult split_signals(dataflow::Engine& engine, const dataflow::Table& ks,
                          const SplitOptions& options) {
  SplitDataResult data = split_signals_data(engine, ks, options);
  SplitResult result;
  result.correspondences = std::move(data.correspondences);
  result.sequences.reserve(data.sequences.size());
  for (const SequenceData& seq : data.sequences) {
    result.sequences.push_back(
        SignalSequence{seq.s_id, seq.bus, sequence_to_table(seq)});
  }
  return result;
}

}  // namespace ivt::core
