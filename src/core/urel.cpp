#include "core/urel.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/schemas.hpp"

namespace ivt::core {

namespace {

void append_tuple(dataflow::TableBuilder& builder,
                  const signaldb::MessageSpec& message,
                  const signaldb::SignalSpec& signal) {
  using dataflow::Value;
  builder.append_row({
      Value{signal.name},
      Value{message.bus},
      Value{message.message_id},
      Value{static_cast<std::int64_t>(signal.start_bit)},
      Value{static_cast<std::int64_t>(signal.length)},
      Value{static_cast<std::int64_t>(
          signal.byte_order == protocol::ByteOrder::Motorola ? 1 : 0)},
      Value{static_cast<std::int64_t>(signal.value_kind)},
      Value{signal.transform.scale},
      Value{signal.transform.offset},
      Value{static_cast<std::int64_t>(signal.is_categorical() ? 1 : 0)},
      Value{static_cast<std::int64_t>(signal.presence.always ? 1 : 0)},
      Value{static_cast<std::int64_t>(signal.presence.selector_start_bit)},
      Value{static_cast<std::int64_t>(signal.presence.selector_length)},
      Value{static_cast<std::int64_t>(
          signal.presence.selector_order == protocol::ByteOrder::Motorola
              ? 1
              : 0)},
      Value{static_cast<std::int64_t>(signal.presence.equals)},
      Value{signal.expected_cycle_ns},
  });
}

}  // namespace

dataflow::Table make_urel_table(
    const signaldb::Catalog& catalog,
    const std::vector<std::string>& signal_names) {
  dataflow::TableBuilder builder(urel_schema(), 0);
  for (const std::string& name : signal_names) {
    const signaldb::SignalRef ref = catalog.find_signal(name);
    if (!ref.valid()) {
      throw std::invalid_argument("make_urel_table: unknown signal '" + name +
                                  "'");
    }
    append_tuple(builder, *ref.message, *ref.signal);
  }
  return builder.build();
}

dataflow::Table make_full_urel_table(const signaldb::Catalog& catalog) {
  dataflow::TableBuilder builder(urel_schema(), 0);
  for (const signaldb::MessageSpec& message : catalog.messages()) {
    for (const signaldb::SignalSpec& signal : message.signals) {
      append_tuple(builder, message, signal);
    }
  }
  return builder.build();
}

std::vector<MessageKey> relevant_message_keys(const dataflow::Table& urel) {
  const std::size_t bus_col = urel.schema().require("u_b_id");
  const std::size_t id_col = urel.schema().require("u_m_id");
  std::vector<MessageKey> keys;
  urel.for_each_row([&](const dataflow::RowView& row) {
    keys.push_back(MessageKey{row.string_at(bus_col), row.int64_at(id_col)});
  });
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

}  // namespace ivt::core
