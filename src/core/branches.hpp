// Type-dependent processing branches (paper Sec. 4.2).
//
//   α: numeric — outlier removal, smoothing, SWAB segmentation, SAX
//      symbolization; yields one (trend, symbol) tuple per segment, with
//      the removed outliers merged back as potential errors.
//   β: ordinal — split into functional part K_F and validity part K_V,
//      numeric translation, outlier check, gradient trend per element.
//   γ: binary / nominal — no transformation; β-style validity split only.
//
// All branches emit the homogeneous krep_schema format, so the merged
// output can be processed uniformly (paper Sec. 4.3).
#pragma once

#include "algo/outliers.hpp"
#include "algo/swab.hpp"
#include "core/classify.hpp"
#include "core/sequence.hpp"
#include "dataflow/table.hpp"

namespace ivt::core {

struct BranchConfig {
  algo::OutlierConfig outlier;
  /// Moving-average half window applied before segmentation (α).
  std::size_t smoothing_half_window = 2;
  /// SWAB per-segment error budget, in units of the sequence variance:
  /// max_error = swab_error_scale × var(clean values).
  double swab_error_scale = 5.0;
  std::size_t swab_buffer = 120;
  /// SAX alphabet size (2..16); 5 gives the verylow..veryhigh levels.
  std::size_t sax_alphabet = 5;
  /// Steady-trend threshold as a fraction of the value stddev per second.
  double steady_slope_fraction = 0.05;
};

struct BranchStats {
  std::size_t states = 0;     ///< regular symbolized elements emitted
  std::size_t outliers = 0;   ///< preserved potential errors
  std::size_t validity = 0;   ///< validity elements (K_V)
  std::size_t segments = 0;   ///< SWAB segments (α only)
};

/// Branch α.
dataflow::Table process_alpha(const ConstraintContext& context,
                              const BranchConfig& config,
                              BranchStats* stats = nullptr);

/// Branch β.
dataflow::Table process_beta(const ConstraintContext& context,
                             const BranchConfig& config,
                             BranchStats* stats = nullptr);

/// Branch γ.
dataflow::Table process_gamma(const ConstraintContext& context,
                              const BranchConfig& config,
                              BranchStats* stats = nullptr);

/// Dispatch on a classification.
dataflow::Table process_by_branch(Branch branch,
                                  const ConstraintContext& context,
                                  const BranchConfig& config,
                                  BranchStats* stats = nullptr);

/// Human-readable SAX level name for symbol index `region` of an alphabet
/// of `alphabet_size` (e.g. 5 -> verylow/low/mid/high/veryhigh).
std::string sax_level_name(std::size_t region, std::size_t alphabet_size);

}  // namespace ivt::core
