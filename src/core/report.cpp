#include "core/report.hpp"

#include <cstdio>
#include <sstream>

#include "errors/failure_log.hpp"

namespace ivt::core {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string report_summary_line(const PipelineResult& result) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "K_b %zu -> K_pre %zu -> K_s %zu -> reduced %zu -> R_out %zu"
                " (state rows: %zu, sequences: %zu)",
                result.kb_rows, result.kpre_rows, result.ks_rows,
                result.reduced_rows, result.krep_rows,
                result.state.num_rows(), result.sequences.size());
  return buf;
}

std::string report_to_text(const PipelineResult& result) {
  std::ostringstream os;
  os << report_summary_line(result) << "\n";
  if (!result.stage_times.empty()) {
    os << "\nstage wall times (per-sequence stages summed over workers):\n";
    for (const StageTiming& st : result.stage_times) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "  %-12s %10.2f ms\n",
                    st.stage.c_str(), st.wall_ms);
      os << buf;
    }
  }
  os << "\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-20s %-8s %-8s %-8s %2s %4s %3s %8s %8s %8s %5s %5s %5s\n",
                "signal", "bus", "branch", "type", "zt", "zr", "zn", "in",
                "reduced", "out", "outl", "val", "ext");
  os << line;
  for (const SequenceReport& r : result.sequences) {
    std::snprintf(
        line, sizeof(line),
        "%-20s %-8s %-8s %-8s %2c %4c %3zu %8zu %8zu %8zu %5zu %5zu %5zu\n",
        r.s_id.c_str(), r.bus.c_str(),
        std::string(to_string(r.classification.branch)).c_str(),
        std::string(to_string(r.classification.data_type)).c_str(),
        r.classification.criteria.z_type, r.classification.criteria.z_rate,
        r.classification.criteria.z_num, r.input_rows, r.reduced_rows,
        r.output_rows, r.branch_stats.outliers, r.branch_stats.validity,
        r.extension_rows);
    os << line;
  }
  if (!result.correspondences.empty()) {
    os << "\ngateway correspondences:\n";
    for (const ChannelCorrespondence& c : result.correspondences) {
      os << "  " << c.s_id << ": representative " << c.representative_bus
         << " ==";
      for (const std::string& bus : c.corresponding_buses) os << " " << bus;
      os << "\n";
    }
  }
  if (!result.failures.empty()) {
    os << "\nrecovered failures (" << result.failures.size() << "):\n";
    for (const errors::FailureRecord& f : result.failures) {
      os << "  [" << to_string(f.category) << "] " << f.site << ": "
         << f.unit << " — " << f.message << "\n";
    }
  }
  return os.str();
}

std::string report_to_json(const PipelineResult& result) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"kb_rows\": " << result.kb_rows << ",\n";
  os << "  \"kpre_rows\": " << result.kpre_rows << ",\n";
  os << "  \"ks_rows\": " << result.ks_rows << ",\n";
  os << "  \"reduced_rows\": " << result.reduced_rows << ",\n";
  os << "  \"krep_rows\": " << result.krep_rows << ",\n";
  os << "  \"state_rows\": " << result.state.num_rows() << ",\n";
  os << "  \"stages\": [\n";
  for (std::size_t i = 0; i < result.stage_times.size(); ++i) {
    const StageTiming& st = result.stage_times[i];
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.3f", st.wall_ms);
    os << "    {\"stage\": \"" << json_escape(st.stage)
       << "\", \"wall_ms\": " << wall << "}"
       << (i + 1 < result.stage_times.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"sequences\": [\n";
  for (std::size_t i = 0; i < result.sequences.size(); ++i) {
    const SequenceReport& r = result.sequences[i];
    os << "    {\"s_id\": \"" << json_escape(r.s_id) << "\", \"bus\": \""
       << json_escape(r.bus) << "\", \"branch\": \""
       << to_string(r.classification.branch) << "\", \"data_type\": \""
       << to_string(r.classification.data_type) << "\", \"z_type\": \""
       << r.classification.criteria.z_type << "\", \"z_rate\": \""
       << r.classification.criteria.z_rate
       << "\", \"z_num\": " << r.classification.criteria.z_num
       << ", \"z_val\": "
       << (r.classification.criteria.z_val ? "true" : "false")
       << ", \"input_rows\": " << r.input_rows
       << ", \"reduced_rows\": " << r.reduced_rows
       << ", \"output_rows\": " << r.output_rows
       << ", \"outliers\": " << r.branch_stats.outliers
       << ", \"validity\": " << r.branch_stats.validity
       << ", \"extensions\": " << r.extension_rows
       << ", \"dropped\": " << (r.dropped ? "true" : "false");
    if (r.dropped) {
      os << ", \"drop_reason\": \"" << json_escape(r.drop_reason) << "\"";
    }
    os << "}" << (i + 1 < result.sequences.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"correspondences\": [\n";
  for (std::size_t i = 0; i < result.correspondences.size(); ++i) {
    const ChannelCorrespondence& c = result.correspondences[i];
    os << "    {\"s_id\": \"" << json_escape(c.s_id)
       << "\", \"representative\": \"" << json_escape(c.representative_bus)
       << "\", \"duplicates\": [";
    for (std::size_t j = 0; j < c.corresponding_buses.size(); ++j) {
      os << "\"" << json_escape(c.corresponding_buses[j]) << "\""
         << (j + 1 < c.corresponding_buses.size() ? ", " : "");
    }
    os << "]}" << (i + 1 < result.correspondences.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  std::size_t chunks_quarantined = 0;
  for (const errors::FailureRecord& f : result.failures) {
    chunks_quarantined += f.site == "colstore.decode_chunk" ? 1 : 0;
  }
  os << "  \"failures\": {\n";
  os << "    \"total\": " << result.failures.size() << ",\n";
  os << "    \"sequences_dropped\": " << result.sequences_dropped() << ",\n";
  os << "    \"chunks_quarantined\": " << chunks_quarantined << ",\n";
  if (result.dist.enabled) {
    // Distributed-run recovery accounting sits next to the data losses:
    // a re-assigned range is a recovered infrastructure failure, and the
    // equivalence tests audit these counters against the sim layer.
    const DistStats& d = result.dist;
    os << "    \"dist\": {\n";
    os << "      \"nodes\": " << d.nodes << ",\n";
    os << "      \"ranges_total\": " << d.ranges_total << ",\n";
    os << "      \"worker_deaths\": " << d.worker_deaths << ",\n";
    os << "      \"ranges_reassigned\": " << d.ranges_reassigned << ",\n";
    os << "      \"speculative_launched\": " << d.speculative_launched
       << ",\n";
    os << "      \"speculative_wins\": " << d.speculative_wins << ",\n";
    os << "      \"results_deduped\": " << d.results_deduped << ",\n";
    os << "      \"registrations_retried\": " << d.registrations_retried
       << "\n";
    os << "    },\n";
  }
  os << "    \"records\": " << errors::failures_to_json(result.failures, "    ")
     << "\n";
  os << "  }\n}\n";
  return os.str();
}

}  // namespace ivt::core
