// Signal splitting + gateway de-duplication (Algorithm 1 lines 7–9).
//
// K_s is split into one sequence per signal type. Signals forwarded
// through gateways are recorded once per channel; the equality check e(·)
// detects channels carrying the identical instance sequence and keeps only
// a representative channel for processing, recording the correspondence so
// results can be propagated back ("computational cost is reduced by
// processing signal instances for one channel only").
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/sequence.hpp"
#include "dataflow/engine.hpp"

namespace ivt::core {

/// Channels found to carry an identical copy of the representative
/// sequence K_srep (the paper's K_scor set).
struct ChannelCorrespondence {
  std::string s_id;
  std::string representative_bus;
  std::vector<std::string> corresponding_buses;
};

struct SplitResult {
  /// One entry per (signal type, distinct-content channel). With gateway
  /// duplicates removed this is normally one entry per signal type.
  std::vector<SignalSequence> sequences;
  std::vector<ChannelCorrespondence> correspondences;
};

struct SplitOptions {
  /// Run the equality check e(·) and drop duplicate channels. When false,
  /// every (s_id, b_id) combination yields its own sequence.
  bool dedup_channels = true;
};

/// Split the K_s table per signal type (single parallel scan; semantics of
/// the per-type σ selections in Algorithm 1 line 8). Sequence order is
/// deterministic: signal types in order of first appearance, channels per
/// type in order of first appearance.
SplitResult split_signals(dataflow::Engine& engine, const dataflow::Table& ks,
                          const SplitOptions& options = {});

/// The equality check e(·): two channels correspond when they carry the
/// same number of instances with pairwise equal values (time stamps may
/// differ by the forwarding latency). Exposed for tests.
bool sequences_equal(const SequenceData& a, const SequenceData& b);

/// Lower-level variant used by the pipeline: returns the materialized
/// SequenceData directly (no intermediate per-sequence tables).
struct SplitDataResult {
  std::vector<SequenceData> sequences;
  std::vector<ChannelCorrespondence> correspondences;
};
SplitDataResult split_signals_data(dataflow::Engine& engine,
                                   const dataflow::Table& ks,
                                   const SplitOptions& options = {});

// --- Building blocks shared with the streaming morsel path ---------------
//
// The streaming executor buckets each morsel's K_s rows as it is produced
// (bucket_split_partition), appends the per-morsel segments into
// hash-sharded accumulators, reconstructs the batch key order from
// (first morsel, first row) tags, and finally reuses the same channel
// grouping + e(·) dedup (group_split_sequences). Because every step is
// shared or order-reconstructing, both modes emit identical sequences.

/// Bucket key: s_id and bus, separated by a unit separator (neither may
/// contain it: bus/signal names come from the catalog).
std::string split_bucket_key(const std::string& s_id, const std::string& bus);

/// One partition's (or morsel's) K_s rows bucketed per (s_id, b_id) in row
/// order. `order` lists keys by first appearance; `first_row` gives the
/// partition-local row index of that first appearance (parallel to
/// `order`), so a merge across out-of-order morsels can reconstruct the
/// global first-appearance order.
struct PartitionSplit {
  std::vector<std::string> order;
  std::vector<std::size_t> first_row;
  std::unordered_map<std::string, SequenceData> buckets;
};

/// Bucket every row of the ks_schema() partition `p`.
PartitionSplit bucket_split_partition(const dataflow::Partition& p,
                                      const dataflow::Schema& schema);

/// Append src's rows to dst (same (s_id, b_id) bucket); src is consumed.
void append_sequence_data(SequenceData& dst, SequenceData&& src);

/// Phase 3 of the split: group the merged per-(s_id, b_id) sequences into
/// per-signal channel lists in `order` and run the e(·) dedup. Consumes
/// the sequences in `merged`.
SplitDataResult group_split_sequences(
    const std::vector<std::string>& order,
    std::unordered_map<std::string, SequenceData>& merged,
    const SplitOptions& options);

}  // namespace ivt::core
