// Signal splitting + gateway de-duplication (Algorithm 1 lines 7–9).
//
// K_s is split into one sequence per signal type. Signals forwarded
// through gateways are recorded once per channel; the equality check e(·)
// detects channels carrying the identical instance sequence and keeps only
// a representative channel for processing, recording the correspondence so
// results can be propagated back ("computational cost is reduced by
// processing signal instances for one channel only").
#pragma once

#include <string>
#include <vector>

#include "core/sequence.hpp"
#include "dataflow/engine.hpp"

namespace ivt::core {

/// Channels found to carry an identical copy of the representative
/// sequence K_srep (the paper's K_scor set).
struct ChannelCorrespondence {
  std::string s_id;
  std::string representative_bus;
  std::vector<std::string> corresponding_buses;
};

struct SplitResult {
  /// One entry per (signal type, distinct-content channel). With gateway
  /// duplicates removed this is normally one entry per signal type.
  std::vector<SignalSequence> sequences;
  std::vector<ChannelCorrespondence> correspondences;
};

struct SplitOptions {
  /// Run the equality check e(·) and drop duplicate channels. When false,
  /// every (s_id, b_id) combination yields its own sequence.
  bool dedup_channels = true;
};

/// Split the K_s table per signal type (single parallel scan; semantics of
/// the per-type σ selections in Algorithm 1 line 8). Sequence order is
/// deterministic: signal types in order of first appearance, channels per
/// type in order of first appearance.
SplitResult split_signals(dataflow::Engine& engine, const dataflow::Table& ks,
                          const SplitOptions& options = {});

/// The equality check e(·): two channels correspond when they carry the
/// same number of instances with pairwise equal values (time stamps may
/// differ by the forwarding latency). Exposed for tests.
bool sequences_equal(const SequenceData& a, const SequenceData& b);

/// Lower-level variant used by the pipeline: returns the materialized
/// SequenceData directly (no intermediate per-sequence tables).
struct SplitDataResult {
  std::vector<SequenceData> sequences;
  std::vector<ChannelCorrespondence> correspondences;
};
SplitDataResult split_signals_data(dataflow::Engine& engine,
                                   const dataflow::Table& ks,
                                   const SplitOptions& options = {});

}  // namespace ivt::core
