// Extension rules (Algorithm 1 line 12; paper Sec. 4.1 "Extension Rules").
//
// Extensions associate meta-data with a reduced sequence: each rule emits
// new sequence elements ŵ = (v, w_id) derived from the signal's instances
// and domain knowledge (e.g. the temporal gap to the previous element, or
// cycle-time-violation flags). Extension elements use w_id =
// "<s_id>.<rule name>" and land in K_rep with element_kind = "extension".
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/reduce.hpp"
#include "core/sequence.hpp"
#include "dataflow/table.hpp"

namespace ivt::core {

/// Collects the ŵ instances a rule produces.
class ExtensionEmitter {
 public:
  ExtensionEmitter(std::string w_id, std::string bus);

  /// Emit one extension element at time t.
  void emit(std::int64_t t_ns, double v_num, std::string value_text);

  [[nodiscard]] const std::string& w_id() const { return w_id_; }
  /// Finish and return the collected elements as a krep_schema table.
  [[nodiscard]] dataflow::Table build();
  [[nodiscard]] std::size_t count() const { return count_; }

 private:
  std::string w_id_;
  std::string bus_;
  dataflow::TableBuilder builder_;
  std::size_t count_ = 0;
};

struct ExtensionRule {
  /// Rule name; the emitted w_id is "<s_id>.<name>".
  std::string name;
  /// Exact signal name or "*".
  std::string signal_pattern = "*";
  std::function<void(const ConstraintContext&, ExtensionEmitter&)> apply;
};

/// Run all matching rules over one sequence; returns one table per rule
/// that produced at least one element.
std::vector<dataflow::Table> apply_extensions(
    const std::vector<ExtensionRule>& rules, const ConstraintContext& context);

// ---- Built-in rules -------------------------------------------------------

/// Gap to the previous instance, in seconds (paper Table 2's wposGap).
ExtensionRule gap_extension();

/// Emits an element wherever the gap to the previous instance exceeds
/// `tolerance ×` the documented expected cycle time (paper Sec. 4.4:
/// "by extending traces with expected cycle times, locations of violations
/// of such times can be detected"). Signals without a documented cycle
/// produce nothing.
ExtensionRule cycle_violation_extension(double tolerance = 1.5);

/// Discrete time-derivative of the numeric value (units/second).
ExtensionRule derivative_extension();

}  // namespace ivt::core
