#include "core/branches.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "algo/sax.hpp"
#include "algo/smoothing.hpp"
#include "algo/stats.hpp"
#include "algo/trend.hpp"
#include "core/schemas.hpp"

namespace ivt::core {

namespace {

/// One homogenized output element, buffered so branch output can be merged
/// back into time order before the table is built.
struct OutElement {
  std::int64_t t = 0;
  std::string value;
  double v_num = 0.0;
  bool has_num = true;
  const char* kind = kElementState;
};

dataflow::Table build_output(const SequenceData& d,
                             std::vector<OutElement> elements) {
  std::stable_sort(elements.begin(), elements.end(),
                   [](const OutElement& a, const OutElement& b) {
                     return a.t < b.t;
                   });
  dataflow::TableBuilder builder(krep_schema(), 0);
  for (OutElement& e : elements) {
    dataflow::Partition& dst = builder.current_partition();
    dst.columns[0].append_int64(e.t);
    dst.columns[1].append_string(d.s_id);
    dst.columns[2].append_string(std::move(e.value));
    if (e.has_num) {
      dst.columns[3].append_float64(e.v_num);
    } else {
      dst.columns[3].append_null();
    }
    dst.columns[4].append_string(e.kind);
    dst.columns[5].append_string(d.bus);
    builder.commit_row();
  }
  return builder.build();
}

bool is_validity_label(const signaldb::SignalSpec* spec,
                       const std::string& label) {
  if (spec == nullptr) return false;
  for (const signaldb::ValueTableEntry& e : spec->value_table) {
    if (e.label == label) return e.validity;
  }
  return false;
}

std::string format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string outlier_text(double v) {
  return "outlier v=" + format_number(v);
}

}  // namespace

std::string sax_level_name(std::size_t region, std::size_t alphabet_size) {
  static const char* k2[] = {"low", "high"};
  static const char* k3[] = {"low", "mid", "high"};
  static const char* k4[] = {"low", "midlow", "midhigh", "high"};
  static const char* k5[] = {"verylow", "low", "mid", "high", "veryhigh"};
  switch (alphabet_size) {
    case 2:
      return k2[std::min<std::size_t>(region, 1)];
    case 3:
      return k3[std::min<std::size_t>(region, 2)];
    case 4:
      return k4[std::min<std::size_t>(region, 3)];
    case 5:
      return k5[std::min<std::size_t>(region, 4)];
    default:
      return "L" + std::to_string(region);
  }
}

dataflow::Table process_alpha(const ConstraintContext& context,
                              const BranchConfig& config, BranchStats* stats) {
  const SequenceData& d = context.data;
  std::vector<OutElement> out;

  // typeSplit: numeric part vs nominal part (labelled elements, e.g.
  // "signal not valid" markers inside a numeric signal).
  std::vector<std::size_t> num_idx;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d.has_str[i] != 0) {
      OutElement e;
      e.t = d.t[i];
      e.value = d.v_str[i];
      e.has_num = d.has_num[i] != 0;
      e.v_num = d.v_num[i];
      e.kind = is_validity_label(context.spec, d.v_str[i]) ? kElementValidity
                                                           : kElementState;
      if (stats != nullptr) ++stats->validity;
      out.push_back(std::move(e));
    } else if (d.has_num[i] != 0) {
      num_idx.push_back(i);
    }
  }

  // outlier(): split the numeric part into outliers and remainder.
  std::vector<double> values;
  values.reserve(num_idx.size());
  for (std::size_t i : num_idx) values.push_back(d.v_num[i]);
  const std::vector<std::uint8_t> mask =
      algo::detect_outliers(values, config.outlier);

  // Contiguous clean runs: an outlier acts as a segmentation boundary, so
  // a fresh state element follows every merged-back outlier (paper
  // Table 4: "outlier v = 800" at 22 s, "(high,steady)" again at 23 s).
  std::vector<std::vector<std::size_t>> clean_runs(1);
  std::vector<double> all_clean_values;
  for (std::size_t k = 0; k < num_idx.size(); ++k) {
    if (mask[k] != 0) {
      OutElement e;
      e.t = d.t[num_idx[k]];
      e.v_num = values[k];
      e.value = outlier_text(values[k]);
      e.kind = kElementOutlier;
      out.push_back(std::move(e));
      if (stats != nullptr) ++stats->outliers;
      if (!clean_runs.back().empty()) clean_runs.emplace_back();
    } else {
      clean_runs.back().push_back(num_idx[k]);
      all_clean_values.push_back(values[k]);
    }
  }

  // Normalization statistics span the whole cleaned sequence so symbols
  // are comparable across runs.
  const double sd = algo::stddev(all_clean_values);
  const double mu = algo::mean(all_clean_values);
  const std::vector<double> breakpoints =
      algo::sax_breakpoints(config.sax_alphabet);
  const double slope_threshold =
      config.steady_slope_fraction * (sd > 0.0 ? sd : 1.0);

  for (const std::vector<std::size_t>& clean_idx : clean_runs) {
    if (clean_idx.empty()) continue;
    std::vector<double> clean_values;
    clean_values.reserve(clean_idx.size());
    for (std::size_t i : clean_idx) clean_values.push_back(d.v_num[i]);

    // Smoothing, then SWAB segmentation over (t seconds, value).
    const std::vector<double> smoothed =
        algo::moving_average(clean_values, config.smoothing_half_window);
    std::vector<double> ts;
    ts.reserve(clean_idx.size());
    const std::int64_t t0 = d.t[clean_idx.front()];
    for (std::size_t i : clean_idx) {
      ts.push_back(static_cast<double>(d.t[i] - t0) / 1e9);
    }
    algo::SegmentationConfig seg_config;
    seg_config.max_error =
        std::max(config.swab_error_scale * sd * sd, 1e-12);
    seg_config.buffer_size = config.swab_buffer;
    const std::vector<algo::Segment> segments =
        algo::swab_segment(ts, smoothed, seg_config);

    // Symbolization: SAX symbol of the segment's mean level (z-normalized
    // against the whole cleaned sequence) + the segment trend.
    for (const algo::Segment& seg : segments) {
      double seg_mean = 0.0;
      for (std::size_t k = seg.start; k < seg.end; ++k) {
        seg_mean += smoothed[k];
      }
      seg_mean /= static_cast<double>(seg.length());
      const double z = sd > 0.0 ? (seg_mean - mu) / sd : 0.0;
      const char symbol = algo::sax_symbol(z, breakpoints);
      const algo::Trend trend =
          algo::classify_slope(seg.fit.slope, slope_threshold);
      OutElement e;
      e.t = d.t[clean_idx[seg.start]];
      e.v_num = seg_mean;
      e.value = "(" +
                sax_level_name(static_cast<std::size_t>(symbol - 'a'),
                               config.sax_alphabet) +
                "," + std::string(algo::to_string(trend)) + ")";
      out.push_back(std::move(e));
      if (stats != nullptr) {
        ++stats->segments;
        ++stats->states;
      }
    }
  }

  return build_output(d, std::move(out));
}

dataflow::Table process_beta(const ConstraintContext& context,
                             const BranchConfig& config, BranchStats* stats) {
  const SequenceData& d = context.data;
  std::vector<OutElement> out;

  // functionSplit: K_V (validity labels) vs K_F (functional elements).
  std::vector<std::size_t> f_idx;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d.has_str[i] != 0 && is_validity_label(context.spec, d.v_str[i])) {
      OutElement e;
      e.t = d.t[i];
      e.value = d.v_str[i];
      e.has_num = false;
      e.kind = kElementValidity;
      out.push_back(std::move(e));
      if (stats != nullptr) ++stats->validity;
    } else {
      f_idx.push_back(i);
    }
  }

  // Numeric translation of K_F: ordinal labels map to their rank in the
  // (ordered) value table; numeric elements keep their value.
  std::vector<double> translated;
  translated.reserve(f_idx.size());
  for (std::size_t i : f_idx) {
    if (d.has_str[i] != 0 && context.spec != nullptr) {
      double rank = 0.0;
      double found = -1.0;
      for (const signaldb::ValueTableEntry& e : context.spec->value_table) {
        if (e.validity) continue;
        if (e.label == d.v_str[i]) {
          found = rank;
          break;
        }
        rank += 1.0;
      }
      translated.push_back(found >= 0.0 ? found : d.v_num[i]);
    } else {
      translated.push_back(d.v_num[i]);
    }
  }

  // Outlier check on the numeric translation.
  const std::vector<std::uint8_t> mask =
      algo::detect_outliers(translated, config.outlier);

  std::vector<std::size_t> clean_pos;
  for (std::size_t k = 0; k < f_idx.size(); ++k) {
    if (mask[k] != 0) {
      OutElement e;
      e.t = d.t[f_idx[k]];
      e.v_num = translated[k];
      e.value = outlier_text(translated[k]);
      e.kind = kElementOutlier;
      out.push_back(std::move(e));
      if (stats != nullptr) ++stats->outliers;
    } else {
      clean_pos.push_back(k);
    }
  }

  // addGradient: per-element trend from the discrete gradient.
  std::vector<double> ts;
  std::vector<double> ys;
  ts.reserve(clean_pos.size());
  ys.reserve(clean_pos.size());
  for (std::size_t k : clean_pos) {
    ts.push_back(static_cast<double>(d.t[f_idx[k]]) / 1e9);
    ys.push_back(translated[k]);
  }
  const double sd = ys.empty() ? 0.0 : algo::stddev(ys);
  const double slope_threshold =
      config.steady_slope_fraction * (sd > 0.0 ? sd : 1.0);
  const std::vector<algo::Trend> trends =
      algo::gradient_trends(ts, ys, slope_threshold);

  for (std::size_t j = 0; j < clean_pos.size(); ++j) {
    const std::size_t k = clean_pos[j];
    const std::size_t i = f_idx[k];
    OutElement e;
    e.t = d.t[i];
    e.v_num = translated[k];
    const std::string base =
        d.has_str[i] != 0 ? d.v_str[i] : format_number(d.v_num[i]);
    e.value = "(" + base + "," + std::string(algo::to_string(trends[j])) + ")";
    out.push_back(std::move(e));
    if (stats != nullptr) ++stats->states;
  }

  return build_output(d, std::move(out));
}

dataflow::Table process_gamma(const ConstraintContext& context,
                              const BranchConfig& /*config*/,
                              BranchStats* stats) {
  const SequenceData& d = context.data;
  std::vector<OutElement> out;
  out.reserve(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    OutElement e;
    e.t = d.t[i];
    e.has_num = d.has_num[i] != 0;
    e.v_num = d.v_num[i];
    if (d.has_str[i] != 0) {
      e.value = d.v_str[i];
      if (is_validity_label(context.spec, d.v_str[i])) {
        e.kind = kElementValidity;
        if (stats != nullptr) ++stats->validity;
      } else {
        if (stats != nullptr) ++stats->states;
      }
    } else {
      e.value = format_number(d.v_num[i]);
      if (stats != nullptr) ++stats->states;
    }
    out.push_back(std::move(e));
  }
  return build_output(d, std::move(out));
}

dataflow::Table process_by_branch(Branch branch,
                                  const ConstraintContext& context,
                                  const BranchConfig& config,
                                  BranchStats* stats) {
  switch (branch) {
    case Branch::Alpha:
      return process_alpha(context, config, stats);
    case Branch::Beta:
      return process_beta(context, config, stats);
    case Branch::Gamma:
      return process_gamma(context, config, stats);
  }
  return dataflow::Table(krep_schema());
}

}  // namespace ivt::core
