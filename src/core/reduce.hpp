// Constraint reduction (Algorithm 1 lines 10–11; paper Sec. 4.1).
//
// A constraint c = (s_id, d, F) marks elements of a signal sequence:
// when the applicability predicate d holds, every marking function f ∈ F
// runs over the sequence; an element whose combined mark e is true is
// *redundant* and removed, "leaving task-relevant elements only".
// Important state changes (e.g. cycle-time violations) must survive — the
// built-in rules are written accordingly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/sequence.hpp"
#include "signaldb/catalog.hpp"

namespace ivt::core {

/// Context handed to predicates and marking functions.
struct ConstraintContext {
  const SequenceData& data;
  /// Spec of the sequence's signal type (nullptr when unknown to the
  /// catalog). Carries expected_cycle_ns and the value table.
  const signaldb::SignalSpec* spec = nullptr;
};

/// Marking function f: sets marks[i] = 1 for redundant elements. Never
/// clears marks set by other functions (e is the OR over all f ∈ F).
using MarkFn =
    std::function<void(const ConstraintContext&, std::vector<std::uint8_t>&)>;

/// c = (s_id, d, F).
struct ConstraintRule {
  std::string name;
  /// Exact signal name, or "*" to apply to every sequence.
  std::string signal_pattern = "*";
  /// d: applicability predicate (empty = always applicable).
  std::function<bool(const ConstraintContext&)> applies;
  /// F: marking functions.
  std::vector<MarkFn> marks;
};

struct ReductionStats {
  std::size_t input_rows = 0;
  std::size_t removed_rows = 0;
};

/// Apply every matching rule to `data`, returning the surviving element
/// indices (ascending) — the paper's K_red.
std::vector<std::size_t> apply_constraints(
    const std::vector<ConstraintRule>& rules, const ConstraintContext& context,
    ReductionStats* stats = nullptr);

/// Filter a SequenceData down to the surviving rows.
SequenceData reduce_sequence(const std::vector<ConstraintRule>& rules,
                             const SequenceData& data,
                             const signaldb::SignalSpec* spec,
                             ReductionStats* stats = nullptr);

// ---- Built-in rules -------------------------------------------------------

/// Remove elements whose value equals the previous element's value —
/// cyclically repeated data points — *except* when the temporal gap to the
/// previous element exceeds `cycle_tolerance ×` the signal's expected
/// cycle time (such elements witness a cycle-time violation and are
/// preserved). First and last element always survive. Signals without a
/// documented cycle fall back to pure repeat-removal.
ConstraintRule drop_repeated_values_rule(double cycle_tolerance = 1.5);

/// Remove numeric elements inside the closed band [lo, hi] (e.g. "idle"
/// readings a domain does not care about). Band boundary crossings (the
/// element before/after a removed run) are preserved as state changes.
ConstraintRule drop_within_band_rule(std::string signal, double lo, double hi);

/// Keep only every `keep_every`-th element of high-rate sequences
/// (deterministic decimation; d checks the sequence exceeds
/// `min_rate_hz`).
ConstraintRule decimate_rule(std::string signal, std::size_t keep_every,
                             double min_rate_hz);

}  // namespace ivt::core
