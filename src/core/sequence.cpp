#include "core/sequence.hpp"

#include <numeric>

#include "core/schemas.hpp"

namespace ivt::core {

SequenceData materialize_sequence(const SignalSequence& sequence) {
  SequenceData data;
  data.s_id = sequence.s_id;
  data.bus = sequence.bus;
  const std::size_t n = sequence.table.num_rows();
  data.t.reserve(n);
  data.v_num.reserve(n);
  data.has_num.reserve(n);
  data.v_str.reserve(n);
  data.has_str.reserve(n);
  const std::size_t t_col = sequence.table.schema().require("t");
  const std::size_t num_col = sequence.table.schema().require("v_num");
  const std::size_t str_col = sequence.table.schema().require("v_str");
  sequence.table.for_each_row([&](const dataflow::RowView& row) {
    data.t.push_back(row.int64_at(t_col));
    if (row.is_null(num_col)) {
      data.v_num.push_back(0.0);
      data.has_num.push_back(0);
    } else {
      data.v_num.push_back(row.float64_at(num_col));
      data.has_num.push_back(1);
    }
    if (row.is_null(str_col)) {
      data.v_str.emplace_back();
      data.has_str.push_back(0);
    } else {
      data.v_str.push_back(row.string_at(str_col));
      data.has_str.push_back(1);
    }
  });
  return data;
}

dataflow::Table sequence_to_table(const SequenceData& data,
                                  const std::vector<std::size_t>& keep) {
  dataflow::TableBuilder builder(ks_schema(), 0);
  for (std::size_t i : keep) {
    dataflow::Partition& dst = builder.current_partition();
    dst.columns[0].append_int64(data.t[i]);
    dst.columns[1].append_string(data.s_id);
    if (data.has_num[i] != 0) {
      dst.columns[2].append_float64(data.v_num[i]);
    } else {
      dst.columns[2].append_null();
    }
    if (data.has_str[i] != 0) {
      dst.columns[3].append_string(data.v_str[i]);
    } else {
      dst.columns[3].append_null();
    }
    dst.columns[4].append_string(data.bus);
    builder.commit_row();
  }
  return builder.build();
}

dataflow::Table sequence_to_table(const SequenceData& data) {
  std::vector<std::size_t> all(data.size());
  std::iota(all.begin(), all.end(), 0);
  return sequence_to_table(data, all);
}

}  // namespace ivt::core
