// Rendering of pipeline processing reports (text and JSON).
#pragma once

#include <string>

#include "core/pipeline.hpp"

namespace ivt::core {

/// Fixed-width per-sequence report plus stage totals.
std::string report_to_text(const PipelineResult& result);

/// Machine-readable JSON (stable key order; no external dependency).
std::string report_to_json(const PipelineResult& result);

/// One-line summary: row counts through the stages.
std::string report_summary_line(const PipelineResult& result);

}  // namespace ivt::core
