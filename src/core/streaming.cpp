// Streaming morsel-driven execution of Algorithm 1 lines 2–9.
//
// The batch path materializes the full K_b scan, then runs preselect /
// interpret / split as separate engine stages with a barrier between
// each. Here the same work is re-fused per chunk: every surviving .ivc
// chunk becomes one morsel task that decodes, row-filters against U_comb
// (preselection), interprets to K_s rows and buckets them into
// hash-sharded split accumulators — so no K_b or K_s table ever
// materializes, and bounded task admission caps how many decoded morsels
// exist at once.
//
// Equivalence with batch is by construction, not by luck:
//  * the per-morsel compute is the shared core::MorselProcessor (compiled
//    pushdown predicate + InterpretKernel + bucket_split_partition),
//  * morsel index k == batch partition index k (chunk order), and the
//    shared core::merge_split_segments reconstructs exactly the batch
//    split's concatenation and first-appearance orders from the
//    (morsel, first-row) tags,
//  * lines 10–29 + state run through the shared Pipeline::process_and_merge.
// The same MorselProcessor + merge also back the distributed executor
// (src/dist), so all three modes share one compute and one merge.
// The differential harness in tests/integration/streaming_equivalence_test
// asserts the identity across chunk sizes, worker counts and error
// policies.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iterator>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "colstore/chunk_cursor.hpp"
#include "core/partials.hpp"
#include "core/pipeline.hpp"
#include "core/schemas.hpp"
#include "errors/failure_log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"
#include "tracefile/trace.hpp"

namespace ivt::core {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_ns(Clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           since)
          .count());
}

/// One split accumulator shard: appended to under its own mutex by morsel
/// tasks, merged single-threaded afterwards (the merge still takes the —
/// by then uncontended — lock so the access contract stays checkable).
struct Shard {
  support::Mutex mu{support::LockRank::k_core_Shard_mu};
  KeyedSegments keys IVT_GUARDED_BY(mu);
};

/// Shard by s_id (the prefix of the bucket key up to the unit separator),
/// so all channels of one signal land in the same accumulator.
std::size_t shard_of(const std::string& key, std::size_t num_shards) {
  const std::size_t cut = key.find('\x1F');
  return std::hash<std::string_view>{}(
             std::string_view(key).substr(0, cut)) %
         num_shards;
}

/// Everything the fused stage produces.
struct StreamExtract {
  SplitDataResult split;
  std::size_t kpre_rows = 0;
  std::size_t ks_rows = 0;
  colstore::ScanStats stats;
  /// Interpreted K_s partitions in morsel order (only when keep_ks).
  std::vector<dataflow::Partition> ks_parts;
  std::uint64_t fused_wall_ns = 0;
};

/// The fused decode → preselect → interpret → shard-append stage plus the
/// order-stable merge. Shared by run_streaming and
/// extract_and_reduce_streaming.
StreamExtract stream_extract_split(dataflow::Engine& engine,
                                   const colstore::ColumnarReader& reader,
                                   const dataflow::Table& urel,
                                   const PipelineConfig& config,
                                   errors::FailureLog* scan_failures,
                                   bool keep_ks) {
  StreamExtract out;
  const auto fused_start = Clock::now();
  OBS_SPAN_V(fused_span, "pipeline.stream_extract_split");

  const MorselProcessor processor(reader, urel, config, scan_failures);

  const std::size_t num_morsels = processor.num_morsels();
  std::size_t num_shards = config.streaming.shards;
  if (num_shards == 0) {
    num_shards = std::clamp<std::size_t>(
        4 * std::max<std::size_t>(1, engine.workers()), 1, 64);
  }
  std::vector<Shard> shards(num_shards);
  if (keep_ks) out.ks_parts.resize(num_morsels);
  std::atomic<std::size_t> kpre_rows{0};
  std::atomic<std::size_t> ks_rows{0};

  engine.parallel_for_bounded(
      num_morsels, config.streaming.max_in_flight, [&](std::size_t k) {
        OBS_SPAN_V(span, "pipeline.morsel");
        MorselPartial partial = processor.process(
            k, keep_ks ? &out.ks_parts[k] : nullptr);
        kpre_rows.fetch_add(partial.kpre_rows, std::memory_order_relaxed);
        ks_rows.fetch_add(partial.ks_rows, std::memory_order_relaxed);
        span.set_rows(partial.ks_rows);
        // Append the morsel's segments into the shards.
        for (KeySegment& seg : partial.segments) {
          Shard& shard = shards[shard_of(seg.key, num_shards)];
          const support::MutexLock lock(shard.mu);
          shard.keys[seg.key].push_back(
              SplitSegment{k, seg.first_row, std::move(seg.data)});
        }
      });

  // Drain the shards into one accumulator and run the shared order-stable
  // merge (the same one the dist coordinator uses).
  KeyedSegments keyed;
  for (Shard& shard : shards) {
    const support::MutexLock lock(shard.mu);
    if (keyed.empty()) {
      keyed = std::move(shard.keys);
    } else {
      for (auto& [key, segments] : shard.keys) {
        auto& dst = keyed[key];
        std::move(segments.begin(), segments.end(),
                  std::back_inserter(dst));
      }
    }
    shard.keys.clear();
  }
  out.split = merge_split_segments(std::move(keyed), config.split);
  out.kpre_rows = kpre_rows.load(std::memory_order_relaxed);
  out.ks_rows = ks_rows.load(std::memory_order_relaxed);
  out.stats = processor.stats();
  out.fused_wall_ns = elapsed_ns(fused_start);
  fused_span.set_rows(out.ks_rows);
  return out;
}

}  // namespace

PipelineResult Pipeline::run_streaming(dataflow::Engine& engine,
                                       const colstore::ColumnarReader& reader,
                                       colstore::ScanStats* stats) const {
  OBS_SPAN("pipeline.run_streaming");
  OBS_COUNT("pipeline.runs", 1);
  PipelineResult result;

  errors::FailureLog scan_failures;
  StreamExtract ext = stream_extract_split(
      engine, reader, urel_, config_, &scan_failures, config_.keep_ks);

  // K_b is never materialized; its row count is the file's total minus
  // rows lost to quarantined chunks — the same number the batch scan
  // emits.
  result.kb_rows = reader.num_rows() - ext.stats.rows_quarantined;
  OBS_COUNT("pipeline.kb_rows", result.kb_rows);
  result.kpre_rows = ext.kpre_rows;
  result.ks_rows = ext.ks_rows;
  OBS_COUNT("pipeline.ks_rows", result.ks_rows);
  record_stage_time(result.stage_times, "stream_extract_split",
                    ext.fused_wall_ns);

  if (config_.keep_ks) {
    result.ks = dataflow::Table(ks_schema());
    for (dataflow::Partition& p : ext.ks_parts) {
      if (p.num_rows() == 0) continue;
      result.ks.add_partition(std::move(p));
    }
  }

  result.failures = scan_failures.records();
  process_and_merge(engine, std::move(ext.split), result);

  OBS_GAUGE_SET("process.peak_rss_bytes",
                static_cast<std::int64_t>(obs::peak_rss_bytes()));
  if (stats != nullptr) *stats = ext.stats;
  return result;
}

Pipeline::ReducedResult Pipeline::extract_and_reduce_streaming(
    dataflow::Engine& engine, const colstore::ColumnarReader& reader) const {
  OBS_SPAN("pipeline.extract_and_reduce_streaming");
  ReducedResult result;
  errors::FailureLog scan_failures;
  StreamExtract ext = stream_extract_split(engine, reader, urel_, config_,
                                           &scan_failures, false);
  result.ks_rows = ext.ks_rows;
  SplitDataResult split = std::move(ext.split);
  result.correspondences = std::move(split.correspondences);

  result.sequences.resize(split.sequences.size());
  engine.parallel_for(split.sequences.size(), [&](std::size_t i) {
    OBS_SPAN_V(span, "sequence.reduce");
    const SequenceData& seq = split.sequences[i];
    result.sequences[i] =
        reduce_sequence(config_.constraints, seq, spec_of(seq.s_id));
    span.set_rows(result.sequences[i].size());
  });
  for (const SequenceData& seq : result.sequences) {
    result.reduced_rows += seq.size();
  }
  OBS_GAUGE_SET("process.peak_rss_bytes",
                static_cast<std::int64_t>(obs::peak_rss_bytes()));
  return result;
}

}  // namespace ivt::core
