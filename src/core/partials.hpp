// Morsel partials: the shared per-chunk unit of work and the order-stable
// merge that both streaming and distributed execution are built from.
//
// PR 4's streaming mode established the contract: morsel k is the k-th
// zone-map-surviving .ivc chunk in file order; fusing decode → preselect
// → interpret → bucket per morsel and merging the per-key segments sorted
// by (morsel, first-row) reconstructs exactly the batch split — so K_s,
// K_rep and the state representation come out byte-identical. This header
// extracts that machinery into value types that can also cross a process
// boundary: a distributed worker runs MorselProcessor::process(k) for its
// assigned chunk range, ships the resulting MorselPartials to the
// coordinator, and the coordinator feeds them through the very same
// merge_split_segments the in-process streaming path uses. Equivalence is
// then shared by construction — there is exactly one merge.
//
// Idempotence note for the distributed layer: a MorselPartial is a pure
// function of (trace file, U_comb, config, k). Re-executing a morsel on a
// different worker after a node death yields an identical partial, which
// is what makes "discard the dead worker's accumulators and re-assign"
// a safe recovery policy.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "colstore/chunk_cursor.hpp"
#include "colstore/columnar_reader.hpp"
#include "core/interpret.hpp"
#include "core/split.hpp"
#include "dataflow/table.hpp"
#include "errors/failure_log.hpp"

namespace ivt::core {

struct PipelineConfig;

/// One (s_id, b_id) run of K_s rows contributed by a single morsel,
/// tagged with everything the order-stable merge needs.
struct SplitSegment {
  std::size_t morsel = 0;
  std::size_t first_row = 0;  ///< morsel-local row of the key's first hit
  SequenceData data;
};

/// All segments of one morsel, in the bucket first-appearance order the
/// shared bucket_split_partition emits.
struct KeySegment {
  std::string key;  ///< split bucket key: s_id \x1F bus
  std::size_t first_row = 0;
  SequenceData data;
};

struct MorselPartial {
  std::size_t morsel = 0;
  std::size_t kpre_rows = 0;  ///< rows surviving preselection
  std::size_t ks_rows = 0;    ///< interpreted K_s rows
  std::vector<KeySegment> segments;
};

/// Split-accumulator shape shared by the streaming shards and the
/// distributed coordinator: per bucket key, that key's segments from any
/// subset of morsels, in any order (the merge sorts).
using KeyedSegments =
    std::unordered_map<std::string, std::vector<SplitSegment>>;

/// Move every segment of `partial` into `keyed` (partial is consumed).
void accumulate_partial(KeyedSegments& keyed, MorselPartial&& partial);

/// Order-stable merge shared by streaming and dist: per key, sort
/// segments by morsel and concatenate (morsel order == chunk order ==
/// batch partition order); order keys by (first morsel, first row) —
/// exactly the batch first-appearance order — then group into split
/// sequences. Consumes `keyed`.
SplitDataResult merge_split_segments(KeyedSegments&& keyed,
                                     const SplitOptions& options);

/// The fused decode → preselect → interpret → bucket stage for one
/// morsel, shared by streaming tasks (in-process) and dist workers
/// (remote). Construction compiles the pushdown predicate and the
/// interpret kernel once; process(k) is safe to call concurrently for
/// distinct k (the cursor's contract).
class MorselProcessor {
 public:
  /// The reader, urel and config must outlive the processor. Scan-level
  /// failures (quarantined chunks under Skip/Quarantine) go to
  /// `failures` when non-null.
  MorselProcessor(const colstore::ColumnarReader& reader,
                  const dataflow::Table& urel, const PipelineConfig& config,
                  errors::FailureLog* failures);

  [[nodiscard]] std::size_t num_morsels() const {
    return cursor_.num_morsels();
  }

  /// Decode + preselect + interpret + bucket morsel k. When `keep_ks` is
  /// non-null it receives the interpreted K_s partition (inspection mode).
  [[nodiscard]] MorselPartial process(
      std::size_t k, dataflow::Partition* keep_ks = nullptr) const;

  /// Scan statistics so far (pruning fixed at construction; quarantine
  /// counters reflect the morsels processed so far).
  [[nodiscard]] colstore::ScanStats stats() const { return cursor_.stats(); }

 private:
  colstore::ChunkCursor cursor_;
  InterpretKernel kernel_;
  /// Per-file dictionary join for the compressed path (null when the
  /// cursor decodes; see InterpretKernel::prepare_keys).
  std::shared_ptr<const InterpretKernel::KeyTable> key_table_;
};

}  // namespace ivt::core
