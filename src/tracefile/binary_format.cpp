#include "tracefile/binary_format.hpp"

#include <cstring>
#include <fstream>

#include "protocol/bitcodec.hpp"
#include <istream>
#include <ostream>
#include <stdexcept>

#include "errors/error.hpp"
#include "faultfx/faultfx.hpp"
#include "obs/obs.hpp"

namespace ivt::tracefile {

namespace {

constexpr char kMagic[4] = {'I', 'V', 'T', 'R'};
constexpr std::uint8_t kTagBusDef = 0x01;
constexpr std::uint8_t kTagRecord = 0x02;

template <typename T>
void put(std::ostream& out, T value) {
  static_assert(std::is_integral_v<T>);
  // Little-endian byte-wise write (host independence).
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.put(static_cast<char>(
        (static_cast<std::make_unsigned_t<T>>(value) >> (8 * i)) & 0xFF));
  }
}

template <typename T>
T get(std::istream& in) {
  static_assert(std::is_integral_v<T>);
  std::make_unsigned_t<T> value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    const int c = in.get();
    if (c == EOF) IVT_THROW(errors::Category::Format, "trace file: unexpected EOF");
    value |= static_cast<std::make_unsigned_t<T>>(
                 static_cast<unsigned char>(c))
             << (8 * i);
  }
  return static_cast<T>(value);
}

void put_short_string(std::ostream& out, const std::string& s) {
  if (s.size() > 255) {
    throw std::invalid_argument("trace file: string too long: " + s);
  }
  put<std::uint8_t>(out, static_cast<std::uint8_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_short_string(std::istream& in) {
  const std::uint8_t len = get<std::uint8_t>(in);
  std::string s(len, '\0');
  in.read(s.data(), len);
  if (in.gcount() != len) {
    IVT_THROW(errors::Category::Format, "trace file: truncated string");
  }
  return s;
}

}  // namespace

TraceWriter::TraceWriter(std::ostream& out, const std::string& vehicle,
                         const std::string& journey,
                         std::int64_t start_unix_ns)
    : out_(out) {
  out_.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(out_, kBinaryFormatVersion);
  put_short_string(out_, vehicle);
  put_short_string(out_, journey);
  put<std::int64_t>(out_, start_unix_ns);
}

std::uint16_t TraceWriter::bus_index(const std::string& bus) {
  const auto it = bus_lookup_.find(bus);
  if (it != bus_lookup_.end()) return it->second;
  if (bus.size() > 255) {
    // Validate before interning or writing the tag byte, so a rejected
    // name leaves neither the dictionary nor the stream half-updated.
    throw std::invalid_argument("trace file: string too long: " + bus);
  }
  if (buses_.size() >= 0xFFFF) {
    IVT_THROW(errors::Category::Resource,
              "trace file: too many distinct buses");
  }
  const std::uint16_t index = static_cast<std::uint16_t>(buses_.size());
  buses_.push_back(bus);
  bus_lookup_.emplace(bus, index);
  out_.put(static_cast<char>(kTagBusDef));
  put<std::uint16_t>(out_, index);
  put_short_string(out_, bus);
  return index;
}

void TraceWriter::write(const TraceRecord& record) {
  if (record.payload.size() > 0xFFFF) {
    throw std::invalid_argument("trace file: payload too long");
  }
  const std::uint16_t bus = bus_index(record.bus);
  out_.put(static_cast<char>(kTagRecord));
  put<std::int64_t>(out_, record.t_ns);
  put<std::uint16_t>(out_, bus);
  put<std::uint8_t>(out_, static_cast<std::uint8_t>(record.protocol));
  put<std::int64_t>(out_, record.message_id);
  put<std::uint32_t>(out_, record.flags);
  put<std::uint16_t>(out_, static_cast<std::uint16_t>(record.payload.size()));
  out_.write(reinterpret_cast<const char*>(record.payload.data()),
             static_cast<std::streamsize>(record.payload.size()));
  ++written_;
  if (!out_) IVT_THROW(errors::Category::Io, "trace file: write failed");
}

TraceReader::TraceReader(std::istream& in) : in_(in) {
  char magic[4];
  in_.read(magic, sizeof(magic));
  if (in_.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    IVT_THROW(errors::Category::Format, "trace file: bad magic");
  }
  const std::uint32_t version = get<std::uint32_t>(in_);
  if (version != kBinaryFormatVersion) {
    IVT_THROW(errors::Category::Format,
              "trace file: unsupported version " + std::to_string(version));
  }
  vehicle_ = get_short_string(in_);
  journey_ = get_short_string(in_);
  start_unix_ns_ = get<std::int64_t>(in_);
}

bool TraceReader::next(TraceRecord& record) {
  for (;;) {
    const int tag = in_.get();
    if (tag == EOF) return false;
    if (tag == kTagBusDef) {
      const std::uint16_t index = get<std::uint16_t>(in_);
      std::string name = get_short_string(in_);
      if (index != buses_.size()) {
        IVT_THROW(errors::Category::Format,
                  "trace file: bus index out of order");
      }
      buses_.push_back(std::move(name));
      continue;
    }
    if (tag != kTagRecord) {
      IVT_THROW(errors::Category::Format,
                "trace file: unknown record tag " + std::to_string(tag));
    }
    FAULT_POINT("tracefile.read_record");
    record.t_ns = get<std::int64_t>(in_);
    const std::uint16_t bus = get<std::uint16_t>(in_);
    if (bus >= buses_.size()) {
      IVT_THROW(errors::Category::Decode,
                "trace file: undefined bus index");
    }
    record.bus = buses_[bus];
    record.protocol = static_cast<protocol::Protocol>(get<std::uint8_t>(in_));
    record.message_id = get<std::int64_t>(in_);
    record.flags = get<std::uint32_t>(in_);
    const std::uint16_t len = get<std::uint16_t>(in_);
    record.payload.resize(len);
    in_.read(reinterpret_cast<char*>(record.payload.data()), len);
    if (in_.gcount() != len) {
      IVT_THROW(errors::Category::Decode, "trace file: truncated payload");
    }
    FAULT_POINT_MUTATE("tracefile.record", record.payload.data(),
                       record.payload.size());
    return true;
  }
}

void save_trace(const Trace& trace, const std::string& path) {
  OBS_SPAN_V(span, "tracefile.save");
  std::ofstream out(path, std::ios::binary);
  if (!out) IVT_THROW(errors::Category::Io, "cannot open for write: " + path);
  TraceWriter writer(out, trace.vehicle, trace.journey, trace.start_unix_ns);
  for (const TraceRecord& rec : trace.records) writer.write(rec);
  if (!out) IVT_THROW(errors::Category::Io, "write failed: " + path);
  span.set_rows(trace.records.size());
  span.set_bytes(static_cast<std::uint64_t>(out.tellp()));
  OBS_COUNT("tracefile.records_written", trace.records.size());
  OBS_COUNT("tracefile.bytes_written",
            static_cast<std::uint64_t>(out.tellp()));
}

Trace load_trace(const std::string& path) {
  OBS_SPAN_V(span, "tracefile.load");
  std::ifstream in(path, std::ios::binary);
  if (!in) IVT_THROW(errors::Category::Io, "cannot open for read: " + path);
  Trace trace = errors::with_context("loading " + path, [&in] {
    TraceReader reader(in);
    Trace out;
    out.vehicle = reader.vehicle();
    out.journey = reader.journey();
    out.start_unix_ns = reader.start_unix_ns();
    TraceRecord rec;
    while (reader.next(rec)) out.records.push_back(rec);
    return out;
  });
  span.set_rows(trace.records.size());
  OBS_COUNT("tracefile.records_read", trace.records.size());
  return trace;
}

Trace load_trace_tolerant(const std::string& path,
                          errors::ErrorPolicy on_error,
                          errors::FailureLog* failures) {
  if (on_error == errors::ErrorPolicy::Fail) return load_trace(path);
  OBS_SPAN_V(span, "tracefile.load");
  std::ifstream in(path, std::ios::binary);
  if (!in) IVT_THROW(errors::Category::Io, "cannot open for read: " + path);
  // Header corruption is never tolerated — without it there is no trace.
  TraceReader reader(in);
  Trace trace;
  trace.vehicle = reader.vehicle();
  trace.journey = reader.journey();
  trace.start_unix_ns = reader.start_unix_ns();
  TraceRecord rec;
  for (;;) {
    try {
      if (!reader.next(rec)) break;
    } catch (const errors::Error& e) {
      if (e.severity() == errors::Severity::Fatal) throw;
      // The record stream has no per-record framing to resync on, so a
      // corrupt record costs the tail of the file. Record the loss.
      OBS_COUNT("tracefile.tails_dropped", 1);
      if (failures != nullptr) {
        failures->add("tracefile.read_record",
                      "record stream tail after record " +
                          std::to_string(trace.records.size()) + " of " +
                          path,
                      e);
      }
      break;
    }
    trace.records.push_back(rec);
  }
  span.set_rows(trace.records.size());
  OBS_COUNT("tracefile.records_read", trace.records.size());
  return trace;
}

void export_asc(const Trace& trace, std::ostream& out) {
  out << "date ns_epoch " << trace.start_unix_ns << " vehicle "
      << trace.vehicle << " journey " << trace.journey << "\n";
  out << "base hex  timestamps absolute\n";
  for (const TraceRecord& rec : trace.records) {
    char tsbuf[32];
    std::snprintf(tsbuf, sizeof(tsbuf), "%.6f",
                  static_cast<double>(rec.t_ns) / 1e9);
    out << tsbuf << ' ' << rec.bus << ' '
        << protocol::to_string(rec.protocol) << ' ' << std::hex
        << rec.message_id << std::dec << " d "
        << rec.payload.size() << ' ' << protocol::to_hex(rec.payload);
    if ((rec.flags & TraceRecord::kFlagErrorFrame) != 0) out << " ERROR";
    out << "\n";
  }
}

}  // namespace ivt::tracefile
