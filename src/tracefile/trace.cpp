#include "tracefile/trace.hpp"

#include <algorithm>
#include <charconv>
#include <map>
#include <stdexcept>

namespace ivt::tracefile {

std::int64_t Trace::duration_ns() const {
  if (records.size() < 2) return 0;
  return records.back().t_ns - records.front().t_ns;
}

bool Trace::is_time_ordered() const {
  return std::is_sorted(records.begin(), records.end(),
                        [](const TraceRecord& a, const TraceRecord& b) {
                          return a.t_ns < b.t_ns;
                        });
}

const dataflow::Schema& kb_schema() {
  static const dataflow::Schema schema{{
      {"t", dataflow::ValueType::Int64},
      {"l", dataflow::ValueType::String},
      {"b_id", dataflow::ValueType::String},
      {"m_id", dataflow::ValueType::Int64},
      {"m_info", dataflow::ValueType::String},
  }};
  return schema;
}

std::string make_m_info(protocol::Protocol protocol, std::uint32_t flags) {
  std::string out{protocol::to_string(protocol)};
  out += ':';
  out += std::to_string(flags);
  return out;
}

MInfo parse_m_info(std::string_view m_info) {
  MInfo info;
  const std::size_t colon = m_info.rfind(':');
  if (colon == std::string_view::npos) {
    throw std::invalid_argument("bad m_info cell: '" + std::string(m_info) +
                                "'");
  }
  const auto proto = protocol::parse_protocol(m_info.substr(0, colon));
  if (!proto) {
    throw std::invalid_argument("bad protocol in m_info: '" +
                                std::string(m_info) + "'");
  }
  info.protocol = *proto;
  const std::string_view flags_str = m_info.substr(colon + 1);
  const auto [ptr, ec] = std::from_chars(
      flags_str.data(), flags_str.data() + flags_str.size(), info.flags);
  if (ec != std::errc{} || ptr != flags_str.data() + flags_str.size()) {
    throw std::invalid_argument("bad flags in m_info: '" +
                                std::string(m_info) + "'");
  }
  return info;
}

dataflow::Table to_kb_table(const Trace& trace, std::size_t partitions) {
  if (partitions == 0) partitions = 1;
  std::size_t per = (trace.records.size() + partitions - 1) / partitions;
  if (per == 0) per = 1;
  dataflow::TableBuilder builder(kb_schema(), per);
  for (const TraceRecord& rec : trace.records) {
    dataflow::Partition& dst = builder.current_partition();
    dst.columns[0].append_int64(rec.t_ns);
    dst.columns[1].append_string(
        std::string(rec.payload.begin(), rec.payload.end()));
    dst.columns[2].append_string(rec.bus);
    dst.columns[3].append_int64(rec.message_id);
    dst.columns[4].append_string(make_m_info(rec.protocol, rec.flags));
    builder.commit_row();
  }
  return builder.build();
}

Trace from_kb_table(const dataflow::Table& table) {
  if (table.schema() != kb_schema()) {
    throw std::invalid_argument("from_kb_table: schema is not K_b");
  }
  Trace trace;
  trace.records.reserve(table.num_rows());
  table.for_each_row([&](const dataflow::RowView& row) {
    TraceRecord rec;
    rec.t_ns = row.int64_at(0);
    const std::string& payload = row.string_at(1);
    rec.payload.assign(payload.begin(), payload.end());
    rec.bus = row.string_at(2);
    rec.message_id = row.int64_at(3);
    const MInfo info = parse_m_info(row.string_at(4));
    rec.protocol = info.protocol;
    rec.flags = info.flags;
    trace.records.push_back(std::move(rec));
  });
  return trace;
}

TraceStats compute_stats(const Trace& trace) {
  TraceStats stats;
  stats.num_records = trace.records.size();
  stats.duration_ns = trace.duration_ns();
  std::map<std::string, std::size_t> per_bus;
  std::map<std::int64_t, std::size_t> per_message;
  for (const TraceRecord& rec : trace.records) {
    ++per_bus[rec.bus];
    ++per_message[rec.message_id];
  }
  stats.records_per_bus.assign(per_bus.begin(), per_bus.end());
  stats.records_per_message.assign(per_message.begin(), per_message.end());
  return stats;
}

}  // namespace ivt::tracefile
