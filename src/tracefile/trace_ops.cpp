#include "tracefile/trace_ops.hpp"

#include <algorithm>
#include <map>

namespace ivt::tracefile {

namespace {

Trace copy_metadata(const Trace& trace) {
  Trace out;
  out.vehicle = trace.vehicle;
  out.journey = trace.journey;
  out.start_unix_ns = trace.start_unix_ns;
  return out;
}

}  // namespace

Trace slice_time(const Trace& trace, std::int64_t from_ns,
                 std::int64_t to_ns) {
  return filter_records(trace, [from_ns, to_ns](const TraceRecord& rec) {
    return rec.t_ns >= from_ns && rec.t_ns < to_ns;
  });
}

Trace filter_buses(const Trace& trace,
                   const std::vector<std::string>& buses) {
  return filter_records(trace, [&buses](const TraceRecord& rec) {
    return std::find(buses.begin(), buses.end(), rec.bus) != buses.end();
  });
}

Trace filter_messages(const Trace& trace,
                      const std::vector<std::int64_t>& message_ids) {
  return filter_records(trace, [&message_ids](const TraceRecord& rec) {
    return std::find(message_ids.begin(), message_ids.end(),
                     rec.message_id) != message_ids.end();
  });
}

Trace filter_records(const Trace& trace,
                     const std::function<bool(const TraceRecord&)>& keep) {
  Trace out = copy_metadata(trace);
  for (const TraceRecord& rec : trace.records) {
    if (keep(rec)) out.records.push_back(rec);
  }
  return out;
}

Trace merge_traces(const std::vector<Trace>& traces) {
  Trace out;
  if (traces.empty()) return out;
  out.vehicle = traces.front().vehicle;
  out.journey = traces.front().journey;
  out.start_unix_ns = traces.front().start_unix_ns;
  std::size_t total = 0;
  for (const Trace& t : traces) {
    total += t.records.size();
    out.start_unix_ns = std::min(out.start_unix_ns, t.start_unix_ns);
  }
  out.records.reserve(total);
  // k-way merge via repeated stable min pick (k is small: logger count).
  std::vector<std::size_t> cursor(traces.size(), 0);
  for (std::size_t emitted = 0; emitted < total; ++emitted) {
    std::size_t best = traces.size();
    for (std::size_t k = 0; k < traces.size(); ++k) {
      if (cursor[k] >= traces[k].records.size()) continue;
      if (best == traces.size() ||
          traces[k].records[cursor[k]].t_ns <
              traces[best].records[cursor[best]].t_ns) {
        best = k;
      }
    }
    out.records.push_back(traces[best].records[cursor[best]]);
    ++cursor[best];
  }
  return out;
}

Trace shift_time(const Trace& trace, std::int64_t delta_ns) {
  Trace out = copy_metadata(trace);
  out.records.reserve(trace.records.size());
  for (TraceRecord rec : trace.records) {
    rec.t_ns += delta_ns;
    out.records.push_back(std::move(rec));
  }
  return out;
}

std::vector<CycleEstimate> estimate_cycles(const Trace& trace) {
  std::map<std::pair<std::string, std::int64_t>, std::vector<std::int64_t>>
      gaps;
  std::map<std::pair<std::string, std::int64_t>, std::int64_t> last_seen;
  std::map<std::pair<std::string, std::int64_t>, std::size_t> counts;
  for (const TraceRecord& rec : trace.records) {
    const auto key = std::make_pair(rec.bus, rec.message_id);
    ++counts[key];
    const auto it = last_seen.find(key);
    if (it != last_seen.end()) {
      gaps[key].push_back(rec.t_ns - it->second);
    }
    last_seen[key] = rec.t_ns;
  }
  std::vector<CycleEstimate> out;
  out.reserve(counts.size());
  for (auto& [key, gap_list] : gaps) {
    CycleEstimate est;
    est.bus = key.first;
    est.message_id = key.second;
    est.instances = counts[key];
    std::nth_element(gap_list.begin(),
                     gap_list.begin() + static_cast<std::ptrdiff_t>(
                                            gap_list.size() / 2),
                     gap_list.end());
    est.median_gap_ns = gap_list[gap_list.size() / 2];
    out.push_back(std::move(est));
  }
  return out;
}

}  // namespace ivt::tracefile
