// In-memory trace model.
//
// A Trace is the common log K_b the paper's monitoring devices write: an
// ordered sequence of byte tuples k_b = (t, l, b_id, m_id, m_info), where
// l is the raw payload and m_info carries the protocol-specific fields.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataflow/table.hpp"
#include "protocol/frame.hpp"

namespace ivt::tracefile {

/// One recorded message instance (the paper's byte tuple k_b).
struct TraceRecord {
  std::int64_t t_ns = 0;       ///< timestamp (monotonic, ns since start)
  std::string bus;             ///< b_id
  std::int64_t message_id = 0; ///< m_id (CAN id, LIN id, SOME/IP message id)
  protocol::Protocol protocol = protocol::Protocol::Can;
  std::uint32_t flags = 0;     ///< monitor flags (bit 0: error frame)
  std::vector<std::uint8_t> payload;  ///< l

  static constexpr std::uint32_t kFlagErrorFrame = 0x1;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Journey metadata + record sequence.
struct Trace {
  std::string vehicle;
  std::string journey;
  std::int64_t start_unix_ns = 0;
  std::vector<TraceRecord> records;

  [[nodiscard]] std::size_t size() const { return records.size(); }
  [[nodiscard]] bool empty() const { return records.empty(); }
  /// Duration between first and last record (0 for < 2 records).
  [[nodiscard]] std::int64_t duration_ns() const;
  /// True when records are sorted by t_ns (the monitor guarantee).
  [[nodiscard]] bool is_time_ordered() const;
};

/// Schema of the tabular K_b form: (t: int64, l: string, b_id: string,
/// m_id: int64, m_info: string). m_info is "<protocol>:<flags>".
const dataflow::Schema& kb_schema();

/// Convert a trace to the K_b table, split into `partitions` slices.
dataflow::Table to_kb_table(const Trace& trace, std::size_t partitions);

/// Inverse of to_kb_table (metadata is not stored in the table).
Trace from_kb_table(const dataflow::Table& table);

/// Encode/decode the m_info cell.
std::string make_m_info(protocol::Protocol protocol, std::uint32_t flags);
struct MInfo {
  protocol::Protocol protocol = protocol::Protocol::Can;
  std::uint32_t flags = 0;
};
MInfo parse_m_info(std::string_view m_info);

/// Per-trace statistics (used by the Table 5 style reports).
struct TraceStats {
  std::size_t num_records = 0;
  std::int64_t duration_ns = 0;
  std::vector<std::pair<std::string, std::size_t>> records_per_bus;
  std::vector<std::pair<std::int64_t, std::size_t>> records_per_message;
};
TraceStats compute_stats(const Trace& trace);

}  // namespace ivt::tracefile
