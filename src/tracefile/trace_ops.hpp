// Trace manipulation utilities: slicing, filtering, merging — the
// day-to-day plumbing of a trace-analysis toolchain (cutting a journey to
// the interesting window, isolating one channel, fusing multi-logger
// recordings).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "tracefile/trace.hpp"

namespace ivt::tracefile {

/// Records with from_ns <= t < to_ns (metadata preserved).
Trace slice_time(const Trace& trace, std::int64_t from_ns,
                 std::int64_t to_ns);

/// Records of the given channels only.
Trace filter_buses(const Trace& trace, const std::vector<std::string>& buses);

/// Records of the given message ids only.
Trace filter_messages(const Trace& trace,
                      const std::vector<std::int64_t>& message_ids);

/// Generic predicate filter.
Trace filter_records(const Trace& trace,
                     const std::function<bool(const TraceRecord&)>& keep);

/// Merge several (time-ordered) traces into one time-ordered trace.
/// Vehicle/journey metadata is taken from the first input; `start_unix_ns`
/// becomes the minimum. Ties keep the input order (stable).
Trace merge_traces(const std::vector<Trace>& traces);

/// Shift every timestamp by `delta_ns` (e.g. to align multi-logger
/// clocks before merging).
Trace shift_time(const Trace& trace, std::int64_t delta_ns);

/// Per-message-type cycle-time estimate: median gap between consecutive
/// instances of each (bus, m_id). Used to bootstrap missing
/// expected_cycle documentation from data.
struct CycleEstimate {
  std::string bus;
  std::int64_t message_id = 0;
  std::int64_t median_gap_ns = 0;
  std::size_t instances = 0;
};
std::vector<CycleEstimate> estimate_cycles(const Trace& trace);

}  // namespace ivt::tracefile
