// Binary trace container (.ivt) — the repo's stand-in for BLF/MDF logs.
//
// Layout (all integers little-endian):
//   magic "IVTR" | u32 version | u8 vehicle_len | vehicle | u8 journey_len
//   | journey | i64 start_unix_ns | records...
// Record stream (tag byte per entry):
//   0x01 bus definition: u16 index | u8 name_len | name
//   0x02 message record: i64 t_ns | u16 bus_index | u8 protocol
//                        | i64 message_id | u32 flags | u16 payload_len
//                        | payload
// Bus names are interned on first use, so multi-million-record traces do
// not repeat channel strings (the "memory efficiency" requirement of
// paper Sec. 3.2).
#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>

#include "errors/error.hpp"
#include "errors/failure_log.hpp"
#include "tracefile/trace.hpp"

namespace ivt::tracefile {

inline constexpr std::uint32_t kBinaryFormatVersion = 1;

/// Streaming writer: records can be appended one by one.
class TraceWriter {
 public:
  /// Writes the header immediately. The stream must outlive the writer.
  TraceWriter(std::ostream& out, const std::string& vehicle,
              const std::string& journey, std::int64_t start_unix_ns);

  void write(const TraceRecord& record);
  [[nodiscard]] std::size_t records_written() const { return written_; }

 private:
  std::uint16_t bus_index(const std::string& bus);

  std::ostream& out_;
  std::vector<std::string> buses_;
  /// Intern lookup: name -> index into buses_. Kept alongside the vector
  /// so interning stays O(1) per record instead of O(#buses).
  std::unordered_map<std::string, std::uint16_t> bus_lookup_;
  std::size_t written_ = 0;
};

/// Streaming reader.
class TraceReader {
 public:
  /// Reads and validates the header; throws std::runtime_error on a bad
  /// magic/version.
  explicit TraceReader(std::istream& in);

  [[nodiscard]] const std::string& vehicle() const { return vehicle_; }
  [[nodiscard]] const std::string& journey() const { return journey_; }
  [[nodiscard]] std::int64_t start_unix_ns() const { return start_unix_ns_; }

  /// Read the next record; false at (clean) EOF, throws on corruption.
  bool next(TraceRecord& record);

 private:
  std::istream& in_;
  std::string vehicle_;
  std::string journey_;
  std::int64_t start_unix_ns_ = 0;
  std::vector<std::string> buses_;
};

/// Whole-trace convenience wrappers. Failures surface as errors::Error
/// (Io for stream problems, Format/Decode for corrupt containers).
void save_trace(const Trace& trace, const std::string& path);
Trace load_trace(const std::string& path);

/// Like load_trace, but under Skip/Quarantine a corrupt record stream is
/// truncated at the first bad record instead of aborting (the .ivt stream
/// has no per-record framing to resync on); the loss is appended to
/// `failures` when given. Fail delegates to load_trace.
Trace load_trace_tolerant(const std::string& path,
                          errors::ErrorPolicy on_error,
                          errors::FailureLog* failures = nullptr);

/// Vector-style ASC-like text export (one line per record) for eyeballing
/// traces in a pager; not meant to be re-parsed.
void export_asc(const Trace& trace, std::ostream& out);

}  // namespace ivt::tracefile
