// SAX — Symbolic Aggregate approXimation (Lin, Keogh, Lonardi, Chiu 2004).
//
// Used by processing branch α to map numeric segments onto a small symbol
// alphabet: z-normalize, reduce with PAA, then cut the Gaussian N(0,1)
// domain into equiprobable regions and emit one letter per region.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace ivt::algo {

/// Piecewise Aggregate Approximation: mean of `xs` over `n_segments`
/// equally sized frames (fractional frame borders are weighted, so the
/// result is exact for any length). n_segments is clamped to xs.size().
std::vector<double> paa(std::span<const double> xs, std::size_t n_segments);

/// Z-normalize: (x - mean) / stddev. A series with stddev below `epsilon`
/// is returned as all-zero (the SAX convention for flat series).
std::vector<double> znormalize(std::span<const double> xs,
                               double epsilon = 1e-12);

/// Gaussian equiprobable breakpoints for an alphabet of `alphabet_size`
/// letters (2..16 supported; throws std::invalid_argument otherwise).
/// Returns alphabet_size - 1 ascending cut points.
std::vector<double> sax_breakpoints(std::size_t alphabet_size);

/// Letter ('a' + region index) for one z-normalized value.
char sax_symbol(double value, std::span<const double> breakpoints);

/// Full SAX word: znormalize -> paa(word_length) -> symbols.
std::string sax_word(std::span<const double> xs, std::size_t word_length,
                     std::size_t alphabet_size);

/// MINDIST lower-bound distance between two equal-length SAX words
/// (Lin et al., Sec. 4.2). `n` is the original series length.
double sax_min_dist(const std::string& a, const std::string& b,
                    std::size_t alphabet_size, std::size_t n);

}  // namespace ivt::algo
