// Basic descriptive statistics used across the preprocessing branches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ivt::algo {

/// Welford online mean/variance accumulator (numerically stable).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  ///< sample variance
double stddev(std::span<const double> xs);

/// Median; averages the middle pair for even sizes. Precondition: non-empty.
double median(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0,1]. Precondition: non-empty.
double quantile(std::span<const double> xs, double q);

/// Median absolute deviation (raw, not scaled). Precondition: non-empty.
double median_absolute_deviation(std::span<const double> xs);

/// Least-squares line fit y = slope*x + intercept over (xs[i], ys[i]).
/// Degenerate inputs (constant x, size < 2) yield slope 0 through the mean.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
};
LineFit fit_line(std::span<const double> xs, std::span<const double> ys);

/// Sum of squared residuals of `fit` over the points.
double residual_sum_squares(std::span<const double> xs,
                            std::span<const double> ys, const LineFit& fit);

}  // namespace ivt::algo
