// Series smoothing filters (branch α pre-step before SWAB/SAX).
#pragma once

#include <span>
#include <vector>

namespace ivt::algo {

/// Centered moving average with window `2*half_window + 1`, truncated at
/// the series borders. half_window == 0 returns a copy.
std::vector<double> moving_average(std::span<const double> xs,
                                   std::size_t half_window);

/// Centered moving median, truncated at borders. Robust alternative used
/// for spiky signals.
std::vector<double> moving_median(std::span<const double> xs,
                                  std::size_t half_window);

/// Exponential smoothing with factor alpha in (0,1]; alpha == 1 is a copy.
std::vector<double> exponential_smoothing(std::span<const double> xs,
                                          double alpha);

}  // namespace ivt::algo
