// SWAB — Sliding Window And Bottom-up time-series segmentation
// (Keogh, Chu, Hart, Pazzani: "An online algorithm for segmenting time
// series", ICDM 2001).
//
// Branch α uses SWAB to cut each cleaned numeric signal sequence into
// linear segments; each segment is then labeled with a SAX symbol and a
// trend, giving the paper's (trend, symbol) tuple per segment.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "algo/stats.hpp"

namespace ivt::algo {

/// One linear segment over [start, end) of the input series.
struct Segment {
  std::size_t start = 0;
  std::size_t end = 0;  ///< exclusive
  LineFit fit;          ///< least-squares line over (x = ts[i], y = xs[i])
  double error = 0.0;   ///< residual sum of squares of `fit`

  [[nodiscard]] std::size_t length() const { return end - start; }
  /// Fitted value at x.
  [[nodiscard]] double value_at(double x) const {
    return fit.slope * x + fit.intercept;
  }
};

struct SegmentationConfig {
  /// Residual-sum-of-squares budget per segment; a merge/extension that
  /// would exceed it is rejected.
  double max_error = 1.0;
  /// SWAB working-buffer capacity in points (the paper recommends holding
  /// roughly 5–6 segments' worth of data).
  std::size_t buffer_size = 100;
};

/// Classic offline bottom-up segmentation: start from 2-point segments,
/// repeatedly merge the cheapest adjacent pair while the merged error stays
/// within `max_error`.
std::vector<Segment> bottom_up_segment(std::span<const double> ts,
                                       std::span<const double> xs,
                                       double max_error);

/// Online sliding-window segmentation (greedy left-to-right), used inside
/// SWAB to pull the next chunk into the buffer.
std::vector<Segment> sliding_window_segment(std::span<const double> ts,
                                            std::span<const double> xs,
                                            double max_error);

/// SWAB: maintain a buffer, run bottom-up on it, emit the leftmost segment,
/// refill with the next sliding-window segment. Produces offline-quality
/// segmentations with online (one-pass) behaviour.
///
/// `ts` are the sample x-positions (timestamps); `xs` the values.
/// Both spans must have equal size. An empty input yields no segments.
std::vector<Segment> swab_segment(std::span<const double> ts,
                                  std::span<const double> xs,
                                  const SegmentationConfig& config = {});

/// Convenience overload with implicit unit-spaced timestamps 0,1,2,...
std::vector<Segment> swab_segment(std::span<const double> xs,
                                  const SegmentationConfig& config = {});

/// Fit + residual error for [start, end) — exposed for tests.
Segment fit_segment(std::span<const double> ts, std::span<const double> xs,
                    std::size_t start, std::size_t end);

}  // namespace ivt::algo
