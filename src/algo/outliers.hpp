// Outlier detection for signal instance sequences.
//
// The paper's branches α and β split a sequence into outliers (kept as
// potential errors and merged back at the end) and a cleaned remainder.
// Three standard detectors are provided; Hampel is the default used by the
// pipeline because it is robust on the step-like automotive signals.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ivt::algo {

enum class OutlierMethod : std::uint8_t {
  ZScore,  ///< |x - mean| > threshold * stddev
  Iqr,     ///< outside [Q1 - k*IQR, Q3 + k*IQR]
  Hampel,  ///< |x - rolling median| > threshold * 1.4826 * rolling MAD
};

struct OutlierConfig {
  OutlierMethod method = OutlierMethod::Hampel;
  /// ZScore: stddev multiples. Iqr: IQR multiples. Hampel: scaled-MAD
  /// multiples.
  double threshold = 3.0;
  /// Hampel rolling window half-width.
  std::size_t window = 5;
};

/// Per-element outlier mask (1 = outlier). Never flags anything for series
/// shorter than 3 elements or with zero spread.
std::vector<std::uint8_t> detect_outliers(std::span<const double> xs,
                                          const OutlierConfig& config = {});

/// Split indices by mask: (outlier_indices, clean_indices).
struct OutlierSplit {
  std::vector<std::size_t> outliers;
  std::vector<std::size_t> clean;
};
OutlierSplit split_by_mask(std::span<const std::uint8_t> mask);

}  // namespace ivt::algo
