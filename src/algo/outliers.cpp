#include "algo/outliers.hpp"

#include <algorithm>
#include <cmath>

#include "algo/stats.hpp"

namespace ivt::algo {

namespace {

std::vector<std::uint8_t> zscore_mask(std::span<const double> xs,
                                      double threshold) {
  std::vector<std::uint8_t> mask(xs.size(), 0);
  const double mu = mean(xs);
  const double sd = stddev(xs);
  if (sd <= 0.0) return mask;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (std::fabs(xs[i] - mu) > threshold * sd) mask[i] = 1;
  }
  return mask;
}

std::vector<std::uint8_t> iqr_mask(std::span<const double> xs,
                                   double threshold) {
  std::vector<std::uint8_t> mask(xs.size(), 0);
  const double q1 = quantile(xs, 0.25);
  const double q3 = quantile(xs, 0.75);
  const double iqr = q3 - q1;
  if (iqr <= 0.0) return mask;
  const double lo = q1 - threshold * iqr;
  const double hi = q3 + threshold * iqr;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] < lo || xs[i] > hi) mask[i] = 1;
  }
  return mask;
}

std::vector<std::uint8_t> hampel_mask(std::span<const double> xs,
                                      double threshold, std::size_t window) {
  // 1.4826 rescales MAD to the stddev of a Gaussian.
  constexpr double kMadScale = 1.4826;
  std::vector<std::uint8_t> mask(xs.size(), 0);
  if (window == 0) window = 1;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::size_t lo = i >= window ? i - window : 0;
    const std::size_t hi = std::min(i + window + 1, xs.size());
    const auto win = xs.subspan(lo, hi - lo);
    const double med = median(win);
    const double mad = median_absolute_deviation(win);
    if (mad <= 0.0) continue;  // flat window: nothing is an outlier
    if (std::fabs(xs[i] - med) > threshold * kMadScale * mad) mask[i] = 1;
  }
  return mask;
}

}  // namespace

std::vector<std::uint8_t> detect_outliers(std::span<const double> xs,
                                          const OutlierConfig& config) {
  if (xs.size() < 3) return std::vector<std::uint8_t>(xs.size(), 0);
  switch (config.method) {
    case OutlierMethod::ZScore:
      return zscore_mask(xs, config.threshold);
    case OutlierMethod::Iqr:
      return iqr_mask(xs, config.threshold);
    case OutlierMethod::Hampel:
      return hampel_mask(xs, config.threshold, config.window);
  }
  return std::vector<std::uint8_t>(xs.size(), 0);
}

OutlierSplit split_by_mask(std::span<const std::uint8_t> mask) {
  OutlierSplit split;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    (mask[i] != 0 ? split.outliers : split.clean).push_back(i);
  }
  return split;
}

}  // namespace ivt::algo
