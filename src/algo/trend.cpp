#include "algo/trend.hpp"

#include <cmath>
#include <stdexcept>

namespace ivt::algo {

std::string_view to_string(Trend trend) {
  switch (trend) {
    case Trend::Decreasing:
      return "decreasing";
    case Trend::Steady:
      return "steady";
    case Trend::Increasing:
      return "increasing";
  }
  return "unknown";
}

Trend classify_slope(double slope, double steady_threshold) {
  if (std::fabs(slope) <= steady_threshold) return Trend::Steady;
  return slope > 0.0 ? Trend::Increasing : Trend::Decreasing;
}

Trend segment_trend(const Segment& segment, double steady_threshold) {
  return classify_slope(segment.fit.slope, steady_threshold);
}

std::vector<Trend> gradient_trends(std::span<const double> ts,
                                   std::span<const double> ys,
                                   double steady_threshold) {
  if (ts.size() != ys.size()) {
    throw std::invalid_argument("gradient_trends: ts/ys size mismatch");
  }
  std::vector<Trend> out(ys.size(), Trend::Steady);
  for (std::size_t i = 1; i < ys.size(); ++i) {
    const double dt = ts[i] - ts[i - 1];
    const double dy = ys[i] - ys[i - 1];
    const double slope = dt > 0.0 ? dy / dt : 0.0;
    out[i] = classify_slope(slope, steady_threshold);
  }
  return out;
}

}  // namespace ivt::algo
