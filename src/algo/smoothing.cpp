#include "algo/smoothing.hpp"

#include <algorithm>
#include <stdexcept>

#include "algo/stats.hpp"
#include "support/batch.hpp"

namespace ivt::algo {

std::vector<double> moving_average(std::span<const double> xs,
                                   std::size_t half_window) {
  // Batched shape (IVT_SIMD): interior windows run 4 outputs per block
  // with per-lane left-to-right accumulation — bit-identical to the
  // scalar fallback by the support::batch contract.
  return support::batch::moving_average(xs, half_window);
}

std::vector<double> moving_median(std::span<const double> xs,
                                  std::size_t half_window) {
  std::vector<double> out;
  out.reserve(xs.size());
  if (half_window == 0) {
    out.assign(xs.begin(), xs.end());
    return out;
  }
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::size_t lo = i >= half_window ? i - half_window : 0;
    const std::size_t hi = std::min(i + half_window + 1, xs.size());
    out.push_back(median(xs.subspan(lo, hi - lo)));
  }
  return out;
}

std::vector<double> exponential_smoothing(std::span<const double> xs,
                                          double alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("exponential_smoothing: alpha must be in "
                                "(0, 1]");
  }
  std::vector<double> out;
  out.reserve(xs.size());
  double state = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    state = i == 0 ? xs[0] : alpha * xs[i] + (1.0 - alpha) * state;
    out.push_back(state);
  }
  return out;
}

}  // namespace ivt::algo
