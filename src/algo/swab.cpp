#include "algo/swab.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ivt::algo {

namespace {

void check_sizes(std::span<const double> ts, std::span<const double> xs) {
  if (ts.size() != xs.size()) {
    throw std::invalid_argument("segmentation: ts/xs size mismatch");
  }
}

}  // namespace

Segment fit_segment(std::span<const double> ts, std::span<const double> xs,
                    std::size_t start, std::size_t end) {
  Segment seg;
  seg.start = start;
  seg.end = end;
  const auto tsub = ts.subspan(start, end - start);
  const auto xsub = xs.subspan(start, end - start);
  seg.fit = fit_line(tsub, xsub);
  seg.error = residual_sum_squares(tsub, xsub, seg.fit);
  return seg;
}

std::vector<Segment> bottom_up_segment(std::span<const double> ts,
                                       std::span<const double> xs,
                                       double max_error) {
  check_sizes(ts, xs);
  const std::size_t n = xs.size();
  std::vector<Segment> segments;
  if (n == 0) return segments;
  if (n == 1) {
    segments.push_back(fit_segment(ts, xs, 0, 1));
    return segments;
  }

  // Initial fine segmentation: pairs of points.
  for (std::size_t i = 0; i + 1 < n; i += 2) {
    segments.push_back(fit_segment(ts, xs, i, i + 2));
  }
  if (n % 2 == 1) segments.push_back(fit_segment(ts, xs, n - 1, n));

  // Merge cost of segments[i] with segments[i+1].
  auto merge_cost = [&](std::size_t i) {
    return fit_segment(ts, xs, segments[i].start, segments[i + 1].end).error;
  };
  std::vector<double> costs;
  costs.reserve(segments.size());
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    costs.push_back(merge_cost(i));
  }

  while (!costs.empty()) {
    const std::size_t best = static_cast<std::size_t>(
        std::min_element(costs.begin(), costs.end()) - costs.begin());
    if (costs[best] > max_error) break;
    segments[best] = fit_segment(ts, xs, segments[best].start,
                                 segments[best + 1].end);
    segments.erase(segments.begin() + static_cast<std::ptrdiff_t>(best) + 1);
    costs.erase(costs.begin() + static_cast<std::ptrdiff_t>(best));
    if (best < costs.size()) costs[best] = merge_cost(best);
    if (best > 0) costs[best - 1] = merge_cost(best - 1);
  }
  return segments;
}

std::vector<Segment> sliding_window_segment(std::span<const double> ts,
                                            std::span<const double> xs,
                                            double max_error) {
  check_sizes(ts, xs);
  std::vector<Segment> segments;
  const std::size_t n = xs.size();
  std::size_t anchor = 0;
  while (anchor < n) {
    std::size_t end = std::min(anchor + 2, n);
    Segment seg = fit_segment(ts, xs, anchor, end);
    while (end < n) {
      Segment grown = fit_segment(ts, xs, anchor, end + 1);
      if (grown.error > max_error) break;
      seg = grown;
      ++end;
    }
    segments.push_back(seg);
    anchor = end;
  }
  return segments;
}

std::vector<Segment> swab_segment(std::span<const double> ts,
                                  std::span<const double> xs,
                                  const SegmentationConfig& config) {
  check_sizes(ts, xs);
  const std::size_t n = xs.size();
  std::vector<Segment> out;
  if (n == 0) return out;
  const std::size_t buffer_size = std::max<std::size_t>(config.buffer_size, 4);
  if (n <= buffer_size) return bottom_up_segment(ts, xs, config.max_error);

  // Buffer is the window [lo, hi) of the input.
  std::size_t lo = 0;
  std::size_t hi = std::min(buffer_size, n);
  while (lo < n) {
    const auto tbuf = ts.subspan(lo, hi - lo);
    const auto xbuf = xs.subspan(lo, hi - lo);
    std::vector<Segment> local =
        bottom_up_segment(tbuf, xbuf, config.max_error);
    // Emit the leftmost segment (it is final: bottom-up will not change it
    // once more data arrives, per the SWAB argument), unless the buffer
    // already covers the rest of the series — then everything is final.
    if (hi >= n) {
      for (Segment seg : local) {
        seg.start += lo;
        seg.end += lo;
        out.push_back(seg);
      }
      break;
    }
    Segment leftmost = local.front();
    leftmost.start += lo;
    leftmost.end += lo;
    out.push_back(leftmost);
    lo = leftmost.end;

    // Refill: extend the right edge by one sliding-window segment worth of
    // points (the "best line" step of SWAB).
    const std::size_t remaining_buffer = hi > lo ? hi - lo : 0;
    if (remaining_buffer < buffer_size && hi < n) {
      const auto tail_ts = ts.subspan(hi);
      const auto tail_xs = xs.subspan(hi);
      // One greedy segment from the tail:
      std::size_t end = std::min<std::size_t>(2, tail_xs.size());
      Segment grow = fit_segment(tail_ts, tail_xs, 0, end);
      while (end < tail_xs.size() && hi + end < lo + buffer_size) {
        Segment g2 = fit_segment(tail_ts, tail_xs, 0, end + 1);
        if (g2.error > config.max_error) break;
        grow = g2;
        ++end;
      }
      hi = std::min(n, hi + end);
    }
    if (hi <= lo) hi = std::min(n, lo + buffer_size);
  }
  return out;
}

std::vector<Segment> swab_segment(std::span<const double> xs,
                                  const SegmentationConfig& config) {
  std::vector<double> ts(xs.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    ts[i] = static_cast<double>(i);
  }
  return swab_segment(ts, xs, config);
}

}  // namespace ivt::algo
