#include "algo/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/batch.hpp"

namespace ivt::algo {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.variance();
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("median of empty range");
  std::vector<double> copy(xs.begin(), xs.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + mid, copy.end());
  const double upper = copy[mid];
  if (copy.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(copy.begin(), copy.begin() + mid);
  return 0.5 * (lower + upper);
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile of empty range");
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  const double pos = q * static_cast<double>(copy.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, copy.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return copy[lo] * (1.0 - frac) + copy[hi] * frac;
}

double median_absolute_deviation(std::span<const double> xs) {
  const double med = median(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double x : xs) dev.push_back(std::fabs(x - med));
  return median(dev);
}

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  LineFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n == 0) return fit;
  const double mx = mean(xs.first(n));
  const double my = mean(ys.first(n));
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    sxx += dx * dx;
    sxy += dx * (ys[i] - my);
  }
  if (sxx > 0.0) fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

double residual_sum_squares(std::span<const double> xs,
                            std::span<const double> ys, const LineFit& fit) {
  // Batched shape (IVT_SIMD): elementwise residual terms vectorize, the
  // accumulation stays in index order — bit-identical to the scalar loop.
  return support::batch::residual_sum_squares(xs, ys, fit.slope,
                                              fit.intercept);
}

}  // namespace ivt::algo
