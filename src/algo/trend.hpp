// Trend estimation for segments (branch α) and ordinal gradients (branch β).
#pragma once

#include <span>
#include <string_view>

#include "algo/swab.hpp"

namespace ivt::algo {

enum class Trend : std::uint8_t { Decreasing, Steady, Increasing };

std::string_view to_string(Trend trend);

/// Classify a slope: |slope| <= threshold -> Steady, else by sign.
Trend classify_slope(double slope, double steady_threshold);

/// Trend of a SWAB segment (uses its fitted slope).
Trend segment_trend(const Segment& segment, double steady_threshold);

/// Discrete gradient trend used by branch β: compares consecutive values
/// (y[i] - y[i-1]) / (t[i] - t[i-1]); the first element is Steady.
/// Returns one trend per element.
std::vector<Trend> gradient_trends(std::span<const double> ts,
                                   std::span<const double> ys,
                                   double steady_threshold);

}  // namespace ivt::algo
