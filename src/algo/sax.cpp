#include "algo/sax.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "algo/stats.hpp"
#include "support/batch.hpp"

namespace ivt::algo {

std::vector<double> paa(std::span<const double> xs, std::size_t n_segments) {
  std::vector<double> out;
  if (xs.empty() || n_segments == 0) return out;
  n_segments = std::min(n_segments, xs.size());
  out.assign(n_segments, 0.0);
  // Weighted frame assignment: element i contributes to frames overlapping
  // [i, i+1) in the rescaled domain [0, n_segments).
  const double scale = static_cast<double>(n_segments) /
                       static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double lo = static_cast<double>(i) * scale;
    const double hi = static_cast<double>(i + 1) * scale;
    std::size_t f0 = static_cast<std::size_t>(lo);
    const std::size_t f1 =
        std::min(n_segments - 1, static_cast<std::size_t>(
                                     std::nextafter(hi, 0.0)));
    if (f0 >= n_segments) f0 = n_segments - 1;
    for (std::size_t f = f0; f <= f1; ++f) {
      const double frame_lo = static_cast<double>(f);
      const double frame_hi = static_cast<double>(f + 1);
      const double overlap =
          std::min(hi, frame_hi) - std::max(lo, frame_lo);
      if (overlap > 0.0) out[f] += xs[i] * overlap;
    }
  }
  // Every frame has width exactly 1 in the rescaled domain, so the
  // accumulated overlap-weighted sum is already the frame mean.
  return out;
}

std::vector<double> znormalize(std::span<const double> xs, double epsilon) {
  std::vector<double> out(xs.size(), 0.0);
  if (xs.empty()) return out;
  const double mu = mean(xs);
  const double sd = stddev(xs);
  if (sd < epsilon) return out;
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = (xs[i] - mu) / sd;
  return out;
}

std::vector<double> sax_breakpoints(std::size_t alphabet_size) {
  // Equiprobable N(0,1) cut points, i.e. Phi^-1(k / a) for k = 1..a-1.
  // Tabulated (as in the SAX paper) to avoid depending on an inverse-CDF
  // implementation; values match Lin et al. Table 2 and extend it to 16.
  static const std::vector<std::vector<double>> kTable = {
      /* 2*/ {0.0},
      /* 3*/ {-0.4307, 0.4307},
      /* 4*/ {-0.6745, 0.0, 0.6745},
      /* 5*/ {-0.8416, -0.2533, 0.2533, 0.8416},
      /* 6*/ {-0.9674, -0.4307, 0.0, 0.4307, 0.9674},
      /* 7*/ {-1.0676, -0.5659, -0.1800, 0.1800, 0.5659, 1.0676},
      /* 8*/ {-1.1503, -0.6745, -0.3186, 0.0, 0.3186, 0.6745, 1.1503},
      /* 9*/
      {-1.2206, -0.7647, -0.4307, -0.1397, 0.1397, 0.4307, 0.7647, 1.2206},
      /*10*/
      {-1.2816, -0.8416, -0.5244, -0.2533, 0.0, 0.2533, 0.5244, 0.8416,
       1.2816},
      /*11*/
      {-1.3352, -0.9085, -0.6046, -0.3488, -0.1142, 0.1142, 0.3488, 0.6046,
       0.9085, 1.3352},
      /*12*/
      {-1.3830, -0.9674, -0.6745, -0.4307, -0.2104, 0.0, 0.2104, 0.4307,
       0.6745, 0.9674, 1.3830},
      /*13*/
      {-1.4261, -1.0201, -0.7363, -0.5024, -0.2934, -0.0966, 0.0966, 0.2934,
       0.5024, 0.7363, 1.0201, 1.4261},
      /*14*/
      {-1.4652, -1.0676, -0.7916, -0.5660, -0.3661, -0.1800, 0.0, 0.1800,
       0.3661, 0.5660, 0.7916, 1.0676, 1.4652},
      /*15*/
      {-1.5011, -1.1108, -0.8416, -0.6229, -0.4307, -0.2533, -0.0837, 0.0837,
       0.2533, 0.4307, 0.6229, 0.8416, 1.1108, 1.5011},
      /*16*/
      {-1.5341, -1.1503, -0.8871, -0.6745, -0.4888, -0.3186, -0.1573, 0.0,
       0.1573, 0.3186, 0.4888, 0.6745, 0.8871, 1.1503, 1.5341},
  };
  if (alphabet_size < 2 || alphabet_size > 16) {
    throw std::invalid_argument(
        "sax_breakpoints: alphabet size must be in [2, 16], got " +
        std::to_string(alphabet_size));
  }
  return kTable[alphabet_size - 2];
}

char sax_symbol(double value, std::span<const double> breakpoints) {
  std::size_t region = 0;
  while (region < breakpoints.size() && value >= breakpoints[region]) {
    ++region;
  }
  return static_cast<char>('a' + region);
}

std::string sax_word(std::span<const double> xs, std::size_t word_length,
                     std::size_t alphabet_size) {
  const std::vector<double> z = znormalize(xs);
  const std::vector<double> reduced = paa(z, word_length);
  const std::vector<double> bp = sax_breakpoints(alphabet_size);
  std::string word;
  // Batched shape (IVT_SIMD): branchless region counting, identical to
  // the sax_symbol walk for the ascending breakpoint table.
  support::batch::sax_symbols(reduced, bp, word);
  return word;
}

double sax_min_dist(const std::string& a, const std::string& b,
                    std::size_t alphabet_size, std::size_t n) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("sax_min_dist: word length mismatch");
  }
  if (a.empty()) return 0.0;
  const std::vector<double> bp = sax_breakpoints(alphabet_size);
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const int ra = a[i] - 'a';
    const int rb = b[i] - 'a';
    if (std::abs(ra - rb) <= 1) continue;  // adjacent regions: distance 0
    const int hi = std::max(ra, rb);
    const int lo = std::min(ra, rb);
    const double d = bp[static_cast<std::size_t>(hi - 1)] -
                     bp[static_cast<std::size_t>(lo)];
    sum += d * d;
  }
  const double w = static_cast<double>(a.size());
  return std::sqrt(static_cast<double>(n) / w) * std::sqrt(sum);
}

}  // namespace ivt::algo
