// Reader side of the .ivc columnar trace container.
//
// The reader maps the whole file into memory once, parses the footer, and
// serves scans: a ScanPredicate first prunes chunks via their zone maps,
// then the surviving chunks are decoded — optionally in parallel on a
// dataflow::ThreadPool or Engine — straight into a partitioned
// dataflow::Table in K_b schema (one partition per surviving chunk, chunk
// order preserved, so logical row order is deterministic and identical to
// the row-oriented .ivt load path).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "colstore/format.hpp"
#include "dataflow/table.hpp"
#include "tracefile/trace.hpp"

namespace ivt::dataflow {
class Engine;
class ThreadPool;
}  // namespace ivt::dataflow

namespace ivt::colstore {

class ChunkCursor;

class ColumnarReader {
 public:
  /// Reads and indexes the file; throws errors::Error(Io) when the file
  /// cannot be read and errors::Error(Format) on a bad
  /// magic/version/footer.
  explicit ColumnarReader(const std::string& path);

  /// Index an in-memory image of a .ivc file (tests, network buffers).
  static ColumnarReader from_buffer(std::string data);

  [[nodiscard]] const std::string& vehicle() const { return vehicle_; }
  [[nodiscard]] const std::string& journey() const { return journey_; }
  [[nodiscard]] std::int64_t start_unix_ns() const { return start_unix_ns_; }

  [[nodiscard]] std::size_t num_chunks() const { return chunks_.size(); }
  [[nodiscard]] const ChunkInfo& chunk(std::size_t i) const {
    return chunks_[i];
  }
  [[nodiscard]] const std::vector<ChunkInfo>& chunks() const {
    return chunks_;
  }
  [[nodiscard]] const std::vector<std::string>& bus_names() const {
    return buses_;
  }
  [[nodiscard]] std::size_t num_rows() const;

  /// Container format version of this file (1 or 2). Version 2 carries
  /// the join-key dictionary + key_idx column the compressed scan path
  /// evaluates on; under ScanMode::Compressed a v1 file falls back to the
  /// decoded path per chunk.
  [[nodiscard]] std::uint32_t version() const { return version_; }
  /// v2 join-key dictionary in first-appearance order (empty for v1).
  [[nodiscard]] const std::vector<KeyDictEntry>& key_dict() const {
    return key_dict_;
  }

  /// Zone-map-pruned scan into a K_b table, decoding sequentially.
  [[nodiscard]] dataflow::Table scan(const ScanPredicate& pred = {},
                                     ScanStats* stats = nullptr) const;

  /// Same, with an explicit failure policy (ScanOptions): under
  /// Skip/Quarantine a chunk that fails to decode is dropped — scan
  /// resyncs at the next chunk boundary — instead of aborting the scan.
  [[nodiscard]] dataflow::Table scan(const ScanPredicate& pred,
                                     const ScanOptions& options,
                                     ScanStats* stats = nullptr) const;

  /// Same, decoding surviving chunks in parallel on `pool`.
  [[nodiscard]] dataflow::Table scan(const ScanPredicate& pred,
                                     dataflow::ThreadPool& pool,
                                     ScanStats* stats = nullptr) const;

  /// Same, decoding on the engine's worker pool; records a
  /// "colstore_scan" stage in the engine metrics.
  [[nodiscard]] dataflow::Table scan(const ScanPredicate& pred,
                                     dataflow::Engine& engine,
                                     ScanStats* stats = nullptr) const;

  /// Engine-parallel scan with a failure policy.
  [[nodiscard]] dataflow::Table scan(const ScanPredicate& pred,
                                     dataflow::Engine& engine,
                                     const ScanOptions& options,
                                     ScanStats* stats = nullptr) const;

  /// Morsel-level visitor over the file (streaming execution): zone-map
  /// pruning runs now, each surviving chunk is decoded on demand via
  /// ChunkCursor::decode. scan() is implemented on top of this. The
  /// reader must outlive the returned cursor.
  [[nodiscard]] ChunkCursor cursor(const ScanPredicate& pred = {},
                                   ScanOptions options = {}) const;

  /// Raw in-memory image of the file (used by ChunkCursor).
  [[nodiscard]] const std::string& buffer() const { return data_; }

  /// Full materialization back into the in-memory trace model.
  [[nodiscard]] tracefile::Trace read_trace() const;

 private:
  struct FromBufferTag {};
  ColumnarReader(std::string data, FromBufferTag);

  void parse();

  /// Shared scan core: `run(n, task)` must invoke task(i) for i in [0, n)
  /// (sequentially or on a pool) and return only when all are done.
  using TaskRunner =
      std::function<void(std::size_t,
                         const std::function<void(std::size_t)>&)>;
  dataflow::Table scan_with_runner(const ScanPredicate& pred,
                                   const TaskRunner& run,
                                   const ScanOptions& options,
                                   ScanStats* stats) const;

  std::string data_;
  std::string vehicle_;
  std::string journey_;
  std::int64_t start_unix_ns_ = 0;
  std::uint32_t version_ = kColumnarFormatVersion;
  std::vector<std::string> buses_;
  std::vector<KeyDictEntry> key_dict_;
  std::vector<ChunkInfo> chunks_;
};

/// Decode one chunk from a standalone copy of its encoded bytes — the
/// decode-from-cached-bytes path used by the ivt-serve chunk cache, which
/// stores the compressed extent [info.offset, info.offset +
/// info.encoded_bytes) of the original file per chunk instead of keeping
/// whole files resident. Rows matching `pred` come back as one
/// K_b-schema partition, identical to what a scan of the same chunk under
/// the same predicate would emit. Throws errors::Error(Decode) when the
/// buffer length disagrees with the directory entry or the body is
/// corrupt.
dataflow::Partition decode_chunk_from_bytes(
    const std::string& chunk_bytes, const ChunkInfo& info,
    const ScanPredicate& pred, const std::vector<std::string>& buses);

/// decode_chunk_from_bytes with the file context (format version + key
/// dictionary) and scan mode threaded through: under
/// ScanMode::Compressed a v2 chunk is evaluated run-level without
/// decoding the join-key columns; otherwise this is the decoded path.
/// `stats` (optional) accumulates the run counters. This is the entry
/// point the ivt-serve chunk cache uses so tier-1 cache hits stop
/// re-decoding per request.
dataflow::Partition scan_chunk_from_bytes(
    const std::string& chunk_bytes, const ChunkInfo& info,
    const ScanPredicate& pred, const std::vector<std::string>& buses,
    std::uint32_t version, const std::vector<KeyDictEntry>& key_dict,
    ScanMode mode, ScanStats* stats);

/// True when the file at `path` starts with the .ivc magic (cheap sniff
/// used by the CLI to dispatch between .ivt and .ivc loaders).
bool is_columnar_trace_file(const std::string& path);

/// Load either container into a Trace, dispatching on the file magic.
tracefile::Trace load_any_trace(const std::string& path);

}  // namespace ivt::colstore
