#include "colstore/columnar_writer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "colstore/encoding.hpp"
#include "errors/error.hpp"
#include "tracefile/binary_format.hpp"

namespace ivt::colstore {

namespace {

template <typename T>
void put_le(std::ostream& out, std::uint64_t& offset, T value) {
  static_assert(std::is_integral_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.put(static_cast<char>(
        (static_cast<std::make_unsigned_t<T>>(value) >> (8 * i)) & 0xFF));
  }
  offset += sizeof(T);
}

void put_bytes(std::ostream& out, std::uint64_t& offset, const char* data,
               std::size_t size) {
  out.write(data, static_cast<std::streamsize>(size));
  offset += size;
}

void put_block(std::ostream& out, std::uint64_t& offset,
               const std::string& block) {
  if (block.size() > std::numeric_limits<std::uint32_t>::max()) {
    IVT_THROW(errors::Category::Format, "ivc: column block too large");
  }
  put_le<std::uint32_t>(out, offset, static_cast<std::uint32_t>(block.size()));
  put_bytes(out, offset, block.data(), block.size());
}

}  // namespace

ColumnarWriter::ColumnarWriter(std::ostream& out, const std::string& vehicle,
                               const std::string& journey,
                               std::int64_t start_unix_ns,
                               ColumnarWriterOptions options)
    : out_(out), options_(options) {
  if (options_.chunk_rows == 0) options_.chunk_rows = kDefaultChunkRows;
  put_bytes(out_, offset_, kChunkMagic, sizeof(kChunkMagic));
  put_le<std::uint32_t>(out_, offset_, kColumnarFormatVersion);
  for (const std::string* s : {&vehicle, &journey}) {
    if (s->size() > 255) {
      IVT_THROW(errors::Category::Format, "ivc: string too long: " + *s);
    }
    put_le<std::uint8_t>(out_, offset_, static_cast<std::uint8_t>(s->size()));
    put_bytes(out_, offset_, s->data(), s->size());
  }
  put_le<std::int64_t>(out_, offset_, start_unix_ns);
}

std::uint16_t ColumnarWriter::bus_index(const std::string& bus) {
  const auto it = bus_lookup_.find(bus);
  if (it != bus_lookup_.end()) return it->second;
  if (bus.size() > 255) {
    IVT_THROW(errors::Category::Format, "ivc: bus name too long: " + bus);
  }
  if (buses_.size() >= 0xFFFF) {
    IVT_THROW(errors::Category::Format, "ivc: too many distinct buses");
  }
  const std::uint16_t index = static_cast<std::uint16_t>(buses_.size());
  buses_.push_back(bus);
  bus_lookup_.emplace(bus, index);
  return index;
}

std::uint32_t ColumnarWriter::key_index(std::uint16_t bus,
                                        std::int64_t message_id) {
  const auto [it, inserted] = key_lookup_.try_emplace(
      {bus, message_id}, static_cast<std::uint32_t>(key_dict_.size()));
  if (inserted) {
    if (key_dict_.size() >= 0xFFFFFFFFULL) {
      IVT_THROW(errors::Category::Format, "ivc: too many distinct (bus, id) keys");
    }
    key_dict_.push_back(KeyDictEntry{bus, message_id});
  }
  return it->second;
}

void ColumnarWriter::write(const tracefile::TraceRecord& record) {
  if (finished_) IVT_THROW(errors::Category::Internal, "ivc: write after finish");
  if (record.payload.size() > 0xFFFF) {
    IVT_THROW(errors::Category::Format, "ivc: payload too long");
  }
  const std::uint16_t bus = bus_index(record.bus);
  t_ns_.push_back(record.t_ns);
  bus_idx_.push_back(bus);
  protocol_.push_back(static_cast<std::uint64_t>(record.protocol));
  message_id_.push_back(record.message_id);
  flags_.push_back(record.flags);
  payload_len_.push_back(record.payload.size());
  key_idx_.push_back(key_index(bus, record.message_id));
  payload_bytes_.append(
      reinterpret_cast<const char*>(record.payload.data()),
      record.payload.size());
  ++written_;
  if (t_ns_.size() >= options_.chunk_rows) flush_chunk();
}

void ColumnarWriter::flush_chunk() {
  if (t_ns_.empty()) return;

  ChunkInfo info;
  info.offset = offset_;
  info.row_count = static_cast<std::uint32_t>(t_ns_.size());
  info.min_t_ns = info.max_t_ns = t_ns_.front();
  info.min_message_id = info.max_message_id = message_id_.front();
  for (std::size_t i = 0; i < t_ns_.size(); ++i) {
    info.min_t_ns = std::min(info.min_t_ns, t_ns_[i]);
    info.max_t_ns = std::max(info.max_t_ns, t_ns_[i]);
    info.min_message_id = std::min(info.min_message_id, message_id_[i]);
    info.max_message_id = std::max(info.max_message_id, message_id_[i]);
    info.set_bus(static_cast<std::uint16_t>(bus_idx_[i]));
  }

  put_le<std::uint32_t>(out_, offset_, info.row_count);
  std::string block;
  encode_delta(t_ns_, block);
  put_block(out_, offset_, block);
  block.clear();
  encode_rle(bus_idx_, block);
  put_block(out_, offset_, block);
  block.clear();
  encode_rle(protocol_, block);
  put_block(out_, offset_, block);
  block.clear();
  encode_svarints(message_id_, block);
  put_block(out_, offset_, block);
  block.clear();
  encode_rle(flags_, block);
  put_block(out_, offset_, block);
  block.clear();
  for (const std::uint64_t len : payload_len_) put_uvarint(block, len);
  put_block(out_, offset_, block);
  block.clear();
  put_le<std::uint32_t>(out_, offset_,
                        static_cast<std::uint32_t>(payload_bytes_.size()));
  put_bytes(out_, offset_, payload_bytes_.data(), payload_bytes_.size());
  encode_rle(key_idx_, block);
  put_block(out_, offset_, block);

  info.encoded_bytes = offset_ - info.offset;
  chunks_.push_back(std::move(info));

  t_ns_.clear();
  bus_idx_.clear();
  protocol_.clear();
  message_id_.clear();
  flags_.clear();
  payload_len_.clear();
  key_idx_.clear();
  payload_bytes_.clear();
}

void ColumnarWriter::finish() {
  if (finished_) IVT_THROW(errors::Category::Internal, "ivc: finish called twice");
  flush_chunk();
  finished_ = true;

  const std::uint64_t footer_offset = offset_;
  put_le<std::uint16_t>(out_, offset_,
                        static_cast<std::uint16_t>(buses_.size()));
  for (const std::string& bus : buses_) {
    put_le<std::uint8_t>(out_, offset_,
                         static_cast<std::uint8_t>(bus.size()));
    put_bytes(out_, offset_, bus.data(), bus.size());
  }
  put_le<std::uint32_t>(out_, offset_,
                        static_cast<std::uint32_t>(key_dict_.size()));
  for (const KeyDictEntry& key : key_dict_) {
    put_le<std::uint16_t>(out_, offset_, key.bus_index);
    put_le<std::int64_t>(out_, offset_, key.message_id);
  }
  put_le<std::uint32_t>(out_, offset_,
                        static_cast<std::uint32_t>(chunks_.size()));
  for (const ChunkInfo& c : chunks_) {
    put_le<std::uint64_t>(out_, offset_, c.offset);
    put_le<std::uint64_t>(out_, offset_, c.encoded_bytes);
    put_le<std::uint32_t>(out_, offset_, c.row_count);
    put_le<std::int64_t>(out_, offset_, c.min_t_ns);
    put_le<std::int64_t>(out_, offset_, c.max_t_ns);
    put_le<std::int64_t>(out_, offset_, c.min_message_id);
    put_le<std::int64_t>(out_, offset_, c.max_message_id);
    put_le<std::uint16_t>(out_, offset_,
                          static_cast<std::uint16_t>(c.bus_bits.size()));
    for (const std::uint64_t word : c.bus_bits) {
      put_le<std::uint64_t>(out_, offset_, word);
    }
  }
  put_le<std::uint64_t>(out_, offset_, footer_offset);
  put_bytes(out_, offset_, kFooterMagic, sizeof(kFooterMagic));
  out_.flush();
  if (!out_) IVT_THROW(errors::Category::Io, "ivc: write failed");
}

void save_trace_columnar(const tracefile::Trace& trace,
                         const std::string& path,
                         ColumnarWriterOptions options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) IVT_THROW(errors::Category::Io, "cannot open for write: " + path);
  ColumnarWriter writer(out, trace.vehicle, trace.journey,
                        trace.start_unix_ns, options);
  for (const tracefile::TraceRecord& rec : trace.records) writer.write(rec);
  writer.finish();
  if (!out) IVT_THROW(errors::Category::Io, "write failed: " + path);
}

PackStats pack_trace_file(const std::string& ivt_path,
                          const std::string& ivc_path,
                          ColumnarWriterOptions options) {
  std::ifstream in(ivt_path, std::ios::binary);
  if (!in) IVT_THROW(errors::Category::Io, "cannot open for read: " + ivt_path);
  std::ofstream out(ivc_path, std::ios::binary);
  if (!out) IVT_THROW(errors::Category::Io, "cannot open for write: " + ivc_path);

  tracefile::TraceReader reader(in);
  ColumnarWriter writer(out, reader.vehicle(), reader.journey(),
                        reader.start_unix_ns(), options);
  tracefile::TraceRecord rec;
  while (reader.next(rec)) writer.write(rec);
  writer.finish();
  if (!out) IVT_THROW(errors::Category::Io, "write failed: " + ivc_path);
  out.close();

  PackStats stats;
  stats.records = writer.records_written();
  stats.chunks = writer.chunks_written();
  std::error_code ec;
  stats.input_bytes = std::filesystem::file_size(ivt_path, ec);
  if (ec) stats.input_bytes = 0;
  stats.output_bytes = std::filesystem::file_size(ivc_path, ec);
  if (ec) stats.output_bytes = 0;
  return stats;
}

}  // namespace ivt::colstore
