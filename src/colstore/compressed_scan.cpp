// The compressed (decode-free) evaluation path of the .ivc scan.
//
// The decoded path (decode_columns + materialize_kb_partition) pays the
// decompression tax for every zone-map-surviving chunk: every column is
// expanded into row vectors, and every row is probed against the compiled
// predicate. This file evaluates the predicate directly on the v2 key_idx
// RLE runs instead:
//
//   - the bus/id/pair conjuncts are folded into a per-dictionary-entry
//     bitmap once per file (compile_key_filter) — the membership test
//     runs per run, not per row;
//   - a rejected run is skipped whole: the timestamp cursor carries the
//     running delta sum across it, the payload cursor sums the lengths,
//     and the protocol/flags RLE cursors advance in O(runs crossed);
//   - an accepted run materializes rows with only the time-range check
//     left to apply, and both join-key columns (bus, message id) come
//     from the dictionary — the bus_index and message_id blocks of the
//     chunk are never decoded at all.
//
// Output contract: exactly the rows, in exactly the order, with exactly
// the bytes, of the decoded path under the same predicate. The property
// and differential suites pin this.
#include <cstdint>
#include <string>
#include <vector>

#include "colstore/chunk_decode.hpp"
#include "colstore/encoding.hpp"
#include "colstore/format.hpp"
#include "errors/error.hpp"
#include "tracefile/binary_format.hpp"

namespace ivt::colstore::detail {

namespace {

std::uint32_t get_le_u32(ByteCursor& in) {
  std::uint32_t value = 0;
  for (std::size_t i = 0; i < sizeof(std::uint32_t); ++i) {
    value |= static_cast<std::uint32_t>(in.u8()) << (8 * i);
  }
  return value;
}

}  // namespace

std::vector<std::uint8_t> compile_key_filter(
    const CompiledPredicate& compiled,
    const std::vector<KeyDictEntry>& key_dict) {
  std::vector<std::uint8_t> allowed(key_dict.size(), 1);
  for (std::size_t k = 0; k < key_dict.size(); ++k) {
    const KeyDictEntry& key = key_dict[k];
    bool ok = true;
    if (compiled.has_ids && !compiled.ids.contains(key.message_id)) {
      ok = false;
    }
    if (ok && compiled.has_buses &&
        (key.bus_index >= compiled.bus_allowed.size() ||
         compiled.bus_allowed[key.bus_index] == 0)) {
      ok = false;
    }
    if (ok && compiled.has_pairs &&
        !compiled.pairs.contains({key.bus_index, key.message_id})) {
      ok = false;
    }
    allowed[k] = ok ? 1 : 0;
  }
  return allowed;
}

dataflow::Partition scan_chunk_compressed(
    const std::string& data, const ChunkInfo& info,
    const std::vector<std::string>& buses,
    const std::vector<KeyDictEntry>& key_dict,
    const std::vector<std::uint8_t>& key_allowed,
    const CompiledPredicate& compiled, ScanStats& stats,
    std::vector<EmittedRun>* runs) {
  ByteCursor in(ByteSpan{
      reinterpret_cast<const std::uint8_t*>(data.data()) + info.offset,
      static_cast<std::size_t>(info.encoded_bytes)});
  const std::uint32_t rows = get_le_u32(in);
  if (rows != info.row_count) {
    IVT_THROW(errors::Category::Decode, "ivc: chunk row count mismatch");
  }
  auto next_block = [&in]() {
    const std::uint32_t len = get_le_u32(in);
    return in.bytes(len);
  };
  const ByteSpan t_block = next_block();
  next_block();  // bus_index: never decoded (dictionary carries the bus)
  const ByteSpan protocol_block = next_block();
  next_block();  // message_id: never decoded (dictionary carries the id)
  const ByteSpan flags_block = next_block();
  const ByteSpan len_block = next_block();
  const ByteSpan payload = next_block();
  const ByteSpan key_block = next_block();

  dataflow::Partition out =
      dataflow::Table::make_partition(tracefile::kb_schema());
  if (rows == 0) {
    if (payload.size != 0) {
      IVT_THROW(errors::Category::Decode,
                "ivc: payload block size mismatch");
    }
    return out;
  }
  if (key_dict.empty()) {
    IVT_THROW(errors::Category::Decode, "ivc: key index out of range");
  }

  RleRunCursor keys(key_block, rows, key_dict.size() - 1,
                    "ivc: key index out of range");
  RleRunCursor protocols(protocol_block, rows, 0xFF,
                         "ivc: corrupt protocol/flags column");
  RleRunCursor flags(flags_block, rows, 0xFFFFFFFFULL,
                     "ivc: corrupt protocol/flags column");
  ByteCursor t_cur(t_block);
  ByteCursor len_cur(len_block);
  std::uint64_t t_prev = 0;     // wrapped running timestamp
  std::size_t payload_pos = 0;  // payload bytes consumed so far

  std::size_t rows_done = 0;
  while (rows_done < rows) {
    const auto [key, run] = keys.take_run();
    ++stats.runs_considered;
    if (key_allowed[static_cast<std::size_t>(key)] == 0) {
      ++stats.runs_pruned;
      t_prev += skip_delta_sum(t_cur, run);
      const std::uint64_t skipped = skip_uvarint_sum(len_cur, run);
      if (skipped > payload.size - payload_pos) {
        IVT_THROW(errors::Category::Decode,
                  "ivc: payload block size mismatch");
      }
      payload_pos += static_cast<std::size_t>(skipped);
      protocols.skip(run);
      flags.skip(run);
    } else {
      ++stats.runs_accepted;
      const KeyDictEntry& dict = key_dict[static_cast<std::size_t>(key)];
      if (dict.bus_index >= buses.size()) {
        IVT_THROW(errors::Category::Decode,
                  "ivc: key dictionary bus index out of range");
      }
      const std::string& bus_name = buses[dict.bus_index];
      const std::size_t first_out = out.num_rows();
      for (std::size_t i = 0; i < run; ++i) {
        t_prev += static_cast<std::uint64_t>(get_svarint(t_cur));
        const std::int64_t t = static_cast<std::int64_t>(t_prev);
        const std::uint64_t len = get_uvarint(len_cur);
        if (len > payload.size - payload_pos) {
          IVT_THROW(errors::Category::Decode,
                    "ivc: payload block size mismatch");
        }
        const std::size_t pos = payload_pos;
        payload_pos += static_cast<std::size_t>(len);
        const std::uint64_t protocol = protocols.next();
        const std::uint64_t flag = flags.next();
        if (compiled.has_time_range &&
            (t < compiled.min_t_ns || t > compiled.max_t_ns)) {
          continue;
        }
        out.columns[0].append_int64(t);
        out.columns[1].append_string(std::string(
            reinterpret_cast<const char*>(payload.data) + pos,
            static_cast<std::size_t>(len)));
        out.columns[2].append_string(bus_name);
        out.columns[3].append_int64(dict.message_id);
        out.columns[4].append_string(tracefile::make_m_info(
            static_cast<protocol::Protocol>(protocol),
            static_cast<std::uint32_t>(flag)));
      }
      const std::size_t emitted = out.num_rows() - first_out;
      if (runs != nullptr && emitted > 0) {
        runs->push_back(EmittedRun{static_cast<std::uint32_t>(key),
                                   first_out, emitted});
      }
    }
    rows_done += run;
  }
  if (payload_pos != payload.size) {
    IVT_THROW(errors::Category::Decode, "ivc: payload block size mismatch");
  }
  return out;
}

}  // namespace ivt::colstore::detail
