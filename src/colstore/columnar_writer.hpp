// Writer side of the .ivc columnar trace container.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "colstore/format.hpp"
#include "tracefile/trace.hpp"

namespace ivt::colstore {

struct ColumnarWriterOptions {
  /// Rows per chunk (row group). Smaller chunks prune better, larger
  /// chunks compress better.
  std::size_t chunk_rows = kDefaultChunkRows;
};

/// Streaming writer: append records one by one, then call finish() to
/// flush the last chunk and write the footer. A file without finish() is
/// unreadable (the footer carries the chunk directory).
class ColumnarWriter {
 public:
  /// Writes the header immediately. The stream must outlive the writer.
  ColumnarWriter(std::ostream& out, const std::string& vehicle,
                 const std::string& journey, std::int64_t start_unix_ns,
                 ColumnarWriterOptions options = {});

  void write(const tracefile::TraceRecord& record);

  /// Flush the pending chunk and write footer + tail. Must be called
  /// exactly once, after the last write().
  void finish();

  [[nodiscard]] std::size_t records_written() const { return written_; }
  [[nodiscard]] std::size_t chunks_written() const { return chunks_.size(); }

 private:
  std::uint16_t bus_index(const std::string& bus);
  std::uint32_t key_index(std::uint16_t bus, std::int64_t message_id);
  void flush_chunk();

  std::ostream& out_;
  ColumnarWriterOptions options_;
  std::uint64_t offset_ = 0;  ///< bytes written so far (footer needs offsets)
  bool finished_ = false;
  std::size_t written_ = 0;

  std::vector<std::string> buses_;
  std::unordered_map<std::string, std::uint16_t> bus_lookup_;
  /// File-wide (bus_index, message_id) join-key dictionary, interned in
  /// first-appearance order (v2 footer).
  std::vector<KeyDictEntry> key_dict_;
  struct KeyPairHash {
    std::size_t operator()(
        const std::pair<std::uint16_t, std::int64_t>& p) const {
      return std::hash<std::int64_t>{}(p.second) * 8191 + p.first;
    }
  };
  std::unordered_map<std::pair<std::uint16_t, std::int64_t>, std::uint32_t,
                     KeyPairHash>
      key_lookup_;
  std::vector<ChunkInfo> chunks_;

  // Pending chunk, column-major.
  std::vector<std::int64_t> t_ns_;
  std::vector<std::uint64_t> bus_idx_;
  std::vector<std::uint64_t> protocol_;
  std::vector<std::int64_t> message_id_;
  std::vector<std::uint64_t> flags_;
  std::vector<std::uint64_t> payload_len_;
  std::vector<std::uint64_t> key_idx_;
  std::string payload_bytes_;
};

/// Whole-trace convenience wrapper (the .ivc analogue of save_trace).
void save_trace_columnar(const tracefile::Trace& trace,
                         const std::string& path,
                         ColumnarWriterOptions options = {});

/// Streaming .ivt -> .ivc conversion (never materializes the trace).
struct PackStats {
  std::size_t records = 0;
  std::size_t chunks = 0;
  std::uint64_t input_bytes = 0;
  std::uint64_t output_bytes = 0;
};
PackStats pack_trace_file(const std::string& ivt_path,
                          const std::string& ivc_path,
                          ColumnarWriterOptions options = {});

}  // namespace ivt::colstore
