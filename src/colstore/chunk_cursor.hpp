// Morsel-level visitor API over a .ivc file, the streaming counterpart to
// the materializing ColumnarReader::scan.
//
// A cursor is created by ColumnarReader::cursor(pred, options): zone-map
// pruning runs once up front, and each surviving chunk becomes one
// *morsel* that the caller decodes on demand — typically as one fused
// pipeline task per morsel — instead of materializing the whole K_b table
// before downstream stages start. decode(k) applies the same compiled
// row filter and the same error policy (Fail / Skip / Quarantine with
// resync at the next chunk boundary) as scan(), and in fact scan() is
// implemented on top of this class, so the two paths cannot drift.
//
// Ordering contract: morsel k corresponds to the k-th surviving chunk in
// file order, and decode(k) emits that chunk's rows in file order. A
// consumer that keeps per-morsel results indexed by k therefore
// reconstructs exactly the partition order of scan().
//
// Thread safety: decode() may be called concurrently for distinct k; all
// mutable state on this class is the relaxed-atomic quarantine/row
// counters below (no mutex, hence no IVT_GUARDED_BY contract to state),
// and the FailureLog behind ScanOptions locks internally. Everything else
// is written once in the constructor and read-only afterwards. The reader
// must outlive the cursor.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "colstore/chunk_decode.hpp"
#include "colstore/format.hpp"
#include "dataflow/table.hpp"

namespace ivt::colstore {

class ColumnarReader;

class ChunkCursor {
 public:
  /// Surviving (non-pruned) chunks == morsels available to decode.
  [[nodiscard]] std::size_t num_morsels() const { return survivors_.size(); }

  /// Original chunk index (file order) of morsel k.
  [[nodiscard]] std::size_t chunk_index(std::size_t k) const {
    return survivors_[k];
  }

  /// Encoded row count of morsel k, before the row filter (cheap: read
  /// from the chunk directory, no decode).
  [[nodiscard]] std::size_t morsel_row_count(std::size_t k) const;

  /// Decode morsel k into a filtered K_b partition. Under ErrorPolicy::Fail
  /// a decode error propagates (with chunk context); under Skip/Quarantine
  /// the chunk is dropped — an empty partition is returned, the quarantine
  /// counters advance, and the failure is logged — so one corrupt chunk
  /// costs exactly its own rows.
  [[nodiscard]] dataflow::Partition decode(std::size_t k) const;

  /// Same, additionally reporting the accepted key runs of the partition
  /// (output-row coordinates) when this cursor evaluates compressed:
  /// downstream interpretation joins per run via the key dictionary
  /// instead of per row via a string hash. `runs` is left empty on the
  /// decoded path (v1 file or ScanMode::Decoded) — callers fall back to
  /// the row-wise join.
  [[nodiscard]] dataflow::Partition decode(
      std::size_t k, std::vector<EmittedRun>& runs) const;

  /// True when decode() evaluates run-level (ScanMode::Compressed on a
  /// version >= 2 file); false means every morsel takes the decoded path.
  [[nodiscard]] bool compressed() const { return compressed_; }

  /// Scan statistics so far: pruning numbers are fixed at construction,
  /// rows_emitted / quarantine counters reflect the decodes done so far.
  [[nodiscard]] ScanStats stats() const;

 private:
  friend class ColumnarReader;
  ChunkCursor(const ColumnarReader& reader, const ScanPredicate& pred,
              ScanOptions options);

  dataflow::Partition decode_unchecked(std::size_t k,
                                       std::vector<EmittedRun>* runs) const;

  const ColumnarReader* reader_;
  ScanOptions options_;
  detail::CompiledPredicate compiled_;
  bool compressed_ = false;
  std::vector<std::uint8_t> key_allowed_;  ///< per key-dict entry, if compressed_
  std::vector<std::size_t> survivors_;
  ScanStats prune_stats_;
  mutable std::atomic<std::size_t> chunks_quarantined_{0};
  mutable std::atomic<std::size_t> rows_quarantined_{0};
  mutable std::atomic<std::size_t> rows_emitted_{0};
  mutable std::atomic<std::size_t> runs_considered_{0};
  mutable std::atomic<std::size_t> runs_pruned_{0};
  mutable std::atomic<std::size_t> runs_accepted_{0};
};

}  // namespace ivt::colstore
