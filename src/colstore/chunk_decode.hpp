// Internal decode machinery of the .ivc container, shared between the
// materializing ColumnarReader::scan path and the morsel-driven
// ChunkCursor. Not part of the public colstore API.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "colstore/encoding.hpp"
#include "colstore/format.hpp"
#include "dataflow/table.hpp"

namespace ivt::colstore::detail {

/// Row-level filter compiled against one file's bus dictionary.
struct CompiledPredicate {
  bool never_matches = false;
  bool has_ids = false;
  std::unordered_set<std::int64_t> ids;
  bool has_buses = false;
  std::vector<std::uint8_t> bus_allowed;  ///< indexed by dictionary index
  bool has_time_range = false;
  std::int64_t min_t_ns = 0;
  std::int64_t max_t_ns = 0;
  bool has_pairs = false;
  struct PairHash {
    std::size_t operator()(
        const std::pair<std::uint16_t, std::int64_t>& p) const {
      return std::hash<std::int64_t>{}(p.second) * 8191 + p.first;
    }
  };
  std::unordered_set<std::pair<std::uint16_t, std::int64_t>, PairHash> pairs;

  [[nodiscard]] bool matches_row(std::uint16_t bus, std::int64_t mid,
                                 std::int64_t t) const {
    if (has_time_range && (t < min_t_ns || t > max_t_ns)) return false;
    if (has_ids && !ids.contains(mid)) return false;
    if (has_buses && bus_allowed[bus] == 0) return false;
    if (has_pairs && !pairs.contains({bus, mid})) return false;
    return true;
  }
};

CompiledPredicate compile_predicate(const ScanPredicate& pred,
                                    const std::vector<std::string>& buses);

/// Dictionary indices the predicate's bus constraint resolves to (for the
/// zone-map bitmap test). Pairs contribute only when no plain bus set is
/// given — with both present the plain set is the looser prune bound.
std::vector<std::uint16_t> prune_bus_indices(
    const ScanPredicate& pred, const std::vector<std::string>& buses);

/// Decoded column vectors of one chunk.
struct DecodedChunk {
  std::vector<std::int64_t> t_ns;
  std::vector<std::uint64_t> bus_idx;
  std::vector<std::uint64_t> protocol;
  std::vector<std::int64_t> message_id;
  std::vector<std::uint64_t> flags;
  std::vector<std::uint64_t> payload_len;
  std::vector<std::uint64_t> key_idx;  ///< v2 only; empty for v1
  ByteSpan payload;
};

/// Decode every column of one chunk. For version >= 2 the key_idx column
/// is decoded too and cross-checked row-wise against the key dictionary
/// and the bus/message-id columns (a disagreement is a typed decode
/// error — it would make the compressed and decoded paths diverge).
DecodedChunk decode_columns(const std::string& data, const ChunkInfo& info,
                            std::uint32_t version, std::size_t num_buses,
                            const std::vector<KeyDictEntry>& key_dict);

/// Materialize decoded columns into a K_b-schema partition, applying the
/// compiled row filter. Shared by ChunkCursor::decode (file-buffer path)
/// and decode_chunk_from_bytes (cache path) so the two cannot drift.
dataflow::Partition materialize_kb_partition(
    const DecodedChunk& chunk, std::uint32_t row_count,
    const std::vector<std::string>& buses, const CompiledPredicate& compiled);

/// Dictionary form of the predicate's run-constant conjuncts: entry k is
/// nonzero when (key_dict[k].bus_index, key_dict[k].message_id) passes the
/// bus/id/pair checks of `compiled` — everything except the time range,
/// which can split a run and stays row-level. Evaluated once per file.
std::vector<std::uint8_t> compile_key_filter(
    const CompiledPredicate& compiled,
    const std::vector<KeyDictEntry>& key_dict);

/// The compressed (run-level) evaluation of one v2 chunk: walk the
/// key_idx RLE runs, skip rejected runs by advancing the column cursors
/// (the bus and message-id blocks are never decoded at all — both values
/// come from the dictionary), and materialize accepted runs row by row
/// with only the time-range check left to apply. Emits exactly the rows,
/// in exactly the order, of decode_columns + materialize_kb_partition
/// under the same predicate. `stats` receives the run counters; `runs`
/// (optional) receives the accepted runs in output-row coordinates for
/// the dictionary join.
dataflow::Partition scan_chunk_compressed(
    const std::string& data, const ChunkInfo& info,
    const std::vector<std::string>& buses,
    const std::vector<KeyDictEntry>& key_dict,
    const std::vector<std::uint8_t>& key_allowed,
    const CompiledPredicate& compiled, ScanStats& stats,
    std::vector<EmittedRun>* runs);

}  // namespace ivt::colstore::detail
