#include "colstore/columnar_reader.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <exception>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "colstore/chunk_cursor.hpp"
#include "colstore/chunk_decode.hpp"
#include "colstore/encoding.hpp"
#include "dataflow/engine.hpp"
#include "dataflow/thread_pool.hpp"
#include "errors/error.hpp"
#include "faultfx/faultfx.hpp"
#include "obs/obs.hpp"
#include "tracefile/binary_format.hpp"

namespace ivt::colstore {

namespace {

template <typename T>
T get_le(ByteCursor& in) {
  static_assert(std::is_integral_v<T>);
  std::make_unsigned_t<T> value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<std::make_unsigned_t<T>>(in.u8()) << (8 * i);
  }
  return static_cast<T>(value);
}

std::string get_short_string(ByteCursor& in) {
  const std::uint8_t len = get_le<std::uint8_t>(in);
  const ByteSpan bytes = in.bytes(len);
  return std::string(reinterpret_cast<const char*>(bytes.data), bytes.size);
}

}  // namespace

namespace detail {

CompiledPredicate compile_predicate(const ScanPredicate& pred,
                                    const std::vector<std::string>& buses) {
  CompiledPredicate c;
  c.has_ids = !pred.message_ids.empty();
  c.ids.insert(pred.message_ids.begin(), pred.message_ids.end());
  c.has_time_range = pred.has_time_range;
  c.min_t_ns = pred.min_t_ns;
  c.max_t_ns = pred.max_t_ns;

  auto resolve_bus = [&buses](const std::string& name)
      -> std::optional<std::uint16_t> {
    const auto it = std::find(buses.begin(), buses.end(), name);
    if (it == buses.end()) return std::nullopt;
    return static_cast<std::uint16_t>(it - buses.begin());
  };

  if (!pred.buses.empty()) {
    c.has_buses = true;
    c.bus_allowed.assign(buses.size(), 0);
    bool any = false;
    for (const std::string& name : pred.buses) {
      if (const auto idx = resolve_bus(name)) {
        c.bus_allowed[*idx] = 1;
        any = true;
      }
    }
    if (!any) c.never_matches = true;  // requested buses absent from file
  }
  if (!pred.bus_message_pairs.empty()) {
    c.has_pairs = true;
    for (const auto& [name, mid] : pred.bus_message_pairs) {
      if (const auto idx = resolve_bus(name)) c.pairs.insert({*idx, mid});
    }
    if (c.pairs.empty()) c.never_matches = true;
  }
  return c;
}

std::vector<std::uint16_t> prune_bus_indices(
    const ScanPredicate& pred, const std::vector<std::string>& buses) {
  std::vector<std::uint16_t> out;
  auto add = [&buses, &out](const std::string& name) {
    const auto it = std::find(buses.begin(), buses.end(), name);
    if (it != buses.end()) {
      out.push_back(static_cast<std::uint16_t>(it - buses.begin()));
    }
  };
  if (!pred.buses.empty()) {
    for (const std::string& name : pred.buses) add(name);
  } else {
    for (const auto& [name, mid] : pred.bus_message_pairs) add(name);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace detail

ScanMode parse_scan_mode(const std::string& text) {
  if (text == "decoded") return ScanMode::Decoded;
  if (text == "compressed") return ScanMode::Compressed;
  throw std::invalid_argument("unknown scan mode '" + text +
                              "' (expected decoded|compressed)");
}

const char* to_string(ScanMode mode) {
  return mode == ScanMode::Compressed ? "compressed" : "decoded";
}

bool chunk_may_match(const ChunkInfo& chunk, const ScanPredicate& pred,
                     const std::vector<std::uint16_t>& pred_bus_indices) {
  if (pred.has_time_range &&
      (chunk.max_t_ns < pred.min_t_ns || chunk.min_t_ns > pred.max_t_ns)) {
    return false;
  }
  const std::vector<std::int64_t>* ids = &pred.message_ids;
  std::vector<std::int64_t> pair_ids;
  if (ids->empty() && !pred.bus_message_pairs.empty()) {
    pair_ids.reserve(pred.bus_message_pairs.size());
    for (const auto& [bus, mid] : pred.bus_message_pairs) {
      pair_ids.push_back(mid);
    }
    ids = &pair_ids;
  }
  if (!ids->empty()) {
    bool any = false;
    for (const std::int64_t id : *ids) {
      if (id >= chunk.min_message_id && id <= chunk.max_message_id) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  const bool has_bus_constraint =
      !pred.buses.empty() || !pred.bus_message_pairs.empty();
  if (has_bus_constraint) {
    bool any = false;
    for (const std::uint16_t idx : pred_bus_indices) {
      if (chunk.has_bus(idx)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

ColumnarReader::ColumnarReader(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) IVT_THROW(errors::Category::Io, "cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in) IVT_THROW(errors::Category::Io, "read failed: " + path);
  data_ = std::move(buffer).str();
  errors::with_context("indexing " + path, [this] { parse(); });
}

ColumnarReader::ColumnarReader(std::string data, FromBufferTag)
    : data_(std::move(data)) {
  parse();
}

ColumnarReader ColumnarReader::from_buffer(std::string data) {
  return ColumnarReader(std::move(data), FromBufferTag{});
}

void ColumnarReader::parse() {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(data_.data());
  const std::size_t size = data_.size();
  constexpr std::size_t kTailBytes = sizeof(std::uint64_t) + 4;
  if (size < sizeof(kChunkMagic) + sizeof(std::uint32_t) + kTailBytes ||
      std::memcmp(bytes, kChunkMagic, sizeof(kChunkMagic)) != 0) {
    IVT_THROW(errors::Category::Format, "ivc: bad magic");
  }

  ByteCursor header(ByteSpan{bytes + sizeof(kChunkMagic),
                             size - sizeof(kChunkMagic)});
  const std::uint32_t version = get_le<std::uint32_t>(header);
  if (version != kColumnarFormatVersionV1 &&
      version != kColumnarFormatVersion) {
    IVT_THROW(errors::Category::Format,
              "ivc: unsupported version " + std::to_string(version));
  }
  version_ = version;
  vehicle_ = get_short_string(header);
  journey_ = get_short_string(header);
  start_unix_ns_ = get_le<std::int64_t>(header);

  ByteCursor tail(ByteSpan{bytes + size - kTailBytes, kTailBytes});
  const std::uint64_t footer_offset = get_le<std::uint64_t>(tail);
  const ByteSpan tail_magic = tail.bytes(4);
  if (std::memcmp(tail_magic.data, kFooterMagic, 4) != 0) {
    IVT_THROW(errors::Category::Format, "ivc: bad footer magic");
  }
  if (footer_offset >= size - kTailBytes) {
    IVT_THROW(errors::Category::Format, "ivc: footer offset out of range");
  }

  const std::size_t footer_size =
      size - kTailBytes - static_cast<std::size_t>(footer_offset);
  ByteCursor footer(ByteSpan{bytes + footer_offset, footer_size});
  const std::uint16_t num_buses = get_le<std::uint16_t>(footer);
  buses_.reserve(num_buses);
  for (std::uint16_t i = 0; i < num_buses; ++i) {
    buses_.push_back(get_short_string(footer));
  }
  if (version_ >= 2) {
    const std::uint32_t num_keys = get_le<std::uint32_t>(footer);
    // Each entry takes 10 footer bytes: an implausible count is a typed
    // format error, not a multi-gigabyte reserve.
    if (num_keys > footer.remaining() / 10) {
      IVT_THROW(errors::Category::Format,
                "ivc: key dictionary count out of range");
    }
    key_dict_.reserve(num_keys);
    for (std::uint32_t i = 0; i < num_keys; ++i) {
      KeyDictEntry key;
      key.bus_index = get_le<std::uint16_t>(footer);
      key.message_id = get_le<std::int64_t>(footer);
      if (key.bus_index >= num_buses) {
        IVT_THROW(errors::Category::Format,
                  "ivc: key dictionary bus index out of range");
      }
      key_dict_.push_back(key);
    }
  }
  const std::uint32_t num_chunks = get_le<std::uint32_t>(footer);
  // A directory entry is at least 54 bytes; bound the reserve the same way.
  if (num_chunks > footer.remaining() / 54) {
    IVT_THROW(errors::Category::Format, "ivc: chunk count out of range");
  }
  chunks_.reserve(num_chunks);
  for (std::uint32_t i = 0; i < num_chunks; ++i) {
    ChunkInfo info;
    info.offset = get_le<std::uint64_t>(footer);
    info.encoded_bytes = get_le<std::uint64_t>(footer);
    info.row_count = get_le<std::uint32_t>(footer);
    info.min_t_ns = get_le<std::int64_t>(footer);
    info.max_t_ns = get_le<std::int64_t>(footer);
    info.min_message_id = get_le<std::int64_t>(footer);
    info.max_message_id = get_le<std::int64_t>(footer);
    const std::uint16_t words = get_le<std::uint16_t>(footer);
    info.bus_bits.reserve(words);
    for (std::uint16_t w = 0; w < words; ++w) {
      info.bus_bits.push_back(get_le<std::uint64_t>(footer));
    }
    if (info.offset + info.encoded_bytes > footer_offset ||
        info.offset + info.encoded_bytes < info.offset) {
      IVT_THROW(errors::Category::Format, "ivc: chunk extent out of range");
    }
    // Every row costs at least one byte in the t_ns column and one in
    // payload_len, so a directory row count beyond the extent size is
    // corrupt — and would otherwise size decode allocations.
    if (info.row_count > info.encoded_bytes) {
      IVT_THROW(errors::Category::Format,
                "ivc: chunk row count implausible for extent");
    }
    chunks_.push_back(std::move(info));
  }
}

std::size_t ColumnarReader::num_rows() const {
  std::size_t rows = 0;
  for (const ChunkInfo& c : chunks_) rows += c.row_count;
  return rows;
}

namespace detail {

DecodedChunk decode_columns(const std::string& data, const ChunkInfo& info,
                            std::uint32_t version, std::size_t num_buses,
                            const std::vector<KeyDictEntry>& key_dict) {
  ByteCursor in(ByteSpan{
      reinterpret_cast<const std::uint8_t*>(data.data()) + info.offset,
      static_cast<std::size_t>(info.encoded_bytes)});
  const std::uint32_t rows = get_le<std::uint32_t>(in);
  if (rows != info.row_count) {
    IVT_THROW(errors::Category::Decode, "ivc: chunk row count mismatch");
  }
  auto next_block = [&in]() {
    const std::uint32_t len = get_le<std::uint32_t>(in);
    return in.bytes(len);
  };
  DecodedChunk chunk;
  chunk.t_ns = decode_delta(next_block(), rows);
  chunk.bus_idx = decode_rle(next_block(), rows);
  chunk.protocol = decode_rle(next_block(), rows);
  chunk.message_id = decode_svarints(next_block(), rows);
  chunk.flags = decode_rle(next_block(), rows);
  {
    ByteCursor lens(next_block());
    chunk.payload_len.resize(rows);
    for (std::uint32_t r = 0; r < rows; ++r) {
      chunk.payload_len[r] = get_uvarint(lens);
    }
  }
  chunk.payload = next_block();
  if (version >= 2) chunk.key_idx = decode_rle(next_block(), rows);

  std::uint64_t payload_total = 0;
  for (std::uint32_t r = 0; r < rows; ++r) {
    if (chunk.bus_idx[r] >= num_buses) {
      IVT_THROW(errors::Category::Decode, "ivc: bus index out of range");
    }
    if (chunk.protocol[r] > 0xFF || chunk.flags[r] > 0xFFFFFFFFULL) {
      IVT_THROW(errors::Category::Decode,
                "ivc: corrupt protocol/flags column");
    }
    payload_total += chunk.payload_len[r];
  }
  if (payload_total != chunk.payload.size) {
    IVT_THROW(errors::Category::Decode, "ivc: payload block size mismatch");
  }
  if (version >= 2) {
    // The key column must agree with the plain columns row-for-row, or
    // the compressed and decoded scan paths would silently diverge.
    for (std::uint32_t r = 0; r < rows; ++r) {
      const std::uint64_t k = chunk.key_idx[r];
      if (k >= key_dict.size() ||
          key_dict[static_cast<std::size_t>(k)].bus_index !=
              chunk.bus_idx[r] ||
          key_dict[static_cast<std::size_t>(k)].message_id !=
              chunk.message_id[r]) {
        IVT_THROW(errors::Category::Decode,
                  "ivc: key column inconsistent with dictionary");
      }
    }
  }
  return chunk;
}

dataflow::Partition materialize_kb_partition(
    const DecodedChunk& chunk, std::uint32_t row_count,
    const std::vector<std::string>& buses,
    const CompiledPredicate& compiled) {
  const dataflow::Schema& schema = tracefile::kb_schema();
  dataflow::Partition out = dataflow::Table::make_partition(schema);
  std::size_t payload_pos = 0;
  for (std::uint32_t r = 0; r < row_count; ++r) {
    const std::size_t len = static_cast<std::size_t>(chunk.payload_len[r]);
    const std::size_t pos = payload_pos;
    payload_pos += len;
    const auto bus = static_cast<std::uint16_t>(chunk.bus_idx[r]);
    if (!compiled.matches_row(bus, chunk.message_id[r], chunk.t_ns[r])) {
      continue;
    }
    out.columns[0].append_int64(chunk.t_ns[r]);
    out.columns[1].append_string(std::string(
        reinterpret_cast<const char*>(chunk.payload.data) + pos, len));
    out.columns[2].append_string(buses[bus]);
    out.columns[3].append_int64(chunk.message_id[r]);
    out.columns[4].append_string(tracefile::make_m_info(
        static_cast<protocol::Protocol>(chunk.protocol[r]),
        static_cast<std::uint32_t>(chunk.flags[r])));
  }
  return out;
}

}  // namespace detail

dataflow::Partition scan_chunk_from_bytes(
    const std::string& chunk_bytes, const ChunkInfo& info,
    const ScanPredicate& pred, const std::vector<std::string>& buses,
    std::uint32_t version, const std::vector<KeyDictEntry>& key_dict,
    ScanMode mode, ScanStats* stats) {
  if (chunk_bytes.size() != info.encoded_bytes) {
    IVT_THROW(errors::Category::Decode,
              "ivc: cached chunk byte count mismatch (" +
                  std::to_string(chunk_bytes.size()) + " cached, " +
                  std::to_string(info.encoded_bytes) + " in directory)");
  }
  // The directory entry describes the chunk at its position in the
  // original file; the cached copy starts at offset 0.
  ChunkInfo rebased = info;
  rebased.offset = 0;
  const detail::CompiledPredicate compiled =
      detail::compile_predicate(pred, buses);
  if (compiled.never_matches) {
    return dataflow::Table::make_partition(tracefile::kb_schema());
  }
  if (mode == ScanMode::Compressed && version >= 2) {
    ScanStats local;
    dataflow::Partition out = detail::scan_chunk_compressed(
        chunk_bytes, rebased, buses, key_dict,
        detail::compile_key_filter(compiled, key_dict), compiled, local,
        nullptr);
    if (stats != nullptr) {
      stats->runs_considered += local.runs_considered;
      stats->runs_pruned += local.runs_pruned;
      stats->runs_accepted += local.runs_accepted;
    }
    return out;
  }
  const detail::DecodedChunk chunk =
      detail::decode_columns(chunk_bytes, rebased, version, buses.size(),
                             key_dict);
  return detail::materialize_kb_partition(chunk, info.row_count, buses,
                                          compiled);
}

dataflow::Partition decode_chunk_from_bytes(
    const std::string& chunk_bytes, const ChunkInfo& info,
    const ScanPredicate& pred, const std::vector<std::string>& buses) {
  // Legacy entry point without file context: treat as v1 (the key column
  // of a v2 chunk is simply not read) and decode fully.
  return scan_chunk_from_bytes(chunk_bytes, info, pred, buses,
                               kColumnarFormatVersionV1, {},
                               ScanMode::Decoded, nullptr);
}

ChunkCursor ColumnarReader::cursor(const ScanPredicate& pred,
                                   ScanOptions options) const {
  return ChunkCursor(*this, pred, options);
}

dataflow::Table ColumnarReader::scan_with_runner(const ScanPredicate& pred,
                                                 const TaskRunner& run,
                                                 const ScanOptions& options,
                                                 ScanStats* stats) const {
  OBS_SPAN_V(scan_span, "colstore.scan");
  const ChunkCursor cursor = this->cursor(pred, options);
  const dataflow::Schema& schema = tracefile::kb_schema();
  std::vector<dataflow::Partition> partitions(cursor.num_morsels());
  run(cursor.num_morsels(),
      [&](std::size_t k) { partitions[k] = cursor.decode(k); });

  ScanStats local = cursor.stats();
  local.rows_emitted = 0;
  dataflow::Table table(schema);
  for (dataflow::Partition& p : partitions) {
    if (p.num_rows() == 0) continue;
    local.rows_emitted += p.num_rows();
    table.add_partition(std::move(p));
  }
  OBS_COUNT("colstore.rows_emitted", local.rows_emitted);
  OBS_COUNT("colstore.rows_pruned",
            num_rows() - local.rows_emitted);
  scan_span.set_rows(local.rows_emitted);
  if (stats != nullptr) *stats = local;
  return table;
}

dataflow::Table ColumnarReader::scan(const ScanPredicate& pred,
                                     ScanStats* stats) const {
  return scan(pred, ScanOptions{}, stats);
}

dataflow::Table ColumnarReader::scan(const ScanPredicate& pred,
                                     const ScanOptions& options,
                                     ScanStats* stats) const {
  return scan_with_runner(
      pred,
      [](std::size_t n, const std::function<void(std::size_t)>& task) {
        for (std::size_t i = 0; i < n; ++i) task(i);
      },
      options, stats);
}

dataflow::Table ColumnarReader::scan(const ScanPredicate& pred,
                                     dataflow::ThreadPool& pool,
                                     ScanStats* stats) const {
  return scan_with_runner(
      pred,
      [&pool](std::size_t n,
              const std::function<void(std::size_t)>& task) {
        for (std::size_t i = 0; i < n; ++i) {
          pool.submit([&task, i] { task(i); });
        }
        // The pool's exception barrier rethrows the first task failure.
        pool.help_until_idle();
      },
      ScanOptions{}, stats);
}

dataflow::Table ColumnarReader::scan(const ScanPredicate& pred,
                                     dataflow::Engine& engine,
                                     ScanStats* stats) const {
  return scan(pred, engine, ScanOptions{}, stats);
}

dataflow::Table ColumnarReader::scan(const ScanPredicate& pred,
                                     dataflow::Engine& engine,
                                     const ScanOptions& options,
                                     ScanStats* stats) const {
  ScanStats local;
  const auto start = std::chrono::steady_clock::now();
  dataflow::Table table = scan_with_runner(
      pred,
      [&engine](std::size_t n,
                const std::function<void(std::size_t)>& task) {
        engine.parallel_for(n, task);
      },
      options, &local);
  dataflow::StageMetrics metrics;
  metrics.name = "colstore_scan";
  metrics.tasks = local.chunks_scanned;
  metrics.input_rows = local.rows_considered;
  metrics.output_rows = local.rows_emitted;
  metrics.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  engine.record_stage(std::move(metrics));
  if (stats != nullptr) *stats = local;
  return table;
}

tracefile::Trace ColumnarReader::read_trace() const {
  tracefile::Trace trace;
  trace.vehicle = vehicle_;
  trace.journey = journey_;
  trace.start_unix_ns = start_unix_ns_;
  trace.records.reserve(num_rows());
  for (const ChunkInfo& info : chunks_) {
    const detail::DecodedChunk chunk =
        detail::decode_columns(data_, info, version_, buses_.size(),
                               key_dict_);
    std::size_t payload_pos = 0;
    for (std::uint32_t r = 0; r < info.row_count; ++r) {
      tracefile::TraceRecord rec;
      rec.t_ns = chunk.t_ns[r];
      rec.bus = buses_[static_cast<std::size_t>(chunk.bus_idx[r])];
      rec.message_id = chunk.message_id[r];
      rec.protocol = static_cast<protocol::Protocol>(chunk.protocol[r]);
      rec.flags = static_cast<std::uint32_t>(chunk.flags[r]);
      const std::size_t len =
          static_cast<std::size_t>(chunk.payload_len[r]);
      const auto* base =
          reinterpret_cast<const std::uint8_t*>(chunk.payload.data);
      rec.payload.assign(base + payload_pos, base + payload_pos + len);
      payload_pos += len;
      trace.records.push_back(std::move(rec));
    }
  }
  return trace;
}

bool is_columnar_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, kChunkMagic, sizeof(magic)) == 0;
}

tracefile::Trace load_any_trace(const std::string& path) {
  if (is_columnar_trace_file(path)) {
    return ColumnarReader(path).read_trace();
  }
  return tracefile::load_trace(path);
}

}  // namespace ivt::colstore
