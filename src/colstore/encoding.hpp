// Column-block encodings of the .ivc container.
//
// All encodings operate on in-memory byte buffers: the writer appends to a
// std::string scratch block per column, the reader decodes from a
// ByteSpan slice of the mapped file. Three primitives cover every column:
//   - LEB128 varints (unsigned) and zigzag varints (signed),
//   - delta + zigzag for monotone-ish timestamp streams,
//   - run-length (value, run) pairs for low-cardinality streams
//     (bus index, protocol, flags).
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "errors/error.hpp"
#include "support/batch.hpp"

namespace ivt::colstore {

/// Non-owning view of an encoded column block.
struct ByteSpan {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
};

/// Sequential decoder over a ByteSpan; throws errors::Error(Decode) on
/// overrun (a truncated or corrupt block must never read out of bounds).
class ByteCursor {
 public:
  explicit ByteCursor(ByteSpan span) : span_(span) {}

  [[nodiscard]] bool exhausted() const { return pos_ >= span_.size; }
  [[nodiscard]] std::size_t remaining() const { return span_.size - pos_; }

  std::uint8_t u8() {
    if (pos_ >= span_.size) {
      IVT_THROW(errors::Category::Decode, "ivc: column block overrun");
    }
    return span_.data[pos_++];
  }

  /// Raw byte slice of length n.
  ByteSpan bytes(std::size_t n) {
    if (n > remaining()) {
      IVT_THROW(errors::Category::Decode, "ivc: column block overrun");
    }
    const ByteSpan out{span_.data + pos_, n};
    pos_ += n;
    return out;
  }

 private:
  ByteSpan span_;
  std::size_t pos_ = 0;
};

// --- varint -----------------------------------------------------------

inline void put_uvarint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

inline std::uint64_t get_uvarint(ByteCursor& in) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    const std::uint8_t byte = in.u8();
    // The 10th byte holds only bit 63: any higher payload bit would be
    // shifted out and silently truncated, so a non-canonical encoding
    // must be a typed decode error, not a wrong value.
    if (shift == 63 && (byte & 0x7E) != 0) {
      IVT_THROW(errors::Category::Decode, "ivc: varint overflow");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  IVT_THROW(errors::Category::Decode, "ivc: varint too long");
}

/// Advance past n varints without decoding their values (continuation
/// bits only). Used by the compressed scan to step over the message-id
/// block of skipped key runs.
inline void skip_uvarints(ByteCursor& in, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    unsigned bytes = 0;
    while ((in.u8() & 0x80) != 0) {
      if (++bytes >= 10) {
        IVT_THROW(errors::Category::Decode, "ivc: varint too long");
      }
    }
  }
}

inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline void put_svarint(std::string& out, std::int64_t v) {
  put_uvarint(out, zigzag_encode(v));
}

inline std::int64_t get_svarint(ByteCursor& in) {
  return zigzag_decode(get_uvarint(in));
}

// --- delta-encoded signed stream (timestamps) -------------------------

// Deltas are computed and re-accumulated in wrapping two's-complement
// arithmetic: extreme timestamp jumps (INT64_MIN next to INT64_MAX) would
// overflow a signed subtraction — undefined behaviour — while the
// wrapped delta round-trips every input exactly and encodes to the same
// bytes as the plain difference whenever that difference is
// representable.

inline void encode_delta(const std::vector<std::int64_t>& values,
                         std::string& out) {
  std::uint64_t prev = 0;
  for (const std::int64_t v : values) {
    const std::uint64_t delta = static_cast<std::uint64_t>(v) - prev;
    put_svarint(out, static_cast<std::int64_t>(delta));
    prev = static_cast<std::uint64_t>(v);
  }
}

inline std::vector<std::int64_t> decode_delta(ByteSpan block,
                                              std::size_t count) {
  ByteCursor in(block);
  std::vector<std::int64_t> values(count);
  // Two-pass: a tight varint loop fills the deltas, then the batched
  // carry-unrolled prefix sum reconstructs the values (exact: integer).
  for (std::size_t i = 0; i < count; ++i) values[i] = get_svarint(in);
  support::batch::prefix_sum_wrapping(values.data(), count);
  return values;
}

/// Advance past n delta varints, returning the wrapped sum of the deltas
/// (== last value − value before the range): the compressed scan uses
/// this to carry the running timestamp across skipped key runs without
/// materializing a single row.
inline std::uint64_t skip_delta_sum(ByteCursor& in, std::size_t n) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += static_cast<std::uint64_t>(get_svarint(in));
  }
  return sum;
}

/// Advance past n uvarints, returning the saturating sum of their values
/// (payload lengths of a skipped run; saturation keeps a corrupt block
/// from wrapping back into the valid range before the bounds check).
inline std::uint64_t skip_uvarint_sum(ByteCursor& in, std::size_t n) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = get_uvarint(in);
    sum = sum + v < sum ? ~std::uint64_t{0} : sum + v;
  }
  return sum;
}

// --- plain zigzag stream (message ids) --------------------------------

inline void encode_svarints(const std::vector<std::int64_t>& values,
                            std::string& out) {
  for (const std::int64_t v : values) put_svarint(out, v);
}

inline std::vector<std::int64_t> decode_svarints(ByteSpan block,
                                                 std::size_t count) {
  ByteCursor in(block);
  std::vector<std::int64_t> values(count);
  for (std::size_t i = 0; i < count; ++i) values[i] = get_svarint(in);
  return values;
}

// --- run-length (value, run) pairs ------------------------------------

inline void encode_rle(const std::vector<std::uint64_t>& values,
                       std::string& out) {
  std::size_t i = 0;
  while (i < values.size()) {
    std::size_t run = 1;
    while (i + run < values.size() && values[i + run] == values[i]) ++run;
    put_uvarint(out, values[i]);
    put_uvarint(out, run);
    i += run;
  }
}

inline std::vector<std::uint64_t> decode_rle(ByteSpan block,
                                             std::size_t count) {
  ByteCursor in(block);
  std::vector<std::uint64_t> values;
  values.reserve(count);
  while (values.size() < count) {
    const std::uint64_t value = get_uvarint(in);
    const std::uint64_t run = get_uvarint(in);
    if (run == 0 || run > count - values.size()) {
      IVT_THROW(errors::Category::Decode, "ivc: bad RLE run length");
    }
    values.insert(values.end(), static_cast<std::size_t>(run), value);
  }
  return values;
}

/// Streaming row-cursor over an RLE block: yields per-row values and
/// skips row ranges in O(runs crossed) without materializing the column.
/// Run-length validation matches decode_rle (zero or overflowing runs are
/// typed decode errors); values above `max_value` throw `overflow_msg`,
/// mirroring the range checks the materializing path applies row-wise.
class RleRunCursor {
 public:
  RleRunCursor(ByteSpan block, std::size_t total_rows,
               std::uint64_t max_value, const char* overflow_msg)
      : in_(block),
        rows_left_(total_rows),
        max_value_(max_value),
        overflow_msg_(overflow_msg) {}

  /// Value of the next row (advances by one row).
  std::uint64_t next() {
    if (remaining_ == 0) refill();
    --remaining_;
    return value_;
  }

  /// Consume the whole pending run: (value, row count). The driving
  /// column of the compressed scan takes runs whole; the other columns
  /// follow with next()/skip().
  std::pair<std::uint64_t, std::size_t> take_run() {
    if (remaining_ == 0) refill();
    const std::pair<std::uint64_t, std::size_t> out{value_, remaining_};
    remaining_ = 0;
    return out;
  }

  /// Skip n rows, validating every run crossed.
  void skip(std::size_t n) {
    while (n > 0) {
      if (remaining_ == 0) refill();
      const std::size_t take = n < remaining_ ? n : remaining_;
      remaining_ -= take;
      n -= take;
    }
  }

 private:
  void refill() {
    value_ = get_uvarint(in_);
    const std::uint64_t run = get_uvarint(in_);
    if (run == 0 || run > rows_left_) {
      IVT_THROW(errors::Category::Decode, "ivc: bad RLE run length");
    }
    if (value_ > max_value_) {
      IVT_THROW(errors::Category::Decode, overflow_msg_);
    }
    remaining_ = static_cast<std::size_t>(run);
    rows_left_ -= remaining_;
  }

  ByteCursor in_;
  std::uint64_t value_ = 0;
  std::size_t remaining_ = 0;
  std::size_t rows_left_;
  std::uint64_t max_value_;
  const char* overflow_msg_;
};

}  // namespace ivt::colstore
