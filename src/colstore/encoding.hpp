// Column-block encodings of the .ivc container.
//
// All encodings operate on in-memory byte buffers: the writer appends to a
// std::string scratch block per column, the reader decodes from a
// ByteSpan slice of the mapped file. Three primitives cover every column:
//   - LEB128 varints (unsigned) and zigzag varints (signed),
//   - delta + zigzag for monotone-ish timestamp streams,
//   - run-length (value, run) pairs for low-cardinality streams
//     (bus index, protocol, flags).
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "errors/error.hpp"

namespace ivt::colstore {

/// Non-owning view of an encoded column block.
struct ByteSpan {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
};

/// Sequential decoder over a ByteSpan; throws errors::Error(Decode) on
/// overrun (a truncated or corrupt block must never read out of bounds).
class ByteCursor {
 public:
  explicit ByteCursor(ByteSpan span) : span_(span) {}

  [[nodiscard]] bool exhausted() const { return pos_ >= span_.size; }
  [[nodiscard]] std::size_t remaining() const { return span_.size - pos_; }

  std::uint8_t u8() {
    if (pos_ >= span_.size) {
      IVT_THROW(errors::Category::Decode, "ivc: column block overrun");
    }
    return span_.data[pos_++];
  }

  /// Raw byte slice of length n.
  ByteSpan bytes(std::size_t n) {
    if (n > remaining()) {
      IVT_THROW(errors::Category::Decode, "ivc: column block overrun");
    }
    const ByteSpan out{span_.data + pos_, n};
    pos_ += n;
    return out;
  }

 private:
  ByteSpan span_;
  std::size_t pos_ = 0;
};

// --- varint -----------------------------------------------------------

inline void put_uvarint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

inline std::uint64_t get_uvarint(ByteCursor& in) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    const std::uint8_t byte = in.u8();
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  IVT_THROW(errors::Category::Decode, "ivc: varint too long");
}

inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline void put_svarint(std::string& out, std::int64_t v) {
  put_uvarint(out, zigzag_encode(v));
}

inline std::int64_t get_svarint(ByteCursor& in) {
  return zigzag_decode(get_uvarint(in));
}

// --- delta-encoded signed stream (timestamps) -------------------------

inline void encode_delta(const std::vector<std::int64_t>& values,
                         std::string& out) {
  std::int64_t prev = 0;
  for (const std::int64_t v : values) {
    put_svarint(out, v - prev);
    prev = v;
  }
}

inline std::vector<std::int64_t> decode_delta(ByteSpan block,
                                              std::size_t count) {
  ByteCursor in(block);
  std::vector<std::int64_t> values(count);
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    prev += get_svarint(in);
    values[i] = prev;
  }
  return values;
}

// --- plain zigzag stream (message ids) --------------------------------

inline void encode_svarints(const std::vector<std::int64_t>& values,
                            std::string& out) {
  for (const std::int64_t v : values) put_svarint(out, v);
}

inline std::vector<std::int64_t> decode_svarints(ByteSpan block,
                                                 std::size_t count) {
  ByteCursor in(block);
  std::vector<std::int64_t> values(count);
  for (std::size_t i = 0; i < count; ++i) values[i] = get_svarint(in);
  return values;
}

// --- run-length (value, run) pairs ------------------------------------

inline void encode_rle(const std::vector<std::uint64_t>& values,
                       std::string& out) {
  std::size_t i = 0;
  while (i < values.size()) {
    std::size_t run = 1;
    while (i + run < values.size() && values[i + run] == values[i]) ++run;
    put_uvarint(out, values[i]);
    put_uvarint(out, run);
    i += run;
  }
}

inline std::vector<std::uint64_t> decode_rle(ByteSpan block,
                                             std::size_t count) {
  ByteCursor in(block);
  std::vector<std::uint64_t> values;
  values.reserve(count);
  while (values.size() < count) {
    const std::uint64_t value = get_uvarint(in);
    const std::uint64_t run = get_uvarint(in);
    if (run == 0 || run > count - values.size()) {
      IVT_THROW(errors::Category::Decode, "ivc: bad RLE run length");
    }
    values.insert(values.end(), static_cast<std::size_t>(run), value);
  }
  return values;
}

}  // namespace ivt::colstore
