#include "colstore/chunk_cursor.hpp"

#include <string>
#include <utility>

#include "colstore/columnar_reader.hpp"
#include "errors/error.hpp"
#include "faultfx/faultfx.hpp"
#include "obs/obs.hpp"
#include "tracefile/trace.hpp"

namespace ivt::colstore {

ChunkCursor::ChunkCursor(const ColumnarReader& reader,
                         const ScanPredicate& pred, ScanOptions options)
    : reader_(&reader),
      options_(options),
      compiled_(detail::compile_predicate(pred, reader.bus_names())),
      compressed_(options.mode == ScanMode::Compressed &&
                  reader.version() >= 2) {
  if (compressed_ && !compiled_.never_matches) {
    // The run-constant conjuncts fold into one bitmap per file — every
    // chunk's key runs test against it, so pay the hash probes once here.
    key_allowed_ = detail::compile_key_filter(compiled_, reader.key_dict());
  }
  const std::vector<ChunkInfo>& chunks = reader.chunks();
  prune_stats_.chunks_total = chunks.size();
  if (!compiled_.never_matches) {
    const std::vector<std::uint16_t> bus_indices =
        detail::prune_bus_indices(pred, reader.bus_names());
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      if (chunk_may_match(chunks[i], pred, bus_indices)) {
        survivors_.push_back(i);
      }
    }
  }
  prune_stats_.chunks_scanned = survivors_.size();
  std::uint64_t decoded_bytes = 0;
  for (const std::size_t i : survivors_) {
    prune_stats_.rows_considered += chunks[i].row_count;
    decoded_bytes += chunks[i].encoded_bytes;
  }
  std::uint64_t total_bytes = 0;
  for (const ChunkInfo& c : chunks) total_bytes += c.encoded_bytes;
  OBS_COUNT("colstore.chunks_total", prune_stats_.chunks_total);
  OBS_COUNT("colstore.chunks_decoded", prune_stats_.chunks_scanned);
  OBS_COUNT("colstore.chunks_pruned",
            prune_stats_.chunks_total - prune_stats_.chunks_scanned);
  OBS_COUNT("colstore.bytes_decoded", decoded_bytes);
  OBS_COUNT("colstore.bytes_skipped", total_bytes - decoded_bytes);
}

std::size_t ChunkCursor::morsel_row_count(std::size_t k) const {
  return reader_->chunk(survivors_[k]).row_count;
}

dataflow::Partition ChunkCursor::decode_unchecked(
    std::size_t k, std::vector<EmittedRun>* runs) const {
  OBS_SPAN_V(chunk_span, "colstore.decode_chunk");
  FAULT_POINT("colstore.decode_chunk");
  const ChunkInfo& info = reader_->chunk(survivors_[k]);
  chunk_span.set_bytes(info.encoded_bytes);
  chunk_span.set_rows(info.row_count);
  const std::vector<std::string>& buses = reader_->bus_names();
  dataflow::Partition out;
  if (compressed_) {
    ScanStats local;
    out = detail::scan_chunk_compressed(reader_->buffer(), info, buses,
                                        reader_->key_dict(), key_allowed_,
                                        compiled_, local, runs);
    runs_considered_.fetch_add(local.runs_considered,
                               std::memory_order_relaxed);
    runs_pruned_.fetch_add(local.runs_pruned, std::memory_order_relaxed);
    runs_accepted_.fetch_add(local.runs_accepted, std::memory_order_relaxed);
    OBS_COUNT("colstore.runs_pruned", local.runs_pruned);
    OBS_COUNT("colstore.runs_accepted", local.runs_accepted);
  } else {
    const detail::DecodedChunk chunk = detail::decode_columns(
        reader_->buffer(), info, reader_->version(), buses.size(),
        reader_->key_dict());
    out = detail::materialize_kb_partition(chunk, info.row_count, buses,
                                           compiled_);
    OBS_COUNT("colstore.runs_decoded", 1);
  }
  rows_emitted_.fetch_add(out.num_rows(), std::memory_order_relaxed);
  return out;
}

dataflow::Partition ChunkCursor::decode(std::size_t k) const {
  std::vector<EmittedRun> unused;
  return decode(k, unused);
}

dataflow::Partition ChunkCursor::decode(std::size_t k,
                                        std::vector<EmittedRun>& runs) const {
  runs.clear();
  const std::size_t chunk_index = survivors_[k];
  const ChunkInfo& info = reader_->chunk(chunk_index);
  if (options_.on_error == errors::ErrorPolicy::Fail) {
    dataflow::Partition out;
    errors::with_context("decoding chunk " + std::to_string(chunk_index) +
                             " @ offset " + std::to_string(info.offset),
                         [&] { out = decode_unchecked(k, &runs); });
    return out;
  }
  try {
    return decode_unchecked(k, &runs);
  } catch (const errors::Error& e) {
    runs.clear();  // a partially filled run list must not outlive the drop
    if (e.severity() == errors::Severity::Fatal) throw;
    // Skip/Quarantine: drop the chunk and resync to the next one. The
    // chunk directory gives every neighbour's extent, so a corrupt body
    // costs exactly its own rows.
    chunks_quarantined_.fetch_add(1, std::memory_order_relaxed);
    rows_quarantined_.fetch_add(info.row_count, std::memory_order_relaxed);
    OBS_COUNT("colstore.chunks_quarantined", 1);
    if (options_.failures != nullptr) {
      options_.failures->add(
          "colstore.decode_chunk",
          "chunk " + std::to_string(chunk_index) + " @ offset " +
              std::to_string(info.offset) + " (" +
              std::to_string(info.row_count) + " rows)",
          e);
    }
    return dataflow::Table::make_partition(tracefile::kb_schema());
  }
}

ScanStats ChunkCursor::stats() const {
  ScanStats out = prune_stats_;
  out.chunks_quarantined = chunks_quarantined_.load(std::memory_order_relaxed);
  out.rows_quarantined = rows_quarantined_.load(std::memory_order_relaxed);
  out.rows_emitted = rows_emitted_.load(std::memory_order_relaxed);
  out.runs_considered = runs_considered_.load(std::memory_order_relaxed);
  out.runs_pruned = runs_pruned_.load(std::memory_order_relaxed);
  out.runs_accepted = runs_accepted_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace ivt::colstore
