// Columnar trace container (.ivc) — chunked, compressed, zone-mapped.
//
// Layout (all fixed-width integers little-endian):
//
//   header : magic "IVCC" | u32 version | u8 vehicle_len | vehicle
//            | u8 journey_len | journey | i64 start_unix_ns
//   chunks : row-group chunks back to back; each chunk is
//            u32 row_count, then the column blocks, each prefixed with a
//            u32 encoded byte length:
//              0 t_ns        delta + zigzag varint
//              1 bus_index   RLE (value, run) uvarint pairs
//              2 protocol    RLE (value, run) uvarint pairs
//              3 message_id  zigzag varint
//              4 flags       RLE (value, run) uvarint pairs
//              5 payload_len uvarint per row
//              6 payload     concatenated raw bytes
//              7 key_idx     RLE (value, run) uvarint pairs   (v2 only)
//   footer : bus dictionary (u16 count | (u8 len | name)*)
//            | key dictionary (v2 only: u32 count |
//              (u16 bus_index | i64 message_id)*)
//            | u32 chunk_count | chunk directory entries (ChunkInfo)
//   tail   : u64 footer_offset | magic "IVCF"
//
// The per-chunk directory entry carries the zone map preselection prunes
// on: min/max t_ns, min/max message_id, a bus-index bitmap and the row
// count. Zone maps are conservative — a surviving chunk still gets
// row-filtered during decode.
//
// Version 2 dictionary-encodes the join key: every distinct
// (bus_index, message_id) pair is interned file-wide at pack time, and
// column 7 stores each row's dictionary index run-length encoded. Because
// CAN traffic is bursty and periodic, key runs are long, which makes the
// run the natural evaluation unit of the compressed scan path: a run
// either wholly passes or wholly fails the (b_id, m_id) membership test,
// so whole runs are accepted or skipped without materializing rows, and
// the bus/message-id columns are never decoded at all (both values are a
// dictionary lookup). Readers accept v1 and v2; the writer emits v2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "errors/error.hpp"
#include "errors/failure_log.hpp"

namespace ivt::colstore {

inline constexpr char kChunkMagic[4] = {'I', 'V', 'C', 'C'};
inline constexpr char kFooterMagic[4] = {'I', 'V', 'C', 'F'};
inline constexpr std::uint32_t kColumnarFormatVersionV1 = 1;
inline constexpr std::uint32_t kColumnarFormatVersion = 2;
inline constexpr std::size_t kColumnsPerChunkV1 = 7;
inline constexpr std::size_t kColumnsPerChunk = 8;
inline constexpr std::size_t kDefaultChunkRows = 65536;

/// One interned (bus_index, message_id) join key of the v2 footer key
/// dictionary, in first-appearance order.
struct KeyDictEntry {
  std::uint16_t bus_index = 0;
  std::int64_t message_id = 0;

  bool operator==(const KeyDictEntry&) const = default;
};

/// Per-chunk statistics + location: one directory entry of the footer.
struct ChunkInfo {
  std::uint64_t offset = 0;        ///< file offset of the chunk's row_count
  std::uint64_t encoded_bytes = 0; ///< total chunk size on disk
  std::uint32_t row_count = 0;
  std::int64_t min_t_ns = 0;
  std::int64_t max_t_ns = 0;
  std::int64_t min_message_id = 0;
  std::int64_t max_message_id = 0;
  /// Bitmap over bus dictionary indices (word i bit b = index 64*i + b).
  std::vector<std::uint64_t> bus_bits;

  [[nodiscard]] bool has_bus(std::uint16_t index) const {
    const std::size_t word = index / 64;
    return word < bus_bits.size() &&
           (bus_bits[word] >> (index % 64)) & 1;
  }
  void set_bus(std::uint16_t index) {
    const std::size_t word = index / 64;
    if (word >= bus_bits.size()) bus_bits.resize(word + 1, 0);
    bus_bits[word] |= std::uint64_t{1} << (index % 64);
  }
};

/// Pushed-down scan filter. Every set member is a conjunct; an empty
/// predicate matches all rows. `bus_message_pairs` refines the two
/// independent sets to exact (b_id, m_id) combinations — the shape of the
/// paper's U_comb preselection set — so a pushed-down scan returns K_pre
/// exactly, not a superset.
struct ScanPredicate {
  std::vector<std::int64_t> message_ids;  ///< empty = any id
  std::vector<std::string> buses;         ///< empty = any bus
  bool has_time_range = false;
  std::int64_t min_t_ns = 0;  ///< inclusive, used when has_time_range
  std::int64_t max_t_ns = 0;  ///< inclusive, used when has_time_range
  std::vector<std::pair<std::string, std::int64_t>> bus_message_pairs;

  [[nodiscard]] bool unconstrained() const {
    return message_ids.empty() && buses.empty() && !has_time_range &&
           bus_message_pairs.empty();
  }
};

/// Zone-map test: can any row of `chunk` match `pred`? (Bus names have
/// been resolved to dictionary indices by the reader; an id requested but
/// absent from the dictionary can never match.)
bool chunk_may_match(const ChunkInfo& chunk, const ScanPredicate& pred,
                     const std::vector<std::uint16_t>& pred_bus_indices);

/// Counters of one scan, for tests / `ivt inspect` / benchmarks.
struct ScanStats {
  std::size_t chunks_total = 0;
  std::size_t chunks_scanned = 0;   ///< survived the zone maps
  std::size_t rows_considered = 0;  ///< rows in surviving chunks
  std::size_t rows_emitted = 0;     ///< rows passing the row-level filter
  std::size_t chunks_quarantined = 0;  ///< failed decode, skipped (policy)
  std::size_t rows_quarantined = 0;    ///< directory rows of those chunks
  // Compressed-mode run accounting (zero under ScanMode::Decoded): key
  // runs evaluated against the dictionary filter, runs skipped whole,
  // and runs whose rows were materialized.
  std::size_t runs_considered = 0;
  std::size_t runs_pruned = 0;
  std::size_t runs_accepted = 0;
};

/// How surviving chunks are evaluated.
///
/// Decoded (default): decode every column of the chunk into row vectors,
/// then apply the compiled row filter while materializing.
///
/// Compressed (v2 files): drive the scan off the key_idx RLE runs — the
/// predicate's bus/id/pair conjuncts are evaluated once per dictionary
/// entry, each run is accepted or skipped whole, skipped runs advance the
/// column cursors without materializing anything, and the bus/message-id
/// columns are never decoded (dictionary lookup). Output is byte-identical
/// to Decoded; v1 files fall back to the decoded path per chunk.
enum class ScanMode { Decoded, Compressed };

/// Parse "decoded" / "compressed" (the CLI --scan values); throws
/// std::invalid_argument on anything else.
ScanMode parse_scan_mode(const std::string& text);
[[nodiscard]] const char* to_string(ScanMode mode);

/// Failure handling of one scan. The default (Fail) propagates the first
/// decode error; Skip/Quarantine drop the failing chunk, resync to the
/// next chunk boundary (chunk extents come from the footer directory, so
/// a corrupt body never desyncs its neighbours), and record the loss in
/// ScanStats — Quarantine additionally appends a FailureRecord per chunk
/// to `failures` for the sidecar manifest.
struct ScanOptions {
  errors::ErrorPolicy on_error = errors::ErrorPolicy::Fail;
  errors::FailureLog* failures = nullptr;  ///< optional, Quarantine only
  ScanMode mode = ScanMode::Decoded;
};

/// One accepted key run of a compressed chunk scan, in output (partition)
/// row coordinates: rows [row_begin, row_begin + row_count) of the emitted
/// partition all carry dictionary key `key`. The interpretation join uses
/// this to probe the broadcast side once per run (array index) instead of
/// once per row (string hash).
struct EmittedRun {
  std::uint32_t key = 0;
  std::size_t row_begin = 0;
  std::size_t row_count = 0;
};

}  // namespace ivt::colstore
