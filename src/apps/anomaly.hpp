// Anomaly detection & ranking (paper Sec. 4.4).
//
// Two complementary detectors over pipeline output:
//  - state-frequency: rare joint states in the wide representation are
//    hot-spots, ranked by severity = -log2(frequency);
//  - element-level: outlier / validity / cycle-violation elements of
//    K_rep, ranked by kind and deviation.
// Detected anomalies can be turned into extension rules to flag similar
// situations in future runs (`to_extension_rule`).
#pragma once

#include <string>
#include <vector>

#include "core/extend.hpp"
#include "dataflow/table.hpp"

namespace ivt::apps {

struct Anomaly {
  std::int64_t t_ns = 0;          ///< 0 for aggregate (state) anomalies
  std::string signal;             ///< s_id / joint-state description
  std::string description;
  double severity = 0.0;          ///< higher = more anomalous
  std::size_t occurrences = 1;
};

struct AnomalyConfig {
  /// State-frequency detector: a joint state is anomalous when it occurs
  /// in at most this fraction of rows.
  double max_state_frequency = 0.001;
  std::size_t top_k = 20;
};

/// Rare joint states in the wide state table.
std::vector<Anomaly> detect_state_anomalies(const dataflow::Table& state,
                                            const AnomalyConfig& config = {});

/// Outlier / validity / extension (cycle-violation) elements of a
/// krep_schema table, ranked most severe first.
std::vector<Anomaly> detect_element_anomalies(const dataflow::Table& krep,
                                              const AnomalyConfig& config = {});

/// Convert a signal-level anomaly into an extension rule that marks future
/// instances whose numeric value deviates at least as far from `center`
/// (the paper's "automatically be transformed into extensions w to detect
/// similar anomalies in further runs").
ivt::core::ExtensionRule to_extension_rule(const Anomaly& anomaly,
                                           double center, double min_abs_dev);

}  // namespace ivt::apps
