// Transition graphs over the state representation (paper Sec. 4.4).
//
// Linking each state row to its successor and counting transitions gives a
// graph in which rare transitions indicate potential errors; paths into a
// suspicious state isolate error causes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dataflow/table.hpp"

namespace ivt::apps {

struct TransitionEdge {
  std::string from;
  std::string to;
  std::size_t count = 0;
  /// count / total transitions leaving `from`.
  double probability = 0.0;
};

class TransitionGraph {
 public:
  /// Build from one column of the state table (per-signal state machine).
  /// Consecutive identical states collapse into one node visit.
  static TransitionGraph from_column(const dataflow::Table& state,
                                     const std::string& column);

  /// Build from the joint state of several columns; node labels are
  /// "v1|v2|...". Empty `columns` = all columns except "t".
  static TransitionGraph from_columns(const dataflow::Table& state,
                                      std::vector<std::string> columns);

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_transitions() const { return total_; }
  [[nodiscard]] const std::vector<std::string>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] std::vector<TransitionEdge> edges() const;

  /// Edges whose leave-probability is at most `max_probability` and whose
  /// count is at least `min_count` — the "rare transitions [that] indicate
  /// potential errors". Sorted ascending by probability.
  [[nodiscard]] std::vector<TransitionEdge> rare_transitions(
      double max_probability, std::size_t min_count = 1) const;

  /// Most frequent chain of predecessor states ending in `target`
  /// (path analysis for error-cause isolation). Greedy walk backwards over
  /// the highest-count incoming edge, at most `max_length` nodes, stopping
  /// on cycles.
  [[nodiscard]] std::vector<std::string> frequent_path_to(
      const std::string& target, std::size_t max_length = 5) const;

  /// Graphviz DOT rendering (edge labels = counts; rare edges in red).
  [[nodiscard]] std::string to_dot(double rare_threshold = 0.01) const;

 private:
  void add_transition(const std::string& from, const std::string& to);
  void finalize();

  std::vector<std::string> nodes_;
  std::map<std::pair<std::string, std::string>, std::size_t> counts_;
  std::map<std::string, std::size_t> out_totals_;
  std::size_t total_ = 0;
};

}  // namespace ivt::apps
