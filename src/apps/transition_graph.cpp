#include "apps/transition_graph.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace ivt::apps {

void TransitionGraph::add_transition(const std::string& from,
                                     const std::string& to) {
  if (std::find(nodes_.begin(), nodes_.end(), from) == nodes_.end()) {
    nodes_.push_back(from);
  }
  if (std::find(nodes_.begin(), nodes_.end(), to) == nodes_.end()) {
    nodes_.push_back(to);
  }
  ++counts_[{from, to}];
  ++out_totals_[from];
  ++total_;
}

void TransitionGraph::finalize() {}

TransitionGraph TransitionGraph::from_column(const dataflow::Table& state,
                                             const std::string& column) {
  TransitionGraph graph;
  const std::size_t col = state.schema().require(column);
  std::string previous;
  bool has_previous = false;
  state.for_each_row([&](const dataflow::RowView& row) {
    if (row.is_null(col)) return;
    const std::string current = row.value_at(col).to_display_string();
    if (has_previous && current != previous) {
      graph.add_transition(previous, current);
    }
    previous = current;
    has_previous = true;
  });
  graph.finalize();
  return graph;
}

TransitionGraph TransitionGraph::from_columns(
    const dataflow::Table& state, std::vector<std::string> columns) {
  TransitionGraph graph;
  if (columns.empty()) {
    for (const dataflow::Field& f : state.schema().fields()) {
      if (f.name != "t") columns.push_back(f.name);
    }
  }
  std::vector<std::size_t> cols;
  for (const std::string& name : columns) {
    cols.push_back(state.schema().require(name));
  }
  std::string previous;
  bool has_previous = false;
  state.for_each_row([&](const dataflow::RowView& row) {
    std::string current;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (i > 0) current += '|';
      current += row.is_null(cols[i])
                     ? "-"
                     : row.value_at(cols[i]).to_display_string();
    }
    if (has_previous && current != previous) {
      graph.add_transition(previous, current);
    }
    previous = std::move(current);
    has_previous = true;
  });
  graph.finalize();
  return graph;
}

std::vector<TransitionEdge> TransitionGraph::edges() const {
  std::vector<TransitionEdge> out;
  out.reserve(counts_.size());
  for (const auto& [key, count] : counts_) {
    TransitionEdge edge;
    edge.from = key.first;
    edge.to = key.second;
    edge.count = count;
    const auto it = out_totals_.find(key.first);
    edge.probability = it != out_totals_.end() && it->second > 0
                           ? static_cast<double>(count) /
                                 static_cast<double>(it->second)
                           : 0.0;
    out.push_back(std::move(edge));
  }
  return out;
}

std::vector<TransitionEdge> TransitionGraph::rare_transitions(
    double max_probability, std::size_t min_count) const {
  std::vector<TransitionEdge> rare;
  for (TransitionEdge& edge : edges()) {
    if (edge.probability <= max_probability && edge.count >= min_count) {
      rare.push_back(std::move(edge));
    }
  }
  std::sort(rare.begin(), rare.end(),
            [](const TransitionEdge& a, const TransitionEdge& b) {
              if (a.probability != b.probability) {
                return a.probability < b.probability;
              }
              return a.count < b.count;
            });
  return rare;
}

std::vector<std::string> TransitionGraph::frequent_path_to(
    const std::string& target, std::size_t max_length) const {
  std::vector<std::string> path{target};
  std::set<std::string> visited{target};
  std::string current = target;
  while (path.size() < max_length) {
    const std::string* best_from = nullptr;
    std::size_t best_count = 0;
    for (const auto& [key, count] : counts_) {
      if (key.second != current) continue;
      if (visited.contains(key.first)) continue;
      if (count > best_count) {
        best_count = count;
        best_from = &key.first;
      }
    }
    if (best_from == nullptr) break;
    path.push_back(*best_from);
    visited.insert(*best_from);
    current = *best_from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string TransitionGraph::to_dot(double rare_threshold) const {
  std::ostringstream os;
  os << "digraph transitions {\n";
  os << "  rankdir=LR;\n";
  for (const std::string& node : nodes_) {
    os << "  \"" << node << "\";\n";
  }
  for (const TransitionEdge& edge : edges()) {
    os << "  \"" << edge.from << "\" -> \"" << edge.to << "\" [label=\""
       << edge.count << "\"";
    if (edge.probability <= rare_threshold) {
      os << ", color=red, penwidth=2";
    }
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace ivt::apps
